// Quickstart: the minimal VegaPlus loop.
//
//   1. Write a Vega-style spec (JSON) with a data pipeline and signals.
//   2. Register the backing table with the embedded SQL engine.
//   3. Enumerate execution plans, pick one with the (training-free)
//      heuristic comparator, and run it.
//   4. Interact: update a signal and watch only the affected work re-run.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "benchdata/datasets.h"
#include "optimizer/comparator.h"
#include "plan/encoder.h"
#include "plan/enumerator.h"
#include "runtime/plan_executor.h"
#include "spec/spec.h"
#include "sql/engine.h"

using namespace vegaplus;  // NOLINT

static const char* kSpecJson = R"({
  "name": "delay_histogram",
  "signals": [
    {"name": "maxbins", "value": 12, "bind": {"input": "range", "min": 4, "max": 40, "step": 1}}
  ],
  "data": [
    {"name": "source", "table": "flights"},
    {"name": "binned", "source": "source", "transform": [
      {"type": "filter", "expr": "datum.dep_delay > -30 && datum.dep_delay < 180"},
      {"type": "extent", "field": "dep_delay", "signal": "x_extent"},
      {"type": "bin", "field": "dep_delay", "extent": {"signal": "x_extent"},
       "maxbins": {"signal": "maxbins"}, "as": ["bin0", "bin1"]},
      {"type": "aggregate", "groupby": ["bin0", "bin1"], "ops": ["count"],
       "fields": [null], "as": ["count"]}
    ]}
  ],
  "scales": [{"name": "x", "domain": {"signal": "x_extent"}}],
  "marks": [{"type": "rect", "from": {"data": "binned"}}]
})";

int main() {
  // 1. Parse the spec.
  auto parsed = spec::ParseSpecText(kSpecJson);
  if (!parsed.ok()) {
    std::fprintf(stderr, "spec error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  // 2. Generate a dataset and register it as the DBMS table.
  auto dataset = benchdata::MakeDataset("flights", 50000, 7);
  sql::Engine engine;
  engine.RegisterTable("flights", dataset->table);

  // 3. Enumerate plans and let the heuristic comparator choose.
  rewrite::PlanBuilder builder(*parsed);
  auto enumeration = plan::EnumeratePlans(builder);
  std::printf("enumerated %zu execution plans for %zu operators\n",
              enumeration.total_space, parsed->TotalOperators());

  plan::PlanEncoder encoder(builder, &engine);
  dataflow::SignalRegistry signals;
  for (const auto& s : parsed->signals) {
    signals.Set(s.name, expr::EvalValue::FromJson(s.init), 0);
  }
  auto vectors = encoder.EncodePlans(enumeration.plans, signals);
  optimizer::HeuristicComparator heuristic;
  size_t best = optimizer::SelectBestPlan(heuristic, vectors);
  std::printf("heuristic picked plan [%s] (splits per data entry)\n",
              enumeration.plans[best].Key().c_str());

  // 4. Execute it end to end.
  runtime::PlanExecutor executor(*parsed, &engine, {});
  auto init = executor.Initialize(enumeration.plans[best]);
  if (!init.ok()) {
    std::fprintf(stderr, "run error: %s\n", init.status().ToString().c_str());
    return 1;
  }
  std::printf("initial rendering: %.2f ms (client %.2f, server+network %.2f)\n",
              init->total_ms, init->client_ms, init->external_ms);
  data::TablePtr histogram = executor.EntryOutput("binned");
  std::printf("histogram:\n%s", histogram->ToString(8).c_str());

  // 5. Interact: drag the bin slider.
  auto update = executor.Interact({{"maxbins", expr::EvalValue::Number(30)}});
  std::printf("after maxbins=30: %.2f ms, %zu bars\n", update->total_ms,
              executor.EntryOutput("binned")->num_rows());
  return 0;
}
