// Custom backends: the paper's §3 notes VegaPlus "supports any user-provided
// backend". This example shows both integration points:
//   * the embedded SQL engine used directly (register tables, run SQL,
//     EXPLAIN) — what you would wrap around a real DBMS, and
//   * a custom rewrite::QueryService (here: a tracing decorator) plugged
//     under the VDTs in place of the stock middleware.
//
// Build & run:  ./build/examples/custom_backend
#include <cstdio>

#include "benchdata/templates.h"
#include "rewrite/plan_builder.h"
#include "runtime/middleware.h"
#include "sql/engine.h"

using namespace vegaplus;  // NOLINT

// A QueryService decorator that logs every SQL statement the VDTs issue —
// the seam where PostgreSQL/DuckDB/HeavyDB adapters would live.
class TracingService : public rewrite::QueryService {
 public:
  explicit TracingService(rewrite::QueryService* inner) : inner_(inner) {}

  Result<rewrite::QueryResponse> Execute(const std::string& sql) override {
    std::printf("  [SQL->backend] %s\n", sql.c_str());
    auto response = inner_->Execute(sql);
    if (response.ok()) {
      std::printf("  [backend->client] %zu rows, %zu bytes, %.2f ms (%s)\n",
                  response->table->num_rows(), response->bytes,
                  response->latency_millis,
                  response->source == rewrite::QueryResponse::Source::kDbms
                      ? "dbms"
                      : "cache");
    }
    return response;
  }

 private:
  rewrite::QueryService* inner_;
};

int main() {
  auto dataset = benchdata::MakeDataset("movies", 20000, 3);
  sql::Engine engine;
  engine.RegisterTable("movies", dataset->table);

  // --- Direct engine use: ad-hoc SQL + EXPLAIN ---
  std::printf("== direct SQL ==\n");
  auto result = engine.Query(
      "SELECT genre, COUNT(*) AS n, AVG(imdb_rating) AS rating FROM movies "
      "GROUP BY genre ORDER BY n DESC LIMIT 5");
  std::printf("%s\n", result->table->ToString(5).c_str());
  auto est = engine.Explain("SELECT * FROM movies WHERE imdb_rating > 8");
  std::printf("EXPLAIN: ~%.0f of %.0f rows, cost %.0f\n\n", est->output_rows,
              est->input_rows, est->cost);

  // --- Custom service under the VDTs ---
  std::printf("== VDT traffic through a custom backend ==\n");
  auto bc = benchdata::MakeBenchCase(benchdata::TemplateId::kInteractiveHistogram,
                                     "movies", 20000, 3);
  sql::Engine engine2;
  engine2.RegisterTable(bc->dataset.name, bc->dataset.table);
  runtime::Middleware middleware(&engine2, {});
  TracingService tracing(&middleware);

  rewrite::PlanBuilder builder(bc->spec);
  auto flow = builder.Build(builder.FullPushdownPlan(), &tracing);
  if (!flow.ok()) {
    std::fprintf(stderr, "%s\n", flow.status().ToString().c_str());
    return 1;
  }
  std::printf("initial rendering:\n");
  (void)flow->graph->Run();
  std::printf("interaction (maxbins=24):\n");
  (void)flow->graph->Update({{"maxbins", expr::EvalValue::Number(24)}});
  std::printf("interaction (field change):\n");
  (void)flow->graph->Update(
      {{"field", expr::EvalValue::String(bc->dataset.quantitative[1])}});
  return 0;
}
