// Custom backends: the paper's §3 notes VegaPlus "supports any user-provided
// backend". This example shows all three integration points:
//   * the embedded SQL engine used directly — ad-hoc SQL, EXPLAIN, and the
//     prepared-statement API (parse once, bind per interaction),
//   * the session-oriented async query service (Prepare -> Submit -> ticket)
//     that VDTs speak to the middleware, and
//   * a custom rewrite::QueryService (here: a tracing decorator) plugged
//     under the VDTs. Services implement the session API (Prepare/Submit);
//     the legacy blocking Execute(sql) is a deprecated base-class shim over
//     that same pair.
//
// Build & run:  ./build/examples/custom_backend
#include <cstdio>

#include "benchdata/templates.h"
#include "rewrite/plan_builder.h"
#include "runtime/middleware.h"
#include "sql/engine.h"

using namespace vegaplus;  // NOLINT

// A QueryService decorator that logs every statement the VDTs prepare and
// every submission they make — the seam where PostgreSQL/DuckDB/HeavyDB
// adapters would live. It implements the session API (Prepare/Submit) and
// forwards to the wrapped service; awaiting the forwarded ticket before
// returning keeps the trace ordered without changing the async contract.
class TracingService : public rewrite::QueryService {
 public:
  explicit TracingService(rewrite::QueryService* inner) : inner_(inner) {}

  Result<rewrite::PreparedHandle> Prepare(const std::string& sql_template) override {
    std::printf("  [prepare->backend] %s\n", sql_template.c_str());
    return inner_->Prepare(sql_template);
  }

  rewrite::QueryTicketPtr Submit(const rewrite::QueryRequest& request) override {
    std::printf("  [submit->backend] handle=%llu params=%zu\n",
                static_cast<unsigned long long>(request.handle),
                request.params.size());
    auto ticket = inner_->Submit(request);
    auto response = ticket->Await();
    if (response.ok()) {
      std::printf("  [backend->client] %zu rows, %zu bytes, %.2f ms (%s)\n",
                  response->table->num_rows(), response->bytes,
                  response->latency_millis,
                  response->source == rewrite::QueryResponse::Source::kDbms
                      ? "dbms"
                      : response->source ==
                                rewrite::QueryResponse::Source::kTileStore
                            ? "tiles"
                            : "cache");
    }
    return ticket;
  }

 private:
  rewrite::QueryService* inner_;
};

int main() {
  auto dataset = benchdata::MakeDataset("movies", 20000, 3);
  sql::Engine engine;
  engine.RegisterTable("movies", dataset->table);

  // --- Direct engine use: ad-hoc SQL + EXPLAIN ---
  std::printf("== direct SQL ==\n");
  auto result = engine.Query(
      "SELECT genre, COUNT(*) AS n, AVG(imdb_rating) AS rating FROM movies "
      "GROUP BY genre ORDER BY n DESC LIMIT 5");
  std::printf("%s\n", result->table->ToString(5).c_str());
  auto est = engine.Explain("SELECT * FROM movies WHERE imdb_rating > 8");
  std::printf("EXPLAIN: ~%.0f of %.0f rows, cost %.0f\n\n", est->output_rows,
              est->input_rows, est->cost);

  // --- Prepared statements: parse once, bind per interaction ---
  std::printf("== prepared statements ==\n");
  auto prepared = engine.Prepare(
      "SELECT COUNT(*) AS n FROM movies WHERE imdb_rating > ${min_rating}");
  for (double cut : {6.0, 7.5, 9.0}) {
    expr::MapSignalResolver params;
    params.Set("min_rating", expr::EvalValue::Number(cut));
    auto bound = engine.ExecuteBound(**prepared, params);
    std::printf("  rating > %.1f -> %.0f movies\n", cut,
                bound->table->column(0).NumericAt(0));
  }

  // --- Session API: async submission with tickets ---
  std::printf("\n== session API (async submit) ==\n");
  runtime::Middleware shared(&engine, {});
  auto session = shared.CreateSession();
  auto handle = session->Prepare(
      "SELECT genre, COUNT(*) AS n FROM movies WHERE imdb_rating > ${min_rating} "
      "GROUP BY genre");
  // Submit two independent bindings concurrently (generation 0 = never
  // supersede); both round trips overlap on the worker pool.
  rewrite::QueryRequest r1{*handle, {{"min_rating", expr::EvalValue::Number(5)}}, 0};
  rewrite::QueryRequest r2{*handle, {{"min_rating", expr::EvalValue::Number(8)}}, 0};
  auto t1 = session->Submit(r1);
  auto t2 = session->Submit(r2);
  auto a = t1->Await();
  auto b = t2->Await();
  if (a.ok() && b.ok()) {
    std::printf("  >5: %zu genres (%.2f ms)   >8: %zu genres (%.2f ms)\n",
                a->table->num_rows(), a->latency_millis, b->table->num_rows(),
                b->latency_millis);
  }
  // A *newer generation* for the same statement supersedes the in-flight
  // one — the stale brush event is cancelled, not decoded.
  auto stale = session->Submit(
      {*handle, {{"min_rating", expr::EvalValue::Number(6)}}, /*generation=*/1});
  auto fresh = session->Submit(
      {*handle, {{"min_rating", expr::EvalValue::Number(7)}}, /*generation=*/2});
  (void)fresh->Await();
  auto stale_result = stale->Await();
  std::printf("  superseded submit: %s\n",
              stale_result.ok() ? "completed before supersession"
                                : stale_result.status().ToString().c_str());
  auto stats = session->stats();
  std::printf("  session stats: %zu submitted, %zu dbms, %zu cancelled\n",
              stats.submitted, stats.dbms_executions, stats.cancelled);

  // --- Custom service under the VDTs ---
  std::printf("\n== VDT traffic through a custom backend ==\n");
  auto bc = benchdata::MakeBenchCase(benchdata::TemplateId::kInteractiveHistogram,
                                     "movies", 20000, 3);
  sql::Engine engine2;
  engine2.RegisterTable(bc->dataset.name, bc->dataset.table);
  runtime::Middleware middleware(&engine2, {});
  TracingService tracing(&middleware);

  rewrite::PlanBuilder builder(bc->spec);
  auto flow = builder.Build(builder.FullPushdownPlan(), &tracing);
  if (!flow.ok()) {
    std::fprintf(stderr, "%s\n", flow.status().ToString().c_str());
    return 1;
  }
  std::printf("initial rendering:\n");
  (void)flow->graph->Run();
  std::printf("interaction (maxbins=24):\n");
  (void)flow->graph->Update({{"maxbins", expr::EvalValue::Number(24)}});
  std::printf("interaction (field change):\n");
  (void)flow->graph->Update(
      {{"field", expr::EvalValue::String(bc->dataset.quantitative[1])}});
  return 0;
}
