// The crossfilter dashboard (§6.1): three linked 2D histograms with brush
// interactions, executed under all three systems — stock Vega, the
// VegaFusion-style full pushdown, and VegaPlus — printing per-interaction
// latencies side by side (the Fig. 9 comparison, interactively).
//
// Build & run:  ./build/examples/crossfilter_dashboard
#include <cstdio>

#include "benchdata/templates.h"
#include "benchdata/workload.h"
#include "optimizer/trainer.h"
#include "runtime/plan_executor.h"

using namespace vegaplus;  // NOLINT

int main() {
  auto bc = benchdata::MakeBenchCase(benchdata::TemplateId::kCrossfilter, "taxis",
                                     80000, 23);
  if (!bc.ok()) {
    std::fprintf(stderr, "%s\n", bc.status().ToString().c_str());
    return 1;
  }
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  std::map<std::string, data::TablePtr> tables{{bc->dataset.name, bc->dataset.table}};
  std::printf("crossfilter on %s (%zu rows): 3 linked histograms + gray layers\n\n",
              bc->dataset.name.c_str(), bc->dataset.table->num_rows());

  // VegaPlus: train quickly on a probe session, consolidate a plan.
  optimizer::CollectorOptions copts;
  copts.max_plans = 128;
  optimizer::EpisodeCollector collector(bc->spec, &engine, copts);
  (void)collector.Start();
  std::vector<optimizer::EpisodeRecord> episodes{*collector.Collect()};
  benchdata::WorkloadGenerator probe(bc->spec, 3);
  for (int i = 0; i < 5; ++i) {
    (void)collector.ApplyInteraction(probe.Next().updates);
    episodes.push_back(*collector.Collect());
  }
  ml::RankSvm svm;
  svm.Train(optimizer::MakePairs(episodes, 8000, 5));
  optimizer::RankSvmComparator comparator(std::move(svm));
  size_t pick = optimizer::ConsolidateSession(comparator, episodes);
  std::printf("VegaPlus consolidated plan: [%s] out of %zu candidates\n\n",
              collector.plans()[pick].Key().c_str(), collector.plans().size());

  runtime::VegaBaselineExecutor vega(bc->spec, tables);
  runtime::VegaFusionBaselineExecutor fusion(bc->spec, &engine, {});
  // VegaPlus runs as one client session of a shared middleware — the same
  // service instance could serve many dashboards concurrently.
  auto middleware = std::make_shared<runtime::Middleware>(&engine,
                                                          runtime::MiddlewareOptions{});
  runtime::PlanExecutor vegaplus(bc->spec, middleware);

  auto vega_init = vega.Initialize();
  auto fusion_init = fusion.Initialize();
  auto vp_init = vegaplus.Initialize(collector.plans()[pick]);
  std::printf("%-28s %10s %12s %10s\n", "event", "Vega", "VegaFusion", "VegaPlus");
  std::printf("%-28s %9.1fms %11.1fms %9.1fms\n", "initial rendering",
              vega_init->total_ms, fusion_init->total_ms, vp_init->total_ms);

  benchdata::WorkloadGenerator workload(bc->spec, 29);
  for (int i = 0; i < 8; ++i) {
    auto interaction = workload.Next();
    auto v = vega.Interact(interaction.updates);
    auto f = fusion.Interact(interaction.updates);
    auto p = vegaplus.Interact(interaction.updates);
    std::printf("%-28s %9.1fms %11.1fms %9.1fms\n", interaction.description.c_str(),
                v->total_ms, f->total_ms, p->total_ms);
  }

  // Confirm all three systems render the same data.
  for (int i = 0; i < 3; ++i) {
    char name[16];
    std::snprintf(name, sizeof(name), "hist_%d", i);
    size_t rows_vega = vega.EntryOutput(name)->num_rows();
    size_t rows_fusion = fusion.EntryOutput(name)->num_rows();
    size_t rows_vp = vegaplus.EntryOutput(name)->num_rows();
    std::printf("\n%s bars: vega=%zu fusion=%zu vegaplus=%zu %s", name, rows_vega,
                rows_fusion, rows_vp,
                rows_vega == rows_fusion && rows_fusion == rows_vp ? "(match)"
                                                                   : "(MISMATCH!)");
  }
  auto stats = vegaplus.session().stats();
  std::printf("\n\nvegaplus session: %zu submitted, %zu client hits, %zu server hits, "
              "%zu dbms, %zu cancelled\n",
              stats.submitted, stats.client_cache_hits, stats.server_cache_hits,
              stats.dbms_executions, stats.cancelled);
  return 0;
}
