// The paper's running example (Fig. 1): an interactive histogram with a
// field dropdown and a maxbins slider — with the full learned-optimizer
// loop: simulate a session, label candidate plans, train the RankSVM
// comparator, consolidate a plan across the session (§5.4), and execute it.
//
// Build & run:  ./build/examples/interactive_histogram
#include <cstdio>

#include "benchdata/templates.h"
#include "benchdata/workload.h"
#include "optimizer/trainer.h"
#include "runtime/plan_executor.h"

using namespace vegaplus;  // NOLINT

int main() {
  // Populate the Interactive Histogram template against the flights data.
  auto bc = benchdata::MakeBenchCase(benchdata::TemplateId::kInteractiveHistogram,
                                     "flights", 100000, 11);
  if (!bc.ok()) {
    std::fprintf(stderr, "%s\n", bc.status().ToString().c_str());
    return 1;
  }
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  std::printf("template: %s  |  data: %s (%zu rows)\n",
              benchdata::TemplateName(bc->id), bc->dataset.name.c_str(),
              bc->dataset.table->num_rows());

  // Collect one training session: encode + label every candidate plan per
  // episode.
  optimizer::EpisodeCollector collector(bc->spec, &engine);
  if (auto s = collector.Start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("candidate plans: %zu\n", collector.plans().size());
  std::vector<optimizer::EpisodeRecord> episodes;
  episodes.push_back(*collector.Collect());
  benchdata::WorkloadGenerator workload(bc->spec, 5);
  for (int i = 0; i < 8; ++i) {
    auto interaction = workload.Next();
    (void)collector.ApplyInteraction(interaction.updates);
    episodes.push_back(*collector.Collect());
  }

  // Train the RankSVM comparator and consolidate across the session.
  auto pairs = optimizer::MakePairs(episodes, 8000, 3);
  ml::RankSvm svm;
  svm.Train(pairs);
  optimizer::RankSvmComparator comparator(std::move(svm));
  size_t pick = optimizer::ConsolidateSession(comparator, episodes);
  std::printf("consolidated plan: [%s]\n", collector.plans()[pick].Key().c_str());

  // Execute the chosen plan on a fresh session and report latencies.
  runtime::PlanExecutor executor(bc->spec, &engine, {});
  auto init = executor.Initialize(collector.plans()[pick]);
  std::printf("\ninitial rendering     %8.2f ms\n", init->total_ms);
  benchdata::WorkloadGenerator replay(bc->spec, 17);
  for (int i = 0; i < 6; ++i) {
    auto interaction = replay.Next();
    auto cost = executor.Interact(interaction.updates);
    std::printf("%-20s %8.2f ms  (%zu bars)\n", interaction.description.c_str(),
                cost->total_ms, executor.EntryOutput("binned")->num_rows());
  }
  const auto& stats = executor.middleware().stats();
  std::printf("\nmiddleware: %zu queries, %zu DBMS executions, %zu cache hits, "
              "%.1f KB transferred\n",
              stats.queries, stats.dbms_executions,
              stats.client_cache_hits + stats.server_cache_hits,
              static_cast<double>(stats.bytes_transferred) / 1024.0);
  return 0;
}
