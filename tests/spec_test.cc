#include <gtest/gtest.h>

#include "benchdata/templates.h"
#include "json/json_parser.h"
#include "json/json_writer.h"
#include "spec/compiler.h"
#include "spec/spec.h"
#include "spec/transform_factory.h"

namespace vegaplus {
namespace spec {
namespace {

const char* kHistogramSpec = R"({
  "name": "histogram",
  "signals": [
    {"name": "field", "value": "delay",
     "bind": {"input": "select", "options": ["delay", "distance"]}},
    {"name": "maxbins", "value": 10,
     "bind": {"input": "range", "min": 5, "max": 50, "step": 1}}
  ],
  "data": [
    {"name": "source", "table": "flights"},
    {"name": "binned", "source": "source", "transform": [
      {"type": "extent", "field": {"signal": "field"}, "signal": "x_extent"},
      {"type": "bin", "field": {"signal": "field"}, "extent": {"signal": "x_extent"},
       "maxbins": {"signal": "maxbins"}, "as": ["bin0", "bin1"]},
      {"type": "aggregate", "groupby": ["bin0", "bin1"], "ops": ["count"],
       "fields": [null], "as": ["count"]}
    ]}
  ],
  "scales": [
    {"name": "x", "domain": {"signal": "x_extent"}},
    {"name": "y", "domain": {"data": "binned", "field": "count"}}
  ],
  "marks": [{"type": "rect", "from": {"data": "binned"}}]
})";

TEST(SpecParserTest, ParsesHistogram) {
  auto r = ParseSpecText(kHistogramSpec);
  ASSERT_TRUE(r.ok()) << r.status();
  const VegaSpec& spec = *r;
  EXPECT_EQ(spec.name, "histogram");
  ASSERT_EQ(spec.signals.size(), 2u);
  EXPECT_EQ(spec.signals[0].bind, BindKind::kSelect);
  EXPECT_EQ(spec.signals[0].options.size(), 2u);
  EXPECT_EQ(spec.signals[1].bind, BindKind::kRange);
  EXPECT_DOUBLE_EQ(spec.signals[1].bind_max, 50);
  ASSERT_EQ(spec.data.size(), 2u);
  EXPECT_EQ(spec.data[1].transforms.size(), 3u);
  EXPECT_EQ(spec.TotalOperators(), 3u);
  ASSERT_EQ(spec.marks.size(), 1u);
  EXPECT_EQ(spec.marks[0].from_data, "binned");
}

TEST(SpecParserTest, RoundTripsThroughJson) {
  auto r = ParseSpecText(kHistogramSpec);
  ASSERT_TRUE(r.ok());
  json::Value doc = SpecToJson(*r);
  auto r2 = ParseSpec(doc);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(json::Write(SpecToJson(*r2)), json::Write(doc));
}

TEST(SpecParserTest, RejectsBadSpecs) {
  EXPECT_FALSE(ParseSpecText("[]").ok());
  EXPECT_FALSE(ParseSpecText(R"({"data":[{"name":"a","source":"nope"}]})").ok());
  EXPECT_FALSE(ParseSpecText(R"({"data":[{"name":"a"}]})").ok());  // root needs table
  EXPECT_FALSE(
      ParseSpecText(R"({"data":[{"name":"a","table":"t","transform":[{}]}]})").ok());
  EXPECT_FALSE(
      ParseSpecText(R"({"marks":[{"type":"rect","from":{"data":"ghost"}}]})").ok());
}

TEST(SpecTest, ClientReservedFromScalesAndMarks) {
  auto r = ParseSpecText(kHistogramSpec);
  ASSERT_TRUE(r.ok());
  std::set<std::string> reserved = ComputeClientReserved(*r);
  EXPECT_EQ(reserved.count("binned"), 1u);
  EXPECT_EQ(reserved.count("source"), 0u);
}

TEST(TransformFactoryTest, UnknownTypeFails) {
  TransformSpec ts{"mystery", json::Value::MakeObject()};
  EXPECT_FALSE(BuildTransformOp(ts).ok());
}

TEST(TransformFactoryTest, FilterNeedsValidExpression) {
  TransformSpec ts{"filter", *json::Parse(R"({"type":"filter","expr":"datum.x >"})")};
  EXPECT_FALSE(BuildTransformOp(ts).ok());
  TransformSpec unknown_fn{"filter",
                           *json::Parse(R"x({"type":"filter","expr":"nope(datum.x)"})x")};
  EXPECT_FALSE(BuildTransformOp(unknown_fn).ok());
}

TEST(TransformFactoryTest, AggregateDefaultsToCount) {
  TransformSpec ts{"aggregate",
                   *json::Parse(R"({"type":"aggregate","groupby":["g"]})")};
  auto op = BuildTransformOp(ts);
  ASSERT_TRUE(op.ok()) << op.status();
  EXPECT_EQ((*op)->type(), "aggregate");
}

TEST(TransformFactoryTest, BinRequiresExtent) {
  TransformSpec ts{"bin", *json::Parse(R"({"type":"bin","field":"x"})")};
  EXPECT_FALSE(BuildTransformOp(ts).ok());
}

TEST(CompilerTest, CompilesAndRunsHistogram) {
  auto r = ParseSpecText(kHistogramSpec);
  ASSERT_TRUE(r.ok());
  data::Schema schema({{"delay", data::DataType::kFloat64},
                       {"distance", data::DataType::kFloat64}});
  data::TableBuilder builder(schema);
  for (int i = 0; i < 100; ++i) {
    builder.AppendRow({data::Value::Double(i % 37), data::Value::Double(i * 3 % 97)});
  }
  std::map<std::string, data::TablePtr> tables{{"flights", builder.Build()}};
  auto compiled = CompileClientDataflow(*r, tables);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  auto stats = compiled->graph->Run();
  ASSERT_TRUE(stats.ok()) << stats.status();
  const CompiledEntry* binned = compiled->FindEntry("binned");
  ASSERT_NE(binned, nullptr);
  ASSERT_NE(binned->tail->output, nullptr);
  EXPECT_GT(binned->tail->output->num_rows(), 0u);
  EXPECT_TRUE(binned->tail->output->schema().HasField("count"));
  EXPECT_TRUE(binned->tail->client_reserved);
  // Interaction: shrink bins -> different histogram.
  size_t before = binned->tail->output->num_rows();
  ASSERT_TRUE(
      compiled->graph->Update({{"maxbins", expr::EvalValue::Number(45)}}).ok());
  EXPECT_GE(binned->tail->output->num_rows(), before);
}

TEST(CompilerTest, MissingTableFails) {
  auto r = ParseSpecText(kHistogramSpec);
  ASSERT_TRUE(r.ok());
  std::map<std::string, data::TablePtr> tables;
  EXPECT_FALSE(CompileClientDataflow(*r, tables).ok());
}

TEST(TemplateSmokeTest, AllTemplatesParseCompileRun) {
  // Every template x every dataset must compile into a runnable dataflow
  // whose mark entries produce output (the §6.1 expressivity claim).
  for (benchdata::TemplateId id : benchdata::AllTemplates()) {
    for (const std::string& ds : benchdata::DatasetNames()) {
      auto bc = benchdata::MakeBenchCase(id, ds, 800, 99);
      ASSERT_TRUE(bc.ok()) << benchdata::TemplateName(id) << " on " << ds << ": "
                           << bc.status();
      std::map<std::string, data::TablePtr> tables{{bc->dataset.name, bc->dataset.table}};
      auto compiled = CompileClientDataflow(bc->spec, tables);
      ASSERT_TRUE(compiled.ok()) << benchdata::TemplateName(id) << " on " << ds << ": "
                                 << compiled.status();
      auto run = compiled->graph->Run();
      ASSERT_TRUE(run.ok()) << benchdata::TemplateName(id) << " on " << ds << ": "
                            << run.status();
      for (const auto& m : bc->spec.marks) {
        const CompiledEntry* entry = compiled->FindEntry(m.from_data);
        ASSERT_NE(entry, nullptr);
        ASSERT_NE(entry->tail->output, nullptr)
            << benchdata::TemplateName(id) << " mark " << m.from_data;
        EXPECT_GT(entry->tail->output->num_rows(), 0u)
            << benchdata::TemplateName(id) << "/" << ds << " mark " << m.from_data;
      }
    }
  }
}

}  // namespace
}  // namespace spec
}  // namespace vegaplus
