// Differential suite for the vectorized expression engine: every expression
// in a generated corpus (all binary/unary operators, ternaries, calls,
// nulls, NaNs, strings) runs through both the scalar interpreter
// (expr::Evaluate row-at-a-time) and the compiled column-at-a-time engine
// (expr::Compiler + expr::BatchEvaluator) over randomized columns, and the
// results must be identical cell for cell. A second layer checks whole SQL
// queries with the vectorized executor path toggled on and off.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "data/table.h"
#include "expr/batch_eval.h"
#include "expr/compiler.h"
#include "expr/kernels/kernels.h"
#include "expr/evaluator.h"
#include "expr/parser.h"
#include "expr_corpus_test_util.h"
#include "sql/engine.h"

namespace vegaplus {
namespace {

using data::TablePtr;
using data::Value;
using testutil::BuildExprCorpus;
using testutil::SameCell;

constexpr size_t kRows = 400;

TablePtr MakeRandomTable(uint64_t seed) {
  return testutil::MakeRandomExprTable(seed, kRows);
}

// Compile-time CSE: repeated loads of one column are detected, the cached
// register is reused, and results stay identical to the scalar interpreter.
TEST(ColumnCseTest, RepeatedLoadsDetectedAndEquivalent) {
  TablePtr table = MakeRandomTable(11);
  auto parsed =
      expr::ParseExpression("datum.dd > 2 && datum.dd < 40 && datum.dd != 7");
  ASSERT_TRUE(parsed.ok());
  auto program = expr::Compiler::Compile(*parsed, table->schema());
  ASSERT_TRUE(program.has_value());
  int32_t dd = table->schema().FieldIndex("dd");
  ASSERT_GE(dd, 0);
  ASSERT_EQ(program->reused_cols.size(), 1u);
  EXPECT_EQ(program->reused_cols[0].first, dd);
  EXPECT_EQ(program->reused_cols[0].second, 3);

  std::vector<Value> actual;
  expr::BatchEvaluator(*table).RunToValues(*program, &actual);
  expr::EvalContext ctx;
  ctx.table = table.get();
  for (size_t r = 0; r < table->num_rows(); ++r) {
    ctx.row = r;
    Value expected = expr::Evaluate(*parsed, ctx).scalar();
    ASSERT_TRUE(SameCell(expected, actual[r])) << "row " << r;
  }
}

class VectorEngineDiffTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorEngineDiffTest, CorpusMatchesScalarInterpreter) {
  TablePtr table = MakeRandomTable(GetParam());
  size_t compiled = 0, fallback = 0;
  for (const std::string& text : BuildExprCorpus()) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    auto program = expr::Compiler::Compile(*parsed, table->schema());
    if (!program) {
      ++fallback;  // scalar fallback is the documented contract here
      continue;
    }
    ++compiled;
    std::vector<Value> actual;
    expr::BatchEvaluator(*table).RunToValues(*program, &actual);
    ASSERT_EQ(actual.size(), table->num_rows()) << text;
    expr::EvalContext ctx;
    ctx.table = table.get();
    for (size_t r = 0; r < table->num_rows(); ++r) {
      ctx.row = r;
      expr::EvalValue ev = expr::Evaluate(*parsed, ctx);
      Value expected = ev.is_array() ? Value::Null() : ev.scalar();
      ASSERT_TRUE(SameCell(expected, actual[r]))
          << text << " row " << r << ": scalar=" << expected.ToString()
          << " vector=" << actual[r].ToString();
    }
  }
  // Most of the corpus is vectorizable (the string/numeric mixes — heavily
  // represented since the string operands joined the operand pool — and
  // array expressions legitimately fall back); a compiler regression that
  // rejects everything should fail loudly, not silently shift the whole
  // suite onto the fallback path.
  EXPECT_GT(compiled, fallback) << compiled << " compiled, " << fallback
                                << " fell back";
  EXPECT_GT(compiled, 1000u);
}

TEST_P(VectorEngineDiffTest, FilterSelectionsMatchScalarTruthiness) {
  TablePtr table = MakeRandomTable(GetParam() * 31 + 7);
  const char* predicates[] = {
      "datum.dd > 0",        // fused compare (column lhs)
      "10 >= datum.dd",      // fused compare (column rhs, mirrored)
      "datum.ii == 4",       // fused equality
      "datum.ii != 4",       // fused inequality: null rows are included
      "datum.dd == null",    // null comparisons stay on the general path
      "datum.bb",            // bare column truthiness
      "datum.ss == 'mid'",
      "datum.dd > -10 && datum.ii <= 5",
      "!(datum.dd <= 0 || datum.bb)",
      "isValid(datum.dd) && datum.dd * 2 < 40",
      // Fused OR-trees: compiled to one bitmap-combine pass by the kernels.
      "datum.dd > 10 || datum.ii < -5",
      "datum.dd > 10 || datum.ii < -5 || datum.sc == 'cat_1'",
      "datum.dd > 0 && datum.ii < 10 || datum.dd < -40",
      "(datum.dd > 0 || datum.ii == 4) && datum.sc != 'cat_2'",
      "datum.ss == 'mid' || datum.dd >= 49",
  };
  for (const char* text : predicates) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto program = expr::Compiler::Compile(*parsed, table->schema());
    ASSERT_TRUE(program.has_value()) << text << " should vectorize";
    std::vector<int32_t> vec_sel;
    expr::BatchEvaluator(*table).RunFilter(*program, &vec_sel);
    std::vector<int32_t> scalar_sel;
    expr::EvalContext ctx;
    ctx.table = table.get();
    for (size_t r = 0; r < table->num_rows(); ++r) {
      ctx.row = r;
      if (expr::Evaluate(*parsed, ctx).Truthy()) {
        scalar_sel.push_back(static_cast<int32_t>(r));
      }
    }
    EXPECT_EQ(vec_sel, scalar_sel) << text;
  }
}

TEST_P(VectorEngineDiffTest, ExecutorAgreesWithScalarPath) {
  TablePtr table = MakeRandomTable(GetParam() * 131 + 17);
  sql::Engine engine;
  engine.RegisterTable("t", table);
  const char* queries[] = {
      "SELECT * FROM t WHERE dd > 0",
      "SELECT dd * 2 + ii AS x, ss FROM t WHERE ii != 4",
      "SELECT ii, COUNT(*) AS n, SUM(dd) AS s, AVG(dd) AS a FROM t GROUP BY ii "
      "ORDER BY ii",
      "SELECT ss, MIN(dd) AS lo, MAX(dd) AS hi, MEDIAN(dd) AS med, "
      "STDDEV(dd) AS sd FROM t GROUP BY ss ORDER BY ss",
      "SELECT ss, COUNT(*) AS n FROM t GROUP BY ss HAVING n > 20 ORDER BY n DESC",
      "SELECT COUNT(*) AS n, COUNT(dd) AS nv, MIN(ss) AS first_s FROM t",
      "SELECT id_mod, COUNT(*) AS n FROM (SELECT ii % 3 AS id_mod FROM t "
      "WHERE dd IS NOT NULL) GROUP BY id_mod ORDER BY id_mod",
      "SELECT ss, dd FROM t WHERE dd IS NOT NULL ORDER BY dd DESC, ss LIMIT 25 "
      "OFFSET 5",
      "SELECT ii, ROW_NUMBER() OVER (PARTITION BY ss ORDER BY dd) AS rn FROM t "
      "ORDER BY ii, rn",
      "SELECT ii, SUM(dd) OVER (PARTITION BY bb ORDER BY ii) AS run FROM t "
      "ORDER BY ii, run",
      "SELECT MONTH(tt) AS m, COUNT(*) AS n FROM t GROUP BY MONTH(tt) ORDER BY m",
      "SELECT CASE WHEN dd > 10 THEN 'hi' WHEN dd IS NULL THEN 'null' "
      "ELSE 'lo' END AS bucket, ii FROM t ORDER BY ii LIMIT 50",
      // String-constant group keys: the grouping registers must own their
      // constants (regression: they once dangled into the freed Program).
      "SELECT CASE WHEN dd > 0 THEN 'pos' ELSE 'neg' END AS sign_s, "
      "COUNT(*) AS n FROM t GROUP BY CASE WHEN dd > 0 THEN 'pos' ELSE 'neg' END "
      "ORDER BY sign_s",
  };
  for (const char* sql : queries) {
    expr::SetVectorizedEnabled(true);
    auto vec = engine.Query(sql);
    expr::SetVectorizedEnabled(false);
    auto scalar = engine.Query(sql);
    expr::SetVectorizedEnabled(true);
    ASSERT_TRUE(vec.ok()) << sql << ": " << vec.status();
    ASSERT_TRUE(scalar.ok()) << sql << ": " << scalar.status();
    ASSERT_EQ(vec->table->num_rows(), scalar->table->num_rows()) << sql;
    ASSERT_TRUE(vec->table->Equals(*scalar->table))
        << sql << "\nvectorized:\n" << vec->table->ToString(8)
        << "scalar:\n" << scalar->table->ToString(8);
  }
}

// Kill-switch differential for the SIMD kernel library: RunFilter must be
// bit-identical with kernels enabled and disabled, against the scalar
// interpreter as ground truth, across SIMD-hostile batch lengths (empty,
// single row, one off either side of typical register widths, and one off
// either side of the morsel size) plus an all-null batch. The table mixes
// NaN/±Inf/−0.0/denormal doubles via MakeRandomExprTable.
TEST_P(VectorEngineDiffTest, KernelKillSwitchBitIdentical) {
  const char* predicates[] = {
      "datum.dd > 0",
      "datum.ii != 4",
      "datum.dd == 0",  // −0.0 == 0.0 must hold in both bodies
      "datum.dd > -10 && datum.ii <= 5 && datum.dd != 7",
      "datum.sc == 'cat_1' && datum.dd > 0",
      "datum.dd > 10 || datum.ii < -5",
      "(datum.dd > 0 || datum.ii == 4) && datum.sc != 'cat_2'",
      "datum.ss == 'mid' || datum.dd >= 49",
  };
  const size_t morsel = parallel::MorselRows();
  const size_t lengths[] = {0,          1,      7,      8,  9,
                            15,         16,     17,     63, 64,
                            65,         400,    morsel - 1, morsel,
                            morsel + 1};
  const size_t max_len = morsel + 1;
  TablePtr full = testutil::MakeRandomExprTable(GetParam() * 977 + 5, max_len);
  // All-null twin: every cell null, exercising the all-invalid fast paths.
  TablePtr all_null;
  {
    std::vector<data::Column> cols;
    for (const auto& field : full->schema().fields()) {
      data::Column col(field.type);
      for (size_t r = 0; r < 32; ++r) col.AppendNull();
      cols.push_back(std::move(col));
    }
    all_null = std::make_shared<data::Table>(full->schema(), std::move(cols));
  }
  std::vector<TablePtr> tables;
  for (size_t len : lengths) tables.push_back(full->Slice(0, len));
  tables.push_back(all_null);

  for (const char* text : predicates) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text;
    for (const TablePtr& table : tables) {
      auto program = expr::Compiler::Compile(*parsed, table->schema());
      ASSERT_TRUE(program.has_value()) << text << " should vectorize";
      std::vector<int32_t> on_sel, off_sel;
      kernels::SetSimdEnabled(true);
      expr::BatchEvaluator(*table).RunFilter(*program, &on_sel);
      kernels::SetSimdEnabled(false);
      expr::BatchEvaluator(*table).RunFilter(*program, &off_sel);
      kernels::SetSimdEnabled(true);
      EXPECT_EQ(on_sel, off_sel)
          << text << " rows=" << table->num_rows() << " kernels on vs off";
      std::vector<int32_t> scalar_sel;
      expr::EvalContext ctx;
      ctx.table = table.get();
      for (size_t r = 0; r < table->num_rows(); ++r) {
        ctx.row = r;
        if (expr::Evaluate(*parsed, ctx).Truthy()) {
          scalar_sel.push_back(static_cast<int32_t>(r));
        }
      }
      EXPECT_EQ(on_sel, scalar_sel)
          << text << " rows=" << table->num_rows() << " vs scalar interpreter";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorEngineDiffTest,
                         ::testing::Values(1u, 2u, 3u, 4u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vegaplus
