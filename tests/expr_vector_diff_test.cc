// Differential suite for the vectorized expression engine: every expression
// in a generated corpus (all binary/unary operators, ternaries, calls,
// nulls, NaNs, strings) runs through both the scalar interpreter
// (expr::Evaluate row-at-a-time) and the compiled column-at-a-time engine
// (expr::Compiler + expr::BatchEvaluator) over randomized columns, and the
// results must be identical cell for cell. A second layer checks whole SQL
// queries with the vectorized executor path toggled on and off.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/table.h"
#include "expr/batch_eval.h"
#include "expr/compiler.h"
#include "expr/evaluator.h"
#include "expr/parser.h"
#include "sql/engine.h"

namespace vegaplus {
namespace {

using data::Column;
using data::DataType;
using data::Schema;
using data::TablePtr;
using data::Value;

constexpr size_t kRows = 400;

TablePtr MakeRandomTable(uint64_t seed) {
  Rng rng(seed);
  Column dd(DataType::kFloat64);   // doubles with nulls and a few NaNs
  Column ii(DataType::kInt64);     // ints with nulls
  Column bb(DataType::kBool);      // bools with nulls
  Column ss(DataType::kString);    // short strings with nulls and empties
  Column tt(DataType::kTimestamp); // timestamps with nulls
  const char* words[] = {"", "a", "mid", "zebra", "Mixed", "mid"};
  for (size_t r = 0; r < kRows; ++r) {
    if (rng.NextBool(0.1)) {
      dd.AppendNull();
    } else if (rng.NextBool(0.05)) {
      dd.AppendDouble(std::nan(""));
    } else {
      dd.AppendDouble(rng.Uniform(-50, 50));
    }
    if (rng.NextBool(0.1)) {
      ii.AppendNull();
    } else {
      ii.AppendInt(rng.UniformInt(-20, 20));
    }
    if (rng.NextBool(0.1)) {
      bb.AppendNull();
    } else {
      bb.AppendBool(rng.NextBool());
    }
    if (rng.NextBool(0.1)) {
      ss.AppendNull();
    } else {
      ss.AppendString(words[rng.Index(6)]);
    }
    if (rng.NextBool(0.1)) {
      tt.AppendNull();
    } else {
      tt.AppendInt(946684800000LL + rng.UniformInt(0, 4LL * 365 * 86400000LL));
    }
  }
  std::vector<Column> cols;
  cols.push_back(std::move(dd));
  cols.push_back(std::move(ii));
  cols.push_back(std::move(bb));
  cols.push_back(std::move(ss));
  cols.push_back(std::move(tt));
  return std::make_shared<data::Table>(Schema({{"dd", DataType::kFloat64},
                                               {"ii", DataType::kInt64},
                                               {"bb", DataType::kBool},
                                               {"ss", DataType::kString},
                                               {"tt", DataType::kTimestamp}}),
                                       std::move(cols));
}

/// Same value modulo boxing: the vectorized engine widens numerics to
/// double, which is exactly what the interpreter's arithmetic/comparison/
/// hash/compare semantics see (Value::AsDouble everywhere).
bool SameCell(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
  if (a.is_string() || b.is_string()) {
    return a.is_string() && b.is_string() && a.AsString() == b.AsString();
  }
  const double x = a.AsDouble(), y = b.AsDouble();
  return x == y || (std::isnan(x) && std::isnan(y));
}

/// The operand pool: every column, a missing field, and literals of each
/// type (including null) so operator null/type handling is fully exercised.
const std::vector<std::string>& Operands() {
  static const std::vector<std::string> kOperands = {
      "datum.dd", "datum.ii", "datum.bb", "datum.ss",  "datum.tt",
      "datum.nope", "2.5",    "0",        "null",      "'mid'",
      "true",     "false",
  };
  return kOperands;
}

std::vector<std::string> BuildCorpus() {
  std::vector<std::string> corpus;
  const char* binary_ops[] = {"+", "-", "*",  "/",  "%",  "==",
                              "!=", "<", "<=", ">",  ">=", "&&",
                              "||"};
  for (const std::string& a : Operands()) {
    for (const std::string& b : Operands()) {
      for (const char* op : binary_ops) {
        corpus.push_back(a + " " + op + " " + b);
      }
    }
  }
  for (const std::string& a : Operands()) {
    corpus.push_back("-(" + a + ")");
    corpus.push_back("!(" + a + ")");
    corpus.push_back("+(" + a + ")");
    corpus.push_back("isValid(" + a + ")");
  }
  // Ternaries, including branch-type promotion and fallback-worthy mixes.
  for (const std::string& c : {"datum.bb", "datum.dd > 0", "datum.ss"}) {
    corpus.push_back(c + " ? datum.dd : datum.ii");
    corpus.push_back(c + " ? datum.dd : null");
    corpus.push_back(c + " ? datum.ii > 0 : datum.dd");
    corpus.push_back(c + " ? datum.ss : 'other'");
    corpus.push_back(c + " ? datum.ss : datum.dd");  // string/num mix: fallback
  }
  // Calls over numeric, null, and string arguments.
  for (const char* fn : {"abs", "ceil", "floor", "round", "sqrt", "exp", "log"}) {
    corpus.push_back(std::string(fn) + "(datum.dd)");
    corpus.push_back(std::string(fn) + "(datum.ii / 3)");
  }
  for (const char* fn :
       {"year", "month", "date", "day", "hours", "minutes", "seconds"}) {
    corpus.push_back(std::string(fn) + "(datum.tt)");
    corpus.push_back(std::string(fn) + "(datum.dd)");
  }
  corpus.insert(corpus.end(), {
      "pow(datum.dd, 2)",
      "pow(datum.ii, datum.dd / 10)",
      "clamp(datum.dd, -10, 10)",
      "clamp(datum.dd, datum.ii, 30)",
      "min(datum.dd, datum.ii)",
      "max(datum.dd, datum.ii, 0)",
      "min(datum.dd)",
      "toNumber(datum.ii)",
      "toNumber(datum.ss)",  // string parsing: fallback
      "time(datum.tt)",
      "length(datum.ss)",
      "lower(datum.ss)",
      "upper(datum.ss)",
      "upper(datum.ss) == 'MID'",
      "date_trunc('month', datum.tt)",
      "date_unit_end('month', datum.tt)",
      "if(datum.bb, datum.dd, datum.ii)",
      // Known scalar-only constructs (arrays, signals, untranslatable fns):
      // the compiler must reject these, not miscompile them.
      "inrange(datum.dd, [0, 10])",
      "[datum.dd, datum.ii][1]",
      "indexof(datum.ss, 'i')",
      "format(datum.dd, '.2f')",
      "span([datum.ii, datum.dd])",
      "some_signal + datum.dd",
      // Deeply nested compounds.
      "(datum.dd * 2 + datum.ii / 7) > 3 && !(datum.bb) || datum.ii % 5 == 1",
      "((datum.dd + datum.ii) * (datum.dd - datum.ii)) / (datum.ii % 9 + 1)",
      "datum.ss + '_' + datum.ss",
      "datum.ss < 'mid' || datum.ss >= 'z'",
      "-datum.dd * +datum.ii - -3",
      "abs(datum.dd) > 10 ? floor(datum.dd / 10) : ceil(datum.dd * 2)",
  });
  return corpus;
}

// Compile-time CSE: repeated loads of one column are detected, the cached
// register is reused, and results stay identical to the scalar interpreter.
TEST(ColumnCseTest, RepeatedLoadsDetectedAndEquivalent) {
  TablePtr table = MakeRandomTable(11);
  auto parsed =
      expr::ParseExpression("datum.dd > 2 && datum.dd < 40 && datum.dd != 7");
  ASSERT_TRUE(parsed.ok());
  auto program = expr::Compiler::Compile(*parsed, table->schema());
  ASSERT_TRUE(program.has_value());
  int32_t dd = table->schema().FieldIndex("dd");
  ASSERT_GE(dd, 0);
  ASSERT_EQ(program->reused_cols.size(), 1u);
  EXPECT_EQ(program->reused_cols[0].first, dd);
  EXPECT_EQ(program->reused_cols[0].second, 3);

  std::vector<Value> actual;
  expr::BatchEvaluator(*table).RunToValues(*program, &actual);
  expr::EvalContext ctx;
  ctx.table = table.get();
  for (size_t r = 0; r < table->num_rows(); ++r) {
    ctx.row = r;
    Value expected = expr::Evaluate(*parsed, ctx).scalar();
    ASSERT_TRUE(SameCell(expected, actual[r])) << "row " << r;
  }
}

class VectorEngineDiffTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorEngineDiffTest, CorpusMatchesScalarInterpreter) {
  TablePtr table = MakeRandomTable(GetParam());
  size_t compiled = 0, fallback = 0;
  for (const std::string& text : BuildCorpus()) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    auto program = expr::Compiler::Compile(*parsed, table->schema());
    if (!program) {
      ++fallback;  // scalar fallback is the documented contract here
      continue;
    }
    ++compiled;
    std::vector<Value> actual;
    expr::BatchEvaluator(*table).RunToValues(*program, &actual);
    ASSERT_EQ(actual.size(), table->num_rows()) << text;
    expr::EvalContext ctx;
    ctx.table = table.get();
    for (size_t r = 0; r < table->num_rows(); ++r) {
      ctx.row = r;
      expr::EvalValue ev = expr::Evaluate(*parsed, ctx);
      Value expected = ev.is_array() ? Value::Null() : ev.scalar();
      ASSERT_TRUE(SameCell(expected, actual[r]))
          << text << " row " << r << ": scalar=" << expected.ToString()
          << " vector=" << actual[r].ToString();
    }
  }
  // Most of the corpus is vectorizable (the string/numeric mixes and array
  // expressions legitimately fall back); a compiler regression that rejects
  // everything should fail loudly, not silently shift the whole suite onto
  // the fallback path.
  EXPECT_GT(compiled, fallback * 2) << compiled << " compiled, " << fallback
                                    << " fell back";
}

TEST_P(VectorEngineDiffTest, FilterSelectionsMatchScalarTruthiness) {
  TablePtr table = MakeRandomTable(GetParam() * 31 + 7);
  const char* predicates[] = {
      "datum.dd > 0",        // fused compare (column lhs)
      "10 >= datum.dd",      // fused compare (column rhs, mirrored)
      "datum.ii == 4",       // fused equality
      "datum.ii != 4",       // fused inequality: null rows are included
      "datum.dd == null",    // null comparisons stay on the general path
      "datum.bb",            // bare column truthiness
      "datum.ss == 'mid'",
      "datum.dd > -10 && datum.ii <= 5",
      "!(datum.dd <= 0 || datum.bb)",
      "isValid(datum.dd) && datum.dd * 2 < 40",
  };
  for (const char* text : predicates) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto program = expr::Compiler::Compile(*parsed, table->schema());
    ASSERT_TRUE(program.has_value()) << text << " should vectorize";
    std::vector<int32_t> vec_sel;
    expr::BatchEvaluator(*table).RunFilter(*program, &vec_sel);
    std::vector<int32_t> scalar_sel;
    expr::EvalContext ctx;
    ctx.table = table.get();
    for (size_t r = 0; r < table->num_rows(); ++r) {
      ctx.row = r;
      if (expr::Evaluate(*parsed, ctx).Truthy()) {
        scalar_sel.push_back(static_cast<int32_t>(r));
      }
    }
    EXPECT_EQ(vec_sel, scalar_sel) << text;
  }
}

TEST_P(VectorEngineDiffTest, ExecutorAgreesWithScalarPath) {
  TablePtr table = MakeRandomTable(GetParam() * 131 + 17);
  sql::Engine engine;
  engine.RegisterTable("t", table);
  const char* queries[] = {
      "SELECT * FROM t WHERE dd > 0",
      "SELECT dd * 2 + ii AS x, ss FROM t WHERE ii != 4",
      "SELECT ii, COUNT(*) AS n, SUM(dd) AS s, AVG(dd) AS a FROM t GROUP BY ii "
      "ORDER BY ii",
      "SELECT ss, MIN(dd) AS lo, MAX(dd) AS hi, MEDIAN(dd) AS med, "
      "STDDEV(dd) AS sd FROM t GROUP BY ss ORDER BY ss",
      "SELECT ss, COUNT(*) AS n FROM t GROUP BY ss HAVING n > 20 ORDER BY n DESC",
      "SELECT COUNT(*) AS n, COUNT(dd) AS nv, MIN(ss) AS first_s FROM t",
      "SELECT id_mod, COUNT(*) AS n FROM (SELECT ii % 3 AS id_mod FROM t "
      "WHERE dd IS NOT NULL) GROUP BY id_mod ORDER BY id_mod",
      "SELECT ss, dd FROM t WHERE dd IS NOT NULL ORDER BY dd DESC, ss LIMIT 25 "
      "OFFSET 5",
      "SELECT ii, ROW_NUMBER() OVER (PARTITION BY ss ORDER BY dd) AS rn FROM t "
      "ORDER BY ii, rn",
      "SELECT ii, SUM(dd) OVER (PARTITION BY bb ORDER BY ii) AS run FROM t "
      "ORDER BY ii, run",
      "SELECT MONTH(tt) AS m, COUNT(*) AS n FROM t GROUP BY MONTH(tt) ORDER BY m",
      "SELECT CASE WHEN dd > 10 THEN 'hi' WHEN dd IS NULL THEN 'null' "
      "ELSE 'lo' END AS bucket, ii FROM t ORDER BY ii LIMIT 50",
      // String-constant group keys: the grouping registers must own their
      // constants (regression: they once dangled into the freed Program).
      "SELECT CASE WHEN dd > 0 THEN 'pos' ELSE 'neg' END AS sign_s, "
      "COUNT(*) AS n FROM t GROUP BY CASE WHEN dd > 0 THEN 'pos' ELSE 'neg' END "
      "ORDER BY sign_s",
  };
  for (const char* sql : queries) {
    expr::SetVectorizedEnabled(true);
    auto vec = engine.Query(sql);
    expr::SetVectorizedEnabled(false);
    auto scalar = engine.Query(sql);
    expr::SetVectorizedEnabled(true);
    ASSERT_TRUE(vec.ok()) << sql << ": " << vec.status();
    ASSERT_TRUE(scalar.ok()) << sql << ": " << scalar.status();
    ASSERT_EQ(vec->table->num_rows(), scalar->table->num_rows()) << sql;
    ASSERT_TRUE(vec->table->Equals(*scalar->table))
        << sql << "\nvectorized:\n" << vec->table->ToString(8)
        << "scalar:\n" << scalar->table->ToString(8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorEngineDiffTest,
                         ::testing::Values(1u, 2u, 3u, 4u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace vegaplus
