#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace vegaplus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, CopyIsCheapAndEqualContent) {
  Status s = Status::ParseError("x");
  Status t = s;
  EXPECT_TRUE(t.IsParseError());
  EXPECT_EQ(t.message(), "x");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  VP_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValuePath) {
  Result<int> r = Half(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.ValueOr(-1), 5);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = Half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

TEST(StrUtilTest, SplitJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
}

TEST(StrUtilTest, SplitNoSeparator) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StrUtilTest, ParseInt64Strict) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("42x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("3.5", &v));
}

TEST(StrUtilTest, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("1.2.3", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StrUtilTest, FormatDoubleRoundTrips) {
  for (double d : {0.0, 1.0, -2.5, 3.14159265358979, 1e-9, 12345678.0}) {
    double parsed = 0;
    ASSERT_TRUE(ParseDouble(FormatDouble(d), &parsed)) << FormatDouble(d);
    EXPECT_EQ(parsed, d);
  }
}

TEST(StrUtilTest, FormatDoubleIntegral) {
  EXPECT_EQ(FormatDouble(5.0), "5");
  EXPECT_EQ(FormatDouble(-3.0), "-3");
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.Uniform(2.0, 5.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 5.0);
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(5);
  int low = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.5) < 5) ++low;
  }
  // Zipf(1.5) puts most of the mass on the first few ranks.
  EXPECT_GT(low, n / 2);
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace vegaplus
