#include <gtest/gtest.h>

#include "data/csv.h"

namespace vegaplus {
namespace data {
namespace {

TEST(CsvTest, TypeInference) {
  auto r = ReadCsvString("a,b,c,d\n1,2.5,hello,2001-02-03\n2,3,world,2001-03-04\n");
  ASSERT_TRUE(r.ok()) << r.status();
  const Table& t = **r;
  EXPECT_EQ(t.schema().field(0).type, DataType::kInt64);
  EXPECT_EQ(t.schema().field(1).type, DataType::kFloat64);
  EXPECT_EQ(t.schema().field(2).type, DataType::kString);
  EXPECT_EQ(t.schema().field(3).type, DataType::kTimestamp);
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.ValueAt(0, "a"), Value::Int(1));
  EXPECT_DOUBLE_EQ(t.ValueAt(1, "b").AsDouble(), 3.0);
}

TEST(CsvTest, IntWidensToFloat) {
  auto r = ReadCsvString("x\n1\n2.5\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->schema().field(0).type, DataType::kFloat64);
}

TEST(CsvTest, MixedBecomesString) {
  auto r = ReadCsvString("x\n1\nabc\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->schema().field(0).type, DataType::kString);
  EXPECT_EQ((*r)->ValueAt(0, "x"), Value::String("1"));
}

TEST(CsvTest, NullTokens) {
  auto r = ReadCsvString("x,y\n1,a\n,NA\nNULL,b\n");
  ASSERT_TRUE(r.ok());
  const Table& t = **r;
  EXPECT_TRUE(t.ValueAt(1, "x").is_null());
  EXPECT_TRUE(t.ValueAt(2, "x").is_null());
  EXPECT_TRUE(t.ValueAt(1, "y").is_null());
}

TEST(CsvTest, QuotedFields) {
  auto r = ReadCsvString("a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ValueAt(0, "a"), Value::String("x,y"));
  EXPECT_EQ((*r)->ValueAt(0, "b"), Value::String("he said \"hi\""));
}

TEST(CsvTest, CrLfHandling) {
  auto r = ReadCsvString("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 2u);
  EXPECT_EQ((*r)->ValueAt(1, "b"), Value::Int(4));
}

TEST(CsvTest, RaggedRowFails) {
  auto r = ReadCsvString("a,b\n1\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, EmptyInputFails) {
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvTest, RoundTrip) {
  auto r = ReadCsvString("name,score,when\nalice,1.5,2020-05-06\nbo b,2,2021-07-08\n");
  ASSERT_TRUE(r.ok());
  std::string text = WriteCsvString(**r);
  auto r2 = ReadCsvString(text);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_TRUE((*r)->Equals(**r2));
}

TEST(TimestampTest, ParseDateOnly) {
  int64_t ms = 0;
  ASSERT_TRUE(ParseTimestamp("1970-01-01", &ms));
  EXPECT_EQ(ms, 0);
  ASSERT_TRUE(ParseTimestamp("1970-01-02", &ms));
  EXPECT_EQ(ms, 86400000);
}

TEST(TimestampTest, ParseDateTime) {
  int64_t ms = 0;
  ASSERT_TRUE(ParseTimestamp("1970-01-01 01:00:00", &ms));
  EXPECT_EQ(ms, 3600000);
  ASSERT_TRUE(ParseTimestamp("1970-01-01T00:01:00", &ms));
  EXPECT_EQ(ms, 60000);
}

TEST(TimestampTest, RejectsGarbage) {
  int64_t ms = 0;
  EXPECT_FALSE(ParseTimestamp("not-a-date", &ms));
  EXPECT_FALSE(ParseTimestamp("2001-13-01", &ms));
  EXPECT_FALSE(ParseTimestamp("2001-01-40", &ms));
  EXPECT_FALSE(ParseTimestamp("", &ms));
}

TEST(TimestampTest, FormatRoundTrip) {
  for (const char* s : {"2001-02-03 04:05:06", "1969-12-31 23:59:59",
                        "2100-01-01 00:00:00", "1987-06-15 12:00:00"}) {
    int64_t ms = 0;
    ASSERT_TRUE(ParseTimestamp(s, &ms)) << s;
    EXPECT_EQ(FormatTimestamp(ms), s);
  }
}

TEST(TimestampTest, LeapYearDay) {
  int64_t feb29 = 0, mar01 = 0;
  ASSERT_TRUE(ParseTimestamp("2020-02-29", &feb29));
  ASSERT_TRUE(ParseTimestamp("2020-03-01", &mar01));
  EXPECT_EQ(mar01 - feb29, 86400000);
}

}  // namespace
}  // namespace data
}  // namespace vegaplus
