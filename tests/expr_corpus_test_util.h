// Shared corpus for the expression-engine differential suites: a randomized
// null/NaN-laden table over every column type, and a generated expression
// corpus covering all operators, ternaries, calls, and known scalar-only
// constructs. Used by expr_vector_diff_test.cc (scalar vs vectorized) and
// morsel_diff_test.cc (single-threaded vs morsel-parallel).
#ifndef VEGAPLUS_TESTS_EXPR_CORPUS_TEST_UTIL_H_
#define VEGAPLUS_TESTS_EXPR_CORPUS_TEST_UTIL_H_

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/table.h"

namespace vegaplus {
namespace testutil {

/// Random table with doubles (nulls + NaNs + ±Inf/−0.0/denormals), ints,
/// bools, short strings
/// (nulls + empties), timestamps (nulls), a low-cardinality category column
/// (`sc`, 12 distinct + nulls — the dictionary-encoding sweet spot), and a
/// high-cardinality string column (`sh`, mostly unique + nulls — the
/// dictionary worst case). String columns take whatever physical form the
/// data::SetDictionaryEncodingEnabled switch dictates at build time, so the
/// same call builds the dictionary-encoded table and the flat twin.
inline data::TablePtr MakeRandomExprTable(uint64_t seed, size_t rows) {
  using data::Column;
  using data::DataType;
  Rng rng(seed);
  Column dd(DataType::kFloat64);
  Column ii(DataType::kInt64);
  Column bb(DataType::kBool);
  Column ss(DataType::kString);
  Column tt(DataType::kTimestamp);
  Column sc(DataType::kString);
  Column sh(DataType::kString);
  const char* words[] = {"", "a", "mid", "zebra", "Mixed", "mid"};
  for (size_t r = 0; r < rows; ++r) {
    if (rng.NextBool(0.1)) {
      dd.AppendNull();
    } else if (rng.NextBool(0.05)) {
      dd.AppendDouble(std::nan(""));
    } else if (rng.NextBool(0.05)) {
      // SIMD-hostile specials: infinities, signed zero, denormals — values
      // where a vectorized compare or accumulate could legally diverge from
      // scalar code if it took shortcuts (x*0, x-x, flush-to-zero).
      const double specials[] = {std::numeric_limits<double>::infinity(),
                                 -std::numeric_limits<double>::infinity(),
                                 -0.0,
                                 std::numeric_limits<double>::denorm_min(),
                                 -std::numeric_limits<double>::denorm_min(),
                                 std::numeric_limits<double>::min() / 2};
      dd.AppendDouble(specials[rng.Index(6)]);
    } else {
      dd.AppendDouble(rng.Uniform(-50, 50));
    }
    if (rng.NextBool(0.1)) {
      ii.AppendNull();
    } else {
      ii.AppendInt(rng.UniformInt(-20, 20));
    }
    if (rng.NextBool(0.1)) {
      bb.AppendNull();
    } else {
      bb.AppendBool(rng.NextBool());
    }
    if (rng.NextBool(0.1)) {
      ss.AppendNull();
    } else {
      ss.AppendString(words[rng.Index(6)]);
    }
    if (rng.NextBool(0.1)) {
      tt.AppendNull();
    } else {
      tt.AppendInt(946684800000LL + rng.UniformInt(0, 4LL * 365 * 86400000LL));
    }
    if (rng.NextBool(0.1)) {
      sc.AppendNull();
    } else {
      sc.AppendString("cat_" + std::to_string(rng.Index(12)));
    }
    if (rng.NextBool(0.1)) {
      sh.AppendNull();
    } else {
      sh.AppendString("id_" + std::to_string(rng.UniformInt(0, 1 << 30)));
    }
  }
  std::vector<Column> cols;
  cols.push_back(std::move(dd));
  cols.push_back(std::move(ii));
  cols.push_back(std::move(bb));
  cols.push_back(std::move(ss));
  cols.push_back(std::move(tt));
  cols.push_back(std::move(sc));
  cols.push_back(std::move(sh));
  return std::make_shared<data::Table>(
      data::Schema({{"dd", DataType::kFloat64},
                    {"ii", DataType::kInt64},
                    {"bb", DataType::kBool},
                    {"ss", DataType::kString},
                    {"tt", DataType::kTimestamp},
                    {"sc", DataType::kString},
                    {"sh", DataType::kString}}),
      std::move(cols));
}

/// Same value modulo boxing: the vectorized engine widens numerics to
/// double, which is exactly what the interpreter's arithmetic/comparison/
/// hash/compare semantics see (Value::AsDouble everywhere).
inline bool SameCell(const data::Value& a, const data::Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
  if (a.is_string() || b.is_string()) {
    return a.is_string() && b.is_string() && a.AsString() == b.AsString();
  }
  const double x = a.AsDouble(), y = b.AsDouble();
  return x == y || (std::isnan(x) && std::isnan(y));
}

/// The operand pool: every column, a missing field, and literals of each
/// type (including null) so operator null/type handling is fully exercised.
inline const std::vector<std::string>& ExprOperands() {
  static const std::vector<std::string> kOperands = {
      "datum.dd", "datum.ii", "datum.bb", "datum.ss",  "datum.tt",
      "datum.nope", "2.5",    "0",        "null",      "'mid'",
      "true",     "false",    "datum.sc", "'cat_3'",
  };
  return kOperands;
}

/// ~1.4k expressions: all binary/unary operators over the operand pool,
/// ternaries, calls, and known scalar-only constructs the compiler must
/// reject rather than miscompile.
inline std::vector<std::string> BuildExprCorpus() {
  std::vector<std::string> corpus;
  const char* binary_ops[] = {"+", "-", "*",  "/",  "%",  "==",
                              "!=", "<", "<=", ">",  ">=", "&&",
                              "||"};
  for (const std::string& a : ExprOperands()) {
    for (const std::string& b : ExprOperands()) {
      for (const char* op : binary_ops) {
        corpus.push_back(a + " " + op + " " + b);
      }
    }
  }
  for (const std::string& a : ExprOperands()) {
    corpus.push_back("-(" + a + ")");
    corpus.push_back("!(" + a + ")");
    corpus.push_back("+(" + a + ")");
    corpus.push_back("isValid(" + a + ")");
  }
  // Ternaries, including branch-type promotion and fallback-worthy mixes.
  const std::string conditions[] = {"datum.bb", "datum.dd > 0", "datum.ss"};
  for (const std::string& c : conditions) {
    corpus.push_back(c + " ? datum.dd : datum.ii");
    corpus.push_back(c + " ? datum.dd : null");
    corpus.push_back(c + " ? datum.ii > 0 : datum.dd");
    corpus.push_back(c + " ? datum.ss : 'other'");
    corpus.push_back(c + " ? datum.ss : datum.dd");  // string/num mix: fallback
  }
  // Calls over numeric, null, and string arguments.
  for (const char* fn : {"abs", "ceil", "floor", "round", "sqrt", "exp", "log"}) {
    corpus.push_back(std::string(fn) + "(datum.dd)");
    corpus.push_back(std::string(fn) + "(datum.ii / 3)");
  }
  for (const char* fn :
       {"year", "month", "date", "day", "hours", "minutes", "seconds"}) {
    corpus.push_back(std::string(fn) + "(datum.tt)");
    corpus.push_back(std::string(fn) + "(datum.dd)");
  }
  corpus.insert(corpus.end(), {
      "pow(datum.dd, 2)",
      "pow(datum.ii, datum.dd / 10)",
      "clamp(datum.dd, -10, 10)",
      "clamp(datum.dd, datum.ii, 30)",
      "min(datum.dd, datum.ii)",
      "max(datum.dd, datum.ii, 0)",
      "min(datum.dd)",
      "toNumber(datum.ii)",
      "toNumber(datum.ss)",  // string parsing: fallback
      "time(datum.tt)",
      "length(datum.ss)",
      "lower(datum.ss)",
      "upper(datum.ss)",
      "upper(datum.ss) == 'MID'",
      "date_trunc('month', datum.tt)",
      "date_unit_end('month', datum.tt)",
      "if(datum.bb, datum.dd, datum.ii)",
      // Known scalar-only constructs (arrays, signals, untranslatable fns):
      // the compiler must reject these, not miscompile them.
      "inrange(datum.dd, [0, 10])",
      "[datum.dd, datum.ii][1]",
      "indexof(datum.ss, 'i')",
      "format(datum.dd, '.2f')",
      "span([datum.ii, datum.dd])",
      "some_signal + datum.dd",
      // Deeply nested compounds.
      "(datum.dd * 2 + datum.ii / 7) > 3 && !(datum.bb) || datum.ii % 5 == 1",
      "((datum.dd + datum.ii) * (datum.dd - datum.ii)) / (datum.ii % 9 + 1)",
      "datum.ss + '_' + datum.ss",
      "datum.ss < 'mid' || datum.ss >= 'z'",
      "-datum.dd * +datum.ii - -3",
      "abs(datum.dd) > 10 ? floor(datum.dd / 10) : ceil(datum.dd * 2)",
      // Dictionary-relevant shapes: category equality (the code-compare fast
      // path), cross-column string compares (distinct dictionaries),
      // high-cardinality references, and fused conjunctions mixing numeric
      // and string conjuncts.
      "datum.sc == 'cat_3'",
      "datum.sc != 'cat_3'",
      "datum.sc == 'not_in_dict'",
      "datum.sc != 'not_in_dict'",
      "datum.sc == datum.ss",
      "datum.sc == datum.sh",
      "datum.sh == 'id_1'",
      "datum.sc < 'cat_5'",
      "upper(datum.sc)",
      "length(datum.sh)",
      "datum.bb ? datum.sc : datum.sh",
      "datum.dd > 0 && datum.sc == 'cat_1'",
      "datum.sc == 'cat_1' && datum.ii < 5 && datum.dd > -10",
      "datum.sc != 'cat_2' && datum.sh == 'id_1'",
  });
  return corpus;
}

}  // namespace testutil
}  // namespace vegaplus

#endif  // VEGAPLUS_TESTS_EXPR_CORPUS_TEST_UTIL_H_
