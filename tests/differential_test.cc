// Differential tests: every rewritable transform executed client-side must
// agree with its SQL rewrite executed by the engine, across datasets and
// randomized parameters. This is the contract (§4) the optimizer's freedom
// to split anywhere rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "benchdata/datasets.h"
#include "common/random.h"
#include "common/str_util.h"
#include "data/ipc.h"
#include "dataflow/signal_registry.h"
#include "expr/parser.h"
#include "expr/sql_translator.h"
#include "json/json_parser.h"
#include "rewrite/rewriter.h"
#include "spec/transform_factory.h"
#include "sql/engine.h"
#include "transforms/transforms.h"

namespace vegaplus {
namespace {

using benchdata::Dataset;

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {
 protected:
  void SetUp() override {
    auto [name, seed] = GetParam();
    auto ds = benchdata::MakeDataset(name, 2500, seed);
    ASSERT_TRUE(ds.ok());
    dataset_ = std::make_unique<Dataset>(*ds);
    engine_.RegisterTable("src", dataset_->table);
    rng_.Seed(seed * 77 + 1);
  }

  // Run `transforms` (a JSON array of transform specs) both ways and
  // compare row counts + per-column sums of the named check columns.
  void CheckPipeline(const std::string& transforms_json,
                     const std::vector<std::string>& check_columns,
                     dataflow::SignalRegistry* signals) {
    auto doc = json::Parse(transforms_json);
    ASSERT_TRUE(doc.ok()) << doc.status() << "\n" << transforms_json;

    // Client side.
    data::TablePtr client = dataset_->table;
    rewrite::ServerPipeline pipeline = rewrite::MakeTablePipeline("src");
    int uid = 0;
    for (const auto& t : doc->array()) {
      spec::TransformSpec ts{t.GetString("type"), t};
      auto op = spec::BuildTransformOp(ts);
      ASSERT_TRUE(op.ok()) << op.status();
      auto result = (*op)->Evaluate(client, *signals);
      ASSERT_TRUE(result.ok()) << result.status();
      for (auto& [name, value] : result->signal_writes) {
        signals->Set(name, value, 1);
      }
      if (result->table) client = result->table;
      ASSERT_TRUE(rewrite::ExtendPipeline(&pipeline, ts, uid++).ok());
    }

    // Server side (legacy path: fill holes as SQL text, parse, execute).
    std::string sql_template = rewrite::RenderPipelineSql(pipeline);
    rewrite::DerivedResolver resolver(*signals, pipeline.derived);
    ASSERT_TRUE(resolver.Materialize().ok());
    auto sql = expr::FillSqlHoles(sql_template, resolver);
    ASSERT_TRUE(sql.ok()) << sql.status() << "\n" << sql_template;
    auto server = engine_.Query(*sql);
    ASSERT_TRUE(server.ok()) << server.status() << "\n" << *sql;

    // Prepared path (parse template once, bind parameters into the AST) must
    // be bit-identical to the legacy fill-and-parse path.
    auto prepared = engine_.Prepare(sql_template);
    ASSERT_TRUE(prepared.ok()) << prepared.status() << "\n" << sql_template;
    auto bound = engine_.ExecuteBound(**prepared, resolver);
    ASSERT_TRUE(bound.ok()) << bound.status() << "\n" << (*prepared)->canonical_sql;
    EXPECT_TRUE(data::SerializeBinary(*bound->table) ==
                data::SerializeBinary(*server->table))
        << "prepared/legacy result mismatch\n" << *sql;

    EXPECT_EQ(client->num_rows(), server->table->num_rows()) << *sql;
    for (const std::string& col : check_columns) {
      const data::Column* cc = client->ColumnByName(col);
      const data::Column* sc = server->table->ColumnByName(col);
      ASSERT_NE(cc, nullptr) << "client missing " << col;
      ASSERT_NE(sc, nullptr) << "server missing " << col << "\n" << *sql;
      double client_sum = 0, server_sum = 0;
      for (size_t r = 0; r < cc->length(); ++r) {
        double v = cc->NumericAt(r);
        if (!std::isnan(v)) client_sum += v;
      }
      for (size_t r = 0; r < sc->length(); ++r) {
        double v = sc->NumericAt(r);
        if (!std::isnan(v)) server_sum += v;
      }
      EXPECT_NEAR(client_sum, server_sum,
                  1e-6 * std::max(1.0, std::fabs(client_sum)))
          << col << "\n" << *sql;
    }
  }

  std::string Q(size_t i) const { return dataset_->quantitative[i % dataset_->quantitative.size()]; }
  std::string C(size_t i) const { return dataset_->categorical[i % dataset_->categorical.size()]; }

  std::unique_ptr<Dataset> dataset_;
  sql::Engine engine_;
  Rng rng_;
};

TEST_P(DifferentialTest, FilterCountsAgree) {
  dataflow::SignalRegistry signals;
  data::TableStats stats = data::ComputeTableStats(*dataset_->table);
  const data::ColumnStats* cs = stats.Find(Q(0));
  ASSERT_NE(cs, nullptr);
  double cut = cs->min + rng_.NextDouble() * (cs->max - cs->min);
  std::string json = StrFormat(
      R"x([{"type":"filter","expr":"datum.%s > %s"}])x", Q(0).c_str(),
      FormatDouble(cut).c_str());
  CheckPipeline(json, {Q(1)}, &signals);
}

TEST_P(DifferentialTest, ExtentBinAggregateAgree) {
  dataflow::SignalRegistry signals;
  signals.Set("mb", expr::EvalValue::Number(5 + static_cast<double>(rng_.Index(40))), 0);
  std::string json = StrFormat(
      R"x([{"type":"extent","field":"%s","signal":"e"},
           {"type":"bin","field":"%s","extent":{"signal":"e"},
            "maxbins":{"signal":"mb"},"as":["bin0","bin1"]},
           {"type":"aggregate","groupby":["bin0","bin1"],"ops":["count"],
            "fields":[null],"as":["count"]}])x",
      Q(0).c_str(), Q(0).c_str());
  CheckPipeline(json, {"bin0", "count"}, &signals);
}

TEST_P(DifferentialTest, GroupedStatisticsAgree) {
  dataflow::SignalRegistry signals;
  std::string json = StrFormat(
      R"x([{"type":"aggregate","groupby":["%s"],
            "ops":["count","sum","mean","min","max","median","stdev"],
            "fields":[null,"%s","%s","%s","%s","%s","%s"],
            "as":["n","s","m","lo","hi","med","sd"]}])x",
      C(0).c_str(), Q(0).c_str(), Q(0).c_str(), Q(0).c_str(), Q(0).c_str(),
      Q(0).c_str(), Q(0).c_str());
  CheckPipeline(json, {"n", "s", "m", "lo", "hi", "med", "sd"}, &signals);
}

TEST_P(DifferentialTest, FilterBinAggregateWithBrushAgree) {
  dataflow::SignalRegistry signals;
  data::TableStats stats = data::ComputeTableStats(*dataset_->table);
  const data::ColumnStats* cs = stats.Find(Q(1));
  ASSERT_NE(cs, nullptr);
  double lo = cs->min + 0.2 * (cs->max - cs->min);
  double hi = cs->min + (0.4 + 0.5 * rng_.NextDouble()) * (cs->max - cs->min);
  signals.Set("brush", expr::EvalValue::Array({data::Value::Double(lo),
                                               data::Value::Double(hi)}),
              0);
  signals.Set("ext", expr::EvalValue::Array({data::Value::Double(cs->min),
                                             data::Value::Double(cs->max)}),
              0);
  std::string json = StrFormat(
      R"x([{"type":"filter","expr":"inrange(datum.%s, brush)"},
           {"type":"bin","field":"%s","extent":{"signal":"ext"},
            "maxbins":20,"as":["bin0","bin1"]},
           {"type":"aggregate","groupby":["bin0"],"ops":["count"],
            "fields":[null],"as":["count"]}])x",
      Q(1).c_str(), Q(1).c_str());
  CheckPipeline(json, {"count"}, &signals);
}

TEST_P(DifferentialTest, StackAgree) {
  dataflow::SignalRegistry signals;
  std::string json = StrFormat(
      R"x([{"type":"aggregate","groupby":["%s","%s"],"ops":["count"],
            "fields":[null],"as":["count"]},
           {"type":"stack","field":"count","groupby":["%s"],
            "sort":{"field":"%s"},"as":["y0","y1"]}])x",
      C(0).c_str(), C(1).c_str(), C(0).c_str(), C(1).c_str());
  CheckPipeline(json, {"y0", "y1", "count"}, &signals);
}

TEST_P(DifferentialTest, TimeunitAggregateAgree) {
  dataflow::SignalRegistry signals;
  const std::string& t = dataset_->temporal[0];
  std::string json = StrFormat(
      R"x([{"type":"timeunit","field":"%s","units":"month"},
           {"type":"aggregate","groupby":["unit0","unit1"],
            "ops":["count","mean"],"fields":[null,"%s"],"as":["n","avg"]}])x",
      t.c_str(), Q(0).c_str());
  CheckPipeline(json, {"n", "avg"}, &signals);
}

TEST_P(DifferentialTest, CollectProjectFormulaAgree) {
  dataflow::SignalRegistry signals;
  std::string json = StrFormat(
      R"x([{"type":"formula","expr":"datum.%s * 2 + 1","as":"scaled"},
           {"type":"project","fields":["%s","scaled"],"as":["cat","scaled"]},
           {"type":"collect","sort":{"field":"scaled","order":["descending"]}}])x",
      Q(0).c_str(), C(0).c_str());
  CheckPipeline(json, {"scaled"}, &signals);
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsBySeeds, DifferentialTest,
    ::testing::Combine(::testing::ValuesIn(benchdata::DatasetNames()),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace vegaplus
