#include <gtest/gtest.h>

#include <cmath>

#include "data/csv.h"
#include "dataflow/dataflow.h"
#include "expr/parser.h"
#include "transforms/binning.h"
#include "transforms/transforms.h"

namespace vegaplus {
namespace dataflow {
namespace {

using data::DataType;
using data::Schema;
using data::TablePtr;
using data::Value;
using transforms::FieldRef;

TablePtr SmallTable() {
  Schema schema({{"v", DataType::kFloat64}, {"cat", DataType::kString}});
  return data::MakeTable(schema, {{Value::Double(1), Value::String("a")},
                                  {Value::Double(5), Value::String("b")},
                                  {Value::Double(3), Value::String("a")},
                                  {Value::Double(9), Value::String("b")},
                                  {Value::Double(7), Value::String("a")}});
}

TEST(SignalRegistryTest, SetLookupStamp) {
  SignalRegistry reg;
  EXPECT_FALSE(reg.Has("x"));
  reg.Set("x", expr::EvalValue::Number(4), 3);
  EXPECT_TRUE(reg.Has("x"));
  EXPECT_EQ(reg.StampOf("x"), 3);
  EXPECT_EQ(reg.StampOf("missing"), -1);
  expr::EvalValue v;
  ASSERT_TRUE(reg.Lookup("x", &v));
  EXPECT_DOUBLE_EQ(v.AsDouble(), 4.0);
}

TEST(DataflowTest, InitialRunEvaluatesEverything) {
  Dataflow flow;
  auto* src = flow.Add(std::make_unique<TableSourceOp>(SmallTable()), nullptr);
  auto pred = *expr::ParseExpression("datum.v > 2");
  auto* filter = flow.Add(std::make_unique<transforms::FilterOp>(pred), src);
  auto stats = flow.Run();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->ops_evaluated, 2);
  ASSERT_NE(filter->output, nullptr);
  EXPECT_EQ(filter->output->num_rows(), 4u);
}

TEST(DataflowTest, PartialReevaluationOnlyDownstream) {
  Dataflow flow;
  flow.DeclareSignal("threshold", expr::EvalValue::Number(2));
  auto* src = flow.Add(std::make_unique<TableSourceOp>(SmallTable()), nullptr);
  auto pred = *expr::ParseExpression("datum.v > threshold");
  auto* filter = flow.Add(std::make_unique<transforms::FilterOp>(pred), src);
  transforms::AggregateOp::Params agg_params;
  agg_params.groupby = {FieldRef::Fixed("cat")};
  agg_params.ops = {transforms::VegaAggOp::kCount};
  agg_params.fields.resize(1);
  auto* agg = flow.Add(std::make_unique<transforms::AggregateOp>(agg_params), filter);
  ASSERT_TRUE(flow.Run().ok());
  EXPECT_EQ(filter->output->num_rows(), 4u);

  auto stats = flow.Update({{"threshold", expr::EvalValue::Number(6)}});
  ASSERT_TRUE(stats.ok());
  // Source must NOT re-evaluate; filter + aggregate must.
  EXPECT_EQ(stats->ops_evaluated, 2);
  EXPECT_EQ(filter->output->num_rows(), 2u);  // 7, 9
  ASSERT_NE(agg->output, nullptr);
  EXPECT_EQ(agg->output->num_rows(), 2u);  // groups a, b
  EXPECT_LT(src->stamp, filter->stamp);
}

TEST(DataflowTest, NoOpUpdateEvaluatesNothing) {
  Dataflow flow;
  flow.DeclareSignal("unused", expr::EvalValue::Number(1));
  auto* src = flow.Add(std::make_unique<TableSourceOp>(SmallTable()), nullptr);
  (void)src;
  ASSERT_TRUE(flow.Run().ok());
  auto stats = flow.Update({{"unused", expr::EvalValue::Number(2)}});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->ops_evaluated, 0);
}

TEST(DataflowTest, SignalProducerOrdersConsumers) {
  // bin consumes the signal produced by extent: extent must run first even
  // though both are added in adversarial order via separate chains.
  Dataflow flow;
  flow.DeclareSignal("mb", expr::EvalValue::Number(10));
  auto* src = flow.Add(std::make_unique<TableSourceOp>(SmallTable()), nullptr);
  transforms::BinOp::Params bin_params;
  bin_params.field = FieldRef::Fixed("v");
  bin_params.extent_signal = "ext";
  bin_params.maxbins_signal = "mb";
  auto* bin = flow.Add(std::make_unique<transforms::BinOp>(bin_params), src);
  auto* extent = flow.Add(
      std::make_unique<transforms::ExtentOp>(FieldRef::Fixed("v"), "ext"), src);
  flow.RegisterSignalProducer("ext", extent);
  ASSERT_TRUE(flow.Run().ok());
  EXPECT_GT(bin->rank, extent->rank);
  ASSERT_NE(bin->output, nullptr);
  EXPECT_TRUE(bin->output->schema().HasField("bin0"));
}

TEST(DataflowTest, CurrentOperatorsTracksLatestPass) {
  Dataflow flow;
  flow.DeclareSignal("t", expr::EvalValue::Number(0));
  auto* src = flow.Add(std::make_unique<TableSourceOp>(SmallTable()), nullptr);
  auto pred = *expr::ParseExpression("datum.v > t");
  flow.Add(std::make_unique<transforms::FilterOp>(pred), src);
  ASSERT_TRUE(flow.Run().ok());
  EXPECT_EQ(flow.CurrentOperators().size(), 2u);
  ASSERT_TRUE(flow.Update({{"t", expr::EvalValue::Number(4)}}).ok());
  EXPECT_EQ(flow.CurrentOperators().size(), 1u);  // only the filter
}

// ---- Transform semantics ----

class TransformTest : public ::testing::Test {
 protected:
  Result<TablePtr> RunOp(std::unique_ptr<Operator> op, TablePtr input,
                         SignalRegistry* signals = nullptr) {
    SignalRegistry local;
    SignalRegistry* reg = signals != nullptr ? signals : &local;
    auto result = op->Evaluate(input, *reg);
    VP_RETURN_IF_ERROR(result.status());
    for (auto& [name, value] : result->signal_writes) {
      reg->Set(name, value, 1);
      last_signals_.Set(name, value, 1);
    }
    return result->table;
  }
  SignalRegistry last_signals_;
};

TEST_F(TransformTest, FilterKeepsMatching) {
  auto pred = *expr::ParseExpression("datum.cat == 'a'");
  auto t = RunOp(std::make_unique<transforms::FilterOp>(pred), SmallTable());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 3u);
}

TEST_F(TransformTest, FilterOnMissingInputFails) {
  auto pred = *expr::ParseExpression("datum.v > 0");
  transforms::FilterOp op(pred);
  SignalRegistry reg;
  EXPECT_FALSE(op.Evaluate(nullptr, reg).ok());
}

TEST_F(TransformTest, ExtentEmitsSignalAndPassesThrough) {
  auto t = RunOp(std::make_unique<transforms::ExtentOp>(FieldRef::Fixed("v"), "e"),
                 SmallTable());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 5u);  // pass-through
  expr::EvalValue e;
  ASSERT_TRUE(last_signals_.Lookup("e", &e));
  ASSERT_TRUE(e.is_array());
  EXPECT_DOUBLE_EQ(e.array()[0].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(e.array()[1].AsDouble(), 9.0);
}

TEST_F(TransformTest, BinAppendsBuckets) {
  SignalRegistry signals;
  signals.Set("e", expr::EvalValue::Array({Value::Double(0), Value::Double(10)}), 0);
  transforms::BinOp::Params params;
  params.field = FieldRef::Fixed("v");
  params.extent_signal = "e";
  params.maxbins = 5;
  auto t = RunOp(std::make_unique<transforms::BinOp>(params), SmallTable(), &signals);
  ASSERT_TRUE(t.ok()) << t.status();
  const data::Table& table = **t;
  ASSERT_TRUE(table.schema().HasField("bin0"));
  ASSERT_TRUE(table.schema().HasField("bin1"));
  // extent [0,10] maxbins 5 -> step 2.
  EXPECT_DOUBLE_EQ(table.ValueAt(0, "bin0").AsDouble(), 0.0);   // v=1
  EXPECT_DOUBLE_EQ(table.ValueAt(0, "bin1").AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(table.ValueAt(3, "bin0").AsDouble(), 8.0);   // v=9
}

TEST_F(TransformTest, AggregateCountsAndMeans) {
  transforms::AggregateOp::Params params;
  params.groupby = {FieldRef::Fixed("cat")};
  params.ops = {transforms::VegaAggOp::kCount, transforms::VegaAggOp::kMean};
  params.fields = {FieldRef(), FieldRef::Fixed("v")};
  params.as = {"count", "mean_v"};
  auto t = RunOp(std::make_unique<transforms::AggregateOp>(params), SmallTable());
  ASSERT_TRUE(t.ok()) << t.status();
  const data::Table& table = **t;
  ASSERT_EQ(table.num_rows(), 2u);
  // First-seen group order: a then b.
  EXPECT_EQ(table.ValueAt(0, "cat"), Value::String("a"));
  EXPECT_EQ(table.ValueAt(0, "count"), Value::Int(3));
  EXPECT_NEAR(table.ValueAt(0, "mean_v").AsDouble(), (1 + 3 + 7) / 3.0, 1e-12);
  EXPECT_EQ(table.ValueAt(1, "count"), Value::Int(2));
}

TEST_F(TransformTest, CollectSorts) {
  auto t = RunOp(std::make_unique<transforms::CollectOp>(
                     std::vector<transforms::CollectOp::SortKey>{
                         {FieldRef::Fixed("v"), /*descending=*/true}}),
                 SmallTable());
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)->ValueAt(0, "v").AsDouble(), 9.0);
  EXPECT_DOUBLE_EQ((*t)->ValueAt(4, "v").AsDouble(), 1.0);
}

TEST_F(TransformTest, ProjectSelectsAndRenames) {
  auto t = RunOp(std::make_unique<transforms::ProjectOp>(
                     std::vector<FieldRef>{FieldRef::Fixed("v")},
                     std::vector<std::string>{"value"}),
                 SmallTable());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_columns(), 1u);
  EXPECT_EQ((*t)->schema().field(0).name, "value");
}

TEST_F(TransformTest, StackRunningSums) {
  transforms::StackOp::Params params;
  params.field = FieldRef::Fixed("v");
  params.groupby = {FieldRef::Fixed("cat")};
  params.sort = {{FieldRef::Fixed("v"), false}};
  auto t = RunOp(std::make_unique<transforms::StackOp>(params), SmallTable());
  ASSERT_TRUE(t.ok()) << t.status();
  const data::Table& table = **t;
  // Group a: values 1,3,7 sorted -> spans [0,1],[1,4],[4,11].
  // Row 0 (v=1): y0=0,y1=1. Row 2 (v=3): y0=1,y1=4. Row 4 (v=7): y0=4,y1=11.
  EXPECT_DOUBLE_EQ(table.ValueAt(0, "y0").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(table.ValueAt(2, "y0").AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(table.ValueAt(4, "y1").AsDouble(), 11.0);
  // Group b: 5 then 9.
  EXPECT_DOUBLE_EQ(table.ValueAt(1, "y0").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(table.ValueAt(3, "y1").AsDouble(), 14.0);
}

TEST_F(TransformTest, TimeunitTruncatesToMonth) {
  Schema schema({{"ts", DataType::kTimestamp}});
  int64_t feb3 = 0, feb1 = 0, mar1 = 0;
  data::ParseTimestamp("2001-02-03 10:00:00", &feb3);
  data::ParseTimestamp("2001-02-01", &feb1);
  data::ParseTimestamp("2001-03-01", &mar1);
  TablePtr input = data::MakeTable(schema, {{Value::Timestamp(feb3)}});
  transforms::TimeunitOp::Params params;
  params.field = FieldRef::Fixed("ts");
  params.unit = "month";
  auto t = RunOp(std::make_unique<transforms::TimeunitOp>(params), input);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->ValueAt(0, "unit0").AsInt(), feb1);
  EXPECT_EQ((*t)->ValueAt(0, "unit1").AsInt(), mar1);
}

TEST_F(TransformTest, FormulaAppendsComputedColumn) {
  auto e = *expr::ParseExpression("datum.v * 2 + 1");
  auto t = RunOp(std::make_unique<transforms::FormulaOp>(e, "double"), SmallTable());
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ((*t)->ValueAt(1, "double").AsDouble(), 11.0);
}

TEST_F(TransformTest, DynamicFieldViaSignal) {
  SignalRegistry signals;
  signals.Set("fld", expr::EvalValue::String("v"), 0);
  auto t = RunOp(std::make_unique<transforms::ExtentOp>(FieldRef::Signal("fld"), "e"),
                 SmallTable(), &signals);
  ASSERT_TRUE(t.ok());
  expr::EvalValue e;
  ASSERT_TRUE(last_signals_.Lookup("e", &e));
  EXPECT_DOUBLE_EQ(e.array()[1].AsDouble(), 9.0);
}

// ---- Binning properties ----

class BinningProperty : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(BinningProperty, NiceAndBounded) {
  auto [lo, hi, maxbins] = GetParam();
  transforms::Binning b = transforms::ComputeBinning(lo, hi, maxbins);
  EXPECT_GT(b.step, 0);
  EXPECT_LE(b.start, lo);
  EXPECT_GE(b.stop, hi);
  // Bin count within budget (+1: aligning start/stop to step multiples can
  // add one bin, as in Vega's own nice binning).
  double bins = (b.stop - b.start) / b.step;
  EXPECT_LE(bins, maxbins + 1 + 1e-9);
  // Step is {1,2,5}*10^k.
  double mantissa = b.step / std::pow(10.0, std::floor(std::log10(b.step)));
  EXPECT_TRUE(std::fabs(mantissa - 1) < 1e-9 || std::fabs(mantissa - 2) < 1e-9 ||
              std::fabs(mantissa - 5) < 1e-9 || std::fabs(mantissa - 10) < 1e-9)
      << "step=" << b.step;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BinningProperty,
    ::testing::Values(std::make_tuple(0.0, 10.0, 5), std::make_tuple(0.0, 10.0, 7),
                      std::make_tuple(-50.0, 50.0, 10), std::make_tuple(0.0, 1.0, 20),
                      std::make_tuple(3.0, 1000000.0, 12),
                      std::make_tuple(0.001, 0.009, 4), std::make_tuple(-3.0, -1.0, 3),
                      std::make_tuple(5.0, 5.0, 10)));  // degenerate

TEST(BinningTest, DegenerateExtent) {
  transforms::Binning b = transforms::ComputeBinning(5.0, 5.0, 10);
  EXPECT_DOUBLE_EQ(b.start, 5.0);
  EXPECT_GT(b.stop, b.start);
}

}  // namespace
}  // namespace dataflow
}  // namespace vegaplus
