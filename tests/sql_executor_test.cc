#include <gtest/gtest.h>

#include <cmath>

#include "data/csv.h"
#include "sql/engine.h"

namespace vegaplus {
namespace sql {
namespace {

using data::DataType;
using data::TablePtr;
using data::Value;

class SqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = data::ReadCsvString(
        "id,origin,delay,distance,when\n"
        "1,SEA,10,100,2001-01-05\n"
        "2,SFO,-5,200,2001-01-20\n"
        "3,SEA,30,150,2001-02-02\n"
        "4,LAX,NA,500,2001-02-10\n"
        "5,SFO,20,250,2001-03-01\n"
        "6,SEA,0,120,2001-03-15\n");
    ASSERT_TRUE(t.ok()) << t.status();
    engine_.RegisterTable("flights", *t);
  }

  TablePtr Run(const std::string& sql) {
    auto r = engine_.Query(sql);
    EXPECT_TRUE(r.ok()) << r.status() << " for: " << sql;
    return r.ok() ? r->table : nullptr;
  }

  Engine engine_;
};

TEST_F(SqlExecutorTest, SelectStar) {
  TablePtr t = Run("SELECT * FROM flights");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->num_rows(), 6u);
  EXPECT_EQ(t->num_columns(), 5u);
}

TEST_F(SqlExecutorTest, WhereFilters) {
  TablePtr t = Run("SELECT id FROM flights WHERE delay > 5");
  ASSERT_NE(t, nullptr);
  ASSERT_EQ(t->num_rows(), 3u);  // ids 1, 3, 5 (null delay excluded)
  EXPECT_EQ(t->ValueAt(0, "id"), Value::Int(1));
  EXPECT_EQ(t->ValueAt(1, "id"), Value::Int(3));
  EXPECT_EQ(t->ValueAt(2, "id"), Value::Int(5));
}

TEST_F(SqlExecutorTest, NullNeverMatchesComparison) {
  TablePtr gt = Run("SELECT id FROM flights WHERE delay > -1000");
  TablePtr lt = Run("SELECT id FROM flights WHERE delay < 1000");
  EXPECT_EQ(gt->num_rows(), 5u);
  EXPECT_EQ(lt->num_rows(), 5u);  // LAX row (null delay) excluded from both
}

TEST_F(SqlExecutorTest, IsNullPredicates) {
  EXPECT_EQ(Run("SELECT id FROM flights WHERE delay IS NULL")->num_rows(), 1u);
  EXPECT_EQ(Run("SELECT id FROM flights WHERE delay IS NOT NULL")->num_rows(), 5u);
}

TEST_F(SqlExecutorTest, ProjectionExpressions) {
  TablePtr t = Run("SELECT id, delay * 2 AS dbl, origin FROM flights WHERE id = 1");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(t->ValueAt(0, "dbl").AsDouble(), 20.0);
  EXPECT_EQ(t->schema().field(1).name, "dbl");
}

TEST_F(SqlExecutorTest, GroupByCount) {
  TablePtr t = Run(
      "SELECT origin, COUNT(*) AS cnt FROM flights GROUP BY origin ORDER BY cnt DESC, "
      "origin");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->ValueAt(0, "origin"), Value::String("SEA"));
  EXPECT_EQ(t->ValueAt(0, "cnt"), Value::Int(3));
  EXPECT_EQ(t->ValueAt(1, "origin"), Value::String("SFO"));
  EXPECT_EQ(t->ValueAt(1, "cnt"), Value::Int(2));
  EXPECT_EQ(t->ValueAt(2, "origin"), Value::String("LAX"));
}

TEST_F(SqlExecutorTest, AggregatesSkipNulls) {
  TablePtr t = Run(
      "SELECT COUNT(*) AS all_rows, COUNT(delay) AS with_delay, SUM(delay) AS total, "
      "AVG(delay) AS mean, MIN(delay) AS lo, MAX(delay) AS hi FROM flights");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->ValueAt(0, "all_rows"), Value::Int(6));
  EXPECT_EQ(t->ValueAt(0, "with_delay"), Value::Int(5));
  EXPECT_DOUBLE_EQ(t->ValueAt(0, "total").AsDouble(), 55.0);
  EXPECT_DOUBLE_EQ(t->ValueAt(0, "mean").AsDouble(), 11.0);
  EXPECT_DOUBLE_EQ(t->ValueAt(0, "lo").AsDouble(), -5.0);
  EXPECT_DOUBLE_EQ(t->ValueAt(0, "hi").AsDouble(), 30.0);
}

TEST_F(SqlExecutorTest, MedianAndStddev) {
  TablePtr t = Run("SELECT MEDIAN(delay) AS med, STDDEV(delay) AS sd FROM flights");
  // delays: 10, -5, 30, 20, 0 -> sorted -5 0 10 20 30, median 10.
  EXPECT_DOUBLE_EQ(t->ValueAt(0, "med").AsDouble(), 10.0);
  // sample stddev of {-5,0,10,20,30}: mean 11, var = (256+121+1+81+361)/4 = 205
  EXPECT_NEAR(t->ValueAt(0, "sd").AsDouble(), std::sqrt(205.0), 1e-9);
}

TEST_F(SqlExecutorTest, EmptyAggregateYieldsOneRow) {
  TablePtr t = Run("SELECT COUNT(*) AS c, SUM(delay) AS s FROM flights WHERE id > 99");
  ASSERT_EQ(t->num_rows(), 1u);
  EXPECT_EQ(t->ValueAt(0, "c"), Value::Int(0));
  EXPECT_TRUE(t->ValueAt(0, "s").is_null());
}

TEST_F(SqlExecutorTest, GroupByExpression) {
  TablePtr t = Run(
      "SELECT FLOOR(distance / 100) * 100 AS bucket, COUNT(*) AS cnt FROM flights "
      "GROUP BY FLOOR(distance / 100) * 100 ORDER BY bucket");
  ASSERT_EQ(t->num_rows(), 3u);  // 100, 200, 500
  EXPECT_DOUBLE_EQ(t->ValueAt(0, "bucket").AsDouble(), 100.0);
  EXPECT_EQ(t->ValueAt(0, "cnt"), Value::Int(3));
  EXPECT_DOUBLE_EQ(t->ValueAt(2, "bucket").AsDouble(), 500.0);
}

TEST_F(SqlExecutorTest, SelectItemNotInGroupByFails) {
  auto r = engine_.Query("SELECT id, COUNT(*) FROM flights GROUP BY origin");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlExecutorTest, Having) {
  TablePtr t = Run(
      "SELECT origin, COUNT(*) AS cnt FROM flights GROUP BY origin HAVING cnt >= 2 "
      "ORDER BY origin");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->ValueAt(0, "origin"), Value::String("SEA"));
  EXPECT_EQ(t->ValueAt(1, "origin"), Value::String("SFO"));
}

TEST_F(SqlExecutorTest, SubqueryPipeline) {
  TablePtr t = Run(
      "SELECT origin, COUNT(*) AS cnt FROM (SELECT * FROM flights WHERE delay >= 0) "
      "AS f GROUP BY origin ORDER BY origin");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->ValueAt(0, "origin"), Value::String("SEA"));
  EXPECT_EQ(t->ValueAt(0, "cnt"), Value::Int(3));
  EXPECT_EQ(t->ValueAt(1, "cnt"), Value::Int(1));
}

TEST_F(SqlExecutorTest, OrderByMultipleKeys) {
  TablePtr t = Run("SELECT origin, delay FROM flights WHERE delay IS NOT NULL "
                   "ORDER BY origin, delay DESC");
  ASSERT_EQ(t->num_rows(), 5u);
  EXPECT_EQ(t->ValueAt(0, "origin"), Value::String("SEA"));
  EXPECT_DOUBLE_EQ(t->ValueAt(0, "delay").AsDouble(), 30.0);
  EXPECT_DOUBLE_EQ(t->ValueAt(2, "delay").AsDouble(), 0.0);
}

TEST_F(SqlExecutorTest, LimitOffset) {
  TablePtr t = Run("SELECT id FROM flights ORDER BY id LIMIT 2 OFFSET 3");
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->ValueAt(0, "id"), Value::Int(4));
  EXPECT_EQ(t->ValueAt(1, "id"), Value::Int(5));
}

TEST_F(SqlExecutorTest, WindowRunningSum) {
  TablePtr t = Run(
      "SELECT id, origin, SUM(delay) OVER (PARTITION BY origin ORDER BY id) AS run "
      "FROM flights ORDER BY id");
  ASSERT_EQ(t->num_rows(), 6u);
  // SEA rows: id 1 (10), id 3 (30), id 6 (0) -> running 10, 40, 40.
  EXPECT_DOUBLE_EQ(t->ValueAt(0, "run").AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(t->ValueAt(2, "run").AsDouble(), 40.0);
  EXPECT_DOUBLE_EQ(t->ValueAt(5, "run").AsDouble(), 40.0);
  // SFO rows: id 2 (-5), id 5 (20) -> -5, 15.
  EXPECT_DOUBLE_EQ(t->ValueAt(1, "run").AsDouble(), -5.0);
  EXPECT_DOUBLE_EQ(t->ValueAt(4, "run").AsDouble(), 15.0);
}

TEST_F(SqlExecutorTest, WindowRowNumber) {
  TablePtr t = Run(
      "SELECT id, ROW_NUMBER() OVER (PARTITION BY origin ORDER BY delay DESC) AS rn "
      "FROM flights WHERE delay IS NOT NULL ORDER BY id");
  ASSERT_EQ(t->num_rows(), 5u);
  // SEA delays 10,30,0 -> ranks: id3=1, id1=2, id6=3.
  EXPECT_EQ(t->ValueAt(0, "rn"), Value::Int(2));  // id 1
  EXPECT_EQ(t->ValueAt(2, "rn"), Value::Int(1));  // id 3
}

TEST_F(SqlExecutorTest, DateFunctions) {
  TablePtr t = Run(
      "SELECT id, MONTH(when) AS m FROM flights WHERE YEAR(when) = 2001 ORDER BY id");
  ASSERT_EQ(t->num_rows(), 6u);
  EXPECT_EQ(t->ValueAt(0, "m"), Value::Int(1));
  EXPECT_EQ(t->ValueAt(3, "m"), Value::Int(2));
}

TEST_F(SqlExecutorTest, DateTrunc) {
  TablePtr t = Run(
      "SELECT DATE_TRUNC('month', when) AS m, COUNT(*) AS cnt FROM flights "
      "GROUP BY DATE_TRUNC('month', when) ORDER BY m");
  ASSERT_EQ(t->num_rows(), 3u);
  EXPECT_EQ(t->ValueAt(0, "cnt"), Value::Int(2));
  EXPECT_EQ(t->schema().field(0).type, DataType::kTimestamp);
}

TEST_F(SqlExecutorTest, CaseExpression) {
  TablePtr t = Run(
      "SELECT id, CASE WHEN delay > 15 THEN 'late' WHEN delay IS NULL THEN 'unknown' "
      "ELSE 'ok' END AS status FROM flights ORDER BY id");
  EXPECT_EQ(t->ValueAt(0, "status"), Value::String("ok"));
  EXPECT_EQ(t->ValueAt(2, "status"), Value::String("late"));
  EXPECT_EQ(t->ValueAt(3, "status"), Value::String("unknown"));
}

TEST_F(SqlExecutorTest, UnknownTableFails) {
  EXPECT_FALSE(engine_.Query("SELECT * FROM nope").ok());
}

TEST_F(SqlExecutorTest, StatsCountersPopulated) {
  auto r = engine_.Query("SELECT origin, COUNT(*) AS c FROM flights WHERE delay > 0 "
                         "GROUP BY origin");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.rows_scanned, 6u);
  EXPECT_GT(r->stats.rows_processed, 0u);
  EXPECT_EQ(r->stats.rows_output, r->table->num_rows());
  EXPECT_GE(r->stats.num_operators, 3);
}

TEST_F(SqlExecutorTest, OutputTypesInferred) {
  TablePtr t = Run("SELECT origin, COUNT(*) AS c, AVG(delay) AS a, MIN(origin) AS mo "
                   "FROM flights GROUP BY origin");
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
  EXPECT_EQ(t->schema().field(1).type, DataType::kInt64);
  EXPECT_EQ(t->schema().field(2).type, DataType::kFloat64);
  EXPECT_EQ(t->schema().field(3).type, DataType::kString);
}

}  // namespace
}  // namespace sql
}  // namespace vegaplus
