#include <gtest/gtest.h>

#include "sql/prepared.h"
#include "sql/sql_parser.h"

namespace vegaplus {
namespace sql {
namespace {

SelectPtr MustParse(const std::string& text) {
  auto r = ParseSql(text);
  EXPECT_TRUE(r.ok()) << r.status() << " for: " << text;
  return r.ok() ? *r : nullptr;
}

TEST(SqlParserTest, MinimalSelect) {
  SelectPtr s = MustParse("SELECT * FROM flights");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->items.size(), 1u);
  EXPECT_EQ(s->items[0].kind, SelectItem::Kind::kStar);
  EXPECT_EQ(s->from.table_name, "flights");
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  EXPECT_NE(MustParse("select * from t where x > 1 order by x desc limit 5"), nullptr);
}

TEST(SqlParserTest, ColumnsAndAliases) {
  SelectPtr s = MustParse("SELECT a, b AS bee, a + 1 plus FROM t");
  ASSERT_EQ(s->items.size(), 3u);
  EXPECT_EQ(DeriveItemName(s->items[0], 0), "a");
  EXPECT_EQ(DeriveItemName(s->items[1], 1), "bee");
  EXPECT_EQ(DeriveItemName(s->items[2], 2), "plus");
}

TEST(SqlParserTest, Aggregates) {
  SelectPtr s = MustParse(
      "SELECT origin, COUNT(*) AS cnt, SUM(delay) AS total, AVG(delay), MIN(delay), "
      "MAX(delay), MEDIAN(delay), STDDEV(delay) FROM flights GROUP BY origin");
  ASSERT_EQ(s->items.size(), 8u);
  EXPECT_EQ(s->items[1].kind, SelectItem::Kind::kAggregate);
  EXPECT_EQ(s->items[1].agg_op, AggOp::kCount);
  EXPECT_EQ(s->items[1].agg_arg, nullptr);
  EXPECT_EQ(s->items[2].agg_op, AggOp::kSum);
  EXPECT_EQ(s->items[7].agg_op, AggOp::kStddev);
  ASSERT_EQ(s->group_by.size(), 1u);
}

TEST(SqlParserTest, AggregateNamesDerive) {
  SelectPtr s = MustParse("SELECT COUNT(*), SUM(delay) FROM t");
  EXPECT_EQ(DeriveItemName(s->items[0], 0), "count");
  EXPECT_EQ(DeriveItemName(s->items[1], 1), "sum_delay");
}

TEST(SqlParserTest, WhereDesugaring) {
  SelectPtr s = MustParse(
      "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IS NOT NULL AND c IN ('x','y') "
      "AND NOT d >= 2");
  ASSERT_NE(s->where, nullptr);
  // Round-trip through the unparser must preserve the desugared forms.
  std::string sql = ToSql(*s);
  EXPECT_NE(sql.find("a >= 1"), std::string::npos);
  EXPECT_NE(sql.find("a <= 5"), std::string::npos);
  EXPECT_NE(sql.find("b IS NOT NULL"), std::string::npos);
  EXPECT_NE(sql.find("c = 'x'"), std::string::npos);
  EXPECT_NE(sql.find("OR"), std::string::npos);
}

TEST(SqlParserTest, IsNullForms) {
  SelectPtr s = MustParse("SELECT * FROM t WHERE a IS NULL");
  std::string sql = ToSql(*s);
  EXPECT_NE(sql.find("NOT (a IS NOT NULL)"), std::string::npos);
}

TEST(SqlParserTest, CaseExpression) {
  SelectPtr s = MustParse(
      "SELECT CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END AS sign "
      "FROM t");
  ASSERT_EQ(s->items.size(), 1u);
  std::string sql = ToSql(*s);
  EXPECT_NE(sql.find("CASE WHEN"), std::string::npos);
  EXPECT_NE(sql.find("'zero'"), std::string::npos);
}

TEST(SqlParserTest, Subquery) {
  SelectPtr s = MustParse(
      "SELECT origin, COUNT(*) AS cnt FROM (SELECT * FROM flights WHERE delay > 10) "
      "AS filtered GROUP BY origin");
  ASSERT_NE(s->from.subquery, nullptr);
  EXPECT_EQ(s->from.alias, "filtered");
  EXPECT_EQ(s->from.subquery->from.table_name, "flights");
}

TEST(SqlParserTest, NestedSubqueries) {
  SelectPtr s = MustParse(
      "SELECT * FROM (SELECT * FROM (SELECT * FROM t) AS a) AS b LIMIT 3");
  ASSERT_NE(s->from.subquery, nullptr);
  ASSERT_NE(s->from.subquery->from.subquery, nullptr);
  EXPECT_EQ(s->limit, 3);
}

TEST(SqlParserTest, WindowFunctions) {
  SelectPtr s = MustParse(
      "SELECT g, SUM(v) OVER (PARTITION BY g ORDER BY o) AS running, "
      "ROW_NUMBER() OVER (ORDER BY o DESC) AS rn FROM t");
  ASSERT_EQ(s->items.size(), 3u);
  EXPECT_EQ(s->items[1].kind, SelectItem::Kind::kWindow);
  EXPECT_EQ(s->items[1].window.op, WindowOp::kSum);
  ASSERT_EQ(s->items[1].window.partition_by.size(), 1u);
  ASSERT_EQ(s->items[1].window.order_by.size(), 1u);
  EXPECT_EQ(s->items[2].window.op, WindowOp::kRowNumber);
  EXPECT_TRUE(s->items[2].window.order_by[0].descending);
}

TEST(SqlParserTest, OrderLimitOffset) {
  SelectPtr s = MustParse("SELECT * FROM t ORDER BY a, b DESC LIMIT 10 OFFSET 5");
  ASSERT_EQ(s->order_by.size(), 2u);
  EXPECT_FALSE(s->order_by[0].descending);
  EXPECT_TRUE(s->order_by[1].descending);
  EXPECT_EQ(s->limit, 10);
  EXPECT_EQ(s->offset, 5);
}

TEST(SqlParserTest, QuotedIdentifiers) {
  SelectPtr s = MustParse("SELECT \"weird col\" FROM \"my table\"");
  EXPECT_EQ(s->from.table_name, "my table");
  EXPECT_EQ(DeriveItemName(s->items[0], 0), "weird col");
}

TEST(SqlParserTest, FunctionsAndDateParts) {
  SelectPtr s = MustParse(
      "SELECT FLOOR((delay - 1) / 5) * 5 AS bin0, DATE_TRUNC('month', ts) AS m, "
      "YEAR(ts) AS y FROM t");
  ASSERT_EQ(s->items.size(), 3u);
  std::string sql = ToSql(*s);
  EXPECT_NE(sql.find("FLOOR"), std::string::npos);
  EXPECT_NE(sql.find("DATE_TRUNC('month', ts)"), std::string::npos);
  EXPECT_NE(sql.find("YEAR(ts)"), std::string::npos);
}

TEST(SqlParserTest, ModBothForms) {
  EXPECT_NE(MustParse("SELECT a % 2 FROM t"), nullptr);
  EXPECT_NE(MustParse("SELECT MOD(a, 2) FROM t"), nullptr);
}

TEST(SqlParserTest, Having) {
  SelectPtr s = MustParse(
      "SELECT origin, COUNT(*) AS cnt FROM t GROUP BY origin HAVING cnt > 5");
  ASSERT_NE(s->having, nullptr);
}

TEST(SqlParserTest, Errors) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t GROUP BY").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t LIMIT x").ok());
  EXPECT_FALSE(ParseSql("SELECT nosuchfunc(a) FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t extra garbage ;;").ok());
  EXPECT_FALSE(ParseSql("SELECT AVG(*) FROM t").ok());  // '*' only for COUNT
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE SUM(a) > 1").ok());  // agg in scalar
}

TEST(SqlUnparseTest, RoundTripStability) {
  const char* queries[] = {
      "SELECT * FROM flights WHERE delay > 10",
      "SELECT origin, COUNT(*) AS cnt FROM flights GROUP BY origin ORDER BY cnt DESC "
      "LIMIT 10",
      "SELECT FLOOR(delay / 5) * 5 AS bin0, COUNT(*) AS count FROM (SELECT * FROM "
      "flights WHERE delay BETWEEN 0 AND 100) AS f GROUP BY FLOOR(delay / 5) * 5",
      "SELECT g, SUM(v) OVER (PARTITION BY g ORDER BY o) AS run FROM t",
  };
  for (const char* q : queries) {
    SelectPtr once = MustParse(q);
    ASSERT_NE(once, nullptr);
    std::string sql1 = ToSql(*once);
    SelectPtr twice = MustParse(sql1);
    ASSERT_NE(twice, nullptr) << sql1;
    EXPECT_EQ(sql1, ToSql(*twice)) << "unparse not a fixed point for: " << q;
  }
}

TEST(SqlTemplateTest, HolesParseAndRoundTrip) {
  const char* templates[] = {
      "SELECT * FROM t WHERE v < ${cut}",
      "SELECT * FROM t WHERE v BETWEEN LEAST(${b[0]}, ${b[1]}) AND "
      "GREATEST(${b[0]}, ${b[1]})",
      "SELECT MIN(${field:id}) AS min0, MAX(${field:id}) AS max0 FROM t",
      "SELECT FLOOR((v - ${start}) / ${step}) * ${step} + ${start} AS bin0, "
      "COUNT(*) AS count FROM t GROUP BY FLOOR((v - ${start}) / ${step}) * "
      "${step} + ${start}",
  };
  for (const char* text : templates) {
    auto parsed = ParseSqlTemplate(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " for: " << text;
    // Holes survive unparsing, and unparsing is a fixed point.
    std::string sql1 = ToSql(**parsed);
    auto again = ParseSqlTemplate(sql1);
    ASSERT_TRUE(again.ok()) << again.status() << " for: " << sql1;
    EXPECT_EQ(sql1, ToSql(**again)) << text;
  }
  // Plain ParseSql still rejects hole syntax.
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE v < ${cut}").ok());
}

TEST(SqlTemplateTest, PrepareCollectsParamsAndNormalizesFormatting) {
  auto a = PrepareStatement("SELECT * FROM t WHERE v < ${cut} AND ${b[0]} <= w");
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_EQ((*a)->params, (std::vector<std::string>{"cut", "b"}));
  auto b = PrepareStatement("select  *  from t  WHERE (v < ${cut}) AND (${b[0]} <= w)");
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ((*a)->canonical_sql, (*b)->canonical_sql);
}

TEST(SqlTemplateTest, TemplateErrors) {
  EXPECT_FALSE(ParseSqlTemplate("SELECT * FROM t WHERE v < ${cut").ok());
  EXPECT_FALSE(ParseSqlTemplate("SELECT * FROM t WHERE v < ${}").ok());
  EXPECT_FALSE(ParseSqlTemplate("SELECT * FROM t WHERE v < ${b[x]}").ok());
}

TEST(SqlTemplateTest, BindMatchesFilledText) {
  auto prepared = PrepareStatement(
      "SELECT COUNT(*) AS c FROM t WHERE v BETWEEN ${b[0]} AND ${b[1]} AND "
      "${f:id} <> ${name}");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  expr::MapSignalResolver params;
  params.Set("b", expr::EvalValue::Array(
                      {data::Value::Double(2), data::Value::Double(9)}));
  params.Set("f", expr::EvalValue::String("w"));
  params.Set("name", expr::EvalValue::String("it's"));
  auto bound = BindStatement(*(*prepared)->stmt, params);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(ToSql(**bound),
            "SELECT COUNT(*) AS c FROM t WHERE (((v >= 2) AND (v <= 9)) AND "
            "(w <> 'it''s'))");

  // Unresolved / mis-typed params fail like FillSqlHoles.
  expr::MapSignalResolver missing;
  EXPECT_FALSE(BindStatement(*(*prepared)->stmt, missing).ok());
  expr::MapSignalResolver array_as_scalar;
  array_as_scalar.Set("b", expr::EvalValue::Array({data::Value::Double(1)}));
  array_as_scalar.Set("f", expr::EvalValue::Number(3));  // :id needs a string
  array_as_scalar.Set("name", expr::EvalValue::String("x"));
  EXPECT_FALSE(BindStatement(*(*prepared)->stmt, array_as_scalar).ok());
}

}  // namespace
}  // namespace sql
}  // namespace vegaplus
