#include <gtest/gtest.h>

#include "common/random.h"
#include "data/ipc.h"

namespace vegaplus {
namespace data {
namespace {

TablePtr SampleTable() {
  Schema schema({{"i", DataType::kInt64},
                 {"f", DataType::kFloat64},
                 {"s", DataType::kString},
                 {"b", DataType::kBool},
                 {"t", DataType::kTimestamp}});
  return MakeTable(schema, {
      {Value::Int(1), Value::Double(1.5), Value::String("a"), Value::Bool(true), Value::Timestamp(1000)},
      {Value::Null(), Value::Null(), Value::Null(), Value::Null(), Value::Null()},
      {Value::Int(-3), Value::Double(-2.25), Value::String("x,y\"z"), Value::Bool(false), Value::Timestamp(-5000)},
  });
}

TEST(BinaryIpcTest, RoundTripAllTypes) {
  TablePtr t = SampleTable();
  std::string buf = SerializeBinary(*t);
  auto r = DeserializeBinary(buf);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(t->Equals(**r));
}

TEST(BinaryIpcTest, EmptyTable) {
  TablePtr t = EmptyTable(Schema({{"a", DataType::kInt64}}));
  auto r = DeserializeBinary(SerializeBinary(*t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->num_rows(), 0u);
  EXPECT_EQ((*r)->num_columns(), 1u);
}

TEST(BinaryIpcTest, RejectsBadMagic) {
  EXPECT_FALSE(DeserializeBinary("XXXXjunk").ok());
  EXPECT_FALSE(DeserializeBinary("").ok());
}

TEST(BinaryIpcTest, RejectsTruncation) {
  std::string buf = SerializeBinary(*SampleTable());
  for (size_t cut : {size_t{4}, size_t{10}, buf.size() / 2}) {
    EXPECT_FALSE(DeserializeBinary(buf.substr(0, cut)).ok()) << "cut=" << cut;
  }
}

TEST(JsonIpcTest, RoundTripSkipsNullCells) {
  TablePtr t = SampleTable();
  std::string text = SerializeJsonRows(*t);
  auto r = DeserializeJsonRows(text);
  ASSERT_TRUE(r.ok()) << r.status();
  const Table& back = **r;
  EXPECT_EQ(back.num_rows(), t->num_rows());
  // Timestamps degrade to numbers over JSON; values must still agree.
  EXPECT_EQ(back.ValueAt(0, "i"), Value::Int(1));
  EXPECT_EQ(back.ValueAt(0, "s"), Value::String("a"));
  EXPECT_TRUE(back.ValueAt(1, "i").is_null());
  EXPECT_DOUBLE_EQ(back.ValueAt(2, "t").AsDouble(), -5000.0);
}

TEST(JsonIpcTest, BinaryIsSmallerOnWideNumericTables) {
  // The premise of the paper's Arrow encoding choice: binary beats JSON.
  Schema schema({{"a", DataType::kFloat64}, {"b", DataType::kFloat64}});
  TableBuilder builder(schema);
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    builder.AppendRow({Value::Double(rng.NextDouble() * 12345.6789),
                       Value::Double(rng.NextDouble())});
  }
  TablePtr t = builder.Build();
  EXPECT_LT(SerializeBinary(*t).size(), SerializeJsonRows(*t).size());
}

TEST(JsonIpcTest, TableToJsonShape) {
  json::Value rows = TableToJson(*SampleTable());
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].GetDouble("f"), 1.5);
  EXPECT_FALSE(rows[1].Has("f"));  // null cell omitted
}

TEST(JsonIpcTest, IntegerColumnsStayIntegral) {
  Schema schema({{"n", DataType::kInt64}});
  TablePtr t = MakeTable(schema, {{Value::Int(5)}, {Value::Int(9)}});
  auto r = DeserializeJsonRows(SerializeJsonRows(*t));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->schema().field(0).type, DataType::kInt64);
}

}  // namespace
}  // namespace data
}  // namespace vegaplus
