// Fault-tolerance tests for the middleware: deterministic fault injection,
// retry/backoff, deadlines, the per-statement circuit breaker, load
// shedding at the bounded worker queue, and graceful degradation (stale
// cache / coarser tile levels). Registered under the `chaos` ctest label
// (CI runs it under ASan/UBSan) and `concurrency` (TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/ipc.h"
#include "rewrite/vdt.h"
#include "runtime/middleware.h"
#include "transforms/binning.h"

namespace vegaplus {
namespace runtime {
namespace {

using rewrite::QueryRequest;
using rewrite::QueryResponse;

data::TablePtr CountingTable(int rows) {
  data::Schema schema({{"v", data::DataType::kFloat64}});
  data::TableBuilder builder(schema);
  for (int i = 0; i < rows; ++i) builder.AppendRow({data::Value::Double(i)});
  return builder.Build();
}

// Spin until the middleware has accounted for every submitted request.
void AwaitQuiescence(const Middleware& mw) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    Middleware::Stats s = mw.stats();
    if (s.queries + s.cancelled + s.errors >= s.submitted) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "middleware did not quiesce";
}

std::string Bytes(const data::Table& table) { return data::SerializeBinary(table); }

// A manual gate for before_dbms_execute: workers block inside the hook
// until Open() is called.
class Gate {
 public:
  std::function<void(const std::string&)> Hook() {
    return [this](const std::string&) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return open_; });
    };
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
};

class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override { engine_.RegisterTable("t", CountingTable(500)); }

  // Submit the shared counting template with one bound cut and await it.
  // Using Prepare + params (instead of literal-inlined Execute) keeps every
  // cut on ONE canonical statement — the circuit breaker's scope.
  static Result<QueryResponse> RunCut(Middleware& mw,
                                      rewrite::PreparedHandle handle,
                                      double cut) {
    QueryRequest request;
    request.handle = handle;
    request.params = {{"cut", expr::EvalValue::Number(cut)}};
    return mw.Submit(request)->Await();
  }

  sql::Engine engine_;
};

constexpr char kCutTemplate[] = "SELECT COUNT(*) AS c FROM t WHERE v < ${cut}";

// A backend that fails the first two attempts of every query must, with
// retries enabled, produce results bit-identical to a fault-free middleware
// — and the retry count must match the injected schedule exactly.
TEST_F(FaultToleranceTest, RetryRecoversBitIdenticalToFaultFree) {
  constexpr int kCuts = 5;

  Middleware clean(&engine_, {});

  MiddlewareOptions faulty_opts;
  faulty_opts.fault_injection = FaultInjectorOptions{};
  faulty_opts.fault_injection->rules.push_back(FaultRule{"", /*fail_times=*/2});
  faulty_opts.retry.initial_backoff_ms = 0.1;  // keep the test fast
  Middleware faulty(&engine_, faulty_opts);

  for (int i = 0; i < kCuts; ++i) {
    std::string sql =
        "SELECT COUNT(*) AS c FROM t WHERE v < " + std::to_string(100 + i);
    auto want = clean.Execute(sql);
    auto got = faulty.Execute(sql);
    ASSERT_TRUE(want.ok()) << want.status();
    ASSERT_TRUE(got.ok()) << got.status() << "\n" << sql;
    EXPECT_FALSE(got->degraded);
    EXPECT_EQ(got->source, QueryResponse::Source::kDbms);
    EXPECT_EQ(Bytes(*got->table), Bytes(*want->table)) << sql;
  }

  Middleware::Stats stats = faulty.stats();
  EXPECT_EQ(stats.retries, 2u * kCuts);  // exactly the injected schedule
  EXPECT_EQ(stats.dbms_executions, static_cast<size_t>(kCuts));
  EXPECT_EQ(stats.errors, 0u);
  ASSERT_NE(faulty.fault_injector(), nullptr);
  EXPECT_EQ(faulty.fault_injector()->injected_failures(), 2u * kCuts);
  EXPECT_EQ(faulty.fault_injector()->attempts(), 3u * kCuts);
}

// A permanent outage exhausts the retry budget once, opens the breaker, and
// from then on fails fast with kUnavailable — without spending further
// backend attempts on a statement known to be dead.
TEST_F(FaultToleranceTest, PermanentOutageFailsFastViaBreaker) {
  MiddlewareOptions options;
  options.fault_injection = FaultInjectorOptions{};
  options.fault_injection->rules.push_back(FaultRule{"", 0, /*permanent=*/true});
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0.1;
  options.circuit_breaker.failure_threshold = 2;
  options.circuit_breaker.clock_ms = [] { return 0.0; };  // frozen: stays open
  Middleware mw(&engine_, options);
  auto handle = mw.Prepare(kCutTemplate);
  ASSERT_TRUE(handle.ok());

  auto first = RunCut(mw, *handle, 100);
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsUnavailable()) << first.status();
  EXPECT_EQ(mw.fault_injector()->attempts(), 2u);
  EXPECT_EQ(mw.stats().breaker_open, 1u);

  // Different parameters, same statement scope: no backend attempt at all.
  auto second = RunCut(mw, *handle, 200);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsUnavailable());
  EXPECT_NE(second.status().message().find("circuit breaker"), std::string::npos)
      << second.status();
  EXPECT_EQ(mw.fault_injector()->attempts(), 2u) << "fast-fail hit the backend";

  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.errors, 2u);
  EXPECT_EQ(stats.retries, 1u);  // only the first request retried
}

// Open -> half-open -> closed: once the open window elapses, a single probe
// is admitted; its success closes the breaker and normal service resumes.
TEST_F(FaultToleranceTest, BreakerHalfOpenProbeClosesAfterRecovery) {
  auto clock = std::make_shared<std::atomic<double>>(0.0);
  MiddlewareOptions options;
  options.fault_injection = FaultInjectorOptions{};
  options.fault_injection->rules.push_back(FaultRule{"", 0, /*permanent=*/true});
  options.retry.max_attempts = 1;  // breaker transitions, not retries
  options.circuit_breaker.failure_threshold = 2;
  options.circuit_breaker.open_ms = 250.0;
  options.circuit_breaker.clock_ms = [clock] { return clock->load(); };
  Middleware mw(&engine_, options);
  auto handle = mw.Prepare(kCutTemplate);
  ASSERT_TRUE(handle.ok());

  EXPECT_FALSE(RunCut(mw, *handle, 100).ok());
  EXPECT_FALSE(RunCut(mw, *handle, 101).ok());
  EXPECT_EQ(mw.stats().breaker_open, 1u);

  // Still inside the open window: fast fail, no backend attempt.
  EXPECT_FALSE(RunCut(mw, *handle, 102).ok());
  EXPECT_EQ(mw.fault_injector()->attempts(), 2u);

  // Backend recovers; the open window elapses; the probe closes the breaker.
  mw.fault_injector()->ClearRules();
  clock->store(300.0);
  auto probe = RunCut(mw, *handle, 103);
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(probe->source, QueryResponse::Source::kDbms);
  auto after = RunCut(mw, *handle, 104);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(mw.stats().breaker_open, 1u);  // never re-opened
}

// Regression (review): a half-open probe that draws a *non-transient* error
// records neither success nor failure — it must release the probe slot
// (re-arming the open window) instead of wedging the breaker in half-open,
// where it would reject every request forever even after recovery.
TEST_F(FaultToleranceTest, BreakerProbeAbandonedOnNonTransientError) {
  auto clock = std::make_shared<std::atomic<double>>(0.0);
  MiddlewareOptions options;
  options.fault_injection = FaultInjectorOptions{};
  options.fault_injection->rules.push_back(FaultRule{"", 0, /*permanent=*/true});
  options.retry.max_attempts = 1;
  options.circuit_breaker.failure_threshold = 2;
  options.circuit_breaker.open_ms = 250.0;
  options.circuit_breaker.clock_ms = [clock] { return clock->load(); };
  Middleware mw(&engine_, options);
  auto handle = mw.Prepare(kCutTemplate);
  ASSERT_TRUE(handle.ok());

  EXPECT_FALSE(RunCut(mw, *handle, 100).ok());
  EXPECT_FALSE(RunCut(mw, *handle, 101).ok());
  EXPECT_EQ(mw.stats().breaker_open, 1u);

  // The open window elapses; the probe draws an injected parse error, which
  // is surfaced as-is and says nothing about backend health.
  mw.fault_injector()->ClearRules();
  mw.fault_injector()->AddRule(
      FaultRule{"", 0, /*permanent=*/true, 0, 0, StatusCode::kParseError});
  clock->store(300.0);
  auto probe = RunCut(mw, *handle, 102);
  ASSERT_FALSE(probe.ok());
  EXPECT_TRUE(probe.status().IsParseError()) << probe.status();
  EXPECT_EQ(mw.fault_injector()->attempts(), 3u);

  // The abandoned probe re-armed the open window: inside it, fast fail with
  // no backend attempt (NOT a wedged half-open rejecting forever).
  auto inside = RunCut(mw, *handle, 103);
  ASSERT_FALSE(inside.ok());
  EXPECT_TRUE(inside.status().IsUnavailable()) << inside.status();
  EXPECT_EQ(mw.fault_injector()->attempts(), 3u);

  // Backend recovers; after the restarted window a fresh probe closes it.
  mw.fault_injector()->ClearRules();
  clock->store(600.0);
  auto recovered = RunCut(mw, *handle, 104);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->source, QueryResponse::Source::kDbms);
  EXPECT_EQ(mw.stats().breaker_open, 1u);  // abandonment is not a transition
}

// Regression (review): a half-open probe whose deadline expires before the
// backend runs (stalled by the injector) likewise abandons its probe slot;
// once the backend recovers the breaker can still probe and close.
TEST_F(FaultToleranceTest, BreakerProbeAbandonedOnDeadlineExpiry) {
  auto clock = std::make_shared<std::atomic<double>>(0.0);
  MiddlewareOptions options;
  options.fault_injection = FaultInjectorOptions{};
  options.fault_injection->rules.push_back(FaultRule{"", 0, /*permanent=*/true});
  options.retry.max_attempts = 1;
  options.circuit_breaker.failure_threshold = 2;
  options.circuit_breaker.open_ms = 250.0;
  options.circuit_breaker.clock_ms = [clock] { return clock->load(); };
  Middleware mw(&engine_, options);
  auto handle = mw.Prepare(kCutTemplate);
  ASSERT_TRUE(handle.ok());

  EXPECT_FALSE(RunCut(mw, *handle, 100).ok());
  EXPECT_FALSE(RunCut(mw, *handle, 101).ok());
  EXPECT_EQ(mw.stats().breaker_open, 1u);

  // The probe stalls past its deadline and exits without a verdict.
  mw.fault_injector()->ClearRules();
  mw.fault_injector()->AddRule(FaultRule{"", 0, false, 0, /*stall_ms=*/10000});
  clock->store(300.0);
  QueryRequest request;
  request.handle = *handle;
  request.params = {{"cut", expr::EvalValue::Number(102)}};
  request.deadline_ms = 100;
  auto expired = mw.Submit(request)->Await();
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded()) << expired.status();

  // Backend recovers; the re-armed window elapses; a new probe succeeds.
  mw.fault_injector()->ClearRules();
  clock->store(600.0);
  auto recovered = RunCut(mw, *handle, 103);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->source, QueryResponse::Source::kDbms);
  auto after = RunCut(mw, *handle, 104);
  ASSERT_TRUE(after.ok()) << after.status();
}

// A deadline that expires while the request is already on a worker resolves
// as kDeadlineExceeded: the deadline gates *starting* backend work.
TEST_F(FaultToleranceTest, DeadlineExpiryMidFlight) {
  Gate gate;
  MiddlewareOptions options;
  options.before_dbms_execute = gate.Hook();
  Middleware mw(&engine_, options);

  auto handle = mw.Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  ASSERT_TRUE(handle.ok());
  QueryRequest request;
  request.handle = *handle;
  request.params = {{"cut", expr::EvalValue::Number(100)}};
  request.deadline_ms = 40;
  auto ticket = mw.Submit(request);

  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  gate.Open();
  auto response = ticket->Await();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded()) << response.status();

  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.dbms_executions, 0u);
}

// QueryTicket::Await(timeout) is a wait with a timeout, not a cancellation:
// the request stays in flight, and a later Await still gets the result.
TEST_F(FaultToleranceTest, AwaitTimeoutDoesNotCancelTheRequest) {
  Gate gate;
  MiddlewareOptions options;
  options.before_dbms_execute = gate.Hook();
  Middleware mw(&engine_, options);

  auto handle = mw.Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  ASSERT_TRUE(handle.ok());
  QueryRequest request;
  request.handle = *handle;
  request.params = {{"cut", expr::EvalValue::Number(123)}};
  auto ticket = mw.Submit(request);

  auto timed_out = ticket->Await(std::chrono::milliseconds(10));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsDeadlineExceeded());
  EXPECT_FALSE(ticket->done());

  gate.Open();
  auto response = ticket->Await();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->table->column(0).NumericAt(0), 123.0);

  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

// When fresh execution is impossible, a previously archived result is served
// bit-identically, marked stale+degraded — even after ClearCaches.
TEST_F(FaultToleranceTest, StaleCacheServedBitIdenticalUnderOutage) {
  MiddlewareOptions options;
  options.fault_injection = FaultInjectorOptions{};  // healthy until told
  options.retry.initial_backoff_ms = 0.1;
  Middleware mw(&engine_, options);

  const std::string sql = "SELECT COUNT(*) AS c FROM t WHERE v < 250";
  auto fresh = mw.Execute(sql);
  ASSERT_TRUE(fresh.ok()) << fresh.status();

  mw.ClearCaches();  // drops both cache tiers; the stale archive survives
  mw.fault_injector()->AddRule(FaultRule{"", 0, /*permanent=*/true});

  auto degraded = mw.Execute(sql);
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->source, QueryResponse::Source::kStaleCache);
  EXPECT_EQ(Bytes(*degraded->table), Bytes(*fresh->table));

  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.degraded_responses, 1u);
  EXPECT_EQ(stats.retries, 2u);  // default budget spent before degrading
  EXPECT_EQ(stats.errors, 0u);   // the client got an answer

  // Degraded serving can be turned off: same situation, hard error instead.
  MiddlewareOptions strict = options;
  strict.enable_degraded_serving = false;
  strict.fault_injection->rules.push_back(FaultRule{"", 0, /*permanent=*/true});
  Middleware strict_mw(&engine_, strict);
  auto err = strict_mw.Execute(sql);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsUnavailable());
}

// With no stale entry to fall back on, a tile-shaped query is answered from
// a *coarser* already-built zoom level — exact at that resolution, marked
// degraded — instead of erroring out.
TEST_F(FaultToleranceTest, CoarserTileLevelServedWhenBackendDown) {
  const std::string bin0 = "${start} + FLOOR((v - ${start}) / ${step}) * ${step}";
  const std::string sql = "SELECT " + bin0 + " AS bin0, (" + bin0 +
                          ") + ${step} AS bin1, COUNT(*) AS c FROM t GROUP BY " +
                          bin0 + ", (" + bin0 + ") + ${step}";

  MiddlewareOptions options;
  options.enable_client_cache = false;
  options.enable_server_cache = false;
  options.tile_options.max_maxbins = 4;  // only coarse levels get built
  options.fault_injection = FaultInjectorOptions{};
  options.fault_injection->rules.push_back(FaultRule{"", 0, /*permanent=*/true});
  options.retry.max_attempts = 1;
  Middleware mw(&engine_, options);
  ASSERT_NE(mw.tile_store(), nullptr);

  // Request a finer binning than any built level: the exact tile probe
  // misses, the DBMS is down, and the degraded probe picks the finest built
  // level at or above the requested step.
  transforms::Binning fine = transforms::ComputeBinning(0, 499, 64);
  auto handle = mw.Prepare(sql);
  ASSERT_TRUE(handle.ok()) << handle.status();
  QueryRequest request;
  request.handle = *handle;
  request.params = {{"start", expr::EvalValue::Number(fine.start)},
                    {"step", expr::EvalValue::Number(fine.step)}};
  auto degraded = mw.Submit(request)->Await();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->source, QueryResponse::Source::kTileStore);
  EXPECT_EQ(mw.tile_store()->stats().degraded_hits, 1u);
  EXPECT_EQ(mw.stats().degraded_responses, 1u);

  // The degraded answer must be bit-identical to honestly executing the
  // same template at the coarser level it came from: the finest binning
  // with step >= the requested one among maxbins 1..4.
  transforms::Binning coarse = transforms::ComputeBinning(0, 499, 1);
  for (int maxbins = 2; maxbins <= 4; ++maxbins) {
    transforms::Binning b = transforms::ComputeBinning(0, 499, maxbins);
    if (b.step >= fine.step && b.step < coarse.step) coarse = b;
  }
  MiddlewareOptions plain;
  plain.enable_client_cache = false;
  plain.enable_server_cache = false;
  plain.engine_config = EngineConfig::Current();
  plain.engine_config->tile_serving = false;
  Middleware base(&engine_, plain);
  auto base_handle = base.Prepare(sql);
  ASSERT_TRUE(base_handle.ok());
  QueryRequest base_request;
  base_request.handle = *base_handle;
  base_request.params = {{"start", expr::EvalValue::Number(coarse.start)},
                         {"step", expr::EvalValue::Number(coarse.step)}};
  auto want = base.Submit(base_request)->Await();
  ASSERT_TRUE(want.ok()) << want.status();
  EXPECT_EQ(Bytes(*degraded->table), Bytes(*want->table));
}

// Saturation: one worker blocked, a queue bound of 2 — most of an 8-thread
// burst is shed as kUnavailable, stats stay coherent, and the pool's
// rejected count matches the shed stat exactly.
TEST_F(FaultToleranceTest, ShedsLoadUnderSaturationCoherently) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;

  Gate gate;
  MiddlewareOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 2;
  options.before_dbms_execute = gate.Hook();
  Middleware mw(&engine_, options);

  std::vector<rewrite::QueryTicketPtr> tickets(kThreads * kPerThread);
  std::vector<std::shared_ptr<Session>> sessions(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int tid = 0; tid < kThreads; ++tid) {
      threads.emplace_back([&, tid] {
        sessions[tid] = mw.CreateSession();
        auto handle =
            sessions[tid]->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
        ASSERT_TRUE(handle.ok());
        for (int i = 0; i < kPerThread; ++i) {
          QueryRequest request;
          request.handle = *handle;
          // Distinct cut per submission: no single-flight collapse.
          request.params = {
              {"cut", expr::EvalValue::Number(tid * kPerThread + i + 1)}};
          tickets[tid * kPerThread + i] = sessions[tid]->Submit(request);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  gate.Open();

  size_t ok = 0, shed = 0;
  for (const auto& ticket : tickets) {
    auto response = ticket->Await();
    if (response.ok()) {
      ++ok;
    } else {
      ASSERT_TRUE(response.status().IsUnavailable()) << response.status();
      EXPECT_NE(response.status().message().find("shed"), std::string::npos);
      ++shed;
    }
  }
  AwaitQuiescence(mw);

  EXPECT_GT(shed, 0u);
  EXPECT_GE(ok, 1u);  // the blocked task plus anything queued still lands
  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.submitted, static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.shed, mw.worker_pool().rejected_count());
  EXPECT_EQ(stats.errors, stats.shed);
  EXPECT_EQ(stats.queries + stats.cancelled + stats.errors, stats.submitted);
  EXPECT_EQ(mw.worker_pool().queue_depth(), 0u);
}

// Per-session admission fairness: when one session floods the bounded queue,
// it is the one shed — a light session arriving at the already-saturated
// queue is still admitted (it bypasses the bound), so a runaway dashboard
// cannot starve other clients.
TEST_F(FaultToleranceTest, ShedsHeaviestSessionFirstAtSaturatedQueue) {
  Gate gate;
  MiddlewareOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 2;
  options.before_dbms_execute = gate.Hook();
  Middleware mw(&engine_, options);

  auto heavy = mw.CreateSession();
  auto light = mw.CreateSession();
  auto heavy_handle = heavy->Prepare(kCutTemplate);
  auto light_handle =
      light->Prepare("SELECT COUNT(*) AS c FROM t WHERE v >= ${cut}");
  ASSERT_TRUE(heavy_handle.ok());
  ASSERT_TRUE(light_handle.ok());

  // Flood from the heavy session: one request occupies the (gated) worker,
  // two fill the queue, the rest are shed — heavy is always the heaviest
  // submitter, so the bound applies to it in full.
  constexpr int kHeavy = 8;
  std::vector<rewrite::QueryTicketPtr> heavy_tickets;
  for (int i = 0; i < kHeavy; ++i) {
    QueryRequest request;
    request.handle = *heavy_handle;
    // Distinct cut per submission: no single-flight collapse.
    request.params = {{"cut", expr::EvalValue::Number(i + 1)}};
    heavy_tickets.push_back(heavy->Submit(request));
  }

  // The queue is now saturated entirely by heavy's tasks; light's own
  // queued count (0, then 1) stays strictly below heavy's, so both of its
  // submissions must be admitted past the bound.
  std::vector<rewrite::QueryTicketPtr> light_tickets;
  for (int i = 0; i < 2; ++i) {
    QueryRequest request;
    request.handle = *light_handle;
    request.params = {{"cut", expr::EvalValue::Number(i + 1)}};
    light_tickets.push_back(light->Submit(request));
  }

  gate.Open();
  size_t heavy_shed = 0;
  for (const auto& ticket : heavy_tickets) {
    auto response = ticket->Await();
    if (!response.ok()) {
      ASSERT_TRUE(response.status().IsUnavailable()) << response.status();
      ++heavy_shed;
    }
  }
  for (const auto& ticket : light_tickets) {
    auto response = ticket->Await();
    EXPECT_TRUE(response.ok()) << response.status();
  }
  AwaitQuiescence(mw);

  EXPECT_GT(heavy_shed, 0u);
  EXPECT_EQ(heavy->stats().shed, heavy_shed);
  EXPECT_EQ(light->stats().shed, 0u);
  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.shed, heavy_shed);
  EXPECT_EQ(stats.shed, mw.worker_pool().rejected_count());
  EXPECT_EQ(mw.worker_pool().queue_depth(), 0u);
}

// 8 threads against a flaky, stalling backend with retries, supersession,
// and occasional deadlines: every ticket resolves, failure codes are only
// the expected ones, and the fleet stats add up at quiescence.
TEST_F(FaultToleranceTest, ChaosStressStatsStayCoherent) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 30;

  MiddlewareOptions options;
  options.fault_injection = FaultInjectorOptions{};
  options.fault_injection->seed = 7;
  options.fault_injection->rules.push_back(
      FaultRule{"", 0, false, /*fail_probability=*/0.25, /*stall_ms=*/0.05});
  options.retry.max_attempts = 2;
  options.retry.initial_backoff_ms = 0.1;
  options.circuit_breaker.failure_threshold = 1000;  // stress retries, not trips
  Middleware mw(&engine_, options);

  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      auto session = mw.CreateSession();
      auto handle =
          session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
      if (!handle.ok()) {
        ++unexpected;
        return;
      }
      uint64_t generation = 0;
      for (int i = 0; i < kIterations; ++i) {
        QueryRequest request;
        request.handle = *handle;
        request.params = {
            {"cut", expr::EvalValue::Number(25.0 * (1 + (i + tid) % 9))}};
        request.generation = ++generation;
        if (i % 5 == 4) request.deadline_ms = 5;
        auto ticket = session->Submit(request);
        auto response = ticket->Await();
        if (response.ok()) continue;
        const Status& st = response.status();
        if (!st.IsCancelled() && !st.IsUnavailable() && !st.IsDeadlineExceeded()) {
          ++unexpected;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  AwaitQuiescence(mw);

  EXPECT_EQ(unexpected.load(), 0);
  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.queries + stats.cancelled + stats.errors, stats.submitted);
  EXPECT_EQ(stats.submitted, static_cast<size_t>(kThreads * kIterations));
  EXPECT_GT(mw.fault_injector()->attempts(), 0u);
  // Errors are attributable: nothing failed without a cause counter.
  EXPECT_LE(stats.deadline_exceeded + stats.shed, stats.errors);
}

// A success reported late — by an execution admitted before the breaker
// opened — must not close an open breaker and bypass the open_ms window
// (symmetric with how RecordFailure ignores late reports while open).
TEST(CircuitBreakerTest, LateSuccessWhileOpenIsIgnored) {
  double now = 0;
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 100.0;
  options.clock_ms = [&now] { return now; };
  CircuitBreaker breaker(options);

  EXPECT_TRUE(breaker.Admit("s"));
  breaker.RecordFailure("s");
  ASSERT_EQ(breaker.state("s"), CircuitBreaker::State::kOpen);

  breaker.RecordSuccess("s");  // straggler from a pre-open admission
  EXPECT_EQ(breaker.state("s"), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Admit("s")) << "late success bypassed the open window";

  now = 150;
  bool is_probe = false;
  EXPECT_TRUE(breaker.Admit("s", &is_probe));
  EXPECT_TRUE(is_probe);
  breaker.RecordSuccess("s");  // the probe's own success does close it
  EXPECT_EQ(breaker.state("s"), CircuitBreaker::State::kClosed);
}

// AbandonProbe releases a probe slot whose holder will never report,
// re-arming the open window instead of wedging the breaker half-open.
TEST(CircuitBreakerTest, AbandonProbeReArmsTheOpenWindow) {
  double now = 0;
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 100.0;
  options.clock_ms = [&now] { return now; };
  CircuitBreaker breaker(options);

  EXPECT_TRUE(breaker.Admit("s"));
  breaker.RecordFailure("s");
  now = 150;
  bool is_probe = false;
  ASSERT_TRUE(breaker.Admit("s", &is_probe));
  ASSERT_TRUE(is_probe);
  EXPECT_FALSE(breaker.Admit("s"));  // one probe at a time

  breaker.AbandonProbe("s");
  EXPECT_EQ(breaker.state("s"), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.open_transitions(), 1u);  // not a failure transition
  EXPECT_FALSE(breaker.Admit("s"));  // window restarted at abandon time

  now = 300;
  is_probe = false;
  EXPECT_TRUE(breaker.Admit("s", &is_probe));
  EXPECT_TRUE(is_probe);
  breaker.RecordSuccess("s");
  EXPECT_EQ(breaker.state("s"), CircuitBreaker::State::kClosed);
}

// The injector's per-key attempt map only tracks keys some rule matches:
// a long chaos bench over millions of distinct healthy queries must not
// grow it without bound.
TEST(FaultInjectorTest, TracksAttemptsOnlyForRuleMatchedKeys) {
  FaultInjector quiet((FaultInjectorOptions{}));  // no rules at all
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(quiet.OnDbmsExecute("query-" + std::to_string(i)).fail);
  }
  EXPECT_EQ(quiet.tracked_keys(), 0u);
  EXPECT_EQ(quiet.attempts(), 100u);

  FaultInjectorOptions options;
  options.rules.push_back(FaultRule{"orders", /*fail_times=*/1});
  FaultInjector injector(std::move(options));
  EXPECT_TRUE(injector.OnDbmsExecute("SELECT c FROM orders").fail);
  EXPECT_FALSE(injector.OnDbmsExecute("SELECT c FROM users").fail);
  EXPECT_FALSE(injector.OnDbmsExecute("SELECT c FROM orders").fail);  // recovered
  EXPECT_EQ(injector.tracked_keys(), 1u);  // only the matched key
  EXPECT_EQ(injector.attempts(), 3u);      // all attempts still counted
}

}  // namespace
}  // namespace runtime
}  // namespace vegaplus
