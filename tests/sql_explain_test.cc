#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/parser.h"
#include "sql/engine.h"

namespace vegaplus {
namespace sql {
namespace {

using data::DataType;
using data::Schema;
using data::Value;

class SqlExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({{"v", DataType::kFloat64}, {"cat", DataType::kString}});
    data::TableBuilder builder(schema);
    Rng rng(1);
    const char* cats[] = {"a", "b", "c", "d"};
    for (int i = 0; i < 10000; ++i) {
      builder.AppendRow({Value::Double(rng.Uniform(0, 100)),
                         Value::String(cats[rng.Index(4)])});
    }
    engine_.RegisterTable("t", builder.Build());
  }

  EstimatedPlan Explain(const std::string& sql) {
    auto r = engine_.Explain(sql);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : EstimatedPlan{};
  }

  Engine engine_;
};

TEST_F(SqlExplainTest, ScanEstimatesFullTable) {
  EstimatedPlan est = Explain("SELECT * FROM t");
  EXPECT_DOUBLE_EQ(est.input_rows, 10000.0);
  EXPECT_DOUBLE_EQ(est.output_rows, 10000.0);
}

TEST_F(SqlExplainTest, RangeSelectivityUsesExtent) {
  // v is uniform on [0,100]; WHERE v < 25 should estimate ~25%.
  EstimatedPlan est = Explain("SELECT * FROM t WHERE v < 25");
  EXPECT_NEAR(est.output_rows / est.input_rows, 0.25, 0.05);
  EstimatedPlan rev = Explain("SELECT * FROM t WHERE 25 > v");
  EXPECT_NEAR(rev.output_rows / rev.input_rows, 0.25, 0.05);
}

TEST_F(SqlExplainTest, EqualityUsesDistinctCount) {
  EstimatedPlan est = Explain("SELECT * FROM t WHERE cat = 'a'");
  EXPECT_NEAR(est.output_rows / est.input_rows, 0.25, 0.01);  // 4 distinct
}

TEST_F(SqlExplainTest, ConjunctionMultiplies) {
  EstimatedPlan est = Explain("SELECT * FROM t WHERE v < 50 AND cat = 'a'");
  EXPECT_NEAR(est.output_rows / est.input_rows, 0.5 * 0.25, 0.03);
}

TEST_F(SqlExplainTest, GroupByCategoricalEstimatesDistinct) {
  EstimatedPlan est = Explain("SELECT cat, COUNT(*) AS c FROM t GROUP BY cat");
  EXPECT_DOUBLE_EQ(est.output_rows, 4.0);
}

TEST_F(SqlExplainTest, LimitCaps) {
  EstimatedPlan est = Explain("SELECT * FROM t LIMIT 7");
  EXPECT_DOUBLE_EQ(est.output_rows, 7.0);
}

TEST_F(SqlExplainTest, UnknownTableEstimatesEmpty) {
  EstimatedPlan est = Explain("SELECT * FROM missing");
  EXPECT_DOUBLE_EQ(est.input_rows, 0.0);
  EXPECT_DOUBLE_EQ(est.output_rows, 0.0);
}

TEST_F(SqlExplainTest, CostGrowsWithWork) {
  double scan = Explain("SELECT * FROM t").cost;
  double filtered = Explain("SELECT * FROM t WHERE v < 50").cost;
  double grouped = Explain("SELECT cat, COUNT(*) AS c FROM t GROUP BY cat").cost;
  double sorted = Explain("SELECT * FROM t ORDER BY v").cost;
  EXPECT_GT(filtered, scan * 0.9);
  EXPECT_GT(grouped, scan * 0.9);
  EXPECT_GT(sorted, scan);  // sort adds n log n
}

TEST_F(SqlExplainTest, EstimateVsActualWithinFactor) {
  // The estimator should be within ~2x of the truth on easy predicates
  // (uniform data, single-column ranges).
  const char* queries[] = {
      "SELECT * FROM t WHERE v < 10",
      "SELECT * FROM t WHERE v >= 90",
      "SELECT * FROM t WHERE cat = 'b'",
      "SELECT cat, COUNT(*) AS c FROM t GROUP BY cat",
  };
  for (const char* q : queries) {
    auto actual = engine_.Query(q);
    ASSERT_TRUE(actual.ok());
    EstimatedPlan est = Explain(q);
    double truth = static_cast<double>(actual->table->num_rows());
    EXPECT_LE(est.output_rows, truth * 2 + 10) << q;
    EXPECT_GE(est.output_rows, truth / 2 - 10) << q;
  }
}

TEST(SelectivityTest, NotInverts) {
  auto pred = *expr::ParseExpression("datum.x > 0");
  auto not_pred = expr::Node::Unary(expr::UnaryOp::kNot, pred);
  double s = EstimateSelectivity(pred, nullptr);
  double ns = EstimateSelectivity(not_pred, nullptr);
  EXPECT_NEAR(s + ns, 1.0, 1e-9);
}

TEST(SelectivityTest, OrUnion) {
  auto pred = *expr::ParseExpression("datum.x > 0 || datum.y > 0");
  double s = EstimateSelectivity(pred, nullptr);
  EXPECT_GT(s, 0.33);
  EXPECT_LE(s, 1.0);
}

}  // namespace
}  // namespace sql
}  // namespace vegaplus
