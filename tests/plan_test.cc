#include <gtest/gtest.h>

#include <set>

#include "benchdata/templates.h"
#include "plan/encoder.h"
#include "plan/enumerator.h"

namespace vegaplus {
namespace plan {
namespace {

using benchdata::TemplateId;

TEST(FeatureLayoutTest, IndicesConsistent) {
  auto names = FeatureNames();
  EXPECT_EQ(names.size(), 2 * EncodedOpTypes().size());
  for (const std::string& t : EncodedOpTypes()) {
    int ci = CountFeatureIndex(t);
    int di = CardFeatureIndex(t);
    ASSERT_GE(ci, 0) << t;
    ASSERT_GE(di, 0) << t;
    EXPECT_EQ(names[static_cast<size_t>(ci)], "count_" + t);
    EXPECT_EQ(names[static_cast<size_t>(di)], "card_" + t);
  }
  EXPECT_EQ(CountFeatureIndex("nope"), -1);
  EXPECT_EQ(CardFeatureIndex("nope"), -1);
}

TEST(NormalizeTest, MinMaxToUnitRange) {
  size_t n = EncodedOpTypes().size();
  std::vector<std::vector<double>> vectors(3, std::vector<double>(2 * n, 0));
  vectors[0][n] = 10;
  vectors[1][n] = 20;
  vectors[2][n] = 30;
  NormalizeCardinalityFeatures(&vectors);
  EXPECT_DOUBLE_EQ(vectors[0][n], 0.0);
  EXPECT_DOUBLE_EQ(vectors[1][n], 0.5);
  EXPECT_DOUBLE_EQ(vectors[2][n], 1.0);
  // Count features untouched.
  EXPECT_DOUBLE_EQ(vectors[0][0], 0.0);
}

class EncoderFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "flights",
                                       4000, 5);
    ASSERT_TRUE(bc.ok());
    bc_ = std::make_unique<benchdata::BenchCase>(*bc);
    engine_.RegisterTable(bc_->dataset.name, bc_->dataset.table);
    builder_ = std::make_unique<rewrite::PlanBuilder>(bc_->spec);
    enumeration_ = EnumeratePlans(*builder_);
    for (const auto& s : bc_->spec.signals) {
      signals_.Set(s.name, expr::EvalValue::FromJson(s.init), 0);
    }
    // The bin transform reads the extent signal; give it a plausible value.
    signals_.Set("x_extent",
                 expr::EvalValue::Array({data::Value::Double(0),
                                         data::Value::Double(100)}),
                 0);
  }
  std::unique_ptr<benchdata::BenchCase> bc_;
  sql::Engine engine_;
  std::unique_ptr<rewrite::PlanBuilder> builder_;
  EnumerationResult enumeration_;
  dataflow::SignalRegistry signals_;
};

TEST_F(EncoderFixture, VectorsDiscriminatePlans) {
  PlanEncoder encoder(*builder_, &engine_);
  auto vectors = encoder.EncodePlans(enumeration_.plans, signals_);
  ASSERT_EQ(vectors.size(), enumeration_.plans.size());
  std::set<std::vector<double>> distinct(vectors.begin(), vectors.end());
  EXPECT_EQ(distinct.size(), vectors.size()) << "plans must encode distinctly";
}

TEST_F(EncoderFixture, PushdownHasFewerClientOpsAndSmallerFetch) {
  PlanEncoder encoder(*builder_, &engine_);
  auto vectors = encoder.EncodePlans(enumeration_.plans, signals_);
  size_t all_client = 0, pushdown = 0;
  for (size_t i = 0; i < enumeration_.plans.size(); ++i) {
    if (enumeration_.plans[i] == builder_->AllClientPlan()) all_client = i;
    if (enumeration_.plans[i] == builder_->FullPushdownPlan()) pushdown = i;
  }
  int agg = CountFeatureIndex("aggregate");
  int vdt_card = CardFeatureIndex("vdt");
  EXPECT_GT(vectors[all_client][static_cast<size_t>(agg)],
            vectors[pushdown][static_cast<size_t>(agg)]);
  // All-client fetches raw rows (max normalized card); pushdown fetches the
  // aggregated histogram (min).
  EXPECT_DOUBLE_EQ(vectors[all_client][static_cast<size_t>(vdt_card)], 1.0);
  EXPECT_DOUBLE_EQ(vectors[pushdown][static_cast<size_t>(vdt_card)], 0.0);
}

TEST_F(EncoderFixture, EpisodeVectorsShrinkForPartialUpdates) {
  PlanEncoder encoder(*builder_, &engine_);
  auto initial = encoder.EncodePlans(enumeration_.plans, signals_);
  // maxbins touches bin+aggregate but not extent.
  auto episode = encoder.EncodeEpisode(enumeration_.plans, signals_, {"maxbins"});
  int sig_count = CountFeatureIndex("vdt_signal");
  int ext_count = CountFeatureIndex("extent");
  for (size_t i = 0; i < initial.size(); ++i) {
    EXPECT_LE(episode[i][static_cast<size_t>(sig_count)],
              initial[i][static_cast<size_t>(sig_count)]);
    EXPECT_LE(episode[i][static_cast<size_t>(ext_count)],
              initial[i][static_cast<size_t>(ext_count)]);
  }
  // The all-client plan's extent op must not re-evaluate on a maxbins move.
  size_t all_client = 0;
  for (size_t i = 0; i < enumeration_.plans.size(); ++i) {
    if (enumeration_.plans[i] == builder_->AllClientPlan()) all_client = i;
  }
  EXPECT_DOUBLE_EQ(episode[all_client][static_cast<size_t>(ext_count)], 0.0);
}

TEST(EnumeratorTest, CountsMatchConstraints) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "movies",
                                     500, 2);
  ASSERT_TRUE(bc.ok());
  rewrite::PlanBuilder builder(bc->spec);
  auto e = EnumeratePlans(builder);
  // Histogram: source entry (0 transforms) x binned entry (3 rewritable) ->
  // 4 plans.
  EXPECT_EQ(e.total_space, 4u);
  EXPECT_FALSE(e.truncated);
  for (const auto& p : e.plans) {
    EXPECT_TRUE(builder.Validate(p).ok()) << p.Key();
  }
}

TEST(EnumeratorTest, SamplingKeepsAnchorsAndBound) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kCrossfilter, "flights", 500, 3);
  ASSERT_TRUE(bc.ok());
  rewrite::PlanBuilder builder(bc->spec);
  auto e = EnumeratePlans(builder, 50, 7);
  EXPECT_TRUE(e.truncated);
  EXPECT_EQ(e.plans.size(), 50u);
  EXPECT_GT(e.total_space, 50u);
  bool has_client = false, has_pushdown = false;
  for (const auto& p : e.plans) {
    if (p == builder.AllClientPlan()) has_client = true;
    if (p == builder.FullPushdownPlan()) has_pushdown = true;
    EXPECT_TRUE(builder.Validate(p).ok());
  }
  EXPECT_TRUE(has_client);
  EXPECT_TRUE(has_pushdown);
}

TEST(EnumeratorTest, ReservedParentBlocksChildRewrites) {
  // Heatmap+Bar: both pipelines hang off an unreserved root, so splits flow;
  // but a spec whose intermediate entry is scale-referenced pins children.
  const char* spec_json = R"({
    "data": [
      {"name": "source", "table": "t"},
      {"name": "mid", "source": "source", "transform": [
        {"type": "filter", "expr": "datum.x > 0"}]},
      {"name": "leaf", "source": "mid", "transform": [
        {"type": "aggregate", "groupby": ["g"], "ops": ["count"],
         "fields": [null], "as": ["count"]}]}
    ],
    "scales": [{"name": "s", "domain": {"data": "mid", "field": "x"}}],
    "marks": [{"type": "rect", "from": {"data": "leaf"}}]
  })";
  auto parsed = spec::ParseSpecText(spec_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  rewrite::PlanBuilder builder(*parsed);
  auto e = EnumeratePlans(builder);
  for (const auto& p : e.plans) {
    // leaf (entry 2) must never rewrite: its parent 'mid' is reserved.
    EXPECT_EQ(p.splits[2], 0) << p.Key();
  }
  // mid itself can still rewrite its filter.
  EXPECT_EQ(e.total_space, 2u);
}

TEST(PruningTest, BoundaryKeepsEndpoints) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kOverviewDetail, "flights", 500, 4);
  ASSERT_TRUE(bc.ok());
  rewrite::PlanBuilder builder(bc->spec);
  auto full = EnumeratePlans(builder);
  auto pruned = EnumeratePlansPruned(builder, PruningStrategy::kBoundary);
  EXPECT_LT(pruned.plans.size(), full.plans.size());
  bool has_client = false, has_pushdown = false;
  for (const auto& p : pruned.plans) {
    if (p == builder.AllClientPlan()) has_client = true;
    if (p == builder.FullPushdownPlan()) has_pushdown = true;
    for (size_t e = 0; e < p.splits.size(); ++e) {
      EXPECT_TRUE(p.splits[e] == 0 || p.splits[e] == builder.max_splits()[e]);
    }
  }
  EXPECT_TRUE(has_client);
  EXPECT_TRUE(has_pushdown);
}

TEST(PruningTest, CardinalityThresholdDropsRawFetchesAtScale) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "flights",
                                     20000, 5);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  rewrite::PlanBuilder builder(bc->spec);
  auto pruned = EnumeratePlansPruned(builder, PruningStrategy::kCardinalityThreshold,
                                     &engine, 2.0);
  ASSERT_FALSE(pruned.plans.empty());
  // The all-client plan fetches 20k raw rows; the pushdown plan fetches a
  // ~10-row histogram — with factor 2 the raw fetch must be gone.
  for (const auto& p : pruned.plans) {
    EXPECT_FALSE(p == builder.AllClientPlan()) << p.Key();
  }
}

}  // namespace
}  // namespace plan
}  // namespace vegaplus
