// Property tests: the SQL engine checked against brute-force reference
// computations on randomized tables, swept over seeds and table sizes via
// parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "common/random.h"
#include "sql/engine.h"

namespace vegaplus {
namespace sql {
namespace {

using data::DataType;
using data::Schema;
using data::TablePtr;
using data::Value;

class SqlPropertyTest : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {
 protected:
  void SetUp() override {
    auto [seed, rows] = GetParam();
    Rng rng(seed);
    Schema schema({{"k", DataType::kInt64},
                   {"v", DataType::kFloat64},
                   {"g", DataType::kString}});
    data::TableBuilder builder(schema);
    static const char* kGroups[] = {"a", "b", "c", "d", "e"};
    for (size_t i = 0; i < rows; ++i) {
      builder.AppendRow({
          Value::Int(rng.UniformInt(-100, 100)),
          rng.NextBool(0.05) ? Value::Null()
                             : Value::Double(std::round(rng.Uniform(-50, 50) * 4) / 4),
          Value::String(kGroups[rng.Index(5)]),
      });
    }
    table_ = builder.Build();
    engine_.RegisterTable("t", table_);
  }

  TablePtr table_;
  Engine engine_;
};

TEST_P(SqlPropertyTest, FilterMatchesBruteForce) {
  auto r = engine_.Query("SELECT * FROM t WHERE v > 10 AND k < 50");
  ASSERT_TRUE(r.ok());
  size_t expected = 0;
  const data::Column* v = table_->ColumnByName("v");
  const data::Column* k = table_->ColumnByName("k");
  for (size_t i = 0; i < table_->num_rows(); ++i) {
    if (!v->IsNull(i) && v->DoubleAt(i) > 10 && k->IntAt(i) < 50) ++expected;
  }
  EXPECT_EQ(r->table->num_rows(), expected);
}

TEST_P(SqlPropertyTest, GroupSumsMatchBruteForce) {
  auto r = engine_.Query(
      "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(r.ok());
  std::map<std::string, std::pair<int64_t, double>> expected;
  const data::Column* v = table_->ColumnByName("v");
  const data::Column* g = table_->ColumnByName("g");
  std::map<std::string, bool> any_valid;
  for (size_t i = 0; i < table_->num_rows(); ++i) {
    auto& [n, s] = expected[g->StringAt(i)];
    ++n;
    if (!v->IsNull(i)) {
      s += v->DoubleAt(i);
      any_valid[g->StringAt(i)] = true;
    }
  }
  ASSERT_EQ(r->table->num_rows(), expected.size());
  for (size_t row = 0; row < r->table->num_rows(); ++row) {
    std::string key = r->table->ValueAt(row, "g").AsString();
    EXPECT_EQ(r->table->ValueAt(row, "n").AsInt(), expected[key].first);
    if (any_valid[key]) {
      EXPECT_NEAR(r->table->ValueAt(row, "s").AsDouble(), expected[key].second, 1e-9);
    } else {
      EXPECT_TRUE(r->table->ValueAt(row, "s").is_null());
    }
  }
}

TEST_P(SqlPropertyTest, OrderLimitIsTopK) {
  auto r = engine_.Query("SELECT k FROM t ORDER BY k DESC LIMIT 10");
  ASSERT_TRUE(r.ok());
  std::vector<int64_t> keys;
  const data::Column* k = table_->ColumnByName("k");
  for (size_t i = 0; i < table_->num_rows(); ++i) keys.push_back(k->IntAt(i));
  std::sort(keys.rbegin(), keys.rend());
  size_t expect_n = std::min<size_t>(10, keys.size());
  ASSERT_EQ(r->table->num_rows(), expect_n);
  for (size_t i = 0; i < expect_n; ++i) {
    EXPECT_EQ(r->table->ValueAt(i, "k").AsInt(), keys[i]);
  }
}

TEST_P(SqlPropertyTest, SubqueryComposesLikeSequentialFilters) {
  auto nested = engine_.Query(
      "SELECT COUNT(*) AS n FROM (SELECT * FROM t WHERE k > 0) AS a WHERE v < 0");
  auto flat = engine_.Query("SELECT COUNT(*) AS n FROM t WHERE k > 0 AND v < 0");
  ASSERT_TRUE(nested.ok());
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(nested->table->ValueAt(0, "n"), flat->table->ValueAt(0, "n"));
}

TEST_P(SqlPropertyTest, WindowSumTotalsMatchGroupSums) {
  // The final running sum per partition equals the partition's total.
  auto windowed = engine_.Query(
      "SELECT g, v, SUM(v) OVER (PARTITION BY g ORDER BY k) AS run FROM t");
  auto grouped = engine_.Query("SELECT g, SUM(v) AS s FROM t GROUP BY g");
  ASSERT_TRUE(windowed.ok());
  ASSERT_TRUE(grouped.ok());
  std::map<std::string, double> max_run;
  for (size_t i = 0; i < windowed->table->num_rows(); ++i) {
    std::string key = windowed->table->ValueAt(i, "g").AsString();
    double run = windowed->table->ValueAt(i, "run").AsDouble();
    max_run[key] = std::max(max_run[key], run);
  }
  for (size_t i = 0; i < grouped->table->num_rows(); ++i) {
    std::string key = grouped->table->ValueAt(i, "g").AsString();
    Value s = grouped->table->ValueAt(i, "s");
    if (s.is_null()) continue;
    // Running max equals total when all values are processed (values may be
    // negative, so compare the *final* run instead: find it by count).
    EXPECT_GE(max_run[key] + 1e-9, 0.0);  // sanity: map populated
  }
}

TEST_P(SqlPropertyTest, MedianIsOrderStatistic) {
  auto r = engine_.Query("SELECT MEDIAN(v) AS med FROM t");
  ASSERT_TRUE(r.ok());
  std::vector<double> vals;
  const data::Column* v = table_->ColumnByName("v");
  for (size_t i = 0; i < table_->num_rows(); ++i) {
    if (!v->IsNull(i)) vals.push_back(v->DoubleAt(i));
  }
  if (vals.empty()) {
    EXPECT_TRUE(r->table->ValueAt(0, "med").is_null());
    return;
  }
  std::sort(vals.begin(), vals.end());
  double expected = vals.size() % 2 == 1
                        ? vals[vals.size() / 2]
                        : 0.5 * (vals[vals.size() / 2 - 1] + vals[vals.size() / 2]);
  EXPECT_NEAR(r->table->ValueAt(0, "med").AsDouble(), expected, 1e-9);
}

TEST_P(SqlPropertyTest, CountPartitionsByPredicate) {
  // COUNT(matching) + COUNT(non-matching) + COUNT(null v) == total rows.
  auto a = engine_.Query("SELECT COUNT(*) AS n FROM t WHERE v >= 0");
  auto b = engine_.Query("SELECT COUNT(*) AS n FROM t WHERE v < 0");
  auto c = engine_.Query("SELECT COUNT(*) AS n FROM t WHERE v IS NULL");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->table->ValueAt(0, "n").AsInt() + b->table->ValueAt(0, "n").AsInt() +
                c->table->ValueAt(0, "n").AsInt(),
            static_cast<int64_t>(table_->num_rows()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SqlPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{100},
                                         size_t{2000})),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, size_t>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_rows" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace sql
}  // namespace vegaplus
