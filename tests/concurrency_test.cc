// Concurrency tests for the shared Middleware: many sessions hammering one
// service (mixed cache hits/misses/cancellations) with correctness and
// coherent-stats assertions, plus deterministic cancellation-semantics tests
// built on the before_dbms_execute gate. Registered under the `concurrency`
// ctest label; CI runs them under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "rewrite/vdt.h"
#include "runtime/middleware.h"

namespace vegaplus {
namespace runtime {
namespace {

using rewrite::QueryRequest;
using rewrite::QueryResponse;

data::TablePtr CountingTable(int rows) {
  data::Schema schema({{"v", data::DataType::kFloat64}});
  data::TableBuilder builder(schema);
  for (int i = 0; i < rows; ++i) builder.AppendRow({data::Value::Double(i)});
  return builder.Build();
}

// Spin until the middleware has accounted for every submitted request
// (cancellation bookkeeping happens when the worker dequeues the task, which
// may be after the client observed the cancelled ticket).
void AwaitQuiescence(const Middleware& mw) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    Middleware::Stats s = mw.stats();
    if (s.queries + s.cancelled + s.errors >= s.submitted) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "middleware did not quiesce";
}

TEST(ConcurrencyTest, SharedMiddlewareStress) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 60;
  constexpr int kDistinctCuts = 7;

  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(500));
  MiddlewareOptions options;
  options.worker_threads = 4;
  Middleware mw(&engine, options);

  std::atomic<int> failures{0};
  std::atomic<size_t> local_submits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      auto session = mw.CreateSession();
      auto handle = session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
      if (!handle.ok()) {
        ++failures;
        return;
      }
      uint64_t generation = 0;
      for (int i = 0; i < kIterations; ++i) {
        // Cuts cycle through a small set shared by all threads, so the mix
        // covers client hits, server hits (first touch by another session),
        // and misses.
        double cut = 50.0 * (1 + (i + tid) % kDistinctCuts);
        QueryRequest request;
        request.handle = *handle;
        request.params = {{"cut", expr::EvalValue::Number(cut)}};
        request.generation = ++generation;
        auto ticket = session->Submit(request);

        rewrite::QueryTicketPtr superseding;
        double superseding_cut = 0;
        if (i % 4 == 3) {
          // Immediately supersede: the first ticket either completed or got
          // cancelled — both are valid outcomes, never a wrong table.
          superseding_cut = 50.0 * (1 + (i + tid + 1) % kDistinctCuts);
          QueryRequest newer = request;
          newer.params = {{"cut", expr::EvalValue::Number(superseding_cut)}};
          newer.generation = ++generation;
          superseding = session->Submit(newer);
          ++local_submits;
        }
        ++local_submits;

        auto check = [&](Result<QueryResponse> response, double expected) {
          if (!response.ok()) {
            if (!response.status().IsCancelled()) ++failures;
            return;
          }
          if (!response->table || response->table->num_rows() != 1 ||
              response->table->column(0).NumericAt(0) != expected) {
            ++failures;
          }
        };
        check(ticket->Await(), cut);
        if (superseding) check(superseding->Await(), superseding_cut);
      }
    });
  }
  for (auto& t : threads) t.join();
  AwaitQuiescence(mw);

  EXPECT_EQ(failures.load(), 0);
  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.submitted, local_submits.load());
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.queries + stats.cancelled, stats.submitted);
  // Every delivered query came from exactly one tier; a DBMS execution whose
  // ticket was cancelled mid-flight is counted in dbms_executions (the work
  // happened) but not in queries (nothing was delivered).
  size_t tiers =
      stats.client_cache_hits + stats.server_cache_hits + stats.dbms_executions;
  EXPECT_LE(stats.queries, tiers);
  EXPECT_GE(stats.queries + stats.cancelled, tiers);
  // Single-flight + caches: the DBMS ran each distinct query at most a
  // handful of times, far fewer than the submissions.
  EXPECT_LT(stats.dbms_executions, stats.submitted / 4);
  EXPECT_GT(stats.client_cache_hits, 0u);
  // One session per thread plus the default session.
  EXPECT_EQ(stats.sessions, static_cast<size_t>(kThreads) + 1);
}

TEST(ConcurrencyTest, SupersededPendingTicketIsCancelledNotExecuted) {
  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(100));

  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;

  MiddlewareOptions options;
  options.worker_threads = 1;  // FIFO task order is deterministic
  options.before_dbms_execute = [&](const std::string&) {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  Middleware mw(&engine, options);
  auto session = mw.CreateSession();

  auto blocker_handle = session->Prepare("SELECT COUNT(*) AS c FROM t");
  auto handle = session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  ASSERT_TRUE(blocker_handle.ok());
  ASSERT_TRUE(handle.ok());

  // Occupy the only worker; everything after this queues.
  QueryRequest blocker;
  blocker.handle = *blocker_handle;
  auto blocker_ticket = session->Submit(blocker);

  QueryRequest old_request;
  old_request.handle = *handle;
  old_request.params = {{"cut", expr::EvalValue::Number(10)}};
  old_request.generation = 1;
  auto old_ticket = session->Submit(old_request);

  QueryRequest new_request;
  new_request.handle = *handle;
  new_request.params = {{"cut", expr::EvalValue::Number(20)}};
  new_request.generation = 2;
  auto new_ticket = session->Submit(new_request);

  // The superseded ticket resolved to Cancelled before any execution.
  EXPECT_TRUE(old_ticket->done());
  auto old_response = old_ticket->Await();
  ASSERT_FALSE(old_response.ok());
  EXPECT_TRUE(old_response.status().IsCancelled()) << old_response.status();

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();

  auto blocker_response = blocker_ticket->Await();
  ASSERT_TRUE(blocker_response.ok()) << blocker_response.status();
  auto new_response = new_ticket->Await();
  ASSERT_TRUE(new_response.ok()) << new_response.status();
  EXPECT_DOUBLE_EQ(new_response->table->column(0).NumericAt(0), 20.0);

  AwaitQuiescence(mw);
  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  // Only the blocker and the superseding request touched the DBMS.
  EXPECT_EQ(stats.dbms_executions, 2u);
}

// A superseded in-flight VDT query can never overwrite the newer result: a
// fresh evaluation with changed signals cancels the stale prefetch and the
// VDT's output reflects only the newest bindings.
TEST(ConcurrencyTest, SupersededVdtPrefetchNeverOverwritesNewerResult) {
  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(300));

  // Hold any execution of the *stale* bindings (cut=100) until the newer
  // evaluation has fully completed, so the stale query can never win by
  // finishing first — the interesting interleaving is forced.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool release_stale = false;

  MiddlewareOptions options;
  options.worker_threads = 2;
  options.before_dbms_execute = [&](const std::string& key) {
    if (key.find("cut=100") == std::string::npos) return;
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return release_stale; });
  };
  Middleware mw(&engine, options);
  auto session = mw.CreateSession();

  rewrite::VdtOp vdt("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}", {},
                     session.get());
  expr::MapSignalResolver signals;
  signals.Set("cut", expr::EvalValue::Number(100));
  vdt.Prefetch(signals);  // in-flight query for cut=100

  signals.Set("cut", expr::EvalValue::Number(200));
  auto result = vdt.Evaluate(nullptr, signals);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_NE(result->table, nullptr);
  EXPECT_DOUBLE_EQ(result->table->column(0).NumericAt(0), 200.0);
  EXPECT_EQ(vdt.generation(), 2u);

  {
    std::lock_guard<std::mutex> lock(gate_mu);
    release_stale = true;
  }
  gate_cv.notify_all();

  AwaitQuiescence(mw);
  Middleware::Stats stats = mw.stats();
  // The stale prefetch was cancelled — whether it was still queued or
  // already executing, it was never delivered as a result.
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.queries, 1u);
}

// Statement handles are deduplicated middleware-wide, so two distinct VDTs
// can share one handle. Their generations are unrelated (per-VDT scope):
// evaluating both in one wave must not cancel either, even when one VDT's
// generation counter has drifted far ahead of the other's.
TEST(ConcurrencyTest, SharedTemplateVdtsDoNotCancelEachOther) {
  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(300));
  Middleware mw(&engine, {});
  auto session = mw.CreateSession();

  const char* tmpl = "SELECT COUNT(*) AS c FROM t WHERE v < ${cut}";
  rewrite::VdtOp a(tmpl, {}, session.get());
  rewrite::VdtOp b(tmpl, {}, session.get());

  expr::MapSignalResolver signals;
  // Drift b's generation ahead of a's.
  for (int i = 0; i < 3; ++i) {
    signals.Set("cut", expr::EvalValue::Number(10 + i));
    ASSERT_TRUE(b.Evaluate(nullptr, signals).ok());
  }
  ASSERT_GT(b.generation(), a.generation() + 1);

  // One dataflow wave: both prefetch (a submits first with the lower
  // generation), then both await.
  signals.Set("cut", expr::EvalValue::Number(80));
  a.Prefetch(signals);
  b.Prefetch(signals);
  auto ra = a.Evaluate(nullptr, signals);
  auto rb = b.Evaluate(nullptr, signals);
  ASSERT_TRUE(ra.ok()) << ra.status();
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_DOUBLE_EQ(ra->table->column(0).NumericAt(0), 80.0);
  EXPECT_DOUBLE_EQ(rb->table->column(0).NumericAt(0), 80.0);
  AwaitQuiescence(mw);
  EXPECT_EQ(mw.stats().cancelled, 0u);
}

// Destroying a middleware with queued work drains it: every ticket resolves.
TEST(ConcurrencyTest, ShutdownResolvesOutstandingTickets) {
  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(200));
  std::vector<rewrite::QueryTicketPtr> tickets;
  {
    MiddlewareOptions options;
    options.worker_threads = 2;
    Middleware mw(&engine, options);
    auto session = mw.CreateSession();
    auto handle = session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
    ASSERT_TRUE(handle.ok());
    for (int i = 1; i <= 16; ++i) {
      QueryRequest request;
      request.handle = *handle;
      request.params = {{"cut", expr::EvalValue::Number(10.0 * i)}};
      request.generation = 0;  // independent submissions, no supersession
      tickets.push_back(session->Submit(request));
    }
  }  // ~Middleware drains the pool
  for (const auto& ticket : tickets) {
    EXPECT_TRUE(ticket->done());
    auto response = ticket->Await();
    EXPECT_TRUE(response.ok()) << response.status();
  }
}

// Regression: Submit after the pool has shut down used to enqueue a task no
// worker would ever run, so the corresponding Await blocked forever. The
// pool now rejects the task and the middleware resolves the ticket as
// Status::Cancelled.
TEST(ConcurrencyTest, SubmitAfterShutdownResolvesCancelledInsteadOfHanging) {
  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(100));
  MiddlewareOptions options;
  options.worker_threads = 2;
  options.enable_client_cache = false;  // force the pool path
  Middleware mw(&engine, options);
  auto session = mw.CreateSession();
  auto handle = session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  ASSERT_TRUE(handle.ok());

  mw.Shutdown();

  QueryRequest request;
  request.handle = *handle;
  request.params = {{"cut", expr::EvalValue::Number(10)}};
  auto ticket = session->Submit(request);
  ASSERT_TRUE(ticket->done());  // resolved immediately, no worker involved
  auto response = ticket->Await();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsCancelled()) << response.status();

  AwaitQuiescence(mw);
  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.queries + stats.cancelled + stats.errors, stats.submitted);
}

// Submits racing ~Middleware's drain: every ticket must resolve — executed,
// or cancelled by the shutdown rejection — never hang. (The submitting
// threads are joined before the middleware dies; only the *pool* shutdown
// races the submits, via Shutdown().)
TEST(ConcurrencyTest, SubmitRacingShutdownNeverLeavesTicketUnresolved) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(200));
  MiddlewareOptions options;
  options.worker_threads = 2;
  options.enable_client_cache = false;
  options.enable_server_cache = false;
  Middleware mw(&engine, options);

  std::vector<std::vector<rewrite::QueryTicketPtr>> tickets(kThreads);
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      auto session = mw.CreateSession();
      auto handle = session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
      ASSERT_TRUE(handle.ok());
      ++started;
      for (int i = 0; i < kPerThread; ++i) {
        QueryRequest request;
        request.handle = *handle;
        request.params = {{"cut", expr::EvalValue::Number(
                                      static_cast<double>(tid * 1000 + i))}};
        tickets[tid].push_back(session->Submit(request));
      }
    });
  }
  while (started.load() < kThreads) std::this_thread::yield();
  mw.Shutdown();  // races the submit loops
  for (auto& t : threads) t.join();

  size_t ok = 0, cancelled = 0;
  for (const auto& per_thread : tickets) {
    for (const auto& ticket : per_thread) {
      auto response = ticket->Await();  // regression: used to hang here
      if (response.ok()) {
        ++ok;
      } else {
        ASSERT_TRUE(response.status().IsCancelled()) << response.status();
        ++cancelled;
      }
    }
  }
  EXPECT_EQ(ok + cancelled, static_cast<size_t>(kThreads * kPerThread));
  AwaitQuiescence(mw);
  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.queries + stats.cancelled + stats.errors, stats.submitted);
  EXPECT_EQ(stats.errors, 0u);
}

}  // namespace
}  // namespace runtime
}  // namespace vegaplus
