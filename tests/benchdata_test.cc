#include <gtest/gtest.h>

#include <set>

#include "benchdata/datasets.h"
#include "benchdata/templates.h"
#include "benchdata/workload.h"
#include "plan/enumerator.h"

namespace vegaplus {
namespace benchdata {
namespace {

TEST(DatasetsTest, AllGeneratorsProduceRequestedRows) {
  for (const std::string& name : DatasetNames()) {
    auto ds = MakeDataset(name, 1234, 7);
    ASSERT_TRUE(ds.ok()) << name << ": " << ds.status();
    EXPECT_EQ(ds->table->num_rows(), 1234u) << name;
    EXPECT_GE(ds->quantitative.size(), 3u) << name;
    EXPECT_GE(ds->categorical.size(), 2u) << name;
    EXPECT_GE(ds->temporal.size(), 1u) << name;
    // Every advertised role must exist in the schema with a fitting type.
    for (const auto& f : ds->quantitative) {
      int idx = ds->table->schema().FieldIndex(f);
      ASSERT_GE(idx, 0) << name << "." << f;
      EXPECT_TRUE(data::IsNumericType(ds->table->schema().field(idx).type));
    }
    for (const auto& f : ds->temporal) {
      int idx = ds->table->schema().FieldIndex(f);
      ASSERT_GE(idx, 0);
      EXPECT_EQ(ds->table->schema().field(idx).type, data::DataType::kTimestamp);
    }
  }
}

TEST(DatasetsTest, DeterministicBySeed) {
  auto a = MakeDataset("flights", 500, 9);
  auto b = MakeDataset("flights", 500, 9);
  auto c = MakeDataset("flights", 500, 10);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_TRUE(a->table->Equals(*b->table));
  EXPECT_FALSE(a->table->Equals(*c->table));
}

TEST(DatasetsTest, UnknownNameFails) {
  EXPECT_FALSE(MakeDataset("nope", 10, 1).ok());
}

TEST(DatasetsTest, CategoricalSkewIsZipfian) {
  auto ds = MakeDataset("flights", 20000, 3);
  ASSERT_TRUE(ds.ok());
  data::TableStats stats = data::ComputeTableStats(*ds->table);
  const data::ColumnStats* origin = stats.Find("origin");
  ASSERT_NE(origin, nullptr);
  EXPECT_GE(origin->distinct_count, 10u);
  // Top category should dominate a uniform share by a wide margin.
  const data::Column* col = ds->table->ColumnByName("origin");
  std::map<std::string, size_t> counts;
  for (size_t r = 0; r < col->length(); ++r) ++counts[col->StringAt(r)];
  size_t top = 0;
  for (const auto& [k, v] : counts) top = std::max(top, v);
  EXPECT_GT(top, 20000u / 20 * 3);
}

TEST(TemplatesTest, OperatorAndPlanCounts) {
  // Table-1-style sanity: interactive multi-view templates must enumerate
  // strictly more plans than single-view ones.
  std::map<TemplateId, size_t> plans;
  std::map<TemplateId, size_t> ops;
  for (TemplateId id : AllTemplates()) {
    auto bc = MakeBenchCase(id, "flights", 600, 11);
    ASSERT_TRUE(bc.ok()) << TemplateName(id);
    rewrite::PlanBuilder builder(bc->spec);
    auto e = plan::EnumeratePlans(builder, 1u << 20);
    plans[id] = e.total_space;
    ops[id] = bc->spec.TotalOperators();
    EXPECT_GE(e.total_space, 2u) << TemplateName(id);
  }
  EXPECT_GT(plans[TemplateId::kCrossfilter], plans[TemplateId::kInteractiveHistogram]);
  EXPECT_GT(plans[TemplateId::kOverviewDetail], plans[TemplateId::kLineChart]);
  EXPECT_GT(ops[TemplateId::kCrossfilter], ops[TemplateId::kLineChart]);
  // Paper Table 1 reference points for the simple templates.
  EXPECT_EQ(ops[TemplateId::kLineChart], 2u);
  EXPECT_EQ(plans[TemplateId::kLineChart], 3u);
  EXPECT_EQ(ops[TemplateId::kInteractiveHistogram], 3u);
  EXPECT_EQ(plans[TemplateId::kInteractiveHistogram], 4u);
  EXPECT_EQ(ops[TemplateId::kTrellisStackedBar], 3u);
  EXPECT_EQ(plans[TemplateId::kTrellisStackedBar], 4u);
}

TEST(TemplatesTest, InteractiveTemplatesHaveBoundSignals) {
  for (TemplateId id : AllTemplates()) {
    auto bc = MakeBenchCase(id, "weather", 400, 12);
    ASSERT_TRUE(bc.ok());
    WorkloadGenerator workload(bc->spec, 1);
    EXPECT_EQ(workload.has_interactions(), IsInteractive(id)) << TemplateName(id);
  }
}

TEST(TemplatesTest, FieldChoicesVaryWithSeed) {
  std::set<std::string> exprs;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    auto ds = MakeDataset("flights", 100, 1);
    ASSERT_TRUE(ds.ok());
    Rng rng(seed);
    auto spec = BuildTemplate(TemplateId::kInteractiveHistogram, *ds, &rng);
    ASSERT_TRUE(spec.ok());
    exprs.insert(spec->signals[0].init.AsString());  // initial field choice
  }
  EXPECT_GT(exprs.size(), 1u);
}

TEST(WorkloadTest, GeneratesValidUpdates) {
  auto bc = MakeBenchCase(TemplateId::kOverviewDetail, "stocks", 800, 14);
  ASSERT_TRUE(bc.ok());
  WorkloadGenerator workload(bc->spec, 15);
  std::set<std::string> signals_touched;
  for (int i = 0; i < 50; ++i) {
    Interaction interaction = workload.Next();
    ASSERT_EQ(interaction.updates.size(), 1u);
    const auto& [name, value] = interaction.updates[0];
    signals_touched.insert(name);
    const spec::SignalSpec* sig = bc->spec.FindSignal(name);
    ASSERT_NE(sig, nullptr);
    switch (sig->bind) {
      case spec::BindKind::kRange:
        EXPECT_GE(value.AsDouble(), sig->bind_min);
        EXPECT_LE(value.AsDouble(), sig->bind_max + sig->bind_step);
        break;
      case spec::BindKind::kInterval: {
        ASSERT_TRUE(value.is_array());
        double lo = value.array()[0].AsDouble();
        double hi = value.array()[1].AsDouble();
        EXPECT_LE(lo, hi);
        EXPECT_GE(lo, sig->bind_min - 1e-9);
        EXPECT_LE(hi, sig->bind_max + 1e-9);
        break;
      }
      case spec::BindKind::kPoint:
        EXPECT_TRUE(value.is_null() || value.scalar().is_string());
        break;
      default:
        break;
    }
  }
  // Both bound signals get exercised.
  EXPECT_GE(signals_touched.size(), 2u);
}

TEST(WorkloadTest, SessionLengthAndDeterminism) {
  auto bc = MakeBenchCase(TemplateId::kCrossfilter, "movies", 500, 16);
  ASSERT_TRUE(bc.ok());
  WorkloadGenerator w1(bc->spec, 42), w2(bc->spec, 42);
  auto s1 = w1.Session(20);
  auto s2 = w2.Session(20);
  ASSERT_EQ(s1.size(), 20u);
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].description, s2[i].description);
  }
}

TEST(WorkloadTest, StaticTemplateYieldsEmptyInteractions) {
  auto bc = MakeBenchCase(TemplateId::kLineChart, "weather", 300, 17);
  ASSERT_TRUE(bc.ok());
  WorkloadGenerator workload(bc->spec, 1);
  EXPECT_FALSE(workload.has_interactions());
  EXPECT_TRUE(workload.Next().updates.empty());
}

}  // namespace
}  // namespace benchdata
}  // namespace vegaplus
