// Differential suite for dictionary-encoded string columns: the same data
// built dictionary-encoded (the default) and flat (kill switch off) must
// produce bit-identical results through every engine path — the expression
// corpus, string-heavy SQL (group-by / equality filters / ORDER BY /
// HAVING / windows), transforms, and IPC round trips — including
// morsel-parallel runs at 1/2/4/8 threads. Registered under both the
// `differential` and `concurrency` ctest labels so the TSan CI job
// exercises the parallel paths over shared dictionaries.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"
#include "data/ipc.h"
#include "data/table.h"
#include "expr/batch_eval.h"
#include "expr/compiler.h"
#include "expr/parser.h"
#include "expr_corpus_test_util.h"
#include "sql/engine.h"
#include "transforms/transforms.h"

namespace vegaplus {
namespace {

using data::TablePtr;
using data::Value;
using testutil::SameCell;

/// Pin the dictionary-encoding switch for one scope and restore after.
class DictSwitchGuard {
 public:
  explicit DictSwitchGuard(bool enabled)
      : saved_(data::DictionaryEncodingEnabled()) {
    data::SetDictionaryEncodingEnabled(enabled);
  }
  ~DictSwitchGuard() { data::SetDictionaryEncodingEnabled(saved_); }

 private:
  bool saved_;
};

/// Pin the morsel configuration for one test and restore defaults after
/// (mirrors morsel_diff_test.cc).
class MorselConfigGuard {
 public:
  MorselConfigGuard(size_t morsel_rows, size_t threads)
      : saved_rows_(parallel::MorselRows()),
        saved_enabled_(parallel::MorselParallelEnabled()) {
    parallel::SetMorselRows(morsel_rows);
    parallel::SetMorselParallelism(threads);
    parallel::SetMorselParallelEnabled(true);
  }
  ~MorselConfigGuard() {
    parallel::SetMorselParallelEnabled(saved_enabled_);
    parallel::SetMorselParallelism(0);  // 0 = hardware default
    parallel::SetMorselRows(saved_rows_);
  }

 private:
  size_t saved_rows_;
  bool saved_enabled_;
};

/// The same logical table in both physical forms.
struct TwinTables {
  TablePtr dict;
  TablePtr flat;
};

TwinTables MakeTwins(uint64_t seed, size_t rows) {
  TwinTables twins;
  {
    DictSwitchGuard on(true);
    twins.dict = testutil::MakeRandomExprTable(seed, rows);
  }
  {
    DictSwitchGuard off(false);
    twins.flat = testutil::MakeRandomExprTable(seed, rows);
  }
  return twins;
}

TEST(DictDiffTest, TwinsShareValuesButNotRepresentation) {
  TwinTables twins = MakeTwins(11, 500);
  for (const char* name : {"ss", "sc", "sh"}) {
    const data::Column* d = twins.dict->ColumnByName(name);
    const data::Column* f = twins.flat->ColumnByName(name);
    ASSERT_NE(d, nullptr);
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(d->dict_encoded()) << name;
    EXPECT_FALSE(f->dict_encoded()) << name;
  }
  EXPECT_TRUE(twins.dict->Equals(*twins.flat));
  // Dictionary columns hold each distinct string exactly once.
  const data::Column* sc = twins.dict->ColumnByName("sc");
  EXPECT_LE(sc->dict().values.size(), 12u);
}

TEST(DictDiffTest, EncodeDecodeRoundTripsPreserveCells) {
  TwinTables twins = MakeTwins(13, 400);
  const data::Column* d = twins.dict->ColumnByName("sc");
  const data::Column* f = twins.flat->ColumnByName("sc");
  data::Column decoded = d->DecodeFlat();
  data::Column encoded = f->EncodeDictionary();
  EXPECT_FALSE(decoded.dict_encoded());
  EXPECT_TRUE(encoded.dict_encoded());
  ASSERT_EQ(decoded.length(), d->length());
  ASSERT_EQ(encoded.length(), f->length());
  for (size_t r = 0; r < d->length(); ++r) {
    EXPECT_TRUE(SameCell(d->ValueAt(r), decoded.ValueAt(r))) << r;
    EXPECT_TRUE(SameCell(f->ValueAt(r), encoded.ValueAt(r))) << r;
  }
}

// Appending a new unique string to a column whose dictionary is shared (via
// Take) clones the dictionary first: the sibling's view never changes.
TEST(DictDiffTest, SharedDictionaryCopyOnWrite) {
  DictSwitchGuard on(true);
  data::Column col(data::DataType::kString);
  col.AppendString("a");
  col.AppendString("b");
  data::Column taken = col.Take({1, 0});
  ASSERT_TRUE(taken.dict_encoded());
  EXPECT_EQ(col.dict_shared().get(), taken.dict_shared().get());

  col.AppendString("c");  // new unique string -> dictionary clones
  EXPECT_NE(col.dict_shared().get(), taken.dict_shared().get());
  EXPECT_EQ(taken.dict().values.size(), 2u);
  EXPECT_EQ(col.dict().values.size(), 3u);
  EXPECT_EQ(taken.StringAt(0), "b");
  EXPECT_EQ(taken.StringAt(1), "a");
  EXPECT_EQ(col.StringAt(2), "c");

  // Appending an existing string shares the (possibly cloned) dictionary.
  data::Column sliced = col.Slice(0, 2);
  col.AppendString("a");
  EXPECT_EQ(col.length(), 4u);
  EXPECT_EQ(col.StringAt(3), "a");
  EXPECT_EQ(sliced.StringAt(0), "a");
}

TEST(DictDiffTest, CorpusCellsMatchFlat) {
  TwinTables twins = MakeTwins(7, 2000);
  size_t compiled = 0;
  for (const std::string& text : testutil::BuildExprCorpus()) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    auto program = expr::Compiler::Compile(*parsed, twins.dict->schema());
    if (!program) continue;  // scalar-only: no vector path to compare
    ++compiled;
    expr::Vec dict_v = expr::BatchEvaluator(*twins.dict).Run(*program);
    expr::Vec flat_v = expr::BatchEvaluator(*twins.flat).Run(*program);
    ASSERT_EQ(dict_v.kind, flat_v.kind) << text;
    ASSERT_EQ(dict_v.is_const, flat_v.is_const) << text;
    for (size_t r = 0; r < twins.dict->num_rows(); ++r) {
      ASSERT_TRUE(SameCell(dict_v.CellValue(r), flat_v.CellValue(r)))
          << text << " row " << r
          << ": dict=" << dict_v.CellValue(r).ToString()
          << " flat=" << flat_v.CellValue(r).ToString();
    }
  }
  EXPECT_GT(compiled, 1000u);
}

TEST(DictDiffTest, FilterSelectionsMatchFlat) {
  TwinTables twins = MakeTwins(23, 5000);
  const char* predicates[] = {
      "datum.sc == 'cat_3'",                 // fused code compare
      "datum.sc != 'cat_3'",                 // negated, nulls included
      "datum.sc == 'not_in_dict'",           // absent constant: empty
      "datum.sc != 'not_in_dict'",           // absent constant: everything
      "datum.sh == 'id_1'",                  // high-cardinality column
      "datum.sc == datum.ss",                // two distinct dictionaries
      "datum.sc < 'cat_5'",                  // ordered compare, general path
      "datum.dd > 0 && datum.sc == 'cat_1'",  // fused num+str conjunction
      "datum.sc == 'cat_1' && datum.ii < 5 && datum.dd > -10",
      "datum.sc",                            // bare truthiness
  };
  for (const char* text : predicates) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto program = expr::Compiler::Compile(*parsed, twins.dict->schema());
    ASSERT_TRUE(program.has_value()) << text;
    std::vector<int32_t> dict_sel, flat_sel;
    expr::BatchEvaluator(*twins.dict).RunFilter(*program, &dict_sel);
    expr::BatchEvaluator(*twins.flat).RunFilter(*program, &flat_sel);
    EXPECT_EQ(dict_sel, flat_sel) << text;
    // Morsel-parallel over shared dictionaries matches too.
    MorselConfigGuard guard(/*morsel_rows=*/311, /*threads=*/4);
    std::vector<int32_t> dict_morsel;
    expr::RunFilterMorselParallel(*twins.dict, *program, &dict_morsel);
    EXPECT_EQ(dict_morsel, flat_sel) << text << " (morsel)";
  }
}

// Conjunction fusion itself (satellite): the fused path and the kill-switch
// register path select identical rows for mixed numeric/string AND-chains.
TEST(DictDiffTest, FusedConjunctionsMatchRegisterPath) {
  TwinTables twins = MakeTwins(41, 4000);
  const char* predicates[] = {
      "datum.dd > -20 && datum.dd < 20",
      "datum.dd > -20 && datum.ii <= 5 && datum.dd != 0",
      "3 < datum.ii && datum.sc == 'cat_2'",
      "datum.sc != 'cat_0' && datum.ss == 'mid' && datum.ii >= -10",
  };
  for (const char* text : predicates) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto program = expr::Compiler::Compile(*parsed, twins.dict->schema());
    ASSERT_TRUE(program.has_value()) << text;
    ASSERT_GE(program->fused_preds.size(), 2u) << text;
    // Strip the fused plan to force the general register path.
    expr::Program general = *program;
    general.fused_preds.clear();
    for (const TablePtr& table : {twins.dict, twins.flat}) {
      std::vector<int32_t> fused, registers;
      expr::BatchEvaluator(*table).RunFilter(*program, &fused);
      expr::BatchEvaluator(*table).RunFilter(general, &registers);
      EXPECT_EQ(fused, registers) << text;
    }
  }
}

class DictQueryDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    twins_ = MakeTwins(31, 30000);
    dict_engine_.RegisterTable("t", twins_.dict);
    flat_engine_.RegisterTable("t", twins_.flat);
  }

  data::TablePtr Run(sql::Engine& engine, const char* sql) {
    auto result = engine.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? result->table : nullptr;
  }

  void ExpectSame(const char* sql) {
    data::TablePtr dict_result = Run(dict_engine_, sql);
    data::TablePtr flat_result = Run(flat_engine_, sql);
    ASSERT_NE(dict_result, nullptr) << sql;
    ASSERT_NE(flat_result, nullptr) << sql;
    ASSERT_TRUE(dict_result->Equals(*flat_result))
        << sql << "\ndict:\n" << dict_result->ToString(8)
        << "flat:\n" << flat_result->ToString(8);
  }

  TwinTables twins_;
  sql::Engine dict_engine_;
  sql::Engine flat_engine_;
};

const char* kStringQueries[] = {
    "SELECT sc, COUNT(*) AS n, SUM(dd) AS s FROM t GROUP BY sc ORDER BY sc",
    "SELECT sc, sh, COUNT(*) AS n FROM t GROUP BY sc, sh ORDER BY n DESC, sc, "
    "sh LIMIT 200",
    "SELECT * FROM t WHERE sc = 'cat_3'",
    "SELECT COUNT(*) AS n FROM t WHERE sc != 'cat_3' AND dd > 0",
    "SELECT sc, dd FROM t WHERE dd IS NOT NULL ORDER BY sc, dd LIMIT 100",
    "SELECT sh FROM t ORDER BY sh DESC LIMIT 50",
    "SELECT sc, MIN(ss) AS lo, MAX(sh) AS hi FROM t GROUP BY sc ORDER BY sc",
    "SELECT sc, COUNT(*) AS n FROM t GROUP BY sc HAVING n > 100 ORDER BY sc",
    "SELECT UPPER(sc) AS u, COUNT(*) AS n FROM t GROUP BY UPPER(sc) ORDER BY u",
    "SELECT ii, SUM(dd) OVER (PARTITION BY sc ORDER BY ii) AS run FROM t "
    "ORDER BY ii, run LIMIT 500",
    "SELECT LOWER(sh) AS k, COUNT(*) AS n FROM t GROUP BY LOWER(sh) "
    "ORDER BY n DESC, k LIMIT 100",
};

TEST_F(DictQueryDiffTest, StringQueriesMatchFlat) {
  for (const char* sql : kStringQueries) ExpectSame(sql);
}

// The scalar interpreter reads dictionary columns through the same StringAt
// surface: with vectorization off the two forms still agree.
TEST_F(DictQueryDiffTest, ScalarPathStringQueriesMatchFlat) {
  struct VectorizedOffGuard {
    VectorizedOffGuard() { expr::SetVectorizedEnabled(false); }
    ~VectorizedOffGuard() { expr::SetVectorizedEnabled(true); }
  };
  VectorizedOffGuard vectorized_off;
  for (const char* sql : kStringQueries) ExpectSame(sql);
}

// Dictionary vs flat execution is invariant across morsel parallelism
// levels: dictionaries are shared read-only across workers and group ids
// come from the deterministic chunk merge.
TEST_F(DictQueryDiffTest, ResultsInvariantAcrossThreadsAndEncodings) {
  const char* sql =
      "SELECT sc, COUNT(*) AS n, SUM(dd) AS s, MIN(sh) AS lo FROM t "
      "WHERE sc != 'cat_0' GROUP BY sc ORDER BY sc";
  data::TablePtr reference;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    MorselConfigGuard guard(/*morsel_rows=*/1024, threads);
    for (bool dict : {true, false}) {
      data::TablePtr result = Run(dict ? dict_engine_ : flat_engine_, sql);
      ASSERT_NE(result, nullptr) << threads << " threads dict=" << dict;
      if (!reference) {
        reference = result;
      } else {
        ASSERT_TRUE(result->Equals(*reference))
            << threads << " threads dict=" << dict;
      }
    }
  }
}

TEST_F(DictQueryDiffTest, TransformsMatchFlat) {
  expr::MapSignalResolver signals;
  auto run_both = [&](dataflow::Operator& op) {
    auto dict_result = op.Evaluate(twins_.dict, signals);
    auto flat_result = op.Evaluate(twins_.flat, signals);
    ASSERT_TRUE(dict_result.ok()) << dict_result.status();
    ASSERT_TRUE(flat_result.ok()) << flat_result.status();
    ASSERT_NE(dict_result->table, nullptr);
    ASSERT_NE(flat_result->table, nullptr);
    ASSERT_TRUE(dict_result->table->Equals(*flat_result->table))
        << "dict:\n" << dict_result->table->ToString(8)
        << "flat:\n" << flat_result->table->ToString(8);
  };

  {
    auto pred = expr::ParseExpression("datum.sc == 'cat_2' || datum.dd > 40");
    ASSERT_TRUE(pred.ok());
    transforms::FilterOp filter(*pred);
    run_both(filter);
  }
  {
    using transforms::FieldRef;
    transforms::AggregateOp::Params params;
    params.groupby = {FieldRef::Fixed("sc"), FieldRef::Fixed("bb")};
    params.fields = {FieldRef::Fixed("dd"), FieldRef::Fixed("sh"),
                     FieldRef::Fixed("ii")};
    params.ops = {transforms::VegaAggOp::kMean, transforms::VegaAggOp::kMax,
                  transforms::VegaAggOp::kSum};
    transforms::AggregateOp agg(params);
    run_both(agg);
  }
  {
    using transforms::FieldRef;
    std::vector<transforms::CollectOp::SortKey> keys;
    keys.push_back({FieldRef::Fixed("sc"), false});
    keys.push_back({FieldRef::Fixed("sh"), true});
    transforms::CollectOp collect(std::move(keys));
    run_both(collect);
  }
  {
    auto formula = expr::ParseExpression("upper(datum.sc) + '_' + datum.ss");
    ASSERT_TRUE(formula.ok());
    transforms::FormulaOp op(*formula, "k");
    run_both(op);
  }
}

// Dictionary IPC: both forms round-trip losslessly, decode to equal tables,
// and the dictionary payload is smaller for low-cardinality data.
TEST_F(DictQueryDiffTest, BinaryIpcRoundTripsAndShrinks) {
  const std::string dict_bytes = data::SerializeBinary(*twins_.dict);
  const std::string flat_bytes = data::SerializeBinary(*twins_.flat);
  auto dict_back = data::DeserializeBinary(dict_bytes);
  auto flat_back = data::DeserializeBinary(flat_bytes);
  ASSERT_TRUE(dict_back.ok()) << dict_back.status();
  ASSERT_TRUE(flat_back.ok()) << flat_back.status();
  EXPECT_TRUE((*dict_back)->Equals(*twins_.dict));
  EXPECT_TRUE((*flat_back)->Equals(*twins_.flat));
  EXPECT_TRUE((*dict_back)->Equals(**flat_back));
  // The payload preserves the physical form.
  EXPECT_TRUE((*dict_back)->ColumnByName("sc")->dict_encoded());
  EXPECT_FALSE((*flat_back)->ColumnByName("sc")->dict_encoded());
  // sc (12 distinct over 30k rows) shrinks; the whole-table payload does
  // too, despite the mostly-unique sh column paying 4 bytes/row overhead.
  const data::Column* sc_dict = twins_.dict->ColumnByName("sc");
  data::Column sc_flat = sc_dict->DecodeFlat();
  data::Table one_dict(data::Schema({{"sc", data::DataType::kString}}), {*sc_dict});
  data::Table one_flat(data::Schema({{"sc", data::DataType::kString}}), {sc_flat});
  EXPECT_LT(data::SerializeBinary(one_dict).size(),
            data::SerializeBinary(one_flat).size());

  // A small slice still shares sh's ~30k-entry dictionary; the payload must
  // carry only the referenced entries, not the base table's cardinality.
  data::TablePtr head = twins_.dict->Slice(0, 20);
  const std::string head_bytes = data::SerializeBinary(*head);
  EXPECT_LT(head_bytes.size(), 10000u);
  auto head_back = data::DeserializeBinary(head_bytes);
  ASSERT_TRUE(head_back.ok()) << head_back.status();
  EXPECT_TRUE((*head_back)->Equals(*head));
}

}  // namespace
}  // namespace vegaplus
