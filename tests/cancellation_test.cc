// Cooperative cancellation tests: deadline propagation into morsel
// execution (a mid-scan abort must stop a 4M-row shard scan at a chunk
// checkpoint, not after it), storage-layer fault injection through the
// page-in hook, single-flight leader cancellation (middleware and tile
// store — a dead leader must not poison followers), hedged requests racing
// injected stalls, bit-identity with the cancellation layer disabled, and
// an 8-thread cancel storm. Registered under the `chaos` ctest label (CI
// runs it under ASan/UBSan) and `concurrency` (TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "data/ipc.h"
#include "data/table.h"
#include "runtime/middleware.h"
#include "sql/engine.h"
#include "storage/reader.h"
#include "storage/table_shard.h"
#include "tiles/tile_store.h"
#include "transforms/binning.h"

namespace vegaplus {
namespace runtime {
namespace {

using data::TablePtr;
using rewrite::QueryRequest;
using rewrite::QueryResponse;

constexpr size_t kShardRows = 4'000'000;
constexpr size_t kChunkRows = 65'536;  // ~61 chunks

std::string Bytes(const data::Table& table) { return data::SerializeBinary(table); }

data::TablePtr CountingTable(int rows) {
  data::Column v(data::DataType::kFloat64);
  for (int i = 0; i < rows; ++i) v.AppendDouble(static_cast<double>(i));
  std::vector<data::Column> cols;
  cols.push_back(std::move(v));
  return std::make_shared<data::Table>(
      data::Schema({{"v", data::DataType::kFloat64}}), std::move(cols));
}

// Spin until the middleware has accounted for every submitted request.
void AwaitQuiescence(const Middleware& mw) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    Middleware::Stats s = mw.stats();
    if (s.queries + s.cancelled + s.errors >= s.submitted) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "middleware did not quiesce";
}

// Bridge storage page-ins into a FaultInjector for the lifetime of one test.
// The hook does its own stalling (storage cannot sleep on our behalf), and
// the guard always unhooks — a leaked hook would fault unrelated suites.
class PageInFaultGuard {
 public:
  explicit PageInFaultGuard(FaultInjector* injector) {
    storage::SetPageInFaultHook(
        [injector](const std::string& path, size_t chunk_index) -> Status {
          FaultDecision fate = injector->OnStoragePageIn(path, chunk_index);
          if (fate.stall_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(fate.stall_ms));
          }
          if (fate.fail) return fate.status;
          return Status();
        });
  }
  ~PageInFaultGuard() { storage::SetPageInFaultHook(nullptr); }
};

// One 4M-row shard shared by the whole suite (written once); every test
// opens its OWN Reader so chunk-cache state never leaks between tests.
class CancellationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    path_ = new std::string(::testing::TempDir() + "vps_cancellation_4m.vps");
    data::Column v(data::DataType::kFloat64);
    for (size_t i = 0; i < kShardRows; ++i) {
      v.AppendDouble(static_cast<double>(i));
    }
    std::vector<data::Column> cols;
    cols.push_back(std::move(v));
    data::Table table(data::Schema({{"v", data::DataType::kFloat64}}),
                      std::move(cols));
    storage::WriteOptions opts;
    opts.chunk_rows = kChunkRows;
    ASSERT_TRUE(storage::TableShard::Write(*path_, table, opts).ok());
  }

  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    path_ = nullptr;
  }

  // Fresh reader over the shared shard: cold chunk cache.
  std::shared_ptr<storage::Reader> OpenShard() {
    auto reader = storage::Reader::Open(*path_);
    EXPECT_TRUE(reader.ok()) << reader.status();
    return reader.ok() ? *reader : nullptr;
  }

  static std::string* path_;
};

std::string* CancellationTest::path_ = nullptr;

constexpr char kCutTemplate[] = "SELECT COUNT(*) AS c FROM t WHERE v < ${cut}";

// The tentpole acceptance scenario: a deadline firing mid-scan must abort a
// running 4M-row shard scan at a chunk checkpoint — rows_scanned strictly
// between zero and the full scan — resolve the ticket kDeadlineExceeded,
// count one mid-flight cancellation, and leave the worker pool serving.
TEST_F(CancellationTest, DeadlineAbortsMidScanAtMorselCheckpoint) {
  sql::Engine engine;
  auto reader = OpenShard();
  ASSERT_NE(reader, nullptr);
  ASSERT_TRUE(engine.RegisterShardTable("t", reader).ok());

  MiddlewareOptions options;
  options.fault_injection = FaultInjectorOptions{};
  // 2ms per page-in: the full scan needs >120ms of stall, so a 40ms
  // deadline is guaranteed to fire with the scan genuinely in progress.
  options.fault_injection->rules.push_back(
      FaultRule{"storage:", 0, false, 0, /*stall_ms=*/2.0});
  Middleware mw(&engine, options);
  PageInFaultGuard hook(mw.fault_injector());

  const size_t scanned_before = engine.lifetime_stats().rows_scanned;
  auto handle = mw.Prepare(kCutTemplate);
  ASSERT_TRUE(handle.ok()) << handle.status();
  QueryRequest request;
  request.handle = *handle;
  request.params = {{"cut", expr::EvalValue::Number(5'000'000)}};
  request.deadline_ms = 40;
  auto response = mw.Submit(request)->Await();
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded()) << response.status();

  // The abort happened at a chunk checkpoint: some chunks were scanned (the
  // deadline fired mid-flight, not before execution), but strictly fewer
  // than the whole shard (the scan did not run to completion first).
  const size_t scanned = engine.lifetime_stats().rows_scanned - scanned_before;
  EXPECT_GT(scanned, 0u);
  EXPECT_LT(scanned, kShardRows);

  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.cancelled_mid_flight, 1u);
  EXPECT_EQ(stats.deadline_exceeded, 1u);

  // The worker was reclaimed, not wedged: the same pool serves fresh work.
  mw.fault_injector()->ClearRules();
  QueryRequest clean;
  clean.handle = *handle;
  clean.params = {{"cut", expr::EvalValue::Number(1'000)}};
  auto after = mw.Submit(clean)->Await();
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->table->column(0).NumericAt(0), 1000.0);
  EXPECT_EQ(after->source, QueryResponse::Source::kDbms);
}

// Storage-layer chaos surfaces as Status through the ordinary retry
// machinery: a page-in fault on one chunk (deterministic per (seed, key,
// attempt)) fails the first execution, and the retry — which re-pages only
// the faulted chunk, the rest are cache-resident — succeeds bit-identically.
TEST_F(CancellationTest, StoragePageInFaultRetriesDeterministically) {
  sql::Engine engine;
  auto reader = OpenShard();
  ASSERT_NE(reader, nullptr);
  ASSERT_TRUE(engine.RegisterShardTable("t", reader).ok());

  MiddlewareOptions options;
  options.fault_injection = FaultInjectorOptions{};
  // Chunk 7 of this shard fails exactly once (kUnavailable: transient).
  options.fault_injection->rules.push_back(FaultRule{"#7", /*fail_times=*/1});
  options.retry.initial_backoff_ms = 0.1;
  Middleware mw(&engine, options);
  PageInFaultGuard hook(mw.fault_injector());

  auto got = mw.Execute("SELECT COUNT(*) AS c FROM t WHERE v < 1000000");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->table->column(0).NumericAt(0), 1'000'000.0);

  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.retries, 1u);  // exactly the injected chunk fault
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(mw.fault_injector()->injected_failures(), 1u);
}

// Single-flight under cancellation: the leader of a collapsed duplicate
// pair is cancelled mid-execution; the follower — parked with a live
// deadline — must NOT inherit Status::Cancelled. It claims the slot and
// completes with the fresh answer.
TEST_F(CancellationTest, CancelledLeaderDoesNotPoisonFollowers) {
  sql::Engine engine;
  auto reader = OpenShard();
  ASSERT_NE(reader, nullptr);
  ASSERT_TRUE(engine.RegisterShardTable("t", reader).ok());

  std::atomic<int> executions_started{0};
  MiddlewareOptions options;
  options.worker_threads = 2;
  options.fault_injection = FaultInjectorOptions{};
  // 1ms per page-in: the leader's scan is slow enough to be cancelled while
  // genuinely running.
  options.fault_injection->rules.push_back(
      FaultRule{"storage:", 0, false, 0, /*stall_ms=*/1.0});
  options.before_dbms_execute = [&](const std::string&) {
    ++executions_started;
  };
  Middleware mw(&engine, options);
  PageInFaultGuard hook(mw.fault_injector());

  auto leader_session = mw.CreateSession();
  auto follower_session = mw.CreateSession();
  auto leader_handle = leader_session->Prepare(kCutTemplate);
  auto follower_handle = follower_session->Prepare(kCutTemplate);
  ASSERT_TRUE(leader_handle.ok());
  ASSERT_TRUE(follower_handle.ok());

  QueryRequest request;
  request.handle = *leader_handle;
  request.params = {{"cut", expr::EvalValue::Number(3'000'000)}};
  auto leader = leader_session->Submit(request);

  // The leader holds the single-flight slot once its execution has started
  // (before_dbms_execute fires after EnterInFlight).
  while (executions_started.load() < 1) std::this_thread::yield();

  QueryRequest dup;
  dup.handle = *follower_handle;
  dup.params = request.params;  // same statement, same params: same key
  dup.deadline_ms = 30'000;     // live deadline, nowhere near expiry
  auto follower = follower_session->Submit(dup);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));  // let it park

  ASSERT_TRUE(leader->Cancel());
  auto leader_result = leader->Await();
  ASSERT_FALSE(leader_result.ok());
  EXPECT_TRUE(leader_result.status().IsCancelled()) << leader_result.status();

  auto follower_result = follower->Await();
  ASSERT_TRUE(follower_result.ok()) << follower_result.status();
  EXPECT_FALSE(follower_result->degraded);
  EXPECT_EQ(follower_result->table->column(0).NumericAt(0), 3'000'000.0);

  Middleware::Stats stats = mw.stats();
  EXPECT_GE(stats.cancelled_mid_flight, 1u);  // the leader died mid-engine
  EXPECT_EQ(stats.queries, 1u);               // the follower's completion
}

// Tile-store single-flight: a first-touch build aborted by a fired token
// must release the building_ slot without caching anything — the next
// requester rebuilds and serves, instead of inheriting a poisoned entry.
TEST_F(CancellationTest, CancelledTileBuildLeaderLeavesSlotClean) {
  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(500));
  tiles::TileStore store(&engine, {});

  transforms::Binning b = transforms::ComputeBinning(0, 499, 10);
  const std::string bin0 = std::to_string(b.start) + " + FLOOR((v - " +
                           std::to_string(b.start) + ") / " +
                           std::to_string(b.step) + ") * " +
                           std::to_string(b.step);
  const std::string sql = "SELECT " + bin0 + " AS bin0, (" + bin0 + ") + " +
                          std::to_string(b.step) +
                          " AS bin1, COUNT(*) AS c FROM t GROUP BY " + bin0 +
                          ", (" + bin0 + ") + " + std::to_string(b.step);
  auto stmt = sql::ParseSql(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status();

  common::CancelToken fired;
  fired.Cancel();
  EXPECT_FALSE(store.TryAnswer(**stmt, &fired).has_value());
  tiles::TileStoreStats after_abort = store.stats();
  EXPECT_EQ(after_abort.builds_aborted, 1u);
  EXPECT_EQ(after_abort.builds, 0u);  // nothing cached, no negative entry

  // The slot is free: the next requester builds (no build_conflict) and the
  // tree answers — bit-identical to honest execution.
  auto answer = store.TryAnswer(**stmt, nullptr);
  ASSERT_TRUE(answer.has_value());
  tiles::TileStoreStats after_build = store.stats();
  EXPECT_EQ(after_build.builds, 1u);
  EXPECT_EQ(after_build.build_conflicts, 0u);
  EXPECT_EQ(after_build.hits, 1u);

  auto want = engine.Query(sql);
  ASSERT_TRUE(want.ok()) << want.status();
  EXPECT_EQ(Bytes(*answer->table), Bytes(*want->table));
}

// Hedged requests: the primary draws an injected 400ms backend stall; past
// the 5ms hedge threshold a duplicate attempt runs clean (its injector key
// is opaque, so the stall rule does not match it) and its result is
// delivered long before the stall would have ended. The loser is abandoned
// through its child token.
TEST_F(CancellationTest, HedgeBeatsInjectedStall) {
  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(500));

  MiddlewareOptions options;
  options.hedge.enabled = true;
  options.hedge.fixed_threshold_ms = 5;
  options.fault_injection = FaultInjectorOptions{};
  // Matches the primary's cache key (canonical SQL + "\x1f<param>=<literal>"
  // segments) but not the hedge's opaque "hedge:<hex digest>#1" key.
  options.fault_injection->rules.push_back(
      FaultRule{"cut=", 0, false, 0, /*stall_ms=*/400.0});
  Middleware mw(&engine, options);

  auto handle = mw.Prepare(kCutTemplate);
  ASSERT_TRUE(handle.ok());
  QueryRequest request;
  request.handle = *handle;
  request.params = {{"cut", expr::EvalValue::Number(123)}};
  const auto t0 = std::chrono::steady_clock::now();
  auto response = mw.Submit(request)->Await();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->table->column(0).NumericAt(0), 123.0);
  EXPECT_EQ(response->source, QueryResponse::Source::kDbms);
  EXPECT_FALSE(response->degraded);

  // The hedge's wall-clock win: nowhere near the 400ms stall. (Generous
  // bound — the point is ~10ms vs 400ms, not exact timing.)
  EXPECT_LT(elapsed_ms, 300.0);
  // And its simulated latency is charged on the hedge path: threshold plus
  // normal compute, not the injected stall.
  EXPECT_LT(response->latency_millis, 400.0);

  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.hedged_requests, 1u);
  EXPECT_EQ(stats.hedge_wins, 1u);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.errors, 0u);
}

// Kill-switch bit-identity: with cooperative_cancel off — and with it on
// but no token ever firing — results are byte-for-byte identical across a
// corpus exercising scan, filter, aggregation, grouping, and ordering on
// the 4M-row shard.
TEST_F(CancellationTest, BitIdenticalWithCooperativeCancelOff) {
  const char* corpus[] = {
      "SELECT COUNT(*) AS c FROM t WHERE v < 1000000",
      "SELECT SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi FROM t",
      "SELECT v FROM t WHERE v >= 3999990 ORDER BY v DESC LIMIT 5",
      "SELECT FLOOR(v / 1000000) AS g, COUNT(*) AS n, AVG(v) AS a FROM t "
      "GROUP BY FLOOR(v / 1000000) ORDER BY g",
  };

  sql::Engine on_engine;
  sql::Engine off_engine;
  auto on_reader = OpenShard();
  auto off_reader = OpenShard();
  ASSERT_NE(on_reader, nullptr);
  ASSERT_NE(off_reader, nullptr);
  ASSERT_TRUE(on_engine.RegisterShardTable("t", on_reader).ok());
  ASSERT_TRUE(off_engine.RegisterShardTable("t", off_reader).ok());

  Middleware on_mw(&on_engine, {});  // cooperative_cancel defaults on
  MiddlewareOptions off_options;
  off_options.engine_config = EngineConfig::Current();
  off_options.engine_config->cooperative_cancel = false;  // no tokens at all
  Middleware off_mw(&off_engine, off_options);

  for (const char* sql : corpus) {
    auto with = on_mw.Execute(sql);
    auto without = off_mw.Execute(sql);
    ASSERT_TRUE(with.ok()) << sql << ": " << with.status();
    ASSERT_TRUE(without.ok()) << sql << ": " << without.status();
    EXPECT_EQ(Bytes(*with->table), Bytes(*without->table)) << sql;

    // Engine-direct sweep: a live token with a far-future deadline (polled
    // at every checkpoint, never firing) against no context at all.
    common::QueryContext ctx;
    ctx.cancel = std::make_shared<common::CancelToken>(
        std::chrono::steady_clock::now() + std::chrono::hours(1));
    auto tokened = on_engine.Query(sql, &ctx);
    auto plain = on_engine.Query(sql);
    ASSERT_TRUE(tokened.ok()) << sql << ": " << tokened.status();
    ASSERT_TRUE(plain.ok()) << sql << ": " << plain.status();
    EXPECT_EQ(Bytes(*tokened->table), Bytes(*plain->table)) << sql;
  }
  EXPECT_EQ(on_mw.stats().cancelled_mid_flight, 0u);
  EXPECT_EQ(off_mw.stats().cancelled_mid_flight, 0u);
}

// 8-thread cancel storm: generations superseding in-flight work, explicit
// ticket cancels, and short deadlines, all at once. Every ticket must
// resolve with an expected code, the fleet stats must add up at
// quiescence, and the pool must still serve fresh work afterwards.
// (TSan-clean via the `concurrency` label.)
TEST_F(CancellationTest, CancelStormEightThreadsStaysCoherent) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 25;

  sql::Engine engine;
  engine.RegisterTable("t", CountingTable(20'000));
  Middleware mw(&engine, {});

  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      auto session = mw.CreateSession();
      auto handle = session->Prepare(kCutTemplate);
      if (!handle.ok()) {
        ++unexpected;
        return;
      }
      std::vector<rewrite::QueryTicketPtr> tickets;
      uint64_t generation = 0;
      for (int i = 0; i < kIterations; ++i) {
        QueryRequest request;
        request.handle = *handle;
        request.params = {
            {"cut", expr::EvalValue::Number(100.0 * (1 + (i + tid) % 16))}};
        request.generation = ++generation;  // supersedes the previous one
        if (i % 4 == 3) request.deadline_ms = 2;
        tickets.push_back(session->Submit(request));
        if (i % 3 == 2) tickets[tickets.size() - 2]->Cancel();
      }
      for (auto& ticket : tickets) {
        auto response = ticket->Await();
        if (response.ok()) continue;
        const Status& st = response.status();
        if (!st.IsCancelled() && !st.IsUnavailable() &&
            !st.IsDeadlineExceeded()) {
          ++unexpected;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  AwaitQuiescence(mw);

  EXPECT_EQ(unexpected.load(), 0);
  Middleware::Stats stats = mw.stats();
  EXPECT_EQ(stats.submitted, static_cast<size_t>(kThreads * kIterations));
  EXPECT_EQ(stats.queries + stats.cancelled + stats.errors, stats.submitted);
  EXPECT_LE(stats.deadline_exceeded + stats.shed, stats.errors);

  // Workers were reclaimed by the checkpoints, never wedged: the storm's
  // pool still answers.
  auto after = mw.Execute("SELECT COUNT(*) AS c FROM t WHERE v < 111");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->table->column(0).NumericAt(0), 111.0);
}

}  // namespace
}  // namespace runtime
}  // namespace vegaplus
