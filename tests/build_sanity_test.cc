// Build-substrate sanity check: links against every module library and
// touches one out-of-line symbol from each, so a module dropped from the
// CMake link graph fails here instead of in an unrelated downstream target.
#include <gtest/gtest.h>

#include "benchdata/datasets.h"
#include "common/str_util.h"
#include "data/data_type.h"
#include "dataflow/signal_registry.h"
#include "expr/kernels/kernels.h"
#include "expr/parser.h"
#include "json/json_value.h"
#include "ml/random_forest.h"
#include "optimizer/trainer.h"
#include "plan/encoder.h"
#include "rewrite/plan_builder.h"
#include "runtime/cache.h"
#include "spec/spec.h"
#include "sql/sql_parser.h"
#include "storage/stats.h"
#include "tiles/tile_store.h"
#include "transforms/binning.h"

namespace vegaplus {
namespace {

TEST(BuildSanityTest, EveryModuleLinks) {
  // common
  EXPECT_EQ(Join(Split("a,b", ','), "|"), "a|b");

  // json
  json::Value value = json::Value::MakeArray();
  value.Append(json::Value(1.0));
  EXPECT_TRUE(value.is_array());
  EXPECT_EQ(value.size(), 1u);

  // data
  EXPECT_EQ(data::DataTypeFromName("float64"), data::DataType::kFloat64);

  // kernels
  const uint8_t bits[4] = {1, 0, 1, 1};
  EXPECT_EQ(kernels::CountBits(bits, 4), 3u);

  // expr
  EXPECT_TRUE(expr::ParseExpression("1 + 2").ok());

  // ml
  ml::DecisionTree tree;
  tree.Train({{0.0}, {1.0}}, {0, 1});

  // storage
  EXPECT_TRUE(storage::ZoneMapPruningEnabled());

  // sql
  EXPECT_TRUE(sql::ParseSql("SELECT a FROM t").ok());

  // dataflow
  dataflow::SignalRegistry registry;
  registry.Set("x", expr::EvalValue::Number(1.0), /*stamp=*/0);

  // transforms
  EXPECT_GT(transforms::ComputeBinning(0.0, 100.0, 10).step, 0.0);

  // spec + rewrite
  auto parsed_spec = spec::ParseSpecText(R"({"signals": [], "data": []})");
  ASSERT_TRUE(parsed_spec.ok()) << parsed_spec.status().ToString();
  rewrite::PlanBuilder builder(*parsed_spec);

  // tiles
  EXPECT_TRUE(tiles::TileServingEnabled());

  // runtime
  runtime::QueryCache cache(/*capacity=*/4, /*max_result_rows=*/16);
  cache.Clear();

  // plan
  EXPECT_FALSE(plan::FeatureNames().empty());

  // optimizer
  EXPECT_TRUE(optimizer::MakePairs({}, /*max_pairs=*/8, /*seed=*/1).empty());

  // benchdata
  EXPECT_FALSE(benchdata::DatasetNames().empty());
}

}  // namespace
}  // namespace vegaplus
