// Differential suite for the out-of-core storage layer: a table written
// through storage::TableShard and served back through storage::Reader must
// answer every query bit-identically to its in-memory twin — with zone-map
// pruning on or off, at any morsel thread count, and under concurrent
// scans with a residency budget small enough to force LRU eviction churn.
// Corrupted or truncated shard files must fail with a Status, never a
// crash. Registered under `unit` (ASan/UBSan CI), `differential`, and
// `concurrency` (TSan CI).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/str_util.h"
#include "data/ipc.h"
#include "data/stats.h"
#include "data/table.h"
#include "expr/batch_eval.h"
#include "expr/compiler.h"
#include "expr/parser.h"
#include "expr_corpus_test_util.h"
#include "runtime/engine_config.h"
#include "runtime/middleware.h"
#include "sql/engine.h"
#include "storage/column_file.h"
#include "storage/reader.h"
#include "storage/stats.h"
#include "storage/table_shard.h"
#include "transforms/binning.h"

namespace vegaplus {
namespace {

using data::TablePtr;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "vps_storage_diff_" + name;
}

/// Pin the morsel configuration for one test; restore defaults after.
class MorselConfigGuard {
 public:
  MorselConfigGuard(size_t morsel_rows, size_t threads)
      : saved_rows_(parallel::MorselRows()),
        saved_enabled_(parallel::MorselParallelEnabled()) {
    parallel::SetMorselRows(morsel_rows);
    parallel::SetMorselParallelism(threads);
    parallel::SetMorselParallelEnabled(true);
  }
  ~MorselConfigGuard() {
    parallel::SetMorselParallelEnabled(saved_enabled_);
    parallel::SetMorselParallelism(0);
    parallel::SetMorselRows(saved_rows_);
  }

 private:
  size_t saved_rows_;
  bool saved_enabled_;
};

class PruningGuard {
 public:
  explicit PruningGuard(bool enabled)
      : saved_(storage::ZoneMapPruningEnabled()) {
    storage::SetZoneMapPruningEnabled(enabled);
  }
  ~PruningGuard() { storage::SetZoneMapPruningEnabled(saved_); }

 private:
  bool saved_;
};

class DictEncodingGuard {
 public:
  explicit DictEncodingGuard(bool enabled)
      : saved_(data::DictionaryEncodingEnabled()) {
    data::SetDictionaryEncodingEnabled(enabled);
  }
  ~DictEncodingGuard() { data::SetDictionaryEncodingEnabled(saved_); }

 private:
  bool saved_;
};

/// A clustered table where zone maps actually exclude: `x` is monotone over
/// the rows (so chunk/morsel ranges are disjoint), `cat` cycles through a
/// small dictionary in long runs, and `v` carries nulls and NaNs.
TablePtr MakeClusteredTable(size_t rows) {
  data::Column x(data::DataType::kFloat64);
  data::Column v(data::DataType::kFloat64);
  data::Column cat(data::DataType::kString);
  Rng rng(99);
  for (size_t r = 0; r < rows; ++r) {
    x.AppendDouble(static_cast<double>(r));
    if (rng.NextBool(0.05)) {
      v.AppendNull();
    } else if (rng.NextBool(0.02)) {
      v.AppendDouble(std::nan(""));
    } else {
      v.AppendDouble(rng.Uniform(-1, 1));
    }
    cat.AppendString("run_" + std::to_string(r / (rows / 8 + 1)));
  }
  std::vector<data::Column> cols;
  cols.push_back(std::move(x));
  cols.push_back(std::move(v));
  cols.push_back(std::move(cat));
  return std::make_shared<data::Table>(
      data::Schema({{"x", data::DataType::kFloat64},
                    {"v", data::DataType::kFloat64},
                    {"cat", data::DataType::kString}}),
      std::move(cols));
}

// ---------------------------------------------------------------------------
// Round-trip bit-identity
// ---------------------------------------------------------------------------

TEST(StorageRoundTripTest, ShardRoundTripsBitIdentically) {
  for (bool dict : {true, false}) {
    DictEncodingGuard guard(dict);
    TablePtr table = testutil::MakeRandomExprTable(11, /*rows=*/5000);
    const std::string path =
        TempPath(dict ? "roundtrip_dict.vps" : "roundtrip_flat.vps");
    storage::WriteOptions opts;
    opts.chunk_rows = 777;  // short boundary chunk included
    ASSERT_TRUE(storage::TableShard::Write(path, *table, opts).ok());

    auto reader = storage::Reader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status();
    EXPECT_EQ((*reader)->total_rows(), table->num_rows());
    EXPECT_GT((*reader)->num_chunks(), 1u);
    auto back = (*reader)->ReadAll();
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE((*back)->Equals(*table)) << "dict=" << dict;
    std::remove(path.c_str());
  }
}

TEST(StorageRoundTripTest, SingleChunkAndEmptyShards) {
  TablePtr table = testutil::MakeRandomExprTable(13, /*rows=*/100);
  const std::string path = TempPath("single_chunk.vps");
  storage::WriteOptions opts;
  opts.chunk_rows = 100000;  // rows < chunk_rows: one chunk
  ASSERT_TRUE(storage::TableShard::Write(path, *table, opts).ok());
  auto reader = storage::Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ((*reader)->num_chunks(), 1u);
  auto back = (*reader)->ReadAll();
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE((*back)->Equals(*table));
  std::remove(path.c_str());

  std::vector<data::Column> empty_cols;
  for (size_t i = 0; i < table->schema().num_fields(); ++i) {
    empty_cols.emplace_back(table->schema().field(i).type);
  }
  data::Table empty(table->schema(), std::move(empty_cols));
  const std::string empty_path = TempPath("empty.vps");
  ASSERT_TRUE(storage::TableShard::Write(empty_path, empty, {}).ok());
  auto empty_reader = storage::Reader::Open(empty_path);
  ASSERT_TRUE(empty_reader.ok()) << empty_reader.status();
  EXPECT_EQ((*empty_reader)->num_chunks(), 0u);
  auto empty_back = (*empty_reader)->ReadAll();
  ASSERT_TRUE(empty_back.ok()) << empty_back.status();
  EXPECT_EQ((*empty_back)->num_rows(), 0u);
  EXPECT_TRUE((*empty_back)->schema() == table->schema());
  std::remove(empty_path.c_str());
}

// ---------------------------------------------------------------------------
// Shard-backed SQL vs the in-memory twin
// ---------------------------------------------------------------------------

// The WHERE-heavy query corpus: fused numeric/string conjunctions (the
// shapes the zone maps see), plus aggregation/order shapes to prove the
// whole pipeline downstream of the scan is unaffected.
const char* kShardQueries[] = {
    "SELECT * FROM t WHERE dd > 0",
    "SELECT * FROM t WHERE dd > 25 AND ii <= 5",
    "SELECT * FROM t WHERE dd >= -3.5 AND dd < 12.5",
    "SELECT * FROM t WHERE ii <> 4",
    "SELECT * FROM t WHERE sc = 'cat_3'",
    "SELECT * FROM t WHERE sc <> 'cat_3'",
    "SELECT * FROM t WHERE sc = 'not_in_dict'",
    "SELECT * FROM t WHERE sc <> 'not_in_dict'",
    "SELECT * FROM t WHERE ss = 'mid' AND dd > 0",
    "SELECT * FROM t WHERE sh = 'id_1'",
    "SELECT * FROM t WHERE sc = 'cat_1' AND ii < 5 AND dd > -10",
    "SELECT dd * 2 + ii AS z, ss FROM t WHERE ii <> 4",
    "SELECT ii, COUNT(*) AS n, SUM(dd) AS s, AVG(dd) AS a FROM t "
    "GROUP BY ii ORDER BY ii",
    "SELECT ss, MIN(dd) AS lo, MAX(dd) AS hi FROM t GROUP BY ss ORDER BY ss",
    "SELECT COUNT(*) AS n, COUNT(dd) AS nv, MIN(ss) AS first_s FROM t",
    "SELECT ss, dd FROM t WHERE dd IS NOT NULL ORDER BY dd DESC, ss "
    "LIMIT 25 OFFSET 5",
    "SELECT MONTH(tt) AS m, COUNT(*) AS n FROM t GROUP BY MONTH(tt) ORDER BY m",
};

class StorageDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = testutil::MakeRandomExprTable(31, /*rows=*/20000);
    mem_engine_.RegisterTable("t", table_);

    path_ = TempPath("diff.vps");
    storage::WriteOptions opts;
    opts.chunk_rows = 1024;
    ASSERT_TRUE(storage::TableShard::Write(path_, *table_, opts).ok());
    auto reader = storage::Reader::Open(path_);
    ASSERT_TRUE(reader.ok()) << reader.status();
    reader_ = *reader;
    ASSERT_TRUE(shard_engine_.RegisterShardTable("t", reader_).ok());
  }

  void TearDown() override { std::remove(path_.c_str()); }

  TablePtr Run(sql::Engine& engine, const char* sql) {
    auto result = engine.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? result->table : nullptr;
  }

  TablePtr table_;
  std::string path_;
  std::shared_ptr<storage::Reader> reader_;
  sql::Engine mem_engine_;
  sql::Engine shard_engine_;
};

// Every query, at every thread count, with pruning on and off: the
// shard-backed engine must match the in-memory engine bit for bit.
TEST_F(StorageDiffTest, ShardAnswersQueriesBitIdenticallyAcrossThreads) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    MorselConfigGuard guard(/*morsel_rows=*/1024, threads);
    for (bool pruning : {true, false}) {
      PruningGuard pruning_guard(pruning);
      for (const char* sql : kShardQueries) {
        TablePtr want = Run(mem_engine_, sql);
        TablePtr got = Run(shard_engine_, sql);
        ASSERT_NE(want, nullptr) << sql;
        ASSERT_NE(got, nullptr) << sql;
        ASSERT_TRUE(got->Equals(*want))
            << sql << "\n(threads=" << threads << " pruning=" << pruning
            << ")\nshard:\n" << got->ToString(8) << "memory:\n"
            << want->ToString(8);
      }
    }
  }
}

// Selective brushes over a clustered shard must actually prune chunks — and
// stay bit-identical to the force-disabled baseline.
TEST_F(StorageDiffTest, SelectiveBrushPrunesChunksWithZeroDivergence) {
  TablePtr clustered = MakeClusteredTable(20000);
  const std::string path = TempPath("clustered.vps");
  storage::WriteOptions opts;
  opts.chunk_rows = 1024;
  ASSERT_TRUE(storage::TableShard::Write(path, *clustered, opts).ok());
  auto reader = storage::Reader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  sql::Engine mem;
  mem.RegisterTable("c", clustered);
  sql::Engine shard;
  ASSERT_TRUE(shard.RegisterShardTable("c", *reader).ok());

  const char* brushes[] = {
      "SELECT COUNT(*) AS n, SUM(v) AS s FROM c WHERE x >= 100 AND x < 600",
      "SELECT * FROM c WHERE x < 64",
      "SELECT * FROM c WHERE x > 19900 AND v >= 0",
      "SELECT COUNT(*) AS n FROM c WHERE cat = 'run_0'",
      "SELECT COUNT(*) AS n FROM c WHERE cat = 'absent_category'",
  };
  for (const char* sql : brushes) {
    (*reader)->EvictAll();
    const uint64_t pruned_before = storage::ChunksPruned();
    TablePtr on;
    {
      PruningGuard guard(true);
      on = Run(shard, sql);
    }
    const uint64_t pruned_delta = storage::ChunksPruned() - pruned_before;
    (*reader)->EvictAll();
    TablePtr off;
    {
      PruningGuard guard(false);
      off = Run(shard, sql);
    }
    TablePtr want = Run(mem, sql);
    ASSERT_NE(on, nullptr) << sql;
    ASSERT_NE(off, nullptr) << sql;
    ASSERT_NE(want, nullptr) << sql;
    EXPECT_GT(pruned_delta, 0u) << sql;
    ASSERT_TRUE(on->Equals(*off)) << sql;
    ASSERT_TRUE(on->Equals(*want)) << sql;
  }
  std::remove(path.c_str());
}

// The same zone maps accelerate the pure in-memory case: morsels whose
// zones reject the fused predicates are skipped, with identical selection
// vectors.
TEST(StorageMorselPruningTest, InMemoryMorselPruningMatchesUnpruned) {
  TablePtr table = MakeClusteredTable(20000);
  const char* predicates[] = {
      "datum.x < 100",
      "datum.x >= 19000 && datum.v > 0",
      "datum.cat == 'run_2'",
      "datum.cat == 'absent_category'",
      "datum.x > 5000 && datum.x <= 6000 && datum.cat != 'run_0'",
  };
  for (size_t threads : {1u, 4u}) {
    MorselConfigGuard guard(/*morsel_rows=*/512, threads);
    for (const char* text : predicates) {
      auto parsed = expr::ParseExpression(text);
      ASSERT_TRUE(parsed.ok()) << text;
      auto program = expr::Compiler::Compile(*parsed, table->schema());
      ASSERT_TRUE(program.has_value()) << text;
      ASSERT_FALSE(program->fused_preds.empty()) << text;

      const uint64_t pruned_before = storage::MorselsPruned();
      std::vector<int32_t> on, off;
      {
        PruningGuard pruning(true);
        expr::RunFilterMorselParallel(*table, *program, &on);
      }
      const uint64_t pruned_delta = storage::MorselsPruned() - pruned_before;
      {
        PruningGuard pruning(false);
        expr::RunFilterMorselParallel(*table, *program, &off);
      }
      EXPECT_EQ(on, off) << text << " threads=" << threads;
      EXPECT_GT(pruned_delta, 0u) << text << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Corruption: Status, never a crash
// ---------------------------------------------------------------------------

class StorageCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TablePtr table = testutil::MakeRandomExprTable(17, /*rows=*/2000);
    path_ = TempPath("corrupt.vps");
    storage::WriteOptions opts;
    opts.chunk_rows = 256;
    ASSERT_TRUE(storage::TableShard::Write(path_, *table, opts).ok());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes_.empty());
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutated_path().c_str());
  }

  std::string mutated_path() const { return path_ + ".mut"; }

  void WriteMutated(const std::string& contents) {
    std::ofstream out(mutated_path(), std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(StorageCorruptionTest, TruncatedShardsFailOpenWithStatus) {
  // Every strict prefix must be rejected at Open: the header, dictionary
  // pages, directory, and payload extents are all bounds-checked up front.
  for (size_t len : {size_t{0}, size_t{3}, size_t{9}, size_t{40},
                     bytes_.size() / 4, bytes_.size() / 2,
                     bytes_.size() - 200, bytes_.size() - 1}) {
    if (len >= bytes_.size()) continue;
    WriteMutated(bytes_.substr(0, len));
    auto reader = storage::Reader::Open(mutated_path());
    EXPECT_FALSE(reader.ok()) << "prefix length " << len;
  }
}

TEST_F(StorageCorruptionTest, BadMagicAndGarbageFailOpenWithStatus) {
  std::string bad = bytes_;
  bad[0] = 'X';
  WriteMutated(bad);
  EXPECT_FALSE(storage::Reader::Open(mutated_path()).ok());

  WriteMutated("this is not a shard file at all");
  EXPECT_FALSE(storage::Reader::Open(mutated_path()).ok());

  EXPECT_FALSE(storage::Reader::Open(TempPath("nonexistent.vps")).ok());
}

TEST_F(StorageCorruptionTest, CorruptPayloadFailsDecodeWithStatus) {
  // Open validates directory extents, not payload contents; smashing the
  // first chunk's envelope must surface at decode as a Status.
  auto clean = storage::ColumnFile::Open(path_);
  ASSERT_TRUE(clean.ok()) << clean.status();
  const uint64_t off = (*clean)->chunk(0).payload_off;
  std::string bad = bytes_;
  ASSERT_LT(off, bad.size());
  bad[off] ^= 0x5a;  // envelope magic byte
  WriteMutated(bad);

  auto reader = storage::Reader::Open(mutated_path());
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_FALSE((*reader)->Chunk(0).ok());
  EXPECT_FALSE((*reader)->ReadAll().ok());
}

// ---------------------------------------------------------------------------
// Concurrency: shared reader, small budget, races on the LRU
// ---------------------------------------------------------------------------

TEST(StorageConcurrencyTest, ConcurrentScansUnderEvictionStayIdentical) {
  TablePtr table = MakeClusteredTable(20000);
  const std::string path = TempPath("concurrent.vps");
  storage::WriteOptions opts;
  opts.chunk_rows = 512;
  ASSERT_TRUE(storage::TableShard::Write(path, *table, opts).ok());
  auto opened = storage::Reader::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::shared_ptr<storage::Reader> reader = *opened;
  // Budget far below the table: every pass churns the LRU.
  reader->set_residency_budget(64 * 1024);

  std::vector<storage::Predicate> preds(1);
  preds[0].col = 0;  // x
  preds[0].cmp = storage::CmpOp::kLt;
  preds[0].num_const = 2500.0;
  auto want = reader->MaterializeMatching(preds);
  ASSERT_TRUE(want.ok()) << want.status();
  const std::string want_bytes = data::SerializeBinary(**want);

  constexpr int kThreads = 8;
  constexpr int kIters = 6;
  std::vector<int> failures(kThreads, 0);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kIters; ++i) {
          auto got = (i % 2 == 0) ? reader->MaterializeMatching(preds)
                                  : reader->ReadAll();
          if (!got.ok()) {
            ++failures[t];
            continue;
          }
          if (i % 2 == 0 && data::SerializeBinary(**got) != want_bytes) {
            ++failures[t];
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
  EXPECT_GT(storage::ChunksPagedIn(), 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Tile-store spill: levels round-trip through the chunked format
// ---------------------------------------------------------------------------

TEST(StorageTileSpillTest, SpilledTileLevelsAnswerBitIdentically) {
  using runtime::Middleware;
  using runtime::MiddlewareOptions;

  // Quantized measures (multiples of 0.25): per-bin sums are exact, so the
  // tile answer is bit-identical regardless of accumulation order.
  data::Schema schema({{"x", data::DataType::kFloat64},
                       {"y", data::DataType::kFloat64}});
  data::TableBuilder builder(schema);
  Rng rng(5);
  for (size_t r = 0; r < 20000; ++r) {
    builder.AppendRow(
        {rng.Index(20) == 0
             ? data::Value::Null()
             : data::Value::Double(0.25 * static_cast<double>(rng.Index(400))),
         data::Value::Double(0.25 * static_cast<double>(rng.Index(2000)) -
                             50)});
  }
  TablePtr table = builder.Build();
  sql::Engine engine;
  engine.RegisterTable("t", table);
  data::TableStats stats = data::ComputeTableStats(*table);
  const data::ColumnStats* xs = stats.Find("x");
  ASSERT_NE(xs, nullptr);
  transforms::Binning bin = transforms::ComputeBinning(xs->min, xs->max, 25);

  MiddlewareOptions resident_opts;
  resident_opts.enable_client_cache = false;
  resident_opts.enable_server_cache = false;
  Middleware resident_mw(&engine, resident_opts);
  ASSERT_NE(resident_mw.tile_store(), nullptr);

  MiddlewareOptions spill_opts = resident_opts;
  spill_opts.tile_options.spill_dir = ::testing::TempDir();
  // 1 byte: every spilled level is evicted, every answer hydrates.
  spill_opts.tile_options.resident_level_bytes = 1;
  Middleware spill_mw(&engine, spill_opts);
  ASSERT_NE(spill_mw.tile_store(), nullptr);

  const std::string sql_template = StrFormat(
      "SELECT ${start} + FLOOR((x - ${start}) / ${step}) * ${step} AS bin0, "
      "(${start} + FLOOR((x - ${start}) / ${step}) * ${step}) + ${step} AS "
      "bin1, COUNT(*) AS n, SUM(y) AS s FROM t GROUP BY "
      "${start} + FLOOR((x - ${start}) / ${step}) * ${step}, "
      "(${start} + FLOOR((x - ${start}) / ${step}) * ${step}) + ${step}");
  auto run = [&](Middleware& mw) {
    auto handle = mw.Prepare(sql_template);
    EXPECT_TRUE(handle.ok()) << handle.status();
    rewrite::QueryRequest request;
    request.handle = *handle;
    request.params = {{"start", expr::EvalValue::Number(bin.start)},
                      {"step", expr::EvalValue::Number(bin.step)}};
    return mw.Submit(request)->Await();
  };

  auto resident = run(resident_mw);
  auto spilled = run(spill_mw);
  ASSERT_TRUE(resident.ok()) << resident.status();
  ASSERT_TRUE(spilled.ok()) << spilled.status();
  ASSERT_EQ(resident->source, rewrite::QueryResponse::Source::kTileStore);
  ASSERT_EQ(spilled->source, rewrite::QueryResponse::Source::kTileStore);
  EXPECT_EQ(data::SerializeBinary(*spilled->table),
            data::SerializeBinary(*resident->table));

  tiles::TileStoreStats tile_stats = spill_mw.tile_store()->stats();
  EXPECT_GT(tile_stats.levels_spilled, 0u);
  EXPECT_GT(tile_stats.levels_evicted, 0u);
  EXPECT_GT(tile_stats.level_hydrations, 0u);
  EXPECT_GT(tile_stats.hits, 0u);
}

}  // namespace
}  // namespace vegaplus
