// Differential tests for middleware tile serving: every covered
// bin+aggregate shape answered from the tile store must be bit-identical to
// base-table execution, across zoom levels, brushes, null-heavy and
// dictionary-encoded bin columns, and morsel thread counts. Shapes the
// tiles cannot answer exactly (brushes straddling a bin boundary) must fall
// back to the DBMS path and still agree.
//
// The corpus quantizes measures to multiples of 0.25 so per-bin sums are
// exact in floating point regardless of accumulation order — the documented
// proviso under which SUM/AVG tile answers are bit-identical for any
// chunking (COUNT/MIN/MAX are order-invariant unconditionally).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/str_util.h"
#include "data/stats.h"
#include "data/table.h"
#include "runtime/engine_config.h"
#include "runtime/middleware.h"
#include "transforms/binning.h"

namespace vegaplus {
namespace runtime {
namespace {

using rewrite::QueryResponse;

data::TablePtr MakeCorpus(size_t rows, uint64_t seed) {
  data::Schema schema({{"x", data::DataType::kFloat64},
                       {"y", data::DataType::kFloat64},
                       {"g", data::DataType::kString},
                       {"i", data::DataType::kInt64}});
  const char* cats[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  Rng rng;
  rng.Seed(seed);
  data::TableBuilder builder(schema);
  builder.Reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    // Quantized to 0.25: exactly representable addends.
    double x = 0.25 * static_cast<double>(rng.Index(400));        // [0, 100)
    double y = 0.25 * static_cast<double>(rng.Index(2000)) - 50;  // [-50, 450)
    bool x_null = rng.Index(20) == 0;  // ~5%
    bool y_null = rng.Index(10) == 0;  // ~10%
    bool g_null = rng.Index(33) == 0;  // ~3%
    builder.AppendRow(
        {x_null ? data::Value::Null() : data::Value::Double(x),
         y_null ? data::Value::Null() : data::Value::Double(y),
         g_null ? data::Value::Null()
                : data::Value::String(cats[rng.Index(5)]),
         data::Value::Int(static_cast<int64_t>(rng.Index(1000)) - 500)});
  }
  return builder.Build();
}

/// The post-flatten histogram template the VDT rewriter emits, as a
/// prepared template with the bin parameters as holes (bound exactly as
/// doubles — no text round-trip).
std::string HistogramTemplate(const std::string& col, const std::string& aggs,
                              const std::string& where) {
  return StrFormat(
      "SELECT ${start} + FLOOR((%s - ${start}) / ${step}) * ${step} AS bin0, "
      "(${start} + FLOOR((%s - ${start}) / ${step}) * ${step}) + ${step} AS "
      "bin1, %s FROM t%s GROUP BY "
      "${start} + FLOOR((%s - ${start}) / ${step}) * ${step}, "
      "(${start} + FLOOR((%s - ${start}) / ${step}) * ${step}) + ${step}",
      col.c_str(), col.c_str(), aggs.c_str(), where.c_str(), col.c_str(),
      col.c_str());
}

class TileDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = MakeCorpus(20000, 7);
    engine_.RegisterTable("t", table_);
    stats_ = data::ComputeTableStats(*table_);

    MiddlewareOptions tiled;
    tiled.enable_client_cache = false;
    tiled.enable_server_cache = false;
    tile_mw_ = std::make_unique<Middleware>(&engine_, tiled);
    ASSERT_NE(tile_mw_->tile_store(), nullptr);

    MiddlewareOptions plain;
    plain.enable_client_cache = false;
    plain.enable_server_cache = false;
    plain.engine_config = EngineConfig::Current();
    plain.engine_config->tile_serving = false;
    base_mw_ = std::make_unique<Middleware>(&engine_, plain);
    ASSERT_EQ(base_mw_->tile_store(), nullptr);
  }

  transforms::Binning BinningFor(const std::string& col, int maxbins) {
    const data::ColumnStats* cs = stats_.Find(col);
    EXPECT_NE(cs, nullptr);
    return transforms::ComputeBinning(cs->min, cs->max, maxbins);
  }

  /// Run one bound template through both middlewares; the results must be
  /// bit-identical. Returns the tile middleware's delivery source.
  QueryResponse::Source CompareBoth(const std::string& sql_template,
                                    const std::vector<rewrite::QueryParam>& params) {
    auto run = [&](Middleware* mw) {
      auto handle = mw->Prepare(sql_template);
      EXPECT_TRUE(handle.ok()) << handle.status() << "\n" << sql_template;
      rewrite::QueryRequest request;
      request.handle = *handle;
      request.params = params;
      return mw->Submit(request)->Await();
    };
    auto tiled = run(tile_mw_.get());
    auto base = run(base_mw_.get());
    EXPECT_TRUE(tiled.ok()) << tiled.status() << "\n" << sql_template;
    EXPECT_TRUE(base.ok()) << base.status() << "\n" << sql_template;
    if (!tiled.ok() || !base.ok()) return QueryResponse::Source::kDbms;
    EXPECT_EQ(base->source, QueryResponse::Source::kDbms);
    EXPECT_TRUE(tiled->table->Equals(*base->table))
        << sql_template << "\ntile rows=" << tiled->table->num_rows()
        << " base rows=" << base->table->num_rows();
    return tiled->source;
  }

  data::TablePtr table_;
  sql::Engine engine_;
  data::TableStats stats_;
  std::unique_ptr<Middleware> tile_mw_;
  std::unique_ptr<Middleware> base_mw_;
};

constexpr const char* kAggs =
    "COUNT(*) AS cnt, COUNT(y) AS cy, SUM(y) AS sy, AVG(y) AS ay, "
    "MIN(i) AS mi, MAX(i) AS ma, MIN(x) AS mx, MAX(y) AS my";

TEST_F(TileDiffTest, HistogramZoomLevelsBitIdentical) {
  const size_t scans_before = engine_.lifetime_stats().rows_scanned;
  size_t expected_hits = 0;
  for (int maxbins : {5, 10, 23, 57, 100, 200}) {
    transforms::Binning b = BinningFor("x", maxbins);
    std::vector<rewrite::QueryParam> params = {
        {"start", expr::EvalValue::Number(b.start)},
        {"step", expr::EvalValue::Number(b.step)}};
    auto source = CompareBoth(HistogramTemplate("x", kAggs, ""), params);
    EXPECT_EQ(source, QueryResponse::Source::kTileStore) << "maxbins=" << maxbins;
    ++expected_hits;
  }
  EXPECT_EQ(tile_mw_->stats().tile_hits, expected_hits);
  EXPECT_EQ(tile_mw_->stats().dbms_executions, 0u);
  // One tree build reads the table directly; tile-served answers never go
  // through the engine, so only the base middleware's scans accrue.
  const size_t per_query = table_->num_rows();
  EXPECT_EQ(engine_.lifetime_stats().rows_scanned,
            scans_before + expected_hits * per_query);
}

TEST_F(TileDiffTest, NullHeavyColumnKeepsNullBinRow) {
  transforms::Binning b = BinningFor("y", 40);
  std::vector<rewrite::QueryParam> params = {
      {"start", expr::EvalValue::Number(b.start)},
      {"step", expr::EvalValue::Number(b.step)}};
  auto source = CompareBoth(
      HistogramTemplate("y", "COUNT(*) AS cnt, SUM(x) AS sx, AVG(x) AS ax", ""),
      params);
  EXPECT_EQ(source, QueryResponse::Source::kTileStore);
}

TEST_F(TileDiffTest, BinAlignedBrushServedFromTiles) {
  transforms::Binning b = BinningFor("x", 20);
  // Brush bounds on bin boundaries: every slot is fully in or out.
  const double lo = b.start + 2 * b.step;
  const double hi = b.start + 11 * b.step;
  std::string where = " WHERE x >= ${lo} AND x < ${hi}";
  std::vector<rewrite::QueryParam> params = {
      {"start", expr::EvalValue::Number(b.start)},
      {"step", expr::EvalValue::Number(b.step)},
      {"lo", expr::EvalValue::Number(lo)},
      {"hi", expr::EvalValue::Number(hi)}};
  auto source = CompareBoth(HistogramTemplate("x", kAggs, where), params);
  EXPECT_EQ(source, QueryResponse::Source::kTileStore);
  EXPECT_EQ(tile_mw_->stats().dbms_executions, 0u);
}

TEST_F(TileDiffTest, StraddlingBrushFallsBackAndAgrees) {
  transforms::Binning b = BinningFor("x", 20);
  // Bounds in the interior of occupied bins: exact answering needs rows,
  // so the tile store must refuse and the DBMS path must serve it.
  const double lo = b.start + 2.5 * b.step;
  const double hi = b.start + 10.5 * b.step;
  std::string where = " WHERE x >= ${lo} AND x < ${hi}";
  std::vector<rewrite::QueryParam> params = {
      {"start", expr::EvalValue::Number(b.start)},
      {"step", expr::EvalValue::Number(b.step)},
      {"lo", expr::EvalValue::Number(lo)},
      {"hi", expr::EvalValue::Number(hi)}};
  auto source = CompareBoth(HistogramTemplate("x", kAggs, where), params);
  EXPECT_EQ(source, QueryResponse::Source::kDbms);
  EXPECT_GE(tile_mw_->tile_store()->stats().coverage_misses, 1u);
  EXPECT_EQ(tile_mw_->stats().dbms_executions, 1u);
}

TEST_F(TileDiffTest, DictStringCategoricalBitIdentical) {
  ASSERT_TRUE(table_->ColumnByName("g")->dict_encoded());
  auto source = CompareBoth(
      "SELECT g, COUNT(*) AS cnt, SUM(x) AS sx, AVG(y) AS ay, MIN(i) AS mi, "
      "MAX(i) AS ma FROM t GROUP BY g",
      {});
  EXPECT_EQ(source, QueryResponse::Source::kTileStore);
}

TEST_F(TileDiffTest, UncoveredShapesFallBack) {
  // Aggregating a string column, HAVING, and scalar aggregates all bypass
  // the tile store.
  for (const char* sql :
       {"SELECT g, MIN(g) AS mg FROM t GROUP BY g",
        "SELECT g, COUNT(*) AS c FROM t GROUP BY g HAVING c > 10",
        "SELECT COUNT(*) AS c FROM t"}) {
    auto source = CompareBoth(sql, {});
    EXPECT_EQ(source, QueryResponse::Source::kDbms) << sql;
  }
}

TEST_F(TileDiffTest, MorselThreadSweepBitIdentical) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    EngineConfig cfg = EngineConfig::Current();
    cfg.morsel_threads = threads;
    cfg.morsel_rows = 1024;  // many chunks on the 20k-row corpus
    ScopedEngineConfig scoped(cfg);

    // Fresh middlewares so trees are rebuilt under this thread count.
    MiddlewareOptions opts;
    opts.enable_client_cache = false;
    opts.enable_server_cache = false;
    tile_mw_ = std::make_unique<Middleware>(&engine_, opts);
    MiddlewareOptions plain = opts;
    plain.engine_config = cfg;
    plain.engine_config->tile_serving = false;
    base_mw_ = std::make_unique<Middleware>(&engine_, plain);

    for (int maxbins : {10, 57}) {
      transforms::Binning b = BinningFor("x", maxbins);
      std::vector<rewrite::QueryParam> params = {
          {"start", expr::EvalValue::Number(b.start)},
          {"step", expr::EvalValue::Number(b.step)}};
      auto source = CompareBoth(HistogramTemplate("x", kAggs, ""), params);
      EXPECT_EQ(source, QueryResponse::Source::kTileStore)
          << "threads=" << threads << " maxbins=" << maxbins;
    }
  }
}

// Concurrent first-touch of one tree: the build is single-flight, so
// concurrent requesters either get tile answers or fall back — every
// delivered result must agree with base execution. Exercised under TSan via
// the `concurrency` label.
TEST_F(TileDiffTest, ConcurrentFirstTouchSingleFlight) {
  transforms::Binning b = BinningFor("x", 30);
  const std::string sql_template = HistogramTemplate("x", kAggs, "");
  std::vector<rewrite::QueryParam> params = {
      {"start", expr::EvalValue::Number(b.start)},
      {"step", expr::EvalValue::Number(b.step)}};

  // Resolve the expected result once through the base path.
  auto base_handle = base_mw_->Prepare(sql_template);
  ASSERT_TRUE(base_handle.ok()) << base_handle.status();
  rewrite::QueryRequest base_request;
  base_request.handle = *base_handle;
  base_request.params = params;
  auto expected = base_mw_->Submit(base_request)->Await();
  ASSERT_TRUE(expected.ok()) << expected.status();

  auto handle = tile_mw_->Prepare(sql_template);
  ASSERT_TRUE(handle.ok()) << handle.status();

  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  std::vector<Status> statuses(kThreads, Status::OK());
  // char, not bool: vector<bool> bit-packs, so per-thread writes would race.
  std::vector<char> equal(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      auto session = tile_mw_->CreateSession();
      rewrite::QueryRequest request;
      request.handle = *handle;
      request.params = params;
      request.client_id = static_cast<uint64_t>(i) + 1;
      auto response = session->Submit(request)->Await();
      if (!response.ok()) {
        statuses[i] = response.status();
        return;
      }
      equal[i] = response->table->Equals(*expected->table) ? 1 : 0;
    });
  }
  for (auto& w : workers) w.join();
  for (int i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i];
    EXPECT_TRUE(equal[i]) << "worker " << i;
  }
  // A repeat submission after the dust settles must be a tile hit.
  rewrite::QueryRequest again;
  again.handle = *handle;
  again.params = params;
  auto response = tile_mw_->Submit(again)->Await();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->source, QueryResponse::Source::kTileStore);
  EXPECT_GE(tile_mw_->stats().tile_hits, 1u);
}

}  // namespace
}  // namespace runtime
}  // namespace vegaplus
