#include <gtest/gtest.h>

#include "benchdata/templates.h"
#include "benchdata/workload.h"
#include "rewrite/vdt.h"
#include "runtime/cache.h"
#include "runtime/middleware.h"
#include "runtime/plan_executor.h"

namespace vegaplus {
namespace runtime {
namespace {

using benchdata::TemplateId;

data::TablePtr TinyTable(int rows) {
  data::Schema schema({{"v", data::DataType::kFloat64}});
  data::TableBuilder builder(schema);
  for (int i = 0; i < rows; ++i) builder.AppendRow({data::Value::Double(i)});
  return builder.Build();
}

TEST(QueryCacheTest, HitMissAndFifoEviction) {
  QueryCache cache(2, 1000, QueryCache::Policy::kFifo);
  data::TablePtr out;
  EXPECT_FALSE(cache.Get("q1", &out));
  cache.Put("q1", TinyTable(1));
  cache.Put("q2", TinyTable(2));
  EXPECT_TRUE(cache.Get("q1", &out));
  cache.Put("q3", TinyTable(3));  // evicts q1 (FIFO ignores the Get)
  EXPECT_FALSE(cache.Get("q1", &out));
  EXPECT_TRUE(cache.Get("q2", &out));
  EXPECT_TRUE(cache.Get("q3", &out));
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
}

// The default policy is LRU: a Get promotes the entry, so the least
// recently *used* entry is evicted, not the oldest inserted.
TEST(QueryCacheTest, LruPromotionOnGet) {
  QueryCache cache(2, 1000);
  data::TablePtr out;
  cache.Put("q1", TinyTable(1));
  cache.Put("q2", TinyTable(2));
  EXPECT_TRUE(cache.Get("q1", &out));  // promote q1 over q2
  cache.Put("q3", TinyTable(3));       // evicts q2, not q1
  EXPECT_TRUE(cache.Get("q1", &out));
  EXPECT_FALSE(cache.Get("q2", &out));
  EXPECT_TRUE(cache.Get("q3", &out));
  // A duplicate Put is a use too.
  cache.Put("q1", TinyTable(9));       // promotes q1 (stored table unchanged)
  cache.Put("q4", TinyTable(4));       // evicts q3
  ASSERT_TRUE(cache.Get("q1", &out));
  EXPECT_EQ(out->num_rows(), 1u);
  EXPECT_FALSE(cache.Get("q3", &out));
}

TEST(QueryCacheTest, SizeThresholdBlocksLargeResults) {
  QueryCache cache(4, 10);
  cache.Put("big", TinyTable(11));
  data::TablePtr out;
  EXPECT_FALSE(cache.Get("big", &out));
  cache.Put("small", TinyTable(10));
  EXPECT_TRUE(cache.Get("small", &out));
}

TEST(QueryCacheTest, DuplicatePutIgnored) {
  QueryCache cache(2, 100);
  cache.Put("q", TinyTable(1));
  cache.Put("q", TinyTable(2));
  data::TablePtr out;
  ASSERT_TRUE(cache.Get("q", &out));
  EXPECT_EQ(out->num_rows(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCacheTest, ZeroCapacityNeverStores) {
  QueryCache cache(0, 100);
  cache.Put("q", TinyTable(1));
  data::TablePtr out;
  EXPECT_FALSE(cache.Get("q", &out));
}

class MiddlewareTest : public ::testing::Test {
 protected:
  void SetUp() override { engine_.RegisterTable("t", TinyTable(500)); }
  sql::Engine engine_;
};

TEST_F(MiddlewareTest, CacheTiersReduceLatency) {
  Middleware mw(&engine_, {});
  auto first = mw.Execute("SELECT * FROM t WHERE v < 100");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->source, rewrite::QueryResponse::Source::kDbms);
  auto second = mw.Execute("SELECT * FROM t WHERE v < 100");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->source, rewrite::QueryResponse::Source::kClientCache);
  EXPECT_LT(second->latency_millis, first->latency_millis);
  EXPECT_EQ(mw.stats().queries, 2u);
  EXPECT_EQ(mw.stats().dbms_executions, 1u);
  EXPECT_EQ(mw.stats().client_cache_hits, 1u);
}

TEST_F(MiddlewareTest, ServerCacheTierWhenClientCacheDisabled) {
  MiddlewareOptions options;
  options.enable_client_cache = false;
  Middleware mw(&engine_, options);
  ASSERT_TRUE(mw.Execute("SELECT COUNT(*) AS c FROM t").ok());
  auto second = mw.Execute("SELECT COUNT(*) AS c FROM t");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->source, rewrite::QueryResponse::Source::kServerCache);
  // Server hits still pay the round trip.
  EXPECT_GE(second->latency_millis, mw.options().latency.round_trip_ms);
}

TEST_F(MiddlewareTest, BadSqlPropagatesError) {
  Middleware mw(&engine_, {});
  EXPECT_FALSE(mw.Execute("SELECT FROM WHERE").ok());
  EXPECT_FALSE(mw.Execute("SELECT * FROM missing_table").ok());
}

// The cache is keyed on (prepared statement, bound params), not SQL text:
// formatting variants of one logical query share a single cache entry.
TEST_F(MiddlewareTest, FormattingVariantsShareCacheEntry) {
  Middleware mw(&engine_, {});
  auto first = mw.Execute("SELECT * FROM t WHERE v < 100");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->source, rewrite::QueryResponse::Source::kDbms);
  // Different whitespace, case, and parenthesization — same logical query.
  auto second = mw.Execute("select  *\n FROM   t   WHERE  (v < 100)");
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->source, rewrite::QueryResponse::Source::kClientCache);
  EXPECT_EQ(mw.stats().dbms_executions, 1u);
}

TEST_F(MiddlewareTest, FormattingVariantTemplatesShareHandleAndCache) {
  Middleware mw(&engine_, {});
  auto h1 = mw.Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  auto h2 = mw.Prepare("select COUNT( * ) AS c from t where (v < ${cut})");
  ASSERT_TRUE(h1.ok()) << h1.status();
  ASSERT_TRUE(h2.ok()) << h2.status();
  EXPECT_EQ(*h1, *h2);

  rewrite::QueryRequest request;
  request.handle = *h1;
  request.params = {{"cut", expr::EvalValue::Number(250)}};
  auto a = mw.Submit(request)->Await();
  ASSERT_TRUE(a.ok()) << a.status();
  request.handle = *h2;
  auto b = mw.Submit(request)->Await();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(b->source, rewrite::QueryResponse::Source::kClientCache);
  // Different binding -> different cache key -> DBMS again.
  request.params = {{"cut", expr::EvalValue::Number(300)}};
  auto c = mw.Submit(request)->Await();
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->source, rewrite::QueryResponse::Source::kDbms);
  EXPECT_EQ(mw.stats().dbms_executions, 2u);
}

// Custom QueryService implementations provide only Prepare/Submit (the
// session API). The deprecated Execute(sql) shim in the base class forwards
// string queries through that same pair — there is no separate synchronous
// execution path to implement or maintain.
class ForwardingService : public rewrite::QueryService {
 public:
  explicit ForwardingService(Middleware* inner) : inner_(inner) {}
  Result<rewrite::PreparedHandle> Prepare(const std::string& sql_template) override {
    ++prepares_;
    last_template_ = sql_template;
    return inner_->Prepare(sql_template);
  }
  rewrite::QueryTicketPtr Submit(const rewrite::QueryRequest& request) override {
    ++submits_;
    return inner_->Submit(request);
  }
  int prepares() const { return prepares_; }
  int submits() const { return submits_; }
  const std::string& last_template() const { return last_template_; }

 private:
  Middleware* inner_;
  int prepares_ = 0;
  int submits_ = 0;
  std::string last_template_;
};

TEST_F(MiddlewareTest, SessionApiIsTheOnlyExecutionPath) {
  Middleware mw(&engine_, {});
  ForwardingService service(&mw);
  // VDTs drive Prepare/Submit directly.
  rewrite::VdtOp vdt("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}", {}, &service);
  expr::MapSignalResolver signals;
  signals.Set("cut", expr::EvalValue::Number(42));
  auto result = vdt.Evaluate(nullptr, signals);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(service.last_template(), "SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  EXPECT_GE(service.prepares(), 1);
  EXPECT_GE(service.submits(), 1);
  ASSERT_NE(result->table, nullptr);
  EXPECT_EQ(result->table->num_rows(), 1u);
  EXPECT_DOUBLE_EQ(result->table->column(0).NumericAt(0), 42.0);

  // The deprecated string shim routes through the same front door: its call
  // shows up as one more Prepare + Submit on the implementation, proving no
  // duplicate sync path exists.
  const int prepares_before = service.prepares();
  const int submits_before = service.submits();
  auto shim = service.Execute("SELECT COUNT(*) AS c FROM t");
  ASSERT_TRUE(shim.ok()) << shim.status();
  EXPECT_EQ(service.prepares(), prepares_before + 1);
  EXPECT_EQ(service.submits(), submits_before + 1);
  EXPECT_EQ(service.last_template(), "SELECT COUNT(*) AS c FROM t");
  ASSERT_NE(shim->table, nullptr);
  EXPECT_EQ(shim->table->num_rows(), 1u);
}

// Regression (ROADMAP "Bounded prepared-statement registry"): legacy
// Session::Execute clients issuing distinct literal-inlined SQL used to grow
// the registry without bound. Ad-hoc statements are now transient and
// LRU-evicted past the cap, while handles from the public Prepare surface
// are pinned and keep working through arbitrary churn.
TEST_F(MiddlewareTest, StatementRegistryBoundedUnderAdHocChurn) {
  MiddlewareOptions options;
  options.max_prepared_statements = 32;
  // Small caches so result caching is irrelevant to the registry behavior.
  options.cache_capacity = 4;
  Middleware mw(&engine_, options);
  auto session = mw.CreateSession();

  // A long-lived parameterized dashboard statement, prepared up front.
  auto pinned = session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  ASSERT_TRUE(pinned.ok()) << pinned.status();

  for (int i = 0; i < 10000; ++i) {
    auto response =
        session->Execute("SELECT COUNT(*) AS c FROM t WHERE v < " + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->table->num_rows(), 1u);
  }
  EXPECT_LE(mw.registry_size(), options.max_prepared_statements);
  EXPECT_EQ(mw.stats().prepared_statements, 10001u);  // cumulative, distinct

  // The pinned handle survived 10k evictions' worth of churn.
  rewrite::QueryRequest request;
  request.handle = *pinned;
  request.params = {{"cut", expr::EvalValue::Number(123)}};
  auto response = mw.Submit(request)->Await();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_DOUBLE_EQ(response->table->column(0).NumericAt(0), 123.0);

  // Re-preparing a formatting variant still dedupes onto the pinned handle.
  auto again = session->Prepare("select COUNT( * ) AS c from t where (v < ${cut})");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *pinned);
}

// Regression (ROADMAP "explicit Release(handle) surface"): a released public
// Prepare handle no longer pins its statement — ad-hoc churn can evict it,
// after which the handle fails loudly instead of silently rebinding — while
// an unreleased handle keeps working through the same churn.
TEST_F(MiddlewareTest, ReleasedHandleUnpinsAndLiveHandleNeverRebinds) {
  MiddlewareOptions options;
  options.max_prepared_statements = 16;
  options.cache_capacity = 4;
  Middleware mw(&engine_, options);
  auto session = mw.CreateSession();

  auto released = session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  auto kept = session->Prepare("SELECT SUM(v) AS s FROM t WHERE v < ${cut}");
  ASSERT_TRUE(released.ok()) << released.status();
  ASSERT_TRUE(kept.ok()) << kept.status();

  // Releasing while the registry is under its cap: the statement stays
  // resident, so the handle still resolves.
  mw.Release(*released);
  rewrite::QueryRequest request;
  request.handle = *released;
  request.params = {{"cut", expr::EvalValue::Number(7)}};
  auto before = mw.Submit(request)->Await();
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_DOUBLE_EQ(before->table->column(0).NumericAt(0), 7.0);

  // Churn well past the cap: the released entry is now evictable and goes.
  for (int i = 0; i < 200; ++i) {
    auto response =
        session->Execute("SELECT COUNT(*) AS c FROM t WHERE v < " + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status();
  }
  EXPECT_LE(mw.registry_size(), options.max_prepared_statements + 1);  // +1 pinned

  auto after = mw.Submit(request)->Await();
  EXPECT_FALSE(after.ok());  // dead handle fails loudly, never rebinds

  // The unreleased handle survived the same churn untouched.
  request.handle = *kept;
  auto live = mw.Submit(request)->Await();
  ASSERT_TRUE(live.ok()) << live.status();

  // Releasing an unknown/already-released handle is a harmless no-op.
  mw.Release(*released);
  mw.Release(999999);

  // Re-preparing the released template registers it afresh under a new
  // handle (handles are never reused).
  auto reprepared = session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  ASSERT_TRUE(reprepared.ok());
  EXPECT_NE(*reprepared, *released);
}

// Pins stack: formatting variants of one template dedupe onto a single
// handle, and one client's Release must not strand the other client's live
// handle — only the last Release unpins.
TEST_F(MiddlewareTest, DedupedPrepareSurvivesOneRelease) {
  MiddlewareOptions options;
  options.max_prepared_statements = 8;
  options.cache_capacity = 4;
  Middleware mw(&engine_, options);
  auto session = mw.CreateSession();

  auto a = session->Prepare("SELECT COUNT(*) AS c FROM t WHERE v < ${cut}");
  auto b = session->Prepare("select COUNT( * ) AS c from t where (v < ${cut})");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(*a, *b);  // deduped: two pins on one entry

  auto churn = [&] {
    for (int i = 0; i < 100; ++i) {
      auto response = session->Execute("SELECT COUNT(*) AS c FROM t WHERE v < " +
                                       std::to_string(i));
      ASSERT_TRUE(response.ok()) << response.status();
    }
  };
  rewrite::QueryRequest request;
  request.handle = *a;
  request.params = {{"cut", expr::EvalValue::Number(5)}};

  mw.Release(*a);  // one of two pins: still pinned
  churn();
  auto still_live = mw.Submit(request)->Await();
  ASSERT_TRUE(still_live.ok()) << still_live.status();

  mw.Release(*b);  // last pin: now evictable
  churn();
  auto dead = mw.Submit(request)->Await();
  EXPECT_FALSE(dead.ok());
}

TEST_F(MiddlewareTest, BinaryEncodingCheaperThanJson) {
  MiddlewareOptions binary;
  MiddlewareOptions json_opts;
  json_opts.binary_encoding = false;
  Middleware mw_bin(&engine_, binary);
  Middleware mw_json(&engine_, json_opts);
  auto b = mw_bin.Execute("SELECT * FROM t");
  auto j = mw_json.Execute("SELECT * FROM t");
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(j.ok());
  EXPECT_LT(b->bytes, j->bytes);
  EXPECT_LT(b->latency_millis, j->latency_millis);
}

// Fleet stats are monotone across session churn: a dropped session's
// counters are folded into the retired-sessions accumulator, never lost.
TEST_F(MiddlewareTest, RetiredSessionStatsFoldIntoAggregate) {
  Middleware mw(&engine_, {});
  size_t last_queries = 0;
  for (int i = 0; i < 100; ++i) {
    {
      auto session = mw.CreateSession();
      // Distinct literal per iteration: every query really runs.
      auto r = session->Execute("SELECT COUNT(*) AS c FROM t WHERE v < " +
                                std::to_string(i + 1));
      ASSERT_TRUE(r.ok()) << r.status();
    }  // session dropped here; its stats must survive
    Middleware::Stats s = mw.stats();
    ASSERT_GE(s.queries, last_queries) << "aggregate went backwards at " << i;
    last_queries = s.queries;
  }
  Middleware::Stats s = mw.stats();
  EXPECT_EQ(s.queries, 100u);
  EXPECT_EQ(s.submitted, 100u);
  EXPECT_EQ(s.dbms_executions, 100u);
  EXPECT_EQ(s.sessions, 101u);  // 100 churned + the implicit default session
}

TEST(LatencyModelTest, Monotonicity) {
  LatencyParams p;
  EXPECT_GT(ServerComputeMillis(1000000, 3, p), ServerComputeMillis(1000, 3, p));
  EXPECT_GT(ClientComputeMillis(1000, 2, p), ServerComputeMillis(1000, 2, p) -
                                                 p.per_query_overhead_ms);
  EXPECT_GT(TransferMillis(1 << 20, true, p), p.round_trip_ms);
  EXPECT_GT(TransferMillis(1 << 20, false, p), TransferMillis(1 << 20, true, p));
}

TEST(BaselineTest, VegaFusionBeatsVegaAtScaleOnInit) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "flights",
                                     30000, 21);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  std::map<std::string, data::TablePtr> tables{{bc->dataset.name, bc->dataset.table}};

  VegaBaselineExecutor vega(bc->spec, tables);
  auto vega_init = vega.Initialize();
  ASSERT_TRUE(vega_init.ok()) << vega_init.status();

  VegaFusionBaselineExecutor fusion(bc->spec, &engine, {});
  auto fusion_init = fusion.Initialize();
  ASSERT_TRUE(fusion_init.ok()) << fusion_init.status();

  // Histogram aggregates to a handful of rows server-side; full pushdown
  // must beat shipping + binning 30k rows in the "browser".
  EXPECT_LT(fusion_init->total_ms, vega_init->total_ms);
}

TEST(BaselineTest, BaselinesAgreeOnVisualizationData) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kOverviewDetail, "taxis", 4000, 33);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  std::map<std::string, data::TablePtr> tables{{bc->dataset.name, bc->dataset.table}};

  VegaBaselineExecutor vega(bc->spec, tables);
  ASSERT_TRUE(vega.Initialize().ok());
  VegaFusionBaselineExecutor fusion(bc->spec, &engine, {});
  ASSERT_TRUE(fusion.Initialize().ok());

  benchdata::WorkloadGenerator workload(bc->spec, 5);
  for (int i = 0; i < 4; ++i) {
    auto interaction = workload.Next();
    ASSERT_TRUE(vega.Interact(interaction.updates).ok()) << interaction.description;
    ASSERT_TRUE(fusion.Interact(interaction.updates).ok()) << interaction.description;
  }
  for (const auto& m : bc->spec.marks) {
    data::TablePtr a = vega.EntryOutput(m.from_data);
    data::TablePtr b = fusion.EntryOutput(m.from_data);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->num_rows(), b->num_rows()) << m.from_data;
  }
}

TEST(PlanExecutorTest, InteractBeforeInitializeFails) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "movies", 500, 2);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  PlanExecutor executor(bc->spec, &engine, {});
  EXPECT_FALSE(executor.Interact({{"maxbins", expr::EvalValue::Number(7)}}).ok());
}

TEST(PlanExecutorTest, CachesMakeRepeatInteractionsCheaper) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "flights",
                                     20000, 77);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  PlanExecutor executor(bc->spec, &engine, {});
  rewrite::PlanBuilder builder(bc->spec);
  ASSERT_TRUE(executor.Initialize(builder.FullPushdownPlan()).ok());
  std::vector<SignalUpdate> u1{{"maxbins", expr::EvalValue::Number(30)}};
  std::vector<SignalUpdate> u2{{"maxbins", expr::EvalValue::Number(10)}};
  auto first = executor.Interact(u1);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(executor.Interact(u2).ok());
  auto repeat = executor.Interact(u1);  // identical query -> client cache
  ASSERT_TRUE(repeat.ok());
  EXPECT_LT(repeat->external_ms, first->external_ms);
}

}  // namespace
}  // namespace runtime
}  // namespace vegaplus
