#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "benchdata/templates.h"
#include "benchdata/workload.h"
#include "optimizer/comparator.h"
#include "optimizer/labeler.h"
#include "optimizer/trainer.h"
#include "plan/encoder.h"

namespace vegaplus {
namespace optimizer {
namespace {

using benchdata::TemplateId;

// A vector with the given (count_vdt, card_vdt, count_aggregate) features.
std::vector<double> FakeVector(double vdt_count, double vdt_card, double agg_count) {
  std::vector<double> v(2 * plan::EncodedOpTypes().size(), 0.0);
  v[static_cast<size_t>(plan::CountFeatureIndex("vdt"))] = vdt_count;
  v[static_cast<size_t>(plan::CardFeatureIndex("vdt"))] = vdt_card;
  v[static_cast<size_t>(plan::CountFeatureIndex("aggregate"))] = agg_count;
  return v;
}

TEST(HeuristicComparatorTest, RulePriorities) {
  HeuristicComparator h(0.1);
  // Rule 1: much smaller fetched cardinality wins.
  EXPECT_LT(h.Compare(FakeVector(1, 0.1, 0), FakeVector(1, 0.9, 0)), 0);
  EXPECT_GT(h.Compare(FakeVector(1, 0.9, 0), FakeVector(1, 0.1, 0)), 0);
  // Within alpha: rule 2 (more client aggregation) decides.
  EXPECT_LT(h.Compare(FakeVector(1, 0.50, 2), FakeVector(1, 0.55, 1)), 0);
  // Tie on both: rule 3 (fewer round trips).
  EXPECT_LT(h.Compare(FakeVector(1, 0.5, 1), FakeVector(3, 0.5, 1)), 0);
  // Full tie.
  EXPECT_EQ(h.Compare(FakeVector(1, 0.5, 1), FakeVector(1, 0.5, 1)), 0);
}

TEST(RandomComparatorTest, RoughlyBalanced) {
  RandomComparator r(5);
  int a_wins = 0;
  auto va = FakeVector(1, 0.2, 1);
  auto vb = FakeVector(2, 0.8, 0);
  for (int i = 0; i < 1000; ++i) {
    if (r.Compare(va, vb) < 0) ++a_wins;
  }
  EXPECT_GT(a_wins, 400);
  EXPECT_LT(a_wins, 600);
}

TEST(SelectBestPlanTest, CostModelPicksArgmin) {
  ml::RankSvm svm;
  // Hand-crafted weights: only card_vdt matters, higher card -> slower.
  std::vector<ml::PairExample> pairs;
  for (double gap = 0.1; gap < 0.9; gap += 0.1) {
    pairs.push_back({FakeVector(1, 0.0, 0), FakeVector(1, gap, 0), 1});
  }
  svm.Train(pairs);
  RankSvmComparator comparator(std::move(svm));
  std::vector<std::vector<double>> vectors{FakeVector(1, 0.9, 0), FakeVector(1, 0.1, 0),
                                           FakeVector(1, 0.5, 0)};
  EXPECT_EQ(SelectBestPlan(comparator, vectors), 1u);
}

TEST(ConsolidationTest, CostModelIsMagnitudeAware) {
  // Two plans over three episodes. Plan 0 wins two cheap episodes narrowly;
  // plan 1 wins one expensive episode massively. A cost model must pick
  // plan 1; win counting (heuristic-style) picks plan 0 — the §7.4 story.
  struct FixedCost : PlanComparator {
    std::string name() const override { return "fixed"; }
    int Compare(const std::vector<double>& a,
                const std::vector<double>& b) const override {
      return a[0] < b[0] ? -1 : (a[0] > b[0] ? 1 : 0);
    }
    bool has_cost() const override { return true; }
    double Cost(const std::vector<double>& v) const override { return v[0]; }
  };
  struct WinCount : FixedCost {
    bool has_cost() const override { return false; }
    double EpisodeCost(const std::vector<std::vector<double>>& all,
                       size_t index) const override {
      size_t wins = 0;
      for (size_t j = 0; j < all.size(); ++j) {
        if (j != index && Compare(all[index], all[j]) < 0) ++wins;
      }
      return -static_cast<double>(wins);
    }
  };
  std::vector<EpisodeRecord> episodes(3);
  episodes[0].vectors = {{1.0}, {2.0}};      // plan0 wins by 1
  episodes[1].vectors = {{1.0}, {2.0}};      // plan0 wins by 1
  episodes[2].vectors = {{1000.0}, {10.0}};  // plan1 wins by 990
  EXPECT_EQ(ConsolidateSession(FixedCost(), episodes), 1u);
  EXPECT_EQ(ConsolidateSession(WinCount(), episodes), 0u);
}

TEST(ConsolidationTest, EpisodeWeightsApply) {
  struct FixedCost : PlanComparator {
    std::string name() const override { return "fixed"; }
    int Compare(const std::vector<double>& a,
                const std::vector<double>& b) const override {
      return a[0] < b[0] ? -1 : 1;
    }
    bool has_cost() const override { return true; }
    double Cost(const std::vector<double>& v) const override { return v[0]; }
  };
  std::vector<EpisodeRecord> episodes(2);
  episodes[0].vectors = {{10.0}, {1.0}};  // plan1 better at init
  episodes[1].vectors = {{1.0}, {5.0}};   // plan0 better at interaction
  // Equal weights: totals 11 vs 6 -> plan 1.
  EXPECT_EQ(ConsolidateSession(FixedCost(), episodes), 1u);
  // Downweight initial rendering (§5.4): totals 1.1+1=2.1 vs 0.1+5=5.1 -> plan 0.
  EXPECT_EQ(ConsolidateSession(FixedCost(), episodes, {0.1, 1.0}), 0u);
}

// ---- Labeler correctness: composed labels vs real execution ----

TEST(SessionLabelerTest, LabelsMatchRealPlanExecution) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "flights",
                                     8000, 50);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);

  rewrite::PlanBuilder builder(bc->spec);
  auto enumeration = plan::EnumeratePlans(builder);
  SessionLabeler labeler(bc->spec, &engine);
  ASSERT_TRUE(labeler.Start().ok());
  auto labels = labeler.LabelEpisode(enumeration.plans);
  ASSERT_TRUE(labels.ok()) << labels.status();

  // Real executions with caches off (cold semantics, like the labels).
  runtime::MiddlewareOptions cold;
  cold.enable_client_cache = false;
  cold.enable_server_cache = false;
  for (size_t i = 0; i < enumeration.plans.size(); ++i) {
    runtime::PlanExecutor executor(bc->spec, &engine, cold);
    auto cost = executor.Initialize(enumeration.plans[i]);
    ASSERT_TRUE(cost.ok());
    double real = cost->total_ms;
    double label = (*labels)[i];
    EXPECT_NEAR(label, real, 0.25 * real + 2.0)
        << "plan " << enumeration.plans[i].Key();
  }
  // Crucially, the *ranking* must agree on the extremes.
  size_t label_best = static_cast<size_t>(
      std::min_element(labels->begin(), labels->end()) - labels->begin());
  runtime::PlanExecutor best_exec(bc->spec, &engine, cold);
  auto best_cost = best_exec.Initialize(enumeration.plans[label_best]);
  ASSERT_TRUE(best_cost.ok());
  for (size_t i = 0; i < enumeration.plans.size(); ++i) {
    if (i == label_best) continue;
    runtime::PlanExecutor other(bc->spec, &engine, cold);
    auto other_cost = other.Initialize(enumeration.plans[i]);
    ASSERT_TRUE(other_cost.ok());
    EXPECT_LE(best_cost->total_ms, other_cost->total_ms * 1.3);
  }
}

TEST(SessionLabelerTest, InteractionEpisodesAreCheaperThanInitial) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kCrossfilter, "flights", 6000, 51);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  rewrite::PlanBuilder builder(bc->spec);
  auto enumeration = plan::EnumeratePlans(builder, 64, 9);
  SessionLabeler labeler(bc->spec, &engine);
  ASSERT_TRUE(labeler.Start().ok());
  auto initial = labeler.LabelEpisode(enumeration.plans);
  ASSERT_TRUE(initial.ok());

  benchdata::WorkloadGenerator workload(bc->spec, 13);
  auto interaction = workload.Next();
  ASSERT_TRUE(labeler.ApplyInteraction(interaction.updates).ok());
  EXPECT_FALSE(labeler.UpdatedSignals().empty());
  auto update = labeler.LabelEpisode(enumeration.plans);
  ASSERT_TRUE(update.ok());

  // A brush re-evaluates only the affected pipelines; gray layers stay put.
  double init_mean = std::accumulate(initial->begin(), initial->end(), 0.0) /
                     static_cast<double>(initial->size());
  double update_mean = std::accumulate(update->begin(), update->end(), 0.0) /
                       static_cast<double>(update->size());
  EXPECT_LT(update_mean, init_mean);
}

TEST(EpisodeCollectorTest, VectorsAndLabelsAligned) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "taxis",
                                     5000, 52);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  EpisodeCollector collector(bc->spec, &engine);
  ASSERT_TRUE(collector.Start().ok());
  auto initial = collector.Collect();
  ASSERT_TRUE(initial.ok()) << initial.status();
  EXPECT_TRUE(initial->is_initial);
  EXPECT_EQ(initial->vectors.size(), collector.plans().size());
  EXPECT_EQ(initial->latencies_ms.size(), collector.plans().size());

  benchdata::WorkloadGenerator workload(bc->spec, 3);
  ASSERT_TRUE(collector.ApplyInteraction(workload.Next().updates).ok());
  auto ep = collector.Collect();
  ASSERT_TRUE(ep.ok());
  EXPECT_FALSE(ep->is_initial);
}

TEST(EpisodeCollectorTest, TrainedModelsBeatRandom) {
  // End-to-end §7.3 in miniature: collect episodes, train, measure accuracy.
  auto bc = benchdata::MakeBenchCase(TemplateId::kOverviewDetail, "flights", 6000, 53);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  EpisodeCollector collector(bc->spec, &engine);
  ASSERT_TRUE(collector.Start().ok());
  std::vector<EpisodeRecord> episodes;
  auto initial = collector.Collect();
  ASSERT_TRUE(initial.ok());
  episodes.push_back(*initial);
  benchdata::WorkloadGenerator workload(bc->spec, 4);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(collector.ApplyInteraction(workload.Next().updates).ok());
    auto ep = collector.Collect();
    ASSERT_TRUE(ep.ok());
    episodes.push_back(*ep);
  }
  auto pairs = MakePairs(episodes, 6000, 1);
  ASSERT_GT(pairs.size(), 100u);
  std::vector<ml::PairExample> train, test;
  ml::TrainTestSplit(pairs, 0.6, 2, &train, &test);
  ml::RankSvm svm;
  svm.Train(train);
  ml::RandomForest forest;
  forest.Train(train);
  double svm_acc = ml::PairwiseAccuracy(svm, test);
  double forest_acc = ml::PairwiseAccuracy(forest, test);
  EXPECT_GT(svm_acc, 0.62) << "RankSVM barely better than random";
  EXPECT_GT(forest_acc, 0.68) << "forest barely better than random";
}

TEST(MakePairsTest, LabelsOrientedByLatency) {
  EpisodeRecord ep;
  ep.vectors = {{1.0}, {2.0}};
  ep.latencies_ms = {10.0, 5.0};
  auto pairs = MakePairs({ep}, 100, 1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].label, -1);  // first plan slower
  // Ties are dropped.
  ep.latencies_ms = {7.0, 7.0};
  EXPECT_TRUE(MakePairs({ep}, 100, 1).empty());
}

}  // namespace
}  // namespace optimizer
}  // namespace vegaplus
