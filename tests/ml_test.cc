#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "ml/random_forest.h"
#include "ml/ranksvm.h"

namespace vegaplus {
namespace ml {
namespace {

// Synthetic ranking problem: latency = 3*x0 + 1*x1 (+noise); a pair is
// labeled by which side has lower latency.
std::vector<PairExample> LinearPairs(size_t n, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<PairExample> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> a{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    std::vector<double> b{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    double la = 3 * a[0] + a[1] + noise * rng.Normal();
    double lb = 3 * b[0] + b[1] + noise * rng.Normal();
    if (la == lb) continue;
    pairs.push_back({a, b, la < lb ? 1 : -1});
  }
  return pairs;
}

// Non-linear problem: the winner is an XOR of the two feature differences —
// representable by a depth-2 tree, provably not by any linear ranker.
std::vector<PairExample> NonLinearPairs(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<PairExample> pairs;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> a{rng.NextDouble(), rng.NextDouble()};
    std::vector<double> b{rng.NextDouble(), rng.NextDouble()};
    double d0 = a[0] - b[0];
    double d1 = a[1] - b[1];
    if (d0 == 0 || d1 == 0) continue;
    pairs.push_back({a, b, (d0 > 0) != (d1 > 0) ? 1 : -1});
  }
  return pairs;
}

TEST(RankSvmTest, LearnsLinearRanking) {
  auto train = LinearPairs(3000, 0.0, 1);
  auto test = LinearPairs(800, 0.0, 2);
  RankSvm model;
  model.Train(train);
  EXPECT_GT(PairwiseAccuracy(model, test), 0.95);
}

TEST(RankSvmTest, RobustToLabelNoise) {
  auto train = LinearPairs(3000, 0.3, 3);
  auto test = LinearPairs(800, 0.0, 4);
  RankSvm model;
  model.Train(train);
  EXPECT_GT(PairwiseAccuracy(model, test), 0.85);
}

TEST(RankSvmTest, WeightsReflectFeatureImportance) {
  auto train = LinearPairs(4000, 0.0, 5);
  RankSvm model;
  model.Train(train);
  // Latency rises with x0 strongest; "faster" margin should weight x0
  // most strongly (negatively, since higher x0 = slower).
  ASSERT_EQ(model.weights().size(), 3u);
  EXPECT_LT(model.weights()[0], 0);
  EXPECT_GT(std::fabs(model.weights()[0]), std::fabs(model.weights()[1]));
  EXPECT_GT(std::fabs(model.weights()[1]), std::fabs(model.weights()[2]) - 0.05);
}

TEST(RankSvmTest, CostConsistentWithCompare) {
  auto train = LinearPairs(2000, 0.0, 6);
  RankSvm model;
  model.Train(train);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> a{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    std::vector<double> b{rng.NextDouble(), rng.NextDouble(), rng.NextDouble()};
    int cmp = model.Compare(a, b);
    if (cmp == 0) continue;
    EXPECT_EQ(cmp < 0, model.Cost(a) < model.Cost(b));
  }
}

TEST(RankSvmTest, DeterministicAcrossRuns) {
  auto train = LinearPairs(500, 0.1, 8);
  RankSvm m1, m2;
  m1.Train(train);
  m2.Train(train);
  EXPECT_EQ(m1.weights(), m2.weights());
}

TEST(RankSvmTest, EmptyTrainingIsSafe) {
  RankSvm model;
  model.Train({});
  EXPECT_EQ(model.Compare({1.0}, {2.0}), 0);
}

TEST(DecisionTreeTest, SeparatesSimpleThreshold) {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    double v = rng.NextDouble();
    x.push_back({v, rng.NextDouble()});
    y.push_back(v > 0.5 ? 1 : 0);
  }
  DecisionTree tree;
  tree.Train(x, y);
  EXPECT_EQ(tree.Predict({0.9, 0.1}), 1);
  EXPECT_EQ(tree.Predict({0.1, 0.9}), 0);
  // Importance concentrated on feature 0.
  EXPECT_GT(tree.feature_importance()[0], tree.feature_importance()[1]);
}

TEST(RandomForestTest, LearnsLinearRanking) {
  auto train = LinearPairs(3000, 0.0, 10);
  auto test = LinearPairs(800, 0.0, 11);
  RandomForest model;
  model.Train(train);
  EXPECT_GT(PairwiseAccuracy(model, test), 0.9);
}

TEST(RandomForestTest, BeatsLinearModelOnNonLinearProblem) {
  auto train = NonLinearPairs(4000, 12);
  auto test = NonLinearPairs(1000, 13);
  RandomForest forest;
  forest.Train(train);
  RankSvm svm;
  svm.Train(train);
  double forest_acc = PairwiseAccuracy(forest, test);
  double svm_acc = PairwiseAccuracy(svm, test);
  EXPECT_GT(forest_acc, svm_acc + 0.1)
      << "forest " << forest_acc << " vs svm " << svm_acc;
}

TEST(RandomForestTest, ProbabilityOrdersByGap) {
  auto train = LinearPairs(3000, 0.0, 14);
  RandomForest model;
  model.Train(train);
  // A big latency gap should produce a more confident vote than a tiny one.
  std::vector<double> slow{0.95, 0.9, 0.5};
  std::vector<double> fast{0.05, 0.1, 0.5};
  std::vector<double> near_fast{0.10, 0.12, 0.5};
  EXPECT_GT(model.ProbabilityFaster(fast, slow), 0.9);
  EXPECT_GT(model.ProbabilityFaster(fast, slow),
            model.ProbabilityFaster(near_fast, fast));
}

TEST(RandomForestTest, FeatureImportanceSumsToOne) {
  auto train = LinearPairs(1000, 0.0, 15);
  RandomForest model;
  model.Train(train);
  auto importance = model.FeatureImportance();
  double total = 0;
  for (double v : importance) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(importance[0], importance[2]);
}

TEST(TrainTestSplitTest, PartitionsAndIsDeterministic) {
  auto all = LinearPairs(100, 0.0, 16);
  std::vector<PairExample> train1, test1, train2, test2;
  TrainTestSplit(all, 0.6, 99, &train1, &test1);
  TrainTestSplit(all, 0.6, 99, &train2, &test2);
  EXPECT_EQ(train1.size(), static_cast<size_t>(0.6 * all.size()));
  EXPECT_EQ(train1.size() + test1.size(), all.size());
  ASSERT_EQ(train1.size(), train2.size());
  for (size_t i = 0; i < train1.size(); ++i) {
    EXPECT_EQ(train1[i].label, train2[i].label);
  }
}

}  // namespace
}  // namespace ml
}  // namespace vegaplus
