#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/table.h"
#include "expr/evaluator.h"
#include "expr/functions.h"
#include "expr/parser.h"
#include "expr/sql_translator.h"

namespace vegaplus {
namespace expr {
namespace {

using data::DataType;
using data::Schema;
using data::TablePtr;
using data::Value;

TablePtr Datum(double delay, const std::string& origin) {
  Schema schema({{"delay", DataType::kFloat64}, {"origin", DataType::kString}});
  return data::MakeTable(schema, {{Value::Double(delay), Value::String(origin)}});
}

EvalValue EvalOn(const std::string& text, const TablePtr& table,
                 const MapSignalResolver* signals = nullptr) {
  auto parsed = ParseExpression(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << " for " << text;
  if (!parsed.ok()) return EvalValue::Null();
  EXPECT_TRUE(Validate(*parsed).ok()) << text;
  EvalContext ctx;
  ctx.table = table.get();
  ctx.row = 0;
  ctx.signals = signals;
  return Evaluate(*parsed, ctx);
}

EvalValue Eval(const std::string& text) { return EvalOn(text, nullptr); }

TEST(ExprParserTest, Literals) {
  EXPECT_DOUBLE_EQ(Eval("3.5").AsDouble(), 3.5);
  EXPECT_EQ(Eval("'abc'").scalar(), Value::String("abc"));
  EXPECT_EQ(Eval("\"abc\"").scalar(), Value::String("abc"));
  EXPECT_TRUE(Eval("true").Truthy());
  EXPECT_FALSE(Eval("false").Truthy());
  EXPECT_TRUE(Eval("null").is_null());
}

TEST(ExprParserTest, Precedence) {
  EXPECT_DOUBLE_EQ(Eval("1 + 2 * 3").AsDouble(), 7.0);
  EXPECT_DOUBLE_EQ(Eval("(1 + 2) * 3").AsDouble(), 9.0);
  EXPECT_DOUBLE_EQ(Eval("2 * 3 % 4").AsDouble(), 2.0);
  EXPECT_TRUE(Eval("1 + 1 == 2 && 3 > 2").Truthy());
  EXPECT_TRUE(Eval("false || true && true").Truthy());
}

TEST(ExprParserTest, Unary) {
  EXPECT_DOUBLE_EQ(Eval("-3 + 1").AsDouble(), -2.0);
  EXPECT_TRUE(Eval("!false").Truthy());
  EXPECT_DOUBLE_EQ(Eval("--2").AsDouble(), 2.0);
}

TEST(ExprParserTest, Ternary) {
  EXPECT_DOUBLE_EQ(Eval("1 < 2 ? 10 : 20").AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(Eval("1 > 2 ? 10 : 2 > 1 ? 30 : 40").AsDouble(), 30.0);
}

TEST(ExprParserTest, ArrayLiteralAndIndex) {
  EXPECT_DOUBLE_EQ(Eval("[10, 20, 30][1]").AsDouble(), 20.0);
  EXPECT_TRUE(Eval("[1, 2][5]").is_null());
}

TEST(ExprParserTest, Errors) {
  EXPECT_FALSE(ParseExpression("").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1").ok());
  EXPECT_FALSE(ParseExpression("datum.").ok());
  EXPECT_FALSE(ParseExpression("1 2").ok());
  EXPECT_FALSE(ParseExpression("'unterminated").ok());
}

TEST(ExprValidateTest, UnknownFunctionRejected) {
  auto parsed = ParseExpression("nosuchfn(1)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(Validate(*parsed).ok());
}

TEST(ExprValidateTest, ArityChecked) {
  auto parsed = ParseExpression("pow(2)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(Validate(*parsed).ok());
}

TEST(ExprEvalTest, DatumFields) {
  TablePtr t = Datum(25.0, "SEA");
  EXPECT_TRUE(EvalOn("datum.delay > 10 && datum.delay < 30", t).Truthy());
  EXPECT_FALSE(EvalOn("datum.delay > 30", t).Truthy());
  EXPECT_TRUE(EvalOn("datum.origin == 'SEA'", t).Truthy());
  EXPECT_TRUE(EvalOn("datum['origin'] == 'SEA'", t).Truthy());
  EXPECT_TRUE(EvalOn("datum.missing", t).is_null());
}

TEST(ExprEvalTest, SignalsResolve) {
  MapSignalResolver signals;
  signals.Set("maxbins", EvalValue::Number(20));
  signals.Set("brush", EvalValue::Array({Value::Double(5), Value::Double(15)}));
  TablePtr t = Datum(10.0, "SEA");
  EXPECT_DOUBLE_EQ(EvalOn("maxbins * 2", t, &signals).AsDouble(), 40.0);
  EXPECT_DOUBLE_EQ(EvalOn("brush[1]", t, &signals).AsDouble(), 15.0);
  EXPECT_TRUE(EvalOn("inrange(datum.delay, brush)", t, &signals).Truthy());
  EXPECT_DOUBLE_EQ(EvalOn("brush.length", t, &signals).AsDouble(), 2.0);
}

TEST(ExprEvalTest, NullSemanticsMatchSql) {
  TablePtr t = Datum(1.0, "X");
  // Comparisons with null are false; arithmetic with null is null.
  EXPECT_FALSE(EvalOn("datum.missing > 0", t).Truthy());
  EXPECT_FALSE(EvalOn("datum.missing < 0", t).Truthy());
  EXPECT_TRUE(EvalOn("datum.missing + 1", t).is_null());
  // Equality with null is usable as a guard.
  EXPECT_TRUE(EvalOn("datum.missing == null", t).Truthy());
  EXPECT_TRUE(EvalOn("isValid(datum.delay)", t).Truthy());
  EXPECT_FALSE(EvalOn("isValid(datum.missing)", t).Truthy());
}

TEST(ExprEvalTest, DivisionAndModByZeroIsNull) {
  EXPECT_TRUE(Eval("1 / 0").is_null());
  EXPECT_TRUE(Eval("1 % 0").is_null());
}

TEST(ExprEvalTest, StringConcatWithPlus) {
  EXPECT_EQ(Eval("'a' + 'b'").scalar(), Value::String("ab"));
  EXPECT_EQ(Eval("'a' + 1").scalar(), Value::String("a1"));
}

TEST(ExprEvalTest, MathFunctions) {
  EXPECT_DOUBLE_EQ(Eval("abs(-3)").AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("floor(2.9)").AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(Eval("ceil(2.1)").AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("round(2.5)").AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("sqrt(16)").AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(Eval("pow(2, 10)").AsDouble(), 1024.0);
  EXPECT_DOUBLE_EQ(Eval("min(3, 1, 2)").AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Eval("max(3, 1, 2)").AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("clamp(15, 0, 10)").AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(Eval("exp(0)").AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Eval("log(exp(1))").AsDouble(), 1.0);
}

TEST(ExprEvalTest, StringFunctions) {
  EXPECT_EQ(Eval("lower('AbC')").scalar(), Value::String("abc"));
  EXPECT_EQ(Eval("upper('AbC')").scalar(), Value::String("ABC"));
  EXPECT_DOUBLE_EQ(Eval("length('abcd')").AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(Eval("indexof('hello', 'll')").AsDouble(), 2.0);
}

TEST(ExprEvalTest, DateFunctions) {
  // 2001-02-03 04:05:06 UTC
  int64_t ms = 0;
  ASSERT_TRUE(data::ParseTimestamp("2001-02-03 04:05:06", &ms));
  MapSignalResolver signals;
  signals.Set("ts", EvalValue(Value::Timestamp(ms)));
  EXPECT_DOUBLE_EQ(EvalOn("year(ts)", nullptr, &signals).AsDouble(), 2001);
  EXPECT_DOUBLE_EQ(EvalOn("month(ts)", nullptr, &signals).AsDouble(), 2);
  EXPECT_DOUBLE_EQ(EvalOn("date(ts)", nullptr, &signals).AsDouble(), 3);
  EXPECT_DOUBLE_EQ(EvalOn("hours(ts)", nullptr, &signals).AsDouble(), 4);
  EXPECT_DOUBLE_EQ(EvalOn("minutes(ts)", nullptr, &signals).AsDouble(), 5);
  EXPECT_DOUBLE_EQ(EvalOn("seconds(ts)", nullptr, &signals).AsDouble(), 6);
  // 2001-02-03 was a Saturday.
  EXPECT_DOUBLE_EQ(EvalOn("day(ts)", nullptr, &signals).AsDouble(), 6);
}

TEST(ExprFunctionsTest, TruncateAndUnitWidth) {
  int64_t ms = 0;
  ASSERT_TRUE(data::ParseTimestamp("2001-02-03 04:05:06", &ms));
  int64_t month_start = 0;
  ASSERT_TRUE(data::ParseTimestamp("2001-02-01", &month_start));
  EXPECT_EQ(TsTruncate(ms, "month"), month_start);
  EXPECT_EQ(TsUnitWidth(month_start, "month"), 28LL * 86400000LL);
  int64_t year_start = 0;
  ASSERT_TRUE(data::ParseTimestamp("2001-01-01", &year_start));
  EXPECT_EQ(TsTruncate(ms, "year"), year_start);
  EXPECT_EQ(TsUnitWidth(year_start, "year"), 365LL * 86400000LL);
  int64_t day_start = 0;
  ASSERT_TRUE(data::ParseTimestamp("2001-02-03", &day_start));
  EXPECT_EQ(TsTruncate(ms, "date"), day_start);
}

TEST(ExprAstTest, CollectReferences) {
  auto parsed = ParseExpression(
      "datum.delay > threshold && inrange(datum.dist, brush) && datum.delay < 100");
  ASSERT_TRUE(parsed.ok());
  std::vector<std::string> fields, signals;
  CollectReferences(*parsed, &fields, &signals);
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "delay");
  EXPECT_EQ(fields[1], "dist");
  ASSERT_EQ(signals.size(), 2u);
  EXPECT_EQ(signals[0], "threshold");
  EXPECT_EQ(signals[1], "brush");
}

TEST(ExprAstTest, ToStringReparses) {
  auto parsed = ParseExpression("datum.a + 1 > 2 ? abs(datum.b) : min(1, 2)");
  ASSERT_TRUE(parsed.ok());
  auto reparsed = ParseExpression(ToString(*parsed));
  ASSERT_TRUE(reparsed.ok()) << ToString(*parsed);
  EXPECT_EQ(ToString(*parsed), ToString(*reparsed));
}

// ---- SQL translation ----

TEST(SqlTranslatorTest, PaperFilterExample) {
  // The exact example from §4 of the paper.
  auto parsed = ParseExpression("datum.delay > 10 && datum.delay < 30");
  ASSERT_TRUE(parsed.ok());
  auto frag = TranslateToSql(*parsed);
  ASSERT_TRUE(frag.ok()) << frag.status();
  EXPECT_EQ(frag->text, "((delay > 10) AND (delay < 30))");
  EXPECT_TRUE(frag->signal_deps.empty());
}

TEST(SqlTranslatorTest, SignalsBecomeHoles) {
  auto parsed = ParseExpression("datum.delay > threshold");
  ASSERT_TRUE(parsed.ok());
  auto frag = TranslateToSql(*parsed);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(frag->text, "(delay > ${threshold})");
  ASSERT_EQ(frag->signal_deps.size(), 1u);
  EXPECT_EQ(frag->signal_deps[0], "threshold");
}

TEST(SqlTranslatorTest, InrangeBecomesBetween) {
  auto parsed = ParseExpression("inrange(datum.dist, brush)");
  ASSERT_TRUE(parsed.ok());
  auto frag = TranslateToSql(*parsed);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(frag->text,
            "(dist BETWEEN LEAST(${brush[0]}, ${brush[1]}) AND "
            "GREATEST(${brush[0]}, ${brush[1]}))");
}

TEST(SqlTranslatorTest, TernaryBecomesCase) {
  auto parsed = ParseExpression("datum.x > 0 ? 1 : 2");
  ASSERT_TRUE(parsed.ok());
  auto frag = TranslateToSql(*parsed);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(frag->text, "(CASE WHEN (x > 0) THEN 1 ELSE 2 END)");
}

TEST(SqlTranslatorTest, EqualityAndLogicalOperators) {
  auto parsed = ParseExpression("datum.a == 'x' || !(datum.b != 2)");
  ASSERT_TRUE(parsed.ok());
  auto frag = TranslateToSql(*parsed);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(frag->text, "((a = 'x') OR (NOT (b <> 2)))");
}

TEST(SqlTranslatorTest, UntranslatableFunctionFails) {
  auto parsed = ParseExpression("format(datum.x, '.2f') == '1.00'");
  ASSERT_TRUE(parsed.ok());
  auto frag = TranslateToSql(*parsed);
  EXPECT_FALSE(frag.ok());
  EXPECT_TRUE(frag.status().IsNotImplemented());
}

TEST(SqlTranslatorTest, QuotesWeirdIdentifiers) {
  auto parsed = ParseExpression("datum['weird col'] > 1");
  ASSERT_TRUE(parsed.ok());
  auto frag = TranslateToSql(*parsed);
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(frag->text, "(\"weird col\" > 1)");
}

TEST(SqlTranslatorTest, StringLiteralEscaping) {
  EXPECT_EQ(SqlLiteral(data::Value::String("o'brien")), "'o''brien'");
  EXPECT_EQ(SqlLiteral(data::Value::Null()), "NULL");
  EXPECT_EQ(SqlLiteral(data::Value::Bool(true)), "TRUE");
}

TEST(FillSqlHolesTest, ScalarAndIndexedHoles) {
  MapSignalResolver signals;
  signals.Set("threshold", EvalValue::Number(12.5));
  signals.Set("brush", EvalValue::Array({Value::Double(1), Value::Double(9)}));
  auto filled = FillSqlHoles("delay > ${threshold} AND x BETWEEN ${brush[0]} AND ${brush[1]}",
                             signals);
  ASSERT_TRUE(filled.ok()) << filled.status();
  EXPECT_EQ(*filled, "delay > 12.5 AND x BETWEEN 1 AND 9");
}

TEST(FillSqlHolesTest, StringSignalQuoted) {
  MapSignalResolver signals;
  signals.Set("field", EvalValue::String("it's"));
  auto filled = FillSqlHoles("f = ${field}", signals);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(*filled, "f = 'it''s'");
}

TEST(FillSqlHolesTest, Errors) {
  MapSignalResolver signals;
  signals.Set("arr", EvalValue::Array({Value::Double(1)}));
  EXPECT_FALSE(FillSqlHoles("x = ${missing}", signals).ok());
  EXPECT_FALSE(FillSqlHoles("x = ${arr}", signals).ok());       // array without index
  EXPECT_FALSE(FillSqlHoles("x = ${arr[", signals).ok());       // malformed
}

TEST(CollectHolesTest, FindsDistinctNames) {
  auto holes = CollectHoles("a ${x} b ${y[0]} c ${x}");
  ASSERT_EQ(holes.size(), 2u);
  EXPECT_EQ(holes[0], "x");
  EXPECT_EQ(holes[1], "y");
}

}  // namespace
}  // namespace expr
}  // namespace vegaplus
