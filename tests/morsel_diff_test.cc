// Differential suite for morsel-driven parallel execution: the expression
// corpus and a group-by/filter query set run both single-threaded and
// morsel-parallel (small morsels, so even modest tables span many morsels),
// and the results must be bit-identical — same registers, same selection
// vectors, same tables, at every parallelism level. Registered under both
// the `differential` and `concurrency` ctest labels so the TSan CI job
// exercises the parallel paths.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.h"
#include "data/table.h"
#include "expr/batch_eval.h"
#include "expr/compiler.h"
#include "expr/parser.h"
#include "expr_corpus_test_util.h"
#include "sql/engine.h"
#include "transforms/transforms.h"

namespace vegaplus {
namespace {

using data::TablePtr;
using data::Value;
using testutil::SameCell;

/// Pin the morsel configuration for one test and restore defaults after.
/// Small odd morsels + forced parallelism make even small tables span many
/// morsels with short boundary chunks, on any machine (including 1-core CI).
class MorselConfigGuard {
 public:
  MorselConfigGuard(size_t morsel_rows, size_t threads)
      : saved_rows_(parallel::MorselRows()),
        saved_enabled_(parallel::MorselParallelEnabled()) {
    parallel::SetMorselRows(morsel_rows);
    parallel::SetMorselParallelism(threads);
    parallel::SetMorselParallelEnabled(true);
  }
  ~MorselConfigGuard() {
    parallel::SetMorselParallelEnabled(saved_enabled_);
    parallel::SetMorselParallelism(0);  // 0 = hardware default (no getter for
                                        // the raw setting; tests always run
                                        // from the default)
    parallel::SetMorselRows(saved_rows_);
  }

 private:
  size_t saved_rows_;
  bool saved_enabled_;
};

TEST(MorselDiffTest, CorpusRegistersMatchSingleThreaded) {
  MorselConfigGuard guard(/*morsel_rows=*/257, /*threads=*/4);
  TablePtr table = testutil::MakeRandomExprTable(7, /*rows=*/2000);
  size_t compiled = 0;
  for (const std::string& text : testutil::BuildExprCorpus()) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text << ": " << parsed.status();
    auto program = expr::Compiler::Compile(*parsed, table->schema());
    if (!program) continue;  // scalar-only: no morsel path to compare
    ++compiled;
    expr::Vec single = expr::BatchEvaluator(*table).Run(*program);
    expr::Vec morsel = expr::RunMorselParallel(*table, *program);
    ASSERT_EQ(morsel.kind, single.kind) << text;
    ASSERT_EQ(morsel.is_const, single.is_const) << text;
    for (size_t r = 0; r < table->num_rows(); ++r) {
      ASSERT_TRUE(SameCell(single.CellValue(r), morsel.CellValue(r)))
          << text << " row " << r
          << ": single=" << single.CellValue(r).ToString()
          << " morsel=" << morsel.CellValue(r).ToString();
    }
  }
  EXPECT_GT(compiled, 1000u);  // the corpus is mostly vectorizable
}

TEST(MorselDiffTest, FilterSelectionsMatchSingleThreaded) {
  MorselConfigGuard guard(/*morsel_rows=*/311, /*threads=*/4);
  TablePtr table = testutil::MakeRandomExprTable(23, /*rows=*/5000);
  const char* predicates[] = {
      "datum.dd > 0",                      // fused fast path per morsel
      "datum.ii != 4",                     // fused inequality, nulls included
      "datum.bb",                          // bare truthiness
      "datum.ss == 'mid'",
      "datum.dd > -10 && datum.ii <= 5",   // compound, CSE registers
      "!(datum.dd <= 0 || datum.bb)",
      "isValid(datum.dd) && datum.dd * 2 < 40",
  };
  for (const char* text : predicates) {
    auto parsed = expr::ParseExpression(text);
    ASSERT_TRUE(parsed.ok()) << text;
    auto program = expr::Compiler::Compile(*parsed, table->schema());
    ASSERT_TRUE(program.has_value()) << text;
    std::vector<int32_t> single, morsel;
    expr::BatchEvaluator(*table).RunFilter(*program, &single);
    expr::RunFilterMorselParallel(*table, *program, &morsel);
    EXPECT_EQ(morsel, single) << text;
  }
}

class MorselQueryDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = testutil::MakeRandomExprTable(31, /*rows=*/30000);
    engine_.RegisterTable("t", table_);
  }

  data::TablePtr Run(const char* sql) {
    auto result = engine_.Query(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? result->table : nullptr;
  }

  TablePtr table_;
  sql::Engine engine_;
};

const char* kQueries[] = {
    "SELECT * FROM t WHERE dd > 0",
    "SELECT dd * 2 + ii AS x, ss FROM t WHERE ii != 4",
    "SELECT ii, COUNT(*) AS n, SUM(dd) AS s, AVG(dd) AS a FROM t GROUP BY ii "
    "ORDER BY ii",
    "SELECT ss, MIN(dd) AS lo, MAX(dd) AS hi, MEDIAN(dd) AS med, "
    "STDDEV(dd) AS sd FROM t GROUP BY ss ORDER BY ss",
    "SELECT ss, COUNT(*) AS n FROM t GROUP BY ss HAVING n > 20 ORDER BY n DESC",
    "SELECT COUNT(*) AS n, COUNT(dd) AS nv, MIN(ss) AS first_s FROM t",
    "SELECT id_mod, COUNT(*) AS n FROM (SELECT ii % 3 AS id_mod FROM t "
    "WHERE dd IS NOT NULL) GROUP BY id_mod ORDER BY id_mod",
    "SELECT ss, dd FROM t WHERE dd IS NOT NULL ORDER BY dd DESC, ss LIMIT 25 "
    "OFFSET 5",
    "SELECT ii, SUM(dd) OVER (PARTITION BY bb ORDER BY ii) AS run FROM t "
    "ORDER BY ii, run LIMIT 500",
    "SELECT MONTH(tt) AS m, COUNT(*) AS n FROM t GROUP BY MONTH(tt) ORDER BY m",
};

// Group-by / filter / projection queries over a table spanning many morsels
// produce bit-identical tables with morsel parallelism on and off.
TEST_F(MorselQueryDiffTest, QueriesMatchKillSwitchPath) {
  MorselConfigGuard guard(/*morsel_rows=*/1024, /*threads=*/4);
  for (const char* sql : kQueries) {
    parallel::SetMorselParallelEnabled(true);
    data::TablePtr on = Run(sql);
    parallel::SetMorselParallelEnabled(false);
    data::TablePtr off = Run(sql);
    parallel::SetMorselParallelEnabled(true);
    ASSERT_NE(on, nullptr) << sql;
    ASSERT_NE(off, nullptr) << sql;
    ASSERT_TRUE(on->Equals(*off))
        << sql << "\nparallel:\n" << on->ToString(8)
        << "single:\n" << off->ToString(8);
  }
}

// The chunked aggregation merge is also exercised on the scalar interpreter
// path (vectorization off): determinism must not depend on the compiler.
TEST_F(MorselQueryDiffTest, ScalarPathQueriesMatchKillSwitchPath) {
  struct VectorizedOffGuard {
    VectorizedOffGuard() { expr::SetVectorizedEnabled(false); }
    ~VectorizedOffGuard() { expr::SetVectorizedEnabled(true); }
  };
  MorselConfigGuard guard(/*morsel_rows=*/1024, /*threads=*/4);
  VectorizedOffGuard vectorized_off;  // restored even when an ASSERT bails out
  for (const char* sql : kQueries) {
    parallel::SetMorselParallelEnabled(true);
    data::TablePtr on = Run(sql);
    parallel::SetMorselParallelEnabled(false);
    data::TablePtr off = Run(sql);
    parallel::SetMorselParallelEnabled(true);
    ASSERT_NE(on, nullptr) << sql;
    ASSERT_NE(off, nullptr) << sql;
    ASSERT_TRUE(on->Equals(*off)) << sql;
  }
}

// Results are invariant across parallelism levels: chunk boundaries are a
// function of the data shape, never the thread count.
TEST_F(MorselQueryDiffTest, ResultsInvariantAcrossParallelismLevels) {
  const char* sql =
      "SELECT ii, COUNT(*) AS n, SUM(dd) AS s, AVG(dd) AS a, STDDEV(dd) AS sd "
      "FROM t WHERE dd IS NOT NULL GROUP BY ii ORDER BY ii";
  data::TablePtr reference;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    MorselConfigGuard guard(/*morsel_rows=*/1024, threads);
    data::TablePtr result = Run(sql);
    ASSERT_NE(result, nullptr) << threads << " threads";
    if (!reference) {
      reference = result;
    } else {
      ASSERT_TRUE(result->Equals(*reference)) << threads << " threads";
    }
  }
}

// The dataflow transforms ride the same morsel paths.
TEST_F(MorselQueryDiffTest, TransformsMatchKillSwitchPath) {
  MorselConfigGuard guard(/*morsel_rows=*/1024, /*threads=*/4);
  expr::MapSignalResolver signals;

  auto run_transform = [&](dataflow::Operator& op) -> data::TablePtr {
    auto result = op.Evaluate(table_, signals);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->table : nullptr;
  };

  {
    auto pred = expr::ParseExpression("datum.dd > 0 && datum.ii <= 5");
    ASSERT_TRUE(pred.ok());
    transforms::FilterOp filter(*pred);
    parallel::SetMorselParallelEnabled(true);
    data::TablePtr on = run_transform(filter);
    parallel::SetMorselParallelEnabled(false);
    data::TablePtr off = run_transform(filter);
    parallel::SetMorselParallelEnabled(true);
    ASSERT_NE(on, nullptr);
    ASSERT_NE(off, nullptr);
    ASSERT_TRUE(on->Equals(*off));
  }
  {
    using transforms::FieldRef;
    transforms::AggregateOp::Params params;
    params.groupby = {FieldRef::Fixed("ss"), FieldRef::Fixed("bb")};
    params.fields = {FieldRef::Fixed("dd"), FieldRef::Fixed("dd"),
                     FieldRef::Fixed("ii"), FieldRef::Fixed("ss")};
    params.ops = {transforms::VegaAggOp::kMean, transforms::VegaAggOp::kStdev,
                  transforms::VegaAggOp::kSum, transforms::VegaAggOp::kMax};
    transforms::AggregateOp agg(params);
    parallel::SetMorselParallelEnabled(true);
    data::TablePtr on = run_transform(agg);
    parallel::SetMorselParallelEnabled(false);
    data::TablePtr off = run_transform(agg);
    parallel::SetMorselParallelEnabled(true);
    ASSERT_NE(on, nullptr);
    ASSERT_NE(off, nullptr);
    ASSERT_TRUE(on->Equals(*off));
  }
}

}  // namespace
}  // namespace vegaplus
