#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <numeric>

#include "benchdata/templates.h"
#include "expr/parser.h"
#include "json/json_parser.h"
#include "plan/enumerator.h"
#include "rewrite/flatten.h"
#include "rewrite/plan_builder.h"
#include "rewrite/rewriter.h"
#include "runtime/plan_executor.h"
#include "sql/sql_parser.h"

namespace vegaplus {
namespace rewrite {
namespace {

using benchdata::TemplateId;

// Name-keyed, order-insensitive table equivalence with numeric tolerance.
// Columns of `expected` must all exist in `actual`.
::testing::AssertionResult TablesEquivalent(const data::TablePtr& expected,
                                            const data::TablePtr& actual) {
  if (!expected || !actual) {
    return ::testing::AssertionFailure() << "null table";
  }
  if (expected->num_rows() != actual->num_rows()) {
    return ::testing::AssertionFailure()
           << "row count " << actual->num_rows() << " != " << expected->num_rows();
  }
  std::vector<std::string> columns;
  for (const auto& f : expected->schema().fields()) {
    if (!actual->schema().HasField(f.name)) {
      return ::testing::AssertionFailure() << "missing column " << f.name;
    }
    columns.push_back(f.name);
  }
  auto sorted_rows = [&columns](const data::Table& t) {
    std::vector<std::vector<data::Value>> rows(t.num_rows());
    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (const auto& c : columns) rows[r].push_back(t.ValueAt(r, c));
    }
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      for (size_t i = 0; i < a.size(); ++i) {
        int cmp = a[i].Compare(b[i]);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
    return rows;
  };
  auto ea = sorted_rows(*expected);
  auto aa = sorted_rows(*actual);
  for (size_t r = 0; r < ea.size(); ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      const data::Value& ev = ea[r][c];
      const data::Value& av = aa[r][c];
      bool equal;
      if (ev.is_numeric() && av.is_numeric()) {
        equal = std::fabs(ev.AsDouble() - av.AsDouble()) <=
                1e-6 * std::max(1.0, std::fabs(ev.AsDouble()));
      } else {
        equal = ev == av;
      }
      if (!equal) {
        return ::testing::AssertionFailure()
               << "row " << r << " col " << columns[c] << ": " << av.ToString()
               << " != " << ev.ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(RewriterTest, FilterBecomesWhere) {
  ServerPipeline p = MakeTablePipeline("flights");
  spec::TransformSpec ts{"filter", *json::Parse(
      R"({"type":"filter","expr":"datum.delay > 10 && datum.delay < 30"})")};
  ASSERT_TRUE(ExtendPipeline(&p, ts, 0).ok());
  EXPECT_EQ(RenderPipelineSql(p),
            "SELECT * FROM flights WHERE ((delay > 10) AND (delay < 30))");
}

TEST(RewriterTest, ConsecutiveFiltersMerge) {
  ServerPipeline p = MakeTablePipeline("t");
  spec::TransformSpec f1{"filter", *json::Parse(R"({"type":"filter","expr":"datum.a > 1"})")};
  spec::TransformSpec f2{"filter", *json::Parse(R"({"type":"filter","expr":"datum.b < 2"})")};
  ASSERT_TRUE(ExtendPipeline(&p, f1, 0).ok());
  ASSERT_TRUE(ExtendPipeline(&p, f2, 1).ok());
  std::string sql = RenderPipelineSql(p);
  // One flat WHERE, no subquery.
  EXPECT_EQ(sql.find("FROM ("), std::string::npos) << sql;
  EXPECT_NE(sql.find("AND"), std::string::npos);
}

TEST(RewriterTest, ExtentBecomesSideQuery) {
  ServerPipeline p = MakeTablePipeline("flights");
  spec::TransformSpec ts{"extent", *json::Parse(
      R"({"type":"extent","field":"delay","signal":"x_extent"})")};
  ASSERT_TRUE(ExtendPipeline(&p, ts, 0).ok());
  ASSERT_EQ(p.side_queries.size(), 1u);
  EXPECT_EQ(p.side_queries[0].sql_template,
            "SELECT MIN(delay) AS min0, MAX(delay) AS max0 FROM flights");
  EXPECT_EQ(p.side_queries[0].output_signal, "x_extent");
  // Data path unchanged.
  EXPECT_EQ(RenderPipelineSql(p), "SELECT * FROM flights");
}

TEST(RewriterTest, BinAggregateAbsorbedIntoOneQuery) {
  // The Example 4.1 batching: bin + aggregate in a single GROUP BY query.
  ServerPipeline p = MakeTablePipeline("flights");
  spec::TransformSpec bin{"bin", *json::Parse(
      R"({"type":"bin","field":"delay","extent":{"signal":"e"},"maxbins":{"signal":"mb"},"as":["bin0","bin1"]})")};
  spec::TransformSpec agg{"aggregate", *json::Parse(
      R"({"type":"aggregate","groupby":["bin0","bin1"],"ops":["count"],"fields":[null],"as":["count"]})")};
  ASSERT_TRUE(ExtendPipeline(&p, bin, 0).ok());
  ASSERT_TRUE(ExtendPipeline(&p, agg, 1).ok());
  std::string sql = RenderPipelineSql(p);
  EXPECT_EQ(sql.find("FROM ("), std::string::npos) << "not flattened: " << sql;
  EXPECT_NE(sql.find("GROUP BY"), std::string::npos);
  EXPECT_NE(sql.find("FLOOR"), std::string::npos);
  EXPECT_NE(sql.find("COUNT(*)"), std::string::npos);
  // Derived holes present for the bin parameters.
  EXPECT_NE(sql.find("_start}"), std::string::npos);
  EXPECT_NE(sql.find("_step}"), std::string::npos);
}

TEST(RewriterTest, DynamicFieldUsesIdentifierHole) {
  ServerPipeline p = MakeTablePipeline("flights");
  spec::TransformSpec ts{"extent", *json::Parse(
      R"({"type":"extent","field":{"signal":"field"},"signal":"e"})")};
  ASSERT_TRUE(ExtendPipeline(&p, ts, 0).ok());
  EXPECT_NE(p.side_queries[0].sql_template.find("${field:id}"), std::string::npos);
}

TEST(RewriterTest, UntranslatableFilterNotRewritable) {
  spec::TransformSpec bad{"filter", *json::Parse(
      R"({"type":"filter","expr":"format(datum.x, '.2f') == '1.00'"})")};
  EXPECT_FALSE(IsRewritable(bad));
  spec::TransformSpec good{"filter", *json::Parse(
      R"({"type":"filter","expr":"datum.x > 1"})")};
  EXPECT_TRUE(IsRewritable(good));
}

TEST(RewriterTest, RewritablePrefixStopsAtFirstUnsupported) {
  spec::DataSpec d;
  d.transforms = {
      {"filter", *json::Parse(R"({"type":"filter","expr":"datum.x > 1"})")},
      {"filter", *json::Parse(R"({"type":"filter","expr":"format(datum.x,'d') == '1'"})")},
      {"aggregate", *json::Parse(R"({"type":"aggregate","groupby":["x"]})")},
  };
  EXPECT_EQ(RewritablePrefixLength(d), 1);
}

TEST(FlattenTest, SubstituteColumn) {
  auto e = *expr::ParseExpression("datum.bin0 + datum.other");
  auto replacement = *expr::ParseExpression("floor(datum.v / 2) * 2");
  auto out = SubstituteColumn(e, "bin0", replacement);
  std::string s = expr::ToString(out);
  EXPECT_NE(s.find("floor"), std::string::npos);
  EXPECT_NE(s.find("datum.other"), std::string::npos);
  EXPECT_EQ(s.find("bin0"), std::string::npos);
}

TEST(FlattenTest, ProjectionInlineSkippedWhenOuterHasStar) {
  auto stmt = *sql::ParseSql(
      "SELECT * FROM (SELECT *, a + 1 AS b FROM t) AS sub WHERE b > 2");
  auto copy = CloneStmt(*stmt);
  FlattenStmt(copy.get());
  // Outer star would change schema if inlined; must keep the subquery.
  EXPECT_NE(copy->from.subquery, nullptr);
}

TEST(FlattenTest, FilterMergeThroughTwoLevels) {
  auto stmt = *sql::ParseSql(
      "SELECT a FROM (SELECT * FROM (SELECT * FROM t WHERE a > 1) AS x WHERE a < 9) "
      "AS y WHERE a <> 5");
  auto copy = CloneStmt(*stmt);
  FlattenStmt(copy.get());
  EXPECT_EQ(copy->from.subquery, nullptr);
  EXPECT_EQ(copy->from.table_name, "t");
  std::string sql = sql::ToSql(*copy);
  EXPECT_NE(sql.find("a > 1"), std::string::npos);
  EXPECT_NE(sql.find("a < 9"), std::string::npos);
  EXPECT_NE(sql.find("a <> 5"), std::string::npos);
}

// ---- Plan builder + end-to-end equivalence ----

class PlanEquivalenceTest : public ::testing::TestWithParam<TemplateId> {};

TEST_P(PlanEquivalenceTest, EveryPlanMatchesClientExecution) {
  auto bc = benchdata::MakeBenchCase(GetParam(), "flights", 3000, 42);
  ASSERT_TRUE(bc.ok()) << bc.status();
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);

  // Ground truth: the all-client dataflow.
  std::map<std::string, data::TablePtr> tables{{bc->dataset.name, bc->dataset.table}};
  auto client = spec::CompileClientDataflow(bc->spec, tables);
  ASSERT_TRUE(client.ok()) << client.status();
  ASSERT_TRUE(client->graph->Run().ok());

  rewrite::PlanBuilder builder(bc->spec);
  auto enumeration = plan::EnumeratePlans(builder, /*max_plans=*/24, /*seed=*/3);
  ASSERT_FALSE(enumeration.plans.empty());

  for (const auto& p : enumeration.plans) {
    runtime::PlanExecutor executor(bc->spec, &engine, runtime::MiddlewareOptions{});
    auto cost = executor.Initialize(p);
    ASSERT_TRUE(cost.ok()) << cost.status() << " plan " << p.Key();
    for (const auto& d : bc->spec.data) {
      const spec::CompiledEntry* entry = client->FindEntry(d.name);
      ASSERT_NE(entry, nullptr);
      data::TablePtr expected = entry->tail->output;
      data::TablePtr actual = executor.EntryOutput(d.name);
      if (actual == nullptr) continue;  // consolidated away under this plan
      EXPECT_TRUE(TablesEquivalent(expected, actual))
          << "entry " << d.name << " plan " << p.Key();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, PlanEquivalenceTest,
    ::testing::ValuesIn(benchdata::AllTemplates()),
    [](const ::testing::TestParamInfo<TemplateId>& info) {
      std::string name = benchdata::TemplateName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(PlanBuilderTest, ValidateRejectsBadPlans) {
  auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "movies", 500, 1);
  ASSERT_TRUE(bc.ok());
  rewrite::PlanBuilder builder(bc->spec);
  ExecutionPlan p;
  p.splits = {0};  // wrong arity
  EXPECT_FALSE(builder.Validate(p).ok());
  p.splits = {0, 99};  // split beyond prefix
  EXPECT_FALSE(builder.Validate(p).ok());
  p.splits = {0, 0};
  EXPECT_TRUE(builder.Validate(p).ok());
}

TEST(PlanBuilderTest, FullPushdownIsValid) {
  for (TemplateId id : benchdata::AllTemplates()) {
    auto bc = benchdata::MakeBenchCase(id, "weather", 500, 5);
    ASSERT_TRUE(bc.ok()) << bc.status();
    rewrite::PlanBuilder builder(bc->spec);
    EXPECT_TRUE(builder.Validate(builder.FullPushdownPlan()).ok())
        << benchdata::TemplateName(id);
    EXPECT_TRUE(builder.Validate(builder.AllClientPlan()).ok());
  }
}

TEST(PlanBuilderTest, InteractionsKeepPlansEquivalent) {
  // Apply a slider + dropdown interaction to every plan of the histogram and
  // re-check equivalence (signal holes must refill correctly).
  auto bc = benchdata::MakeBenchCase(TemplateId::kInteractiveHistogram, "flights",
                                     2000, 7);
  ASSERT_TRUE(bc.ok());
  sql::Engine engine;
  engine.RegisterTable(bc->dataset.name, bc->dataset.table);
  std::map<std::string, data::TablePtr> tables{{bc->dataset.name, bc->dataset.table}};

  std::vector<runtime::SignalUpdate> updates{
      {"maxbins", expr::EvalValue::Number(23)},
      {"field", expr::EvalValue::String(bc->dataset.quantitative[1])}};

  auto client = spec::CompileClientDataflow(bc->spec, tables);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->graph->Run().ok());
  ASSERT_TRUE(client->graph->Update(updates).ok());

  rewrite::PlanBuilder builder(bc->spec);
  auto enumeration = plan::EnumeratePlans(builder);
  for (const auto& p : enumeration.plans) {
    runtime::PlanExecutor executor(bc->spec, &engine, runtime::MiddlewareOptions{});
    ASSERT_TRUE(executor.Initialize(p).ok());
    ASSERT_TRUE(executor.Interact(updates).ok()) << p.Key();
    data::TablePtr expected = client->FindEntry("binned")->tail->output;
    data::TablePtr actual = executor.EntryOutput("binned");
    ASSERT_NE(actual, nullptr);
    EXPECT_TRUE(TablesEquivalent(expected, actual)) << "plan " << p.Key();
  }
}

TEST(VdtTest, SignalVdtPublishesExtent) {
  sql::Engine engine;
  data::Schema schema({{"v", data::DataType::kFloat64}});
  engine.RegisterTable("t", data::MakeTable(schema, {{data::Value::Double(2)},
                                                     {data::Value::Double(8)}}));
  runtime::Middleware middleware(&engine, {});
  SignalVdtOp vdt("SELECT MIN(v) AS min0, MAX(v) AS max0 FROM t", {}, &middleware, "e");
  dataflow::SignalRegistry signals;
  auto result = vdt.Evaluate(nullptr, signals);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->signal_writes.size(), 1u);
  EXPECT_EQ(result->signal_writes[0].first, "e");
  EXPECT_DOUBLE_EQ(result->signal_writes[0].second.array()[0].AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(result->signal_writes[0].second.array()[1].AsDouble(), 8.0);
  EXPECT_GT(result->external_millis, 0.0);
}

TEST(VdtTest, UnresolvedHoleFails) {
  sql::Engine engine;
  runtime::Middleware middleware(&engine, {});
  VdtOp vdt("SELECT * FROM t WHERE x > ${missing}", {}, &middleware);
  dataflow::SignalRegistry signals;
  EXPECT_FALSE(vdt.Evaluate(nullptr, signals).ok());
}

}  // namespace
}  // namespace rewrite
}  // namespace vegaplus
