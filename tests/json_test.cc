#include <gtest/gtest.h>

#include "json/json_parser.h"
#include "json/json_value.h"
#include "json/json_writer.h"

namespace vegaplus {
namespace json {
namespace {

TEST(JsonValueTest, Construction) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3.5).is_number());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value::MakeArray().is_array());
  EXPECT_TRUE(Value::MakeObject().is_object());
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder) {
  Value obj = Value::MakeObject();
  obj.Set("z", Value(1));
  obj.Set("a", Value(2));
  obj.Set("m", Value(3));
  ASSERT_EQ(obj.members().size(), 3u);
  EXPECT_EQ(obj.members()[0].first, "z");
  EXPECT_EQ(obj.members()[1].first, "a");
  EXPECT_EQ(obj.members()[2].first, "m");
}

TEST(JsonValueTest, SetReplacesExisting) {
  Value obj = Value::MakeObject();
  obj.Set("k", Value(1));
  obj.Set("k", Value(2));
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.GetInt("k", -1), 2);
}

TEST(JsonValueTest, GettersWithDefaults) {
  Value obj = Value::MakeObject();
  obj.Set("s", Value("x"));
  obj.Set("n", Value(4.5));
  obj.Set("b", Value(true));
  EXPECT_EQ(obj.GetString("s"), "x");
  EXPECT_EQ(obj.GetString("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(obj.GetDouble("n"), 4.5);
  EXPECT_EQ(obj.GetInt("n"), 4);
  EXPECT_TRUE(obj.GetBool("b"));
  EXPECT_FALSE(obj.GetBool("s", false));  // wrong type -> default
}

TEST(JsonParserTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->AsBool());
  EXPECT_FALSE(Parse("false")->AsBool());
  EXPECT_DOUBLE_EQ(Parse("3.25")->AsDouble(), 3.25);
  EXPECT_DOUBLE_EQ(Parse("-4e2")->AsDouble(), -400.0);
  EXPECT_EQ(Parse("\"abc\"")->AsString(), "abc");
}

TEST(JsonParserTest, NestedStructure) {
  auto r = Parse(R"({"a": [1, 2, {"b": null}], "c": {"d": "e"}})");
  ASSERT_TRUE(r.ok());
  const Value& v = *r;
  ASSERT_TRUE(v.is_object());
  const Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->size(), 3u);
  EXPECT_TRUE((*a)[2].Find("b")->is_null());
  EXPECT_EQ(v.Find("c")->GetString("d"), "e");
}

TEST(JsonParserTest, StringEscapes) {
  auto r = Parse(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "a\"b\\c\ndA");
}

TEST(JsonParserTest, UnicodeEscapeMultibyte) {
  auto r = Parse(R"("é")");  // é
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "\xc3\xa9");
}

TEST(JsonParserTest, Whitespace) {
  auto r = Parse("  {  \"a\" :\n[ 1 ,  2 ]\t}  ");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Find("a")->size(), 2u);
}

TEST(JsonParserTest, EmptyContainers) {
  EXPECT_EQ(Parse("[]")->size(), 0u);
  EXPECT_EQ(Parse("{}")->size(), 0u);
}

TEST(JsonParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":}").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("1 2").ok());  // trailing tokens
  EXPECT_FALSE(Parse("{a: 1}").ok());  // unquoted key
}

TEST(JsonWriterTest, RoundTrip) {
  const std::string doc =
      R"({"name":"histogram","signals":[{"name":"maxbins","value":10}],"ok":true,"n":null})";
  auto parsed = Parse(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(Write(*parsed), doc);
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  Value v("a\tb\x01");
  EXPECT_EQ(Write(v), "\"a\\tb\\u0001\"");
}

TEST(JsonWriterTest, PrettyIsReparsable) {
  auto parsed = Parse(R"({"a":[1,2],"b":{"c":true}})");
  ASSERT_TRUE(parsed.ok());
  auto reparsed = Parse(WritePretty(*parsed));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(*parsed == *reparsed);
}

TEST(JsonWriterTest, NumbersCompact) {
  EXPECT_EQ(Write(Value(5.0)), "5");
  EXPECT_EQ(Write(Value(2.5)), "2.5");
}

TEST(JsonEqualityTest, DeepEquality) {
  auto a = Parse(R"({"x":[1,{"y":2}]})");
  auto b = Parse(R"({"x":[1,{"y":2}]})");
  auto c = Parse(R"({"x":[1,{"y":3}]})");
  EXPECT_TRUE(*a == *b);
  EXPECT_TRUE(*a != *c);
}

}  // namespace
}  // namespace json
}  // namespace vegaplus
