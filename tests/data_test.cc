#include <gtest/gtest.h>

#include <cmath>

#include "data/column.h"
#include "data/schema.h"
#include "data/stats.h"
#include "data/table.h"
#include "data/value.h"

namespace vegaplus {
namespace data {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("s").AsString(), "s");
  EXPECT_EQ(Value::Timestamp(1000).AsInt(), 1000);
  EXPECT_TRUE(Value::Timestamp(1000).is_timestamp());
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_NE(Value::Int(3), Value::Double(3.5));
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
}

TEST(ValueTest, CompareOrdersNullsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, CompareNumbersAndStrings) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  EXPECT_EQ(Value::String("a").Compare(Value::String("a")), 0);
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_FALSE(Value::Double(0.0).Truthy());
  EXPECT_FALSE(Value::String("").Truthy());
  EXPECT_TRUE(Value::Int(1).Truthy());
  EXPECT_TRUE(Value::String("x").Truthy());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Int(-4).ToString(), "-4");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("ab").ToString(), "ab");
}

TEST(SchemaTest, FieldLookup) {
  Schema schema({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(schema.num_fields(), 2u);
  EXPECT_EQ(schema.FieldIndex("a"), 0);
  EXPECT_EQ(schema.FieldIndex("b"), 1);
  EXPECT_EQ(schema.FieldIndex("c"), -1);
  EXPECT_TRUE(schema.HasField("b"));
}

TEST(ColumnTest, AppendAndAccess) {
  Column col(DataType::kInt64);
  col.AppendInt(1);
  col.AppendNull();
  col.AppendInt(3);
  EXPECT_EQ(col.length(), 3u);
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_EQ(col.IntAt(2), 3);
  EXPECT_TRUE(col.ValueAt(1).is_null());
  EXPECT_EQ(col.ValueAt(2), Value::Int(3));
}

TEST(ColumnTest, AppendCoercesNumerics) {
  Column col(DataType::kFloat64);
  col.Append(Value::Int(2));
  col.Append(Value::Double(3.5));
  EXPECT_DOUBLE_EQ(col.DoubleAt(0), 2.0);
  EXPECT_DOUBLE_EQ(col.DoubleAt(1), 3.5);
}

TEST(ColumnTest, AppendIncompatibleBecomesNull) {
  Column col(DataType::kInt64);
  col.Append(Value::String("nope"));
  EXPECT_TRUE(col.IsNull(0));
}

TEST(ColumnTest, StringColumnStringifiesNonStrings) {
  Column col(DataType::kString);
  col.Append(Value::Int(5));
  EXPECT_EQ(col.StringAt(0), "5");
}

TEST(ColumnTest, TakeGathersAndKeepsNulls) {
  Column col(DataType::kString);
  col.AppendString("a");
  col.AppendNull();
  col.AppendString("c");
  Column taken = col.Take({2, 1, 0, 2});
  ASSERT_EQ(taken.length(), 4u);
  EXPECT_EQ(taken.StringAt(0), "c");
  EXPECT_TRUE(taken.IsNull(1));
  EXPECT_EQ(taken.StringAt(2), "a");
  EXPECT_EQ(taken.StringAt(3), "c");
}

TEST(ColumnTest, NumericAtNaNForNull) {
  Column col(DataType::kInt64);
  col.AppendNull();
  EXPECT_TRUE(std::isnan(col.NumericAt(0)));
}

Schema TestSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"score", DataType::kFloat64},
                 {"name", DataType::kString}});
}

TEST(TableTest, BuildAndAccess) {
  TablePtr t = MakeTable(TestSchema(), {
                                           {Value::Int(1), Value::Double(0.5), Value::String("x")},
                                           {Value::Int(2), Value::Null(), Value::String("y")},
                                       });
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->num_columns(), 3u);
  EXPECT_EQ(t->ValueAt(0, "id"), Value::Int(1));
  EXPECT_TRUE(t->ValueAt(1, "score").is_null());
  EXPECT_TRUE(t->ValueAt(0, "missing").is_null());
  EXPECT_NE(t->ColumnByName("name"), nullptr);
  EXPECT_EQ(t->ColumnByName("nope"), nullptr);
}

TEST(TableTest, TakeAndHead) {
  TablePtr t = MakeTable(TestSchema(), {
                                           {Value::Int(1), Value::Double(1), Value::String("a")},
                                           {Value::Int(2), Value::Double(2), Value::String("b")},
                                           {Value::Int(3), Value::Double(3), Value::String("c")},
                                       });
  TablePtr taken = t->Take({2, 0});
  EXPECT_EQ(taken->num_rows(), 2u);
  EXPECT_EQ(taken->ValueAt(0, "id"), Value::Int(3));
  TablePtr head = t->Head(2);
  EXPECT_EQ(head->num_rows(), 2u);
  EXPECT_EQ(head->ValueAt(1, "id"), Value::Int(2));
  EXPECT_EQ(t->Head(100)->num_rows(), 3u);
}

TEST(TableTest, SliceSharesStorageAndClamps) {
  TablePtr t = MakeTable(TestSchema(), {
                                           {Value::Int(1), Value::Double(1), Value::String("a")},
                                           {Value::Int(2), Value::Null(), Value::String("b")},
                                           {Value::Int(3), Value::Double(3), Value::String("c")},
                                           {Value::Int(4), Value::Double(4), Value::String("d")},
                                       });
  TablePtr mid = t->Slice(1, 2);
  EXPECT_EQ(mid->num_rows(), 2u);
  EXPECT_EQ(mid->ValueAt(0, "id"), Value::Int(2));
  EXPECT_EQ(mid->ValueAt(1, "name"), Value::String("c"));
  EXPECT_TRUE(mid->ValueAt(0, "score").is_null());
  EXPECT_EQ(mid->ColumnByName("score")->null_count(), 1u);
  // Zero-copy: the sliced column reads from the parent's buffers.
  EXPECT_EQ(mid->ColumnByName("id")->ints_data(),
            t->ColumnByName("id")->ints_data() + 1);
  // Clamping.
  EXPECT_EQ(t->Slice(3, 10)->num_rows(), 1u);
  EXPECT_EQ(t->Slice(9, 2)->num_rows(), 0u);
  // Nested slices compose offsets.
  TablePtr tail = mid->Slice(1, 1);
  EXPECT_EQ(tail->ValueAt(0, "id"), Value::Int(3));
}

TEST(ColumnTest, SliceCopyOnWrite) {
  Column col(DataType::kInt64);
  for (int i = 0; i < 5; ++i) col.AppendInt(i);
  Column view = col.Slice(1, 3);
  ASSERT_EQ(view.length(), 3u);
  EXPECT_EQ(view.IntAt(0), 1);
  // Appending to a shared slice must not disturb the original column.
  view.AppendInt(99);
  ASSERT_EQ(view.length(), 4u);
  EXPECT_EQ(view.IntAt(3), 99);
  EXPECT_EQ(view.IntAt(0), 1);
  ASSERT_EQ(col.length(), 5u);
  EXPECT_EQ(col.IntAt(4), 4);
}

TEST(TableTest, Equals) {
  auto rows = std::vector<std::vector<Value>>{
      {Value::Int(1), Value::Double(1), Value::String("a")}};
  TablePtr a = MakeTable(TestSchema(), rows);
  TablePtr b = MakeTable(TestSchema(), rows);
  TablePtr c = MakeTable(TestSchema(),
                         {{Value::Int(2), Value::Double(1), Value::String("a")}});
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
}

TEST(TableBuilderTest, EmptyTable) {
  TablePtr t = EmptyTable(TestSchema());
  EXPECT_EQ(t->num_rows(), 0u);
  EXPECT_EQ(t->num_columns(), 3u);
}

TEST(StatsTest, NumericExtentAndNulls) {
  Schema schema({{"v", DataType::kFloat64}});
  TablePtr t = MakeTable(schema, {{Value::Double(3)},
                                  {Value::Null()},
                                  {Value::Double(-1)},
                                  {Value::Double(7)}});
  TableStats stats = ComputeTableStats(*t);
  EXPECT_EQ(stats.num_rows, 4u);
  const ColumnStats* cs = stats.Find("v");
  ASSERT_NE(cs, nullptr);
  EXPECT_EQ(cs->null_count, 1u);
  ASSERT_TRUE(cs->has_extent);
  EXPECT_DOUBLE_EQ(cs->min, -1);
  EXPECT_DOUBLE_EQ(cs->max, 7);
  EXPECT_EQ(cs->distinct_count, 3u);
}

TEST(StatsTest, CategoricalDomainInFirstSeenOrder) {
  Schema schema({{"c", DataType::kString}});
  TablePtr t = MakeTable(schema, {{Value::String("b")},
                                  {Value::String("a")},
                                  {Value::String("b")},
                                  {Value::String("c")}});
  TableStats stats = ComputeTableStats(*t);
  const ColumnStats* cs = stats.Find("c");
  ASSERT_NE(cs, nullptr);
  EXPECT_TRUE(cs->distinct_is_exact);
  ASSERT_EQ(cs->domain.size(), 3u);
  EXPECT_EQ(cs->domain[0], Value::String("b"));
  EXPECT_EQ(cs->domain[1], Value::String("a"));
  EXPECT_EQ(cs->domain[2], Value::String("c"));
}

TEST(StatsTest, DistinctCapStopsTracking) {
  Schema schema({{"v", DataType::kInt64}});
  TableBuilder builder(schema);
  for (int i = 0; i < 1000; ++i) builder.AppendRow({Value::Int(i)});
  TableStats stats = ComputeTableStats(*builder.Build());
  const ColumnStats* cs = stats.Find("v");
  ASSERT_NE(cs, nullptr);
  EXPECT_FALSE(cs->distinct_is_exact);
  EXPECT_TRUE(cs->domain.empty());
  EXPECT_GT(cs->distinct_count, kMaxTrackedDistinct);
}

}  // namespace
}  // namespace data
}  // namespace vegaplus
