// Table 5: session consolidation (§5.4/§7.4) on the Overview+Detail
// template: total per-session latency of the plan each model consolidates
// to. Expected shape: RankSVM/Random Forest pick near-optimal plans; the
// heuristic's win-count consolidation is catastrophically worse because it
// favors frequent cheap interactions over expensive rare ones.
#include <cstdio>

#include "bench_util.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  std::printf("=== Table 5: consolidated plan's per-session time (ms), "
              "Overview+Detail template ===\n\n");
  std::printf("%-14s", "models");
  for (size_t size : config.sizes) std::printf(" %11zu", size);
  std::printf("\n");

  const auto id = benchdata::TemplateId::kOverviewDetail;
  std::vector<std::vector<double>> table(4, std::vector<double>(config.sizes.size(), 0));
  std::vector<double> optimal(config.sizes.size(), 0);
  for (size_t si = 0; si < config.sizes.size(); ++si) {
    BENCH_ASSIGN(auto run, CollectTemplate(id, DatasetFor(id), config.sizes[si], config));
    auto pairs = optimizer::MakePairs(run->AllEpisodes(), config.max_pairs, config.seed);
    std::vector<ml::PairExample> train, test;
    ml::TrainTestSplit(pairs, 0.6, config.seed, &train, &test);
    ModelSuite suite = TrainSuite(train, config.seed);

    // Session total per plan (ground truth).
    size_t num_plans = run->enumeration.plans.size();
    auto models = suite.All();
    for (const auto& session : run->sessions) {
      std::vector<double> session_total(num_plans, 0);
      for (const auto& ep : session) {
        for (size_t p = 0; p < num_plans; ++p) session_total[p] += ep.latencies_ms[p];
      }
      for (size_t m = 0; m < models.size(); ++m) {
        size_t pick = optimizer::ConsolidateSession(*models[m], session);
        table[m][si] += session_total[pick];
      }
      optimal[si] += *std::min_element(session_total.begin(), session_total.end());
    }
    for (size_t m = 0; m < models.size(); ++m) {
      table[m][si] /= static_cast<double>(run->sessions.size());
    }
    optimal[si] /= static_cast<double>(run->sessions.size());
  }

  const char* names[] = {"RankSVM", "Random Forest", "heuristic", "random"};
  for (int m = 0; m < 4; ++m) {
    std::printf("%-14s", names[m]);
    for (size_t si = 0; si < config.sizes.size(); ++si) {
      std::printf(" %11.2f", table[static_cast<size_t>(m)][si]);
    }
    std::printf("\n");
  }
  std::printf("%-14s", "optimal");
  for (size_t si = 0; si < config.sizes.size(); ++si) {
    std::printf(" %11.2f", optimal[si]);
  }
  std::printf("\n");
  return 0;
}
