// Concurrent-session throughput: N client sessions in closed loops hammer
// one shared Middleware with distinct prepared-statement queries (cache-miss
// workload, caches disabled), measuring aggregate wall-clock throughput and
// per-query p50/p95 latency as the session count grows. The worker pool is
// sized to the session count, so scaling reflects the middleware's ability
// to execute DBMS work concurrently. Emits BENCH_concurrent_sessions.json.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "runtime/middleware.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

struct Condition {
  size_t sessions = 1;
  double wall_ms = 0;
  double throughput_qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
};

}  // namespace

int main() {
  BenchConfig config = LoadConfig();
  BenchReporter reporter("concurrent_sessions");
  reporter.RecordConfig(config);

  const size_t rows = config.sizes.back();
  const size_t queries_per_session = 32;
  auto dataset = benchdata::MakeDataset("flights", rows, config.seed);
  if (!dataset.ok()) Die(dataset.status(), "MakeDataset");
  sql::Engine engine;
  engine.RegisterTable("flights", dataset->table);
  const std::string& field = dataset->quantitative[0];

  std::printf("=== concurrent sessions: shared middleware, cache-miss workload ===\n");
  std::printf("rows=%zu, %zu queries/session\n\n", rows, queries_per_session);
  std::printf("%10s %12s %14s %10s %10s\n", "sessions", "wall ms", "throughput q/s",
              "p50 ms", "p95 ms");

  std::vector<Condition> results;
  for (size_t sessions : {1u, 2u, 4u, 8u}) {
    runtime::MiddlewareOptions options;
    options.enable_client_cache = false;
    options.enable_server_cache = false;
    options.worker_threads = sessions;
    runtime::Middleware middleware(&engine, options);

    const std::string sql_template =
        "SELECT COUNT(*) AS n, AVG(" + field + ") AS m FROM flights WHERE " + field +
        " < ${cut}";

    std::atomic<bool> failed{false};
    std::vector<std::vector<double>> latencies(sessions);
    StopWatch wall;
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        auto session = middleware.CreateSession();
        auto handle = session->Prepare(sql_template);
        if (!handle.ok()) {
          failed = true;
          return;
        }
        latencies[s].reserve(queries_per_session);
        for (size_t q = 0; q < queries_per_session; ++q) {
          rewrite::QueryRequest request;
          request.handle = *handle;
          // Distinct binding per (session, query): every request misses.
          request.params = {{"cut", expr::EvalValue::Number(
                                        1000.0 + static_cast<double>(s) * 1000.0 +
                                        static_cast<double>(q))}};
          request.generation = q + 1;
          StopWatch latency;
          auto response = session->Submit(request)->Await();
          latencies[s].push_back(latency.ElapsedMillis());
          if (!response.ok()) failed = true;
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failed) Die(Status::RuntimeError("query failed"), "session workload");

    Condition c;
    c.sessions = sessions;
    c.wall_ms = wall.ElapsedMillis();
    size_t total = sessions * queries_per_session;
    c.throughput_qps = 1000.0 * static_cast<double>(total) / c.wall_ms;
    std::vector<double> all;
    for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
    c.p50_ms = Percentile(all, 0.50);
    c.p95_ms = Percentile(all, 0.95);
    results.push_back(c);

    std::printf("%10zu %12.1f %14.0f %10.3f %10.3f\n", c.sessions, c.wall_ms,
                c.throughput_qps, c.p50_ms, c.p95_ms);

    json::Value row = json::Value::MakeObject();
    row.Set("sessions", c.sessions);
    row.Set("wall_ms", c.wall_ms);
    row.Set("throughput_qps", c.throughput_qps);
    row.Set("p50_ms", c.p50_ms);
    row.Set("p95_ms", c.p95_ms);
    reporter.AddMetric("sessions_" + std::to_string(sessions), std::move(row));
    reporter.AddPhase("sessions_" + std::to_string(sessions), c.wall_ms);
  }

  // --- Server-cache admission policy: FIFO vs LRU under a skewed workload.
  // One session replays an identical 90/10 hot/cold request stream against a
  // server cache much smaller than the key universe; LRU keeps the hot set
  // resident while FIFO cycles it out behind the cold scans.
  std::printf("\n=== server-cache policy under skew (capacity 16, 8 hot / 64 cold keys) ===\n");
  std::printf("%10s %12s %12s %10s\n", "policy", "queries", "server hits",
              "hit rate");
  double hit_rate[2] = {0, 0};
  const runtime::QueryCache::Policy policies[2] = {
      runtime::QueryCache::Policy::kFifo, runtime::QueryCache::Policy::kLru};
  const char* policy_names[2] = {"fifo", "lru"};
  for (int p = 0; p < 2; ++p) {
    runtime::MiddlewareOptions options;
    options.enable_client_cache = false;  // isolate the server tier
    options.enable_server_cache = true;
    options.cache_capacity = 16;
    options.cache_policy = policies[p];
    options.worker_threads = 2;
    runtime::Middleware middleware(&engine, options);
    auto session = middleware.CreateSession();
    auto handle = session->Prepare("SELECT COUNT(*) AS n FROM flights WHERE " +
                                   field + " < ${cut}");
    if (!handle.ok()) Die(handle.status(), "Prepare");
    Rng rng(config.seed);  // identical stream for both policies
    const size_t kQueries = 4000;
    for (size_t q = 0; q < kQueries; ++q) {
      const size_t idx = rng.NextBool(0.9) ? rng.Index(8) : 8 + rng.Index(64);
      rewrite::QueryRequest request;
      request.handle = *handle;
      request.params = {{"cut", expr::EvalValue::Number(static_cast<double>(idx))}};
      auto response = session->Submit(request)->Await();
      if (!response.ok()) Die(response.status(), "skewed workload");
    }
    auto stats = middleware.stats();
    hit_rate[p] =
        static_cast<double>(stats.server_cache_hits) / static_cast<double>(kQueries);
    std::printf("%10s %12zu %12zu %9.1f%%\n", policy_names[p], kQueries,
                stats.server_cache_hits, 100.0 * hit_rate[p]);
    json::Value row = json::Value::MakeObject();
    row.Set("queries", kQueries);
    row.Set("server_cache_hits", stats.server_cache_hits);
    row.Set("hit_rate", hit_rate[p]);
    reporter.AddMetric(std::string("skew_policy_") + policy_names[p], std::move(row));
  }
  std::printf("LRU hit-rate delta over FIFO: %+.1f points\n",
              100.0 * (hit_rate[1] - hit_rate[0]));
  reporter.AddMetric("skew_lru_minus_fifo_hit_rate", json::Value(hit_rate[1] - hit_rate[0]));
  if (hit_rate[1] < hit_rate[0]) {
    std::fprintf(stderr, "GATE FAILED: LRU hit rate %.3f below FIFO %.3f under skew\n",
                 hit_rate[1], hit_rate[0]);
    return 1;
  }

  double scaling = results.back().throughput_qps / results.front().throughput_qps;
  size_t cores = std::thread::hardware_concurrency();
  std::printf("\nthroughput scaling 1 -> %zu sessions: %.2fx (%zu hardware threads)\n",
              results.back().sessions, scaling, cores);
  reporter.AddMetric("scaling_1_to_8", json::Value(scaling));
  reporter.AddMetric("hardware_threads", json::Value(cores));
  // Acceptance gate: a shared middleware must scale aggregate throughput
  // >2x from 1 to 8 sessions on a cache-miss workload. Sessions scale
  // through the worker pool's real parallelism, so the gate is only
  // meaningful where the hardware can run >=4 workers at once.
  if (cores < 4) {
    std::printf("GATE SKIPPED: %zu hardware threads (<4), no parallel headroom\n",
                cores);
    return 0;
  }
  if (scaling < 2.0) {
    std::fprintf(stderr, "GATE FAILED: scaling %.2fx < 2x\n", scaling);
    return 1;
  }
  std::printf("GATE OK (>2x)\n");
  return 0;
}
