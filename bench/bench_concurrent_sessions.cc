// Concurrent-session throughput: N client sessions in closed loops hammer
// one shared Middleware with distinct prepared-statement queries (cache-miss
// workload, caches disabled), measuring aggregate wall-clock throughput and
// per-query p50/p95 latency as the session count grows. The worker pool is
// sized to the session count, so scaling reflects the middleware's ability
// to execute DBMS work concurrently. Emits BENCH_concurrent_sessions.json.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "runtime/middleware.h"
#include "storage/reader.h"
#include "storage/table_shard.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

struct Condition {
  size_t sessions = 1;
  double wall_ms = 0;
  double throughput_qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
};

}  // namespace

int main() {
  BenchConfig config = LoadConfig();
  BenchReporter reporter("concurrent_sessions");
  reporter.RecordConfig(config);

  const size_t rows = config.sizes.back();
  const size_t queries_per_session = 32;
  auto dataset = benchdata::MakeDataset("flights", rows, config.seed);
  if (!dataset.ok()) Die(dataset.status(), "MakeDataset");
  sql::Engine engine;
  engine.RegisterTable("flights", dataset->table);
  const std::string& field = dataset->quantitative[0];

  std::printf("=== concurrent sessions: shared middleware, cache-miss workload ===\n");
  std::printf("rows=%zu, %zu queries/session\n\n", rows, queries_per_session);
  std::printf("%10s %12s %14s %10s %10s\n", "sessions", "wall ms", "throughput q/s",
              "p50 ms", "p95 ms");

  std::vector<Condition> results;
  for (size_t sessions : {1u, 2u, 4u, 8u}) {
    runtime::MiddlewareOptions options;
    options.enable_client_cache = false;
    options.enable_server_cache = false;
    options.worker_threads = sessions;
    runtime::Middleware middleware(&engine, options);

    const std::string sql_template =
        "SELECT COUNT(*) AS n, AVG(" + field + ") AS m FROM flights WHERE " + field +
        " < ${cut}";

    std::atomic<bool> failed{false};
    std::vector<std::vector<double>> latencies(sessions);
    StopWatch wall;
    std::vector<std::thread> threads;
    threads.reserve(sessions);
    for (size_t s = 0; s < sessions; ++s) {
      threads.emplace_back([&, s] {
        auto session = middleware.CreateSession();
        auto handle = session->Prepare(sql_template);
        if (!handle.ok()) {
          failed = true;
          return;
        }
        latencies[s].reserve(queries_per_session);
        for (size_t q = 0; q < queries_per_session; ++q) {
          rewrite::QueryRequest request;
          request.handle = *handle;
          // Distinct binding per (session, query): every request misses.
          request.params = {{"cut", expr::EvalValue::Number(
                                        1000.0 + static_cast<double>(s) * 1000.0 +
                                        static_cast<double>(q))}};
          request.generation = q + 1;
          StopWatch latency;
          auto response = session->Submit(request)->Await();
          latencies[s].push_back(latency.ElapsedMillis());
          if (!response.ok()) failed = true;
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failed) Die(Status::RuntimeError("query failed"), "session workload");

    Condition c;
    c.sessions = sessions;
    c.wall_ms = wall.ElapsedMillis();
    size_t total = sessions * queries_per_session;
    c.throughput_qps = 1000.0 * static_cast<double>(total) / c.wall_ms;
    std::vector<double> all;
    for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
    c.p50_ms = Percentile(all, 0.50);
    c.p95_ms = Percentile(all, 0.95);
    results.push_back(c);

    std::printf("%10zu %12.1f %14.0f %10.3f %10.3f\n", c.sessions, c.wall_ms,
                c.throughput_qps, c.p50_ms, c.p95_ms);

    json::Value row = json::Value::MakeObject();
    row.Set("sessions", c.sessions);
    row.Set("wall_ms", c.wall_ms);
    row.Set("throughput_qps", c.throughput_qps);
    row.Set("p50_ms", c.p50_ms);
    row.Set("p95_ms", c.p95_ms);
    reporter.AddMetric("sessions_" + std::to_string(sessions), std::move(row));
    reporter.AddPhase("sessions_" + std::to_string(sessions), c.wall_ms);
  }

  // --- Server-cache admission policy: FIFO vs LRU under a skewed workload.
  // One session replays an identical 90/10 hot/cold request stream against a
  // server cache much smaller than the key universe; LRU keeps the hot set
  // resident while FIFO cycles it out behind the cold scans.
  std::printf("\n=== server-cache policy under skew (capacity 16, 8 hot / 64 cold keys) ===\n");
  std::printf("%10s %12s %12s %10s\n", "policy", "queries", "server hits",
              "hit rate");
  double hit_rate[2] = {0, 0};
  const runtime::QueryCache::Policy policies[2] = {
      runtime::QueryCache::Policy::kFifo, runtime::QueryCache::Policy::kLru};
  const char* policy_names[2] = {"fifo", "lru"};
  for (int p = 0; p < 2; ++p) {
    runtime::MiddlewareOptions options;
    options.enable_client_cache = false;  // isolate the server tier
    options.enable_server_cache = true;
    options.cache_capacity = 16;
    options.cache_policy = policies[p];
    options.worker_threads = 2;
    runtime::Middleware middleware(&engine, options);
    auto session = middleware.CreateSession();
    auto handle = session->Prepare("SELECT COUNT(*) AS n FROM flights WHERE " +
                                   field + " < ${cut}");
    if (!handle.ok()) Die(handle.status(), "Prepare");
    Rng rng(config.seed);  // identical stream for both policies
    const size_t kQueries = 4000;
    for (size_t q = 0; q < kQueries; ++q) {
      const size_t idx = rng.NextBool(0.9) ? rng.Index(8) : 8 + rng.Index(64);
      rewrite::QueryRequest request;
      request.handle = *handle;
      request.params = {{"cut", expr::EvalValue::Number(static_cast<double>(idx))}};
      auto response = session->Submit(request)->Await();
      if (!response.ok()) Die(response.status(), "skewed workload");
    }
    auto stats = middleware.stats();
    hit_rate[p] =
        static_cast<double>(stats.server_cache_hits) / static_cast<double>(kQueries);
    std::printf("%10s %12zu %12zu %9.1f%%\n", policy_names[p], kQueries,
                stats.server_cache_hits, 100.0 * hit_rate[p]);
    json::Value row = json::Value::MakeObject();
    row.Set("queries", kQueries);
    row.Set("server_cache_hits", stats.server_cache_hits);
    row.Set("hit_rate", hit_rate[p]);
    reporter.AddMetric(std::string("skew_policy_") + policy_names[p], std::move(row));
  }
  std::printf("LRU hit-rate delta over FIFO: %+.1f points\n",
              100.0 * (hit_rate[1] - hit_rate[0]));
  reporter.AddMetric("skew_lru_minus_fifo_hit_rate", json::Value(hit_rate[1] - hit_rate[0]));
  if (hit_rate[1] < hit_rate[0]) {
    std::fprintf(stderr, "GATE FAILED: LRU hit rate %.3f below FIFO %.3f under skew\n",
                 hit_rate[1], hit_rate[0]);
    return 1;
  }

  // --- Fault-tolerant serving under a flaky, slow backend. 8 sessions burst
  // asynchronous submissions at a deliberately under-provisioned middleware
  // (2 workers, queue bound 4) whose DBMS path randomly fails and stalls:
  // retries recover the transient failures, the bounded queue sheds the
  // overload, and the tail latencies stay bounded instead of queueing
  // unboundedly. Deterministic fault schedule (seeded) => replayable run.
  {
    const size_t kFaultySessions = 8;
    const size_t kBurst = 32;
    runtime::MiddlewareOptions options;
    options.enable_client_cache = false;
    options.enable_server_cache = false;
    options.worker_threads = 2;
    options.max_queue_depth = 4;
    options.retry.initial_backoff_ms = 0.1;
    options.fault_injection = runtime::FaultInjectorOptions{};
    options.fault_injection->seed = config.seed;
    options.fault_injection->rules.push_back(runtime::FaultRule{
        "", 0, false, /*fail_probability=*/0.1, /*stall_ms=*/0.2});
    runtime::Middleware middleware(&engine, options);

    const std::string sql_template = "SELECT COUNT(*) AS n, AVG(" + field +
                                     ") AS m FROM flights WHERE " + field +
                                     " < ${cut}";
    std::atomic<bool> bad_status{false};
    std::vector<std::vector<double>> ok_latency(kFaultySessions);
    StopWatch wall;
    std::vector<std::thread> threads;
    threads.reserve(kFaultySessions);
    for (size_t s = 0; s < kFaultySessions; ++s) {
      threads.emplace_back([&, s] {
        auto session = middleware.CreateSession();
        auto handle = session->Prepare(sql_template);
        if (!handle.ok()) {
          bad_status = true;
          return;
        }
        // Burst: submit everything, then await — saturates the bounded
        // queue so load shedding actually engages.
        std::vector<rewrite::QueryTicketPtr> tickets;
        std::vector<StopWatch> watches(kBurst);
        tickets.reserve(kBurst);
        for (size_t q = 0; q < kBurst; ++q) {
          rewrite::QueryRequest request;
          request.handle = *handle;
          request.params = {{"cut", expr::EvalValue::Number(
                                        5000.0 + static_cast<double>(s) * 1000.0 +
                                        static_cast<double>(q))}};
          watches[q] = StopWatch();
          tickets.push_back(session->Submit(request));
        }
        for (size_t q = 0; q < kBurst; ++q) {
          auto response = tickets[q]->Await();
          if (response.ok()) {
            ok_latency[s].push_back(watches[q].ElapsedMillis());
          } else if (!response.status().IsUnavailable()) {
            bad_status = true;  // only shed/outage failures are acceptable
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (bad_status) Die(Status::RuntimeError("unexpected failure"), "faulty workload");
    const double faulty_wall_ms = wall.ElapsedMillis();

    auto stats = middleware.stats();
    const size_t total = kFaultySessions * kBurst;
    if (stats.queries + stats.cancelled + stats.errors != stats.submitted) {
      std::fprintf(stderr, "GATE FAILED: faulty-DBMS stats incoherent\n");
      return 1;
    }
    std::vector<double> all;
    for (const auto& l : ok_latency) all.insert(all.end(), l.begin(), l.end());
    const double shed_rate =
        static_cast<double>(stats.shed) / static_cast<double>(total);
    std::printf("\n=== faulty DBMS: p_fail=0.1, stall=0.2ms, 2 workers, queue bound 4 ===\n");
    std::printf("%10s %10s %10s %10s %10s %10s %10s\n", "submitted", "ok",
                "shed", "retries", "p50 ms", "p95 ms", "p99 ms");
    std::printf("%10zu %10zu %10zu %10zu %10.3f %10.3f %10.3f\n",
                stats.submitted, all.size(), stats.shed, stats.retries,
                Percentile(all, 0.50), Percentile(all, 0.95),
                Percentile(all, 0.99));

    json::Value row = json::Value::MakeObject();
    row.Set("sessions", kFaultySessions);
    row.Set("submitted", stats.submitted);
    row.Set("ok", all.size());
    row.Set("shed", stats.shed);
    row.Set("shed_rate", shed_rate);
    row.Set("retries", stats.retries);
    row.Set("degraded_responses", stats.degraded_responses);
    row.Set("wall_ms", faulty_wall_ms);
    row.Set("p50_ms", Percentile(all, 0.50));
    row.Set("p95_ms", Percentile(all, 0.95));
    row.Set("p99_ms", Percentile(all, 0.99));
    reporter.AddMetric("faulty_dbms", std::move(row));
    reporter.AddPhase("faulty_dbms", faulty_wall_ms);
  }

  // --- Out-of-core shard workload: the same closed-loop shape, but the
  // sessions brush a shard-backed table clustered on the brushed column, so
  // the middleware's storage counters (zone-map prunes, chunk page-ins,
  // resident bytes) are exercised and surfaced in the JSON output.
  {
    constexpr size_t kShardRows = 200000;
    constexpr size_t kShardSessions = 4;
    constexpr size_t kShardQueries = 16;
    data::Schema schema({{"x", data::DataType::kFloat64},
                         {"y", data::DataType::kFloat64}});
    data::TableBuilder builder(schema);
    builder.Reserve(kShardRows);
    Rng rng(config.seed);
    for (size_t r = 0; r < kShardRows; ++r) {
      builder.AppendRow(
          {data::Value::Double(static_cast<double>(r)),
           data::Value::Double(0.25 * static_cast<double>(rng.Index(4000)))});
    }
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string shard_path =
        std::string((tmpdir != nullptr && tmpdir[0]) ? tmpdir : "/tmp") +
        "/vps_bench_concurrent_shard.vps";
    storage::WriteOptions wopts;
    if (Status s = storage::TableShard::Write(shard_path, *builder.Build(), wopts);
        !s.ok()) {
      Die(s, "shard write");
    }
    auto reader = storage::Reader::Open(shard_path);
    if (!reader.ok()) Die(reader.status(), "shard open");
    if (Status s = engine.RegisterShardTable("clustered", *reader); !s.ok()) {
      Die(s, "shard register");
    }

    runtime::MiddlewareOptions options;
    options.enable_client_cache = false;
    options.enable_server_cache = false;
    options.worker_threads = kShardSessions;
    runtime::Middleware middleware(&engine, options);

    StopWatch wall;
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(kShardSessions);
    for (size_t s = 0; s < kShardSessions; ++s) {
      threads.emplace_back([&, s] {
        auto session = middleware.CreateSession();
        auto handle = session->Prepare(
            "SELECT COUNT(*) AS n, SUM(y) AS m FROM clustered "
            "WHERE x >= ${lo} AND x < ${hi}");
        if (!handle.ok()) {
          failed = true;
          return;
        }
        for (size_t q = 0; q < kShardQueries; ++q) {
          // Sliding 2% brush, distinct per (session, query).
          const double lo = static_cast<double>((s * kShardQueries + q) %
                                                49) * 0.02 *
                            static_cast<double>(kShardRows);
          rewrite::QueryRequest request;
          request.handle = *handle;
          request.params = {{"lo", expr::EvalValue::Number(lo)},
                            {"hi", expr::EvalValue::Number(
                                       lo + 0.02 * kShardRows)}};
          request.generation = q + 1;
          auto response = session->Submit(request)->Await();
          if (!response.ok()) failed = true;
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failed) Die(Status::RuntimeError("query failed"), "shard workload");
    const double shard_wall_ms = wall.ElapsedMillis();

    auto stats = middleware.stats();
    std::printf("\n=== out-of-core shard: %zu sessions x %zu brushes ===\n",
                kShardSessions, kShardQueries);
    std::printf("chunks_pruned=%zu chunks_paged_in=%zu resident_bytes=%zu\n",
                stats.storage_chunks_pruned, stats.storage_chunks_paged_in,
                stats.storage_resident_bytes);
    std::printf("kernel_bitmap=%zu kernel_index=%zu kernel_scalar_fallbacks=%zu\n",
                stats.kernel_bitmap_selections, stats.kernel_index_selections,
                stats.kernel_scalar_fallbacks);
    json::Value row = json::Value::MakeObject();
    row.Set("sessions", kShardSessions);
    row.Set("queries", kShardSessions * kShardQueries);
    row.Set("wall_ms", shard_wall_ms);
    row.Set("storage_chunks_pruned", stats.storage_chunks_pruned);
    row.Set("storage_morsels_pruned", stats.storage_morsels_pruned);
    row.Set("storage_chunks_paged_in", stats.storage_chunks_paged_in);
    row.Set("storage_resident_bytes", stats.storage_resident_bytes);
    row.Set("kernel_bitmap_selections", stats.kernel_bitmap_selections);
    row.Set("kernel_index_selections", stats.kernel_index_selections);
    row.Set("kernel_scalar_fallbacks", stats.kernel_scalar_fallbacks);
    reporter.AddMetric("out_of_core_shard", std::move(row));
    reporter.AddPhase("out_of_core_shard", shard_wall_ms);
    if (stats.storage_chunks_pruned == 0) {
      std::fprintf(stderr,
                   "GATE FAILED: clustered shard brushes pruned no chunks\n");
      return 1;
    }
    std::remove(shard_path.c_str());
  }

  // --- Deadline storm: 8 sessions burst tight-deadline requests at 2 workers
  // whose DBMS path stalls 20ms per execute. Cooperative cancellation caps
  // the stall at the deadline and aborts engine work at the next checkpoint,
  // so each worker is reclaimed in ~deadline ms instead of being held for the
  // full stall — the storm drains fast and the pool stays serviceable.
  {
    const size_t kStormSessions = 8;
    const size_t kStormBurst = 16;
    const double kStormDeadlineMs = 5;
    const double kStormStallMs = 20;
    runtime::MiddlewareOptions options;
    options.enable_client_cache = false;
    options.enable_server_cache = false;
    options.worker_threads = 2;
    options.fault_injection = runtime::FaultInjectorOptions{};
    options.fault_injection->seed = config.seed;
    options.fault_injection->rules.push_back(
        runtime::FaultRule{"", 0, false, 0, /*stall_ms=*/kStormStallMs});
    runtime::Middleware middleware(&engine, options);

    const std::string sql_template = "SELECT COUNT(*) AS n, AVG(" + field +
                                     ") AS m FROM flights WHERE " + field +
                                     " < ${cut}";
    std::atomic<bool> bad_status{false};
    std::vector<std::vector<double>> reclaim(kStormSessions);
    StopWatch wall;
    std::vector<std::thread> threads;
    threads.reserve(kStormSessions);
    for (size_t s = 0; s < kStormSessions; ++s) {
      threads.emplace_back([&, s] {
        auto session = middleware.CreateSession();
        auto handle = session->Prepare(sql_template);
        if (!handle.ok()) {
          bad_status = true;
          return;
        }
        std::vector<rewrite::QueryTicketPtr> tickets;
        std::vector<StopWatch> watches(kStormBurst);
        tickets.reserve(kStormBurst);
        for (size_t q = 0; q < kStormBurst; ++q) {
          rewrite::QueryRequest request;
          request.handle = *handle;
          request.params = {{"cut", expr::EvalValue::Number(
                                        9000.0 + static_cast<double>(s) * 1000.0 +
                                        static_cast<double>(q))}};
          request.deadline_ms = kStormDeadlineMs;
          watches[q] = StopWatch();
          tickets.push_back(session->Submit(request));
        }
        for (size_t q = 0; q < kStormBurst; ++q) {
          auto response = tickets[q]->Await();
          reclaim[s].push_back(watches[q].ElapsedMillis());
          // Completion, expiry, and shed are all legitimate storm outcomes;
          // anything else is a bug the bench must not paper over.
          if (!response.ok() && !response.status().IsDeadlineExceeded() &&
              !response.status().IsUnavailable()) {
            bad_status = true;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (bad_status) Die(Status::RuntimeError("unexpected status"), "deadline storm");
    const double storm_wall_ms = wall.ElapsedMillis();

    auto stats = middleware.stats();
    const size_t total = kStormSessions * kStormBurst;
    if (stats.queries + stats.cancelled + stats.errors != stats.submitted) {
      std::fprintf(stderr, "GATE FAILED: deadline-storm stats incoherent\n");
      return 1;
    }
    // Worker-reclaim latency: mean worker occupancy per storm request. An
    // uncancellable 20ms stall would pin it at >=20ms; the deadline cap plus
    // checkpoint abort reclaims each worker in about the 5ms deadline.
    const double reclaim_ms =
        storm_wall_ms * static_cast<double>(options.worker_threads) /
        static_cast<double>(total);
    std::vector<double> all;
    for (const auto& l : reclaim) all.insert(all.end(), l.begin(), l.end());
    std::printf("\n=== deadline storm: %zu sessions x %zu, deadline %.0fms, stall %.0fms, 2 workers ===\n",
                kStormSessions, kStormBurst, kStormDeadlineMs, kStormStallMs);
    std::printf("%10s %14s %14s %12s %10s %10s\n", "submitted", "deadline-hit",
                "mid-flight", "reclaim ms", "p95 ms", "p99 ms");
    std::printf("%10zu %14zu %14zu %12.3f %10.3f %10.3f\n", stats.submitted,
                stats.deadline_exceeded, stats.cancelled_mid_flight, reclaim_ms,
                Percentile(all, 0.95), Percentile(all, 0.99));

    // The pool must come back clean: a fresh query right after the storm.
    auto after = middleware.Execute("SELECT COUNT(*) AS n FROM flights");
    if (!after.ok()) Die(after.status(), "post-storm query");

    json::Value row = json::Value::MakeObject();
    row.Set("sessions", kStormSessions);
    row.Set("submitted", stats.submitted);
    row.Set("deadline_exceeded", stats.deadline_exceeded);
    row.Set("cancelled_mid_flight", stats.cancelled_mid_flight);
    row.Set("wall_ms", storm_wall_ms);
    row.Set("worker_reclaim_ms", reclaim_ms);
    row.Set("await_p95_ms", Percentile(all, 0.95));
    row.Set("await_p99_ms", Percentile(all, 0.99));
    reporter.AddMetric("deadline_storm", std::move(row));
    reporter.AddPhase("deadline_storm", storm_wall_ms);
    if (stats.deadline_exceeded == 0) {
      std::fprintf(stderr, "GATE FAILED: deadline storm never hit a deadline\n");
      return 1;
    }
    if (reclaim_ms >= kStormStallMs) {
      std::fprintf(stderr,
                   "GATE FAILED: worker reclaim %.1fms not below the %.0fms stall\n",
                   reclaim_ms, kStormStallMs);
      return 1;
    }
  }

  // --- Hedged requests vs injected stalls: every primary execution draws a
  // deterministic 40ms stall (the rule matches the cache key's "cut=" param
  // segment; hedge attempts run under an opaque digest key the rule cannot
  // match). Without hedging, every query eats the stall; with a 5ms hedge
  // threshold, the duplicate attempt answers in ~threshold + compute and the
  // stalled primary is abandoned through its token. p99 must improve.
  {
    const size_t kHedgeSessions = 4;
    const size_t kHedgeQueries = 32;
    const double kHedgeStallMs = 40;
    double p99_ms[2] = {0, 0};
    const bool hedge_on[2] = {false, true};
    const char* mode_names[2] = {"unhedged", "hedged"};
    std::printf("\n=== hedged requests: %.0fms primary stall, 5ms hedge threshold ===\n",
                kHedgeStallMs);
    std::printf("%10s %10s %10s %10s %10s %10s\n", "mode", "queries", "hedges",
                "wins", "p50 ms", "p99 ms");
    for (int m = 0; m < 2; ++m) {
      runtime::MiddlewareOptions options;
      options.enable_client_cache = false;
      options.enable_server_cache = false;
      // Headroom above the session count so hedge attempts get workers while
      // the stalled primaries are still occupying theirs.
      options.worker_threads = kHedgeSessions * 2;
      options.hedge.enabled = hedge_on[m];
      options.hedge.fixed_threshold_ms = 5;
      options.fault_injection = runtime::FaultInjectorOptions{};
      options.fault_injection->seed = config.seed;
      options.fault_injection->rules.push_back(
          runtime::FaultRule{"cut=", 0, false, 0, /*stall_ms=*/kHedgeStallMs});
      runtime::Middleware middleware(&engine, options);

      const std::string sql_template = "SELECT COUNT(*) AS n, AVG(" + field +
                                       ") AS m FROM flights WHERE " + field +
                                       " < ${cut}";
      std::atomic<bool> failed{false};
      std::vector<std::vector<double>> latencies(kHedgeSessions);
      StopWatch wall;
      std::vector<std::thread> threads;
      threads.reserve(kHedgeSessions);
      for (size_t s = 0; s < kHedgeSessions; ++s) {
        threads.emplace_back([&, s] {
          auto session = middleware.CreateSession();
          auto handle = session->Prepare(sql_template);
          if (!handle.ok()) {
            failed = true;
            return;
          }
          latencies[s].reserve(kHedgeQueries);
          for (size_t q = 0; q < kHedgeQueries; ++q) {
            rewrite::QueryRequest request;
            request.handle = *handle;
            request.params = {{"cut", expr::EvalValue::Number(
                                          20000.0 +
                                          static_cast<double>(s) * 1000.0 +
                                          static_cast<double>(q))}};
            StopWatch latency;
            auto response = session->Submit(request)->Await();
            latencies[s].push_back(latency.ElapsedMillis());
            if (!response.ok()) failed = true;
          }
        });
      }
      for (auto& t : threads) t.join();
      if (failed) Die(Status::RuntimeError("query failed"), "hedge workload");
      const double hedge_wall_ms = wall.ElapsedMillis();

      auto stats = middleware.stats();
      if (stats.queries + stats.cancelled + stats.errors != stats.submitted) {
        std::fprintf(stderr, "GATE FAILED: %s-run stats incoherent\n",
                     mode_names[m]);
        return 1;
      }
      std::vector<double> all;
      for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());
      p99_ms[m] = Percentile(all, 0.99);
      std::printf("%10s %10zu %10zu %10zu %10.3f %10.3f\n", mode_names[m],
                  all.size(), stats.hedged_requests, stats.hedge_wins,
                  Percentile(all, 0.50), p99_ms[m]);

      json::Value row = json::Value::MakeObject();
      row.Set("queries", all.size());
      row.Set("hedged_requests", stats.hedged_requests);
      row.Set("hedge_wins", stats.hedge_wins);
      row.Set("cancelled_mid_flight", stats.cancelled_mid_flight);
      row.Set("wall_ms", hedge_wall_ms);
      row.Set("p50_ms", Percentile(all, 0.50));
      row.Set("p99_ms", p99_ms[m]);
      reporter.AddMetric(std::string("hedge_") + mode_names[m], std::move(row));
      reporter.AddPhase(std::string("hedge_") + mode_names[m], hedge_wall_ms);
      if (hedge_on[m] && stats.hedge_wins == 0) {
        std::fprintf(stderr, "GATE FAILED: hedged run adopted no hedge results\n");
        return 1;
      }
    }
    std::printf("hedging p99: %.3fms -> %.3fms (%.1fx)\n", p99_ms[0], p99_ms[1],
                p99_ms[0] / p99_ms[1]);
    reporter.AddMetric("hedge_p99_speedup", json::Value(p99_ms[0] / p99_ms[1]));
    if (p99_ms[1] >= p99_ms[0]) {
      std::fprintf(stderr,
                   "GATE FAILED: hedged p99 %.3fms not below unhedged %.3fms\n",
                   p99_ms[1], p99_ms[0]);
      return 1;
    }
  }

  double scaling = results.back().throughput_qps / results.front().throughput_qps;
  size_t cores = std::thread::hardware_concurrency();
  std::printf("\nthroughput scaling 1 -> %zu sessions: %.2fx (%zu hardware threads)\n",
              results.back().sessions, scaling, cores);
  reporter.AddMetric("scaling_1_to_8", json::Value(scaling));
  reporter.AddMetric("hardware_threads", json::Value(cores));
  // Acceptance gate: a shared middleware must scale aggregate throughput
  // >2x from 1 to 8 sessions on a cache-miss workload. Sessions scale
  // through the worker pool's real parallelism, so the gate is only
  // meaningful where the hardware can run >=4 workers at once.
  if (cores < 4) {
    std::printf("GATE SKIPPED: %zu hardware threads (<4), no parallel headroom\n",
                cores);
    return 0;
  }
  if (scaling < 2.0) {
    std::fprintf(stderr, "GATE FAILED: scaling %.2fx < 2x\n", scaling);
    return 1;
  }
  std::printf("GATE OK (>2x)\n");
  return 0;
}
