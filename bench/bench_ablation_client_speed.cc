// Ablation (DESIGN.md §1): sensitivity to the client slowdown factor — the
// core asymmetry the optimizer exploits. Sweeps client_ns_per_row and
// reports where the all-client plan crosses over the full-pushdown plan.
#include <cstdio>

#include "bench_util.h"
#include "runtime/plan_executor.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  BenchReporter reporter("ablation_client_speed");
  reporter.RecordConfig(config);
  const size_t size = config.sizes[config.sizes.size() / 2];
  reporter.AddMetric("size", json::Value(size));
  std::printf("=== Ablation: client-compute slowdown sweep "
              "(histogram, size=%zu) ===\n\n", size);
  std::printf("%12s %14s %14s %10s\n", "client ns/row", "all-client_ms",
              "pushdown_ms", "winner");

  const auto id = benchdata::TemplateId::kInteractiveHistogram;
  BENCH_ASSIGN(benchdata::BenchCase bc,
               benchdata::MakeBenchCase(id, DatasetFor(id), size, config.seed));
  sql::Engine engine;
  engine.RegisterTable(bc.dataset.name, bc.dataset.table);
  rewrite::PlanBuilder builder(bc.spec);

  for (double ns : {25.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
    StopWatch sweep_watch;
    double totals[2];
    rewrite::ExecutionPlan plans[2] = {builder.AllClientPlan(),
                                       builder.FullPushdownPlan()};
    for (int p = 0; p < 2; ++p) {
      runtime::MiddlewareOptions options;
      options.latency.client_ns_per_row = ns;
      options.enable_client_cache = false;
      options.enable_server_cache = false;
      runtime::PlanExecutor executor(bc.spec, &engine, options);
      BENCH_ASSIGN(runtime::EpisodeCost init, executor.Initialize(plans[p]));
      totals[p] = init.total_ms;
      benchdata::WorkloadGenerator workload(bc.spec, config.seed);
      for (size_t i = 0; i < config.interactions; ++i) {
        BENCH_ASSIGN(runtime::EpisodeCost c, executor.Interact(workload.Next().updates));
        totals[p] += c.total_ms;
      }
    }
    std::printf("%12.0f %14.2f %14.2f %10s\n", ns, totals[0], totals[1],
                totals[0] < totals[1] ? "client" : "server");
    json::Value point = json::Value::MakeObject();
    point.Set("client_ns_per_row", ns);
    point.Set("all_client_ms", totals[0]);
    point.Set("pushdown_ms", totals[1]);
    reporter.AddMetric("ns_" + std::to_string(static_cast<int>(ns)), std::move(point));
    reporter.AddPhase("sweep_ns_" + std::to_string(static_cast<int>(ns)),
                      sweep_watch.ElapsedMillis());
  }
  std::printf("\n(the optimizer's value: neither side wins everywhere)\n");
  return 0;
}
