// Table 1: per-template characteristics — number of declared operators,
// number of enumerated plan candidates, and number of training pairs
// generated (sessions x interactions x plan pairs).
#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "plan/enumerator.h"

using namespace vegaplus;           // NOLINT
using namespace vegaplus::bench;    // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  std::printf("=== Table 1: template characteristics and enumeration space ===\n");
  std::printf("(sessions=%zu interactions=%zu; pair counts per data size)\n\n",
              config.sessions, config.interactions);
  std::printf("%-45s %9s %9s %14s\n", "template", "# of ops", "# of plans",
              "# of pairs");
  for (benchdata::TemplateId id : benchdata::AllTemplates()) {
    BENCH_ASSIGN(benchdata::BenchCase bc,
                 benchdata::MakeBenchCase(id, DatasetFor(id), 2000, config.seed));
    rewrite::PlanBuilder builder(bc.spec);
    plan::EnumerationResult e = plan::EnumeratePlans(builder, 1u << 22);
    size_t n = e.total_space;
    size_t pairs_per_episode = n * (n - 1) / 2;
    size_t episodes = benchdata::IsInteractive(id)
                          ? config.sessions * config.interactions
                          : config.sessions;
    std::printf("%-45s %9zu %9zu %14zu\n", benchdata::TemplateName(id),
                bc.spec.TotalOperators(), n, episodes * pairs_per_episode);
  }
  std::printf(
      "\nNote: like the paper, pair counts grow with sessions*interactions for\n"
      "interactive templates; training subsamples to VP max_pairs.\n");
  return 0;
}
