// Table 3: execution time of the plan each model picks vs the true optimum
// (exhaustive search over labels), summed across templates, per input size —
// the "accuracy does not imply fast plans" result of §7.3.1.
#include <cstdio>

#include "bench_util.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  BenchReporter reporter("table3_performance");
  reporter.RecordConfig(config);
  std::printf("=== Table 3: picked-plan execution time vs optimal (ms) ===\n\n");
  std::printf("%-14s", "models");
  for (size_t size : config.sizes) std::printf(" %11zu", size);
  std::printf("\n");

  // Picked-plan latency summed over templates, per model (+optimal row).
  std::vector<std::vector<double>> table(5, std::vector<double>(config.sizes.size(), 0));
  for (size_t si = 0; si < config.sizes.size(); ++si) {
    StopWatch size_watch;
    for (benchdata::TemplateId id : benchdata::AllTemplates()) {
      BENCH_ASSIGN(auto run,
                   CollectTemplate(id, DatasetFor(id), config.sizes[si], config));
      auto initial = run->InitialEpisodes();
      auto pairs = optimizer::MakePairs(initial, config.max_pairs, config.seed);
      std::vector<ml::PairExample> train, test;
      ml::TrainTestSplit(pairs, 0.6, config.seed, &train, &test);
      ModelSuite suite = TrainSuite(train, config.seed);
      // Evaluate on the first session's initial episode.
      const optimizer::EpisodeRecord& ep = initial.front();
      auto models = suite.All();
      for (size_t m = 0; m < models.size(); ++m) {
        size_t pick = optimizer::SelectBestPlan(*models[m], ep.vectors);
        table[m][si] += ep.latencies_ms[pick];
      }
      double best = ep.latencies_ms[0];
      for (double v : ep.latencies_ms) best = std::min(best, v);
      table[4][si] += best;
    }
    reporter.AddPhase("size_" + std::to_string(config.sizes[si]),
                      size_watch.ElapsedMillis());
  }

  const char* names[] = {"RankSVM", "Random Forest", "heuristic", "random", "optimal"};
  for (int m = 0; m < 5; ++m) {
    std::printf("%-14s", names[m]);
    json::Value row = json::Value::MakeArray();
    for (size_t si = 0; si < config.sizes.size(); ++si) {
      std::printf(" %11.2f", table[static_cast<size_t>(m)][si]);
      row.Append(json::Value(table[static_cast<size_t>(m)][si]));
    }
    std::printf("\n");
    reporter.AddMetric(names[m], std::move(row));
  }
  std::printf("\n(sums over the 7 templates; 'optimal' = exhaustive search)\n");
  return 0;
}
