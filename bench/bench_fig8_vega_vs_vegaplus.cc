// Figure 8: average per-session execution time, Vega vs VegaPlus (RankSVM
// comparator), split into initial rendering and interaction time, for every
// interactive template. Expected shape: VegaPlus wins overall, dominated by
// initial rendering; at small sizes interaction-only time can be slightly
// *worse* for VegaPlus (§7.5's consolidation trade-off).
#include <cstdio>

#include "bench_util.h"
#include "runtime/plan_executor.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  const size_t size = config.sizes.back();
  std::printf("=== Figure 8: avg session time (ms), Vega vs VegaPlus "
              "(RankSVM), size=%zu ===\n\n", size);
  std::printf("%-45s %12s %12s %12s %12s\n", "template", "vega_init",
              "vega_inter", "vp_init", "vp_inter");

  for (benchdata::TemplateId id : benchdata::AllTemplates()) {
    if (!benchdata::IsInteractive(id)) continue;
    BENCH_ASSIGN(auto run, CollectTemplate(id, DatasetFor(id), size, config));

    // Train RankSVM on this template's episodes and consolidate per §5.4.
    auto pairs = optimizer::MakePairs(run->AllEpisodes(), config.max_pairs, config.seed);
    std::vector<ml::PairExample> train, test;
    ml::TrainTestSplit(pairs, 0.6, config.seed, &train, &test);
    ModelSuite suite = TrainSuite(train, config.seed);
    size_t pick = optimizer::ConsolidateSession(*suite.ranksvm, run->sessions[0]);
    const rewrite::ExecutionPlan& plan = run->enumeration.plans[pick];

    double vega_init = 0, vega_inter = 0, vp_init = 0, vp_inter = 0;
    std::map<std::string, data::TablePtr> tables{
        {run->bc.dataset.name, run->bc.dataset.table}};
    for (size_t s = 0; s < config.sessions; ++s) {
      benchdata::WorkloadGenerator workload(run->bc.spec, config.seed * 31 + s);
      runtime::VegaBaselineExecutor vega(run->bc.spec, tables);
      BENCH_ASSIGN(runtime::EpisodeCost vcost, vega.Initialize());
      vega_init += vcost.total_ms;
      runtime::PlanExecutor vegaplus(run->bc.spec, run->engine.get(), {});
      BENCH_ASSIGN(runtime::EpisodeCost pcost, vegaplus.Initialize(plan));
      vp_init += pcost.total_ms;
      for (size_t i = 0; i < config.interactions; ++i) {
        auto interaction = workload.Next();
        BENCH_ASSIGN(runtime::EpisodeCost vi, vega.Interact(interaction.updates));
        vega_inter += vi.total_ms;
        BENCH_ASSIGN(runtime::EpisodeCost pi, vegaplus.Interact(interaction.updates));
        vp_inter += pi.total_ms;
      }
    }
    double n = static_cast<double>(config.sessions);
    std::printf("%-45s %12.2f %12.2f %12.2f %12.2f\n", benchdata::TemplateName(id),
                vega_init / n, vega_inter / n, vp_init / n, vp_inter / n);
  }
  std::printf("\n(vega_init includes CSV load+parse; VegaPlus uses the plan\n"
              "consolidated across the session by the RankSVM cost model)\n");
  return 0;
}
