// Ablation (§5.5): the two-level query cache. Runs the same interaction
// session with caches on vs off and reports interaction latency. Repetitive
// workloads (users revisiting slider values) should benefit most.
#include <cstdio>

#include "bench_util.h"
#include "runtime/plan_executor.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  const size_t size = config.sizes.back();
  std::printf("=== Ablation: two-level cache on/off (interaction ms, size=%zu) ===\n\n",
              size);
  std::printf("%-45s %12s %12s %12s\n", "template", "cache_on", "cache_off",
              "hit_rate");

  for (benchdata::TemplateId id : benchdata::AllTemplates()) {
    if (!benchdata::IsInteractive(id)) continue;
    BENCH_ASSIGN(benchdata::BenchCase bc,
                 benchdata::MakeBenchCase(id, DatasetFor(id), size, config.seed));
    sql::Engine engine;
    engine.RegisterTable(bc.dataset.name, bc.dataset.table);
    rewrite::PlanBuilder builder(bc.spec);
    rewrite::ExecutionPlan plan = builder.FullPushdownPlan();

    // A looping session: half the interactions repeat earlier ones.
    benchdata::WorkloadGenerator workload(bc.spec, config.seed);
    auto base = workload.Session(config.interactions);
    std::vector<benchdata::Interaction> session = base;
    session.insert(session.end(), base.begin(), base.end());  // repeat

    double with_cache = 0, without_cache = 0, hit_rate = 0;
    {
      runtime::PlanExecutor executor(bc.spec, &engine, {});
      BENCH_ASSIGN(runtime::EpisodeCost init, executor.Initialize(plan));
      (void)init;
      for (const auto& interaction : session) {
        BENCH_ASSIGN(runtime::EpisodeCost c, executor.Interact(interaction.updates));
        with_cache += c.total_ms;
      }
      const auto& stats = executor.middleware().stats();
      hit_rate = stats.queries == 0
                     ? 0
                     : static_cast<double>(stats.client_cache_hits +
                                           stats.server_cache_hits) /
                           static_cast<double>(stats.queries);
    }
    {
      runtime::MiddlewareOptions off;
      off.enable_client_cache = false;
      off.enable_server_cache = false;
      runtime::PlanExecutor executor(bc.spec, &engine, off);
      BENCH_ASSIGN(runtime::EpisodeCost init, executor.Initialize(plan));
      (void)init;
      for (const auto& interaction : session) {
        BENCH_ASSIGN(runtime::EpisodeCost c, executor.Interact(interaction.updates));
        without_cache += c.total_ms;
      }
    }
    std::printf("%-45s %12.2f %12.2f %11.0f%%\n", benchdata::TemplateName(id),
                with_cache, without_cache, hit_rate * 100);
  }
  return 0;
}
