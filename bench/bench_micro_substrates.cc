// google-benchmark microbenchmarks for the substrates: SQL operators,
// dataflow propagation, and result-set encodings.
#include <benchmark/benchmark.h>

#include "benchdata/datasets.h"
#include "data/ipc.h"
#include "expr/parser.h"
#include "spec/compiler.h"
#include "sql/engine.h"
#include "transforms/transforms.h"

namespace {

using namespace vegaplus;  // NOLINT

data::TablePtr FlightsTable(size_t rows) {
  static std::map<size_t, data::TablePtr> cache;
  auto it = cache.find(rows);
  if (it != cache.end()) return it->second;
  auto ds = benchdata::MakeDataset("flights", rows, 1);
  cache[rows] = ds->table;
  return ds->table;
}

void BM_SqlFilterScan(benchmark::State& state) {
  sql::Engine engine;
  engine.RegisterTable("flights", FlightsTable(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    auto r = engine.Query("SELECT * FROM flights WHERE dep_delay > 30");
    benchmark::DoNotOptimize(r->table);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SqlFilterScan)->Arg(10000)->Arg(50000);

void BM_SqlGroupByAggregate(benchmark::State& state) {
  sql::Engine engine;
  engine.RegisterTable("flights", FlightsTable(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    auto r = engine.Query(
        "SELECT origin, COUNT(*) AS c, AVG(dep_delay) AS d FROM flights GROUP BY "
        "origin");
    benchmark::DoNotOptimize(r->table);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SqlGroupByAggregate)->Arg(10000)->Arg(50000);

void BM_SqlBinAggregate(benchmark::State& state) {
  sql::Engine engine;
  engine.RegisterTable("flights", FlightsTable(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    auto r = engine.Query(
        "SELECT FLOOR(distance / 200) * 200 AS bin0, COUNT(*) AS c FROM flights "
        "GROUP BY FLOOR(distance / 200) * 200");
    benchmark::DoNotOptimize(r->table);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SqlBinAggregate)->Arg(10000)->Arg(50000);

void BM_DataflowFilterPropagation(benchmark::State& state) {
  dataflow::Dataflow flow;
  flow.DeclareSignal("t", expr::EvalValue::Number(0));
  auto* src = flow.Add(std::make_unique<dataflow::TableSourceOp>(
                           FlightsTable(static_cast<size_t>(state.range(0)))),
                       nullptr);
  auto pred = *expr::ParseExpression("datum.dep_delay > t");
  flow.Add(std::make_unique<transforms::FilterOp>(pred), src);
  (void)flow.Run();
  double threshold = 0;
  for (auto _ : state) {
    threshold = threshold > 50 ? 0 : threshold + 1;
    auto stats = flow.Update({{"t", expr::EvalValue::Number(threshold)}});
    benchmark::DoNotOptimize(stats->rows_processed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DataflowFilterPropagation)->Arg(10000)->Arg(50000);

void BM_EncodeBinary(benchmark::State& state) {
  data::TablePtr t = FlightsTable(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string bytes = data::SerializeBinary(*t);
    benchmark::DoNotOptimize(bytes.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeBinary)->Arg(10000)->Arg(50000);

void BM_EncodeJson(benchmark::State& state) {
  data::TablePtr t = FlightsTable(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string bytes = data::SerializeJsonRows(*t);
    benchmark::DoNotOptimize(bytes.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeJson)->Arg(10000)->Arg(50000);

void BM_ExpressionEvaluate(benchmark::State& state) {
  data::TablePtr t = FlightsTable(10000);
  auto e = *expr::ParseExpression(
      "datum.dep_delay > 10 && datum.distance < 1500 && datum.origin == 'ATL'");
  expr::EvalContext ctx;
  ctx.table = t.get();
  size_t row = 0;
  for (auto _ : state) {
    ctx.row = row++ % t->num_rows();
    benchmark::DoNotOptimize(expr::Evaluate(e, ctx).Truthy());
  }
}
BENCHMARK(BM_ExpressionEvaluate);

}  // namespace

BENCHMARK_MAIN();
