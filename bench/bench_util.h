// Shared harness for the table/figure reproduction binaries.
//
// Scale: defaults are reduced so the whole suite finishes in minutes; set
// VP_PAPER_SCALE=1 for the paper's sizes (50k..1M rows, 10x20 sessions).
// Sizes can also be set directly: VP_SIZES=10000,50000.
#ifndef VEGAPLUS_BENCH_BENCH_UTIL_H_
#define VEGAPLUS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "benchdata/templates.h"
#include "benchdata/workload.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "json/json_value.h"
#include "json/json_writer.h"
#include "optimizer/comparator.h"
#include "optimizer/trainer.h"

namespace vegaplus {
namespace bench {

struct BenchConfig {
  std::vector<size_t> sizes{5000, 10000, 20000, 50000};
  size_t sessions = 2;
  size_t interactions = 5;
  size_t max_plans = 192;
  size_t max_pairs = 12000;
  uint64_t seed = 2024;
};

inline BenchConfig LoadConfig() {
  BenchConfig config;
  if (const char* env = std::getenv("VP_PAPER_SCALE"); env && env[0] == '1') {
    config.sizes = {50000, 100000, 500000, 1000000};
    config.sessions = 10;
    config.interactions = 20;
  }
  if (const char* env = std::getenv("VP_SIZES")) {
    config.sizes.clear();
    for (const std::string& s : Split(env, ',')) {
      int64_t v = 0;
      if (ParseInt64(s, &v) && v > 0) config.sizes.push_back(static_cast<size_t>(v));
    }
  }
  if (const char* env = std::getenv("VP_SESSIONS")) {
    int64_t v = 0;
    if (ParseInt64(env, &v) && v > 0) config.sessions = static_cast<size_t>(v);
  }
  if (const char* env = std::getenv("VP_INTERACTIONS")) {
    int64_t v = 0;
    if (ParseInt64(env, &v) && v > 0) config.interactions = static_cast<size_t>(v);
  }
  return config;
}

/// \brief Machine-readable benchmark output: BENCH_<name>.json with the run
/// config, per-phase wall-clock, and free-form result metrics, so the repo's
/// perf trajectory is tracked across PRs (CI uploads these as artifacts).
///
/// Usage: construct at the top of main(), RecordConfig(), AddPhase()/
/// AddMetric() as results land. The file is written on destruction (or an
/// explicit Write()), into $VP_BENCH_JSON_DIR or the working directory.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {
    root_ = json::Value::MakeObject();
    root_.Set("bench", name_);
    phases_ = json::Value::MakeArray();
    metrics_ = json::Value::MakeObject();
  }
  ~BenchReporter() { Write(); }
  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  void RecordConfig(const BenchConfig& config) {
    json::Value c = json::Value::MakeObject();
    json::Value sizes = json::Value::MakeArray();
    for (size_t s : config.sizes) sizes.Append(json::Value(s));
    c.Set("sizes", std::move(sizes));
    c.Set("sessions", config.sessions);
    c.Set("interactions", config.interactions);
    c.Set("max_plans", config.max_plans);
    c.Set("seed", static_cast<size_t>(config.seed));
    root_.Set("config", std::move(c));
  }

  /// Record one timed phase (wall-clock milliseconds), in run order.
  void AddPhase(const std::string& phase, double wall_ms) {
    json::Value p = json::Value::MakeObject();
    p.Set("name", phase);
    p.Set("wall_ms", wall_ms);
    phases_.Append(std::move(p));
  }

  /// Record a free-form result metric (number, string, or nested object).
  void AddMetric(const std::string& key, json::Value v) {
    metrics_.Set(key, std::move(v));
  }

  void Write() {
    if (written_) return;
    written_ = true;
    root_.Set("total_wall_ms", total_.ElapsedMillis());
    root_.Set("phases", phases_);
    root_.Set("metrics", metrics_);
    std::string dir = ".";
    if (const char* env = std::getenv("VP_BENCH_JSON_DIR"); env != nullptr && env[0]) {
      dir = env;
    }
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    out << json::WritePretty(root_) << "\n";
    out.flush();
    if (out.good()) {
      std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "[bench] ERROR: failed to write %s\n", path.c_str());
    }
  }

 private:
  std::string name_;
  bool written_ = false;
  StopWatch total_;
  json::Value root_;
  json::Value phases_;
  json::Value metrics_;
};

/// Deterministic dataset choice per template (the paper randomly pairs
/// templates with datasets; we rotate).
inline std::string DatasetFor(benchdata::TemplateId id) {
  auto names = benchdata::DatasetNames();
  return names[static_cast<size_t>(id) % names.size()];
}

/// \brief Collected training/evaluation data for one (template, size).
struct TemplateRun {
  benchdata::BenchCase bc;
  std::unique_ptr<sql::Engine> engine;
  plan::EnumerationResult enumeration;
  /// episodes, grouped per session; sessions[s][0] is initial rendering.
  std::vector<std::vector<optimizer::EpisodeRecord>> sessions;

  std::vector<optimizer::EpisodeRecord> AllEpisodes() const {
    std::vector<optimizer::EpisodeRecord> all;
    for (const auto& s : sessions) {
      all.insert(all.end(), s.begin(), s.end());
    }
    return all;
  }
  std::vector<optimizer::EpisodeRecord> InitialEpisodes() const {
    std::vector<optimizer::EpisodeRecord> all;
    for (const auto& s : sessions) {
      if (!s.empty()) all.push_back(s.front());
    }
    return all;
  }
};

/// Simulate `sessions` sessions of `interactions` interactions each,
/// labeling + encoding every candidate plan per episode (§7.1's workload).
inline Result<std::unique_ptr<TemplateRun>> CollectTemplate(
    benchdata::TemplateId id, const std::string& dataset, size_t rows,
    const BenchConfig& config) {
  auto run = std::make_unique<TemplateRun>();
  VP_ASSIGN_OR_RETURN(run->bc, benchdata::MakeBenchCase(id, dataset, rows,
                                                        config.seed ^ rows));
  run->engine = std::make_unique<sql::Engine>();
  run->engine->RegisterTable(run->bc.dataset.name, run->bc.dataset.table);
  const bool interactive = benchdata::IsInteractive(id);

  for (size_t s = 0; s < config.sessions; ++s) {
    optimizer::CollectorOptions copts;
    copts.max_plans = config.max_plans;
    copts.seed = config.seed + s;
    optimizer::EpisodeCollector collector(run->bc.spec, run->engine.get(), copts);
    VP_RETURN_IF_ERROR(collector.Start());
    if (s == 0) run->enumeration = collector.enumeration();
    std::vector<optimizer::EpisodeRecord> episodes;
    VP_ASSIGN_OR_RETURN(optimizer::EpisodeRecord initial, collector.Collect());
    episodes.push_back(std::move(initial));
    if (interactive) {
      benchdata::WorkloadGenerator workload(run->bc.spec, config.seed * 31 + s);
      for (size_t i = 0; i < config.interactions; ++i) {
        VP_RETURN_IF_ERROR(collector.ApplyInteraction(workload.Next().updates));
        VP_ASSIGN_OR_RETURN(optimizer::EpisodeRecord ep, collector.Collect());
        episodes.push_back(std::move(ep));
      }
    }
    run->sessions.push_back(std::move(episodes));
  }
  return run;
}

/// \brief The four §5.3.2 models, trained on one pair set.
struct ModelSuite {
  std::unique_ptr<optimizer::RankSvmComparator> ranksvm;
  std::unique_ptr<optimizer::RandomForestComparator> forest;
  std::unique_ptr<optimizer::HeuristicComparator> heuristic;
  std::unique_ptr<optimizer::RandomComparator> random;

  std::vector<const optimizer::PlanComparator*> All() const {
    return {ranksvm.get(), forest.get(), heuristic.get(), random.get()};
  }
};

inline ModelSuite TrainSuite(const std::vector<ml::PairExample>& train, uint64_t seed) {
  ModelSuite suite;
  ml::RankSvm svm;
  svm.Train(train);
  suite.ranksvm = std::make_unique<optimizer::RankSvmComparator>(std::move(svm));
  ml::ForestOptions fopts;
  fopts.num_trees = 24;
  fopts.seed = seed;
  ml::RandomForest forest(fopts);
  forest.Train(train);
  suite.forest = std::make_unique<optimizer::RandomForestComparator>(std::move(forest));
  suite.heuristic = std::make_unique<optimizer::HeuristicComparator>();
  suite.random = std::make_unique<optimizer::RandomComparator>(seed);
  return suite;
}

/// Pairwise accuracy of a comparator over labeled pairs.
inline double ComparatorAccuracy(const optimizer::PlanComparator& comparator,
                                 const std::vector<ml::PairExample>& pairs) {
  if (pairs.empty()) return 0;
  size_t correct = 0;
  for (const auto& p : pairs) {
    int predicted = comparator.Compare(p.a, p.b);
    int actual = p.label == 1 ? -1 : 1;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pairs.size());
}

inline void Die(const Status& status, const char* what) {
  std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
  std::exit(1);
}

#define BENCH_ASSIGN(lhs, expr_result)                    \
  auto VP_CONCAT(_bench_r_, __LINE__) = (expr_result);    \
  if (!VP_CONCAT(_bench_r_, __LINE__).ok())               \
    ::vegaplus::bench::Die(VP_CONCAT(_bench_r_, __LINE__).status(), #expr_result); \
  lhs = std::move(VP_CONCAT(_bench_r_, __LINE__)).ValueOrDie()

}  // namespace bench
}  // namespace vegaplus

#endif  // VEGAPLUS_BENCH_BENCH_UTIL_H_
