// Figure 6: distribution of candidate-plan execution times for initial
// rendering, per template x data size. Printed as summary series
// (min / p25 / median / p75 / max) — the paper's faceted scatter columns.
// Expected shape: more candidates => wider spread; latency grows with size;
// clusters blur as size grows.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  config.sessions = 1;  // Fig. 6 plots initial rendering only
  std::printf("=== Figure 6: candidate plan execution time distribution "
              "(initial rendering, ms) ===\n");
  for (benchdata::TemplateId id : benchdata::AllTemplates()) {
    std::printf("\n-- %s --\n", benchdata::TemplateName(id));
    std::printf("%10s %7s %10s %10s %10s %10s %10s\n", "size", "plans", "min", "p25",
                "median", "p75", "max");
    for (size_t size : config.sizes) {
      BENCH_ASSIGN(auto run, CollectTemplate(id, DatasetFor(id), size, config));
      std::vector<double> lat = run->sessions[0][0].latencies_ms;
      std::sort(lat.begin(), lat.end());
      auto q = [&lat](double p) {
        return lat[static_cast<size_t>(p * static_cast<double>(lat.size() - 1))];
      };
      std::printf("%10zu %7zu %10.2f %10.2f %10.2f %10.2f %10.2f\n", size, lat.size(),
                  lat.front(), q(0.25), q(0.5), q(0.75), lat.back());
    }
  }
  return 0;
}
