// Ablation (§4): result encoding — columnar binary ("Apache Arrow format")
// vs JSON rows — for plans that fetch raw data vs plans that fetch
// aggregates. The binary win should be largest on raw fetches.
//
// Also reports the dictionary-vs-flat string-column encoding inside the
// binary IPC format: the dataset is serialized once with its string columns
// dictionary-encoded (the default) and once decoded flat, and the payload
// byte counts land in BENCH_ablation_encoding.json (uploaded by CI), so the
// transfer-size win of dictionary codes is tracked across PRs.
#include <cstdio>

#include "bench_util.h"
#include "data/ipc.h"
#include "runtime/plan_executor.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

namespace {

/// The table with every string column forced to the given physical form.
data::TablePtr Recode(const data::Table& table, bool dict) {
  std::vector<data::Column> columns;
  columns.reserve(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    columns.push_back(dict ? table.column(c).EncodeDictionary()
                           : table.column(c).DecodeFlat());
  }
  return std::make_shared<data::Table>(table.schema(), std::move(columns));
}

}  // namespace

int main() {
  BenchConfig config = LoadConfig();
  BenchReporter reporter("ablation_encoding");
  reporter.RecordConfig(config);
  std::printf("=== Ablation: binary (Arrow-style) vs JSON result encoding ===\n\n");
  std::printf("%10s %-14s %14s %14s %9s\n", "size", "plan", "binary_ms", "json_ms",
              "ratio");

  const auto id = benchdata::TemplateId::kInteractiveHistogram;
  for (size_t size : config.sizes) {
    BENCH_ASSIGN(benchdata::BenchCase bc,
                 benchdata::MakeBenchCase(id, DatasetFor(id), size, config.seed));
    sql::Engine engine;
    engine.RegisterTable(bc.dataset.name, bc.dataset.table);
    rewrite::PlanBuilder builder(bc.spec);
    struct Condition {
      const char* name;
      rewrite::ExecutionPlan plan;
    };
    std::vector<Condition> conditions{{"raw-fetch", builder.AllClientPlan()},
                                      {"pushdown", builder.FullPushdownPlan()}};
    for (const auto& condition : conditions) {
      double ms[2];
      for (int binary = 1; binary >= 0; --binary) {
        runtime::MiddlewareOptions options;
        options.binary_encoding = binary == 1;
        options.enable_client_cache = false;
        options.enable_server_cache = false;
        runtime::PlanExecutor executor(bc.spec, &engine, options);
        BENCH_ASSIGN(runtime::EpisodeCost cost, executor.Initialize(condition.plan));
        ms[binary] = cost.total_ms;
      }
      std::printf("%10zu %-14s %14.2f %14.2f %8.2fx\n", size, condition.name, ms[1],
                  ms[0], ms[0] / ms[1]);
      json::Value m = json::Value::MakeObject();
      m.Set("size", size);
      m.Set("plan", condition.name);
      m.Set("binary_ms", ms[1]);
      m.Set("json_ms", ms[0]);
      reporter.AddMetric(StrFormat("%s_%zu", condition.name, size), std::move(m));
    }

    // Dictionary vs flat string columns inside the binary IPC payload.
    data::TablePtr dict_table = Recode(*bc.dataset.table, /*dict=*/true);
    data::TablePtr flat_table = Recode(*bc.dataset.table, /*dict=*/false);
    const size_t dict_bytes = data::SerializeBinary(*dict_table).size();
    const size_t flat_bytes = data::SerializeBinary(*flat_table).size();
    std::printf("%10zu %-14s %14zu %14zu %8.2fx  (ipc payload bytes)\n", size,
                "dict-vs-flat", dict_bytes, flat_bytes,
                static_cast<double>(flat_bytes) / static_cast<double>(dict_bytes));
    json::Value m = json::Value::MakeObject();
    m.Set("size", size);
    m.Set("ipc_bytes_dict", dict_bytes);
    m.Set("ipc_bytes_flat", flat_bytes);
    m.Set("flat_over_dict",
          static_cast<double>(flat_bytes) / static_cast<double>(dict_bytes));
    reporter.AddMetric(StrFormat("ipc_payload_%zu", size), std::move(m));
  }
  return 0;
}
