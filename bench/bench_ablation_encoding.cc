// Ablation (§4): result encoding — columnar binary ("Apache Arrow format")
// vs JSON rows — for plans that fetch raw data vs plans that fetch
// aggregates. The binary win should be largest on raw fetches.
#include <cstdio>

#include "bench_util.h"
#include "runtime/plan_executor.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  std::printf("=== Ablation: binary (Arrow-style) vs JSON result encoding ===\n\n");
  std::printf("%10s %-14s %14s %14s %9s\n", "size", "plan", "binary_ms", "json_ms",
              "ratio");

  const auto id = benchdata::TemplateId::kInteractiveHistogram;
  for (size_t size : config.sizes) {
    BENCH_ASSIGN(benchdata::BenchCase bc,
                 benchdata::MakeBenchCase(id, DatasetFor(id), size, config.seed));
    sql::Engine engine;
    engine.RegisterTable(bc.dataset.name, bc.dataset.table);
    rewrite::PlanBuilder builder(bc.spec);
    struct Condition {
      const char* name;
      rewrite::ExecutionPlan plan;
    };
    std::vector<Condition> conditions{{"raw-fetch", builder.AllClientPlan()},
                                      {"pushdown", builder.FullPushdownPlan()}};
    for (const auto& condition : conditions) {
      double ms[2];
      for (int binary = 1; binary >= 0; --binary) {
        runtime::MiddlewareOptions options;
        options.binary_encoding = binary == 1;
        options.enable_client_cache = false;
        options.enable_server_cache = false;
        runtime::PlanExecutor executor(bc.spec, &engine, options);
        BENCH_ASSIGN(runtime::EpisodeCost cost, executor.Initialize(condition.plan));
        ms[binary] = cost.total_ms;
      }
      std::printf("%10zu %-14s %14.2f %14.2f %8.2fx\n", size, condition.name, ms[1],
                  ms[0], ms[0] / ms[1]);
    }
  }
  return 0;
}
