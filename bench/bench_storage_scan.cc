// Out-of-core storage scan: zone-map pruning on vs off over an on-disk
// columnar shard. A clustered 4M-row table is written as a VPS1 shard and
// registered as a shard-backed SQL table; selective brush queries then run
// twice from a cold chunk cache — once with zone-map pruning enabled, once
// with the kill switch thrown — and must come back bit-identical. Because
// the table is clustered on the brushed column, the zone maps prove most
// chunks irrelevant, so the pruned scan decodes a fraction of the shard:
// the gate requires >=3x cold-scan speedup and a non-zero pruned-chunk
// count (hard gate: non-zero exit). Results land in BENCH_storage_scan.json
// (uploaded by CI).
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/random.h"
#include "data/table.h"
#include "sql/engine.h"
#include "storage/reader.h"
#include "storage/stats.h"
#include "storage/table_shard.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

namespace {

/// Clustered dataset: `x` increases monotonically (so chunk zones tile the
/// domain), `cat` changes in 16 long runs (so string zones are selective
/// too), `y` is quantized noise whose SUM is order-insensitive.
data::TablePtr MakeClusteredTable(size_t rows, uint64_t seed) {
  data::Schema schema({{"x", data::DataType::kFloat64},
                       {"y", data::DataType::kFloat64},
                       {"cat", data::DataType::kString}});
  Rng rng(seed);
  data::TableBuilder builder(schema);
  builder.Reserve(rows);
  const size_t run = rows / 16 + 1;
  for (size_t r = 0; r < rows; ++r) {
    builder.AppendRow(
        {data::Value::Double(static_cast<double>(r)),
         data::Value::Double(0.25 * static_cast<double>(rng.Index(4000))),
         data::Value::String("run_" + std::to_string(r / run))});
  }
  return builder.Build();
}

std::string ShardPath(size_t size) {
  const char* dir = std::getenv("TMPDIR");
  std::string base = (dir != nullptr && dir[0]) ? dir : "/tmp";
  return base + "/vps_bench_storage_scan_" + std::to_string(size) + ".vps";
}

struct ScanCase {
  std::string label;
  std::string sql;
};

/// RAII kill-switch scope so a failed run cannot leave pruning disabled.
class PruningScope {
 public:
  explicit PruningScope(bool enabled)
      : saved_(storage::ZoneMapPruningEnabled()) {
    storage::SetZoneMapPruningEnabled(enabled);
  }
  ~PruningScope() { storage::SetZoneMapPruningEnabled(saved_); }

 private:
  bool saved_;
};

}  // namespace

int main() {
  BenchConfig config = LoadConfig();
  // Needs enough rows that decoding the whole shard visibly dwarfs decoding
  // the few chunks a selective brush admits; default to 4M unless pinned.
  if (std::getenv("VP_SIZES") == nullptr) config.sizes = {4000000};
  BenchReporter reporter("storage_scan");
  reporter.RecordConfig(config);
  std::printf("=== Shard scan: zone-map pruning on vs off (cold cache) ===\n\n");
  std::printf("%10s %-24s %12s %12s %8s %14s\n", "size", "query", "full_ms",
              "pruned_ms", "ratio", "chunks_pruned");

  bool gate_ok = true;
  json::Value rows_out = json::Value::MakeArray();

  for (size_t size : config.sizes) {
    StopWatch load_watch;
    data::TablePtr table = MakeClusteredTable(size, config.seed);
    reporter.AddPhase(StrFormat("load_%zu", size), load_watch.ElapsedMillis());

    const std::string path = ShardPath(size);
    StopWatch write_watch;
    storage::WriteOptions wopts;  // default chunk_rows = morsel size
    Status written = storage::TableShard::Write(path, *table, wopts);
    if (!written.ok()) {
      std::fprintf(stderr, "shard write failed: %s\n", written.ToString().c_str());
      return 1;
    }
    reporter.AddPhase(StrFormat("shard_write_%zu", size), write_watch.ElapsedMillis());

    auto reader = storage::Reader::Open(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "shard open failed: %s\n", reader.status().ToString().c_str());
      return 1;
    }
    // Out-of-core for real: the resident-chunk budget is far below the
    // decoded table, so the unpruned scan cannot amortize across queries.
    (*reader)->set_residency_budget(64 << 20);

    sql::Engine engine;
    if (Status s = engine.RegisterShardTable("t", *reader); !s.ok()) {
      std::fprintf(stderr, "register failed: %s\n", s.ToString().c_str());
      return 1;
    }

    // Brushes over ~3% of the clustered domain; the last case mixes a
    // numeric brush with a dictionary-string equality.
    const double hi = static_cast<double>(size);
    std::vector<ScanCase> cases;
    cases.push_back({"brush_low_3pct",
                     StrFormat("SELECT COUNT(*) AS n, SUM(y) AS s FROM t "
                               "WHERE x >= %f AND x < %f",
                               0.10 * hi, 0.13 * hi)});
    cases.push_back({"brush_high_3pct",
                     StrFormat("SELECT COUNT(*) AS n, SUM(y) AS s FROM t "
                               "WHERE x >= %f AND x < %f",
                               0.90 * hi, 0.93 * hi)});
    cases.push_back({"brush_cat_run",
                     StrFormat("SELECT COUNT(*) AS n, SUM(y) AS s FROM t "
                               "WHERE cat = 'run_4' AND x < %f", 0.35 * hi)});

    for (const ScanCase& sc : cases) {
      // Unpruned cold scan (kill switch thrown).
      double full_ms = 0;
      Result<sql::QueryResult> full = Status::RuntimeError("unset");
      {
        PruningScope off(false);
        (*reader)->EvictAll();
        StopWatch w;
        full = engine.Query(sc.sql);
        full_ms = w.ElapsedMillis();
      }
      // Pruned cold scan.
      const uint64_t pruned_before = storage::ChunksPruned();
      double pruned_ms = 0;
      Result<sql::QueryResult> pruned = Status::RuntimeError("unset");
      {
        PruningScope on(true);
        (*reader)->EvictAll();
        StopWatch w;
        pruned = engine.Query(sc.sql);
        pruned_ms = w.ElapsedMillis();
      }
      const uint64_t chunks_pruned = storage::ChunksPruned() - pruned_before;

      if (!full.ok() || !pruned.ok()) {
        std::fprintf(stderr, "query %s failed: %s\n", sc.label.c_str(),
                     (!full.ok() ? full : pruned).status().ToString().c_str());
        return 1;
      }
      if (!full->table->Equals(*pruned->table)) {
        std::fprintf(stderr, "FAIL: %s pruned/full results differ\n",
                     sc.label.c_str());
        return 1;
      }
      const double ratio = full_ms / (pruned_ms > 0 ? pruned_ms : 1e-9);
      std::printf("%10zu %-24s %12.3f %12.3f %7.1fx %14llu\n", size,
                  sc.label.c_str(), full_ms, pruned_ms, ratio,
                  static_cast<unsigned long long>(chunks_pruned));
      json::Value row = json::Value::MakeObject();
      row.Set("size", size);
      row.Set("query", sc.label);
      row.Set("full_ms", full_ms);
      row.Set("pruned_ms", pruned_ms);
      row.Set("ratio", ratio);
      row.Set("chunks_pruned", static_cast<size_t>(chunks_pruned));
      rows_out.Append(std::move(row));
      if (chunks_pruned == 0) {
        std::fprintf(stderr, "FAIL: %s pruned no chunks\n", sc.label.c_str());
        gate_ok = false;
      }
      if (ratio < 3.0) {
        std::fprintf(stderr, "FAIL: %s ratio %.1fx below the 3x gate\n",
                     sc.label.c_str(), ratio);
        gate_ok = false;
      }
    }

    json::Value shard = json::Value::MakeObject();
    shard.Set("num_chunks", (*reader)->num_chunks());
    shard.Set("resident_budget_bytes", (*reader)->residency_budget());
    reporter.AddMetric(StrFormat("shard_%zu", size), std::move(shard));
    std::remove(path.c_str());
  }

  reporter.AddMetric("queries", std::move(rows_out));
  reporter.AddMetric("gate", json::Value(gate_ok ? "pass" : "fail"));
  if (!gate_ok) {
    std::fprintf(stderr, "\nFAIL: shard scan below the 3x pruning gate\n");
    return 1;
  }
  std::printf("\nAll brushes bit-identical and >=3x faster with pruning.\n");
  return 0;
}
