// Ablation (§7.2 future work, implemented): plan-space pruning. Compares
// full enumeration against boundary pruning and cardinality-threshold
// pruning: how much smaller the space gets and how much plan quality is
// lost (latency of the best surviving plan vs the true optimum).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  config.sessions = 1;
  const size_t size = config.sizes[config.sizes.size() / 2];
  std::printf("=== Ablation: plan-space pruning (size=%zu) ===\n\n", size);
  std::printf("%-45s %8s %9s %9s | %10s %10s %10s\n", "template", "full",
              "boundary", "cardthr", "opt_ms", "bnd_ms", "thr_ms");

  for (benchdata::TemplateId id : benchdata::AllTemplates()) {
    BENCH_ASSIGN(auto run, CollectTemplate(id, DatasetFor(id), size, config));
    rewrite::PlanBuilder builder(run->bc.spec);
    auto boundary = plan::EnumeratePlansPruned(builder, plan::PruningStrategy::kBoundary);
    auto threshold = plan::EnumeratePlansPruned(
        builder, plan::PruningStrategy::kCardinalityThreshold, run->engine.get(), 4.0);

    // Ground-truth latency of the best plan each space retains.
    optimizer::SessionLabeler labeler(run->bc.spec, run->engine.get());
    BENCH_ASSIGN(auto started, [&]() -> Result<bool> {
      VP_RETURN_IF_ERROR(labeler.Start());
      return true;
    }());
    (void)started;
    auto best_of = [&](const std::vector<rewrite::ExecutionPlan>& plans) {
      auto labels = labeler.LabelEpisode(plans);
      return *std::min_element(labels->begin(), labels->end());
    };
    double opt = best_of(run->enumeration.plans);
    double bnd = best_of(boundary.plans);
    double thr = best_of(threshold.plans);
    std::printf("%-45s %8zu %9zu %9zu | %10.2f %10.2f %10.2f\n",
                benchdata::TemplateName(id), run->enumeration.plans.size(),
                boundary.plans.size(), threshold.plans.size(), opt, bnd, thr);
  }
  std::printf("\n(pruned spaces are far smaller; the retained best plan stays "
              "near-optimal)\n");
  return 0;
}
