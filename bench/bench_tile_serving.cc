// Tile serving (middleware aggregation trees) vs base-table execution for
// the bin+aggregate shapes interactive histograms emit. For each dataset
// size the same prepared templates run through two middlewares over one
// engine — tile serving on vs off (EngineConfig override) — and the
// simulated server latency of every covered shape is compared. Covered
// shapes must come back bit-identical and at least 10x faster in simulated
// latency (hard gate: non-zero exit), since a tile hit touches a few
// hundred slots instead of scanning millions of base rows. Results land in
// BENCH_tile_serving.json (uploaded by CI).
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/random.h"
#include "data/stats.h"
#include "runtime/engine_config.h"
#include "runtime/middleware.h"
#include "transforms/binning.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

namespace {

/// Measures quantized to 0.25 so per-bin sums are exact in any
/// accumulation order (the bit-identity proviso for SUM/AVG).
data::TablePtr MakeTable(size_t rows, uint64_t seed) {
  data::Schema schema({{"x", data::DataType::kFloat64},
                       {"y", data::DataType::kFloat64},
                       {"i", data::DataType::kInt64}});
  Rng rng(seed);
  data::TableBuilder builder(schema);
  builder.Reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    builder.AppendRow(
        {data::Value::Double(0.25 * static_cast<double>(rng.Index(4000))),
         data::Value::Double(0.25 * static_cast<double>(rng.Index(8000)) - 500),
         data::Value::Int(static_cast<int64_t>(rng.Index(100000)))});
  }
  return builder.Build();
}

std::string HistogramTemplate(const char* col, const char* aggs,
                              const char* where) {
  return StrFormat(
      "SELECT ${start} + FLOOR((%s - ${start}) / ${step}) * ${step} AS bin0, "
      "(${start} + FLOOR((%s - ${start}) / ${step}) * ${step}) + ${step} AS "
      "bin1, %s FROM t%s GROUP BY "
      "${start} + FLOOR((%s - ${start}) / ${step}) * ${step}, "
      "(${start} + FLOOR((%s - ${start}) / ${step}) * ${step}) + ${step}",
      col, col, aggs, where, col, col);
}

struct QueryCase {
  std::string label;
  std::string sql_template;
  std::vector<rewrite::QueryParam> params;
};

Result<rewrite::QueryResponse> RunOnce(runtime::Middleware* mw,
                                       const QueryCase& qc) {
  VP_ASSIGN_OR_RETURN(rewrite::PreparedHandle handle, mw->Prepare(qc.sql_template));
  rewrite::QueryRequest request;
  request.handle = handle;
  request.params = qc.params;
  return mw->Submit(request)->Await();
}

}  // namespace

int main() {
  BenchConfig config = LoadConfig();
  // This benchmark needs enough rows for a base scan to dwarf the 5ms RTT
  // floor; default to 2M unless the caller pinned sizes explicitly.
  if (std::getenv("VP_SIZES") == nullptr) config.sizes = {2000000};
  BenchReporter reporter("tile_serving");
  reporter.RecordConfig(config);
  std::printf("=== Tile serving vs base-table execution ===\n\n");
  std::printf("%10s %-22s %12s %12s %8s %12s %12s\n", "size", "query",
              "base_sim_ms", "tile_sim_ms", "ratio", "base_wall_ms",
              "tile_wall_ms");

  const char* kAggs =
      "COUNT(*) AS cnt, SUM(y) AS sy, AVG(y) AS ay, MIN(y) AS mn, MAX(y) AS mx";
  bool gate_ok = true;
  json::Value rows_out = json::Value::MakeArray();

  for (size_t size : config.sizes) {
    StopWatch load_watch;
    data::TablePtr table = MakeTable(size, config.seed);
    sql::Engine engine;
    engine.RegisterTable("t", table);
    data::TableStats stats = data::ComputeTableStats(*table);
    reporter.AddPhase(StrFormat("load_%zu", size), load_watch.ElapsedMillis());

    runtime::MiddlewareOptions tiled_opts;
    tiled_opts.enable_client_cache = false;
    tiled_opts.enable_server_cache = false;
    runtime::Middleware tiled(&engine, tiled_opts);

    runtime::MiddlewareOptions base_opts = tiled_opts;
    base_opts.engine_config = runtime::EngineConfig::Current();
    base_opts.engine_config->tile_serving = false;
    runtime::Middleware base(&engine, base_opts);

    const data::ColumnStats* xs = stats.Find("x");
    std::vector<QueryCase> cases;
    for (int maxbins : {10, 50, 200}) {
      transforms::Binning b = transforms::ComputeBinning(xs->min, xs->max, maxbins);
      cases.push_back({StrFormat("histogram_maxbins%d", maxbins),
                       HistogramTemplate("x", kAggs, ""),
                       {{"start", expr::EvalValue::Number(b.start)},
                        {"step", expr::EvalValue::Number(b.step)}}});
    }
    {
      // Bin-aligned brush over the middle of the domain.
      transforms::Binning b = transforms::ComputeBinning(xs->min, xs->max, 50);
      cases.push_back({"brushed_maxbins50",
                       HistogramTemplate("x", kAggs,
                                         " WHERE x >= ${lo} AND x < ${hi}"),
                       {{"start", expr::EvalValue::Number(b.start)},
                        {"step", expr::EvalValue::Number(b.step)},
                        {"lo", expr::EvalValue::Number(b.start + 5 * b.step)},
                        {"hi", expr::EvalValue::Number(b.start + 30 * b.step)}}});
    }

    // First covered query pays the tree build; time it as its own phase so
    // the per-query numbers below are steady-state serving.
    StopWatch build_watch;
    auto warm = RunOnce(&tiled, cases[0]);
    if (!warm.ok()) {
      std::fprintf(stderr, "warm-up failed: %s\n", warm.status().ToString().c_str());
      return 1;
    }
    reporter.AddPhase(StrFormat("tile_build_%zu", size), build_watch.ElapsedMillis());

    for (const QueryCase& qc : cases) {
      StopWatch tile_watch;
      auto tile_response = RunOnce(&tiled, qc);
      const double tile_wall = tile_watch.ElapsedMillis();
      StopWatch base_watch;
      auto base_response = RunOnce(&base, qc);
      const double base_wall = base_watch.ElapsedMillis();
      if (!tile_response.ok() || !base_response.ok()) {
        std::fprintf(stderr, "query %s failed\n", qc.label.c_str());
        return 1;
      }
      if (tile_response->source != rewrite::QueryResponse::Source::kTileStore) {
        std::fprintf(stderr, "FAIL: %s not served from tiles\n", qc.label.c_str());
        gate_ok = false;
      }
      if (!tile_response->table->Equals(*base_response->table)) {
        std::fprintf(stderr, "FAIL: %s tile/base results differ\n", qc.label.c_str());
        return 1;
      }
      const double ratio = base_response->latency_millis /
                           (tile_response->latency_millis > 0
                                ? tile_response->latency_millis
                                : 1e-9);
      std::printf("%10zu %-22s %12.3f %12.3f %7.1fx %12.3f %12.3f\n", size,
                  qc.label.c_str(), base_response->latency_millis,
                  tile_response->latency_millis, ratio, base_wall, tile_wall);
      json::Value row = json::Value::MakeObject();
      row.Set("size", size);
      row.Set("query", qc.label);
      row.Set("base_sim_ms", base_response->latency_millis);
      row.Set("tile_sim_ms", tile_response->latency_millis);
      row.Set("ratio", ratio);
      row.Set("base_wall_ms", base_wall);
      row.Set("tile_wall_ms", tile_wall);
      rows_out.Append(std::move(row));
      if (ratio < 10.0) {
        std::fprintf(stderr, "FAIL: %s ratio %.1fx below the 10x gate\n",
                     qc.label.c_str(), ratio);
        gate_ok = false;
      }
    }
    json::Value ts = json::Value::MakeObject();
    ts.Set("hits", tiled.tile_store()->stats().hits);
    ts.Set("builds", tiled.tile_store()->stats().builds);
    reporter.AddMetric(StrFormat("tile_store_%zu", size), std::move(ts));
  }

  reporter.AddMetric("queries", std::move(rows_out));
  reporter.AddMetric("gate", json::Value(gate_ok ? "pass" : "fail"));
  if (!gate_ok) {
    std::fprintf(stderr, "\nFAIL: tile serving below the 10x latency gate\n");
    return 1;
  }
  std::printf("\nAll covered shapes bit-identical and >=10x faster (simulated).\n");
  return 0;
}
