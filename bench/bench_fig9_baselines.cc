// Figure 9: initial rendering and interactive update time for Vega,
// VegaFusion (greedy full pushdown), and VegaPlus on the crossfilter
// template across data sizes, including one size beyond the rest where the
// Vega condition is dropped ("it cannot handle the data size"). Expected
// shape: VegaPlus <= VegaFusion << Vega at scale for init; all server-backed
// conditions grow with size on updates.
#include <cstdio>

#include "bench_util.h"
#include "runtime/plan_executor.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  std::vector<size_t> sizes = config.sizes;
  sizes.push_back(config.sizes.back() * 10);  // the paper's 10M extension
  const size_t vega_cap = config.sizes.back();

  std::printf("=== Figure 9: init & update time (ms), crossfilter template ===\n\n");
  std::printf("%10s | %12s %12s %12s | %12s %12s %12s\n", "size", "vega_init",
              "fusion_init", "vp_init", "vega_upd", "fusion_upd", "vp_upd");

  const auto id = benchdata::TemplateId::kCrossfilter;
  for (size_t size : sizes) {
    BENCH_ASSIGN(benchdata::BenchCase bc,
                 benchdata::MakeBenchCase(id, DatasetFor(id), size, config.seed ^ size));
    sql::Engine engine;
    engine.RegisterTable(bc.dataset.name, bc.dataset.table);
    std::map<std::string, data::TablePtr> tables{{bc.dataset.name, bc.dataset.table}};
    benchdata::WorkloadGenerator workload(bc.spec, config.seed);
    auto session = workload.Session(config.interactions);

    double vega_init = -1, vega_upd = 0;
    if (size <= vega_cap) {
      runtime::VegaBaselineExecutor vega(bc.spec, tables);
      BENCH_ASSIGN(runtime::EpisodeCost c, vega.Initialize());
      vega_init = c.total_ms;
      for (const auto& interaction : session) {
        BENCH_ASSIGN(runtime::EpisodeCost u, vega.Interact(interaction.updates));
        vega_upd += u.total_ms;
      }
      vega_upd /= static_cast<double>(session.size());
    }

    runtime::VegaFusionBaselineExecutor fusion(bc.spec, &engine, {});
    BENCH_ASSIGN(runtime::EpisodeCost fusion_init, fusion.Initialize());
    double fusion_upd = 0;
    for (const auto& interaction : session) {
      BENCH_ASSIGN(runtime::EpisodeCost u, fusion.Interact(interaction.updates));
      fusion_upd += u.total_ms;
    }
    fusion_upd /= static_cast<double>(session.size());

    // VegaPlus: optimizer-selected plan (trained on a small probe size to
    // keep the harness honest about train/test separation).
    BenchConfig probe = config;
    probe.sessions = 1;
    BENCH_ASSIGN(auto run,
                 CollectTemplate(id, DatasetFor(id), std::min(size, vega_cap), probe));
    auto pairs = optimizer::MakePairs(run->AllEpisodes(), config.max_pairs, config.seed);
    ModelSuite suite = TrainSuite(pairs, config.seed);
    size_t pick = optimizer::ConsolidateSession(*suite.ranksvm, run->sessions[0]);

    runtime::PlanExecutor vegaplus(bc.spec, &engine, {});
    BENCH_ASSIGN(runtime::EpisodeCost vp_init,
                 vegaplus.Initialize(run->enumeration.plans[pick]));
    double vp_upd = 0;
    for (const auto& interaction : session) {
      BENCH_ASSIGN(runtime::EpisodeCost u, vegaplus.Interact(interaction.updates));
      vp_upd += u.total_ms;
    }
    vp_upd /= static_cast<double>(session.size());

    char vega_init_s[32], vega_upd_s[32];
    if (vega_init < 0) {
      std::snprintf(vega_init_s, sizeof(vega_init_s), "%12s", "-");
      std::snprintf(vega_upd_s, sizeof(vega_upd_s), "%12s", "-");
    } else {
      std::snprintf(vega_init_s, sizeof(vega_init_s), "%12.2f", vega_init);
      std::snprintf(vega_upd_s, sizeof(vega_upd_s), "%12.2f", vega_upd);
    }
    std::printf("%10zu | %s %12.2f %12.2f | %s %12.2f %12.2f\n", size, vega_init_s,
                fusion_init.total_ms, vp_init.total_ms, vega_upd_s, fusion_upd, vp_upd);
  }
  std::printf("\n('-' = Vega dropped at the largest size, as in the paper)\n");
  return 0;
}
