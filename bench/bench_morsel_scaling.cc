// Morsel-driven parallel execution scaling: group-by, filter, and projection
// queries over a 1M+ row table, executed single-threaded (kill switch off)
// and morsel-parallel at 1/2/4/8 threads. Verifies bit-identical results
// against the single-threaded engine at every parallelism level, reports
// wall-clock + speedup per condition (BENCH_morsel_scaling.json), and gates
// on >=2.5x end-to-end group-by speedup where the hardware has >=4 threads.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "sql/engine.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

namespace {

data::TablePtr MakeBigTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  data::Column key(data::DataType::kInt64);
  data::Column v(data::DataType::kFloat64);
  data::Column v2(data::DataType::kFloat64);
  key.Reserve(rows);
  v.Reserve(rows);
  v2.Reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    key.AppendInt(rng.UniformInt(0, 31));
    v.AppendDouble(rng.Uniform(0, 1));
    if (rng.NextBool(0.05)) {
      v2.AppendNull();
    } else {
      v2.AppendDouble(rng.Uniform(-100, 100));
    }
  }
  std::vector<data::Column> cols;
  cols.push_back(std::move(key));
  cols.push_back(std::move(v));
  cols.push_back(std::move(v2));
  return std::make_shared<data::Table>(
      data::Schema({{"key", data::DataType::kInt64},
                    {"v", data::DataType::kFloat64},
                    {"v2", data::DataType::kFloat64}}),
      std::move(cols));
}

struct Workload {
  const char* name;
  const char* sql;
};

constexpr Workload kWorkloads[] = {
    {"groupby",
     "SELECT key, COUNT(*) AS n, SUM(v) AS s, AVG(v2) AS a, MIN(v) AS lo, "
     "MAX(v2) AS hi FROM big GROUP BY key ORDER BY key"},
    {"filter_groupby",
     "SELECT key, COUNT(*) AS n, SUM(v2) AS s FROM big WHERE v < 0.5 "
     "GROUP BY key ORDER BY key"},
    {"projection", "SELECT v * 2 + v2 / 3 AS x, v - v2 AS y FROM big"},
};

double BestOf(sql::Engine& engine, const char* sql, int iterations,
              data::TablePtr* out) {
  double best = 0;
  for (int i = 0; i < iterations; ++i) {
    StopWatch timer;
    auto result = engine.Query(sql);
    double ms = timer.ElapsedMillis();
    if (!result.ok()) Die(result.status(), sql);
    if (i == 0 || ms < best) best = ms;
    *out = result->table;
  }
  return best;
}

}  // namespace

int main() {
  BenchConfig config = LoadConfig();
  BenchReporter reporter("morsel_scaling");
  reporter.RecordConfig(config);

  // 1M rows by default; VP_SIZES (and VP_PAPER_SCALE) override.
  size_t rows = 1000000;
  if (std::getenv("VP_SIZES") != nullptr || std::getenv("VP_PAPER_SCALE") != nullptr) {
    rows = config.sizes.back();
  }
  const int iterations = 3;
  const size_t cores = std::thread::hardware_concurrency();

  sql::Engine engine;
  engine.RegisterTable("big", MakeBigTable(rows, config.seed));
  std::printf("=== morsel scaling: %zu rows, %zu hardware threads ===\n\n", rows,
              cores);
  std::printf("%16s %10s %12s %10s %10s\n", "workload", "threads", "wall ms",
              "speedup", "identical");

  double groupby_best_speedup = 0;
  size_t groupby_best_threads = 1;
  const size_t thread_counts[] = {1, 2, 4, 8};

  for (const Workload& w : kWorkloads) {
    // Baseline: the kill switch forces the single-threaded path end to end.
    parallel::SetMorselParallelEnabled(false);
    data::TablePtr baseline_table;
    double baseline_ms = BestOf(engine, w.sql, iterations, &baseline_table);
    parallel::SetMorselParallelEnabled(true);
    std::printf("%16s %10s %12.1f %10s %10s\n", w.name, "off", baseline_ms, "1.00x",
                "-");
    reporter.AddMetric(std::string(w.name) + "_baseline_ms",
                       json::Value(baseline_ms));

    for (size_t threads : thread_counts) {
      parallel::SetMorselParallelism(threads);
      data::TablePtr table;
      double ms = BestOf(engine, w.sql, iterations, &table);
      const bool identical = table->Equals(*baseline_table);
      const double speedup = ms > 0 ? baseline_ms / ms : 0;
      std::printf("%16s %10zu %12.1f %9.2fx %10s\n", w.name, threads, ms, speedup,
                  identical ? "yes" : "NO");
      if (!identical) {
        std::fprintf(stderr, "FATAL: %s at %zu threads diverged from the "
                     "single-threaded result\n", w.name, threads);
        return 1;
      }
      json::Value row = json::Value::MakeObject();
      row.Set("threads", threads);
      row.Set("wall_ms", ms);
      row.Set("speedup", speedup);
      reporter.AddMetric(std::string(w.name) + "_t" + std::to_string(threads),
                         std::move(row));
      reporter.AddPhase(std::string(w.name) + "_t" + std::to_string(threads), ms);
      if (std::string(w.name) == "groupby" && threads <= cores &&
          speedup > groupby_best_speedup) {
        groupby_best_speedup = speedup;
        groupby_best_threads = threads;
      }
    }
  }
  parallel::SetMorselParallelism(0);

  std::printf("\ngroup-by best speedup: %.2fx at %zu threads (%zu hardware)\n",
              groupby_best_speedup, groupby_best_threads, cores);
  reporter.AddMetric("groupby_best_speedup", json::Value(groupby_best_speedup));
  reporter.AddMetric("hardware_threads", json::Value(cores));

  // Acceptance gate: >=2.5x end-to-end group-by speedup. Morsel parallelism
  // scales through real threads, so the gate only means something where the
  // hardware can run >=4 workers at once.
  if (cores < 4) {
    std::printf("GATE SKIPPED: %zu hardware threads (<4), no parallel headroom\n",
                cores);
    return 0;
  }
  if (groupby_best_speedup < 2.5) {
    std::fprintf(stderr, "GATE FAILED: group-by speedup %.2fx < 2.5x\n",
                 groupby_best_speedup);
    return 1;
  }
  std::printf("GATE OK (>=2.5x)\n");
  return 0;
}
