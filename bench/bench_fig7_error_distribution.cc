// Figure 7: distribution of scaled errors (Eq. 1) for each model's wrong
// pairwise predictions, binned 0.0..1.0. Expected shape: random errors pile
// in both the first and last bins; RankSVM's mistakes skew to high-cost bins
// compared to the heuristic, whose mistakes sit in the near-tie bins.
#include <cmath>
#include <cstdio>

#include "bench_util.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  const size_t size = config.sizes.back();
  std::printf("=== Figure 7: scaled-error distribution of wrong predictions "
              "(size=%zu) ===\n\n", size);

  // Gather labeled pairs across all templates at the largest size.
  std::vector<ml::PairExample> pairs;
  std::vector<double> gaps;  // |Pi - Ai| / Pi per pair (scaled error if wrong)
  for (benchdata::TemplateId id : benchdata::AllTemplates()) {
    BENCH_ASSIGN(auto run, CollectTemplate(id, DatasetFor(id), size, config));
    for (const auto& ep : run->AllEpisodes()) {
      const size_t n = ep.vectors.size();
      size_t stride = n > 40 ? n / 40 : 1;
      for (size_t i = 0; i < n; i += stride) {
        for (size_t j = i + 1; j < n; j += stride) {
          double li = ep.latencies_ms[i];
          double lj = ep.latencies_ms[j];
          if (li == lj) continue;
          pairs.push_back({ep.vectors[i], ep.vectors[j], li < lj ? 1 : -1});
          double slow = std::max(li, lj);
          double fast = std::min(li, lj);
          gaps.push_back((slow - fast) / slow);
        }
      }
    }
  }
  std::vector<ml::PairExample> train, test;
  // Keep (pair, gap) aligned: use the raw set for both training (first 60%)
  // and error analysis (rest).
  size_t cut = pairs.size() * 6 / 10;
  train.assign(pairs.begin(), pairs.begin() + static_cast<long>(cut));
  ModelSuite suite = TrainSuite(train, config.seed);

  const int kBins = 10;
  auto models = suite.All();
  std::printf("%-14s", "error bin");
  for (int b = 0; b < kBins; ++b) std::printf(" %6.1f", (b + 0.5) / kBins);
  std::printf("\n");
  for (const auto* model : models) {
    std::vector<size_t> histogram(kBins, 0);
    for (size_t k = cut; k < pairs.size(); ++k) {
      int predicted = model->Compare(pairs[k].a, pairs[k].b);
      int actual = pairs[k].label == 1 ? -1 : 1;
      if (predicted == actual) continue;  // only wrong predictions counted
      int bin = std::min(kBins - 1, static_cast<int>(gaps[k] * kBins));
      ++histogram[static_cast<size_t>(bin)];
    }
    std::printf("%-14s", model->name().c_str());
    for (int b = 0; b < kBins; ++b) std::printf(" %6zu", histogram[static_cast<size_t>(b)]);
    std::printf("\n");
  }
  std::printf("\n(bin = |P-A|/P of the mispredicted pair; right bins = costly "
              "mistakes)\n");
  return 0;
}
