// Microbenchmark for the vectorized expression engine: scalar interpreter
// (row-at-a-time expr::Evaluate) vs compiled column-at-a-time execution
// (expr::Compiler + expr::BatchEvaluator) over 1M-row columns.
//
// Workloads: WHERE filtering (fused single compare and a compound
// predicate), projection (arithmetic formula), and a full GROUP BY query
// through the SQL executor with the vectorized path toggled on/off.
// The PR gate is >=5x on filter/projection/group-by; set VP_REQUIRE_SPEEDUP
// to make the binary exit non-zero below that bar.
//
// String workloads (equality filter, group-by, sort over a 100-distinct
// category column) additionally compare dictionary-encoded columns against
// the flat kill-switch baseline (data::SetDictionaryEncodingEnabled(false)),
// both running the vectorized engine; VP_REQUIRE_DICT_SPEEDUP gates the
// dictionary win (>=4x on string filter + group-by at 1M rows).
//
// Kernel workloads time the expr/kernels SIMD library directly (compare,
// bitmap AND, bitmap->indices, gather, grouped sum) with the kill switch
// off vs on, plus the whole fused-filter path at ~50% selectivity;
// VP_REQUIRE_KERNEL_SPEEDUP gates the fused-filter win.
//
// Rows default to 1,000,000; VP_SIZES=<n> overrides (the largest entry is
// used), which is how bench-smoke keeps CI runs short.
#include <cstdio>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "data/table.h"
#include "expr/batch_eval.h"
#include "expr/compiler.h"
#include "expr/evaluator.h"
#include "expr/kernels/kernels.h"
#include "expr/parser.h"
#include "sql/engine.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

namespace {

constexpr int kReps = 3;

data::TablePtr MakeWideTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  data::Column d(data::DataType::kFloat64);
  data::Column i(data::DataType::kInt64);
  data::Column s(data::DataType::kString);
  data::Column t(data::DataType::kTimestamp);
  d.Reserve(rows);
  i.Reserve(rows);
  s.Reserve(rows);
  t.Reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    if (rng.NextBool(0.02)) {
      d.AppendNull();
    } else {
      d.AppendDouble(rng.Uniform(0, 1000));
    }
    i.AppendInt(rng.UniformInt(0, 999));
    s.AppendString("cat_" + std::to_string(rng.Index(100)));
    t.AppendInt(1577836800000LL + rng.UniformInt(0, 365LL * 86400000LL));
  }
  std::vector<data::Column> cols;
  cols.push_back(std::move(d));
  cols.push_back(std::move(i));
  cols.push_back(std::move(s));
  cols.push_back(std::move(t));
  return std::make_shared<data::Table>(
      data::Schema({{"d", data::DataType::kFloat64},
                    {"i", data::DataType::kInt64},
                    {"s", data::DataType::kString},
                    {"t", data::DataType::kTimestamp}}),
      std::move(cols));
}

expr::NodePtr MustParse(const char* text) {
  auto parsed = expr::ParseExpression(text);
  if (!parsed.ok()) Die(parsed.status(), text);
  return *parsed;
}

/// Best-of-kReps wall-clock milliseconds of `fn`.
template <typename F>
double TimeMs(F fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    StopWatch watch;
    fn();
    best = std::min(best, watch.ElapsedMillis());
  }
  return best;
}

struct Comparison {
  double scalar_ms;
  double vector_ms;
  double speedup() const { return scalar_ms / vector_ms; }
};

void Report(BenchReporter* reporter, const char* name, const Comparison& c) {
  std::printf("%-18s %12.2f %12.2f %9.1fx\n", name, c.scalar_ms, c.vector_ms,
              c.speedup());
  json::Value m = json::Value::MakeObject();
  m.Set("scalar_ms", c.scalar_ms);
  m.Set("vector_ms", c.vector_ms);
  m.Set("speedup", c.speedup());
  reporter->AddMetric(name, std::move(m));
  reporter->AddPhase(std::string(name) + "_scalar", c.scalar_ms);
  reporter->AddPhase(std::string(name) + "_vector", c.vector_ms);
}

Comparison CompareFilter(const data::Table& table, const char* text) {
  expr::NodePtr pred = MustParse(text);
  auto program = expr::Compiler::Compile(pred, table.schema());
  if (!program) Die(Status::InvalidArgument("predicate did not compile"), text);

  size_t scalar_hits = 0, vector_hits = 0;
  Comparison c;
  c.scalar_ms = TimeMs([&] {
    std::vector<int32_t> sel;
    sel.reserve(table.num_rows());
    expr::EvalContext ctx;
    ctx.table = &table;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      ctx.row = r;
      if (expr::Evaluate(pred, ctx).Truthy()) sel.push_back(static_cast<int32_t>(r));
    }
    scalar_hits = sel.size();
  });
  c.vector_ms = TimeMs([&] {
    std::vector<int32_t> sel;
    sel.reserve(table.num_rows());
    expr::BatchEvaluator(table).RunFilter(*program, &sel);
    vector_hits = sel.size();
  });
  if (scalar_hits != vector_hits) {
    Die(Status::RuntimeError(StrFormat("filter mismatch: %zu vs %zu rows", scalar_hits,
                                   vector_hits)),
        text);
  }
  return c;
}

Comparison CompareProjection(const data::Table& table, const char* text) {
  expr::NodePtr node = MustParse(text);
  auto program = expr::Compiler::Compile(node, table.schema());
  if (!program) Die(Status::InvalidArgument("projection did not compile"), text);

  Comparison c;
  c.scalar_ms = TimeMs([&] {
    data::Column col(data::DataType::kFloat64);
    col.Reserve(table.num_rows());
    expr::EvalContext ctx;
    ctx.table = &table;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      ctx.row = r;
      expr::EvalValue v = expr::Evaluate(node, ctx);
      col.Append(v.is_array() ? data::Value::Null() : v.scalar());
    }
  });
  c.vector_ms = TimeMs([&] {
    data::Column col(data::DataType::kFloat64);
    expr::BatchEvaluator(table).RunToColumn(*program, &col);
  });
  return c;
}

/// Same engine query under both string encodings: `flat` registered a table
/// built with the dictionary kill switch off, `dict` the default build.
/// Both runs use the vectorized engine; the speedup isolates the encoding.
Comparison CompareEncoding(const sql::Engine& dict_engine,
                           const sql::Engine& flat_engine, const char* sql) {
  size_t dict_rows = 0, flat_rows = 0;
  Comparison c;
  c.scalar_ms = TimeMs([&] {
    auto result = flat_engine.Query(sql);
    if (!result.ok()) Die(result.status(), sql);
    flat_rows = result->table->num_rows();
  });
  c.vector_ms = TimeMs([&] {
    auto result = dict_engine.Query(sql);
    if (!result.ok()) Die(result.status(), sql);
    dict_rows = result->table->num_rows();
  });
  if (dict_rows != flat_rows) {
    Die(Status::RuntimeError(StrFormat("encoding mismatch: %zu vs %zu rows", dict_rows,
                                   flat_rows)),
        sql);
  }
  return c;
}

void ReportEncoding(BenchReporter* reporter, const char* name, const Comparison& c) {
  std::printf("%-18s %12.2f %12.2f %9.1fx\n", name, c.scalar_ms, c.vector_ms,
              c.speedup());
  json::Value m = json::Value::MakeObject();
  m.Set("flat_ms", c.scalar_ms);
  m.Set("dict_ms", c.vector_ms);
  m.Set("speedup", c.speedup());
  reporter->AddMetric(name, std::move(m));
  reporter->AddPhase(std::string(name) + "_flat", c.scalar_ms);
  reporter->AddPhase(std::string(name) + "_dict", c.vector_ms);
}

Comparison CompareQuery(const sql::Engine& engine, const char* sql) {
  size_t scalar_rows = 0, vector_rows = 0;
  Comparison c;
  expr::SetVectorizedEnabled(false);
  c.scalar_ms = TimeMs([&] {
    auto result = engine.Query(sql);
    if (!result.ok()) Die(result.status(), sql);
    scalar_rows = result->table->num_rows();
  });
  expr::SetVectorizedEnabled(true);
  c.vector_ms = TimeMs([&] {
    auto result = engine.Query(sql);
    if (!result.ok()) Die(result.status(), sql);
    vector_rows = result->table->num_rows();
  });
  if (scalar_rows != vector_rows) {
    Die(Status::RuntimeError(StrFormat("query mismatch: %zu vs %zu rows", scalar_rows,
                                   vector_rows)),
        sql);
  }
  return c;
}

/// Runs `fn` with the SIMD kernels disabled (scalar fallback bodies) and
/// enabled, best-of-kReps each. scalar_ms = kernels off, vector_ms = on.
template <typename F>
Comparison CompareKernelToggle(F fn) {
  Comparison c;
  kernels::SetSimdEnabled(false);
  c.scalar_ms = TimeMs(fn);
  kernels::SetSimdEnabled(true);
  c.vector_ms = TimeMs(fn);
  return c;
}

/// Per-kernel throughput rows plus the gated fused-filter comparison.
/// Returns the fused-filter kernels-on speedup (the VP_REQUIRE_KERNEL_SPEEDUP
/// gate value).
double RunKernelBench(BenchReporter* reporter, const data::Table& table,
                      size_t rows, uint64_t seed) {
  // Inner repeats keep each timed region comfortably above timer noise at
  // bench-smoke sizes.
  const int iters = rows >= 1000000 ? 4 : 40;
  Rng rng(seed ^ 0x5eedULL);
  std::vector<double> vals(rows);
  std::vector<uint8_t> valid(rows);
  std::vector<int32_t> gather_idx(rows);
  std::vector<uint32_t> group_of(rows);
  for (size_t i = 0; i < rows; ++i) {
    vals[i] = rng.Uniform(0, 1000);
    valid[i] = rng.NextBool(0.02) ? 0 : 1;
    gather_idx[i] = static_cast<int32_t>(rng.Index(rows));
    group_of[i] = static_cast<uint32_t>(rng.Index(100));
  }
  std::vector<uint8_t> bits_a(rows), bits_b(rows);
  kernels::CompareNumToBits(vals.data(), valid.data(), rows,
                            kernels::Cmp::kGt, 500.0, bits_a.data());
  kernels::CompareNumToBits(vals.data(), valid.data(), rows,
                            kernels::Cmp::kLt, 900.0, bits_b.data());

  std::printf("\n%-18s %12s %12s %10s\n", "kernel workload", "off_ms", "on_ms",
              "speedup");

  Comparison cmp = CompareKernelToggle([&] {
    std::vector<uint8_t> out(rows);
    for (int it = 0; it < iters; ++it) {
      kernels::CompareNumToBits(vals.data(), valid.data(), rows,
                                kernels::Cmp::kGt, 500.0, out.data());
    }
  });
  Report(reporter, "kern_compare", cmp);

  Comparison band = CompareKernelToggle([&] {
    std::vector<uint8_t> out(rows);
    for (int it = 0; it < iters; ++it) {
      std::copy(bits_a.begin(), bits_a.end(), out.begin());
      kernels::AndBits(out.data(), bits_b.data(), rows);
    }
  });
  Report(reporter, "kern_bitmap_and", band);

  Comparison toidx = CompareKernelToggle([&] {
    std::vector<int32_t> sel;
    for (int it = 0; it < iters; ++it) {
      sel.clear();
      kernels::BitsToIndices(bits_a.data(), rows, 0, &sel);
    }
  });
  Report(reporter, "kern_to_indices", toidx);

  Comparison gather = CompareKernelToggle([&] {
    std::vector<double> out(rows);
    for (int it = 0; it < iters; ++it) {
      kernels::GatherDoubles(vals.data(), gather_idx.data(), rows, out.data());
    }
  });
  Report(reporter, "kern_gather", gather);

  Comparison gsum = CompareKernelToggle([&] {
    std::vector<double> sums(100);
    std::vector<uint64_t> counts(100);
    std::vector<int32_t> rows_idx(rows);
    for (size_t i = 0; i < rows; ++i) rows_idx[i] = static_cast<int32_t>(i);
    kernels::NumSpan span;
    span.vals = vals.data();
    span.valid = valid.data();
    for (int it = 0; it < iters; ++it) {
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0);
      kernels::GroupedSum(span, rows_idx.data(), group_of.data(), 0, rows,
                          sums.data(), counts.data());
    }
  });
  Report(reporter, "kern_grouped_sum", gsum);

  // The gated row: the whole fused-filter path (compare + selection build)
  // kernels-on vs the scalar fallback, at ~50% selectivity where branchless
  // compaction matters most.
  expr::NodePtr pred = MustParse("datum.d > 500");
  auto program = expr::Compiler::Compile(pred, table.schema());
  if (!program) Die(Status::InvalidArgument("predicate did not compile"), "datum.d > 500");
  size_t off_hits = 0, on_hits = 0;
  Comparison fused = CompareKernelToggle([&] {
    std::vector<int32_t> sel;
    sel.reserve(table.num_rows());
    for (int it = 0; it < iters; ++it) {
      sel.clear();
      expr::BatchEvaluator(table).RunFilter(*program, &sel);
    }
    (kernels::SimdEnabled() ? on_hits : off_hits) = sel.size();
  });
  if (off_hits != on_hits) {
    Die(Status::RuntimeError(StrFormat("kernel filter mismatch: %zu vs %zu rows",
                                       off_hits, on_hits)),
        "datum.d > 500");
  }
  Report(reporter, "kern_filter_fused", fused);
  return fused.speedup();
}

}  // namespace

int main() {
  BenchConfig config = LoadConfig();
  size_t rows = 1000000;
  if (std::getenv("VP_SIZES") != nullptr && !config.sizes.empty()) {
    rows = *std::max_element(config.sizes.begin(), config.sizes.end());
  }

  BenchReporter reporter("micro_expr");
  reporter.RecordConfig(config);
  reporter.AddMetric("rows", json::Value(rows));

  std::printf("=== Micro: vectorized expression engine (rows=%zu) ===\n\n", rows);
  data::SetDictionaryEncodingEnabled(true);
  data::TablePtr table = MakeWideTable(rows, config.seed);
  sql::Engine engine;
  engine.RegisterTable("t", table);
  // Flat twin (same cells, dictionary kill switch off) for the encoding
  // comparisons.
  data::SetDictionaryEncodingEnabled(false);
  data::TablePtr flat_table = MakeWideTable(rows, config.seed);
  data::SetDictionaryEncodingEnabled(true);
  sql::Engine flat_engine;
  flat_engine.RegisterTable("t", flat_table);

  std::printf("%-18s %12s %12s %10s\n", "workload", "scalar_ms", "vector_ms",
              "speedup");

  Comparison filter_fused = CompareFilter(*table, "datum.d > 500");
  Report(&reporter, "filter_fused", filter_fused);

  Comparison filter_compound =
      CompareFilter(*table, "datum.d > 250 && datum.i < 600 && datum.d <= 900");
  Report(&reporter, "filter_compound", filter_compound);

  Comparison projection = CompareProjection(*table, "datum.d * 2 + datum.i / 7");
  Report(&reporter, "projection", projection);

  Comparison group_by = CompareQuery(
      engine,
      "SELECT s, COUNT(*) AS n, SUM(d) AS sd, AVG(i) AS ai FROM t GROUP BY s");
  Report(&reporter, "group_by", group_by);

  Comparison where_query = CompareQuery(
      engine, "SELECT COUNT(*) AS n FROM t WHERE d > 250 AND d <= 900");
  Report(&reporter, "where_query", where_query);

  Comparison order_by = CompareQuery(
      engine, "SELECT i, d FROM t WHERE d > 900 ORDER BY d DESC LIMIT 100");
  Report(&reporter, "order_by", order_by);

  std::printf("\n%-18s %12s %12s %10s\n", "string workload", "flat_ms", "dict_ms",
              "speedup");

  Comparison str_filter = CompareEncoding(
      engine, flat_engine, "SELECT COUNT(*) AS n FROM t WHERE s = 'cat_7'");
  ReportEncoding(&reporter, "str_filter_eq", str_filter);

  Comparison str_group_by = CompareEncoding(
      engine, flat_engine,
      "SELECT s, COUNT(*) AS n, SUM(d) AS sd FROM t GROUP BY s");
  ReportEncoding(&reporter, "str_group_by", str_group_by);

  Comparison str_sort = CompareEncoding(
      engine, flat_engine, "SELECT s, d FROM t ORDER BY s DESC, d LIMIT 100");
  ReportEncoding(&reporter, "str_sort", str_sort);

  const double kernel_gate = RunKernelBench(&reporter, *table, rows, config.seed);

  const double gate = std::min(
      {filter_fused.speedup(), filter_compound.speedup(), projection.speedup(),
       group_by.speedup()});
  std::printf("\nminimum gated speedup (filter/projection/group-by): %.1fx\n", gate);
  reporter.AddMetric("min_gated_speedup", json::Value(gate));

  const double dict_gate = std::min(str_filter.speedup(), str_group_by.speedup());
  std::printf("minimum gated dictionary speedup (str filter/group-by): %.1fx\n",
              dict_gate);
  reporter.AddMetric("min_dict_speedup", json::Value(dict_gate));

  std::printf("gated kernel speedup (fused filter, kernels on/off): %.1fx\n",
              kernel_gate);
  reporter.AddMetric("kernel_speedup", json::Value(kernel_gate));

  if (const char* env = std::getenv("VP_REQUIRE_SPEEDUP"); env != nullptr && env[0]) {
    double required = std::atof(env);
    if (gate < required) {
      std::fprintf(stderr, "FAIL: speedup %.1fx below required %.1fx\n", gate,
                   required);
      return 1;
    }
  }
  if (const char* env = std::getenv("VP_REQUIRE_DICT_SPEEDUP");
      env != nullptr && env[0]) {
    double required = std::atof(env);
    if (dict_gate < required) {
      std::fprintf(stderr, "FAIL: dictionary speedup %.1fx below required %.1fx\n",
                   dict_gate, required);
      return 1;
    }
  }
  if (const char* env = std::getenv("VP_REQUIRE_KERNEL_SPEEDUP");
      env != nullptr && env[0]) {
    double required = std::atof(env);
    if (kernel_gate < required) {
      std::fprintf(stderr, "FAIL: kernel speedup %.1fx below required %.1fx\n",
                   kernel_gate, required);
      return 1;
    }
  }
  return 0;
}
