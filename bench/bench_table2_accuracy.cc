// Table 2: model prediction accuracy for plan pair comparison on *initial
// rendering* episodes, per input size. 60/40 train/test split (§7.3).
// Expected shape: Random Forest > RankSVM > heuristic > random (~0.5).
#include <cstdio>

#include "bench_util.h"

using namespace vegaplus;         // NOLINT
using namespace vegaplus::bench;  // NOLINT

int main() {
  BenchConfig config = LoadConfig();
  std::printf("=== Table 2: pairwise prediction accuracy (initial rendering) ===\n\n");
  std::printf("%-14s", "models");
  for (size_t size : config.sizes) std::printf(" %9zu", size);
  std::printf("\n");

  std::vector<std::vector<double>> table(4, std::vector<double>(config.sizes.size()));
  for (size_t si = 0; si < config.sizes.size(); ++si) {
    std::vector<ml::PairExample> pairs;
    for (benchdata::TemplateId id : benchdata::AllTemplates()) {
      BENCH_ASSIGN(auto run,
                   CollectTemplate(id, DatasetFor(id), config.sizes[si], config));
      auto episode_pairs = optimizer::MakePairs(run->InitialEpisodes(),
                                                config.max_pairs / 7, config.seed);
      pairs.insert(pairs.end(), episode_pairs.begin(), episode_pairs.end());
    }
    std::vector<ml::PairExample> train, test;
    ml::TrainTestSplit(pairs, 0.6, config.seed, &train, &test);
    ModelSuite suite = TrainSuite(train, config.seed);
    auto models = suite.All();
    for (size_t m = 0; m < models.size(); ++m) {
      table[m][si] = ComparatorAccuracy(*models[m], test);
    }
  }

  const char* names[] = {"RankSVM", "Random Forest", "heuristic", "random"};
  for (int m = 0; m < 4; ++m) {
    std::printf("%-14s", names[m]);
    for (size_t si = 0; si < config.sizes.size(); ++si) {
      std::printf(" %9.3f", table[static_cast<size_t>(m)][si]);
    }
    std::printf("\n");
  }
  return 0;
}
