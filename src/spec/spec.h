// The Vega specification model (the subset VegaPlus reasons about): signals
// with input binds, the data pipeline (data entries with transform arrays),
// and the scale/mark references used for data-dependency checking.
#ifndef VEGAPLUS_SPEC_SPEC_H_
#define VEGAPLUS_SPEC_SPEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "json/json_value.h"

namespace vegaplus {
namespace spec {

/// How a signal is bound to an input widget (drives workload simulation).
enum class BindKind {
  kNone,      // internal signal (e.g. extent outputs, brush state)
  kRange,     // slider: numeric in [min, max] with step
  kSelect,    // dropdown: one of options
  kInterval,  // 2D brush / domain interval: [lo, hi] within a field's extent
  kPoint,     // click selection: a categorical value or null (no filter)
};

const char* BindKindName(BindKind kind);

struct SignalSpec {
  std::string name;
  json::Value init;  // initial value
  BindKind bind = BindKind::kNone;
  // kRange:
  double bind_min = 0;
  double bind_max = 0;
  double bind_step = 1;
  // kSelect / kPoint: candidate values; kInterval: the field whose extent
  // bounds the interval.
  std::vector<json::Value> options;
  std::string bound_field;  // kInterval / kPoint: data field the widget covers
};

struct TransformSpec {
  std::string type;     // "filter", "extent", "bin", ...
  json::Value params;   // full transform object (includes "type")
};

struct DataSpec {
  std::string name;
  /// Upstream data entry ("" for roots).
  std::string source;
  /// Root entries: DBMS table backing this entry.
  std::string table;
  /// Root entries: CSV url/path (pure-Vega loading path).
  std::string url;
  std::vector<TransformSpec> transforms;
};

struct ScaleSpec {
  std::string name;
  std::string domain_data;   // data entry the domain reads ("" if none)
  std::string domain_field;
  std::string domain_signal;  // or a signal-driven domain
};

struct MarkSpec {
  std::string type;       // "rect", "line", "area", "symbol", ...
  std::string from_data;  // data entry rendered by this mark
};

/// \brief A parsed Vega specification.
struct VegaSpec {
  std::string name;
  std::vector<SignalSpec> signals;
  std::vector<DataSpec> data;
  std::vector<ScaleSpec> scales;
  std::vector<MarkSpec> marks;

  const DataSpec* FindData(const std::string& name) const {
    for (const auto& d : data) {
      if (d.name == name) return &d;
    }
    return nullptr;
  }
  const SignalSpec* FindSignal(const std::string& name) const {
    for (const auto& s : signals) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  /// Total number of declared transform operators (Table 1's "# of
  /// Operators").
  size_t TotalOperators() const {
    size_t n = 0;
    for (const auto& d : data) n += d.transforms.size();
    return n;
  }
};

/// Parse a spec from its JSON document.
Result<VegaSpec> ParseSpec(const json::Value& doc);

/// Parse a spec from JSON text.
Result<VegaSpec> ParseSpecText(const std::string& text);

/// Serialize back to JSON (round-trips through ParseSpec).
json::Value SpecToJson(const VegaSpec& spec);

}  // namespace spec
}  // namespace vegaplus

#endif  // VEGAPLUS_SPEC_SPEC_H_
