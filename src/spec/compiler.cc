#include "spec/compiler.h"

#include "spec/transform_factory.h"

namespace vegaplus {
namespace spec {

std::set<std::string> ComputeClientReserved(const VegaSpec& spec) {
  std::set<std::string> reserved;
  for (const auto& s : spec.scales) {
    if (!s.domain_data.empty()) reserved.insert(s.domain_data);
  }
  for (const auto& m : spec.marks) {
    if (!m.from_data.empty()) reserved.insert(m.from_data);
  }
  return reserved;
}

Result<CompiledDataflow> CompileClientDataflow(
    const VegaSpec& spec, const std::map<std::string, data::TablePtr>& tables) {
  CompiledDataflow out;
  out.graph = std::make_unique<dataflow::Dataflow>();
  dataflow::Dataflow& graph = *out.graph;

  for (const auto& sig : spec.signals) {
    graph.DeclareSignal(sig.name, expr::EvalValue::FromJson(sig.init));
  }

  std::set<std::string> reserved = ComputeClientReserved(spec);
  std::map<std::string, dataflow::Operator*> tails;

  for (const auto& d : spec.data) {
    CompiledEntry entry;
    entry.name = d.name;

    dataflow::Operator* head = nullptr;
    if (!d.source.empty()) {
      auto it = tails.find(d.source);
      if (it == tails.end()) {
        return Status::InvalidArgument("compile: data '" + d.name +
                                       "' sources not-yet-defined entry '" + d.source +
                                       "' (spec order must be topological)");
      }
      head = graph.Add(std::make_unique<dataflow::RelayOp>(), it->second);
    } else {
      std::string key = !d.table.empty() ? d.table : d.name;
      auto it = tables.find(key);
      if (it == tables.end()) {
        return Status::KeyError("compile: no table bound for root entry '" + d.name +
                                "' (key '" + key + "')");
      }
      head = graph.Add(std::make_unique<dataflow::TableSourceOp>(it->second), nullptr);
    }
    head->data_entry = d.name;
    entry.head = head;

    dataflow::Operator* prev = head;
    for (const auto& ts : d.transforms) {
      VP_ASSIGN_OR_RETURN(std::unique_ptr<dataflow::Operator> op, BuildTransformOp(ts));
      dataflow::Operator* raw = graph.Add(std::move(op), prev);
      raw->data_entry = d.name;
      // Extent-style operators produce signals; register for rank ordering.
      if (auto* extent = dynamic_cast<transforms::ExtentOp*>(raw)) {
        graph.RegisterSignalProducer(extent->output_signal(), raw);
      }
      entry.transform_ops.push_back(raw);
      prev = raw;
    }
    entry.tail = prev;
    prev->client_reserved = reserved.count(d.name) > 0;
    tails[d.name] = prev;
    out.entries.push_back(std::move(entry));
  }
  return out;
}

}  // namespace spec
}  // namespace vegaplus
