// TransformSpec JSON -> dataflow operator instances.
#ifndef VEGAPLUS_SPEC_TRANSFORM_FACTORY_H_
#define VEGAPLUS_SPEC_TRANSFORM_FACTORY_H_

#include <memory>

#include "common/result.h"
#include "dataflow/operator.h"
#include "spec/spec.h"
#include "transforms/transforms.h"

namespace vegaplus {
namespace spec {

/// Parse a field parameter: a JSON string (fixed field) or {"signal": name}.
Result<transforms::FieldRef> ParseFieldRef(const json::Value& v);

/// Instantiate the dataflow operator for one transform spec. Supported
/// types: filter, extent, bin, aggregate, collect, project, stack, timeunit,
/// formula.
Result<std::unique_ptr<dataflow::Operator>> BuildTransformOp(const TransformSpec& ts);

}  // namespace spec
}  // namespace vegaplus

#endif  // VEGAPLUS_SPEC_TRANSFORM_FACTORY_H_
