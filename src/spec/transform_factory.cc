#include "spec/transform_factory.h"

#include "expr/parser.h"

namespace vegaplus {
namespace spec {

namespace {

using transforms::FieldRef;

Result<expr::NodePtr> ParseExprParam(const json::Value& params, const std::string& key) {
  const json::Value* e = params.Find(key);
  if (e == nullptr || !e->is_string()) {
    return Status::ParseError("transform: missing '" + key + "' expression");
  }
  VP_ASSIGN_OR_RETURN(expr::NodePtr node, expr::ParseExpression(e->AsString()));
  VP_RETURN_IF_ERROR(expr::Validate(node));
  return node;
}

Result<std::vector<FieldRef>> ParseFieldList(const json::Value& params,
                                             const std::string& key) {
  std::vector<FieldRef> out;
  const json::Value* list = params.Find(key);
  if (list == nullptr) return out;
  if (!list->is_array()) return Status::ParseError("transform: '" + key + "' not a list");
  for (const auto& item : list->array()) {
    if (item.is_null()) {
      out.push_back(FieldRef());  // count-style op without a field
      continue;
    }
    VP_ASSIGN_OR_RETURN(FieldRef f, ParseFieldRef(item));
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<std::string> ParseStringList(const json::Value& params,
                                         const std::string& key) {
  std::vector<std::string> out;
  const json::Value* list = params.Find(key);
  if (list == nullptr || !list->is_array()) return out;
  for (const auto& item : list->array()) {
    out.push_back(item.is_string() ? item.AsString() : "");
  }
  return out;
}

Result<std::vector<transforms::CollectOp::SortKey>> ParseSortKeys(
    const json::Value& params) {
  std::vector<transforms::CollectOp::SortKey> keys;
  const json::Value* sort = params.Find("sort");
  if (sort == nullptr) return keys;
  if (!sort->is_object()) return Status::ParseError("transform: 'sort' not an object");
  const json::Value* fields = sort->Find("field");
  std::vector<std::string> orders = ParseStringList(*sort, "order");
  if (fields == nullptr) return keys;
  auto add_key = [&](const json::Value& f, size_t i) -> Status {
    transforms::CollectOp::SortKey key;
    VP_ASSIGN_OR_RETURN(key.field, ParseFieldRef(f));
    key.descending = i < orders.size() && orders[i] == "descending";
    keys.push_back(std::move(key));
    return Status::OK();
  };
  if (fields->is_array()) {
    for (size_t i = 0; i < fields->array().size(); ++i) {
      VP_RETURN_IF_ERROR(add_key(fields->array()[i], i));
    }
  } else {
    VP_RETURN_IF_ERROR(add_key(*fields, 0));
  }
  return keys;
}

}  // namespace

Result<FieldRef> ParseFieldRef(const json::Value& v) {
  if (v.is_string()) return FieldRef::Fixed(v.AsString());
  if (v.is_object()) {
    std::string sig = v.GetString("signal");
    if (!sig.empty()) return FieldRef::Signal(sig);
  }
  return Status::ParseError("transform: bad field reference");
}

Result<std::unique_ptr<dataflow::Operator>> BuildTransformOp(const TransformSpec& ts) {
  const json::Value& p = ts.params;
  if (ts.type == "filter") {
    VP_ASSIGN_OR_RETURN(expr::NodePtr pred, ParseExprParam(p, "expr"));
    return std::unique_ptr<dataflow::Operator>(new transforms::FilterOp(pred));
  }
  if (ts.type == "extent") {
    const json::Value* f = p.Find("field");
    if (f == nullptr) return Status::ParseError("extent: missing field");
    VP_ASSIGN_OR_RETURN(FieldRef field, ParseFieldRef(*f));
    std::string out_signal = p.GetString("signal");
    if (out_signal.empty()) return Status::ParseError("extent: missing output signal");
    return std::unique_ptr<dataflow::Operator>(
        new transforms::ExtentOp(std::move(field), std::move(out_signal)));
  }
  if (ts.type == "bin") {
    transforms::BinOp::Params params;
    const json::Value* f = p.Find("field");
    if (f == nullptr) return Status::ParseError("bin: missing field");
    VP_ASSIGN_OR_RETURN(params.field, ParseFieldRef(*f));
    if (const json::Value* extent = p.Find("extent")) {
      if (extent->is_object()) params.extent_signal = extent->GetString("signal");
    }
    if (params.extent_signal.empty()) {
      return Status::ParseError("bin: missing extent signal");
    }
    if (const json::Value* mb = p.Find("maxbins")) {
      if (mb->is_number()) {
        params.maxbins = static_cast<int>(mb->AsDouble());
      } else if (mb->is_object()) {
        params.maxbins_signal = mb->GetString("signal");
      }
    }
    std::vector<std::string> as = ParseStringList(p, "as");
    if (as.size() >= 1 && !as[0].empty()) params.as0 = as[0];
    if (as.size() >= 2 && !as[1].empty()) params.as1 = as[1];
    return std::unique_ptr<dataflow::Operator>(new transforms::BinOp(std::move(params)));
  }
  if (ts.type == "aggregate") {
    transforms::AggregateOp::Params params;
    VP_ASSIGN_OR_RETURN(params.groupby, ParseFieldList(p, "groupby"));
    VP_ASSIGN_OR_RETURN(params.fields, ParseFieldList(p, "fields"));
    for (const std::string& name : ParseStringList(p, "ops")) {
      transforms::VegaAggOp op;
      if (!transforms::ParseVegaAggOp(name, &op)) {
        return Status::ParseError("aggregate: unknown op '" + name + "'");
      }
      params.ops.push_back(op);
    }
    if (params.ops.empty()) {
      params.ops.push_back(transforms::VegaAggOp::kCount);  // Vega default
      params.fields.resize(1);
    }
    if (params.fields.size() < params.ops.size()) {
      params.fields.resize(params.ops.size());
    }
    params.as = ParseStringList(p, "as");
    return std::unique_ptr<dataflow::Operator>(
        new transforms::AggregateOp(std::move(params)));
  }
  if (ts.type == "collect") {
    VP_ASSIGN_OR_RETURN(auto keys, ParseSortKeys(p));
    return std::unique_ptr<dataflow::Operator>(new transforms::CollectOp(std::move(keys)));
  }
  if (ts.type == "project") {
    VP_ASSIGN_OR_RETURN(auto fields, ParseFieldList(p, "fields"));
    return std::unique_ptr<dataflow::Operator>(
        new transforms::ProjectOp(std::move(fields), ParseStringList(p, "as")));
  }
  if (ts.type == "stack") {
    transforms::StackOp::Params params;
    const json::Value* f = p.Find("field");
    if (f == nullptr) return Status::ParseError("stack: missing field");
    VP_ASSIGN_OR_RETURN(params.field, ParseFieldRef(*f));
    VP_ASSIGN_OR_RETURN(params.groupby, ParseFieldList(p, "groupby"));
    VP_ASSIGN_OR_RETURN(params.sort, ParseSortKeys(p));
    std::vector<std::string> as = ParseStringList(p, "as");
    if (as.size() >= 1 && !as[0].empty()) params.as0 = as[0];
    if (as.size() >= 2 && !as[1].empty()) params.as1 = as[1];
    return std::unique_ptr<dataflow::Operator>(new transforms::StackOp(std::move(params)));
  }
  if (ts.type == "timeunit") {
    transforms::TimeunitOp::Params params;
    const json::Value* f = p.Find("field");
    if (f == nullptr) return Status::ParseError("timeunit: missing field");
    VP_ASSIGN_OR_RETURN(params.field, ParseFieldRef(*f));
    std::string unit = p.GetString("units", p.GetString("unit"));
    if (!unit.empty()) params.unit = unit;
    std::vector<std::string> as = ParseStringList(p, "as");
    if (as.size() >= 1 && !as[0].empty()) params.as0 = as[0];
    if (as.size() >= 2 && !as[1].empty()) params.as1 = as[1];
    return std::unique_ptr<dataflow::Operator>(
        new transforms::TimeunitOp(std::move(params)));
  }
  if (ts.type == "formula") {
    VP_ASSIGN_OR_RETURN(expr::NodePtr expression, ParseExprParam(p, "expr"));
    std::string as = p.GetString("as");
    if (as.empty()) return Status::ParseError("formula: missing 'as'");
    return std::unique_ptr<dataflow::Operator>(
        new transforms::FormulaOp(expression, std::move(as)));
  }
  return Status::NotImplemented("transform: unknown type '" + ts.type + "'");
}

}  // namespace spec
}  // namespace vegaplus
