#include "spec/spec.h"

#include "json/json_parser.h"

namespace vegaplus {
namespace spec {

const char* BindKindName(BindKind kind) {
  switch (kind) {
    case BindKind::kNone: return "none";
    case BindKind::kRange: return "range";
    case BindKind::kSelect: return "select";
    case BindKind::kInterval: return "interval";
    case BindKind::kPoint: return "point";
  }
  return "?";
}

namespace {

BindKind BindKindFromName(const std::string& name) {
  if (name == "range") return BindKind::kRange;
  if (name == "select") return BindKind::kSelect;
  if (name == "interval") return BindKind::kInterval;
  if (name == "point") return BindKind::kPoint;
  return BindKind::kNone;
}

Result<SignalSpec> ParseSignal(const json::Value& s) {
  if (!s.is_object()) return Status::ParseError("spec: signal must be an object");
  SignalSpec out;
  out.name = s.GetString("name");
  if (out.name.empty()) return Status::ParseError("spec: signal without name");
  if (const json::Value* init = s.Find("value")) out.init = *init;
  if (const json::Value* bind = s.Find("bind")) {
    if (!bind->is_object()) return Status::ParseError("spec: bind must be an object");
    out.bind = BindKindFromName(bind->GetString("input"));
    out.bind_min = bind->GetDouble("min");
    out.bind_max = bind->GetDouble("max");
    out.bind_step = bind->GetDouble("step", 1);
    out.bound_field = bind->GetString("field");
    if (const json::Value* options = bind->Find("options")) {
      if (options->is_array()) {
        for (const auto& opt : options->array()) out.options.push_back(opt);
      }
    }
  }
  return out;
}

Result<DataSpec> ParseData(const json::Value& d) {
  if (!d.is_object()) return Status::ParseError("spec: data entry must be an object");
  DataSpec out;
  out.name = d.GetString("name");
  if (out.name.empty()) return Status::ParseError("spec: data entry without name");
  out.source = d.GetString("source");
  out.url = d.GetString("url");
  out.table = d.GetString("table");
  if (const json::Value* transforms = d.Find("transform")) {
    if (!transforms->is_array()) {
      return Status::ParseError("spec: transform must be an array");
    }
    for (const auto& t : transforms->array()) {
      if (!t.is_object()) return Status::ParseError("spec: transform must be objects");
      TransformSpec ts;
      ts.type = t.GetString("type");
      if (ts.type.empty()) return Status::ParseError("spec: transform without type");
      ts.params = t;
      out.transforms.push_back(std::move(ts));
    }
  }
  return out;
}

Result<ScaleSpec> ParseScale(const json::Value& s) {
  ScaleSpec out;
  out.name = s.GetString("name");
  if (const json::Value* domain = s.Find("domain")) {
    if (domain->is_object()) {
      out.domain_data = domain->GetString("data");
      out.domain_field = domain->GetString("field");
      out.domain_signal = domain->GetString("signal");
    }
  }
  return out;
}

Result<MarkSpec> ParseMark(const json::Value& m) {
  MarkSpec out;
  out.type = m.GetString("type");
  if (const json::Value* from = m.Find("from")) {
    if (from->is_object()) out.from_data = from->GetString("data");
  }
  return out;
}

}  // namespace

Result<VegaSpec> ParseSpec(const json::Value& doc) {
  if (!doc.is_object()) return Status::ParseError("spec: document must be an object");
  VegaSpec spec;
  spec.name = doc.GetString("name", "spec");
  if (const json::Value* signals = doc.Find("signals")) {
    for (const auto& s : signals->array()) {
      VP_ASSIGN_OR_RETURN(SignalSpec sig, ParseSignal(s));
      spec.signals.push_back(std::move(sig));
    }
  }
  if (const json::Value* entries = doc.Find("data")) {
    for (const auto& d : entries->array()) {
      VP_ASSIGN_OR_RETURN(DataSpec data, ParseData(d));
      spec.data.push_back(std::move(data));
    }
  }
  if (const json::Value* scales = doc.Find("scales")) {
    for (const auto& s : scales->array()) {
      VP_ASSIGN_OR_RETURN(ScaleSpec scale, ParseScale(s));
      spec.scales.push_back(std::move(scale));
    }
  }
  if (const json::Value* marks = doc.Find("marks")) {
    for (const auto& m : marks->array()) {
      VP_ASSIGN_OR_RETURN(MarkSpec mark, ParseMark(m));
      spec.marks.push_back(std::move(mark));
    }
  }
  // Referential integrity: sources, scale domains and mark froms must name
  // known data entries.
  for (const auto& d : spec.data) {
    if (!d.source.empty() && spec.FindData(d.source) == nullptr) {
      return Status::ParseError("spec: data '" + d.name + "' sources unknown entry '" +
                                d.source + "'");
    }
    if (d.source.empty() && d.table.empty() && d.url.empty()) {
      return Status::ParseError("spec: root data '" + d.name +
                                "' needs a table or url");
    }
  }
  for (const auto& s : spec.scales) {
    if (!s.domain_data.empty() && spec.FindData(s.domain_data) == nullptr) {
      return Status::ParseError("spec: scale '" + s.name + "' references unknown data");
    }
  }
  for (const auto& m : spec.marks) {
    if (!m.from_data.empty() && spec.FindData(m.from_data) == nullptr) {
      return Status::ParseError("spec: mark references unknown data '" + m.from_data +
                                "'");
    }
  }
  return spec;
}

Result<VegaSpec> ParseSpecText(const std::string& text) {
  VP_ASSIGN_OR_RETURN(json::Value doc, json::Parse(text));
  return ParseSpec(doc);
}

json::Value SpecToJson(const VegaSpec& spec) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("name", spec.name);
  json::Value signals = json::Value::MakeArray();
  for (const auto& s : spec.signals) {
    json::Value sig = json::Value::MakeObject();
    sig.Set("name", s.name);
    if (!s.init.is_null()) sig.Set("value", s.init);
    if (s.bind != BindKind::kNone) {
      json::Value bind = json::Value::MakeObject();
      bind.Set("input", BindKindName(s.bind));
      if (s.bind == BindKind::kRange) {
        bind.Set("min", s.bind_min);
        bind.Set("max", s.bind_max);
        bind.Set("step", s.bind_step);
      }
      if (!s.bound_field.empty()) bind.Set("field", s.bound_field);
      if (!s.options.empty()) {
        json::Value options = json::Value::MakeArray();
        for (const auto& opt : s.options) options.Append(opt);
        bind.Set("options", std::move(options));
      }
      sig.Set("bind", std::move(bind));
    }
    signals.Append(std::move(sig));
  }
  doc.Set("signals", std::move(signals));
  json::Value data = json::Value::MakeArray();
  for (const auto& d : spec.data) {
    json::Value entry = json::Value::MakeObject();
    entry.Set("name", d.name);
    if (!d.source.empty()) entry.Set("source", d.source);
    if (!d.table.empty()) entry.Set("table", d.table);
    if (!d.url.empty()) entry.Set("url", d.url);
    if (!d.transforms.empty()) {
      json::Value transforms = json::Value::MakeArray();
      for (const auto& t : d.transforms) transforms.Append(t.params);
      entry.Set("transform", std::move(transforms));
    }
    data.Append(std::move(entry));
  }
  doc.Set("data", std::move(data));
  json::Value scales = json::Value::MakeArray();
  for (const auto& s : spec.scales) {
    json::Value scale = json::Value::MakeObject();
    scale.Set("name", s.name);
    json::Value domain = json::Value::MakeObject();
    if (!s.domain_data.empty()) domain.Set("data", s.domain_data);
    if (!s.domain_field.empty()) domain.Set("field", s.domain_field);
    if (!s.domain_signal.empty()) domain.Set("signal", s.domain_signal);
    scale.Set("domain", std::move(domain));
    scales.Append(std::move(scale));
  }
  doc.Set("scales", std::move(scales));
  json::Value marks = json::Value::MakeArray();
  for (const auto& m : spec.marks) {
    json::Value mark = json::Value::MakeObject();
    mark.Set("type", m.type);
    if (!m.from_data.empty()) {
      json::Value from = json::Value::MakeObject();
      from.Set("data", m.from_data);
      mark.Set("from", std::move(from));
    }
    marks.Append(std::move(mark));
  }
  doc.Set("marks", std::move(marks));
  return doc;
}

}  // namespace spec
}  // namespace vegaplus
