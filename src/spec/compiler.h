// Spec -> dataflow compilation (the all-client execution, i.e. what stock
// Vega does). Plan-aware compilation with VDTs lives in src/rewrite.
#ifndef VEGAPLUS_SPEC_COMPILER_H_
#define VEGAPLUS_SPEC_COMPILER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dataflow/dataflow.h"
#include "spec/spec.h"

namespace vegaplus {
namespace spec {

/// \brief One compiled data entry: its operators in pipeline order.
struct CompiledEntry {
  std::string name;
  dataflow::Operator* head = nullptr;  // source / relay feeding the pipeline
  std::vector<dataflow::Operator*> transform_ops;
  dataflow::Operator* tail = nullptr;  // output of the entry
};

/// \brief A compiled dataflow plus entry metadata.
struct CompiledDataflow {
  std::unique_ptr<dataflow::Dataflow> graph;
  std::vector<CompiledEntry> entries;

  const CompiledEntry* FindEntry(const std::string& name) const {
    for (const auto& e : entries) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }
};

/// Data entries whose outputs must be materialized on the client because
/// other spec components (scales, marks) reference them (§5.2 "Data
/// Dependency Checking").
std::set<std::string> ComputeClientReserved(const VegaSpec& spec);

/// Compile the all-client dataflow. Root entries take their tables from
/// `tables` (keyed by the entry's `table` name, falling back to entry name).
Result<CompiledDataflow> CompileClientDataflow(
    const VegaSpec& spec, const std::map<std::string, data::TablePtr>& tables);

}  // namespace spec
}  // namespace vegaplus

#endif  // VEGAPLUS_SPEC_COMPILER_H_
