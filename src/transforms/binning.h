// Vega's "nice" binning: choose a human-friendly step ({1,2,5}x10^k) so the
// bin count does not exceed maxbins. Shared by the client-side bin operator
// and the SQL rewriter's query builder so both produce identical buckets.
#ifndef VEGAPLUS_TRANSFORMS_BINNING_H_
#define VEGAPLUS_TRANSFORMS_BINNING_H_

namespace vegaplus {
namespace transforms {

struct Binning {
  double start = 0;
  double stop = 0;
  double step = 1;
};

/// Compute nice bin boundaries for [lo, hi] with at most `maxbins` bins.
/// Degenerate extents (hi <= lo) yield a single unit bin at lo.
Binning ComputeBinning(double lo, double hi, int maxbins);

}  // namespace transforms
}  // namespace vegaplus

#endif  // VEGAPLUS_TRANSFORMS_BINNING_H_
