#include "transforms/transforms.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "common/str_util.h"
#include "expr/batch_eval.h"
#include "expr/compiler.h"
#include "expr/functions.h"
#include "transforms/binning.h"

namespace vegaplus {
namespace transforms {

namespace {

using data::Column;
using data::DataType;
using data::Schema;
using data::Table;
using data::TablePtr;
using data::Value;
using dataflow::EvalResult;

std::vector<std::string> CollectSignalDeps(const expr::NodePtr& node) {
  std::vector<std::string> fields, signals;
  expr::CollectReferences(node, &fields, &signals);
  return signals;
}

void AddSignalDep(std::vector<std::string>* deps, const std::string& name) {
  if (!name.empty() &&
      std::find(deps->begin(), deps->end(), name) == deps->end()) {
    deps->push_back(name);
  }
}

using expr::BatchEvaluator;
using expr::Vec;

/// Typed register over `col`, or a broadcast null register when the column
/// is absent (the scalar paths treat missing fields as all-null).
Vec ColumnOrNullVec(const Column* col) {
  if (col != nullptr) return expr::ColumnVec(*col);
  Vec v;
  v.kind = expr::RegKind::kNum;
  v.is_const = true;
  v.num.push_back(0);
  v.valid.push_back(0);
  return v;
}

/// Group all rows of an n-row table by `key_cols` (missing columns group as
/// null). Returns group ids per row plus one representative row per group.
expr::GroupResult GroupByColumns(const std::vector<const Column*>& key_cols,
                                 size_t n, std::vector<Vec>* key_vecs) {
  key_vecs->clear();
  key_vecs->reserve(key_cols.size());
  for (const Column* c : key_cols) key_vecs->push_back(ColumnOrNullVec(c));
  std::vector<const Vec*> ptrs;
  ptrs.reserve(key_vecs->size());
  for (const Vec& v : *key_vecs) ptrs.push_back(&v);
  std::vector<int32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return expr::BuildGroups(ptrs, rows);
}

}  // namespace

bool ParseVegaAggOp(const std::string& name, VegaAggOp* op) {
  if (name == "count") *op = VegaAggOp::kCount;
  else if (name == "valid") *op = VegaAggOp::kValid;
  else if (name == "sum") *op = VegaAggOp::kSum;
  else if (name == "mean" || name == "average" || name == "avg") *op = VegaAggOp::kMean;
  else if (name == "min") *op = VegaAggOp::kMin;
  else if (name == "max") *op = VegaAggOp::kMax;
  else if (name == "median") *op = VegaAggOp::kMedian;
  else if (name == "stdev" || name == "stddev") *op = VegaAggOp::kStdev;
  else return false;
  return true;
}

const char* VegaAggOpName(VegaAggOp op) {
  switch (op) {
    case VegaAggOp::kCount: return "count";
    case VegaAggOp::kValid: return "valid";
    case VegaAggOp::kSum: return "sum";
    case VegaAggOp::kMean: return "mean";
    case VegaAggOp::kMin: return "min";
    case VegaAggOp::kMax: return "max";
    case VegaAggOp::kMedian: return "median";
    case VegaAggOp::kStdev: return "stdev";
  }
  return "?";
}

// ---- FilterOp ----

FilterOp::FilterOp(expr::NodePtr predicate)
    : Operator("filter", CollectSignalDeps(predicate)), predicate_(std::move(predicate)) {}

Result<EvalResult> FilterOp::Evaluate(const TablePtr& input,
                                      const expr::SignalResolver& signals) {
  if (!input) return Status::InvalidArgument("filter: missing input");
  VP_RETURN_IF_ERROR(expr::Validate(predicate_));
  std::vector<int32_t> keep;
  keep.reserve(input->num_rows());
  bool vectorized = false;
  if (expr::VectorizedEnabled()) {
    // Signal-free predicates compile to a vector program (often the fused
    // column-compare fast path) and filter morsel-parallel; signal-dependent
    // ones fall back to the scalar interpreter below.
    if (auto program = expr::Compiler::Compile(predicate_, input->schema())) {
      expr::RunFilterMorselParallel(*input, *program, &keep);
      vectorized = true;
    }
  }
  if (!vectorized) {
    expr::EvalContext ctx;
    ctx.table = input.get();
    ctx.signals = &signals;
    for (size_t r = 0; r < input->num_rows(); ++r) {
      ctx.row = r;
      if (expr::Evaluate(predicate_, ctx).Truthy()) {
        keep.push_back(static_cast<int32_t>(r));
      }
    }
  }
  EvalResult result;
  result.table = input->Take(keep);
  result.rows_processed = input->num_rows();
  return result;
}

// ---- ExtentOp ----

ExtentOp::ExtentOp(FieldRef field, std::string output_signal)
    : Operator("extent", {}), field_(std::move(field)),
      output_signal_(std::move(output_signal)) {
  AddSignalDep(&signal_deps_, field_.signal);
}

Result<EvalResult> ExtentOp::Evaluate(const TablePtr& input,
                                      const expr::SignalResolver& signals) {
  if (!input) return Status::InvalidArgument("extent: missing input");
  VP_ASSIGN_OR_RETURN(std::string field, field_.Resolve(signals));
  const Column* col = input->ColumnByName(field);
  double lo = std::numeric_limits<double>::quiet_NaN();
  double hi = lo;
  if (col != nullptr) {
    for (size_t r = 0; r < col->length(); ++r) {
      double v = col->NumericAt(r);
      if (std::isnan(v)) continue;
      if (std::isnan(lo) || v < lo) lo = v;
      if (std::isnan(hi) || v > hi) hi = v;
    }
  }
  if (std::isnan(lo)) {
    lo = 0;
    hi = 1;
  }
  EvalResult result;
  result.table = input;  // extent passes tuples through unchanged
  result.rows_processed = input->num_rows();
  result.signal_writes.emplace_back(
      output_signal_,
      expr::EvalValue::Array({Value::Double(lo), Value::Double(hi)}));
  return result;
}

// ---- BinOp ----

BinOp::BinOp(Params params) : Operator("bin", {}), params_(std::move(params)) {
  AddSignalDep(&signal_deps_, params_.field.signal);
  AddSignalDep(&signal_deps_, params_.extent_signal);
  AddSignalDep(&signal_deps_, params_.maxbins_signal);
}

Result<EvalResult> BinOp::Evaluate(const TablePtr& input,
                                   const expr::SignalResolver& signals) {
  if (!input) return Status::InvalidArgument("bin: missing input");
  VP_ASSIGN_OR_RETURN(std::string field, params_.field.Resolve(signals));

  expr::EvalValue extent;
  if (params_.extent_signal.empty() || !signals.Lookup(params_.extent_signal, &extent) ||
      !extent.is_array() || extent.array().size() < 2) {
    return Status::InvalidArgument("bin: extent signal '" + params_.extent_signal +
                                   "' missing or not a [lo, hi] array");
  }
  int maxbins = params_.maxbins;
  if (!params_.maxbins_signal.empty()) {
    expr::EvalValue mb;
    if (signals.Lookup(params_.maxbins_signal, &mb) && !mb.is_array() &&
        mb.scalar().is_numeric()) {
      maxbins = static_cast<int>(mb.scalar().AsDouble());
    }
  }
  Binning bin = ComputeBinning(extent.array()[0].AsDouble(),
                               extent.array()[1].AsDouble(), maxbins);

  const Column* col = input->ColumnByName(field);
  std::vector<data::Field> fields(input->schema().fields());
  fields.push_back({params_.as0, DataType::kFloat64});
  fields.push_back({params_.as1, DataType::kFloat64});
  std::vector<Column> columns;
  columns.reserve(fields.size());
  for (size_t c = 0; c < input->num_columns(); ++c) columns.push_back(input->column(c));
  Column bin0(DataType::kFloat64), bin1(DataType::kFloat64);
  bin0.Reserve(input->num_rows());
  bin1.Reserve(input->num_rows());
  for (size_t r = 0; r < input->num_rows(); ++r) {
    double v = col != nullptr ? col->NumericAt(r) : std::nan("");
    if (std::isnan(v)) {
      bin0.AppendNull();
      bin1.AppendNull();
      continue;
    }
    double b0 = bin.start + std::floor((v - bin.start) / bin.step) * bin.step;
    bin0.AppendDouble(b0);
    bin1.AppendDouble(b0 + bin.step);
  }
  columns.push_back(std::move(bin0));
  columns.push_back(std::move(bin1));

  EvalResult result;
  result.table = std::make_shared<Table>(Schema(std::move(fields)), std::move(columns));
  result.rows_processed = input->num_rows();
  return result;
}

// ---- AggregateOp ----

namespace {

struct VegaAggState {
  size_t count = 0;
  size_t valid = 0;
  double sum = 0;
  double sum_sq = 0;
  Value min = Value::Null();
  Value max = Value::Null();
  std::vector<double> values;  // median

  void Update(VegaAggOp op, const Value& v) {
    ++count;
    if (v.is_null()) return;
    ++valid;
    switch (op) {
      case VegaAggOp::kSum:
      case VegaAggOp::kMean:
        sum += v.AsDouble();
        break;
      case VegaAggOp::kStdev:
        sum += v.AsDouble();
        sum_sq += v.AsDouble() * v.AsDouble();
        break;
      case VegaAggOp::kMedian:
        values.push_back(v.AsDouble());
        break;
      case VegaAggOp::kMin:
        if (min.is_null() || v.Compare(min) < 0) min = v;
        break;
      case VegaAggOp::kMax:
        if (max.is_null() || v.Compare(max) > 0) max = v;
        break;
      default:
        break;
    }
  }

  /// Fold `other` (a later chunk of the same group's rows) into this state.
  /// Mirrors sql::AggState::Merge: chunks merge in row order, with chunk
  /// boundaries fixed by AggChunkSize (independent of thread count and of
  /// the morsel kill switch), so results are identical at any parallelism.
  void Merge(VegaAggOp op, VegaAggState&& other) {
    count += other.count;
    valid += other.valid;
    switch (op) {
      case VegaAggOp::kSum:
      case VegaAggOp::kMean:
        sum += other.sum;
        break;
      case VegaAggOp::kStdev:
        sum += other.sum;
        sum_sq += other.sum_sq;
        break;
      case VegaAggOp::kMedian:
        values.insert(values.end(), other.values.begin(), other.values.end());
        break;
      case VegaAggOp::kMin:
        if (!other.min.is_null() && (min.is_null() || other.min.Compare(min) < 0)) {
          min = std::move(other.min);
        }
        break;
      case VegaAggOp::kMax:
        if (!other.max.is_null() && (max.is_null() || other.max.Compare(max) > 0)) {
          max = std::move(other.max);
        }
        break;
      default:
        break;  // count/valid already folded
    }
  }

  Value Finish(VegaAggOp op) {
    switch (op) {
      case VegaAggOp::kCount: return Value::Int(static_cast<int64_t>(count));
      case VegaAggOp::kValid: return Value::Int(static_cast<int64_t>(valid));
      case VegaAggOp::kSum: return valid == 0 ? Value::Null() : Value::Double(sum);
      case VegaAggOp::kMean:
        return valid == 0 ? Value::Null()
                          : Value::Double(sum / static_cast<double>(valid));
      case VegaAggOp::kMin: return min;
      case VegaAggOp::kMax: return max;
      case VegaAggOp::kMedian: {
        if (values.empty()) return Value::Null();
        std::sort(values.begin(), values.end());
        size_t n = values.size();
        return Value::Double(n % 2 == 1 ? values[n / 2]
                                        : 0.5 * (values[n / 2 - 1] + values[n / 2]));
      }
      case VegaAggOp::kStdev: {
        if (valid < 2) return Value::Null();
        double n = static_cast<double>(valid);
        double var = (sum_sq - sum * sum / n) / (n - 1);
        return Value::Double(std::sqrt(std::max(0.0, var)));
      }
    }
    return Value::Null();
  }
};

DataType VegaAggResultType(VegaAggOp op, const Column* arg) {
  switch (op) {
    case VegaAggOp::kCount:
    case VegaAggOp::kValid:
      return DataType::kInt64;
    case VegaAggOp::kMin:
    case VegaAggOp::kMax:
      return arg != nullptr ? arg->type() : DataType::kFloat64;
    default:
      return DataType::kFloat64;
  }
}

}  // namespace

AggregateOp::AggregateOp(Params params)
    : Operator("aggregate", {}), params_(std::move(params)) {
  for (const FieldRef& f : params_.groupby) AddSignalDep(&signal_deps_, f.signal);
  for (const FieldRef& f : params_.fields) AddSignalDep(&signal_deps_, f.signal);
  // Default output names: count -> "count", else op_field.
  for (size_t i = 0; i < params_.ops.size(); ++i) {
    if (i < params_.as.size() && !params_.as[i].empty()) continue;
    std::string name = VegaAggOpName(params_.ops[i]);
    if (i < params_.fields.size() && !params_.fields[i].field.empty()) {
      name += "_" + params_.fields[i].field;
    }
    if (params_.as.size() <= i) params_.as.resize(i + 1);
    params_.as[i] = name;
  }
}

Result<EvalResult> AggregateOp::Evaluate(const TablePtr& input,
                                         const expr::SignalResolver& signals) {
  if (!input) return Status::InvalidArgument("aggregate: missing input");
  // Resolve group/measure fields under current signals.
  std::vector<std::string> group_fields(params_.groupby.size());
  for (size_t i = 0; i < params_.groupby.size(); ++i) {
    VP_ASSIGN_OR_RETURN(group_fields[i], params_.groupby[i].Resolve(signals));
  }
  std::vector<const Column*> group_cols(group_fields.size());
  for (size_t i = 0; i < group_fields.size(); ++i) {
    group_cols[i] = input->ColumnByName(group_fields[i]);
  }
  std::vector<const Column*> measure_cols(params_.ops.size(), nullptr);
  for (size_t i = 0; i < params_.ops.size(); ++i) {
    if (i < params_.fields.size() && !(params_.fields[i].field.empty() &&
                                       params_.fields[i].signal.empty())) {
      VP_ASSIGN_OR_RETURN(std::string f, params_.fields[i].Resolve(signals));
      measure_cols[i] = input->ColumnByName(f);
    }
  }

  // Hash-group all rows by the typed key registers (one pass, no boxing),
  // then accumulate each aggregate with one typed branch per batch.
  const size_t n = input->num_rows();
  std::vector<Vec> key_vecs;
  expr::GroupResult groups = GroupByColumns(group_cols, n, &key_vecs);
  const size_t num_groups = groups.num_groups();

  // Chunked accumulation, mirroring the SQL executor: each chunk of rows
  // fills its own partial states (possibly across the morsel pool) and the
  // partials merge in chunk order. Chunk boundaries depend only on the data
  // shape, so the merged result is identical at any parallelism and with
  // the kill switch off. One measure at a time, so exactly one widened
  // column register is live.
  const size_t chunk_rows = parallel::AggChunkSize(
      n, num_groups * std::max<size_t>(1, params_.ops.size()));
  const std::vector<parallel::Range> chunks = parallel::SplitRanges(n, chunk_rows);
  // VegaAggState counts every row; the row count is the chunk-local group
  // size, computed once and shared by every numeric measure.
  std::vector<std::vector<size_t>> chunk_sizes(chunks.size());
  parallel::ParallelFor(chunks.size(), [&](size_t c) {
    chunk_sizes[c].assign(num_groups, 0);
    for (size_t r = chunks[c].begin; r < chunks[c].end; ++r) {
      ++chunk_sizes[c][groups.group_of[r]];
    }
  });
  std::vector<std::vector<VegaAggState>> states(
      num_groups, std::vector<VegaAggState>(params_.ops.size()));
  for (size_t a = 0; a < params_.ops.size(); ++a) {
    const VegaAggOp op = params_.ops[a];
    const Vec arg = ColumnOrNullVec(measure_cols[a]);
    std::vector<std::vector<VegaAggState>> chunk_states(chunks.size());
    parallel::ParallelFor(chunks.size(), [&](size_t c) {
      std::vector<VegaAggState>& st_c = chunk_states[c];
      st_c.assign(num_groups, VegaAggState());
      const size_t begin = chunks[c].begin, end = chunks[c].end;
      if (arg.kind == expr::RegKind::kStr) {
        // String measures (min/max over categories): boxed per-row updates.
        for (size_t r = begin; r < end; ++r) {
          st_c[groups.group_of[r]].Update(op, arg.CellValue(r));
        }
        return;
      }
      for (size_t g = 0; g < num_groups; ++g) st_c[g].count = chunk_sizes[c][g];
      switch (op) {
        case VegaAggOp::kCount:
          break;  // count preset above
        case VegaAggOp::kValid:
          for (size_t r = begin; r < end; ++r) {
            if (arg.ValidAt(r)) ++st_c[groups.group_of[r]].valid;
          }
          break;
        case VegaAggOp::kSum:
        case VegaAggOp::kMean:
          for (size_t r = begin; r < end; ++r) {
            if (!arg.ValidAt(r)) continue;
            VegaAggState& st = st_c[groups.group_of[r]];
            st.sum += arg.NumAt(r);
            ++st.valid;
          }
          break;
        case VegaAggOp::kStdev:
          for (size_t r = begin; r < end; ++r) {
            if (!arg.ValidAt(r)) continue;
            VegaAggState& st = st_c[groups.group_of[r]];
            const double v = arg.NumAt(r);
            st.sum += v;
            st.sum_sq += v * v;
            ++st.valid;
          }
          break;
        case VegaAggOp::kMedian:
          for (size_t r = begin; r < end; ++r) {
            if (!arg.ValidAt(r)) continue;
            VegaAggState& st = st_c[groups.group_of[r]];
            st.values.push_back(arg.NumAt(r));
            ++st.valid;
          }
          break;
        case VegaAggOp::kMin:
          for (size_t r = begin; r < end; ++r) {
            if (!arg.ValidAt(r)) continue;
            VegaAggState& st = st_c[groups.group_of[r]];
            const double v = arg.NumAt(r);
            if (st.min.is_null() || v < st.min.AsDouble()) st.min = Value::Double(v);
            ++st.valid;
          }
          break;
        case VegaAggOp::kMax:
          for (size_t r = begin; r < end; ++r) {
            if (!arg.ValidAt(r)) continue;
            VegaAggState& st = st_c[groups.group_of[r]];
            const double v = arg.NumAt(r);
            if (st.max.is_null() || v > st.max.AsDouble()) st.max = Value::Double(v);
            ++st.valid;
          }
          break;
      }
    });
    for (size_t c = 0; c < chunks.size(); ++c) {
      for (size_t g = 0; g < num_groups; ++g) {
        states[g][a].Merge(op, std::move(chunk_states[c][g]));
      }
    }
  }

  // Group-key output columns gather the representative rows straight from
  // the input columns (typed, zero boxing); aggregate columns append the
  // finished values.
  std::vector<data::Field> fields;
  std::vector<Column> columns;
  for (size_t i = 0; i < group_fields.size(); ++i) {
    if (group_cols[i] != nullptr) {
      fields.push_back({group_fields[i], group_cols[i]->type()});
      columns.push_back(group_cols[i]->Take(groups.rep_rows));
    } else {
      fields.push_back({group_fields[i], DataType::kString});
      Column null_col(DataType::kString);
      null_col.Reserve(num_groups);
      for (size_t g = 0; g < num_groups; ++g) null_col.AppendNull();
      columns.push_back(std::move(null_col));
    }
  }
  for (size_t a = 0; a < params_.ops.size(); ++a) {
    fields.push_back({params_.as[a], VegaAggResultType(params_.ops[a], measure_cols[a])});
    Column col(fields.back().type);
    col.Reserve(num_groups);
    for (size_t g = 0; g < num_groups; ++g) {
      col.Append(states[g][a].Finish(params_.ops[a]));
    }
    columns.push_back(std::move(col));
  }
  EvalResult result;
  result.table = std::make_shared<Table>(Schema(std::move(fields)), std::move(columns));
  result.rows_processed = input->num_rows();
  return result;
}

// ---- CollectOp ----

CollectOp::CollectOp(std::vector<SortKey> keys)
    : Operator("collect", {}), keys_(std::move(keys)) {
  for (const SortKey& k : keys_) AddSignalDep(&signal_deps_, k.field.signal);
}

Result<EvalResult> CollectOp::Evaluate(const TablePtr& input,
                                       const expr::SignalResolver& signals) {
  if (!input) return Status::InvalidArgument("collect: missing input");
  // Typed sort keys: one register per present key column, compared natively
  // in the comparator instead of boxing two Values per probe; dictionary
  // columns order by their precomputed rank permutation.
  std::vector<Vec> key_vecs;
  std::vector<bool> key_desc;
  for (size_t i = 0; i < keys_.size(); ++i) {
    VP_ASSIGN_OR_RETURN(std::string f, keys_[i].field.Resolve(signals));
    const Column* col = input->ColumnByName(f);
    if (col == nullptr) continue;  // unknown fields never influence the order
    key_vecs.push_back(expr::ColumnVec(*col));
    key_vecs.back().BuildDictRanks();
    key_desc.push_back(keys_[i].descending);
  }
  std::vector<int32_t> order(input->num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    for (size_t i = 0; i < key_vecs.size(); ++i) {
      int cmp = key_vecs[i].CompareCells(static_cast<size_t>(a),
                                         static_cast<size_t>(b));
      if (key_desc[i]) cmp = -cmp;
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  EvalResult result;
  result.table = input->Take(order);
  result.rows_processed = input->num_rows();
  return result;
}

// ---- ProjectOp ----

ProjectOp::ProjectOp(std::vector<FieldRef> fields, std::vector<std::string> as)
    : Operator("project", {}), fields_(std::move(fields)), as_(std::move(as)) {
  for (const FieldRef& f : fields_) AddSignalDep(&signal_deps_, f.signal);
}

Result<EvalResult> ProjectOp::Evaluate(const TablePtr& input,
                                       const expr::SignalResolver& signals) {
  if (!input) return Status::InvalidArgument("project: missing input");
  std::vector<data::Field> out_fields;
  std::vector<Column> columns;
  for (size_t i = 0; i < fields_.size(); ++i) {
    VP_ASSIGN_OR_RETURN(std::string f, fields_[i].Resolve(signals));
    const Column* col = input->ColumnByName(f);
    std::string name = i < as_.size() && !as_[i].empty() ? as_[i] : f;
    if (col != nullptr) {
      out_fields.push_back({name, col->type()});
      columns.push_back(*col);
    } else {
      // Unknown field projects to all-null string column.
      Column null_col(DataType::kString);
      for (size_t r = 0; r < input->num_rows(); ++r) null_col.AppendNull();
      out_fields.push_back({name, DataType::kString});
      columns.push_back(std::move(null_col));
    }
  }
  EvalResult result;
  result.table = std::make_shared<Table>(Schema(std::move(out_fields)), std::move(columns));
  result.rows_processed = input->num_rows();
  return result;
}

// ---- StackOp ----

StackOp::StackOp(Params params) : Operator("stack", {}), params_(std::move(params)) {
  AddSignalDep(&signal_deps_, params_.field.signal);
  for (const FieldRef& f : params_.groupby) AddSignalDep(&signal_deps_, f.signal);
  for (const auto& k : params_.sort) AddSignalDep(&signal_deps_, k.field.signal);
}

Result<EvalResult> StackOp::Evaluate(const TablePtr& input,
                                     const expr::SignalResolver& signals) {
  if (!input) return Status::InvalidArgument("stack: missing input");
  VP_ASSIGN_OR_RETURN(std::string value_field, params_.field.Resolve(signals));
  const Column* value_col = input->ColumnByName(value_field);
  std::vector<const Column*> group_cols;
  for (const FieldRef& f : params_.groupby) {
    VP_ASSIGN_OR_RETURN(std::string g, f.Resolve(signals));
    group_cols.push_back(input->ColumnByName(g));
  }
  std::vector<const Column*> sort_cols;
  std::vector<bool> sort_desc;
  for (const auto& k : params_.sort) {
    VP_ASSIGN_OR_RETURN(std::string s, k.field.Resolve(signals));
    sort_cols.push_back(input->ColumnByName(s));
    sort_desc.push_back(k.descending);
  }

  // Partition rows via the typed group index, preserving first-seen
  // partition order (keys are stored once, in the key registers).
  const size_t n = input->num_rows();
  std::vector<Vec> part_key_vecs;
  expr::GroupResult groups = GroupByColumns(group_cols, n, &part_key_vecs);
  std::vector<std::vector<int32_t>> part_rows(groups.num_groups());
  for (size_t r = 0; r < n; ++r) {
    part_rows[groups.group_of[r]].push_back(static_cast<int32_t>(r));
  }

  std::vector<Vec> sort_vecs;
  std::vector<bool> sort_vec_desc;
  for (size_t i = 0; i < sort_cols.size(); ++i) {
    if (sort_cols[i] == nullptr) continue;
    sort_vecs.push_back(expr::ColumnVec(*sort_cols[i]));
    sort_vecs.back().BuildDictRanks();
    sort_vec_desc.push_back(sort_desc[i]);
  }

  std::vector<double> y0(input->num_rows(), 0), y1(input->num_rows(), 0);
  for (std::vector<int32_t>& rows : part_rows) {
    if (!sort_vecs.empty()) {
      std::stable_sort(rows.begin(), rows.end(), [&](int32_t a, int32_t b) {
        for (size_t i = 0; i < sort_vecs.size(); ++i) {
          int cmp = sort_vecs[i].CompareCells(static_cast<size_t>(a),
                                              static_cast<size_t>(b));
          if (sort_vec_desc[i]) cmp = -cmp;
          if (cmp != 0) return cmp < 0;
        }
        return false;
      });
    }
    double running = 0;
    for (int32_t r : rows) {
      double v = value_col != nullptr ? value_col->NumericAt(static_cast<size_t>(r)) : 0;
      if (std::isnan(v)) v = 0;
      y0[static_cast<size_t>(r)] = running;
      running += v;
      y1[static_cast<size_t>(r)] = running;
    }
  }

  std::vector<data::Field> fields(input->schema().fields());
  fields.push_back({params_.as0, DataType::kFloat64});
  fields.push_back({params_.as1, DataType::kFloat64});
  std::vector<Column> columns;
  for (size_t c = 0; c < input->num_columns(); ++c) columns.push_back(input->column(c));
  Column c0(DataType::kFloat64), c1(DataType::kFloat64);
  for (size_t r = 0; r < input->num_rows(); ++r) {
    c0.AppendDouble(y0[r]);
    c1.AppendDouble(y1[r]);
  }
  columns.push_back(std::move(c0));
  columns.push_back(std::move(c1));
  EvalResult result;
  result.table = std::make_shared<Table>(Schema(std::move(fields)), std::move(columns));
  result.rows_processed = input->num_rows();
  return result;
}

// ---- TimeunitOp ----

TimeunitOp::TimeunitOp(Params params)
    : Operator("timeunit", {}), params_(std::move(params)) {
  AddSignalDep(&signal_deps_, params_.field.signal);
}

Result<EvalResult> TimeunitOp::Evaluate(const TablePtr& input,
                                        const expr::SignalResolver& signals) {
  if (!input) return Status::InvalidArgument("timeunit: missing input");
  VP_ASSIGN_OR_RETURN(std::string field, params_.field.Resolve(signals));
  const Column* col = input->ColumnByName(field);

  std::vector<data::Field> fields(input->schema().fields());
  fields.push_back({params_.as0, DataType::kTimestamp});
  fields.push_back({params_.as1, DataType::kTimestamp});
  std::vector<Column> columns;
  for (size_t c = 0; c < input->num_columns(); ++c) columns.push_back(input->column(c));
  Column u0(DataType::kTimestamp), u1(DataType::kTimestamp);
  u0.Reserve(input->num_rows());
  u1.Reserve(input->num_rows());
  for (size_t r = 0; r < input->num_rows(); ++r) {
    double v = col != nullptr ? col->NumericAt(r) : std::nan("");
    if (std::isnan(v)) {
      u0.AppendNull();
      u1.AppendNull();
      continue;
    }
    int64_t start = expr::TsTruncate(static_cast<int64_t>(v), params_.unit);
    u0.AppendInt(start);
    u1.AppendInt(start + expr::TsUnitWidth(start, params_.unit));
  }
  columns.push_back(std::move(u0));
  columns.push_back(std::move(u1));
  EvalResult result;
  result.table = std::make_shared<Table>(Schema(std::move(fields)), std::move(columns));
  result.rows_processed = input->num_rows();
  return result;
}

// ---- FormulaOp ----

FormulaOp::FormulaOp(expr::NodePtr expression, std::string as)
    : Operator("formula", CollectSignalDeps(expression)),
      expression_(std::move(expression)), as_(std::move(as)) {}

Result<EvalResult> FormulaOp::Evaluate(const TablePtr& input,
                                       const expr::SignalResolver& signals) {
  if (!input) return Status::InvalidArgument("formula: missing input");
  VP_RETURN_IF_ERROR(expr::Validate(expression_));
  Column out(DataType::kFloat64);
  bool vectorized = false;
  if (expr::VectorizedEnabled()) {
    // Signal-free formulas execute column-at-a-time; the compiler's static
    // result type replaces the scalar path's first-non-null inference.
    if (auto program = expr::Compiler::Compile(expression_, input->schema())) {
      DataType type;
      switch (program->result_kind) {
        case expr::RegKind::kStr: type = DataType::kString; break;
        case expr::RegKind::kBool: type = DataType::kBool; break;
        default: type = program->result_type; break;
      }
      out = Column(type);
      expr::VecToColumn(expr::RunMorselParallel(*input, *program),
                        input->num_rows(), &out);
      vectorized = true;
    }
  }
  if (!vectorized) {
    // Infer the output type from the first non-null evaluation.
    expr::EvalContext ctx;
    ctx.table = input.get();
    ctx.signals = &signals;
    std::vector<Value> values;
    values.reserve(input->num_rows());
    DataType type = DataType::kFloat64;
    bool type_set = false;
    for (size_t r = 0; r < input->num_rows(); ++r) {
      ctx.row = r;
      expr::EvalValue v = expr::Evaluate(expression_, ctx);
      Value scalar = v.is_array() ? Value::Null() : v.scalar();
      if (!type_set && !scalar.is_null()) {
        type = scalar.type();
        type_set = true;
      }
      values.push_back(std::move(scalar));
    }
    out = Column(type);
    out.Reserve(values.size());
    for (const Value& v : values) out.Append(v);
  }
  std::vector<data::Field> fields(input->schema().fields());
  fields.push_back({as_, out.type()});
  std::vector<Column> columns;
  for (size_t c = 0; c < input->num_columns(); ++c) columns.push_back(input->column(c));
  columns.push_back(std::move(out));
  EvalResult result;
  result.table = std::make_shared<Table>(Schema(std::move(fields)), std::move(columns));
  result.rows_processed = input->num_rows();
  return result;
}

}  // namespace transforms
}  // namespace vegaplus
