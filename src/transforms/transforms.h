// The Vega transform library as dataflow operators: filter, extent, bin,
// aggregate, collect, project, stack, timeunit, formula (§4 "Candidate
// Transforms for Rewriting" plus the ones templates need client-side).
#ifndef VEGAPLUS_TRANSFORMS_TRANSFORMS_H_
#define VEGAPLUS_TRANSFORMS_TRANSFORMS_H_

#include <memory>
#include <string>
#include <vector>

#include "dataflow/operator.h"
#include "expr/ast.h"
#include "transforms/field_ref.h"

namespace vegaplus {
namespace transforms {

/// Vega aggregate operation names ("count", "sum", "mean", "min", "max",
/// "median", "stdev", "valid").
enum class VegaAggOp { kCount, kValid, kSum, kMean, kMin, kMax, kMedian, kStdev };

/// Parse a Vega aggregate op name; false on unknown names.
bool ParseVegaAggOp(const std::string& name, VegaAggOp* op);
const char* VegaAggOpName(VegaAggOp op);

/// \brief filter: keep tuples whose predicate expression is truthy.
class FilterOp : public dataflow::Operator {
 public:
  explicit FilterOp(expr::NodePtr predicate);
  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;
  const expr::NodePtr& predicate() const { return predicate_; }

 private:
  expr::NodePtr predicate_;
};

/// \brief extent: write the [min, max] of a field to a signal.
class ExtentOp : public dataflow::Operator {
 public:
  ExtentOp(FieldRef field, std::string output_signal);
  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;
  const FieldRef& field() const { return field_; }
  const std::string& output_signal() const { return output_signal_; }

 private:
  FieldRef field_;
  std::string output_signal_;
};

/// \brief bin: append bin start/end columns using nice binning over an
/// extent signal and a maxbins signal (or fixed value).
class BinOp : public dataflow::Operator {
 public:
  struct Params {
    FieldRef field;
    /// Signal holding [lo, hi]; required (extent transform or domain signal).
    std::string extent_signal;
    /// Signal holding maxbins; when empty, `maxbins` is used.
    std::string maxbins_signal;
    int maxbins = 10;
    std::string as0 = "bin0";
    std::string as1 = "bin1";
  };
  explicit BinOp(Params params);
  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;
  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// \brief aggregate: group by fields, compute aggregate measures.
class AggregateOp : public dataflow::Operator {
 public:
  struct Params {
    std::vector<FieldRef> groupby;
    std::vector<VegaAggOp> ops;      // parallel to fields/as
    std::vector<FieldRef> fields;    // measure inputs ("" field for count)
    std::vector<std::string> as;     // output names (defaulted if empty)
  };
  explicit AggregateOp(Params params);
  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;
  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// \brief collect: sort tuples by fields.
class CollectOp : public dataflow::Operator {
 public:
  struct SortKey {
    FieldRef field;
    bool descending = false;
  };
  explicit CollectOp(std::vector<SortKey> keys);
  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;
  const std::vector<SortKey>& keys() const { return keys_; }

 private:
  std::vector<SortKey> keys_;
};

/// \brief project: keep/rename a subset of fields.
class ProjectOp : public dataflow::Operator {
 public:
  ProjectOp(std::vector<FieldRef> fields, std::vector<std::string> as);
  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;
  const std::vector<FieldRef>& fields() const { return fields_; }
  const std::vector<std::string>& as() const { return as_; }

 private:
  std::vector<FieldRef> fields_;
  std::vector<std::string> as_;
};

/// \brief stack: per-group running sums producing [y0, y1) spans (the window
/// function of the trellis stacked bar template).
class StackOp : public dataflow::Operator {
 public:
  struct Params {
    FieldRef field;                 // value being stacked
    std::vector<FieldRef> groupby;  // stack groups
    std::vector<CollectOp::SortKey> sort;  // order within a group
    std::string as0 = "y0";
    std::string as1 = "y1";
  };
  explicit StackOp(Params params);
  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;
  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// \brief timeunit: truncate a timestamp field to a calendar unit, appending
/// interval start/end columns.
class TimeunitOp : public dataflow::Operator {
 public:
  struct Params {
    FieldRef field;
    std::string unit = "month";  // year|month|week|date|hours|minutes|seconds
    std::string as0 = "unit0";
    std::string as1 = "unit1";
  };
  explicit TimeunitOp(Params params);
  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;
  const Params& params() const { return params_; }

 private:
  Params params_;
};

/// \brief formula: append a computed column.
class FormulaOp : public dataflow::Operator {
 public:
  FormulaOp(expr::NodePtr expression, std::string as);
  Result<dataflow::EvalResult> Evaluate(const data::TablePtr& input,
                                        const expr::SignalResolver& signals) override;
  const expr::NodePtr& expression() const { return expression_; }
  const std::string& as() const { return as_; }

 private:
  expr::NodePtr expression_;
  std::string as_;
};

}  // namespace transforms
}  // namespace vegaplus

#endif  // VEGAPLUS_TRANSFORMS_TRANSFORMS_H_
