// FieldRef: a transform parameter naming a data field, either fixed or bound
// to a signal (e.g. the histogram template's field dropdown, Fig. 1).
#ifndef VEGAPLUS_TRANSFORMS_FIELD_REF_H_
#define VEGAPLUS_TRANSFORMS_FIELD_REF_H_

#include <string>

#include "common/result.h"
#include "expr/evaluator.h"

namespace vegaplus {
namespace transforms {

struct FieldRef {
  std::string field;   // fixed field name (when signal empty)
  std::string signal;  // signal whose string value names the field

  FieldRef() = default;
  static FieldRef Fixed(std::string name) {
    FieldRef f;
    f.field = std::move(name);
    return f;
  }
  static FieldRef Signal(std::string name) {
    FieldRef f;
    f.signal = std::move(name);
    return f;
  }

  bool is_signal() const { return !signal.empty(); }

  /// Resolve to a concrete field name under the current signal values.
  Result<std::string> Resolve(const expr::SignalResolver& signals) const {
    if (!is_signal()) return field;
    expr::EvalValue v;
    if (!signals.Lookup(signal, &v) || v.is_array() || !v.scalar().is_string()) {
      return Status::KeyError("field ref: signal '" + signal +
                              "' does not hold a field name");
    }
    return v.scalar().AsString();
  }
};

}  // namespace transforms
}  // namespace vegaplus

#endif  // VEGAPLUS_TRANSFORMS_FIELD_REF_H_
