#include "transforms/binning.h"

#include <cmath>
#include <initializer_list>

namespace vegaplus {
namespace transforms {

Binning ComputeBinning(double lo, double hi, int maxbins) {
  Binning b;
  if (maxbins < 1) maxbins = 1;
  if (!(hi > lo)) {  // degenerate or NaN extent
    b.start = std::isnan(lo) ? 0 : lo;
    b.stop = b.start + 1;
    b.step = 1;
    return b;
  }
  const double span = hi - lo;
  const double raw_step = span / static_cast<double>(maxbins);
  // Smallest step of the form {1,2,5}*10^k that is >= raw_step, which
  // guarantees ceil(span/step) <= maxbins.
  double level = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = level;
  for (double mult : {1.0, 2.0, 5.0, 10.0}) {
    step = mult * level;
    if (step >= raw_step) break;
  }
  b.step = step;
  b.start = std::floor(lo / step) * step;
  b.stop = std::ceil(hi / step) * step;
  if (b.stop <= b.start) b.stop = b.start + step;
  return b;
}

}  // namespace transforms
}  // namespace vegaplus
