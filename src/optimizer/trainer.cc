#include "optimizer/trainer.h"

namespace vegaplus {
namespace optimizer {

EpisodeCollector::EpisodeCollector(const spec::VegaSpec& spec, const sql::Engine* engine,
                                   CollectorOptions options)
    : options_(options), engine_(engine),
      labeler_(spec, engine, options.latency, options.binary_encoding) {}

Status EpisodeCollector::Start() {
  VP_RETURN_IF_ERROR(labeler_.Start());
  enumeration_ = plan::EnumeratePlans(labeler_.builder(), options_.max_plans,
                                      options_.seed);
  encoder_ = std::make_unique<plan::PlanEncoder>(labeler_.builder(), engine_);
  return Status::OK();
}

Result<EpisodeRecord> EpisodeCollector::Collect() {
  if (encoder_ == nullptr) return Status::InvalidArgument("collector: Start() first");
  EpisodeRecord record;
  std::set<std::string> updated = labeler_.UpdatedSignals();
  record.is_initial = updated.empty();
  record.vectors =
      encoder_->EncodeEpisode(enumeration_.plans, labeler_.signals(), updated);
  VP_ASSIGN_OR_RETURN(record.latencies_ms, labeler_.LabelEpisode(enumeration_.plans));
  return record;
}

Status EpisodeCollector::ApplyInteraction(
    const std::vector<runtime::SignalUpdate>& updates) {
  return labeler_.ApplyInteraction(updates);
}

std::vector<ml::PairExample> MakePairs(const std::vector<EpisodeRecord>& episodes,
                                       size_t max_pairs, uint64_t seed) {
  // Count usable pairs, then reservoir-sample deterministically.
  std::vector<ml::PairExample> out;
  Rng rng(seed);
  size_t seen = 0;
  for (const EpisodeRecord& ep : episodes) {
    const size_t n = ep.vectors.size();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double li = ep.latencies_ms[i];
        double lj = ep.latencies_ms[j];
        if (li == lj) continue;  // indistinguishable
        ml::PairExample pair;
        pair.a = ep.vectors[i];
        pair.b = ep.vectors[j];
        pair.label = li < lj ? 1 : -1;
        if (out.size() < max_pairs) {
          out.push_back(std::move(pair));
        } else {
          size_t k = static_cast<size_t>(rng.Next() % (seen + 1));
          if (k < max_pairs) out[k] = std::move(pair);
        }
        ++seen;
      }
    }
  }
  return out;
}

}  // namespace optimizer
}  // namespace vegaplus
