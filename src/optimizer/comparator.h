// Plan comparators (§5.3.2): naive learned models (RankSVM, random forest),
// the rule-based heuristic model, and the random sanity-check model — plus
// best-plan selection and session consolidation (§5.4).
#ifndef VEGAPLUS_OPTIMIZER_COMPARATOR_H_
#define VEGAPLUS_OPTIMIZER_COMPARATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "ml/random_forest.h"
#include "ml/ranksvm.h"

namespace vegaplus {
namespace optimizer {

/// \brief Pairwise plan comparator over encoded plan vectors.
class PlanComparator {
 public:
  virtual ~PlanComparator() = default;
  virtual std::string name() const = 0;

  /// -1 if `a` is predicted faster than `b`, +1 otherwise (0 = tie).
  virtual int Compare(const std::vector<double>& a,
                      const std::vector<double>& b) const = 0;

  /// True when the model exposes an additive cost (linear models).
  virtual bool has_cost() const { return false; }
  virtual double Cost(const std::vector<double>& /*v*/) const { return 0; }

  /// Per-episode cost of candidate `index` among `all` vectors, used by
  /// session consolidation. Cost models return Cost(v); vote-based models
  /// return a (negated) win score.
  virtual double EpisodeCost(const std::vector<std::vector<double>>& all,
                             size_t index) const;
};

/// \brief RankSVM-backed naive model; linear weights double as a cost model.
class RankSvmComparator : public PlanComparator {
 public:
  explicit RankSvmComparator(ml::RankSvm model) : model_(std::move(model)) {}
  std::string name() const override { return "RankSVM"; }
  int Compare(const std::vector<double>& a, const std::vector<double>& b) const override {
    return model_.Compare(a, b);
  }
  bool has_cost() const override { return true; }
  double Cost(const std::vector<double>& v) const override { return model_.Cost(v); }
  const ml::RankSvm& model() const { return model_; }

 private:
  ml::RankSvm model_;
};

/// \brief Random-forest naive model; majority vote per pair, confidence-
/// weighted wins against sampled references for consolidation.
class RandomForestComparator : public PlanComparator {
 public:
  explicit RandomForestComparator(ml::RandomForest model) : model_(std::move(model)) {}
  std::string name() const override { return "Random Forest"; }
  int Compare(const std::vector<double>& a, const std::vector<double>& b) const override {
    return model_.Compare(a, b);
  }
  double EpisodeCost(const std::vector<std::vector<double>>& all,
                     size_t index) const override;
  const ml::RandomForest& model() const { return model_; }

 private:
  ml::RandomForest model_;
};

/// \brief The rule-based heuristic model (§5.3.2), with rule priorities
/// derived from what the naive models learn: (1) much smaller total VDT
/// result cardinality wins; (2) more client-side aggregation wins; (3) fewer
/// VDTs (round trips) wins; (4) smaller total client-side cardinality wins.
class HeuristicComparator : public PlanComparator {
 public:
  explicit HeuristicComparator(double alpha = 0.1) : alpha_(alpha) {}
  std::string name() const override { return "heuristic"; }
  int Compare(const std::vector<double>& a, const std::vector<double>& b) const override;
  /// Win-count scoring: magnitude-blind by design (the §7.4 failure mode).
  double EpisodeCost(const std::vector<std::vector<double>>& all,
                     size_t index) const override;

 private:
  double alpha_;
};

/// \brief Uniform random choice (the sanity-check baseline).
class RandomComparator : public PlanComparator {
 public:
  explicit RandomComparator(uint64_t seed = 1234) : rng_(seed) {}
  std::string name() const override { return "random"; }
  int Compare(const std::vector<double>&, const std::vector<double>&) const override {
    return rng_.NextBool() ? -1 : 1;
  }

 private:
  mutable Rng rng_;
};

/// Pick the best plan among `vectors`: O(n) cost scan for cost models,
/// full pairwise win counting otherwise.
size_t SelectBestPlan(const PlanComparator& comparator,
                      const std::vector<std::vector<double>>& vectors);

/// \brief One episode's view of every candidate plan.
struct EpisodeRecord {
  std::vector<std::vector<double>> vectors;  // per candidate plan
  std::vector<double> latencies_ms;          // ground-truth label per plan
  bool is_initial = false;
};

/// Session consolidation (§5.4): argmin over plans of the weighted sum of
/// per-episode costs. `episode_weights` defaults to all-ones.
size_t ConsolidateSession(const PlanComparator& comparator,
                          const std::vector<EpisodeRecord>& episodes,
                          const std::vector<double>& episode_weights = {});

}  // namespace optimizer
}  // namespace vegaplus

#endif  // VEGAPLUS_OPTIMIZER_COMPARATOR_H_
