#include "optimizer/labeler.h"

#include <algorithm>
#include <functional>

#include "expr/sql_translator.h"
#include "rewrite/flatten.h"

namespace vegaplus {
namespace optimizer {

Result<ColdQueryCosts::Cost> ColdQueryCosts::Execute(const std::string& sql) {
  auto it = memo_.find(sql);
  if (it != memo_.end()) return it->second;
  auto result = engine_->Query(sql);
  if (!result.ok()) {
    return Status(result.status().code(),
                  "labeler: " + result.status().message() + " [" + sql + "]");
  }
  Cost cost;
  cost.rows = result->table->num_rows();
  cost.bytes = runtime::EstimateEncodedBytes(*result->table, binary_);
  cost.latency_ms =
      runtime::ServerComputeMillis(
          result->stats.rows_processed + result->stats.rows_scanned,
          result->stats.num_operators, latency_) +
      runtime::TransferMillis(cost.bytes, binary_, latency_);
  memo_.emplace(sql, cost);
  return cost;
}

SessionLabeler::SessionLabeler(const spec::VegaSpec& spec, const sql::Engine* engine,
                               runtime::LatencyParams latency, bool binary_encoding)
    : builder_(spec), engine_(engine), latency_(latency),
      cold_(engine, latency, binary_encoding) {}

Status SessionLabeler::BuildTemplates() {
  const spec::VegaSpec& spec = builder_.spec();
  const size_t n = spec.data.size();
  data_templates_.assign(n, {});
  side_templates_.assign(n, {});
  parent_.assign(n, -1);
  children_.assign(n, {});
  std::vector<rewrite::ServerPipeline> full_pipelines(n);
  std::vector<bool> has_full(n, false);
  int unique_counter = 0;

  for (size_t e = 0; e < n; ++e) {
    const spec::DataSpec& d = spec.data[e];
    if (!d.source.empty()) {
      for (size_t j = 0; j < e; ++j) {
        if (spec.data[j].name == d.source) {
          parent_[e] = static_cast<int>(j);
          children_[j].push_back(static_cast<int>(e));
        }
      }
    }
    const int max_split = builder_.max_splits()[e];
    const int total = static_cast<int>(d.transforms.size());
    data_templates_[e].resize(static_cast<size_t>(max_split) + 1);

    rewrite::ServerPipeline pipeline;
    bool base_ok = true;
    if (parent_[e] >= 0) {
      size_t p = static_cast<size_t>(parent_[e]);
      bool parent_usable = has_full[p] && builder_.reserved().count(d.source) == 0;
      if (parent_usable) {
        pipeline = full_pipelines[p];
        pipeline.stmt = rewrite::CloneStmt(*pipeline.stmt);
        pipeline.side_queries.clear();
      } else {
        base_ok = false;  // splits > 0 infeasible for this entry
      }
    } else {
      pipeline = rewrite::MakeTablePipeline(!d.table.empty() ? d.table : d.name);
      // split == 0 on a root: raw fetch.
      data_templates_[e][0].present = true;
      data_templates_[e][0].sql = rewrite::RenderPipelineSql(pipeline);
      data_templates_[e][0].derived = pipeline.derived;
      data_templates_[e][0].deps =
          rewrite::VdtSignalDeps(data_templates_[e][0].sql, pipeline.derived);
    }

    if (base_ok) {
      size_t side_seen = 0;
      for (int s = 1; s <= max_split; ++s) {
        VP_RETURN_IF_ERROR(rewrite::ExtendPipeline(
            &pipeline, d.transforms[static_cast<size_t>(s - 1)], unique_counter++));
        // New side queries belong to the transform just processed.
        for (; side_seen < pipeline.side_queries.size(); ++side_seen) {
          SideTemplate side;
          side.sql = pipeline.side_queries[side_seen].sql_template;
          side.derived = pipeline.side_queries[side_seen].derived;
          side.position = s - 1;
          side.output_signal = pipeline.side_queries[side_seen].output_signal;
          side.deps = rewrite::VdtSignalDeps(side.sql, side.derived);
          side_templates_[e].push_back(std::move(side));
        }
        DataTemplate& tpl = data_templates_[e][static_cast<size_t>(s)];
        tpl.present = true;
        tpl.sql = rewrite::RenderPipelineSql(pipeline);
        tpl.derived = pipeline.derived;
        tpl.deps = rewrite::VdtSignalDeps(tpl.sql, tpl.derived);
      }
      if (max_split == total) {
        full_pipelines[e] = pipeline;
        has_full[e] = true;
      }
    }
  }
  return Status::OK();
}

Status SessionLabeler::Start() {
  VP_RETURN_IF_ERROR(BuildTemplates());
  // Client dataflow over the engine's base tables.
  std::map<std::string, data::TablePtr> tables;
  for (const auto& d : builder_.spec().data) {
    if (!d.source.empty()) continue;
    std::string key = !d.table.empty() ? d.table : d.name;
    VP_ASSIGN_OR_RETURN(data::TablePtr t, engine_->catalog().GetTable(key));
    tables[key] = t;
  }
  VP_ASSIGN_OR_RETURN(client_flow_,
                      spec::CompileClientDataflow(builder_.spec(), tables));
  VP_RETURN_IF_ERROR(client_flow_.graph->Run().status());
  started_ = true;
  return Status::OK();
}

Status SessionLabeler::ApplyInteraction(
    const std::vector<runtime::SignalUpdate>& updates) {
  if (!started_) return Status::InvalidArgument("labeler: Start() not called");
  return client_flow_.graph->Update(updates).status();
}

std::set<std::string> SessionLabeler::UpdatedSignals() const {
  std::set<std::string> updated;
  const auto& graph = *client_flow_.graph;
  if (graph.clock() <= 1) return updated;  // initial rendering
  for (const std::string& name : graph.signals().Names()) {
    if (graph.signals().StampOf(name) == graph.clock()) updated.insert(name);
  }
  return updated;
}

bool SessionLabeler::ChainReevaluates(size_t entry, int upto) const {
  const auto& graph = *client_flow_.graph;
  const int64_t clock = graph.clock();
  // Ancestors: any operator re-evaluated there invalidates composed queries.
  int e = static_cast<int>(entry);
  while (parent_[static_cast<size_t>(e)] >= 0) {
    e = parent_[static_cast<size_t>(e)];
    const spec::CompiledEntry* ce =
        client_flow_.FindEntry(builder_.spec().data[static_cast<size_t>(e)].name);
    if (ce != nullptr) {
      for (const auto* op : ce->transform_ops) {
        if (op->stamp == clock) return true;
      }
    }
  }
  const spec::CompiledEntry* ce =
      client_flow_.FindEntry(builder_.spec().data[entry].name);
  if (ce == nullptr) return false;
  for (int t = 0; t < upto && t < static_cast<int>(ce->transform_ops.size()); ++t) {
    if (ce->transform_ops[static_cast<size_t>(t)]->stamp == clock) return true;
  }
  return false;
}

Result<std::vector<double>> SessionLabeler::LabelEpisode(
    const std::vector<rewrite::ExecutionPlan>& plans) {
  if (!started_) return Status::InvalidArgument("labeler: Start() not called");
  const spec::VegaSpec& spec = builder_.spec();
  const auto& graph = *client_flow_.graph;
  const int64_t clock = graph.clock();
  const bool initial = clock <= 1;

  // Per-entry facts from the client run.
  struct EntryFacts {
    std::vector<bool> reeval;       // per transform
    std::vector<size_t> in_rows;    // per transform
  };
  std::vector<EntryFacts> facts(spec.data.size());
  for (size_t e = 0; e < spec.data.size(); ++e) {
    const spec::CompiledEntry* ce = client_flow_.FindEntry(spec.data[e].name);
    if (ce == nullptr) continue;
    EntryFacts& f = facts[e];
    f.reeval.resize(ce->transform_ops.size());
    f.in_rows.resize(ce->transform_ops.size());
    for (size_t t = 0; t < ce->transform_ops.size(); ++t) {
      const dataflow::Operator* op = ce->transform_ops[t];
      f.reeval[t] = initial || op->stamp == clock;
      f.in_rows[t] =
          op->input != nullptr && op->input->output ? op->input->output->num_rows() : 0;
    }
  }

  // Stage costs, computed lazily per (entry, split). Kept per query (not
  // summed): the executor submits independent queries of one pulse
  // concurrently, so composition below charges max-per-wave, not the sum.
  const auto& registry = graph.signals();
  struct PlanQuery {
    double ms = 0;
    const std::vector<std::string>* deps = nullptr;   // signals the query reads
    const std::string* out_signal = nullptr;          // signal it writes (sides)
  };
  struct StageCost {
    std::vector<PlanQuery> sides;  // side queries executed this episode
    bool fetch_present = false;
    PlanQuery fetch;
  };
  std::vector<std::map<int, StageCost>> stage_cache(spec.data.size());
  auto server_cost = [&](size_t e, int split) -> Result<StageCost> {
    auto it = stage_cache[e].find(split);
    if (it != stage_cache[e].end()) return it->second;
    StageCost cost;
    for (const SideTemplate& side : side_templates_[e]) {
      if (side.position >= split) continue;
      if (!initial && !ChainReevaluates(e, side.position + 1)) continue;
      rewrite::DerivedResolver resolver(registry, side.derived);
      VP_RETURN_IF_ERROR(resolver.Materialize());
      VP_ASSIGN_OR_RETURN(std::string sql, expr::FillSqlHoles(side.sql, resolver));
      VP_ASSIGN_OR_RETURN(ColdQueryCosts::Cost c, cold_.Execute(sql));
      cost.sides.push_back(PlanQuery{c.latency_ms, &side.deps, &side.output_signal});
    }
    const DataTemplate& tpl = data_templates_[e][static_cast<size_t>(split)];
    if (tpl.present && (initial || ChainReevaluates(e, split))) {
      rewrite::DerivedResolver resolver(registry, tpl.derived);
      VP_RETURN_IF_ERROR(resolver.Materialize());
      VP_ASSIGN_OR_RETURN(std::string sql, expr::FillSqlHoles(tpl.sql, resolver));
      VP_ASSIGN_OR_RETURN(ColdQueryCosts::Cost c, cold_.Execute(sql));
      cost.fetch_present = true;
      cost.fetch = PlanQuery{c.latency_ms, &tpl.deps, nullptr};
    }
    stage_cache[e].emplace(split, cost);
    return cost;
  };

  // Mirror of the dataflow's rank grouping: queries level by produced-signal
  // dependencies; each level (wave) runs concurrently and costs its maximum.
  auto compose_waves = [](const std::vector<PlanQuery>& queries) {
    std::map<std::string, size_t> producer;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].out_signal != nullptr && !queries[i].out_signal->empty()) {
        producer[*queries[i].out_signal] = i;
      }
    }
    std::vector<int> level(queries.size(), -1);
    std::function<int(size_t)> level_of = [&](size_t i) -> int {
      if (level[i] >= 0) return level[i];
      level[i] = 0;  // cycle guard (dependency cycles cannot occur in valid plans)
      int l = 0;
      for (const std::string& dep : *queries[i].deps) {
        auto it = producer.find(dep);
        if (it != producer.end() && it->second != i) {
          l = std::max(l, level_of(it->second) + 1);
        }
      }
      level[i] = l;
      return l;
    };
    std::map<int, double> wave_max;
    for (size_t i = 0; i < queries.size(); ++i) {
      double& slot = wave_max[level_of(i)];
      slot = std::max(slot, queries[i].ms);
    }
    double total = 0;
    for (const auto& [lvl, ms] : wave_max) total += ms;
    return total;
  };

  std::vector<double> labels;
  labels.reserve(plans.size());
  for (const auto& p : plans) {
    double client_ms = 0;
    std::vector<PlanQuery> queries;
    for (size_t e = 0; e < spec.data.size(); ++e) {
      const spec::DataSpec& d = spec.data[e];
      const int split = p.splits[e];
      const int total = static_cast<int>(d.transforms.size());

      bool child_needs_client = false;
      for (int c : children_[e]) {
        if (p.splits[static_cast<size_t>(c)] == 0) child_needs_client = true;
      }
      bool fetch_needed = builder_.reserved().count(d.name) > 0 || split < total ||
                          child_needs_client || children_[e].empty();

      VP_ASSIGN_OR_RETURN(StageCost sc, server_cost(e, split));
      queries.insert(queries.end(), sc.sides.begin(), sc.sides.end());
      if (fetch_needed && sc.fetch_present) queries.push_back(sc.fetch);

      // Client suffix.
      size_t rows = 0;
      int ops = 0;
      for (int t = split; t < total; ++t) {
        if (facts[e].reeval.size() > static_cast<size_t>(t) &&
            facts[e].reeval[static_cast<size_t>(t)]) {
          rows += facts[e].in_rows[static_cast<size_t>(t)];
          ++ops;
        }
      }
      client_ms += runtime::ClientComputeMillis(rows, ops, latency_);
    }
    labels.push_back(client_ms + compose_waves(queries));
  }
  return labels;
}

}  // namespace optimizer
}  // namespace vegaplus
