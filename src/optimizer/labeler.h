// SessionLabeler: ground-truth latency labels for every candidate plan of a
// spec across an interaction session.
//
// Naively executing every plan per episode is quadratic in work because
// plans share almost all of their stages. Instead the labeler exploits the
// paper's plan structure (§5.2): a plan's cost decomposes per data entry
// into (extent side queries) + (data fetch at the split point) + (client
// suffix). Per episode it
//   1. runs ONE all-client dataflow to learn which operators re-evaluate and
//      every operator's input cardinality (placement-independent facts), and
//   2. executes each distinct composed server query ONCE, memoizing its
//      cold-execution cost (cache-less semantics, so labels are not skewed
//      by lucky cache hits),
// then composes any plan's latency in O(#entries). A validation test checks
// composed labels against real PlanExecutor runs.
#ifndef VEGAPLUS_OPTIMIZER_LABELER_H_
#define VEGAPLUS_OPTIMIZER_LABELER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "rewrite/plan_builder.h"
#include "runtime/middleware.h"
#include "runtime/plan_executor.h"
#include "spec/compiler.h"

namespace vegaplus {
namespace optimizer {

/// \brief Executes distinct SQL once; replays the same cold-execution cost
/// on repeats.
class ColdQueryCosts {
 public:
  ColdQueryCosts(const sql::Engine* engine, runtime::LatencyParams latency,
                 bool binary_encoding)
      : engine_(engine), latency_(latency), binary_(binary_encoding) {}

  struct Cost {
    double latency_ms = 0;  // server compute + transfer + decode
    size_t rows = 0;
    size_t bytes = 0;
  };

  Result<Cost> Execute(const std::string& sql);

  size_t distinct_queries() const { return memo_.size(); }

 private:
  const sql::Engine* engine_;
  runtime::LatencyParams latency_;
  bool binary_;
  std::map<std::string, Cost> memo_;
};

/// \brief Labels all candidate plans per episode of a simulated session.
class SessionLabeler {
 public:
  SessionLabeler(const spec::VegaSpec& spec, const sql::Engine* engine,
                 runtime::LatencyParams latency = {}, bool binary_encoding = true);

  /// Build stage templates and run the initial client dataflow. Must be
  /// called before the first LabelEpisode().
  Status Start();

  /// Advance the session by one interaction.
  Status ApplyInteraction(const std::vector<runtime::SignalUpdate>& updates);

  /// Latency label (ms) per plan for the *current* episode (initial
  /// rendering right after Start(), else the latest interaction).
  Result<std::vector<double>> LabelEpisode(
      const std::vector<rewrite::ExecutionPlan>& plans);

  /// Signals updated by the current episode (empty at initial rendering);
  /// feed this to PlanEncoder::EncodeEpisode so vectors match labels.
  std::set<std::string> UpdatedSignals() const;

  /// Signal environment after the latest episode.
  const dataflow::SignalRegistry& signals() const {
    return client_flow_.graph->signals();
  }

  const rewrite::PlanBuilder& builder() const { return builder_; }

 private:
  struct DataTemplate {
    bool present = false;
    std::string sql;
    std::vector<rewrite::DerivedParam> derived;
    /// Signals the query reads (wave leveling, mirrors VDT dirty deps).
    std::vector<std::string> deps;
  };
  struct SideTemplate {
    std::string sql;
    std::vector<rewrite::DerivedParam> derived;
    int position = 0;  // index of the extent transform within the entry
    std::string output_signal;
    std::vector<std::string> deps;
  };

  Status BuildTemplates();
  bool ChainReevaluates(size_t entry, int upto) const;

  rewrite::PlanBuilder builder_;
  const sql::Engine* engine_;
  runtime::LatencyParams latency_;
  ColdQueryCosts cold_;

  // [entry][split] -> composed data-fetch template.
  std::vector<std::vector<DataTemplate>> data_templates_;
  // [entry] -> extent side queries within the rewritable prefix.
  std::vector<std::vector<SideTemplate>> side_templates_;
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;

  spec::CompiledDataflow client_flow_;
  bool started_ = false;
};

}  // namespace optimizer
}  // namespace vegaplus

#endif  // VEGAPLUS_OPTIMIZER_LABELER_H_
