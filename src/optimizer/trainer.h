// EpisodeCollector: orchestrates enumeration + encoding + labeling per
// episode of a simulated session — the training-data pipeline of §5.3/§7.2.
#ifndef VEGAPLUS_OPTIMIZER_TRAINER_H_
#define VEGAPLUS_OPTIMIZER_TRAINER_H_

#include <memory>
#include <vector>

#include "optimizer/comparator.h"
#include "optimizer/labeler.h"
#include "plan/encoder.h"
#include "plan/enumerator.h"

namespace vegaplus {
namespace optimizer {

struct CollectorOptions {
  /// Plan-space sampling cap (Table 1 still reports the true space size).
  size_t max_plans = 256;
  runtime::LatencyParams latency;
  bool binary_encoding = true;
  uint64_t seed = 11;
};

/// \brief Collects per-episode (vectors, labels) for every candidate plan.
class EpisodeCollector {
 public:
  EpisodeCollector(const spec::VegaSpec& spec, const sql::Engine* engine,
                   CollectorOptions options = {});

  /// Enumerate plans and run the session's initial rendering.
  Status Start();

  /// Encode + label the current episode (initial right after Start()).
  Result<EpisodeRecord> Collect();

  /// Advance the session by one interaction.
  Status ApplyInteraction(const std::vector<runtime::SignalUpdate>& updates);

  const std::vector<rewrite::ExecutionPlan>& plans() const {
    return enumeration_.plans;
  }
  const plan::EnumerationResult& enumeration() const { return enumeration_; }
  const rewrite::PlanBuilder& builder() const { return labeler_.builder(); }

 private:
  CollectorOptions options_;
  const sql::Engine* engine_;
  SessionLabeler labeler_;
  plan::EnumerationResult enumeration_;
  std::unique_ptr<plan::PlanEncoder> encoder_;
};

/// Build pairwise training examples from episode records: one example per
/// ordered pair (i < j) with distinguishable labels, subsampled to
/// `max_pairs` deterministically.
std::vector<ml::PairExample> MakePairs(const std::vector<EpisodeRecord>& episodes,
                                       size_t max_pairs, uint64_t seed);

}  // namespace optimizer
}  // namespace vegaplus

#endif  // VEGAPLUS_OPTIMIZER_TRAINER_H_
