#include "optimizer/comparator.h"

#include <algorithm>
#include <cmath>

#include "plan/encoder.h"

namespace vegaplus {
namespace optimizer {

double PlanComparator::EpisodeCost(const std::vector<std::vector<double>>& all,
                                   size_t index) const {
  if (has_cost()) return Cost(all[index]);
  // Fallback: negated win fraction in a full round robin.
  if (all.size() < 2) return 0;
  size_t wins = 0;
  for (size_t j = 0; j < all.size(); ++j) {
    if (j == index) continue;
    if (Compare(all[index], all[j]) < 0) ++wins;
  }
  return -static_cast<double>(wins) / static_cast<double>(all.size() - 1);
}

double RandomForestComparator::EpisodeCost(const std::vector<std::vector<double>>& all,
                                           size_t index) const {
  // Confidence-weighted wins against up to 24 deterministic references: the
  // forest's vote margin tracks how large the predicted gap is, which keeps
  // consolidation magnitude-aware (unlike raw win counts).
  if (all.size() < 2) return 0;
  size_t stride = std::max<size_t>(1, all.size() / 24);
  double total = 0;
  size_t count = 0;
  for (size_t j = 0; j < all.size(); j += stride) {
    if (j == index) continue;
    total += model_.ProbabilityFaster(all[index], all[j]);
    ++count;
  }
  return count == 0 ? 0 : -(total / static_cast<double>(count));
}

int HeuristicComparator::Compare(const std::vector<double>& a,
                                 const std::vector<double>& b) const {
  const int card_vdt = plan::CardFeatureIndex("vdt");
  const int count_agg = plan::CountFeatureIndex("aggregate");
  const int count_vdt = plan::CountFeatureIndex("vdt");
  const int count_sig = plan::CountFeatureIndex("vdt_signal");

  // Rule 1: total fetched cardinality (normalized) smaller by at least alpha.
  double da = a[static_cast<size_t>(card_vdt)];
  double db = b[static_cast<size_t>(card_vdt)];
  if (std::fabs(da - db) > alpha_) return da < db ? -1 : 1;

  // Rule 2: prefer more aggregation on the client side.
  double aa = a[static_cast<size_t>(count_agg)];
  double ab = b[static_cast<size_t>(count_agg)];
  if (aa != ab) return aa > ab ? -1 : 1;

  // Rule 3: fewer round trips (data + signal VDTs).
  double ra = a[static_cast<size_t>(count_vdt)] + a[static_cast<size_t>(count_sig)];
  double rb = b[static_cast<size_t>(count_vdt)] + b[static_cast<size_t>(count_sig)];
  if (ra != rb) return ra < rb ? -1 : 1;

  // Rule 4: smaller total client-side cardinality.
  const auto& types = plan::EncodedOpTypes();
  double ca = 0, cb = 0;
  for (const std::string& t : types) {
    if (t == "vdt" || t == "vdt_signal") continue;
    int idx = plan::CardFeatureIndex(t);
    ca += a[static_cast<size_t>(idx)];
    cb += b[static_cast<size_t>(idx)];
  }
  if (ca != cb) return ca < cb ? -1 : 1;
  return 0;
}

double HeuristicComparator::EpisodeCost(const std::vector<std::vector<double>>& all,
                                        size_t index) const {
  // Pure win counting — intentionally magnitude-blind (§7.4).
  if (all.size() < 2) return 0;
  size_t wins = 0;
  for (size_t j = 0; j < all.size(); ++j) {
    if (j == index) continue;
    if (Compare(all[index], all[j]) < 0) ++wins;
  }
  return -static_cast<double>(wins);
}

size_t SelectBestPlan(const PlanComparator& comparator,
                      const std::vector<std::vector<double>>& vectors) {
  if (vectors.empty()) return 0;
  if (comparator.has_cost()) {
    size_t best = 0;
    double best_cost = comparator.Cost(vectors[0]);
    for (size_t i = 1; i < vectors.size(); ++i) {
      double c = comparator.Cost(vectors[i]);
      if (c < best_cost) {
        best_cost = c;
        best = i;
      }
    }
    return best;
  }
  // Full round robin, most wins (ties: earlier index).
  std::vector<size_t> wins(vectors.size(), 0);
  for (size_t i = 0; i < vectors.size(); ++i) {
    for (size_t j = i + 1; j < vectors.size(); ++j) {
      if (comparator.Compare(vectors[i], vectors[j]) <= 0) {
        ++wins[i];
      } else {
        ++wins[j];
      }
    }
  }
  return static_cast<size_t>(
      std::max_element(wins.begin(), wins.end()) - wins.begin());
}

size_t ConsolidateSession(const PlanComparator& comparator,
                          const std::vector<EpisodeRecord>& episodes,
                          const std::vector<double>& episode_weights) {
  if (episodes.empty()) return 0;
  const size_t num_plans = episodes[0].vectors.size();
  std::vector<double> total(num_plans, 0.0);
  for (size_t e = 0; e < episodes.size(); ++e) {
    double w = e < episode_weights.size() ? episode_weights[e] : 1.0;
    for (size_t p = 0; p < num_plans; ++p) {
      total[p] += w * comparator.EpisodeCost(episodes[e].vectors, p);
    }
  }
  return static_cast<size_t>(
      std::min_element(total.begin(), total.end()) - total.begin());
}

}  // namespace optimizer
}  // namespace vegaplus
