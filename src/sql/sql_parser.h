// SQL parser for the engine's dialect:
//
//   SELECT item [, item]*
//   FROM table | (subquery) [AS alias]
//   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
//   [ORDER BY expr [DESC] [, ...]] [LIMIT n [OFFSET m]]
//
// with aggregates COUNT/SUM/AVG/MIN/MAX/MEDIAN/STDDEV/VARIANCE, window
// functions SUM(x) OVER (...) and ROW_NUMBER() OVER (...), CASE expressions,
// IS [NOT] NULL, [NOT] BETWEEN, [NOT] IN (literals), and the scalar/date
// function library shared with the Vega expression language.
#ifndef VEGAPLUS_SQL_SQL_PARSER_H_
#define VEGAPLUS_SQL_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sql/sql_ast.h"

namespace vegaplus {
namespace sql {

/// Parse one SELECT statement (optional trailing ';').
Result<SelectPtr> ParseSql(std::string_view text);

/// Parse a SELECT *template*: like ParseSql, but additionally accepts
/// ${name}, ${name[i]}, and ${name:id} parameter holes in expression
/// positions. Holes become the same AST shapes the rewriter emits for signal
/// references (bare identifier, indexed identifier, __sigfield call), so a
/// parsed template round-trips through ToSql() back to hole syntax and can
/// be bound to literals without reparsing (see sql/prepared.h).
Result<SelectPtr> ParseSqlTemplate(std::string_view text);

}  // namespace sql
}  // namespace vegaplus

#endif  // VEGAPLUS_SQL_SQL_PARSER_H_
