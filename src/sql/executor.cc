#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "common/str_util.h"
#include "expr/batch_eval.h"
#include "expr/evaluator.h"
#include "expr/kernels/kernels.h"
#include "storage/reader.h"
#include "storage/stats.h"

namespace vegaplus {
namespace sql {

namespace {

using data::Column;
using data::DataType;
using data::Schema;
using data::Table;
using data::TablePtr;
using data::Value;
using expr::BatchEvaluator;
using expr::Compiler;
using expr::EvalContext;
using expr::EvalValue;
using expr::NodeKind;
using expr::NodePtr;
using expr::RegKind;
using expr::Vec;

Value EvalScalar(const NodePtr& node, const Table& table, size_t row) {
  EvalContext ctx;
  ctx.table = &table;
  ctx.row = row;
  EvalValue v = expr::Evaluate(node, ctx);
  return v.is_array() ? Value::Null() : v.scalar();
}

/// Evaluate `node` into one register indexed by table row id: vectorized
/// over the whole batch when the expression compiles, boxed through the
/// scalar interpreter otherwise. Used for group keys, sort keys, and
/// aggregate arguments. When `rows` is non-null, the scalar fallback only
/// evaluates those rows (cells outside stay null) so selective queries
/// don't pay interpreter cost for filtered-out rows; the vectorized path
/// always computes the full batch, which is cheaper than gathering.
Vec EvalVec(const NodePtr& node, const Table& table,
            const std::vector<int32_t>* rows = nullptr,
            const common::CancelToken* cancel = nullptr) {
  if (expr::VectorizedEnabled()) {
    if (auto program = Compiler::Compile(node, table.schema())) {
      return expr::RunMorselParallel(table, *program, cancel);
    }
  }
  // Scalar fallback: poll the token every few thousand rows; a fired token
  // leaves the remaining cells null/absent, and the caller's checkpoint
  // discards the register before anything reads it.
  if (rows != nullptr) {
    std::vector<Value> values(table.num_rows());
    for (size_t pos = 0; pos < rows->size(); ++pos) {
      if ((pos & 4095u) == 0 && common::Fired(cancel)) break;
      const int32_t r = (*rows)[pos];
      values[static_cast<size_t>(r)] = EvalScalar(node, table, static_cast<size_t>(r));
    }
    return expr::BoxedVec(std::move(values));
  }
  std::vector<Value> values;
  values.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if ((r & 4095u) == 0 && common::Fired(cancel)) break;
    values.push_back(EvalScalar(node, table, r));
  }
  return expr::BoxedVec(std::move(values));
}

/// The fused comparison ops map 1:1 onto zone-map ops; fused_preds never
/// carries anything else, but an unmappable conjunct is simply not pushed
/// down (dropping a conjunct from a conjunction only weakens pruning).
bool ShardCmpOf(expr::BinaryOp cmp, storage::CmpOp* out) {
  switch (cmp) {
    case expr::BinaryOp::kEq: *out = storage::CmpOp::kEq; return true;
    case expr::BinaryOp::kNeq: *out = storage::CmpOp::kNeq; return true;
    case expr::BinaryOp::kLt: *out = storage::CmpOp::kLt; return true;
    case expr::BinaryOp::kLte: *out = storage::CmpOp::kLte; return true;
    case expr::BinaryOp::kGt: *out = storage::CmpOp::kGt; return true;
    case expr::BinaryOp::kGte: *out = storage::CmpOp::kGte; return true;
    default: return false;
  }
}

/// Scan entry point for shard-backed FROM sources: when the WHERE clause
/// compiles to a fused AND-of-conjuncts, push the conjuncts into the
/// storage layer so zone maps prune chunks before decode. The surviving
/// chunks still go through the ordinary FilterRows pass, so pruning only
/// has to be sound, not exact — and disabling it (EngineConfig) degrades
/// to a full materializing scan with identical results.
Result<TablePtr> ShardInput(const storage::Reader& shard, const SelectStmt& stmt,
                            storage::ScanStats* sstats,
                            const common::CancelToken* cancel) {
  if (stmt.where != nullptr && expr::VectorizedEnabled() &&
      storage::ZoneMapPruningEnabled()) {
    if (auto program = Compiler::Compile(stmt.where, shard.schema())) {
      if (!program->fused_preds.empty()) {
        std::vector<storage::Predicate> preds;
        preds.reserve(program->fused_preds.size());
        for (const auto& fp : program->fused_preds) {
          storage::Predicate pred;
          if (!ShardCmpOf(fp.cmp, &pred.cmp)) continue;
          pred.col = fp.col;
          pred.is_str = fp.is_str;
          pred.num_const = fp.num_const;
          if (fp.is_str) {
            pred.str_const = program->str_consts[static_cast<size_t>(fp.str_const)];
          }
          preds.push_back(std::move(pred));
        }
        if (!preds.empty()) {
          return shard.MaterializeMatching(preds, sstats, cancel);
        }
      }
    }
  }
  return shard.ReadAll(cancel, sstats);
}

/// Append the row indices of `table` where `pred` is truthy: the vectorized
/// path emits the selection vector directly (with the fused column-compare
/// fast path when available).
void FilterRows(const NodePtr& pred, const Table& table, std::vector<int32_t>* keep,
                const common::CancelToken* cancel = nullptr) {
  if (expr::VectorizedEnabled()) {
    if (auto program = Compiler::Compile(pred, table.schema())) {
      expr::RunFilterMorselParallel(table, *program, keep, cancel);
      return;
    }
  }
  EvalContext ctx;
  ctx.table = &table;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if ((r & 4095u) == 0 && common::Fired(cancel)) return;
    ctx.row = r;
    if (expr::Evaluate(pred, ctx).Truthy()) {
      keep->push_back(static_cast<int32_t>(r));
    }
  }
}

// ---- Aggregate accumulators ----

struct AggState {
  size_t count = 0;          // non-null (or all rows for COUNT(*))
  double sum = 0;
  double sum_sq = 0;
  Value min = Value::Null();
  Value max = Value::Null();
  std::vector<double> values;  // median only

  void Update(AggOp op, const Value& v, bool count_star) {
    if (op == AggOp::kCount) {
      if (count_star || !v.is_null()) ++count;
      return;
    }
    if (v.is_null()) return;
    ++count;
    switch (op) {
      case AggOp::kSum:
      case AggOp::kAvg: {
        sum += v.AsDouble();
        break;
      }
      case AggOp::kStddev:
      case AggOp::kVariance: {
        double d = v.AsDouble();
        sum += d;
        sum_sq += d * d;
        break;
      }
      case AggOp::kMedian:
        values.push_back(v.AsDouble());
        break;
      case AggOp::kMin:
        if (min.is_null() || v.Compare(min) < 0) min = v;
        break;
      case AggOp::kMax:
        if (max.is_null() || v.Compare(max) > 0) max = v;
        break;
      case AggOp::kCount:
        break;
    }
  }

  /// Fold `other` (a later chunk of the same group's rows) into this state.
  /// Chunks are merged in position order, so `values` concatenation keeps
  /// selection order and min/max keep the first occurrence on ties (the
  /// strict Compare mirrors the per-row update loops, including their
  /// NaN-never-replaces behavior, since Value::Compare treats NaN as equal
  /// to everything). Sums merge by adding per-chunk partials; chunk
  /// boundaries are fixed by AggChunkSize, never by the thread count, so
  /// the float rounding is identical at any parallelism.
  void Merge(AggOp op, AggState&& other) {
    count += other.count;
    switch (op) {
      case AggOp::kCount:
        break;
      case AggOp::kSum:
      case AggOp::kAvg:
        sum += other.sum;
        break;
      case AggOp::kStddev:
      case AggOp::kVariance:
        sum += other.sum;
        sum_sq += other.sum_sq;
        break;
      case AggOp::kMedian:
        values.insert(values.end(), other.values.begin(), other.values.end());
        break;
      case AggOp::kMin:
        if (!other.min.is_null() && (min.is_null() || other.min.Compare(min) < 0)) {
          min = std::move(other.min);
        }
        break;
      case AggOp::kMax:
        if (!other.max.is_null() && (max.is_null() || other.max.Compare(max) > 0)) {
          max = std::move(other.max);
        }
        break;
    }
  }

  Value Finish(AggOp op) {
    switch (op) {
      case AggOp::kCount:
        return Value::Int(static_cast<int64_t>(count));
      case AggOp::kSum:
        return count == 0 ? Value::Null() : Value::Double(sum);
      case AggOp::kAvg:
        return count == 0 ? Value::Null() : Value::Double(sum / static_cast<double>(count));
      case AggOp::kMin:
        return min;
      case AggOp::kMax:
        return max;
      case AggOp::kMedian: {
        if (values.empty()) return Value::Null();
        std::sort(values.begin(), values.end());
        size_t n = values.size();
        double med = (n % 2 == 1) ? values[n / 2]
                                  : 0.5 * (values[n / 2 - 1] + values[n / 2]);
        return Value::Double(med);
      }
      case AggOp::kStddev:
      case AggOp::kVariance: {
        if (count < 2) return Value::Null();
        double n = static_cast<double>(count);
        double var = (sum_sq - sum * sum / n) / (n - 1);  // sample variance
        if (var < 0) var = 0;
        return Value::Double(op == AggOp::kVariance ? var : std::sqrt(var));
      }
    }
    return Value::Null();
  }
};

/// Accumulate one aggregate over the selected positions in `span` with a
/// single typed branch per chunk: the inner loops touch raw doubles, never a
/// per-row Value. `arg` is the argument register over the full input table;
/// `rows` are the selected table row ids; `group_of[pos]` is the group of
/// `rows[pos]`; `states` holds one state per group. Callers run one
/// invocation per chunk (possibly in parallel, each with its own `states`)
/// and merge the chunk states in position order.
void AccumulateAgg(AggOp op, const Vec& arg, const std::vector<int32_t>& rows,
                   const std::vector<uint32_t>& group_of, parallel::Range span,
                   std::vector<AggState>* states) {
  const size_t npos = span.end;
  auto state = [&](size_t pos) -> AggState& { return (*states)[group_of[pos]]; };

  if (arg.kind == RegKind::kNum || arg.kind == RegKind::kBool) {
    // Typed fast path: the inner loops live in the kernel library, which
    // accumulates into dense SoA scratch (one slot per group) in strict
    // position order; the scratch then folds into the chunk's AggStates.
    // Each invocation starts from fresh states (one call per chunk per
    // aggregate), so the fold reproduces the former per-row updates
    // bit-for-bit — including min/max NaN stickiness, which would not
    // survive folding into already-populated extrema.
    const kernels::NumSpan v = expr::NumSpanOf(arg);
    const size_t num_groups = states->size();
    switch (op) {
      case AggOp::kCount: {
        std::vector<uint64_t> counts(num_groups, 0);
        kernels::GroupedCount(v, rows.data(), group_of.data(), span.begin,
                              span.end, counts.data());
        for (size_t g = 0; g < num_groups; ++g) {
          (*states)[g].count += static_cast<size_t>(counts[g]);
        }
        return;
      }
      case AggOp::kSum:
      case AggOp::kAvg: {
        std::vector<double> sums(num_groups, 0.0);
        std::vector<uint64_t> counts(num_groups, 0);
        kernels::GroupedSum(v, rows.data(), group_of.data(), span.begin,
                            span.end, sums.data(), counts.data());
        for (size_t g = 0; g < num_groups; ++g) {
          AggState& st = (*states)[g];
          st.sum += sums[g];
          st.count += static_cast<size_t>(counts[g]);
        }
        return;
      }
      case AggOp::kStddev:
      case AggOp::kVariance: {
        std::vector<double> sums(num_groups, 0.0);
        std::vector<double> sumsqs(num_groups, 0.0);
        std::vector<uint64_t> counts(num_groups, 0);
        kernels::GroupedSumSq(v, rows.data(), group_of.data(), span.begin,
                              span.end, sums.data(), sumsqs.data(),
                              counts.data());
        for (size_t g = 0; g < num_groups; ++g) {
          AggState& st = (*states)[g];
          st.sum += sums[g];
          st.sum_sq += sumsqs[g];
          st.count += static_cast<size_t>(counts[g]);
        }
        return;
      }
      case AggOp::kMedian:
        // Per-group value collection stays here: the kernel scratch is
        // fixed-width, medians are not.
        for (size_t pos = span.begin; pos < npos; ++pos) {
          const size_t r = static_cast<size_t>(rows[pos]);
          if (!arg.ValidAt(r)) continue;
          AggState& st = state(pos);
          st.values.push_back(v.ValueAt(r));
          ++st.count;
        }
        return;
      case AggOp::kMin:
      case AggOp::kMax: {
        std::vector<double> mins(num_groups, 0.0);
        std::vector<double> maxs(num_groups, 0.0);
        std::vector<uint8_t> seen(num_groups, 0);
        kernels::GroupedMinMax(v, rows.data(), group_of.data(), span.begin,
                               span.end, mins.data(), maxs.data(), seen.data());
        // Note: the typed min/max never touches count, matching the former
        // loops (Finish ignores count for them).
        for (size_t g = 0; g < num_groups; ++g) {
          if (seen[g] == 0) continue;
          AggState& st = (*states)[g];
          if (op == AggOp::kMin) {
            const double m = mins[g];
            if (st.min.is_null() || m < st.min.AsDouble()) {
              st.min = Value::Double(m);
            }
          } else {
            const double m = maxs[g];
            if (st.max.is_null() || m > st.max.AsDouble()) {
              st.max = Value::Double(m);
            }
          }
        }
        return;
      }
    }
    return;
  }

  // String / boxed-fallback arguments: per-row boxed update (identical to
  // the scalar interpreter path).
  for (size_t pos = span.begin; pos < npos; ++pos) {
    state(pos).Update(op, arg.CellValue(static_cast<size_t>(rows[pos])),
                      /*count_star=*/false);
  }
}

/// Whether `node` reads the input table only through direct `datum.<name>`
/// member access, collecting the referenced column names (deduped,
/// first-seen order). Bare `datum` or computed `datum[expr]` access could
/// touch arbitrary columns, so they disqualify the caller's gathered
/// (filter-fused) group-by path.
bool CollectProjectedColumns(const NodePtr& node, std::vector<std::string>* cols) {
  if (node == nullptr) return true;
  if (node->kind == expr::NodeKind::kMember && node->a != nullptr &&
      node->a->kind == expr::NodeKind::kIdentifier && node->a->name == "datum") {
    if (std::find(cols->begin(), cols->end(), node->name) == cols->end()) {
      cols->push_back(node->name);
    }
    return true;
  }
  if (node->kind == expr::NodeKind::kIdentifier) return node->name != "datum";
  if (node->kind == expr::NodeKind::kIndex) return false;
  bool ok = CollectProjectedColumns(node->a, cols) &&
            CollectProjectedColumns(node->b, cols) &&
            CollectProjectedColumns(node->c, cols);
  for (const NodePtr& arg : node->args) {
    ok = ok && CollectProjectedColumns(arg, cols);
  }
  return ok;
}

DataType AggResultType(AggOp op, const NodePtr& arg, const Schema& input) {
  switch (op) {
    case AggOp::kCount:
      return DataType::kInt64;
    case AggOp::kMin:
    case AggOp::kMax:
      return arg ? InferType(arg, input) : DataType::kFloat64;
    default:
      return DataType::kFloat64;
  }
}

// Sort `order` (row index permutation) by the given keys, stably. Keys are
// evaluated once into typed registers; the comparator never boxes, and
// code-backed string keys order by a precomputed dictionary permutation (one
// int compare per probe instead of a string compare).
void SortIndices(std::vector<int32_t>* order, const Table& table,
                 const std::vector<OrderItem>& keys,
                 const common::CancelToken* cancel = nullptr) {
  std::vector<Vec> key_vecs;
  key_vecs.reserve(keys.size());
  for (const OrderItem& k : keys) {
    key_vecs.push_back(EvalVec(k.expr, table, nullptr, cancel));
  }
  // A fired token leaves short/empty key registers; skip the sort (the
  // caller's checkpoint discards the order anyway).
  if (common::Fired(cancel)) return;
  for (Vec& v : key_vecs) v.BuildDictRanks();
  std::stable_sort(order->begin(), order->end(), [&](int32_t a, int32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      int cmp = key_vecs[k].CompareCells(static_cast<size_t>(a),
                                         static_cast<size_t>(b));
      if (keys[k].descending) cmp = -cmp;
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
}

}  // namespace

data::DataType InferType(const NodePtr& node, const Schema& input) {
  if (!node) return DataType::kFloat64;
  switch (node->kind) {
    case NodeKind::kLiteral:
      return node->literal.is_null() ? DataType::kFloat64 : node->literal.type();
    case NodeKind::kIdentifier:
      return DataType::kFloat64;  // signal value; numeric in practice
    case NodeKind::kMember: {
      if (node->a && node->a->kind == NodeKind::kIdentifier && node->a->name == "datum") {
        int idx = input.FieldIndex(node->name);
        if (idx >= 0) return input.field(static_cast<size_t>(idx)).type;
      }
      return DataType::kFloat64;
    }
    case NodeKind::kIndex:
      return DataType::kFloat64;
    case NodeKind::kUnary:
      return node->unary_op == expr::UnaryOp::kNot ? DataType::kBool : DataType::kFloat64;
    case NodeKind::kBinary:
      switch (node->binary_op) {
        case expr::BinaryOp::kEq:
        case expr::BinaryOp::kNeq:
        case expr::BinaryOp::kLt:
        case expr::BinaryOp::kLte:
        case expr::BinaryOp::kGt:
        case expr::BinaryOp::kGte:
          return DataType::kBool;
        case expr::BinaryOp::kAnd:
        case expr::BinaryOp::kOr:
          return DataType::kBool;
        case expr::BinaryOp::kAdd: {
          DataType a = InferType(node->a, input);
          DataType b = InferType(node->b, input);
          if (a == DataType::kString || b == DataType::kString) return DataType::kString;
          return DataType::kFloat64;
        }
        default:
          return DataType::kFloat64;
      }
    case NodeKind::kTernary:
      return InferType(node->b, input);
    case NodeKind::kCall: {
      const std::string& fn = node->name;
      if (fn == "isValid" || fn == "inrange") return DataType::kBool;
      if (fn == "lower" || fn == "upper" || fn == "toString" || fn == "format" ||
          fn == "timeFormat") {
        return DataType::kString;
      }
      if (fn == "length" || fn == "year" || fn == "month" || fn == "date" ||
          fn == "day" || fn == "hours" || fn == "minutes" || fn == "seconds" ||
          fn == "indexof") {
        return DataType::kInt64;
      }
      if (fn == "date_trunc" || fn == "date_unit_end") return DataType::kTimestamp;
      if (fn == "if" && node->args.size() == 3) return InferType(node->args[1], input);
      return DataType::kFloat64;
    }
    case NodeKind::kArray:
      return DataType::kFloat64;
  }
  return DataType::kFloat64;
}

Result<TablePtr> ExecuteSelect(const SelectStmt& stmt, const Catalog& catalog,
                               ExecStats* stats,
                               const common::QueryContext* ctx) {
  ExecStats local;
  const common::CancelToken* cancel = ctx != nullptr ? ctx->token() : nullptr;
  // Every cancellation exit funnels through here so the work counters of the
  // stages that DID run reach `stats` — an aborted 4M-row scan reports the
  // rows it touched (strictly below the full count), which is the observable
  // proof that workers were reclaimed mid-flight.
  const auto bail = [&](Status st) {
    if (stats != nullptr) stats->Add(local);
    return st;
  };

  // ---- FROM ----
  TablePtr input;
  if (stmt.from.subquery) {
    Result<TablePtr> sub = ExecuteSelect(*stmt.from.subquery, catalog, stats, ctx);
    if (!sub.ok()) return std::move(sub).status();
    input = std::move(*sub);
  } else if (!stmt.from.table_name.empty()) {
    if (std::shared_ptr<storage::Reader> shard =
            catalog.GetShard(stmt.from.table_name)) {
      storage::ScanStats shard_scan;
      Result<TablePtr> shard_input = ShardInput(*shard, stmt, &shard_scan, cancel);
      if (!shard_input.ok()) {
        // Aborted/failed scan: report the rows actually paged in (a full
        // scan reports the materialized row count below, as before).
        local.rows_scanned += static_cast<size_t>(shard_scan.rows_scanned);
        return bail(std::move(shard_input).status());
      }
      input = std::move(*shard_input);
    } else {
      VP_ASSIGN_OR_RETURN(input, catalog.GetTable(stmt.from.table_name));
    }
    local.rows_scanned += input->num_rows();
  } else {
    return Status::InvalidArgument("SQL exec: missing FROM source");
  }
  ++local.num_operators;
  if (common::Fired(cancel)) return bail(cancel->status());

  // Validate expressions up front (unknown functions etc).
  for (const auto& item : stmt.items) {
    if (item.expr) VP_RETURN_IF_ERROR(expr::Validate(item.expr));
    if (item.agg_arg) VP_RETURN_IF_ERROR(expr::Validate(item.agg_arg));
  }
  if (stmt.where) VP_RETURN_IF_ERROR(expr::Validate(stmt.where));

  // ---- WHERE ----
  std::vector<int32_t> selection;
  selection.reserve(input->num_rows());
  if (stmt.where) {
    ++local.num_operators;
    local.rows_processed += input->num_rows();
    FilterRows(stmt.where, *input, &selection, cancel);
    if (common::Fired(cancel)) return bail(cancel->status());
  } else {
    selection.resize(input->num_rows());
    std::iota(selection.begin(), selection.end(), 0);
  }

  const bool has_aggregates =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(), [](const SelectItem& i) {
        return i.kind == SelectItem::Kind::kAggregate;
      });

  TablePtr output;

  if (has_aggregates) {
    // ---- GROUP BY + aggregate ----
    ++local.num_operators;
    local.rows_processed += selection.size();

    // Match plain expression items to group-by expressions by unparse text.
    std::vector<std::string> group_texts;
    group_texts.reserve(stmt.group_by.size());
    for (const auto& g : stmt.group_by) group_texts.push_back(expr::ToString(g));

    struct ItemPlan {
      bool is_group_expr = false;
      size_t group_index = 0;
      size_t agg_index = 0;
    };
    std::vector<ItemPlan> item_plans(stmt.items.size());
    std::vector<const SelectItem*> agg_items;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      switch (item.kind) {
        case SelectItem::Kind::kStar:
          return Status::InvalidArgument("SQL exec: '*' not allowed with GROUP BY");
        case SelectItem::Kind::kWindow:
          return Status::InvalidArgument(
              "SQL exec: window function not allowed with GROUP BY");
        case SelectItem::Kind::kExpr: {
          std::string text = expr::ToString(item.expr);
          auto it = std::find(group_texts.begin(), group_texts.end(), text);
          if (it == group_texts.end()) {
            return Status::InvalidArgument(
                "SQL exec: select item '" + text + "' is not in GROUP BY");
          }
          item_plans[i].is_group_expr = true;
          item_plans[i].group_index = static_cast<size_t>(it - group_texts.begin());
          break;
        }
        case SelectItem::Kind::kAggregate:
          item_plans[i].agg_index = agg_items.size();
          agg_items.push_back(&item);
          break;
      }
    }

    // Filter fusion: when WHERE kept a minority of rows and every group key
    // and aggregate argument reads the table only through direct
    // `datum.<col>` access, gather just the referenced columns at the
    // selected rows and evaluate keys/arguments over that narrow compacted
    // table, instead of computing full-batch key registers over mostly
    // filtered-out rows. Bit-identical to the unfused path: Column::Take
    // copies cells exactly (dictionaries shared), first-seen group order
    // equals selection order either way, and the aggregate chunk boundaries
    // depend only on the selection size, which is unchanged.
    TablePtr gathered;
    std::vector<int32_t> positions;  // iota over gathered rows
    const Table* key_input = input.get();
    // Positions into group_of/chunks map to rows of `key_input` through
    // this: table row ids when unfused, the identity when fused.
    const std::vector<int32_t>* acc_rows = &selection;
    if (stmt.where && selection.size() * 2 < input->num_rows()) {
      std::vector<std::string> cols;
      bool projectable = true;
      for (const auto& g : stmt.group_by) {
        projectable = projectable && CollectProjectedColumns(g, &cols);
      }
      for (const SelectItem* item : agg_items) {
        if (item->agg_arg) {
          projectable = projectable && CollectProjectedColumns(item->agg_arg, &cols);
        }
      }
      if (projectable) {
        std::vector<data::Field> gfields;
        std::vector<data::Column> gcols;
        for (const std::string& name : cols) {
          int idx = input->schema().FieldIndex(name);
          // Referenced-but-absent columns evaluate to null against either
          // schema; skip them.
          if (idx < 0) continue;
          gfields.push_back(input->schema().field(static_cast<size_t>(idx)));
          gcols.push_back(input->column(static_cast<size_t>(idx)).Take(selection));
        }
        gathered = std::make_shared<Table>(Schema(std::move(gfields)),
                                           std::move(gcols));
        positions.resize(selection.size());
        std::iota(positions.begin(), positions.end(), 0);
        key_input = gathered.get();
        acc_rows = &positions;
      }
    }

    // Evaluate group keys column-at-a-time (over the gathered table when
    // fused, else over the full input — unselected rows are computed but
    // never read), then hash-group the selection. Group keys live once, in
    // the key registers; groups are ids plus one representative row each.
    std::vector<Vec> key_vecs;
    key_vecs.reserve(stmt.group_by.size());
    for (const auto& g : stmt.group_by) {
      key_vecs.push_back(
          EvalVec(g, *key_input, gathered ? nullptr : &selection, cancel));
    }
    if (common::Fired(cancel)) return bail(cancel->status());
    std::vector<const Vec*> key_ptrs;
    key_ptrs.reserve(key_vecs.size());
    for (const Vec& v : key_vecs) key_ptrs.push_back(&v);
    expr::GroupResult groups = expr::BuildGroups(key_ptrs, *acc_rows);

    size_t num_groups = groups.num_groups();
    // Pure aggregation over zero rows still yields one output row.
    if (stmt.group_by.empty() && num_groups == 0) num_groups = 1;

    // Chunked accumulation: each chunk of selection positions fills its own
    // partial states and the partials merge in chunk order. Chunk boundaries
    // come from AggChunkSize — a function of the data shape only, never the
    // thread count or the kill switch — so the merged result is bit-identical
    // whether the chunks run sequentially or across the morsel pool. One
    // aggregate at a time, so exactly one full-table argument register is
    // live (the boundaries are shared by every aggregate, so the per-agg
    // merge order changes nothing).
    const size_t chunk_rows = parallel::AggChunkSize(
        selection.size(), num_groups * std::max<size_t>(1, agg_items.size()));
    const std::vector<parallel::Range> chunks =
        parallel::SplitRanges(selection.size(), chunk_rows);
    std::vector<std::vector<AggState>> group_states(
        num_groups, std::vector<AggState>(agg_items.size()));
    for (size_t a = 0; a < agg_items.size(); ++a) {
      const SelectItem* item = agg_items[a];
      Vec arg;
      if (item->agg_arg != nullptr) {
        arg = EvalVec(item->agg_arg, *key_input, gathered ? nullptr : &selection,
                      cancel);
        if (common::Fired(cancel)) return bail(cancel->status());
      }
      std::vector<std::vector<AggState>> chunk_states(chunks.size());
      parallel::ParallelFor(
          chunks.size(),
          [&](size_t c) {
            std::vector<AggState>& states = chunk_states[c];
            states.assign(num_groups, AggState());
            if (item->agg_arg == nullptr) {
              // COUNT(*): group cardinalities, no argument to evaluate.
              std::vector<uint64_t> counts(num_groups, 0);
              kernels::GroupedCountStar(groups.group_of.data(), chunks[c].begin,
                                        chunks[c].end, counts.data());
              for (size_t g = 0; g < num_groups; ++g) {
                states[g].count += static_cast<size_t>(counts[g]);
              }
              return;
            }
            AccumulateAgg(item->agg_op, arg, *acc_rows, groups.group_of,
                          chunks[c], &states);
          },
          cancel);
      // Checkpoint before the merge: skipped chunks left default states.
      if (common::Fired(cancel)) return bail(cancel->status());
      for (size_t c = 0; c < chunks.size(); ++c) {
        for (size_t g = 0; g < num_groups; ++g) {
          group_states[g][a].Merge(item->agg_op, std::move(chunk_states[c][g]));
        }
      }
    }

    // Build the output columns group-at-a-time.
    std::vector<data::Field> fields;
    fields.reserve(stmt.items.size());
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      DataType t = item.kind == SelectItem::Kind::kAggregate
                       ? AggResultType(item.agg_op, item.agg_arg, input->schema())
                       : InferType(item.expr, input->schema());
      fields.push_back({DeriveItemName(item, i), t});
    }
    std::vector<Column> columns;
    columns.reserve(fields.size());
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      Column col(fields[i].type);
      col.Reserve(num_groups);
      if (item_plans[i].is_group_expr) {
        const Vec& key = key_vecs[item_plans[i].group_index];
        for (size_t g = 0; g < groups.num_groups(); ++g) {
          key.AppendCellTo(static_cast<size_t>(groups.rep_rows[g]), &col);
        }
      } else {
        for (size_t g = 0; g < num_groups; ++g) {
          col.Append(group_states[g][item_plans[i].agg_index].Finish(
              stmt.items[i].agg_op));
        }
      }
      columns.push_back(std::move(col));
    }
    output = std::make_shared<Table>(Schema(std::move(fields)), std::move(columns));

    // ---- HAVING (references output column names) ----
    if (stmt.having) {
      VP_RETURN_IF_ERROR(expr::Validate(stmt.having));
      ++local.num_operators;
      local.rows_processed += output->num_rows();
      std::vector<int32_t> keep;
      keep.reserve(output->num_rows());
      FilterRows(stmt.having, *output, &keep, cancel);
      if (common::Fired(cancel)) return bail(cancel->status());
      output = output->Take(keep);
    }
  } else {
    // ---- Projection (+ window functions) ----
    ++local.num_operators;
    local.rows_processed += selection.size();

    TablePtr filtered = selection.size() == input->num_rows()
                            ? input
                            : input->Take(selection);

    std::vector<data::Field> fields;
    std::vector<int> source_col;  // >=0: pass-through input column
    std::vector<const SelectItem*> item_of_field;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.kind == SelectItem::Kind::kStar) {
        for (size_t c = 0; c < filtered->num_columns(); ++c) {
          fields.push_back(filtered->schema().field(c));
          source_col.push_back(static_cast<int>(c));
          item_of_field.push_back(nullptr);
        }
        continue;
      }
      DataType t;
      if (item.kind == SelectItem::Kind::kWindow) {
        t = item.window.op == WindowOp::kRowNumber ? DataType::kInt64
                                                   : DataType::kFloat64;
      } else {
        t = InferType(item.expr, filtered->schema());
      }
      fields.push_back({DeriveItemName(item, i), t});
      source_col.push_back(-1);
      item_of_field.push_back(&item);
    }

    const size_t n = filtered->num_rows();
    std::vector<Column> columns;
    columns.reserve(fields.size());
    for (size_t f = 0; f < fields.size(); ++f) {
      if (source_col[f] >= 0) {
        columns.push_back(filtered->column(static_cast<size_t>(source_col[f])));
        continue;
      }
      const SelectItem& item = *item_of_field[f];
      Column col(fields[f].type);
      if (item.kind == SelectItem::Kind::kExpr) {
        bool vectorized = false;
        if (expr::VectorizedEnabled()) {
          if (auto program = Compiler::Compile(item.expr, filtered->schema())) {
            // Morsel-parallel projection: compute the register across the
            // pool, then build the column once (identical to RunToColumn).
            Vec reg = expr::RunMorselParallel(*filtered, *program, cancel);
            if (common::Fired(cancel)) return bail(cancel->status());
            expr::VecToColumn(std::move(reg), n, &col);
            vectorized = true;
          }
        }
        if (!vectorized) {
          col.Reserve(n);
          for (size_t r = 0; r < n; ++r) {
            col.Append(EvalScalar(item.expr, *filtered, r));
          }
        }
      } else {
        // Window function.
        ++local.num_operators;
        local.rows_processed += n;
        // Partition rows via the typed group index (single key store; the
        // per-partition row lists are built off group ids, no re-hashing).
        std::vector<Vec> part_vecs;
        part_vecs.reserve(item.window.partition_by.size());
        for (const auto& pexpr : item.window.partition_by) {
          part_vecs.push_back(EvalVec(pexpr, *filtered));
        }
        std::vector<const Vec*> part_ptrs;
        part_ptrs.reserve(part_vecs.size());
        for (const Vec& v : part_vecs) part_ptrs.push_back(&v);
        std::vector<int32_t> all_rows(n);
        std::iota(all_rows.begin(), all_rows.end(), 0);
        expr::GroupResult parts = expr::BuildGroups(part_ptrs, all_rows);
        std::vector<std::vector<int32_t>> part_rows(parts.num_groups());
        for (size_t pos = 0; pos < n; ++pos) {
          part_rows[parts.group_of[pos]].push_back(static_cast<int32_t>(pos));
        }

        Vec arg_vec;
        if (item.window.op != WindowOp::kRowNumber) {
          arg_vec = EvalVec(item.window.arg, *filtered);
        }
        std::vector<Value> results(n, Value::Null());
        for (std::vector<int32_t>& rows : part_rows) {
          if (!item.window.order_by.empty()) {
            SortIndices(&rows, *filtered, item.window.order_by);
          }
          double running = 0;
          int64_t rank = 0;
          for (int32_t r : rows) {
            if (item.window.op == WindowOp::kRowNumber) {
              results[static_cast<size_t>(r)] = Value::Int(++rank);
            } else {
              Value v = arg_vec.CellValue(static_cast<size_t>(r));
              if (!v.is_null()) running += v.AsDouble();
              results[static_cast<size_t>(r)] = Value::Double(running);
            }
          }
        }
        col.Reserve(n);
        for (size_t r = 0; r < n; ++r) col.Append(results[r]);
      }
      columns.push_back(std::move(col));
    }
    output = std::make_shared<Table>(Schema(std::move(fields)), std::move(columns));
  }

  // ---- ORDER BY (against output columns) ----
  if (!stmt.order_by.empty()) {
    ++local.num_operators;
    local.rows_processed += output->num_rows();
    if (common::Fired(cancel)) return bail(cancel->status());
    std::vector<int32_t> order(output->num_rows());
    std::iota(order.begin(), order.end(), 0);
    SortIndices(&order, *output, stmt.order_by, cancel);
    if (common::Fired(cancel)) return bail(cancel->status());
    output = output->Take(order);
  }

  // ---- LIMIT / OFFSET ----
  if (stmt.limit >= 0 || stmt.offset > 0) {
    ++local.num_operators;
    size_t begin = std::min(static_cast<size_t>(stmt.offset), output->num_rows());
    size_t end = stmt.limit < 0 ? output->num_rows()
                                : std::min(begin + static_cast<size_t>(stmt.limit),
                                           output->num_rows());
    const size_t kept = end - begin;
    if (kept * 2 >= output->num_rows()) {
      // Zero-copy view; the discarded fraction of the backing storage is
      // bounded, so pinning it (e.g. in the runtime query cache) is fine.
      output = output->Slice(begin, kept);
    } else {
      // A small LIMIT over a large intermediate: compact so a cached result
      // doesn't pin the whole pre-LIMIT table's storage.
      std::vector<int32_t> keep;
      keep.reserve(kept);
      for (size_t r = begin; r < end; ++r) keep.push_back(static_cast<int32_t>(r));
      output = output->Take(keep);
    }
  }

  local.rows_output = output->num_rows();
  if (stats != nullptr) stats->Add(local);
  return output;
}

}  // namespace sql
}  // namespace vegaplus
