#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/str_util.h"
#include "expr/evaluator.h"

namespace vegaplus {
namespace sql {

namespace {

using data::Column;
using data::DataType;
using data::Schema;
using data::Table;
using data::TablePtr;
using data::Value;
using expr::EvalContext;
using expr::EvalValue;
using expr::NodeKind;
using expr::NodePtr;

Value EvalScalar(const NodePtr& node, const Table& table, size_t row) {
  EvalContext ctx;
  ctx.table = &table;
  ctx.row = row;
  EvalValue v = expr::Evaluate(node, ctx);
  return v.is_array() ? Value::Null() : v.scalar();
}

// ---- Group key hashing ----

struct GroupKey {
  std::vector<Value> values;

  bool operator==(const GroupKey& other) const {
    if (values.size() != other.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] != other.values[i]) return false;
    }
    return true;
  }
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    size_t h = 0x12345;
    for (const Value& v : k.values) {
      h = h * 1099511628211ull + v.Hash();
    }
    return h;
  }
};

// ---- Aggregate accumulators ----

struct AggState {
  size_t count = 0;          // non-null (or all rows for COUNT(*))
  double sum = 0;
  double sum_sq = 0;
  Value min = Value::Null();
  Value max = Value::Null();
  std::vector<double> values;  // median only

  void Update(AggOp op, const Value& v, bool count_star) {
    if (op == AggOp::kCount) {
      if (count_star || !v.is_null()) ++count;
      return;
    }
    if (v.is_null()) return;
    ++count;
    switch (op) {
      case AggOp::kSum:
      case AggOp::kAvg: {
        sum += v.AsDouble();
        break;
      }
      case AggOp::kStddev:
      case AggOp::kVariance: {
        double d = v.AsDouble();
        sum += d;
        sum_sq += d * d;
        break;
      }
      case AggOp::kMedian:
        values.push_back(v.AsDouble());
        break;
      case AggOp::kMin:
        if (min.is_null() || v.Compare(min) < 0) min = v;
        break;
      case AggOp::kMax:
        if (max.is_null() || v.Compare(max) > 0) max = v;
        break;
      case AggOp::kCount:
        break;
    }
  }

  Value Finish(AggOp op) {
    switch (op) {
      case AggOp::kCount:
        return Value::Int(static_cast<int64_t>(count));
      case AggOp::kSum:
        return count == 0 ? Value::Null() : Value::Double(sum);
      case AggOp::kAvg:
        return count == 0 ? Value::Null() : Value::Double(sum / static_cast<double>(count));
      case AggOp::kMin:
        return min;
      case AggOp::kMax:
        return max;
      case AggOp::kMedian: {
        if (values.empty()) return Value::Null();
        std::sort(values.begin(), values.end());
        size_t n = values.size();
        double med = (n % 2 == 1) ? values[n / 2]
                                  : 0.5 * (values[n / 2 - 1] + values[n / 2]);
        return Value::Double(med);
      }
      case AggOp::kStddev:
      case AggOp::kVariance: {
        if (count < 2) return Value::Null();
        double n = static_cast<double>(count);
        double var = (sum_sq - sum * sum / n) / (n - 1);  // sample variance
        if (var < 0) var = 0;
        return Value::Double(op == AggOp::kVariance ? var : std::sqrt(var));
      }
    }
    return Value::Null();
  }
};

DataType AggResultType(AggOp op, const NodePtr& arg, const Schema& input) {
  switch (op) {
    case AggOp::kCount:
      return DataType::kInt64;
    case AggOp::kMin:
    case AggOp::kMax:
      return arg ? InferType(arg, input) : DataType::kFloat64;
    default:
      return DataType::kFloat64;
  }
}

// Sort `order` (row index permutation) by the given keys, stably.
void SortIndices(std::vector<int32_t>* order, const Table& table,
                 const std::vector<OrderItem>& keys) {
  // Precompute key values per row to avoid re-evaluating in the comparator.
  std::vector<std::vector<Value>> key_values(keys.size());
  for (size_t k = 0; k < keys.size(); ++k) {
    key_values[k].resize(table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      key_values[k][r] = EvalScalar(keys[k].expr, table, r);
    }
  }
  std::stable_sort(order->begin(), order->end(), [&](int32_t a, int32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      int cmp = key_values[k][static_cast<size_t>(a)].Compare(
          key_values[k][static_cast<size_t>(b)]);
      if (keys[k].descending) cmp = -cmp;
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
}

}  // namespace

data::DataType InferType(const NodePtr& node, const Schema& input) {
  if (!node) return DataType::kFloat64;
  switch (node->kind) {
    case NodeKind::kLiteral:
      return node->literal.is_null() ? DataType::kFloat64 : node->literal.type();
    case NodeKind::kIdentifier:
      return DataType::kFloat64;  // signal value; numeric in practice
    case NodeKind::kMember: {
      if (node->a && node->a->kind == NodeKind::kIdentifier && node->a->name == "datum") {
        int idx = input.FieldIndex(node->name);
        if (idx >= 0) return input.field(static_cast<size_t>(idx)).type;
      }
      return DataType::kFloat64;
    }
    case NodeKind::kIndex:
      return DataType::kFloat64;
    case NodeKind::kUnary:
      return node->unary_op == expr::UnaryOp::kNot ? DataType::kBool : DataType::kFloat64;
    case NodeKind::kBinary:
      switch (node->binary_op) {
        case expr::BinaryOp::kEq:
        case expr::BinaryOp::kNeq:
        case expr::BinaryOp::kLt:
        case expr::BinaryOp::kLte:
        case expr::BinaryOp::kGt:
        case expr::BinaryOp::kGte:
          return DataType::kBool;
        case expr::BinaryOp::kAnd:
        case expr::BinaryOp::kOr:
          return DataType::kBool;
        case expr::BinaryOp::kAdd: {
          DataType a = InferType(node->a, input);
          DataType b = InferType(node->b, input);
          if (a == DataType::kString || b == DataType::kString) return DataType::kString;
          return DataType::kFloat64;
        }
        default:
          return DataType::kFloat64;
      }
    case NodeKind::kTernary:
      return InferType(node->b, input);
    case NodeKind::kCall: {
      const std::string& fn = node->name;
      if (fn == "isValid" || fn == "inrange") return DataType::kBool;
      if (fn == "lower" || fn == "upper" || fn == "toString" || fn == "format" ||
          fn == "timeFormat") {
        return DataType::kString;
      }
      if (fn == "length" || fn == "year" || fn == "month" || fn == "date" ||
          fn == "day" || fn == "hours" || fn == "minutes" || fn == "seconds" ||
          fn == "indexof") {
        return DataType::kInt64;
      }
      if (fn == "date_trunc" || fn == "date_unit_end") return DataType::kTimestamp;
      if (fn == "if" && node->args.size() == 3) return InferType(node->args[1], input);
      return DataType::kFloat64;
    }
    case NodeKind::kArray:
      return DataType::kFloat64;
  }
  return DataType::kFloat64;
}

Result<TablePtr> ExecuteSelect(const SelectStmt& stmt, const Catalog& catalog,
                               ExecStats* stats) {
  ExecStats local;

  // ---- FROM ----
  TablePtr input;
  if (stmt.from.subquery) {
    VP_ASSIGN_OR_RETURN(input, ExecuteSelect(*stmt.from.subquery, catalog, stats));
  } else if (!stmt.from.table_name.empty()) {
    VP_ASSIGN_OR_RETURN(input, catalog.GetTable(stmt.from.table_name));
    local.rows_scanned += input->num_rows();
  } else {
    return Status::InvalidArgument("SQL exec: missing FROM source");
  }
  ++local.num_operators;

  // Validate expressions up front (unknown functions etc).
  for (const auto& item : stmt.items) {
    if (item.expr) VP_RETURN_IF_ERROR(expr::Validate(item.expr));
    if (item.agg_arg) VP_RETURN_IF_ERROR(expr::Validate(item.agg_arg));
  }
  if (stmt.where) VP_RETURN_IF_ERROR(expr::Validate(stmt.where));

  // ---- WHERE ----
  std::vector<int32_t> selection;
  selection.reserve(input->num_rows());
  if (stmt.where) {
    ++local.num_operators;
    local.rows_processed += input->num_rows();
    for (size_t r = 0; r < input->num_rows(); ++r) {
      EvalContext ctx;
      ctx.table = input.get();
      ctx.row = r;
      if (expr::Evaluate(stmt.where, ctx).Truthy()) {
        selection.push_back(static_cast<int32_t>(r));
      }
    }
  } else {
    for (size_t r = 0; r < input->num_rows(); ++r) {
      selection.push_back(static_cast<int32_t>(r));
    }
  }

  const bool has_aggregates =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(), [](const SelectItem& i) {
        return i.kind == SelectItem::Kind::kAggregate;
      });

  TablePtr output;

  if (has_aggregates) {
    // ---- GROUP BY + aggregate ----
    ++local.num_operators;
    local.rows_processed += selection.size();

    // Match plain expression items to group-by expressions by unparse text.
    std::vector<std::string> group_texts;
    group_texts.reserve(stmt.group_by.size());
    for (const auto& g : stmt.group_by) group_texts.push_back(expr::ToString(g));

    struct ItemPlan {
      bool is_group_expr = false;
      size_t group_index = 0;
      size_t agg_index = 0;
    };
    std::vector<ItemPlan> item_plans(stmt.items.size());
    std::vector<const SelectItem*> agg_items;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      switch (item.kind) {
        case SelectItem::Kind::kStar:
          return Status::InvalidArgument("SQL exec: '*' not allowed with GROUP BY");
        case SelectItem::Kind::kWindow:
          return Status::InvalidArgument(
              "SQL exec: window function not allowed with GROUP BY");
        case SelectItem::Kind::kExpr: {
          std::string text = expr::ToString(item.expr);
          auto it = std::find(group_texts.begin(), group_texts.end(), text);
          if (it == group_texts.end()) {
            return Status::InvalidArgument(
                "SQL exec: select item '" + text + "' is not in GROUP BY");
          }
          item_plans[i].is_group_expr = true;
          item_plans[i].group_index = static_cast<size_t>(it - group_texts.begin());
          break;
        }
        case SelectItem::Kind::kAggregate:
          item_plans[i].agg_index = agg_items.size();
          agg_items.push_back(&item);
          break;
      }
    }

    // Build groups in first-seen order.
    std::unordered_map<GroupKey, size_t, GroupKeyHash> group_ids;
    std::vector<GroupKey> group_keys;
    std::vector<std::vector<AggState>> group_states;
    for (int32_t r : selection) {
      GroupKey key;
      key.values.reserve(stmt.group_by.size());
      for (const auto& g : stmt.group_by) {
        key.values.push_back(EvalScalar(g, *input, static_cast<size_t>(r)));
      }
      auto [it, inserted] = group_ids.emplace(key, group_keys.size());
      if (inserted) {
        group_keys.push_back(std::move(key));
        group_states.emplace_back(agg_items.size());
      }
      std::vector<AggState>& states = group_states[it->second];
      for (size_t a = 0; a < agg_items.size(); ++a) {
        const SelectItem* item = agg_items[a];
        Value v = item->agg_arg
                      ? EvalScalar(item->agg_arg, *input, static_cast<size_t>(r))
                      : Value::Null();
        states[a].Update(item->agg_op, v, /*count_star=*/item->agg_arg == nullptr);
      }
    }
    // Pure aggregation over zero rows still yields one output row.
    if (stmt.group_by.empty() && group_keys.empty()) {
      group_keys.emplace_back();
      group_states.emplace_back(agg_items.size());
    }

    // Build the output schema.
    std::vector<data::Field> fields;
    fields.reserve(stmt.items.size());
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      DataType t = item.kind == SelectItem::Kind::kAggregate
                       ? AggResultType(item.agg_op, item.agg_arg, input->schema())
                       : InferType(item.expr, input->schema());
      fields.push_back({DeriveItemName(item, i), t});
    }
    data::TableBuilder builder((Schema(fields)));
    builder.Reserve(group_keys.size());
    for (size_t g = 0; g < group_keys.size(); ++g) {
      std::vector<Value> row;
      row.reserve(stmt.items.size());
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        if (item_plans[i].is_group_expr) {
          row.push_back(group_keys[g].values[item_plans[i].group_index]);
        } else {
          row.push_back(group_states[g][item_plans[i].agg_index].Finish(
              stmt.items[i].agg_op));
        }
      }
      builder.AppendRow(row);
    }
    output = builder.Build();

    // ---- HAVING (references output column names) ----
    if (stmt.having) {
      VP_RETURN_IF_ERROR(expr::Validate(stmt.having));
      ++local.num_operators;
      local.rows_processed += output->num_rows();
      std::vector<int32_t> keep;
      for (size_t r = 0; r < output->num_rows(); ++r) {
        EvalContext ctx;
        ctx.table = output.get();
        ctx.row = r;
        if (expr::Evaluate(stmt.having, ctx).Truthy()) {
          keep.push_back(static_cast<int32_t>(r));
        }
      }
      output = output->Take(keep);
    }
  } else {
    // ---- Projection (+ window functions) ----
    ++local.num_operators;
    local.rows_processed += selection.size();

    TablePtr filtered = input->Take(selection);

    std::vector<data::Field> fields;
    std::vector<int> source_col;  // >=0: pass-through input column
    std::vector<const SelectItem*> item_of_field;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.kind == SelectItem::Kind::kStar) {
        for (size_t c = 0; c < filtered->num_columns(); ++c) {
          fields.push_back(filtered->schema().field(c));
          source_col.push_back(static_cast<int>(c));
          item_of_field.push_back(nullptr);
        }
        continue;
      }
      DataType t;
      if (item.kind == SelectItem::Kind::kWindow) {
        t = item.window.op == WindowOp::kRowNumber ? DataType::kInt64
                                                   : DataType::kFloat64;
      } else {
        t = InferType(item.expr, filtered->schema());
      }
      fields.push_back({DeriveItemName(item, i), t});
      source_col.push_back(-1);
      item_of_field.push_back(&item);
    }

    const size_t n = filtered->num_rows();
    std::vector<Column> columns;
    columns.reserve(fields.size());
    for (size_t f = 0; f < fields.size(); ++f) {
      if (source_col[f] >= 0) {
        columns.push_back(filtered->column(static_cast<size_t>(source_col[f])));
        continue;
      }
      const SelectItem& item = *item_of_field[f];
      Column col(fields[f].type);
      col.Reserve(n);
      if (item.kind == SelectItem::Kind::kExpr) {
        for (size_t r = 0; r < n; ++r) {
          col.Append(EvalScalar(item.expr, *filtered, r));
        }
      } else {
        // Window function.
        ++local.num_operators;
        local.rows_processed += n;
        // Partition rows.
        std::unordered_map<GroupKey, std::vector<int32_t>, GroupKeyHash> parts;
        std::vector<GroupKey> part_order;
        for (size_t r = 0; r < n; ++r) {
          GroupKey key;
          key.values.reserve(item.window.partition_by.size());
          for (const auto& p : item.window.partition_by) {
            key.values.push_back(EvalScalar(p, *filtered, r));
          }
          auto [it, inserted] = parts.emplace(std::move(key), std::vector<int32_t>{});
          it->second.push_back(static_cast<int32_t>(r));
          if (inserted) part_order.push_back(it->first);
        }
        std::vector<Value> results(n, Value::Null());
        for (const GroupKey& key : part_order) {
          std::vector<int32_t>& rows = parts[key];
          if (!item.window.order_by.empty()) {
            SortIndices(&rows, *filtered, item.window.order_by);
          }
          double running = 0;
          int64_t rank = 0;
          for (int32_t r : rows) {
            if (item.window.op == WindowOp::kRowNumber) {
              results[static_cast<size_t>(r)] = Value::Int(++rank);
            } else {
              Value v = EvalScalar(item.window.arg, *filtered, static_cast<size_t>(r));
              if (!v.is_null()) running += v.AsDouble();
              results[static_cast<size_t>(r)] = Value::Double(running);
            }
          }
        }
        for (size_t r = 0; r < n; ++r) col.Append(results[r]);
      }
      columns.push_back(std::move(col));
    }
    output = std::make_shared<Table>(Schema(std::move(fields)), std::move(columns));
  }

  // ---- ORDER BY (against output columns) ----
  if (!stmt.order_by.empty()) {
    ++local.num_operators;
    local.rows_processed += output->num_rows();
    std::vector<int32_t> order(output->num_rows());
    std::iota(order.begin(), order.end(), 0);
    SortIndices(&order, *output, stmt.order_by);
    output = output->Take(order);
  }

  // ---- LIMIT / OFFSET ----
  if (stmt.limit >= 0 || stmt.offset > 0) {
    ++local.num_operators;
    size_t begin = std::min(static_cast<size_t>(stmt.offset), output->num_rows());
    size_t end = stmt.limit < 0 ? output->num_rows()
                                : std::min(begin + static_cast<size_t>(stmt.limit),
                                           output->num_rows());
    std::vector<int32_t> keep;
    keep.reserve(end - begin);
    for (size_t r = begin; r < end; ++r) keep.push_back(static_cast<int32_t>(r));
    output = output->Take(keep);
  }

  local.rows_output = output->num_rows();
  if (stats != nullptr) stats->Add(local);
  return output;
}

}  // namespace sql
}  // namespace vegaplus
