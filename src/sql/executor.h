// SQL query execution: filter -> aggregate/project(+window) -> having ->
// sort -> limit over the columnar table substrate. Expressions execute
// column-at-a-time through the vectorized engine (expr::Compiler +
// expr::BatchEvaluator) with a row-at-a-time scalar fallback for
// expressions the compiler rejects; columnar storage in and out.
#ifndef VEGAPLUS_SQL_EXECUTOR_H_
#define VEGAPLUS_SQL_EXECUTOR_H_

#include "common/cancel.h"
#include "common/result.h"
#include "data/table.h"
#include "sql/catalog.h"
#include "sql/sql_ast.h"

namespace vegaplus {
namespace sql {

/// \brief Work counters from one execution; the latency model converts these
/// into simulated server time.
struct ExecStats {
  /// Rows read from base tables (scan volume).
  size_t rows_scanned = 0;
  /// Total operator-row touches across the plan (CPU volume).
  size_t rows_processed = 0;
  /// Rows in the final result.
  size_t rows_output = 0;
  /// Plan nodes executed (per-operator overhead).
  int num_operators = 0;

  void Add(const ExecStats& other) {
    rows_scanned += other.rows_scanned;
    rows_processed += other.rows_processed;
    rows_output += other.rows_output;
    num_operators += other.num_operators;
  }
};

/// Execute `stmt` against `catalog`; work counters accumulate into `stats`
/// (which may be null).
///
/// `ctx` (optional) carries the cooperative cancellation token
/// (common/cancel.h). The pipeline checkpoints between stages and between
/// morsels/chunks inside the scan, filter, and aggregation loops; a fired
/// token aborts with Status::Cancelled / kDeadlineExceeded. Work counters
/// for the stages that did run are still added to `stats` on abort, so a
/// cancelled scan reports the rows it actually touched.
Result<data::TablePtr> ExecuteSelect(const SelectStmt& stmt, const Catalog& catalog,
                                     ExecStats* stats,
                                     const common::QueryContext* ctx = nullptr);

/// Infer the output type of a scalar expression over `input` (used to build
/// typed result columns without a separate analyzer pass).
data::DataType InferType(const expr::NodePtr& node, const data::Schema& input);

}  // namespace sql
}  // namespace vegaplus

#endif  // VEGAPLUS_SQL_EXECUTOR_H_
