#include "sql/prepared.h"

#include "sql/sql_parser.h"

namespace vegaplus {
namespace sql {

namespace {

using expr::EvalValue;
using expr::Node;
using expr::NodeKind;
using expr::NodePtr;

void AddUnique(std::vector<std::string>* names, const std::string& name) {
  for (const std::string& n : *names) {
    if (n == name) return;
  }
  names->push_back(name);
}

// Collect parameter names: bare identifiers (scalar holes), indexed
// identifiers (array-element holes), and __sigfield arguments (identifier
// holes). Matches what the template parser / rewriter can produce.
void CollectExprParams(const NodePtr& node, std::vector<std::string>* out) {
  if (!node) return;
  switch (node->kind) {
    case NodeKind::kIdentifier:
      if (node->name != "datum") AddUnique(out, node->name);
      return;
    case NodeKind::kMember:
      // datum.<col> is a column reference, not a parameter.
      if (node->a && node->a->kind == NodeKind::kIdentifier &&
          node->a->name == "datum") {
        return;
      }
      break;
    default:
      break;
  }
  CollectExprParams(node->a, out);
  CollectExprParams(node->b, out);
  CollectExprParams(node->c, out);
  for (const NodePtr& arg : node->args) CollectExprParams(arg, out);
}

void CollectStmtParams(const SelectStmt& stmt, std::vector<std::string>* out) {
  for (const SelectItem& item : stmt.items) {
    CollectExprParams(item.expr, out);
    CollectExprParams(item.agg_arg, out);
    CollectExprParams(item.window.arg, out);
    for (const NodePtr& p : item.window.partition_by) CollectExprParams(p, out);
    for (const OrderItem& o : item.window.order_by) CollectExprParams(o.expr, out);
  }
  CollectExprParams(stmt.where, out);
  for (const NodePtr& g : stmt.group_by) CollectExprParams(g, out);
  CollectExprParams(stmt.having, out);
  for (const OrderItem& o : stmt.order_by) CollectExprParams(o.expr, out);
  if (stmt.from.subquery) CollectStmtParams(*stmt.from.subquery, out);
}

// The legacy path renders bound values as SQL literal text and reparses;
// the reparse turns every numeric into a double literal. Mirror that here
// so bound execution stays bit-identical to fill-and-parse.
data::Value NormalizeBoundLiteral(const data::Value& v) {
  switch (v.type()) {
    case data::DataType::kInt64:
    case data::DataType::kFloat64:
    case data::DataType::kTimestamp:
      return data::Value::Double(v.AsDouble());
    default:
      return v;
  }
}

class Binder {
 public:
  explicit Binder(const expr::SignalResolver& params) : params_(params) {}

  Status status() const { return status_; }

  NodePtr BindExpr(const NodePtr& node) {
    if (!node || !status_.ok()) return node;
    switch (node->kind) {
      case NodeKind::kIdentifier: {
        if (node->name == "datum") return node;
        EvalValue v;
        if (!params_.Lookup(node->name, &v)) {
          status_ = Status::KeyError("bind: unresolved parameter '" + node->name + "'");
          return node;
        }
        if (v.is_array()) {
          status_ = Status::TypeError("bind: array parameter '" + node->name +
                                      "' used without index");
          return node;
        }
        return Node::Literal(NormalizeBoundLiteral(v.scalar()));
      }
      case NodeKind::kIndex: {
        // ${name[i]}: indexed parameter with a literal integer index.
        if (node->a && node->a->kind == NodeKind::kIdentifier &&
            node->a->name != "datum" && node->b &&
            node->b->kind == NodeKind::kLiteral && node->b->literal.is_numeric()) {
          EvalValue v;
          if (!params_.Lookup(node->a->name, &v)) {
            status_ =
                Status::KeyError("bind: unresolved parameter '" + node->a->name + "'");
            return node;
          }
          size_t idx = static_cast<size_t>(node->b->literal.AsDouble());
          return Node::Literal(NormalizeBoundLiteral(v.At(idx)));
        }
        break;
      }
      case NodeKind::kCall: {
        // ${name:id}: the parameter's string value is a column *name*.
        if (node->name == "__sigfield" && node->args.size() == 1 && node->args[0] &&
            node->args[0]->kind == NodeKind::kIdentifier) {
          const std::string& pname = node->args[0]->name;
          EvalValue v;
          if (!params_.Lookup(pname, &v)) {
            status_ = Status::KeyError("bind: unresolved parameter '" + pname + "'");
            return node;
          }
          if (v.is_array() || !v.scalar().is_string()) {
            status_ = Status::TypeError("bind: identifier parameter '" + pname +
                                        "' needs a string value");
            return node;
          }
          return Node::Member(Node::Identifier("datum"), v.scalar().AsString());
        }
        break;
      }
      default:
        break;
    }
    // Rebuild children only when something below changed (structural sharing).
    bool changed = false;
    auto visit = [&](const NodePtr& child) {
      NodePtr out = BindExpr(child);
      if (out != child) changed = true;
      return out;
    };
    auto copy = std::make_shared<Node>(*node);
    copy->a = visit(node->a);
    copy->b = visit(node->b);
    copy->c = visit(node->c);
    for (size_t i = 0; i < copy->args.size(); ++i) copy->args[i] = visit(node->args[i]);
    return changed ? NodePtr(copy) : node;
  }

 private:
  const expr::SignalResolver& params_;
  Status status_;
};

}  // namespace

Result<PreparedPtr> PrepareStatement(const std::string& sql_template) {
  VP_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSqlTemplate(sql_template));
  auto prepared = std::make_shared<PreparedStatement>();
  prepared->stmt = stmt;
  CollectStmtParams(*stmt, &prepared->params);
  prepared->canonical_sql = ToSql(*stmt);
  return PreparedPtr(prepared);
}

Result<SelectPtr> BindStatement(const SelectStmt& stmt,
                                const expr::SignalResolver& params) {
  Binder binder(params);
  auto bound = std::make_shared<SelectStmt>(stmt);
  for (SelectItem& item : bound->items) {
    item.expr = binder.BindExpr(item.expr);
    item.agg_arg = binder.BindExpr(item.agg_arg);
    item.window.arg = binder.BindExpr(item.window.arg);
    for (NodePtr& p : item.window.partition_by) p = binder.BindExpr(p);
    for (OrderItem& o : item.window.order_by) o.expr = binder.BindExpr(o.expr);
  }
  bound->where = binder.BindExpr(bound->where);
  for (NodePtr& g : bound->group_by) g = binder.BindExpr(g);
  bound->having = binder.BindExpr(bound->having);
  for (OrderItem& o : bound->order_by) o.expr = binder.BindExpr(o.expr);
  if (bound->from.subquery) {
    VP_ASSIGN_OR_RETURN(bound->from.subquery, BindStatement(*bound->from.subquery, params));
  }
  VP_RETURN_IF_ERROR(binder.status());
  return SelectPtr(bound);
}

}  // namespace sql
}  // namespace vegaplus
