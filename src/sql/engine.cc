#include "sql/engine.h"

namespace vegaplus {
namespace sql {

Result<QueryResult> Engine::Query(const std::string& sql_text,
                                  const common::QueryContext* ctx) const {
  VP_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSql(sql_text));
  return Execute(*stmt, ctx);
}

Result<QueryResult> Engine::Execute(const SelectStmt& stmt,
                                    const common::QueryContext* ctx) const {
  QueryResult result;
  Result<data::TablePtr> table = ExecuteSelect(stmt, catalog_, &result.stats, ctx);
  // Accumulate even on failure: a cancelled scan's partial rows_scanned is
  // the observable evidence that workers were reclaimed mid-flight.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lifetime_stats_.Add(result.stats);
  }
  VP_RETURN_IF_ERROR(table.status());
  result.table = std::move(*table);
  return result;
}

Result<QueryResult> Engine::ExecuteBound(const PreparedStatement& prepared,
                                         const expr::SignalResolver& params,
                                         const common::QueryContext* ctx) const {
  VP_ASSIGN_OR_RETURN(SelectPtr bound, BindStatement(*prepared.stmt, params));
  return Execute(*bound, ctx);
}

Result<EstimatedPlan> Engine::Explain(const std::string& sql_text) const {
  VP_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSql(sql_text));
  return EstimateSelect(*stmt, catalog_);
}

}  // namespace sql
}  // namespace vegaplus
