#include "sql/engine.h"

namespace vegaplus {
namespace sql {

Result<QueryResult> Engine::Query(const std::string& sql_text) const {
  VP_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSql(sql_text));
  return Execute(*stmt);
}

Result<QueryResult> Engine::Execute(const SelectStmt& stmt) const {
  QueryResult result;
  VP_ASSIGN_OR_RETURN(result.table, ExecuteSelect(stmt, catalog_, &result.stats));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    lifetime_stats_.Add(result.stats);
  }
  return result;
}

Result<QueryResult> Engine::ExecuteBound(const PreparedStatement& prepared,
                                         const expr::SignalResolver& params) const {
  VP_ASSIGN_OR_RETURN(SelectPtr bound, BindStatement(*prepared.stmt, params));
  return Execute(*bound);
}

Result<EstimatedPlan> Engine::Explain(const std::string& sql_text) const {
  VP_ASSIGN_OR_RETURN(SelectPtr stmt, ParseSql(sql_text));
  return EstimateSelect(*stmt, catalog_);
}

}  // namespace sql
}  // namespace vegaplus
