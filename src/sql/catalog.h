// Catalog: the named tables registered with the SQL engine, plus the
// statistics the EXPLAIN estimator and the workload simulator consume.
#ifndef VEGAPLUS_SQL_CATALOG_H_
#define VEGAPLUS_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "data/stats.h"
#include "data/table.h"
#include "storage/reader.h"

namespace vegaplus {
namespace sql {

/// \brief Table registry with per-table statistics.
///
/// Tables come in two flavors: in-memory (a TablePtr pinned by the entry)
/// and shard-backed (a storage::Reader over an on-disk columnar shard;
/// chunks page in on demand and the WHERE path prunes them by zone map
/// before decode). Both answer GetTable with a plain table, so every
/// consumer downstream of the scan is storage-agnostic.
class Catalog {
 public:
  /// Register (or replace) a table; computes stats with one full scan.
  void RegisterTable(const std::string& name, data::TablePtr table);

  /// Register (or replace) a shard-backed table. Stats come from one full
  /// materializing scan, which is then evicted so registration does not pin
  /// the whole shard in memory.
  Status RegisterShardTable(const std::string& name,
                            std::shared_ptr<storage::Reader> shard);

  /// Drop a table; no-op if absent.
  void DropTable(const std::string& name);

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }

  /// The whole table. Shard-backed entries materialize every chunk (built
  /// fresh per call; only chunks are cached, under the reader's budget).
  Result<data::TablePtr> GetTable(const std::string& name) const;

  /// The shard reader behind `name`, or nullptr for in-memory tables and
  /// unknown names — the scan path branches on this to push predicates down.
  std::shared_ptr<storage::Reader> GetShard(const std::string& name) const;

  /// Stats for `name`; nullptr if unknown.
  const data::TableStats* GetStats(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  struct Entry {
    data::TablePtr table;                     // in-memory entries
    std::shared_ptr<storage::Reader> shard;   // shard-backed entries
    data::TableStats stats;
  };
  std::map<std::string, Entry> tables_;
};

}  // namespace sql
}  // namespace vegaplus

#endif  // VEGAPLUS_SQL_CATALOG_H_
