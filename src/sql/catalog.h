// Catalog: the named tables registered with the SQL engine, plus the
// statistics the EXPLAIN estimator and the workload simulator consume.
#ifndef VEGAPLUS_SQL_CATALOG_H_
#define VEGAPLUS_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "data/stats.h"
#include "data/table.h"

namespace vegaplus {
namespace sql {

/// \brief Table registry with per-table statistics.
class Catalog {
 public:
  /// Register (or replace) a table; computes stats with one full scan.
  void RegisterTable(const std::string& name, data::TablePtr table);

  /// Drop a table; no-op if absent.
  void DropTable(const std::string& name);

  bool HasTable(const std::string& name) const { return tables_.count(name) > 0; }

  Result<data::TablePtr> GetTable(const std::string& name) const;

  /// Stats for `name`; nullptr if unknown.
  const data::TableStats* GetStats(const std::string& name) const;

  std::vector<std::string> TableNames() const;

 private:
  struct Entry {
    data::TablePtr table;
    data::TableStats stats;
  };
  std::map<std::string, Entry> tables_;
};

}  // namespace sql
}  // namespace vegaplus

#endif  // VEGAPLUS_SQL_CATALOG_H_
