#include "sql/sql_parser.h"

#include <cctype>
#include <unordered_map>

#include "common/str_util.h"
#include "expr/functions.h"

namespace vegaplus {
namespace sql {

namespace {

using expr::BinaryOp;
using expr::Node;
using expr::NodePtr;
using expr::UnaryOp;

enum class TokKind { kIdent, kQuotedIdent, kNumber, kString, kPunct, kHole, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // for kHole: the inner text, e.g. "brush[0]" or "field:id"
  double number = 0;
};

Status Tokenize(std::string_view text, bool allow_holes, std::vector<Token>* out) {
  size_t pos = 0;
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (allow_holes && c == '$' && pos + 1 < text.size() && text[pos + 1] == '{') {
      size_t end = text.find('}', pos);
      if (end == std::string_view::npos) {
        return Status::ParseError("SQL: unterminated template hole");
      }
      out->push_back({TokKind::kHole, std::string(text.substr(pos + 2, end - pos - 2)), 0});
      pos = end + 1;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      size_t start = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) || text[pos] == '.' ||
              ((text[pos] == '+' || text[pos] == '-') &&
               (text[pos - 1] == 'e' || text[pos - 1] == 'E')))) {
        ++pos;
      }
      Token t{TokKind::kNumber, std::string(text.substr(start, pos - start)), 0};
      if (!ParseDouble(t.text, &t.number)) {
        return Status::ParseError("SQL: bad number '" + t.text + "'");
      }
      out->push_back(std::move(t));
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos;
      while (pos < text.size() && (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                                   text[pos] == '_')) {
        ++pos;
      }
      out->push_back({TokKind::kIdent, std::string(text.substr(start, pos - start)), 0});
    } else if (c == '\'') {
      ++pos;
      std::string s;
      while (true) {
        if (pos >= text.size()) return Status::ParseError("SQL: unterminated string");
        if (text[pos] == '\'') {
          if (pos + 1 < text.size() && text[pos + 1] == '\'') {
            s.push_back('\'');
            pos += 2;
          } else {
            ++pos;
            break;
          }
        } else {
          s.push_back(text[pos++]);
        }
      }
      out->push_back({TokKind::kString, std::move(s), 0});
    } else if (c == '"') {
      ++pos;
      std::string s;
      while (true) {
        if (pos >= text.size()) return Status::ParseError("SQL: unterminated identifier");
        if (text[pos] == '"') {
          if (pos + 1 < text.size() && text[pos + 1] == '"') {
            s.push_back('"');
            pos += 2;
          } else {
            ++pos;
            break;
          }
        } else {
          s.push_back(text[pos++]);
        }
      }
      out->push_back({TokKind::kQuotedIdent, std::move(s), 0});
    } else {
      static const char* kTwo[] = {"<>", "!=", "<=", ">="};
      std::string_view rest = text.substr(pos);
      std::string match;
      for (const char* p : kTwo) {
        if (StartsWith(rest, p)) {
          match = p;
          break;
        }
      }
      if (match.empty()) {
        static const std::string kSingles = "+-*/%<>=(),.;";
        if (kSingles.find(c) == std::string::npos) {
          return Status::ParseError(StrFormat("SQL: unexpected character '%c'", c));
        }
        match = std::string(1, c);
      }
      pos += match.size();
      out->push_back({TokKind::kPunct, std::move(match), 0});
    }
  }
  out->push_back({TokKind::kEnd, "", 0});
  return Status::OK();
}

// SQL function name -> expression-kernel function name.
const std::unordered_map<std::string, std::string>& ScalarFunctionMap() {
  static const auto* kMap = new std::unordered_map<std::string, std::string>{
      {"ABS", "abs"},       {"CEIL", "ceil"},     {"CEILING", "ceil"},
      {"FLOOR", "floor"},   {"ROUND", "round"},   {"SQRT", "sqrt"},
      {"POW", "pow"},       {"POWER", "pow"},     {"EXP", "exp"},
      {"LN", "log"},        {"LOG", "log"},       {"LEAST", "min"},
      {"GREATEST", "max"},  {"LENGTH", "length"}, {"LOWER", "lower"},
      {"UPPER", "upper"},   {"YEAR", "year"},     {"MONTH", "month"},
      {"DAY", "date"},      {"DAYOFWEEK", "day"}, {"HOUR", "hours"},
      {"MINUTE", "minutes"},{"SECOND", "seconds"},{"DATE_TRUNC", "date_trunc"},
      {"DATE_UNIT_END", "date_unit_end"},
  };
  return *kMap;
}

bool LookupAggOp(const std::string& upper_name, AggOp* op) {
  if (upper_name == "COUNT") *op = AggOp::kCount;
  else if (upper_name == "SUM") *op = AggOp::kSum;
  else if (upper_name == "AVG" || upper_name == "MEAN") *op = AggOp::kAvg;
  else if (upper_name == "MIN") *op = AggOp::kMin;
  else if (upper_name == "MAX") *op = AggOp::kMax;
  else if (upper_name == "MEDIAN") *op = AggOp::kMedian;
  else if (upper_name == "STDDEV" || upper_name == "STDEV") *op = AggOp::kStddev;
  else if (upper_name == "VARIANCE") *op = AggOp::kVariance;
  else return false;
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectPtr> ParseStatement() {
    SelectPtr stmt;
    VP_RETURN_IF_ERROR(ParseSelect(&stmt));
    MatchPunct(";");
    if (Cur().kind != TokKind::kEnd) {
      return Status::ParseError("SQL: trailing tokens at '" + Cur().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t n) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool MatchPunct(std::string_view p) {
    if (Cur().kind == TokKind::kPunct && Cur().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectPunct(std::string_view p) {
    if (!MatchPunct(p)) {
      return Status::ParseError(StrFormat("SQL: expected '%.*s', found '%s'",
                                          static_cast<int>(p.size()), p.data(),
                                          Cur().text.c_str()));
    }
    return Status::OK();
  }

  bool PeekKeyword(std::string_view kw) const {
    return Cur().kind == TokKind::kIdent && EqualsIgnoreCase(Cur().text, kw);
  }

  bool MatchKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError(StrFormat("SQL: expected %.*s, found '%s'",
                                          static_cast<int>(kw.size()), kw.data(),
                                          Cur().text.c_str()));
    }
    return Status::OK();
  }

  // Keywords that terminate an aliasable element.
  bool PeekTerminator() const {
    if (Cur().kind == TokKind::kEnd) return true;
    if (Cur().kind == TokKind::kPunct) return true;
    static const char* kKw[] = {"FROM",  "WHERE", "GROUP", "HAVING", "ORDER",
                                "LIMIT", "OFFSET", "AS",    "ASC",    "DESC",
                                "AND",   "OR"};
    for (const char* k : kKw) {
      if (PeekKeyword(k)) return true;
    }
    return false;
  }

  Status ParseSelect(SelectPtr* out) {
    auto stmt = std::make_shared<SelectStmt>();
    VP_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    while (true) {
      SelectItem item;
      VP_RETURN_IF_ERROR(ParseSelectItem(&item));
      stmt->items.push_back(std::move(item));
      if (!MatchPunct(",")) break;
    }
    VP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    VP_RETURN_IF_ERROR(ParseTableRef(&stmt->from));
    if (MatchKeyword("WHERE")) {
      VP_RETURN_IF_ERROR(ParseExpr(&stmt->where));
    }
    if (MatchKeyword("GROUP")) {
      VP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        NodePtr e;
        VP_RETURN_IF_ERROR(ParseExpr(&e));
        stmt->group_by.push_back(std::move(e));
        if (!MatchPunct(",")) break;
      }
    }
    if (MatchKeyword("HAVING")) {
      VP_RETURN_IF_ERROR(ParseExpr(&stmt->having));
    }
    if (MatchKeyword("ORDER")) {
      VP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        VP_RETURN_IF_ERROR(ParseExpr(&item.expr));
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!MatchPunct(",")) break;
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (Cur().kind != TokKind::kNumber) return Status::ParseError("SQL: LIMIT needs a number");
      stmt->limit = static_cast<int64_t>(Cur().number);
      ++pos_;
    }
    if (MatchKeyword("OFFSET")) {
      if (Cur().kind != TokKind::kNumber) return Status::ParseError("SQL: OFFSET needs a number");
      stmt->offset = static_cast<int64_t>(Cur().number);
      ++pos_;
    }
    *out = std::move(stmt);
    return Status::OK();
  }

  Status ParseSelectItem(SelectItem* item) {
    if (MatchPunct("*")) {
      item->kind = SelectItem::Kind::kStar;
      return Status::OK();
    }
    // Aggregate / window function at the top of the item?
    if (Cur().kind == TokKind::kIdent && Ahead(1).kind == TokKind::kPunct &&
        Ahead(1).text == "(") {
      std::string upper = ToUpper(Cur().text);
      AggOp op;
      if (upper == "ROW_NUMBER") {
        pos_ += 2;
        VP_RETURN_IF_ERROR(ExpectPunct(")"));
        VP_RETURN_IF_ERROR(ExpectKeyword("OVER"));
        item->kind = SelectItem::Kind::kWindow;
        item->window.op = WindowOp::kRowNumber;
        VP_RETURN_IF_ERROR(ParseWindowSpec(&item->window));
        VP_RETURN_IF_ERROR(ParseAlias(&item->alias));
        return Status::OK();
      }
      if (LookupAggOp(upper, &op)) {
        pos_ += 2;
        NodePtr arg;
        if (MatchPunct("*")) {
          if (op != AggOp::kCount) {
            return Status::ParseError("SQL: '*' argument only valid for COUNT");
          }
        } else {
          VP_RETURN_IF_ERROR(ParseExpr(&arg));
        }
        VP_RETURN_IF_ERROR(ExpectPunct(")"));
        if (MatchKeyword("OVER")) {
          if (op != AggOp::kSum) {
            return Status::ParseError("SQL: only SUM(...) OVER is supported");
          }
          item->kind = SelectItem::Kind::kWindow;
          item->window.op = WindowOp::kSum;
          item->window.arg = arg;
          VP_RETURN_IF_ERROR(ParseWindowSpec(&item->window));
        } else {
          item->kind = SelectItem::Kind::kAggregate;
          item->agg_op = op;
          item->agg_arg = arg;
        }
        VP_RETURN_IF_ERROR(ParseAlias(&item->alias));
        return Status::OK();
      }
    }
    item->kind = SelectItem::Kind::kExpr;
    VP_RETURN_IF_ERROR(ParseExpr(&item->expr));
    return ParseAlias(&item->alias);
  }

  Status ParseAlias(std::string* alias) {
    if (MatchKeyword("AS")) {
      if (Cur().kind != TokKind::kIdent && Cur().kind != TokKind::kQuotedIdent) {
        return Status::ParseError("SQL: expected alias after AS");
      }
      *alias = Cur().text;
      ++pos_;
      return Status::OK();
    }
    // Bare alias (identifier that is not a clause keyword).
    if ((Cur().kind == TokKind::kIdent && !PeekTerminator()) ||
        Cur().kind == TokKind::kQuotedIdent) {
      *alias = Cur().text;
      ++pos_;
    }
    return Status::OK();
  }

  Status ParseWindowSpec(WindowSpec* win) {
    VP_RETURN_IF_ERROR(ExpectPunct("("));
    if (MatchKeyword("PARTITION")) {
      VP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        NodePtr e;
        VP_RETURN_IF_ERROR(ParseExpr(&e));
        win->partition_by.push_back(std::move(e));
        if (!MatchPunct(",")) break;
      }
    }
    if (MatchKeyword("ORDER")) {
      VP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        VP_RETURN_IF_ERROR(ParseExpr(&item.expr));
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        win->order_by.push_back(std::move(item));
        if (!MatchPunct(",")) break;
      }
    }
    return ExpectPunct(")");
  }

  Status ParseTableRef(TableRef* ref) {
    if (MatchPunct("(")) {
      SelectPtr sub;
      VP_RETURN_IF_ERROR(ParseSelect(&sub));
      VP_RETURN_IF_ERROR(ExpectPunct(")"));
      ref->subquery = std::move(sub);
    } else if (Cur().kind == TokKind::kIdent || Cur().kind == TokKind::kQuotedIdent) {
      ref->table_name = Cur().text;
      ++pos_;
    } else {
      return Status::ParseError("SQL: expected table name or subquery in FROM");
    }
    return ParseAlias(&ref->alias);
  }

  // ---- Expressions ----

  Status ParseExpr(NodePtr* out) { return ParseOr(out); }

  Status ParseOr(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseAnd(out));
    while (MatchKeyword("OR")) {
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseAnd(&rhs));
      *out = Node::Binary(BinaryOp::kOr, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseAnd(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseNot(out));
    while (MatchKeyword("AND")) {
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseNot(&rhs));
      *out = Node::Binary(BinaryOp::kAnd, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseNot(NodePtr* out) {
    if (MatchKeyword("NOT")) {
      NodePtr inner;
      VP_RETURN_IF_ERROR(ParseNot(&inner));
      *out = Node::Unary(UnaryOp::kNot, inner);
      return Status::OK();
    }
    return ParsePredicate(out);
  }

  Status ParsePredicate(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseAdditive(out));
    // Comparison chain.
    if (Cur().kind == TokKind::kPunct) {
      BinaryOp op;
      bool matched = true;
      if (Cur().text == "=") op = BinaryOp::kEq;
      else if (Cur().text == "<>" || Cur().text == "!=") op = BinaryOp::kNeq;
      else if (Cur().text == "<") op = BinaryOp::kLt;
      else if (Cur().text == "<=") op = BinaryOp::kLte;
      else if (Cur().text == ">") op = BinaryOp::kGt;
      else if (Cur().text == ">=") op = BinaryOp::kGte;
      else matched = false;
      if (matched) {
        ++pos_;
        NodePtr rhs;
        VP_RETURN_IF_ERROR(ParseAdditive(&rhs));
        *out = Node::Binary(op, *out, rhs);
        return Status::OK();
      }
    }
    if (PeekKeyword("IS")) {
      ++pos_;
      bool negated = MatchKeyword("NOT");
      VP_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      NodePtr valid = Node::Call("isValid", {*out});
      *out = negated ? valid : Node::Unary(UnaryOp::kNot, valid);
      return Status::OK();
    }
    bool negated = false;
    if (PeekKeyword("NOT") &&
        (EqualsIgnoreCase(Ahead(1).text, "BETWEEN") ||
         EqualsIgnoreCase(Ahead(1).text, "IN"))) {
      negated = true;
      ++pos_;
    }
    if (MatchKeyword("BETWEEN")) {
      NodePtr lo, hi;
      VP_RETURN_IF_ERROR(ParseAdditive(&lo));
      VP_RETURN_IF_ERROR(ExpectKeyword("AND"));
      VP_RETURN_IF_ERROR(ParseAdditive(&hi));
      NodePtr cond = Node::Binary(BinaryOp::kAnd,
                                  Node::Binary(BinaryOp::kGte, *out, lo),
                                  Node::Binary(BinaryOp::kLte, *out, hi));
      *out = negated ? Node::Unary(UnaryOp::kNot, cond) : cond;
      return Status::OK();
    }
    if (MatchKeyword("IN")) {
      VP_RETURN_IF_ERROR(ExpectPunct("("));
      NodePtr cond;
      while (true) {
        NodePtr item;
        VP_RETURN_IF_ERROR(ParseAdditive(&item));
        NodePtr eq = Node::Binary(BinaryOp::kEq, *out, item);
        cond = cond ? Node::Binary(BinaryOp::kOr, cond, eq) : eq;
        if (!MatchPunct(",")) break;
      }
      VP_RETURN_IF_ERROR(ExpectPunct(")"));
      *out = negated ? Node::Unary(UnaryOp::kNot, cond) : cond;
      return Status::OK();
    }
    return Status::OK();
  }

  Status ParseAdditive(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseMultiplicative(out));
    while (Cur().kind == TokKind::kPunct && (Cur().text == "+" || Cur().text == "-")) {
      BinaryOp op = Cur().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      ++pos_;
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseMultiplicative(&rhs));
      *out = Node::Binary(op, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseMultiplicative(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseUnary(out));
    while (Cur().kind == TokKind::kPunct &&
           (Cur().text == "*" || Cur().text == "/" || Cur().text == "%")) {
      BinaryOp op = Cur().text == "*"   ? BinaryOp::kMul
                    : Cur().text == "/" ? BinaryOp::kDiv
                                        : BinaryOp::kMod;
      ++pos_;
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseUnary(&rhs));
      *out = Node::Binary(op, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseUnary(NodePtr* out) {
    if (Cur().kind == TokKind::kPunct && Cur().text == "-") {
      ++pos_;
      NodePtr inner;
      VP_RETURN_IF_ERROR(ParseUnary(&inner));
      *out = Node::Unary(UnaryOp::kNeg, inner);
      return Status::OK();
    }
    return ParsePrimary(out);
  }

  Status ParsePrimary(NodePtr* out) {
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kNumber:
        *out = Node::Literal(data::Value::Double(t.number));
        ++pos_;
        return Status::OK();
      case TokKind::kString:
        *out = Node::Literal(data::Value::String(t.text));
        ++pos_;
        return Status::OK();
      case TokKind::kQuotedIdent:
        *out = Node::Member(Node::Identifier("datum"), t.text);
        ++pos_;
        return Status::OK();
      case TokKind::kIdent: {
        if (MatchKeyword("TRUE")) {
          *out = Node::Literal(data::Value::Bool(true));
          return Status::OK();
        }
        if (MatchKeyword("FALSE")) {
          *out = Node::Literal(data::Value::Bool(false));
          return Status::OK();
        }
        if (MatchKeyword("NULL")) {
          *out = Node::Literal(data::Value::Null());
          return Status::OK();
        }
        if (PeekKeyword("CASE")) return ParseCase(out);
        // Function call?
        if (Ahead(1).kind == TokKind::kPunct && Ahead(1).text == "(") {
          std::string upper = ToUpper(t.text);
          if (upper == "MOD") {
            pos_ += 2;
            NodePtr a, b;
            VP_RETURN_IF_ERROR(ParseExpr(&a));
            VP_RETURN_IF_ERROR(ExpectPunct(","));
            VP_RETURN_IF_ERROR(ParseExpr(&b));
            VP_RETURN_IF_ERROR(ExpectPunct(")"));
            *out = Node::Binary(BinaryOp::kMod, a, b);
            return Status::OK();
          }
          auto it = ScalarFunctionMap().find(upper);
          if (it == ScalarFunctionMap().end()) {
            AggOp dummy;
            if (LookupAggOp(upper, &dummy)) {
              return Status::ParseError("SQL: aggregate '" + t.text +
                                        "' not allowed in scalar expression");
            }
            return Status::ParseError("SQL: unknown function '" + t.text + "'");
          }
          pos_ += 2;
          std::vector<NodePtr> args;
          if (!MatchPunct(")")) {
            while (true) {
              NodePtr arg;
              VP_RETURN_IF_ERROR(ParseExpr(&arg));
              args.push_back(std::move(arg));
              if (MatchPunct(")")) break;
              VP_RETURN_IF_ERROR(ExpectPunct(","));
            }
          }
          *out = Node::Call(it->second, std::move(args));
          return Status::OK();
        }
        // Column reference, possibly table-qualified (qualifier ignored:
        // single-input queries only).
        std::string name = t.text;
        ++pos_;
        if (MatchPunct(".")) {
          if (Cur().kind != TokKind::kIdent && Cur().kind != TokKind::kQuotedIdent) {
            return Status::ParseError("SQL: expected column after '.'");
          }
          name = Cur().text;
          ++pos_;
        }
        *out = Node::Member(Node::Identifier("datum"), name);
        return Status::OK();
      }
      case TokKind::kPunct:
        if (t.text == "(") {
          ++pos_;
          VP_RETURN_IF_ERROR(ParseExpr(out));
          return ExpectPunct(")");
        }
        return Status::ParseError("SQL: unexpected token '" + t.text + "'");
      case TokKind::kHole:
        return ParseHole(out);
      case TokKind::kEnd:
        return Status::ParseError("SQL: unexpected end of statement");
    }
    return Status::ParseError("SQL: unreachable");
  }

  // Template holes, lexed as one token. The produced AST shapes deliberately
  // match what the rewriter builds for signal references, so templates and
  // rewriter pipelines share one binding + unparse path:
  //   ${name}     -> Identifier(name)          (scalar parameter)
  //   ${name[i]}  -> Index(Identifier(name), i) (array-element parameter)
  //   ${name:id}  -> __sigfield(name)           (parameter-named column)
  Status ParseHole(NodePtr* out) {
    std::string inner = Cur().text;
    ++pos_;
    bool as_identifier = false;
    if (EndsWith(inner, ":id")) {
      as_identifier = true;
      inner = inner.substr(0, inner.size() - 3);
    }
    int64_t index = -1;
    size_t bracket = inner.find('[');
    if (bracket != std::string::npos) {
      size_t close = inner.find(']', bracket);
      if (close == std::string::npos ||
          !ParseInt64(inner.substr(bracket + 1, close - bracket - 1), &index) ||
          index < 0) {
        return Status::ParseError("SQL: bad hole index in '${" + inner + "}'");
      }
      inner = inner.substr(0, bracket);
    }
    if (inner.empty()) return Status::ParseError("SQL: empty template hole");
    if (as_identifier) {
      if (index >= 0) {
        return Status::ParseError("SQL: hole cannot be both indexed and :id");
      }
      *out = Node::Call("__sigfield", {Node::Identifier(inner)});
      return Status::OK();
    }
    if (index >= 0) {
      *out = Node::Index(Node::Identifier(inner),
                         Node::Literal(data::Value::Double(static_cast<double>(index))));
      return Status::OK();
    }
    *out = Node::Identifier(inner);
    return Status::OK();
  }

  Status ParseCase(NodePtr* out) {
    VP_RETURN_IF_ERROR(ExpectKeyword("CASE"));
    struct Arm {
      NodePtr cond, value;
    };
    std::vector<Arm> arms;
    while (MatchKeyword("WHEN")) {
      Arm arm;
      VP_RETURN_IF_ERROR(ParseExpr(&arm.cond));
      VP_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      VP_RETURN_IF_ERROR(ParseExpr(&arm.value));
      arms.push_back(std::move(arm));
    }
    if (arms.empty()) return Status::ParseError("SQL: CASE without WHEN");
    NodePtr else_value = Node::Literal(data::Value::Null());
    if (MatchKeyword("ELSE")) {
      VP_RETURN_IF_ERROR(ParseExpr(&else_value));
    }
    VP_RETURN_IF_ERROR(ExpectKeyword("END"));
    NodePtr result = else_value;
    for (auto it = arms.rbegin(); it != arms.rend(); ++it) {
      result = Node::Ternary(it->cond, it->value, result);
    }
    *out = std::move(result);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectPtr> ParseSql(std::string_view text) {
  std::vector<Token> tokens;
  VP_RETURN_IF_ERROR(Tokenize(text, /*allow_holes=*/false, &tokens));
  return Parser(std::move(tokens)).ParseStatement();
}

Result<SelectPtr> ParseSqlTemplate(std::string_view text) {
  std::vector<Token> tokens;
  VP_RETURN_IF_ERROR(Tokenize(text, /*allow_holes=*/true, &tokens));
  return Parser(std::move(tokens)).ParseStatement();
}

}  // namespace sql
}  // namespace vegaplus
