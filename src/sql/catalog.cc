#include "sql/catalog.h"

namespace vegaplus {
namespace sql {

void Catalog::RegisterTable(const std::string& name, data::TablePtr table) {
  Entry entry;
  entry.stats = data::ComputeTableStats(*table);
  entry.table = std::move(table);
  tables_[name] = std::move(entry);
}

Status Catalog::RegisterShardTable(const std::string& name,
                                   std::shared_ptr<storage::Reader> shard) {
  Entry entry;
  VP_ASSIGN_OR_RETURN(data::TablePtr all, shard->ReadAll());
  entry.stats = data::ComputeTableStats(*all);
  shard->EvictAll();
  entry.shard = std::move(shard);
  tables_[name] = std::move(entry);
  return Status::OK();
}

void Catalog::DropTable(const std::string& name) { tables_.erase(name); }

Result<data::TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("catalog: unknown table '" + name + "'");
  }
  if (it->second.shard != nullptr) return it->second.shard->ReadAll();
  return it->second.table;
}

std::shared_ptr<storage::Reader> Catalog::GetShard(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.shard;
}

const data::TableStats* Catalog::GetStats(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second.stats;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

}  // namespace sql
}  // namespace vegaplus
