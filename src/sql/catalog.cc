#include "sql/catalog.h"

namespace vegaplus {
namespace sql {

void Catalog::RegisterTable(const std::string& name, data::TablePtr table) {
  Entry entry;
  entry.stats = data::ComputeTableStats(*table);
  entry.table = std::move(table);
  tables_[name] = std::move(entry);
}

void Catalog::DropTable(const std::string& name) { tables_.erase(name); }

Result<data::TablePtr> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::KeyError("catalog: unknown table '" + name + "'");
  }
  return it->second.table;
}

const data::TableStats* Catalog::GetStats(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second.stats;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

}  // namespace sql
}  // namespace vegaplus
