// EXPLAIN-style cardinality and cost estimation. The paper's optimizer
// "leverages the DBMS explain command to estimate execution costs"; this is
// that command for the embedded engine. Estimates flow into plan feature
// vectors (anticipated execution costs / output cardinalities).
#ifndef VEGAPLUS_SQL_EXPLAIN_H_
#define VEGAPLUS_SQL_EXPLAIN_H_

#include "common/result.h"
#include "sql/catalog.h"
#include "sql/sql_ast.h"

namespace vegaplus {
namespace sql {

/// \brief Estimated execution profile of one statement.
struct EstimatedPlan {
  double input_rows = 0;   // rows scanned at the leaves
  double output_rows = 0;  // estimated result cardinality
  double cost = 0;         // abstract cost units (row touches)
};

/// Estimate `stmt`'s cardinality/cost from catalog statistics (never
/// executes). Unknown tables estimate as empty.
EstimatedPlan EstimateSelect(const SelectStmt& stmt, const Catalog& catalog);

/// Estimate the selectivity in [0,1] of a predicate over a table with the
/// given stats (nullptr stats -> generic defaults).
double EstimateSelectivity(const expr::NodePtr& predicate,
                           const data::TableStats* stats);

}  // namespace sql
}  // namespace vegaplus

#endif  // VEGAPLUS_SQL_EXPLAIN_H_
