// Prepared statements: parse a SQL template (with ${...} parameter holes)
// once, then bind parameter values per execution by substituting literals
// directly into a clone of the AST — no per-interaction lexing or parsing,
// and a canonical, formatting-insensitive statement identity.
//
// Binding semantics mirror expr::FillSqlHoles + reparse exactly (the legacy
// text path), including its errors: an unresolved name is a KeyError, an
// array value used without an index is a TypeError, and numeric values bind
// as doubles (the SQL parser produces double literals), so bound execution
// is bit-identical to the fill-and-parse path.
#ifndef VEGAPLUS_SQL_PREPARED_H_
#define VEGAPLUS_SQL_PREPARED_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/evaluator.h"
#include "sql/sql_ast.h"

namespace vegaplus {
namespace sql {

/// \brief A parsed SQL template plus its parameter metadata.
struct PreparedStatement {
  /// Template AST; parameter holes are signal-reference nodes.
  SelectPtr stmt;
  /// Distinct parameter (hole) names, first-seen order.
  std::vector<std::string> params;
  /// ToSql(*stmt): whitespace/formatting-insensitive identity of the
  /// statement. Two templates that unparse identically are the same
  /// statement (and share cache keys downstream).
  std::string canonical_sql;
};

using PreparedPtr = std::shared_ptr<const PreparedStatement>;

/// Parse `sql_template` into a PreparedStatement.
Result<PreparedPtr> PrepareStatement(const std::string& sql_template);

/// Substitute every parameter hole in `stmt` with a literal looked up in
/// `params`, returning a fully bound statement ready for execution.
/// Subtrees without holes are shared, not copied.
Result<SelectPtr> BindStatement(const SelectStmt& stmt,
                                const expr::SignalResolver& params);

}  // namespace sql
}  // namespace vegaplus

#endif  // VEGAPLUS_SQL_PREPARED_H_
