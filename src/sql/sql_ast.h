// SQL statement AST. Scalar expressions desugar into the *same* expression
// kernel as the Vega expression language (expr::Node): column references
// become `datum.<col>` member nodes, CASE becomes ternary, IS NULL becomes
// isValid(), BETWEEN expands to a conjunction. This guarantees that a Vega
// transform executed client-side and its SQL rewrite executed server-side
// agree on scalar semantics — the equivalence the paper's rewriter relies on.
#ifndef VEGAPLUS_SQL_SQL_AST_H_
#define VEGAPLUS_SQL_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/ast.h"

namespace vegaplus {
namespace sql {

/// Aggregate operators supported by the engine (superset of the Vega
/// aggregate transform ops the rewriter emits).
enum class AggOp {
  kCount,    // COUNT(*) or COUNT(x) (non-null)
  kSum,
  kAvg,
  kMin,
  kMax,
  kMedian,
  kStddev,
  kVariance,
};

const char* AggOpName(AggOp op);

/// Window function kinds (enough for the stack transform).
enum class WindowOp { kSum, kRowNumber };

struct SelectStmt;

struct OrderItem {
  expr::NodePtr expr;
  bool descending = false;
};

struct WindowSpec {
  WindowOp op = WindowOp::kSum;
  expr::NodePtr arg;  // null for ROW_NUMBER
  std::vector<expr::NodePtr> partition_by;
  std::vector<OrderItem> order_by;
};

/// One item of the SELECT list.
struct SelectItem {
  enum class Kind { kStar, kExpr, kAggregate, kWindow };
  Kind kind = Kind::kExpr;
  expr::NodePtr expr;      // kExpr
  AggOp agg_op = AggOp::kCount;  // kAggregate
  expr::NodePtr agg_arg;   // kAggregate: null == COUNT(*)
  WindowSpec window;       // kWindow
  std::string alias;       // output column name ("" -> derived)
};

/// FROM clause: a named table or a parenthesized subquery.
struct TableRef {
  std::string table_name;                  // empty when subquery
  std::shared_ptr<const SelectStmt> subquery;  // null when named table
  std::string alias;
};

/// A SELECT statement.
struct SelectStmt {
  std::vector<SelectItem> items;
  TableRef from;
  expr::NodePtr where;                 // nullable
  std::vector<expr::NodePtr> group_by;
  expr::NodePtr having;                // nullable
  std::vector<OrderItem> order_by;
  int64_t limit = -1;   // -1 == no limit
  int64_t offset = 0;
};

using SelectPtr = std::shared_ptr<const SelectStmt>;

/// Unparse a statement back to SQL text (used by the rewriter's flattening
/// rules and in tests; output re-parses to an equivalent statement).
std::string ToSql(const SelectStmt& stmt);

/// Unparse a scalar expression to SQL (columns unqualified).
std::string ExprToSql(const expr::NodePtr& node);

/// Derive the output column name of a select item (alias, else column name
/// for plain column refs, else op_field for aggregates, else a positional
/// name).
std::string DeriveItemName(const SelectItem& item, size_t position);

}  // namespace sql
}  // namespace vegaplus

#endif  // VEGAPLUS_SQL_SQL_AST_H_
