// Engine: the embedded DBMS facade (the PostgreSQL/DuckDB stand-in).
// Register tables, run SQL strings, ask for EXPLAIN estimates.
#ifndef VEGAPLUS_SQL_ENGINE_H_
#define VEGAPLUS_SQL_ENGINE_H_

#include <string>

#include "common/result.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/explain.h"
#include "sql/sql_parser.h"

namespace vegaplus {
namespace sql {

/// \brief Result of one query: the table plus the work counters the latency
/// model converts to simulated server time.
struct QueryResult {
  data::TablePtr table;
  ExecStats stats;
};

/// \brief Embedded SQL engine over the columnar table substrate.
class Engine {
 public:
  /// Register (or replace) a base table.
  void RegisterTable(const std::string& name, data::TablePtr table) {
    catalog_.RegisterTable(name, std::move(table));
  }

  const Catalog& catalog() const { return catalog_; }

  /// Parse and execute one SELECT.
  Result<QueryResult> Query(const std::string& sql_text) const;

  /// Execute an already-parsed statement.
  Result<QueryResult> Execute(const SelectStmt& stmt) const;

  /// Parse and estimate one SELECT without executing (EXPLAIN).
  Result<EstimatedPlan> Explain(const std::string& sql_text) const;

  /// Cumulative work counters across every query this engine has run.
  const ExecStats& lifetime_stats() const { return lifetime_stats_; }

 private:
  Catalog catalog_;
  mutable ExecStats lifetime_stats_;
};

}  // namespace sql
}  // namespace vegaplus

#endif  // VEGAPLUS_SQL_ENGINE_H_
