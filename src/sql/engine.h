// Engine: the embedded DBMS facade (the PostgreSQL/DuckDB stand-in).
// Register tables, run SQL strings, ask for EXPLAIN estimates.
#ifndef VEGAPLUS_SQL_ENGINE_H_
#define VEGAPLUS_SQL_ENGINE_H_

#include <mutex>
#include <string>

#include "common/result.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/explain.h"
#include "sql/prepared.h"
#include "sql/sql_parser.h"

namespace vegaplus {
namespace sql {

/// \brief Result of one query: the table plus the work counters the latency
/// model converts to simulated server time.
struct QueryResult {
  data::TablePtr table;
  ExecStats stats;
};

/// \brief Embedded SQL engine over the columnar table substrate.
class Engine {
 public:
  /// Register (or replace) a base table.
  void RegisterTable(const std::string& name, data::TablePtr table) {
    catalog_.RegisterTable(name, std::move(table));
  }

  /// Register (or replace) a shard-backed base table (storage::Reader over
  /// an on-disk columnar shard); scans page chunks in on demand and prune
  /// them by zone map against the WHERE clause.
  Status RegisterShardTable(const std::string& name,
                            std::shared_ptr<storage::Reader> shard) {
    return catalog_.RegisterShardTable(name, std::move(shard));
  }

  const Catalog& catalog() const { return catalog_; }

  /// Parse and execute one SELECT. `ctx` (optional, here and below) carries
  /// the cooperative cancellation token; a fired token aborts execution at
  /// the next morsel/chunk checkpoint with kCancelled/kDeadlineExceeded.
  /// Work counters for the stages that ran still accumulate into
  /// lifetime_stats(), so aborted scans report the rows they touched.
  Result<QueryResult> Query(const std::string& sql_text,
                            const common::QueryContext* ctx = nullptr) const;

  /// Execute an already-parsed statement.
  ///
  /// Thread-safe against concurrent Execute calls (the middleware runs DBMS
  /// work on a worker pool); RegisterTable must not race with execution.
  Result<QueryResult> Execute(const SelectStmt& stmt,
                              const common::QueryContext* ctx = nullptr) const;

  /// Parse a SQL template with ${...} parameter holes once; execute it many
  /// times with ExecuteBound. Statement identity (PreparedStatement::
  /// canonical_sql) is formatting-insensitive.
  Result<PreparedPtr> Prepare(const std::string& sql_template) const {
    return PrepareStatement(sql_template);
  }

  /// Bind `params` into `prepared` and execute — no SQL text is rendered or
  /// parsed on this path.
  Result<QueryResult> ExecuteBound(const PreparedStatement& prepared,
                                   const expr::SignalResolver& params,
                                   const common::QueryContext* ctx = nullptr) const;

  /// Parse and estimate one SELECT without executing (EXPLAIN).
  Result<EstimatedPlan> Explain(const std::string& sql_text) const;

  /// Cumulative work counters across every query this engine has run.
  ExecStats lifetime_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return lifetime_stats_;
  }

 private:
  Catalog catalog_;
  mutable std::mutex stats_mu_;
  mutable ExecStats lifetime_stats_;
};

}  // namespace sql
}  // namespace vegaplus

#endif  // VEGAPLUS_SQL_ENGINE_H_
