#include "sql/explain.h"

#include <algorithm>
#include <cmath>

namespace vegaplus {
namespace sql {

namespace {

using expr::BinaryOp;
using expr::NodeKind;
using expr::NodePtr;

// Default selectivities when statistics cannot decide (classic System-R
// style constants).
constexpr double kDefaultEq = 0.1;
constexpr double kDefaultRange = 0.33;
constexpr double kDefaultUnknown = 0.5;

const data::ColumnStats* ColumnOf(const NodePtr& node, const data::TableStats* stats) {
  if (stats == nullptr || !node) return nullptr;
  if (node->kind == NodeKind::kMember && node->a &&
      node->a->kind == NodeKind::kIdentifier && node->a->name == "datum") {
    return stats->Find(node->name);
  }
  return nullptr;
}

bool LiteralValue(const NodePtr& node, double* out) {
  if (node && node->kind == NodeKind::kLiteral && node->literal.is_numeric()) {
    *out = node->literal.AsDouble();
    return true;
  }
  return false;
}

double RangeSelectivity(const data::ColumnStats* cs, BinaryOp op, double bound) {
  if (cs == nullptr || !cs->has_extent || cs->max <= cs->min) return kDefaultRange;
  double frac = (bound - cs->min) / (cs->max - cs->min);
  frac = std::clamp(frac, 0.0, 1.0);
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLte:
      return frac;
    case BinaryOp::kGt:
    case BinaryOp::kGte:
      return 1.0 - frac;
    default:
      return kDefaultRange;
  }
}

}  // namespace

double EstimateSelectivity(const NodePtr& predicate, const data::TableStats* stats) {
  if (!predicate) return 1.0;
  switch (predicate->kind) {
    case NodeKind::kBinary: {
      switch (predicate->binary_op) {
        case BinaryOp::kAnd:
          return EstimateSelectivity(predicate->a, stats) *
                 EstimateSelectivity(predicate->b, stats);
        case BinaryOp::kOr: {
          double a = EstimateSelectivity(predicate->a, stats);
          double b = EstimateSelectivity(predicate->b, stats);
          return std::min(1.0, a + b - a * b);
        }
        case BinaryOp::kEq: {
          const data::ColumnStats* cs = ColumnOf(predicate->a, stats);
          if (cs == nullptr) cs = ColumnOf(predicate->b, stats);
          if (cs != nullptr && cs->distinct_count > 0) {
            return 1.0 / static_cast<double>(cs->distinct_count);
          }
          return kDefaultEq;
        }
        case BinaryOp::kNeq: {
          const data::ColumnStats* cs = ColumnOf(predicate->a, stats);
          if (cs != nullptr && cs->distinct_count > 0) {
            return 1.0 - 1.0 / static_cast<double>(cs->distinct_count);
          }
          return 1.0 - kDefaultEq;
        }
        case BinaryOp::kLt:
        case BinaryOp::kLte:
        case BinaryOp::kGt:
        case BinaryOp::kGte: {
          const data::ColumnStats* cs = ColumnOf(predicate->a, stats);
          double bound;
          if (cs != nullptr && LiteralValue(predicate->b, &bound)) {
            return RangeSelectivity(cs, predicate->binary_op, bound);
          }
          // column on the right: mirror the operator.
          cs = ColumnOf(predicate->b, stats);
          if (cs != nullptr && LiteralValue(predicate->a, &bound)) {
            BinaryOp mirrored;
            switch (predicate->binary_op) {
              case BinaryOp::kLt: mirrored = BinaryOp::kGt; break;
              case BinaryOp::kLte: mirrored = BinaryOp::kGte; break;
              case BinaryOp::kGt: mirrored = BinaryOp::kLt; break;
              default: mirrored = BinaryOp::kLte; break;
            }
            return RangeSelectivity(cs, mirrored, bound);
          }
          return kDefaultRange;
        }
        default:
          return kDefaultUnknown;
      }
    }
    case NodeKind::kUnary:
      if (predicate->unary_op == expr::UnaryOp::kNot) {
        return 1.0 - EstimateSelectivity(predicate->a, stats);
      }
      return kDefaultUnknown;
    case NodeKind::kCall: {
      if (predicate->name == "isValid") {
        const data::ColumnStats* cs = ColumnOf(predicate->args.empty() ? nullptr
                                                                       : predicate->args[0],
                                               stats);
        if (cs != nullptr && stats != nullptr && stats->num_rows > 0) {
          return 1.0 - static_cast<double>(cs->null_count) /
                           static_cast<double>(stats->num_rows);
        }
        return 0.9;
      }
      if (predicate->name == "inrange") return 0.25;
      return kDefaultUnknown;
    }
    case NodeKind::kLiteral:
      return predicate->literal.Truthy() ? 1.0 : 0.0;
    default:
      return kDefaultUnknown;
  }
}

EstimatedPlan EstimateSelect(const SelectStmt& stmt, const Catalog& catalog) {
  EstimatedPlan est;
  const data::TableStats* stats = nullptr;
  double input_rows = 0;
  if (stmt.from.subquery) {
    EstimatedPlan sub = EstimateSelect(*stmt.from.subquery, catalog);
    est.input_rows = sub.input_rows;
    est.cost += sub.cost;
    input_rows = sub.output_rows;
    // Statistics do not propagate through subqueries; fall back to defaults.
  } else {
    stats = catalog.GetStats(stmt.from.table_name);
    input_rows = stats != nullptr ? static_cast<double>(stats->num_rows) : 0.0;
    est.input_rows = input_rows;
    est.cost += input_rows;  // scan
  }

  double rows = input_rows;
  if (stmt.where) {
    est.cost += rows;
    rows *= EstimateSelectivity(stmt.where, stats);
  }

  const bool has_aggregates =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(), [](const SelectItem& i) {
        return i.kind == SelectItem::Kind::kAggregate;
      });

  if (has_aggregates) {
    est.cost += rows;  // hash-aggregate build
    double groups = 1;
    for (const auto& g : stmt.group_by) {
      const data::ColumnStats* cs = ColumnOf(g, stats);
      double d;
      if (cs != nullptr && cs->distinct_is_exact) {
        d = static_cast<double>(std::max<size_t>(cs->distinct_count, 1));
      } else if (g->kind == NodeKind::kCall &&
                 (g->name == "floor" || g->name == "date_trunc")) {
        d = 50;  // binning expression: ~bins
      } else {
        d = 100;
      }
      groups *= d;
    }
    rows = std::min(rows, groups);
    if (stmt.having) rows *= kDefaultUnknown;
  }

  for (const auto& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kWindow) est.cost += rows;
  }
  if (!stmt.order_by.empty() && rows > 1) {
    est.cost += rows * std::log2(std::max(2.0, rows));
  }
  if (stmt.limit >= 0) rows = std::min(rows, static_cast<double>(stmt.limit));

  est.output_rows = std::max(0.0, rows);
  est.cost += est.output_rows;
  return est;
}

}  // namespace sql
}  // namespace vegaplus
