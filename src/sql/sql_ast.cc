#include "sql/sql_ast.h"

#include "common/logging.h"
#include "common/str_util.h"
#include "expr/sql_translator.h"

namespace vegaplus {
namespace sql {

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kCount: return "COUNT";
    case AggOp::kSum: return "SUM";
    case AggOp::kAvg: return "AVG";
    case AggOp::kMin: return "MIN";
    case AggOp::kMax: return "MAX";
    case AggOp::kMedian: return "MEDIAN";
    case AggOp::kStddev: return "STDDEV";
    case AggOp::kVariance: return "VARIANCE";
  }
  return "?";
}

std::string ExprToSql(const expr::NodePtr& node) {
  auto frag = expr::TranslateToSql(node);
  // Parsed SQL expressions only contain translatable constructs; a failure
  // here indicates a programmatically built expression using an
  // untranslatable function, which is a caller bug.
  VP_CHECK(frag.ok()) << "ExprToSql: " << frag.status().ToString() << " for "
                      << expr::ToString(node);
  return frag->text;
}

namespace {

std::string ItemToSql(const SelectItem& item) {
  std::string out;
  switch (item.kind) {
    case SelectItem::Kind::kStar:
      return "*";
    case SelectItem::Kind::kExpr:
      out = ExprToSql(item.expr);
      break;
    case SelectItem::Kind::kAggregate:
      out = std::string(AggOpName(item.agg_op)) + "(" +
            (item.agg_arg ? ExprToSql(item.agg_arg) : "*") + ")";
      break;
    case SelectItem::Kind::kWindow: {
      out = item.window.op == WindowOp::kRowNumber
                ? "ROW_NUMBER()"
                : "SUM(" + ExprToSql(item.window.arg) + ")";
      out += " OVER (";
      bool first = true;
      if (!item.window.partition_by.empty()) {
        out += "PARTITION BY ";
        for (size_t i = 0; i < item.window.partition_by.size(); ++i) {
          if (i > 0) out += ", ";
          out += ExprToSql(item.window.partition_by[i]);
        }
        first = false;
      }
      if (!item.window.order_by.empty()) {
        if (!first) out += " ";
        out += "ORDER BY ";
        for (size_t i = 0; i < item.window.order_by.size(); ++i) {
          if (i > 0) out += ", ";
          out += ExprToSql(item.window.order_by[i].expr);
          if (item.window.order_by[i].descending) out += " DESC";
        }
      }
      out += ")";
      break;
    }
  }
  if (!item.alias.empty()) {
    out += " AS " + expr::QuoteIdentifier(item.alias);
  }
  return out;
}

}  // namespace

std::string ToSql(const SelectStmt& stmt) {
  std::string out = "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) out += ", ";
    out += ItemToSql(stmt.items[i]);
  }
  out += " FROM ";
  if (stmt.from.subquery) {
    out += "(" + ToSql(*stmt.from.subquery) + ")";
    out += " AS " + (stmt.from.alias.empty() ? "t" : stmt.from.alias);
  } else {
    out += expr::QuoteIdentifier(stmt.from.table_name);
    if (!stmt.from.alias.empty()) out += " AS " + stmt.from.alias;
  }
  if (stmt.where) out += " WHERE " + ExprToSql(stmt.where);
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToSql(stmt.group_by[i]);
    }
  }
  if (stmt.having) out += " HAVING " + ExprToSql(stmt.having);
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToSql(stmt.order_by[i].expr);
      if (stmt.order_by[i].descending) out += " DESC";
    }
  }
  if (stmt.limit >= 0) out += StrFormat(" LIMIT %lld", static_cast<long long>(stmt.limit));
  if (stmt.offset > 0) out += StrFormat(" OFFSET %lld", static_cast<long long>(stmt.offset));
  return out;
}

std::string DeriveItemName(const SelectItem& item, size_t position) {
  if (!item.alias.empty()) return item.alias;
  switch (item.kind) {
    case SelectItem::Kind::kExpr:
      if (item.expr && item.expr->kind == expr::NodeKind::kMember && item.expr->a &&
          item.expr->a->kind == expr::NodeKind::kIdentifier &&
          item.expr->a->name == "datum") {
        return item.expr->name;
      }
      break;
    case SelectItem::Kind::kAggregate: {
      std::string base = ToLower(AggOpName(item.agg_op));
      if (item.agg_arg && item.agg_arg->kind == expr::NodeKind::kMember) {
        return base + "_" + item.agg_arg->name;
      }
      return base;
    }
    case SelectItem::Kind::kWindow:
      return item.window.op == WindowOp::kRowNumber ? "row_number" : "win_sum";
    case SelectItem::Kind::kStar:
      break;
  }
  return StrFormat("col%zu", position);
}

}  // namespace sql
}  // namespace vegaplus
