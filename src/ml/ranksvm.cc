#include "ml/ranksvm.h"

#include <numeric>

#include "common/random.h"

namespace vegaplus {
namespace ml {

void RankSvm::Train(const std::vector<PairExample>& pairs) {
  if (pairs.empty()) {
    weights_.clear();
    return;
  }
  const size_t dim = pairs[0].a.size();
  weights_.assign(dim, 0.0);
  Rng rng(options_.seed);
  std::vector<size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    // Decaying step size keeps late epochs from oscillating.
    double lr = options_.learning_rate / (1.0 + 0.1 * epoch);
    for (size_t idx : order) {
      const PairExample& p = pairs[idx];
      double margin = 0;
      for (size_t f = 0; f < dim; ++f) margin += weights_[f] * (p.a[f] - p.b[f]);
      double y = static_cast<double>(p.label);
      // Subgradient of hinge + L2.
      if (y * margin < 1.0) {
        for (size_t f = 0; f < dim; ++f) {
          weights_[f] += lr * (y * (p.a[f] - p.b[f]) - options_.l2 * weights_[f]);
        }
      } else {
        for (size_t f = 0; f < dim; ++f) {
          weights_[f] -= lr * options_.l2 * weights_[f];
        }
      }
    }
  }
}

double RankSvm::Margin(const std::vector<double>& a, const std::vector<double>& b) const {
  double margin = 0;
  for (size_t f = 0; f < weights_.size() && f < a.size(); ++f) {
    margin += weights_[f] * (a[f] - b[f]);
  }
  return margin;
}

int RankSvm::Compare(const std::vector<double>& a, const std::vector<double>& b) const {
  double m = Margin(a, b);
  if (m > 0) return -1;  // a predicted faster
  if (m < 0) return 1;
  return 0;
}

double RankSvm::Cost(const std::vector<double>& v) const {
  // Positive margin == "a faster", so cost decreases along +w.
  double score = 0;
  for (size_t f = 0; f < weights_.size() && f < v.size(); ++f) {
    score += weights_[f] * v[f];
  }
  return -score;
}

}  // namespace ml
}  // namespace vegaplus
