// CART decision trees + bagged random forest (§5.3.2's second naive model).
// The forest classifies the *difference* of two plan vectors: label 1 means
// "first plan faster". Feature importances (mean gini decrease) feed the
// heuristic-model rule prioritization (§5.3's reverse engineering).
#ifndef VEGAPLUS_ML_RANDOM_FOREST_H_
#define VEGAPLUS_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "ml/ranksvm.h"  // PairExample

namespace vegaplus {
namespace ml {

struct TreeOptions {
  int max_depth = 8;
  int min_samples_split = 4;
  /// Features tried per split; <=0 means sqrt(dim).
  int max_features = -1;
  uint64_t seed = 7;
};

/// \brief Binary CART classifier over dense double vectors.
class DecisionTree {
 public:
  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  void Train(const std::vector<std::vector<double>>& x, const std::vector<int>& y);

  /// P(label == 1).
  double PredictProbability(const std::vector<double>& x) const;
  int Predict(const std::vector<double>& x) const {
    return PredictProbability(x) >= 0.5 ? 1 : 0;
  }

  /// Accumulated gini decrease per feature (unnormalized).
  const std::vector<double>& feature_importance() const { return importance_; }

 private:
  struct Node {
    int feature = -1;       // -1 == leaf
    double threshold = 0;
    double probability = 0.5;  // leaf: P(y==1)
    int left = -1;
    int right = -1;
  };

  int BuildNode(const std::vector<std::vector<double>>& x, const std::vector<int>& y,
                std::vector<int>& indices, int depth, Rng* rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  std::vector<double> importance_;
};

struct ForestOptions {
  int num_trees = 40;
  TreeOptions tree;
  uint64_t seed = 21;
};

/// \brief Bagged forest with majority vote.
class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = {}) : options_(options) {}

  void Train(const std::vector<PairExample>& pairs);

  /// P(first plan faster) = mean tree probability on (a - b).
  double ProbabilityFaster(const std::vector<double>& a,
                           const std::vector<double>& b) const;

  /// -1 if a predicted faster, +1 otherwise.
  int Compare(const std::vector<double>& a, const std::vector<double>& b) const {
    return ProbabilityFaster(a, b) >= 0.5 ? -1 : 1;
  }

  /// Mean gini-decrease importance per feature, normalized to sum 1.
  std::vector<double> FeatureImportance() const;

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  size_t dim_ = 0;
};

/// Fraction of pairs whose faster side the comparator identifies.
template <typename Model>
double PairwiseAccuracy(const Model& model, const std::vector<PairExample>& pairs) {
  if (pairs.empty()) return 0;
  size_t correct = 0;
  for (const PairExample& p : pairs) {
    int predicted = model.Compare(p.a, p.b);  // -1 == a faster
    int actual = p.label == 1 ? -1 : 1;
    if (predicted == actual) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(pairs.size());
}

/// Deterministic train/test split (shuffled by seed).
void TrainTestSplit(const std::vector<PairExample>& all, double train_fraction,
                    uint64_t seed, std::vector<PairExample>* train,
                    std::vector<PairExample>* test);

}  // namespace ml
}  // namespace vegaplus

#endif  // VEGAPLUS_ML_RANDOM_FOREST_H_
