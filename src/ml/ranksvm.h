// Linear RankSVM (§5.3.2): pairwise hinge loss over plan-vector differences,
// trained with SGD. After training the weight vector doubles as a linear
// cost model: Cost(v) = -w·v, so the best of n plans is found in O(n)
// instead of O(n^2) pairwise calls.
#ifndef VEGAPLUS_ML_RANKSVM_H_
#define VEGAPLUS_ML_RANKSVM_H_

#include <cstdint>
#include <vector>

namespace vegaplus {
namespace ml {

/// \brief One training pair: two plan vectors and which one was faster.
struct PairExample {
  std::vector<double> a;
  std::vector<double> b;
  /// +1 when a was faster (lower latency) than b, -1 otherwise.
  int label = 1;
};

struct RankSvmOptions {
  int epochs = 40;
  double learning_rate = 0.05;
  double l2 = 1e-4;
  uint64_t seed = 13;
};

/// \brief Linear pairwise ranking model.
class RankSvm {
 public:
  explicit RankSvm(RankSvmOptions options = {}) : options_(options) {}

  /// Fit on pairs; optimizes hinge loss max(0, 1 - y * w·(a - b)).
  void Train(const std::vector<PairExample>& pairs);

  /// Margin w·(a-b); positive predicts "a faster".
  double Margin(const std::vector<double>& a, const std::vector<double>& b) const;

  /// -1 if a predicted faster, +1 if b predicted faster, 0 on exact tie.
  int Compare(const std::vector<double>& a, const std::vector<double>& b) const;

  /// Linear cost extracted from the weights (lower = predicted faster).
  double Cost(const std::vector<double>& v) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  RankSvmOptions options_;
  std::vector<double> weights_;
};

}  // namespace ml
}  // namespace vegaplus

#endif  // VEGAPLUS_ML_RANKSVM_H_
