#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace vegaplus {
namespace ml {

namespace {

double Gini(size_t positives, size_t total) {
  if (total == 0) return 0;
  double p = static_cast<double>(positives) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::Train(const std::vector<std::vector<double>>& x,
                         const std::vector<int>& y) {
  nodes_.clear();
  importance_.assign(x.empty() ? 0 : x[0].size(), 0.0);
  if (x.empty()) return;
  Rng rng(options_.seed);
  std::vector<int> indices(x.size());
  std::iota(indices.begin(), indices.end(), 0);
  BuildNode(x, y, indices, 0, &rng);
}

int DecisionTree::BuildNode(const std::vector<std::vector<double>>& x,
                            const std::vector<int>& y, std::vector<int>& indices,
                            int depth, Rng* rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  size_t positives = 0;
  for (int i : indices) positives += static_cast<size_t>(y[static_cast<size_t>(i)]);
  const size_t total = indices.size();
  nodes_[static_cast<size_t>(node_id)].probability =
      total == 0 ? 0.5 : static_cast<double>(positives) / static_cast<double>(total);

  if (depth >= options_.max_depth ||
      total < static_cast<size_t>(options_.min_samples_split) || positives == 0 ||
      positives == total) {
    return node_id;  // leaf
  }

  const size_t dim = x[0].size();
  int max_features = options_.max_features > 0
                         ? options_.max_features
                         : std::max(1, static_cast<int>(std::sqrt(static_cast<double>(dim))));

  // Pick candidate features (without replacement).
  std::vector<size_t> features(dim);
  std::iota(features.begin(), features.end(), 0);
  rng->Shuffle(&features);
  features.resize(std::min<size_t>(features.size(), static_cast<size_t>(max_features)));

  double parent_gini = Gini(positives, total);
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0;

  std::vector<double> values(total);
  for (size_t f : features) {
    for (size_t i = 0; i < total; ++i) {
      values[i] = x[static_cast<size_t>(indices[i])][f];
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    if (sorted.size() < 2) continue;
    // Try up to 16 quantile thresholds per feature.
    size_t steps = std::min<size_t>(16, sorted.size() - 1);
    for (size_t s = 1; s <= steps; ++s) {
      double threshold = sorted[s * (sorted.size() - 1) / steps];
      size_t left_total = 0, left_pos = 0;
      for (size_t i = 0; i < total; ++i) {
        if (values[i] < threshold) {
          ++left_total;
          left_pos += static_cast<size_t>(y[static_cast<size_t>(indices[i])]);
        }
      }
      size_t right_total = total - left_total;
      if (left_total == 0 || right_total == 0) continue;
      size_t right_pos = positives - left_pos;
      double child =
          (static_cast<double>(left_total) * Gini(left_pos, left_total) +
           static_cast<double>(right_total) * Gini(right_pos, right_total)) /
          static_cast<double>(total);
      double gain = parent_gini - child;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = threshold;
      }
    }
  }
  if (best_feature < 0) return node_id;  // no useful split

  std::vector<int> left_idx, right_idx;
  for (int i : indices) {
    if (x[static_cast<size_t>(i)][static_cast<size_t>(best_feature)] < best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  importance_[static_cast<size_t>(best_feature)] +=
      best_gain * static_cast<double>(total);

  int left = BuildNode(x, y, left_idx, depth + 1, rng);
  int right = BuildNode(x, y, right_idx, depth + 1, rng);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double DecisionTree::PredictProbability(const std::vector<double>& x) const {
  if (nodes_.empty()) return 0.5;
  int cur = 0;
  while (nodes_[static_cast<size_t>(cur)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(cur)];
    cur = x[static_cast<size_t>(n.feature)] < n.threshold ? n.left : n.right;
  }
  return nodes_[static_cast<size_t>(cur)].probability;
}

void RandomForest::Train(const std::vector<PairExample>& pairs) {
  trees_.clear();
  if (pairs.empty()) return;
  dim_ = pairs[0].a.size();
  // Feature space: difference vectors; label 1 == "a faster".
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  x.reserve(pairs.size());
  y.reserve(pairs.size());
  for (const PairExample& p : pairs) {
    std::vector<double> diff(dim_);
    for (size_t f = 0; f < dim_; ++f) diff[f] = p.a[f] - p.b[f];
    x.push_back(std::move(diff));
    y.push_back(p.label == 1 ? 1 : 0);
  }

  Rng rng(options_.seed);
  trees_.reserve(static_cast<size_t>(options_.num_trees));
  for (int t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample.
    std::vector<std::vector<double>> bx;
    std::vector<int> by;
    bx.reserve(x.size());
    by.reserve(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      size_t j = rng.Index(x.size());
      bx.push_back(x[j]);
      by.push_back(y[j]);
    }
    TreeOptions topt = options_.tree;
    topt.seed = rng.Next();
    DecisionTree tree(topt);
    tree.Train(bx, by);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::ProbabilityFaster(const std::vector<double>& a,
                                       const std::vector<double>& b) const {
  if (trees_.empty()) return 0.5;
  std::vector<double> diff(dim_);
  for (size_t f = 0; f < dim_ && f < a.size(); ++f) diff[f] = a[f] - b[f];
  double sum = 0;
  for (const DecisionTree& tree : trees_) sum += tree.PredictProbability(diff);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::FeatureImportance() const {
  std::vector<double> importance(dim_, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto& imp = tree.feature_importance();
    for (size_t f = 0; f < importance.size() && f < imp.size(); ++f) {
      importance[f] += imp[f];
    }
  }
  double total = 0;
  for (double v : importance) total += v;
  if (total > 0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

void TrainTestSplit(const std::vector<PairExample>& all, double train_fraction,
                    uint64_t seed, std::vector<PairExample>* train,
                    std::vector<PairExample>* test) {
  std::vector<size_t> order(all.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(&order);
  size_t cut = static_cast<size_t>(train_fraction * static_cast<double>(all.size()));
  train->clear();
  test->clear();
  for (size_t i = 0; i < order.size(); ++i) {
    (i < cut ? train : test)->push_back(all[order[i]]);
  }
}

}  // namespace ml
}  // namespace vegaplus
