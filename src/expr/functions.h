// The Vega expression function library: evaluation callables plus SQL
// translation metadata. Shared by the evaluator and the SQL translator so
// client-side and server-side semantics stay aligned.
#ifndef VEGAPLUS_EXPR_FUNCTIONS_H_
#define VEGAPLUS_EXPR_FUNCTIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "expr/eval_value.h"

namespace vegaplus {
namespace expr {

/// \brief Registry entry for one expression function.
struct FunctionDef {
  std::string name;
  int min_args = 0;
  int max_args = 0;  // -1 == variadic
  /// Evaluate with already-evaluated arguments.
  std::function<EvalValue(const std::vector<EvalValue>&)> eval;
  /// Name of the SQL function this maps to 1:1, or "" when the translator
  /// has a bespoke emitter / no translation exists.
  std::string sql_name;
  /// False for functions with no SQL equivalent — forces client fallback,
  /// exercising the paper's "fall back to native execution in Vega" path.
  bool sql_translatable = true;
};

/// Lookup; nullptr for unknown functions.
const FunctionDef* FindFunction(const std::string& name);

/// All registered function names (for docs/tests).
std::vector<std::string> FunctionNames();

// Date part helpers on epoch-milliseconds (UTC). Used by both the expression
// evaluator and the SQL engine's date functions so results agree. month and
// day-of-month are 1-based; day-of-week is 0=Sunday.
int64_t TsYear(int64_t millis);
int64_t TsMonth(int64_t millis);
int64_t TsDayOfMonth(int64_t millis);
int64_t TsDayOfWeek(int64_t millis);
int64_t TsHour(int64_t millis);
int64_t TsMinute(int64_t millis);
int64_t TsSecond(int64_t millis);

/// Truncate epoch-millis to the start of `unit` ("year", "month", "week",
/// "date"/"day", "hours", "minutes", "seconds"). Returns input on unknown
/// unit.
int64_t TsTruncate(int64_t millis, const std::string& unit);

/// Millisecond width of one `unit` step at `truncated` (month/year widths
/// vary; used by timeunit to compute interval ends).
int64_t TsUnitWidth(int64_t truncated, const std::string& unit);

}  // namespace expr
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_FUNCTIONS_H_
