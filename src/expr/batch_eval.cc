#include "expr/batch_eval.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "common/logging.h"
#include "common/parallel.h"
#include "expr/functions.h"
#include "storage/stats.h"
#include "storage/zone_map.h"

namespace vegaplus {
namespace expr {

namespace {

using data::Column;
using data::DataType;
using data::Value;

std::atomic<bool> g_vectorized_enabled{true};

// ---- Vec cell helpers ----

bool NumTruthy(double v) { return v != 0.0 && !std::isnan(v); }

/// Hash one numeric value the way Value::Hash does (so typed and boxed key
/// registers bucket identically), with NaN pinned to one bucket so grouping
/// equality and hashing stay consistent.
size_t NumHash(double d) {
  if (std::isnan(d)) return 0x7FF8DEADu;
  if (d == 0.0) d = 0.0;  // normalize -0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(d));
  bits *= 0xFF51AFD7ED558CCDull;
  bits ^= bits >> 33;
  return static_cast<size_t>(bits);
}

/// Hash of a dictionary code. Only bucketing depends on this (group ids come
/// from the first-seen scan order), so it need not match the flat-string
/// hash — it just has to be consistent within one register.
size_t CodeHash(int32_t c) {
  uint64_t bits = static_cast<uint64_t>(static_cast<uint32_t>(c));
  bits *= 0xFF51AFD7ED558CCDull;
  bits ^= bits >> 33;
  return static_cast<size_t>(bits);
}

constexpr size_t kNullHash = 0x9E3779B9u;

size_t KeyCellHash(const Vec& v, size_t i) {
  switch (v.kind) {
    case RegKind::kNum:
      if (!v.ValidAt(i)) return kNullHash;
      return NumHash(v.NumAt(i));
    case RegKind::kBool:
      return NumHash(v.BitAt(i) ? 1.0 : 0.0);
    case RegKind::kStr: {
      if (v.dict) {
        // Code-backed keys hash the int32 code: one multiply instead of a
        // string walk. Equal strings share a code within a dictionary.
        const int32_t c = v.CodeAt(i);
        return c < 0 ? kNullHash : CodeHash(c);
      }
      const std::string* s = v.StrAt(i);
      return s == nullptr ? kNullHash : std::hash<std::string>{}(*s);
    }
    case RegKind::kBoxed:
      return v.boxed[i].Hash();
  }
  return 0;
}

bool KeyCellEq(const Vec& v, size_t a, size_t b) {
  switch (v.kind) {
    case RegKind::kNum: {
      bool va = v.ValidAt(a), vb = v.ValidAt(b);
      if (va != vb) return false;
      if (!va) return true;
      double x = v.NumAt(a), y = v.NumAt(b);
      return x == y || (std::isnan(x) && std::isnan(y));
    }
    case RegKind::kBool:
      return v.BitAt(a) == v.BitAt(b);
    case RegKind::kStr: {
      // Within one register both cells share the dictionary, so equal codes
      // are equal strings and vice versa (-1 == -1 covers null == null).
      if (v.dict) return v.CodeAt(a) == v.CodeAt(b);
      const std::string* x = v.StrAt(a);
      const std::string* y = v.StrAt(b);
      if ((x == nullptr) != (y == nullptr)) return false;
      return x == nullptr || *x == *y;
    }
    case RegKind::kBoxed:
      return v.boxed[a] == v.boxed[b];
  }
  return false;
}

}  // namespace

bool VectorizedEnabled() { return g_vectorized_enabled.load(std::memory_order_relaxed); }
void SetVectorizedEnabled(bool enabled) {
  g_vectorized_enabled.store(enabled, std::memory_order_relaxed);
}

bool Vec::TruthyAt(size_t i) const {
  switch (kind) {
    case RegKind::kNum:
      return ValidAt(i) && NumTruthy(NumAt(i));
    case RegKind::kBool:
      return BitAt(i);
    case RegKind::kStr: {
      const std::string* s = StrAt(i);
      return s != nullptr && !s->empty();
    }
    case RegKind::kBoxed:
      return boxed[i].Truthy();
  }
  return false;
}

Value Vec::CellValue(size_t i) const {
  switch (kind) {
    case RegKind::kNum:
      return ValidAt(i) ? Value::Double(NumAt(i)) : Value::Null();
    case RegKind::kBool:
      return Value::Bool(BitAt(i));
    case RegKind::kStr: {
      const std::string* s = StrAt(i);
      return s == nullptr ? Value::Null() : Value::String(*s);
    }
    case RegKind::kBoxed:
      return boxed[i];
  }
  return Value::Null();
}

void Vec::AppendCellTo(size_t i, Column* out) const {
  switch (kind) {
    case RegKind::kNum: {
      if (!ValidAt(i)) {
        out->AppendNull();
        return;
      }
      double x = NumAt(i);
      switch (out->type()) {
        case DataType::kBool: out->AppendBool(x != 0.0); return;
        case DataType::kInt64:
        case DataType::kTimestamp: out->AppendInt(static_cast<int64_t>(x)); return;
        case DataType::kFloat64: out->AppendDouble(x); return;
        default: out->Append(Value::Double(x)); return;
      }
    }
    case RegKind::kBool:
      out->Append(Value::Bool(BitAt(i)));
      return;
    case RegKind::kStr: {
      const std::string* s = StrAt(i);
      if (s == nullptr) {
        out->AppendNull();
      } else if (out->type() == DataType::kString) {
        out->AppendString(*s);
      } else {
        // Matches Column::Append(Value::String) into a non-string column.
        out->AppendNull();
      }
      return;
    }
    case RegKind::kBoxed:
      out->Append(boxed[i]);
      return;
  }
}

int Vec::CompareCells(size_t a, size_t b) const {
  switch (kind) {
    case RegKind::kNum: {
      bool va = ValidAt(a), vb = ValidAt(b);
      if (!va && !vb) return 0;
      if (!va) return -1;
      if (!vb) return 1;
      double x = NumAt(a), y = NumAt(b);
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    case RegKind::kBool: {
      int x = BitAt(a) ? 1 : 0, y = BitAt(b) ? 1 : 0;
      return x - y;
    }
    case RegKind::kStr: {
      if (dict && dict_ranks) {
        // One int compare per probe: ranks order the dictionary by string,
        // nulls (-1) first — exactly the pointer path's null-then-compare.
        const int32_t ca = CodeAt(a), cb = CodeAt(b);
        const int32_t ra = ca < 0 ? -1 : (*dict_ranks)[static_cast<size_t>(ca)];
        const int32_t rb = cb < 0 ? -1 : (*dict_ranks)[static_cast<size_t>(cb)];
        return ra < rb ? -1 : (ra == rb ? 0 : 1);
      }
      const std::string* x = StrAt(a);
      const std::string* y = StrAt(b);
      if (x == nullptr && y == nullptr) return 0;
      if (x == nullptr) return -1;
      if (y == nullptr) return 1;
      return x->compare(*y) < 0 ? -1 : (*x == *y ? 0 : 1);
    }
    case RegKind::kBoxed:
      return boxed[a].Compare(boxed[b]);
  }
  return 0;
}

void Vec::BuildDictRanks() {
  if (kind != RegKind::kStr || !dict || dict_ranks) return;
  const std::vector<std::string>& values = dict->values;
  std::vector<int32_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&values](int32_t a, int32_t b) {
    return values[static_cast<size_t>(a)] < values[static_cast<size_t>(b)];
  });
  std::vector<int32_t> ranks(values.size());
  for (size_t k = 0; k < order.size(); ++k) {
    ranks[static_cast<size_t>(order[k])] = static_cast<int32_t>(k);
  }
  dict_ranks = std::make_shared<const std::vector<int32_t>>(std::move(ranks));
}

Vec ColumnVec(const Column& col) {
  Vec v;
  const size_t n = col.length();
  switch (col.type()) {
    case DataType::kFloat64:
      v.kind = RegKind::kNum;
      if (auto shared = col.shared_doubles()) {
        // Full-range column: alias the storage, no copy. The column's own
        // copy-on-write keeps the alias stable across later appends.
        v.num = CowVec<double>::Adopt(std::move(shared));
      } else {
        v.num.assign(col.doubles_data(), col.doubles_data() + n);
      }
      break;
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kBool: {
      v.kind = RegKind::kNum;
      v.num.resize(n);
      double* out = v.num.data();
      const int64_t* ints = col.ints_data();
      for (size_t i = 0; i < n; ++i) out[i] = static_cast<double>(ints[i]);
      break;
    }
    case DataType::kString: {
      v.kind = RegKind::kStr;
      if (col.dict_encoded()) {
        // Code-backed register: the dictionary is shared and the codes are
        // aliased (full-range) or copied as int32s — strings never touched.
        v.dict = col.dict_shared();
        if (auto shared = col.shared_codes()) {
          v.codes = CowVec<int32_t>::Adopt(std::move(shared));
        } else {
          v.codes.assign(col.codes_data(), col.codes_data() + n);
        }
        return v;
      }
      v.str.resize(n);
      const std::string** out = v.str.data();
      const std::string* strs = col.strings_data();
      const uint8_t* valid = col.validity_data();
      for (size_t i = 0; i < n; ++i) out[i] = valid[i] ? &strs[i] : nullptr;
      return v;
    }
    case DataType::kNull:
      v.kind = RegKind::kNum;
      v.num.assign(n, 0.0);
      v.valid.assign(n, 0);
      return v;
  }
  if (col.null_count() > 0) {
    if (auto shared = col.shared_validity()) {
      v.valid = CowVec<uint8_t>::Adopt(std::move(shared));
    } else {
      v.valid.assign(col.validity_data(), col.validity_data() + n);
    }
  }
  return v;
}

Vec BoxedVec(std::vector<Value> values) {
  Vec v;
  v.kind = RegKind::kBoxed;
  v.boxed = std::move(values);
  return v;
}

// ---- Program execution ----

namespace {

/// Length of the output register given the operand constness.
size_t OutLen(bool all_const, size_t n) { return all_const ? 1 : n; }

void KeepStrRefs(Vec* out, const Vec& src) {
  if (src.str_store) out->str_refs.push_back(src.str_store);
  if (src.dict) out->str_refs.push_back(src.dict);
  out->str_refs.insert(out->str_refs.end(), src.str_refs.begin(), src.str_refs.end());
}

/// Raw pointer view of a numeric register: `stride` is 0 for broadcast
/// constants, so `v[i * stride]` works uniformly and the compiler hoists the
/// loop-invariant null checks instead of re-branching per element.
struct NumView {
  const double* v;
  const uint8_t* valid;  // nullptr == all valid
  size_t stride;
};

NumView View(const Vec& a) {
  return {a.num.data(), a.valid.empty() ? nullptr : a.valid.data(),
          a.is_const ? size_t{0} : size_t{1}};
}

template <typename F>
Vec NumBin(const Vec& a, const Vec& b, size_t n, bool null_on_zero_rhs, F f) {
  Vec out;
  out.kind = RegKind::kNum;
  out.is_const = a.is_const && b.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.num.resize(m);
  const NumView va = View(a), vb = View(b);
  if (va.valid == nullptr && vb.valid == nullptr && !null_on_zero_rhs) {
    double* o = out.num.data();
    for (size_t i = 0; i < m; ++i) o[i] = f(va.v[i * va.stride], vb.v[i * vb.stride]);
    return out;
  }
  out.valid.assign(m, 1);
  uint8_t* ov = out.valid.data();
  double* o = out.num.data();
  for (size_t i = 0; i < m; ++i) {
    if ((va.valid != nullptr && va.valid[i * va.stride] == 0) ||
        (vb.valid != nullptr && vb.valid[i * vb.stride] == 0)) {
      ov[i] = 0;
      continue;
    }
    const double y = vb.v[i * vb.stride];
    if (null_on_zero_rhs && y == 0) {
      ov[i] = 0;
      continue;
    }
    o[i] = f(va.v[i * va.stride], y);
  }
  return out;
}

template <typename F>
Vec CmpNum(const Vec& a, const Vec& b, size_t n, F f) {
  Vec out;
  out.kind = RegKind::kBool;
  out.is_const = a.is_const && b.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.bits.resize(m);
  const NumView va = View(a), vb = View(b);
  uint8_t* o = out.bits.data();
  if (va.valid == nullptr && vb.valid == nullptr) {
    for (size_t i = 0; i < m; ++i) {
      o[i] = f(va.v[i * va.stride], vb.v[i * vb.stride]) ? 1 : 0;
    }
  } else {
    for (size_t i = 0; i < m; ++i) {
      const bool ok = (va.valid == nullptr || va.valid[i * va.stride] != 0) &&
                      (vb.valid == nullptr || vb.valid[i * vb.stride] != 0);
      o[i] = ok && f(va.v[i * va.stride], vb.v[i * vb.stride]) ? 1 : 0;
    }
  }
  return out;
}

Vec EqNum(const Vec& a, const Vec& b, size_t n, bool negate) {
  Vec out;
  out.kind = RegKind::kBool;
  out.is_const = a.is_const && b.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.bits.resize(m);
  const NumView va = View(a), vb = View(b);
  uint8_t* o = out.bits.data();
  for (size_t i = 0; i < m; ++i) {
    const bool av = va.valid == nullptr || va.valid[i * va.stride] != 0;
    const bool bv = vb.valid == nullptr || vb.valid[i * vb.stride] != 0;
    bool eq;
    if (!av || !bv) {
      eq = !av && !bv;  // null == null is true, matching Value::Compare
    } else {
      const double x = va.v[i * va.stride], y = vb.v[i * vb.stride];
      eq = !(x < y) && !(x > y);  // NaN quirk preserved from Value::Compare
    }
    o[i] = (eq != negate) ? 1 : 0;
  }
  return out;
}

/// f receives the strcmp-style result of comparing two non-null cells.
template <typename F>
Vec CmpStr(const Vec& a, const Vec& b, size_t n, F f) {
  Vec out;
  out.kind = RegKind::kBool;
  out.is_const = a.is_const && b.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.bits.resize(m);
  uint8_t* o = out.bits.data();
  for (size_t i = 0; i < m; ++i) {
    const std::string* x = a.StrAt(i);
    const std::string* y = b.StrAt(i);
    o[i] = (x != nullptr && y != nullptr && f(x->compare(*y))) ? 1 : 0;
  }
  return out;
}

/// Code of `s` in `dict`, or -2 when absent (distinct from -1 == null so a
/// missing constant matches no row, including null rows).
int32_t DictCodeOf(const data::StringDictionary& dict, const std::string& s) {
  const int32_t c = dict.Find(s);
  return c < 0 ? -2 : c;
}

Vec EqStr(const Vec& a, const Vec& b, size_t n, bool negate) {
  Vec out;
  out.kind = RegKind::kBool;
  out.is_const = a.is_const && b.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.bits.resize(m);
  uint8_t* o = out.bits.data();
  // Code fast path 1: both operands share one dictionary — equal codes are
  // equal strings (and -1 == -1 covers null == null).
  if (a.dict && b.dict && a.dict.get() == b.dict.get()) {
    for (size_t i = 0; i < m; ++i) {
      o[i] = ((a.CodeAt(i) == b.CodeAt(i)) != negate) ? 1 : 0;
    }
    return out;
  }
  // Code fast path 2: a code-backed register against a broadcast constant.
  // The constant is resolved to a code once; the loop is one int compare per
  // row (the `field == 'const'` shape of every categorical brush filter).
  const Vec* dv = nullptr;
  const Vec* cv = nullptr;
  if (a.dict && !a.is_const && b.is_const) {
    dv = &a;
    cv = &b;
  } else if (b.dict && !b.is_const && a.is_const) {
    dv = &b;
    cv = &a;
  }
  if (dv != nullptr) {
    const std::string* s = cv->StrAt(0);
    const int32_t code = s == nullptr ? -1 : DictCodeOf(*dv->dict, *s);
    const int32_t* codes = dv->codes.data();
    for (size_t i = 0; i < m; ++i) {
      o[i] = ((codes[i] == code) != negate) ? 1 : 0;
    }
    return out;
  }
  for (size_t i = 0; i < m; ++i) {
    const std::string* x = a.StrAt(i);
    const std::string* y = b.StrAt(i);
    bool eq;
    if (x == nullptr || y == nullptr) {
      eq = x == nullptr && y == nullptr;
    } else {
      eq = *x == *y;
    }
    o[i] = (eq != negate) ? 1 : 0;
  }
  return out;
}

Vec Concat(const Vec& a, const Vec& b, size_t n) {
  Vec out;
  out.kind = RegKind::kStr;
  out.is_const = a.is_const && b.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.str.resize(m, nullptr);
  const std::string** os = out.str.data();
  out.str_store = std::make_shared<std::vector<std::string>>();
  out.str_store->reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const std::string* x = a.StrAt(i);
    const std::string* y = b.StrAt(i);
    if (x == nullptr || y == nullptr) continue;  // null propagates
    out.str_store->push_back(*x + *y);
    os[i] = &out.str_store->back();
  }
  return out;
}

/// JS-style && / || value blend: pick_rhs_when_truthy selects which operand
/// wins when `a` is truthy (rhs for &&, lhs for ||).
Vec BlendNum(const Vec& a, const Vec& b, size_t n, bool pick_rhs_when_truthy) {
  Vec out;
  out.kind = RegKind::kNum;
  out.is_const = a.is_const && b.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.num.resize(m);
  double* onum = out.num.data();
  const NumView va = View(a), vb = View(b);
  const bool need_valid = va.valid != nullptr || vb.valid != nullptr;
  uint8_t* ovalid = nullptr;
  if (need_valid) {
    out.valid.assign(m, 1);
    ovalid = out.valid.data();
  }
  for (size_t i = 0; i < m; ++i) {
    const bool av = va.valid == nullptr || va.valid[i * va.stride] != 0;
    const double x = va.v[i * va.stride];
    const bool truthy_a = av && NumTruthy(x);
    const NumView& src = truthy_a == pick_rhs_when_truthy ? vb : va;
    const bool sv = src.valid == nullptr || src.valid[i * src.stride] != 0;
    onum[i] = sv ? src.v[i * src.stride] : 0;
    if (need_valid) ovalid[i] = sv ? 1 : 0;
  }
  return out;
}

/// Per-row truthiness of a register (one kind branch per batch).
std::vector<uint8_t> TruthyMask(const Vec& a, size_t m) {
  std::vector<uint8_t> mask(m);
  switch (a.kind) {
    case RegKind::kBool: {
      for (size_t i = 0; i < m; ++i) mask[i] = a.bits[a.is_const ? 0 : i];
      break;
    }
    case RegKind::kNum: {
      const NumView va = View(a);
      for (size_t i = 0; i < m; ++i) {
        const bool av = va.valid == nullptr || va.valid[i * va.stride] != 0;
        mask[i] = av && NumTruthy(va.v[i * va.stride]) ? 1 : 0;
      }
      break;
    }
    case RegKind::kStr: {
      for (size_t i = 0; i < m; ++i) {
        const std::string* s = a.StrAt(i);
        mask[i] = s != nullptr && !s->empty() ? 1 : 0;
      }
      break;
    }
    case RegKind::kBoxed: {
      for (size_t i = 0; i < m; ++i) mask[i] = a.boxed[i].Truthy() ? 1 : 0;
      break;
    }
  }
  return mask;
}

Vec Select(const Vec& cond, const Vec& t, const Vec& e, size_t n) {
  Vec out;
  out.kind = t.kind;
  out.is_const = cond.is_const && t.is_const && e.is_const;
  const size_t m = OutLen(out.is_const, n);
  const std::vector<uint8_t> mask = TruthyMask(cond, m);
  switch (t.kind) {
    case RegKind::kNum: {
      out.num.resize(m);
      double* onum = out.num.data();
      const NumView vt = View(t), ve = View(e);
      const bool need_valid = vt.valid != nullptr || ve.valid != nullptr;
      uint8_t* ovalid = nullptr;
      if (need_valid) {
        out.valid.assign(m, 1);
        ovalid = out.valid.data();
      }
      for (size_t i = 0; i < m; ++i) {
        const NumView& src = mask[i] ? vt : ve;
        const bool sv = src.valid == nullptr || src.valid[i * src.stride] != 0;
        onum[i] = sv ? src.v[i * src.stride] : 0;
        if (need_valid) ovalid[i] = sv ? 1 : 0;
      }
      return out;
    }
    case RegKind::kBool: {
      out.bits.resize(m);
      uint8_t* o = out.bits.data();
      for (size_t i = 0; i < m; ++i) {
        o[i] = (mask[i] ? t.BitAt(i) : e.BitAt(i)) ? 1 : 0;
      }
      return out;
    }
    case RegKind::kStr: {
      // Blends resolve to pointer views (into operand stores, dictionaries,
      // or column storage); str_refs keeps the owners alive.
      out.str.resize(m);
      const std::string** os = out.str.data();
      for (size_t i = 0; i < m; ++i) {
        os[i] = mask[i] ? t.StrAt(i) : e.StrAt(i);
      }
      KeepStrRefs(&out, t);
      KeepStrRefs(&out, e);
      return out;
    }
    case RegKind::kBoxed:
      break;  // programs never produce boxed registers
  }
  VP_CHECK(false) << "vector select over unsupported register kind";
  return out;
}

template <typename F>
Vec NumUnary(const Vec& a, size_t n, F f) {
  Vec out;
  out.kind = RegKind::kNum;
  out.is_const = a.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.num.resize(m);
  double* o = out.num.data();
  const NumView va = View(a);
  if (va.valid != nullptr) {
    // Shared validity copy (refcount bump); reads go through the operand so
    // the copy is never detached.
    out.valid = a.valid;
    for (size_t i = 0; i < m; ++i) {
      if (va.valid[i * va.stride]) o[i] = f(va.v[i * va.stride]);
    }
  } else {
    for (size_t i = 0; i < m; ++i) o[i] = f(va.v[i * va.stride]);
  }
  return out;
}

Vec StrTransform(const Vec& a, size_t n, bool to_lower) {
  Vec out;
  out.kind = RegKind::kStr;
  out.is_const = a.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.str.resize(m, nullptr);
  const std::string** os = out.str.data();
  out.str_store = std::make_shared<std::vector<std::string>>();
  out.str_store->reserve(m);
  for (size_t i = 0; i < m; ++i) {
    const std::string* s = a.StrAt(i);
    if (s == nullptr) continue;
    std::string t = *s;
    for (char& c : t) {
      c = static_cast<char>(to_lower ? std::tolower(static_cast<unsigned char>(c))
                                     : std::toupper(static_cast<unsigned char>(c)));
    }
    out.str_store->push_back(std::move(t));
    os[i] = &out.str_store->back();
  }
  return out;
}

double ApplyNum1(Num1Fn fn, double x) {
  switch (fn) {
    case Num1Fn::kAbs: return std::fabs(x);
    case Num1Fn::kCeil: return std::ceil(x);
    case Num1Fn::kFloor: return std::floor(x);
    case Num1Fn::kRound: return std::round(x);
    case Num1Fn::kSqrt: return std::sqrt(x);
    case Num1Fn::kExp: return std::exp(x);
    case Num1Fn::kLog: return std::log(x);
  }
  return x;
}

int64_t ApplyDatePart(DatePart part, int64_t millis) {
  switch (part) {
    case DatePart::kYear: return TsYear(millis);
    case DatePart::kMonth: return TsMonth(millis);
    case DatePart::kDate: return TsDayOfMonth(millis);
    case DatePart::kDay: return TsDayOfWeek(millis);
    case DatePart::kHours: return TsHour(millis);
    case DatePart::kMinutes: return TsMinute(millis);
    case DatePart::kSeconds: return TsSecond(millis);
  }
  return 0;
}

Vec MinMaxN(std::vector<Vec> args, size_t n, bool is_min) {
  Vec out;
  out.kind = RegKind::kNum;
  out.is_const = true;
  for (const Vec& a : args) out.is_const = out.is_const && a.is_const;
  const size_t m = OutLen(out.is_const, n);
  out.num.resize(m);
  double* onum = out.num.data();
  bool need_valid = false;
  for (const Vec& a : args) need_valid = need_valid || !a.valid.empty();
  uint8_t* ovalid = nullptr;
  if (need_valid) {
    out.valid.assign(m, 1);
    ovalid = out.valid.data();
  }
  for (size_t i = 0; i < m; ++i) {
    bool any_null = false;
    // Fold from +/-infinity in argument order, like the scalar registry's
    // min()/max() (so NaN arguments behave identically).
    double best = is_min ? std::numeric_limits<double>::infinity()
                         : -std::numeric_limits<double>::infinity();
    for (const Vec& a : args) {
      if (!a.ValidAt(i)) {
        any_null = true;
        break;
      }
      best = is_min ? std::min(best, a.NumAt(i)) : std::max(best, a.NumAt(i));
    }
    if (any_null) {
      ovalid[i] = 0;
    } else {
      onum[i] = best;
    }
  }
  return out;
}

}  // namespace

Vec BatchEvaluator::Run(const Program& p) const {
  const size_t n = table_.num_rows();
  std::vector<Vec> stack;
  stack.reserve(8);
  auto pop = [&stack]() {
    Vec v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  // CSE cache for columns the program loads repeatedly (p.reused_cols):
  // widen each such column batch once per run. Register buffers are shared
  // copy-on-write (CowVec), so every later load is a refcount bump — no
  // element copies — and the final load moves the register out wholesale.
  struct CachedCol {
    int32_t col;
    int32_t remaining;  // loads left, including the one being served
    Vec vec;
    bool materialized = false;
  };
  std::vector<CachedCol> col_cache;
  col_cache.reserve(p.reused_cols.size());
  for (const auto& [col, count] : p.reused_cols) {
    col_cache.push_back(CachedCol{col, count, Vec{}, false});
  }
  auto load_col = [&](int32_t col) -> Vec {
    for (CachedCol& c : col_cache) {
      if (c.col != col) continue;
      --c.remaining;
      if (!c.materialized) {
        c.vec = ColumnVec(table_.column(static_cast<size_t>(col)));
        c.materialized = true;
      }
      return c.remaining == 0 ? std::move(c.vec) : c.vec;
    }
    return ColumnVec(table_.column(static_cast<size_t>(col)));
  };

  for (const Instr& instr : p.code) {
    switch (instr.op) {
      case VecOp::kLoadCol:
        stack.push_back(load_col(instr.imm));
        break;
      case VecOp::kLoadNumConst: {
        const Program::NumConst& c = p.num_consts[static_cast<size_t>(instr.imm)];
        Vec v;
        v.kind = RegKind::kNum;
        v.is_const = true;
        v.num.push_back(c.value);
        if (c.is_null) v.valid.push_back(0);
        stack.push_back(std::move(v));
        break;
      }
      case VecOp::kLoadNullNum: {
        Vec v;
        v.kind = RegKind::kNum;
        v.is_const = true;
        v.num.push_back(0);
        v.valid.push_back(0);
        stack.push_back(std::move(v));
        break;
      }
      case VecOp::kLoadBoolConst: {
        Vec v;
        v.kind = RegKind::kBool;
        v.is_const = true;
        v.bits.push_back(instr.imm ? 1 : 0);
        stack.push_back(std::move(v));
        break;
      }
      case VecOp::kLoadStrConst: {
        // The register owns a copy of the constant so result Vecs never
        // outlive-dangle into the Program's constant pool.
        Vec v;
        v.kind = RegKind::kStr;
        v.is_const = true;
        v.str_store = std::make_shared<std::vector<std::string>>(
            1, p.str_consts[static_cast<size_t>(instr.imm)]);
        v.str.push_back(&v.str_store->front());
        stack.push_back(std::move(v));
        break;
      }
      case VecOp::kAdd: {
        Vec b = pop(), a = pop();
        stack.push_back(NumBin(a, b, n, false, [](double x, double y) { return x + y; }));
        break;
      }
      case VecOp::kSub: {
        Vec b = pop(), a = pop();
        stack.push_back(NumBin(a, b, n, false, [](double x, double y) { return x - y; }));
        break;
      }
      case VecOp::kMul: {
        Vec b = pop(), a = pop();
        stack.push_back(NumBin(a, b, n, false, [](double x, double y) { return x * y; }));
        break;
      }
      case VecOp::kDiv: {
        Vec b = pop(), a = pop();
        stack.push_back(NumBin(a, b, n, true, [](double x, double y) { return x / y; }));
        break;
      }
      case VecOp::kMod: {
        Vec b = pop(), a = pop();
        stack.push_back(
            NumBin(a, b, n, true, [](double x, double y) { return std::fmod(x, y); }));
        break;
      }
      case VecOp::kLtNum: {
        Vec b = pop(), a = pop();
        stack.push_back(CmpNum(a, b, n, [](double x, double y) { return x < y; }));
        break;
      }
      case VecOp::kLteNum: {
        Vec b = pop(), a = pop();
        stack.push_back(CmpNum(a, b, n, [](double x, double y) { return x <= y; }));
        break;
      }
      case VecOp::kGtNum: {
        Vec b = pop(), a = pop();
        stack.push_back(CmpNum(a, b, n, [](double x, double y) { return x > y; }));
        break;
      }
      case VecOp::kGteNum: {
        Vec b = pop(), a = pop();
        stack.push_back(CmpNum(a, b, n, [](double x, double y) { return x >= y; }));
        break;
      }
      case VecOp::kEqNum: {
        Vec b = pop(), a = pop();
        stack.push_back(EqNum(a, b, n, /*negate=*/false));
        break;
      }
      case VecOp::kNeqNum: {
        Vec b = pop(), a = pop();
        stack.push_back(EqNum(a, b, n, /*negate=*/true));
        break;
      }
      case VecOp::kLtStr: {
        Vec b = pop(), a = pop();
        stack.push_back(CmpStr(a, b, n, [](int c) { return c < 0; }));
        break;
      }
      case VecOp::kLteStr: {
        Vec b = pop(), a = pop();
        stack.push_back(CmpStr(a, b, n, [](int c) { return c <= 0; }));
        break;
      }
      case VecOp::kGtStr: {
        Vec b = pop(), a = pop();
        stack.push_back(CmpStr(a, b, n, [](int c) { return c > 0; }));
        break;
      }
      case VecOp::kGteStr: {
        Vec b = pop(), a = pop();
        stack.push_back(CmpStr(a, b, n, [](int c) { return c >= 0; }));
        break;
      }
      case VecOp::kEqStr: {
        Vec b = pop(), a = pop();
        stack.push_back(EqStr(a, b, n, /*negate=*/false));
        break;
      }
      case VecOp::kNeqStr: {
        Vec b = pop(), a = pop();
        stack.push_back(EqStr(a, b, n, /*negate=*/true));
        break;
      }
      case VecOp::kConcat: {
        Vec b = pop(), a = pop();
        stack.push_back(Concat(a, b, n));
        break;
      }
      case VecOp::kAndBool:
      case VecOp::kOrBool: {
        Vec b = pop(), a = pop();
        Vec out;
        out.kind = RegKind::kBool;
        out.is_const = a.is_const && b.is_const;
        const size_t m = OutLen(out.is_const, n);
        out.bits.resize(m);
        const uint8_t* pa = a.bits.data();
        const uint8_t* pb = b.bits.data();
        const size_t sa = a.is_const ? 0 : 1, sb = b.is_const ? 0 : 1;
        uint8_t* o = out.bits.data();
        if (instr.op == VecOp::kAndBool) {
          for (size_t i = 0; i < m; ++i) o[i] = pa[i * sa] & pb[i * sb];
        } else {
          for (size_t i = 0; i < m; ++i) o[i] = pa[i * sa] | pb[i * sb];
        }
        stack.push_back(std::move(out));
        break;
      }
      case VecOp::kAndNum: {
        Vec b = pop(), a = pop();
        stack.push_back(BlendNum(a, b, n, /*pick_rhs_when_truthy=*/true));
        break;
      }
      case VecOp::kOrNum: {
        Vec b = pop(), a = pop();
        stack.push_back(BlendNum(a, b, n, /*pick_rhs_when_truthy=*/false));
        break;
      }
      case VecOp::kNot: {
        Vec a = pop();
        Vec out;
        out.kind = RegKind::kBool;
        out.is_const = a.is_const;
        const size_t m = OutLen(out.is_const, n);
        out.bits = TruthyMask(a, m);
        uint8_t* o = out.bits.data();
        for (size_t i = 0; i < m; ++i) o[i] ^= 1;
        stack.push_back(std::move(out));
        break;
      }
      case VecOp::kNegNum: {
        Vec a = pop();
        stack.push_back(NumUnary(a, n, [](double x) { return -x; }));
        break;
      }
      case VecOp::kPlusNum: {
        Vec a = pop();
        stack.push_back(NumUnary(a, n, [](double x) { return x; }));
        break;
      }
      case VecOp::kBoolToNum: {
        Vec a = pop();
        Vec out;
        out.kind = RegKind::kNum;
        out.is_const = a.is_const;
        const size_t m = OutLen(out.is_const, n);
        out.num.resize(m);
        double* o = out.num.data();
        for (size_t i = 0; i < m; ++i) o[i] = a.BitAt(i) ? 1.0 : 0.0;
        stack.push_back(std::move(out));
        break;
      }
      case VecOp::kSelect: {
        Vec e = pop(), t = pop(), c = pop();
        stack.push_back(Select(c, t, e, n));
        break;
      }
      case VecOp::kIsValid: {
        Vec a = pop();
        Vec out;
        out.kind = RegKind::kBool;
        out.is_const = a.is_const;
        const size_t m = OutLen(out.is_const, n);
        out.bits.resize(m);
        uint8_t* o = out.bits.data();
        for (size_t i = 0; i < m; ++i) o[i] = a.ValidAt(i) ? 1 : 0;
        stack.push_back(std::move(out));
        break;
      }
      case VecOp::kCallNum1: {
        Vec a = pop();
        Num1Fn fn = static_cast<Num1Fn>(instr.imm);
        stack.push_back(NumUnary(a, n, [fn](double x) { return ApplyNum1(fn, x); }));
        break;
      }
      case VecOp::kCallPow: {
        Vec b = pop(), a = pop();
        stack.push_back(
            NumBin(a, b, n, false, [](double x, double y) { return std::pow(x, y); }));
        break;
      }
      case VecOp::kCallClamp: {
        Vec hi = pop(), lo = pop(), x = pop();
        Vec out;
        out.kind = RegKind::kNum;
        out.is_const = x.is_const && lo.is_const && hi.is_const;
        const size_t m = OutLen(out.is_const, n);
        out.num.resize(m);
        double* onum = out.num.data();
        const bool need_valid =
            !x.valid.empty() || !lo.valid.empty() || !hi.valid.empty();
        uint8_t* ovalid = nullptr;
        if (need_valid) {
          out.valid.assign(m, 1);
          ovalid = out.valid.data();
        }
        for (size_t i = 0; i < m; ++i) {
          if (!x.ValidAt(i) || !lo.ValidAt(i) || !hi.ValidAt(i)) {
            ovalid[i] = 0;
            continue;
          }
          onum[i] = std::min(std::max(x.NumAt(i), lo.NumAt(i)), hi.NumAt(i));
        }
        stack.push_back(std::move(out));
        break;
      }
      case VecOp::kCallMin:
      case VecOp::kCallMax: {
        const size_t k = static_cast<size_t>(instr.imm);
        std::vector<Vec> args(k);
        for (size_t j = k; j-- > 0;) args[j] = pop();
        stack.push_back(MinMaxN(std::move(args), n, instr.op == VecOp::kCallMin));
        break;
      }
      case VecOp::kCallDatePart: {
        Vec a = pop();
        DatePart part = static_cast<DatePart>(instr.imm);
        stack.push_back(NumUnary(a, n, [part](double x) {
          return static_cast<double>(ApplyDatePart(part, static_cast<int64_t>(x)));
        }));
        break;
      }
      case VecOp::kCallDateTrunc: {
        Vec a = pop();
        const std::string& unit = p.str_consts[static_cast<size_t>(instr.imm)];
        stack.push_back(NumUnary(a, n, [&unit](double x) {
          return static_cast<double>(TsTruncate(static_cast<int64_t>(x), unit));
        }));
        break;
      }
      case VecOp::kCallDateUnitEnd: {
        Vec a = pop();
        const std::string& unit = p.str_consts[static_cast<size_t>(instr.imm)];
        stack.push_back(NumUnary(a, n, [&unit](double x) {
          int64_t start = TsTruncate(static_cast<int64_t>(x), unit);
          return static_cast<double>(start + TsUnitWidth(start, unit));
        }));
        break;
      }
      case VecOp::kCallLenStr: {
        Vec a = pop();
        Vec out;
        out.kind = RegKind::kNum;
        out.is_const = a.is_const;
        const size_t m = OutLen(out.is_const, n);
        out.num.resize(m);
        double* onum = out.num.data();
        out.valid.assign(m, 1);
        uint8_t* ovalid = out.valid.data();
        for (size_t i = 0; i < m; ++i) {
          const std::string* s = a.StrAt(i);
          if (s == nullptr) {
            ovalid[i] = 0;
          } else {
            onum[i] = static_cast<double>(s->size());
          }
        }
        stack.push_back(std::move(out));
        break;
      }
      case VecOp::kCallLower: {
        Vec a = pop();
        stack.push_back(StrTransform(a, n, /*to_lower=*/true));
        break;
      }
      case VecOp::kCallUpper: {
        Vec a = pop();
        stack.push_back(StrTransform(a, n, /*to_lower=*/false));
        break;
      }
    }
  }
  VP_CHECK(stack.size() == 1) << "vector program left " << stack.size()
                              << " registers on the stack";
  return std::move(stack.back());
}

// ---- Fused predicate filtering ----

namespace {

/// Per-batch compiled state of one fused conjunct: raw column pointers plus
/// the resolved constant. String constants against dictionary columns
/// resolve to a code once here, so the row loop is one int32 compare.
struct PredState {
  enum class Kind { kDouble, kInt64, kStrCode, kStrFlat };
  Kind kind = Kind::kDouble;
  BinaryOp cmp = BinaryOp::kLt;
  const uint8_t* valid = nullptr;  // nullptr == no nulls
  // kDouble / kInt64
  const double* d = nullptr;
  const int64_t* i64 = nullptr;
  double c = 0;
  // kStrCode
  const int32_t* codes = nullptr;
  int32_t code = -2;
  // kStrFlat
  const std::string* strs = nullptr;
  const std::string* sconst = nullptr;
};

/// Resolve every leaf against the batch's columns. Returns false when a
/// leaf cannot take the fused path (kNull columns, type drift) and the
/// caller must run the general register path.
bool PreparePreds(const Program& p,
                  const std::vector<Program::FusedPred>& leaves,
                  const data::Table& table, std::vector<PredState>* out) {
  out->reserve(leaves.size());
  for (const Program::FusedPred& fp : leaves) {
    const Column& col = table.column(static_cast<size_t>(fp.col));
    PredState s;
    s.cmp = fp.cmp;
    s.valid = col.null_count() > 0 ? col.validity_data() : nullptr;
    if (fp.is_str) {
      if (col.type() != DataType::kString) return false;
      const std::string& cst = p.str_consts[static_cast<size_t>(fp.str_const)];
      if (col.dict_encoded()) {
        s.kind = PredState::Kind::kStrCode;
        s.codes = col.codes_data();
        s.code = DictCodeOf(col.dict(), cst);
      } else {
        s.kind = PredState::Kind::kStrFlat;
        s.strs = col.strings_data();
        s.sconst = &cst;
      }
      out->push_back(s);
      continue;
    }
    switch (col.type()) {
      case DataType::kFloat64:
        s.kind = PredState::Kind::kDouble;
        s.d = col.doubles_data();
        break;
      case DataType::kInt64:
      case DataType::kTimestamp:
      case DataType::kBool:
        s.kind = PredState::Kind::kInt64;
        s.i64 = col.ints_data();
        break;
      default:
        return false;  // kNull columns: general path
    }
    s.c = fp.num_const;
    out->push_back(s);
  }
  return true;
}

kernels::Cmp KernelCmpOf(BinaryOp cmp) {
  switch (cmp) {
    case BinaryOp::kLt: return kernels::Cmp::kLt;
    case BinaryOp::kLte: return kernels::Cmp::kLte;
    case BinaryOp::kGt: return kernels::Cmp::kGt;
    case BinaryOp::kGte: return kernels::Cmp::kGte;
    case BinaryOp::kEq: return kernels::Cmp::kEq;
    default: return kernels::Cmp::kNeq;  // only compare ops reach here
  }
}

/// Evaluate one prepared leaf into a full-width 0/1 bitmap — the same
/// semantics as EqNum/CmpNum/EqStr against a non-null constant: null rows
/// fail every compare except != (which includes them), and NaN rows pass ==
/// (Value::Compare quirk), all owned by the compare kernels.
void PredBits(const PredState& s, size_t n, uint8_t* out) {
  switch (s.kind) {
    case PredState::Kind::kDouble:
      kernels::CompareNumToBits(s.d, s.valid, n, KernelCmpOf(s.cmp), s.c, out);
      return;
    case PredState::Kind::kInt64:
      kernels::CompareInt64ToBits(s.i64, s.valid, n, KernelCmpOf(s.cmp), s.c,
                                  out);
      return;
    case PredState::Kind::kStrCode:
      kernels::CompareCodeToBits(s.codes, n, s.cmp == BinaryOp::kNeq, s.code,
                                 out);
      return;
    case PredState::Kind::kStrFlat:
      kernels::CompareStrToBits(s.strs, s.valid, n, s.cmp == BinaryOp::kNeq,
                                *s.sconst, out);
      return;
  }
}

/// Compact (*sel)[base..] in place, keeping rows that pass the leaf —
/// candidate-list refinement for sparse AND chains.
void RefinePred(const PredState& s, std::vector<int32_t>* sel, size_t base) {
  switch (s.kind) {
    case PredState::Kind::kDouble:
      kernels::RefineNumIndices(s.d, s.valid, KernelCmpOf(s.cmp), s.c, sel,
                                base);
      return;
    case PredState::Kind::kInt64:
      kernels::RefineInt64Indices(s.i64, s.valid, KernelCmpOf(s.cmp), s.c, sel,
                                  base);
      return;
    case PredState::Kind::kStrCode:
      kernels::RefineCodeIndices(s.codes, s.cmp == BinaryOp::kNeq, s.code, sel,
                                 base);
      return;
    case PredState::Kind::kStrFlat:
      kernels::RefineStrIndices(s.strs, s.valid, s.cmp == BinaryOp::kNeq,
                                *s.sconst, sel, base);
      return;
  }
}

/// AND-chain filter with the density heuristic: the first conjunct always
/// evaluates as a branchless bitmap; if its selectivity is dense the chain
/// stays in the bitmap domain (AND-combine every conjunct, convert once),
/// otherwise the bitmap converts to an index vector and later conjuncts
/// refine only the survivors.
void FilterAndChain(const std::vector<PredState>& preds, size_t n,
                    std::vector<int32_t>* sel) {
  std::vector<uint8_t> bits(n);
  PredBits(preds[0], n, bits.data());
  const size_t matches = kernels::CountBits(bits.data(), n);
  if (preds.size() == 1 || kernels::PreferBitmap(matches, n)) {
    kernels::AddBitmapSelections(1);
    if (preds.size() > 1) {
      std::vector<uint8_t> tmp(n);
      for (size_t k = 1; k < preds.size(); ++k) {
        PredBits(preds[k], n, tmp.data());
        kernels::AndBits(bits.data(), tmp.data(), n);
      }
    }
    kernels::BitsToIndices(bits.data(), n, 0, sel);
    return;
  }
  kernels::AddIndexSelections(1);
  const size_t base = sel->size();
  kernels::BitsToIndices(bits.data(), n, 0, sel);
  for (size_t k = 1; k < preds.size(); ++k) RefinePred(preds[k], sel, base);
}

/// Arbitrary AND/OR tree of leaves as one bitmap-combine pass over the
/// postfix program in Program::fused_tree_ops. Equivalent to the general
/// register path because compare registers are two-valued (never null) with
/// exactly the leaf semantics above, and kAndBool/kOrBool are bitwise on
/// them.
void FilterTree(const std::vector<int32_t>& ops,
                const std::vector<PredState>& preds, size_t n,
                std::vector<int32_t>* sel) {
  std::vector<std::vector<uint8_t>> stack;
  for (int32_t op : ops) {
    if (op >= 0) {
      stack.emplace_back(n);
      PredBits(preds[static_cast<size_t>(op)], n, stack.back().data());
      continue;
    }
    std::vector<uint8_t> rhs = std::move(stack.back());
    stack.pop_back();
    if (op == Program::kTreeAnd) {
      kernels::AndBits(stack.back().data(), rhs.data(), n);
    } else {
      kernels::OrBits(stack.back().data(), rhs.data(), n);
    }
  }
  kernels::AddBitmapSelections(1);
  kernels::BitsToIndices(stack.back().data(), n, 0, sel);
}

}  // namespace

void BatchEvaluator::RunFilter(const Program& p, std::vector<int32_t>* sel) const {
  const size_t n = table_.num_rows();
  const bool and_chain = !p.fused_preds.empty();
  // OR-trees only take the bitmap pass when the SIMD kernels are on; with
  // the kill switch off they fall through to the general register path,
  // which is the genuine pre-kernel baseline for them.
  if (and_chain || (!p.fused_tree_ops.empty() && kernels::SimdEnabled())) {
    const std::vector<Program::FusedPred>& leaves =
        and_chain ? p.fused_preds : p.fused_tree_leaves;
    std::vector<PredState> preds;
    if (PreparePreds(p, leaves, table_, &preds) && n > 0) {
      if (and_chain) {
        FilterAndChain(preds, n, sel);
      } else {
        FilterTree(p.fused_tree_ops, preds, n, sel);
      }
      return;
    }
    if (n == 0) return;
  }
  Vec v = Run(p);
  const std::vector<uint8_t> mask = TruthyMask(v, v.is_const ? 1 : n);
  if (v.is_const) {
    if (mask[0]) {
      for (size_t i = 0; i < n; ++i) sel->push_back(static_cast<int32_t>(i));
    }
    return;
  }
  kernels::BitsToIndices(mask.data(), n, 0, sel);
}

void VecToColumn(Vec v, size_t n, Column* out) {
  // Fast path: adopt a freshly-computed float64 register's buffers wholesale
  // (a copy only when the buffers alias shared column storage).
  if (v.kind == RegKind::kNum && out->type() == DataType::kFloat64 &&
      !v.is_const && out->length() == 0) {
    *out = Column::FromDoubles(std::move(v.num).take(), std::move(v.valid).take());
    return;
  }
  // Dictionary passthrough: a code-backed register becomes a dictionary
  // column sharing the same dictionary — no per-row hashing or appends.
  if (v.kind == RegKind::kStr && v.dict && !v.is_const &&
      out->type() == DataType::kString && out->length() == 0) {
    *out = Column::FromDictionary(v.dict, std::move(v.codes).take());
    return;
  }
  out->Reserve(out->length() + n);
  for (size_t i = 0; i < n; ++i) v.AppendCellTo(i, out);
}

void BatchEvaluator::RunToColumn(const Program& p, Column* out) const {
  VecToColumn(Run(p), table_.num_rows(), out);
}

void BatchEvaluator::RunToValues(const Program& p, std::vector<Value>* out) const {
  const size_t n = table_.num_rows();
  Vec v = Run(p);
  out->reserve(out->size() + n);
  for (size_t i = 0; i < n; ++i) out->push_back(v.CellValue(i));
}

// ---- Morsel-parallel execution ----

namespace {

/// True when a morsel decomposition is worth dispatching at all.
bool MorselWorthIt(size_t num_morsels) {
  return num_morsels > 1 && parallel::MorselParallelEnabled() &&
         parallel::MorselParallelism() > 1;
}

/// Fused comparison ops map 1:1 onto zone-map ops; anything else (And/Or,
/// arithmetic) never appears in fused_preds.
bool ZoneCmpOf(BinaryOp cmp, storage::CmpOp* out) {
  switch (cmp) {
    case BinaryOp::kEq: *out = storage::CmpOp::kEq; return true;
    case BinaryOp::kNeq: *out = storage::CmpOp::kNeq; return true;
    case BinaryOp::kLt: *out = storage::CmpOp::kLt; return true;
    case BinaryOp::kLte: *out = storage::CmpOp::kLte; return true;
    case BinaryOp::kGt: *out = storage::CmpOp::kGt; return true;
    case BinaryOp::kGte: *out = storage::CmpOp::kGte; return true;
    default: return false;
  }
}

/// Zone-map pruning of whole morsels for a fused AND-of-conjuncts filter:
/// skip[m] == 1 means no row of morsel m can pass the conjunction, so its
/// filter run (which would select nothing) is skipped entirely. Returns an
/// empty vector when nothing is prunable, which keeps the common path free.
///
/// Sound regardless of whether PreparePreds later takes the fused loops or
/// the general register path: fused_preds is only non-empty when the whole
/// program is the AND-tree, both paths implement the same per-row
/// comparison semantics, and ColumnZone::MayMatch* over-approximates them.
/// Conjuncts whose column type does not line up with the zone kind simply
/// never prune (MayMatch* returns true on kind mismatch).
std::vector<uint8_t> ZoneSkipMorsels(const data::Table& table, const Program& p,
                                     const std::vector<parallel::Range>& morsels) {
  if (p.fused_preds.empty() || morsels.size() < 2 ||
      !storage::ZoneMapPruningEnabled()) {
    return {};
  }
  std::vector<uint8_t> skip(morsels.size(), 0);
  size_t pruned = 0;
  for (const Program::FusedPred& fp : p.fused_preds) {
    storage::CmpOp cmp;
    if (!ZoneCmpOf(fp.cmp, &cmp)) continue;
    if (fp.col < 0 || static_cast<size_t>(fp.col) >= table.num_columns()) continue;
    const Column& col = table.column(static_cast<size_t>(fp.col));
    const auto zones = storage::GetMorselZones(col, morsels);
    // Dictionary constants resolve exactly like the fused loop's
    // DictCodeOf: -2 when absent (so == prunes everywhere, != nowhere
    // with nulls present).
    int32_t code = -2;
    const std::string* sconst = nullptr;
    if (fp.is_str) {
      sconst = &p.str_consts[static_cast<size_t>(fp.str_const)];
      if (col.dict_encoded()) code = DictCodeOf(col.dict(), *sconst);
    }
    for (size_t m = 0; m < morsels.size(); ++m) {
      if (skip[m]) continue;
      const storage::ColumnZone& z = (*zones)[m];
      bool may_match = true;
      if (!fp.is_str) {
        may_match = z.MayMatchNumeric(cmp, fp.num_const);
      } else if (col.dict_encoded()) {
        may_match = z.MayMatchDictCode(cmp, code);
      } else {
        may_match = z.MayMatchString(cmp, *sconst);
      }
      if (!may_match) {
        skip[m] = 1;
        ++pruned;
      }
    }
  }
  if (pruned == 0) return {};
  storage::AddMorselsPruned(pruned);
  return skip;
}

/// Stitch per-morsel result registers (in morsel order) into one register of
/// `n` rows. Registers are per-row containers, so concatenation in morsel
/// order reproduces the full-batch register exactly. Constness is structural
/// (a function of the program, not the data), so either every morsel is a
/// broadcast constant — in which case the first stands for the whole batch —
/// or none is. Code-backed string parts share their source column's
/// dictionary (slices of one table), so their codes concatenate under it;
/// a mixed-form input falls back to pointer views.
Vec ConcatVecs(std::vector<Vec> parts, size_t n) {
  VP_CHECK(!parts.empty()) << "no morsel results to stitch";
  if (parts[0].is_const) return std::move(parts[0]);
  Vec out;
  out.kind = parts[0].kind;
  switch (out.kind) {
    case RegKind::kNum: {
      out.num.reserve(n);
      bool need_valid = false;
      for (const Vec& part : parts) need_valid = need_valid || !part.valid.empty();
      if (need_valid) out.valid.reserve(n);
      for (Vec& part : parts) {
        const size_t rows = part.num.size();
        if (need_valid) {
          if (part.valid.empty()) {
            out.valid.append(rows, 1);
          } else {
            out.valid.append(std::move(part.valid));
          }
        }
        out.num.append(std::move(part.num));
      }
      return out;
    }
    case RegKind::kBool: {
      out.bits.reserve(n);
      for (Vec& part : parts) out.bits.append(std::move(part.bits));
      return out;
    }
    case RegKind::kStr: {
      bool all_same_dict = parts[0].dict != nullptr;
      for (const Vec& part : parts) {
        all_same_dict = all_same_dict && part.dict.get() == parts[0].dict.get();
      }
      if (all_same_dict) {
        out.dict = parts[0].dict;
        out.codes.reserve(n);
        for (Vec& part : parts) out.codes.append(std::move(part.codes));
        return out;
      }
      // Pointer views into column storage stay valid because the slices
      // share the caller's table storage; stores and dictionaries owning
      // cell strings move into str_refs so the stitched register keeps them
      // alive. Code-backed parts degrade to views through their dictionary.
      out.str.reserve(n);
      for (Vec& part : parts) {
        if (part.dict) {
          const size_t rows = part.codes.size();
          for (size_t i = 0; i < rows; ++i) out.str.push_back(part.StrAt(i));
          out.str_refs.push_back(std::move(part.dict));
          continue;
        }
        out.str.append(std::move(part.str));
        if (part.str_store) out.str_refs.push_back(std::move(part.str_store));
        out.str_refs.insert(out.str_refs.end(),
                            std::make_move_iterator(part.str_refs.begin()),
                            std::make_move_iterator(part.str_refs.end()));
      }
      return out;
    }
    case RegKind::kBoxed: {
      out.boxed.reserve(n);
      for (Vec& part : parts) out.boxed.append(std::move(part.boxed));
      return out;
    }
  }
  return out;
}

}  // namespace

Vec RunMorselParallel(const data::Table& table, const Program& p,
                      const common::CancelToken* cancel) {
  const size_t n = table.num_rows();
  const std::vector<parallel::Range> morsels = parallel::MorselRanges(n);
  if (!MorselWorthIt(morsels.size())) return BatchEvaluator(table).Run(p);
  std::vector<Vec> parts(morsels.size());
  parallel::ParallelFor(
      morsels.size(),
      [&](size_t m) {
        data::TablePtr slice = table.Slice(morsels[m].begin, morsels[m].size());
        parts[m] = BatchEvaluator(*slice).Run(p);
      },
      cancel);
  // A fired token leaves skipped morsels' slots default-constructed; the
  // stitch would be garbage. Return an empty register instead — the caller
  // polls the token and discards the result.
  if (common::Fired(cancel)) return Vec{};
  return ConcatVecs(std::move(parts), n);
}

void RunFilterMorselParallel(const data::Table& table, const Program& p,
                             std::vector<int32_t>* sel,
                             const common::CancelToken* cancel) {
  const std::vector<parallel::Range> morsels = parallel::MorselRanges(table.num_rows());
  // Zone-map morsel pruning: a pruned morsel's filter run would select
  // nothing, so skipping it leaves the stitched selection vector
  // bit-identical while saving the scan.
  const std::vector<uint8_t> skip = ZoneSkipMorsels(table, p, morsels);
  if (!MorselWorthIt(morsels.size())) {
    if (!skip.empty()) {
      // Sequential, but still morsel-at-a-time so pruning pays off (zone
      // maps accelerate the in-memory case independent of parallelism).
      for (size_t m = 0; m < morsels.size(); ++m) {
        if (skip[m]) continue;
        if (common::Fired(cancel)) return;
        data::TablePtr slice = table.Slice(morsels[m].begin, morsels[m].size());
        std::vector<int32_t> part;
        BatchEvaluator(*slice).RunFilter(p, &part);
        const int32_t offset = static_cast<int32_t>(morsels[m].begin);
        sel->reserve(sel->size() + part.size());
        for (int32_t r : part) sel->push_back(r + offset);
      }
      return;
    }
    BatchEvaluator(table).RunFilter(p, sel);
    return;
  }
  std::vector<std::vector<int32_t>> parts(morsels.size());
  parallel::ParallelFor(
      morsels.size(),
      [&](size_t m) {
        if (!skip.empty() && skip[m]) return;  // zone-pruned: selects nothing
        data::TablePtr slice = table.Slice(morsels[m].begin, morsels[m].size());
        BatchEvaluator(*slice).RunFilter(p, &parts[m]);
        // Slice-local row ids -> table row ids.
        const int32_t offset = static_cast<int32_t>(morsels[m].begin);
        for (int32_t& r : parts[m]) r += offset;
      },
      cancel);
  if (common::Fired(cancel)) return;  // partial parts; caller discards sel
  // Ordered stitch: morsel order == ascending row order, exactly the
  // sequential selection vector.
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  sel->reserve(sel->size() + total);
  for (const auto& part : parts) sel->insert(sel->end(), part.begin(), part.end());
}

// ---- Grouping ----

namespace {

struct PosHash {
  const std::vector<size_t>* hashes;
  size_t operator()(uint32_t pos) const { return (*hashes)[pos]; }
};

struct PosEq {
  const std::vector<const Vec*>* keys;
  const std::vector<int32_t>* rows;
  bool operator()(uint32_t a, uint32_t b) const {
    const size_t ra = static_cast<size_t>((*rows)[a]);
    const size_t rb = static_cast<size_t>((*rows)[b]);
    for (const Vec* key : *keys) {
      if (!KeyCellEq(*key, ra, rb)) return false;
    }
    return true;
  }
};

constexpr uint32_t kNoGroup = 0xFFFFFFFFu;

/// Dense-code grouping for a single code-backed key: the dictionary bounds
/// the key domain, so `code -> group id` is a direct array lookup — no hash
/// map, no hashing pass. Slot 0 holds null (code -1). First-seen group order
/// is a property of the scan (and, in the parallel branch, of the chunk
/// merge), so the result is identical to the generic hash path and to the
/// flat-string path for the same cell values.
GroupResult BuildGroupsByCodes(const Vec& key, const std::vector<int32_t>& rows,
                               const std::vector<parallel::Range>& chunks) {
  GroupResult result;
  const size_t n = rows.size();
  result.group_of.resize(n);
  const int32_t* codes = key.codes.data();
  const size_t slots = key.dict->values.size() + 1;

  if (!MorselWorthIt(chunks.size())) {
    std::vector<uint32_t> gid_of_code(slots, kNoGroup);
    for (size_t pos = 0; pos < n; ++pos) {
      const size_t slot =
          static_cast<size_t>(codes[static_cast<size_t>(rows[pos])] + 1);
      uint32_t& gid = gid_of_code[slot];
      if (gid == kNoGroup) {
        gid = static_cast<uint32_t>(result.rep_rows.size());
        result.rep_rows.push_back(rows[pos]);
      }
      result.group_of[pos] = gid;
    }
    return result;
  }

  // Parallel: chunk-local dense tables, merged in chunk order — the same
  // merge shape (and therefore the same group ids) as the generic path.
  std::vector<std::vector<uint32_t>> chunk_gid(
      chunks.size(), std::vector<uint32_t>(slots, kNoGroup));
  std::vector<std::vector<uint32_t>> chunk_reps(chunks.size());
  parallel::ParallelFor(chunks.size(), [&](size_t c) {
    std::vector<uint32_t>& gid_of_code = chunk_gid[c];
    std::vector<uint32_t>& reps = chunk_reps[c];
    for (size_t pos = chunks[c].begin; pos < chunks[c].end; ++pos) {
      const size_t slot =
          static_cast<size_t>(codes[static_cast<size_t>(rows[pos])] + 1);
      uint32_t& gid = gid_of_code[slot];
      if (gid == kNoGroup) {
        gid = static_cast<uint32_t>(reps.size());
        reps.push_back(static_cast<uint32_t>(pos));
      }
      result.group_of[pos] = gid;
    }
  });
  std::vector<uint32_t> global_gid(slots, kNoGroup);
  std::vector<std::vector<uint32_t>> remap(chunks.size());
  for (size_t c = 0; c < chunks.size(); ++c) {
    remap[c].resize(chunk_reps[c].size());
    for (size_t k = 0; k < chunk_reps[c].size(); ++k) {
      const uint32_t pos = chunk_reps[c][k];
      const size_t slot =
          static_cast<size_t>(codes[static_cast<size_t>(rows[pos])] + 1);
      uint32_t& gid = global_gid[slot];
      if (gid == kNoGroup) {
        gid = static_cast<uint32_t>(result.rep_rows.size());
        result.rep_rows.push_back(rows[pos]);
      }
      remap[c][k] = gid;
    }
  }
  parallel::ParallelFor(chunks.size(), [&](size_t c) {
    for (size_t pos = chunks[c].begin; pos < chunks[c].end; ++pos) {
      result.group_of[pos] = remap[c][result.group_of[pos]];
    }
  });
  return result;
}

}  // namespace

GroupResult BuildGroups(const std::vector<const Vec*>& keys,
                        const std::vector<int32_t>& rows) {
  GroupResult result;
  const size_t n = rows.size();
  result.group_of.resize(n);
  if (keys.empty()) {
    if (n > 0) result.rep_rows.push_back(rows[0]);
    return result;  // group_of already zero-initialized
  }

  const std::vector<parallel::Range> chunks = parallel::MorselRanges(n);

  // Single code-backed key: group by direct code lookup instead of a hash
  // map (unless the dictionary vastly outnumbers the rows — a slice sharing
  // a huge dictionary — where the dense tables would cost more than they
  // save).
  if (keys.size() == 1 && keys[0]->kind == RegKind::kStr && keys[0]->dict &&
      !keys[0]->is_const) {
    const size_t slots = keys[0]->dict->values.size() + 1;
    const size_t tables = MorselWorthIt(chunks.size()) ? chunks.size() + 1 : 1;
    if (slots * tables <= 4 * n + 4096) {
      return BuildGroupsByCodes(*keys[0], rows, chunks);
    }
  }

  std::vector<size_t> hashes(n);
  parallel::ParallelFor(chunks.size(), [&](size_t c) {
    for (size_t pos = chunks[c].begin; pos < chunks[c].end; ++pos) {
      size_t h = 0x12345;
      const size_t r = static_cast<size_t>(rows[pos]);
      for (const Vec* key : keys) {
        h = h * 1099511628211ull + KeyCellHash(*key, r);
      }
      hashes[pos] = h;
    }
  });

  if (!MorselWorthIt(chunks.size())) {
    std::unordered_map<uint32_t, uint32_t, PosHash, PosEq> seen(
        /*bucket_count=*/std::max<size_t>(16, n / 4), PosHash{&hashes},
        PosEq{&keys, &rows});
    for (size_t pos = 0; pos < n; ++pos) {
      auto [it, inserted] = seen.try_emplace(
          static_cast<uint32_t>(pos), static_cast<uint32_t>(result.rep_rows.size()));
      if (inserted) result.rep_rows.push_back(rows[pos]);
      result.group_of[pos] = it->second;
    }
    return result;
  }

  // Parallel path: each worker hash-groups one chunk of positions into a
  // local table (group_of holds chunk-local ids, reps in chunk-first-seen
  // order), then the chunk tables merge sequentially in chunk order.
  // Iterating chunks in order and each chunk's reps in local first-seen
  // order visits every group exactly at its global first occurrence, so the
  // assigned global ids and representative rows are identical to the
  // sequential scan.
  std::vector<std::vector<uint32_t>> chunk_reps(chunks.size());
  parallel::ParallelFor(chunks.size(), [&](size_t c) {
    std::unordered_map<uint32_t, uint32_t, PosHash, PosEq> seen(
        /*bucket_count=*/std::max<size_t>(16, chunks[c].size() / 4),
        PosHash{&hashes}, PosEq{&keys, &rows});
    std::vector<uint32_t>& reps = chunk_reps[c];
    for (size_t pos = chunks[c].begin; pos < chunks[c].end; ++pos) {
      auto [it, inserted] = seen.try_emplace(static_cast<uint32_t>(pos),
                                             static_cast<uint32_t>(reps.size()));
      if (inserted) reps.push_back(static_cast<uint32_t>(pos));
      result.group_of[pos] = it->second;
    }
  });

  std::unordered_map<uint32_t, uint32_t, PosHash, PosEq> global(
      /*bucket_count=*/std::max<size_t>(16, n / 4), PosHash{&hashes},
      PosEq{&keys, &rows});
  std::vector<std::vector<uint32_t>> remap(chunks.size());
  for (size_t c = 0; c < chunks.size(); ++c) {
    remap[c].resize(chunk_reps[c].size());
    for (size_t k = 0; k < chunk_reps[c].size(); ++k) {
      const uint32_t pos = chunk_reps[c][k];
      auto [it, inserted] =
          global.try_emplace(pos, static_cast<uint32_t>(result.rep_rows.size()));
      if (inserted) result.rep_rows.push_back(rows[pos]);
      remap[c][k] = it->second;
    }
  }
  parallel::ParallelFor(chunks.size(), [&](size_t c) {
    for (size_t pos = chunks[c].begin; pos < chunks[c].end; ++pos) {
      result.group_of[pos] = remap[c][result.group_of[pos]];
    }
  });
  return result;
}

// ---- Per-bin accumulation kernels ----
//
// Thin wrappers: the loop bodies live in kernels/ (shared with the SQL
// executor's grouped accumulation), these adapt a Vec to the kernels'
// NumSpan view.

kernels::NumSpan NumSpanOf(const Vec& values) {
  kernels::NumSpan span;
  span.stride = values.is_const ? 0 : 1;
  if (values.kind == RegKind::kBool) {
    span.bits = values.bits.data();
  } else {
    span.vals = values.num.data();
    span.valid = values.valid.empty() ? nullptr : values.valid.data();
  }
  return span;
}

bool ComputeBinIndices(const Vec& values, double start, double step,
                       size_t num_bins, parallel::Range span, int32_t* bin_of) {
  return kernels::ComputeBinIndices(NumSpanOf(values), start, step, num_bins,
                                    span.begin, span.end, bin_of);
}

void AccumulateBinRows(const int32_t* bin_of, parallel::Range span,
                       std::vector<int64_t>* rows,
                       std::vector<int64_t>* first_row) {
  kernels::AccumulateBinRows(bin_of, span.begin, span.end, rows->data(),
                             first_row->data());
}

void AccumulateBinAggs(const Vec& values, const int32_t* bin_of,
                       parallel::Range span, BinAggSlots* slots) {
  kernels::AccumulateBinAggs(NumSpanOf(values), bin_of, span.begin, span.end,
                             slots);
}

}  // namespace expr
}  // namespace vegaplus
