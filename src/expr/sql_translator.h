// Vega-expression → SQL translation (§4 of the paper: the filter transform's
// predicate expression is parsed to an AST and compiled to a WHERE clause).
//
// Signal references become *holes* written as ${name} or ${name[i]} in the
// emitted SQL text; the VDT operator fills them with SQL literals at dataflow
// evaluation time, when the signal values are known. Expressions using
// functions with no SQL equivalent return NotImplemented, which the rewriter
// treats as "fall back to native execution in Vega".
#ifndef VEGAPLUS_EXPR_SQL_TRANSLATOR_H_
#define VEGAPLUS_EXPR_SQL_TRANSLATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/ast.h"
#include "expr/evaluator.h"

namespace vegaplus {
namespace expr {

/// \brief SQL text plus the signal names it depends on (its holes).
struct SqlFragment {
  std::string text;
  std::vector<std::string> signal_deps;
};

/// Translate an expression AST to a SQL scalar expression.
Result<SqlFragment> TranslateToSql(const NodePtr& node);

/// Render a scalar as a SQL literal (strings quoted/escaped, null -> NULL).
std::string SqlLiteral(const data::Value& v);

/// Quote a column identifier if it is not a plain [A-Za-z_][A-Za-z0-9_]* name.
std::string QuoteIdentifier(const std::string& name);

/// Replace every ${name} / ${name[i]} / ${name:id} hole in `sql_template`
/// using `signals`. Plain holes render as SQL literals; `:id` holes render
/// the (string) signal value as a quoted identifier — used by the rewriter
/// when a transform's target *field* is signal-driven (e.g. a field
/// dropdown). Unresolvable holes or array-valued signals used without an
/// index are errors.
Result<std::string> FillSqlHoles(const std::string& sql_template,
                                 const SignalResolver& signals);

/// Collect hole names appearing in `sql_template` (deduplicated).
std::vector<std::string> CollectHoles(const std::string& sql_template);

}  // namespace expr
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_SQL_TRANSLATOR_H_
