#include "expr/evaluator.h"

#include <cmath>

#include "common/str_util.h"
#include "expr/functions.h"

namespace vegaplus {
namespace expr {

Status Validate(const NodePtr& node) {
  if (!node) return Status::InvalidArgument("expr: null node");
  if (node->kind == NodeKind::kCall) {
    const FunctionDef* def = FindFunction(node->name);
    if (def == nullptr) {
      return Status::KeyError("expr: unknown function '" + node->name + "'");
    }
    int n = static_cast<int>(node->args.size());
    if (n < def->min_args || (def->max_args >= 0 && n > def->max_args)) {
      return Status::InvalidArgument(
          StrFormat("expr: function '%s' called with %d args (expects %d..%d)",
                    node->name.c_str(), n, def->min_args, def->max_args));
    }
  }
  for (const NodePtr& child : {node->a, node->b, node->c}) {
    if (child) VP_RETURN_IF_ERROR(Validate(child));
  }
  for (const NodePtr& arg : node->args) VP_RETURN_IF_ERROR(Validate(arg));
  return Status::OK();
}

namespace {

EvalValue EvalBinary(BinaryOp op, const EvalValue& lhs, const EvalValue& rhs) {
  switch (op) {
    case BinaryOp::kAnd:
      return lhs.Truthy() ? rhs : lhs;
    case BinaryOp::kOr:
      return lhs.Truthy() ? lhs : rhs;
    default:
      break;
  }
  // Equality works on any scalar pair; null == null is true (JS-ish but also
  // what Vega users expect from `datum.x == null` guards).
  if (op == BinaryOp::kEq || op == BinaryOp::kNeq) {
    bool eq = lhs == rhs;
    return EvalValue::Bool(op == BinaryOp::kEq ? eq : !eq);
  }
  // Remaining operators are numeric/string-ordered; null propagates (SQL-like,
  // so client execution agrees with rewritten WHERE clauses).
  if (lhs.is_array() || rhs.is_array()) return EvalValue::Null();
  const data::Value& a = lhs.scalar();
  const data::Value& b = rhs.scalar();
  if (a.is_null() || b.is_null()) {
    // Comparisons with null are false; arithmetic with null is null.
    switch (op) {
      case BinaryOp::kLt:
      case BinaryOp::kLte:
      case BinaryOp::kGt:
      case BinaryOp::kGte:
        return EvalValue::Bool(false);
      default:
        return EvalValue::Null();
    }
  }
  // String concatenation with '+'.
  if (op == BinaryOp::kAdd && (a.is_string() || b.is_string())) {
    return EvalValue::String(a.ToString() + b.ToString());
  }
  // String ordering comparisons.
  if (a.is_string() && b.is_string()) {
    int cmp = a.Compare(b);
    switch (op) {
      case BinaryOp::kLt: return EvalValue::Bool(cmp < 0);
      case BinaryOp::kLte: return EvalValue::Bool(cmp <= 0);
      case BinaryOp::kGt: return EvalValue::Bool(cmp > 0);
      case BinaryOp::kGte: return EvalValue::Bool(cmp >= 0);
      default: return EvalValue::Null();
    }
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  switch (op) {
    case BinaryOp::kAdd: return EvalValue::Number(x + y);
    case BinaryOp::kSub: return EvalValue::Number(x - y);
    case BinaryOp::kMul: return EvalValue::Number(x * y);
    case BinaryOp::kDiv: return y == 0 ? EvalValue::Null() : EvalValue::Number(x / y);
    case BinaryOp::kMod: return y == 0 ? EvalValue::Null() : EvalValue::Number(std::fmod(x, y));
    case BinaryOp::kLt: return EvalValue::Bool(x < y);
    case BinaryOp::kLte: return EvalValue::Bool(x <= y);
    case BinaryOp::kGt: return EvalValue::Bool(x > y);
    case BinaryOp::kGte: return EvalValue::Bool(x >= y);
    default: return EvalValue::Null();
  }
}

}  // namespace

EvalValue Evaluate(const NodePtr& node, const EvalContext& ctx) {
  if (!node) return EvalValue::Null();
  switch (node->kind) {
    case NodeKind::kLiteral:
      return EvalValue(node->literal);
    case NodeKind::kIdentifier: {
      if (node->name == "datum") return EvalValue::Null();  // bare datum unsupported
      if (ctx.signals != nullptr) {
        EvalValue out;
        if (ctx.signals->Lookup(node->name, &out)) return out;
      }
      return EvalValue::Null();
    }
    case NodeKind::kMember: {
      if (node->a && node->a->kind == NodeKind::kIdentifier && node->a->name == "datum") {
        if (ctx.table == nullptr) return EvalValue::Null();
        return EvalValue(ctx.table->ValueAt(ctx.row, node->name));
      }
      // Member on arrays: only `.length`.
      EvalValue obj = Evaluate(node->a, ctx);
      if (obj.is_array() && node->name == "length") {
        return EvalValue::Number(static_cast<double>(obj.array().size()));
      }
      return EvalValue::Null();
    }
    case NodeKind::kIndex: {
      EvalValue obj = Evaluate(node->a, ctx);
      EvalValue idx = Evaluate(node->b, ctx);
      if (!obj.is_array() || idx.is_array() || idx.scalar().is_null()) {
        return EvalValue::Null();
      }
      double d = idx.scalar().AsDouble();
      if (d < 0 || d != std::floor(d)) return EvalValue::Null();
      return EvalValue(obj.At(static_cast<size_t>(d)));
    }
    case NodeKind::kUnary: {
      EvalValue v = Evaluate(node->a, ctx);
      switch (node->unary_op) {
        case UnaryOp::kNot:
          return EvalValue::Bool(!v.Truthy());
        case UnaryOp::kNeg:
          if (v.is_array() || v.scalar().is_null()) return EvalValue::Null();
          return EvalValue::Number(-v.scalar().AsDouble());
        case UnaryOp::kPlus:
          if (v.is_array() || v.scalar().is_null()) return EvalValue::Null();
          return EvalValue::Number(v.scalar().AsDouble());
      }
      return EvalValue::Null();
    }
    case NodeKind::kBinary: {
      // Short-circuit for && / ||.
      if (node->binary_op == BinaryOp::kAnd) {
        EvalValue lhs = Evaluate(node->a, ctx);
        return lhs.Truthy() ? Evaluate(node->b, ctx) : lhs;
      }
      if (node->binary_op == BinaryOp::kOr) {
        EvalValue lhs = Evaluate(node->a, ctx);
        return lhs.Truthy() ? lhs : Evaluate(node->b, ctx);
      }
      return EvalBinary(node->binary_op, Evaluate(node->a, ctx), Evaluate(node->b, ctx));
    }
    case NodeKind::kTernary:
      return Evaluate(node->a, ctx).Truthy() ? Evaluate(node->b, ctx)
                                             : Evaluate(node->c, ctx);
    case NodeKind::kCall: {
      const FunctionDef* def = FindFunction(node->name);
      if (def == nullptr) return EvalValue::Null();
      std::vector<EvalValue> args;
      args.reserve(node->args.size());
      for (const NodePtr& arg : node->args) args.push_back(Evaluate(arg, ctx));
      return def->eval(args);
    }
    case NodeKind::kArray: {
      std::vector<data::Value> items;
      items.reserve(node->args.size());
      for (const NodePtr& arg : node->args) {
        EvalValue v = Evaluate(arg, ctx);
        items.push_back(v.is_array() ? data::Value::Null() : v.scalar());
      }
      return EvalValue::Array(std::move(items));
    }
  }
  return EvalValue::Null();
}

}  // namespace expr
}  // namespace vegaplus
