#include "expr/sql_translator.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/str_util.h"
#include "expr/functions.h"

namespace vegaplus {
namespace expr {

namespace {

bool IsPlainIdentifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

void AddDep(SqlFragment* frag, const std::string& name) {
  if (std::find(frag->signal_deps.begin(), frag->signal_deps.end(), name) ==
      frag->signal_deps.end()) {
    frag->signal_deps.push_back(name);
  }
}

class Translator {
 public:
  Result<SqlFragment> Translate(const NodePtr& node) {
    std::string text;
    VP_RETURN_IF_ERROR(Emit(node, &text));
    frag_.text = std::move(text);
    return frag_;
  }

 private:
  Status Emit(const NodePtr& node, std::string* out) {
    if (!node) return Status::InvalidArgument("sql translate: null node");
    switch (node->kind) {
      case NodeKind::kLiteral:
        out->append(SqlLiteral(node->literal));
        return Status::OK();
      case NodeKind::kIdentifier:
        // A bare identifier is a signal reference -> hole.
        AddDep(&frag_, node->name);
        out->append("${" + node->name + "}");
        return Status::OK();
      case NodeKind::kMember:
        if (node->a && node->a->kind == NodeKind::kIdentifier &&
            node->a->name == "datum") {
          out->append(QuoteIdentifier(node->name));
          return Status::OK();
        }
        return Status::NotImplemented("sql translate: member access on non-datum");
      case NodeKind::kIndex: {
        // signal[i] with a literal integer index -> indexed hole.
        if (node->a && node->a->kind == NodeKind::kIdentifier &&
            node->a->name != "datum" && node->b &&
            node->b->kind == NodeKind::kLiteral && node->b->literal.is_numeric()) {
          double d = node->b->literal.AsDouble();
          if (d >= 0 && d == std::floor(d)) {
            AddDep(&frag_, node->a->name);
            out->append(StrFormat("${%s[%d]}", node->a->name.c_str(),
                                  static_cast<int>(d)));
            return Status::OK();
          }
        }
        return Status::NotImplemented("sql translate: dynamic index");
      }
      case NodeKind::kUnary:
        switch (node->unary_op) {
          case UnaryOp::kNot:
            out->append("(NOT ");
            VP_RETURN_IF_ERROR(Emit(node->a, out));
            out->append(")");
            return Status::OK();
          case UnaryOp::kNeg:
            out->append("(-");
            VP_RETURN_IF_ERROR(Emit(node->a, out));
            out->append(")");
            return Status::OK();
          case UnaryOp::kPlus:
            return Emit(node->a, out);
        }
        return Status::NotImplemented("sql translate: unary op");
      case NodeKind::kBinary: {
        const char* op = nullptr;
        switch (node->binary_op) {
          case BinaryOp::kAdd: op = "+"; break;
          case BinaryOp::kSub: op = "-"; break;
          case BinaryOp::kMul: op = "*"; break;
          case BinaryOp::kDiv: op = "/"; break;
          case BinaryOp::kMod: op = "%"; break;
          case BinaryOp::kEq: op = "="; break;
          case BinaryOp::kNeq: op = "<>"; break;
          case BinaryOp::kLt: op = "<"; break;
          case BinaryOp::kLte: op = "<="; break;
          case BinaryOp::kGt: op = ">"; break;
          case BinaryOp::kGte: op = ">="; break;
          case BinaryOp::kAnd: op = "AND"; break;
          case BinaryOp::kOr: op = "OR"; break;
        }
        out->append("(");
        VP_RETURN_IF_ERROR(Emit(node->a, out));
        out->append(" ");
        out->append(op);
        out->append(" ");
        VP_RETURN_IF_ERROR(Emit(node->b, out));
        out->append(")");
        return Status::OK();
      }
      case NodeKind::kTernary:
        out->append("(CASE WHEN ");
        VP_RETURN_IF_ERROR(Emit(node->a, out));
        out->append(" THEN ");
        VP_RETURN_IF_ERROR(Emit(node->b, out));
        out->append(" ELSE ");
        VP_RETURN_IF_ERROR(Emit(node->c, out));
        out->append(" END)");
        return Status::OK();
      case NodeKind::kCall:
        return EmitCall(node, out);
      case NodeKind::kArray:
        return Status::NotImplemented("sql translate: bare array literal");
    }
    return Status::NotImplemented("sql translate: unknown node");
  }

  Status EmitCall(const NodePtr& node, std::string* out) {
    // Internal marker used by the rewriter: __sigfield(sig) is a column
    // whose *name* is the string value of signal `sig` -> identifier hole.
    if (node->name == "__sigfield") {
      if (node->args.size() != 1 || !node->args[0] ||
          node->args[0]->kind != NodeKind::kIdentifier) {
        return Status::InvalidArgument("sql translate: __sigfield needs a signal");
      }
      AddDep(&frag_, node->args[0]->name);
      out->append("${" + node->args[0]->name + ":id}");
      return Status::OK();
    }
    const FunctionDef* def = FindFunction(node->name);
    if (def == nullptr) {
      return Status::KeyError("sql translate: unknown function '" + node->name + "'");
    }
    if (!def->sql_translatable) {
      return Status::NotImplemented("sql translate: function '" + node->name +
                                    "' has no SQL equivalent");
    }
    // Bespoke emitters.
    if (node->name == "isValid") {
      out->append("(");
      VP_RETURN_IF_ERROR(Emit(node->args[0], out));
      out->append(" IS NOT NULL)");
      return Status::OK();
    }
    if (node->name == "if") {
      out->append("(CASE WHEN ");
      VP_RETURN_IF_ERROR(Emit(node->args[0], out));
      out->append(" THEN ");
      VP_RETURN_IF_ERROR(Emit(node->args[1], out));
      out->append(" ELSE ");
      VP_RETURN_IF_ERROR(Emit(node->args[2], out));
      out->append(" END)");
      return Status::OK();
    }
    if (node->name == "clamp") {
      out->append("LEAST(GREATEST(");
      VP_RETURN_IF_ERROR(Emit(node->args[0], out));
      out->append(", ");
      VP_RETURN_IF_ERROR(Emit(node->args[1], out));
      out->append("), ");
      VP_RETURN_IF_ERROR(Emit(node->args[2], out));
      out->append(")");
      return Status::OK();
    }
    if (node->name == "inrange") {
      // inrange(x, sig) / inrange(x, [a, b]) -> (x BETWEEN lo AND hi).
      const NodePtr& range = node->args[1];
      std::string lo, hi;
      if (range->kind == NodeKind::kIdentifier) {
        AddDep(&frag_, range->name);
        lo = "${" + range->name + "[0]}";
        hi = "${" + range->name + "[1]}";
      } else if (range->kind == NodeKind::kArray && range->args.size() == 2) {
        VP_RETURN_IF_ERROR(Emit(range->args[0], &lo));
        VP_RETURN_IF_ERROR(Emit(range->args[1], &hi));
      } else {
        return Status::NotImplemented("sql translate: inrange needs a signal or pair");
      }
      out->append("(");
      VP_RETURN_IF_ERROR(Emit(node->args[0], out));
      out->append(" BETWEEN LEAST(" + lo + ", " + hi + ") AND GREATEST(" + lo + ", " +
                  hi + "))");
      return Status::OK();
    }
    if (def->sql_name.empty()) {
      return Status::NotImplemented("sql translate: function '" + node->name +
                                    "' has no SQL emitter");
    }
    out->append(def->sql_name);
    out->append("(");
    for (size_t i = 0; i < node->args.size(); ++i) {
      if (i > 0) out->append(", ");
      VP_RETURN_IF_ERROR(Emit(node->args[i], out));
    }
    out->append(")");
    return Status::OK();
  }

  SqlFragment frag_;
};

}  // namespace

std::string SqlLiteral(const data::Value& v) {
  switch (v.type()) {
    case data::DataType::kNull:
      return "NULL";
    case data::DataType::kBool:
      return v.AsBool() ? "TRUE" : "FALSE";
    case data::DataType::kInt64:
    case data::DataType::kTimestamp:
      return StrFormat("%lld", static_cast<long long>(v.AsInt()));
    case data::DataType::kFloat64:
      return FormatDouble(v.AsDouble());
    case data::DataType::kString: {
      std::string out = "'";
      for (char c : v.AsString()) {
        if (c == '\'') out += "''";
        else out.push_back(c);
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string QuoteIdentifier(const std::string& name) {
  if (IsPlainIdentifier(name)) return name;
  std::string out = "\"";
  for (char c : name) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

Result<SqlFragment> TranslateToSql(const NodePtr& node) {
  return Translator().Translate(node);
}

std::vector<std::string> CollectHoles(const std::string& sql_template) {
  std::vector<std::string> holes;
  size_t pos = 0;
  while ((pos = sql_template.find("${", pos)) != std::string::npos) {
    size_t end = sql_template.find('}', pos);
    if (end == std::string::npos) break;
    std::string inner = sql_template.substr(pos + 2, end - pos - 2);
    // Strip [i] and :id suffixes.
    size_t cut = inner.find_first_of("[:");
    std::string name = cut == std::string::npos ? inner : inner.substr(0, cut);
    if (std::find(holes.begin(), holes.end(), name) == holes.end()) {
      holes.push_back(name);
    }
    pos = end + 1;
  }
  return holes;
}

Result<std::string> FillSqlHoles(const std::string& sql_template,
                                 const SignalResolver& signals) {
  std::string out;
  out.reserve(sql_template.size());
  size_t pos = 0;
  while (pos < sql_template.size()) {
    size_t hole = sql_template.find("${", pos);
    if (hole == std::string::npos) {
      out.append(sql_template.substr(pos));
      break;
    }
    out.append(sql_template.substr(pos, hole - pos));
    size_t end = sql_template.find('}', hole);
    if (end == std::string::npos) {
      return Status::ParseError("sql template: unterminated hole");
    }
    std::string inner = sql_template.substr(hole + 2, end - hole - 2);
    std::string name = inner;
    int index = -1;
    bool as_identifier = false;
    if (EndsWith(inner, ":id")) {
      as_identifier = true;
      inner = inner.substr(0, inner.size() - 3);
      name = inner;
    }
    size_t bracket = inner.find('[');
    if (bracket != std::string::npos) {
      name = inner.substr(0, bracket);
      size_t close = inner.find(']', bracket);
      if (close == std::string::npos) {
        return Status::ParseError("sql template: bad hole index");
      }
      int64_t idx;
      if (!ParseInt64(inner.substr(bracket + 1, close - bracket - 1), &idx)) {
        return Status::ParseError("sql template: bad hole index");
      }
      index = static_cast<int>(idx);
    }
    EvalValue v;
    if (!signals.Lookup(name, &v)) {
      return Status::KeyError("sql template: unresolved signal '" + name + "'");
    }
    if (as_identifier) {
      if (v.is_array() || !v.scalar().is_string()) {
        return Status::TypeError("sql template: identifier hole '" + name +
                                 "' needs a string signal");
      }
      out.append(QuoteIdentifier(v.scalar().AsString()));
    } else if (index >= 0) {
      out.append(SqlLiteral(v.At(static_cast<size_t>(index))));
    } else if (v.is_array()) {
      return Status::TypeError("sql template: array signal '" + name +
                               "' used without index");
    } else {
      out.append(SqlLiteral(v.scalar()));
    }
    pos = end + 1;
  }
  return out;
}

}  // namespace expr
}  // namespace vegaplus
