// AST of the Vega expression language (the JavaScript-like language used in
// filter predicates, formula transforms, and signal update expressions).
#ifndef VEGAPLUS_EXPR_AST_H_
#define VEGAPLUS_EXPR_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "data/value.h"

namespace vegaplus {
namespace expr {

enum class NodeKind {
  kLiteral,     // 3.5, 'abc', true, null
  kIdentifier,  // signal name, or `datum`
  kMember,      // obj.prop  /  obj['prop']
  kIndex,       // obj[expr] with non-literal-string index
  kUnary,       // -x, !x, +x
  kBinary,      // x + y, x && y, ...
  kTernary,     // c ? a : b
  kCall,        // fn(args...)
  kArray,       // [a, b, c]
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNeq, kLt, kLte, kGt, kGte,
  kAnd, kOr,
};

enum class UnaryOp { kNeg, kNot, kPlus };

struct Node;
using NodePtr = std::shared_ptr<const Node>;

/// \brief A single AST node; children are immutable shared pointers so
/// parsed expressions can be shared between spec, dataflow, and rewriter.
struct Node {
  NodeKind kind;

  // kLiteral
  data::Value literal;
  // kIdentifier / kMember (property name) / kCall (function name)
  std::string name;
  // kMember/kIndex object; kUnary/kTernary first child; kBinary lhs
  NodePtr a;
  // kBinary rhs; kTernary then-branch; kIndex index expression
  NodePtr b;
  // kTernary else-branch
  NodePtr c;
  // kCall arguments; kArray elements
  std::vector<NodePtr> args;
  // kUnary / kBinary operator
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  static NodePtr Literal(data::Value v);
  static NodePtr Identifier(std::string name);
  static NodePtr Member(NodePtr obj, std::string prop);
  static NodePtr Index(NodePtr obj, NodePtr index);
  static NodePtr Unary(UnaryOp op, NodePtr operand);
  static NodePtr Binary(BinaryOp op, NodePtr lhs, NodePtr rhs);
  static NodePtr Ternary(NodePtr cond, NodePtr then_branch, NodePtr else_branch);
  static NodePtr Call(std::string fn, std::vector<NodePtr> args);
  static NodePtr Array(std::vector<NodePtr> elements);
};

/// Unparse back to Vega expression syntax (stable, minimal parentheses not
/// attempted — fully parenthesized for correctness).
std::string ToString(const NodePtr& node);

/// Collect `datum.<field>` references into `fields` and bare identifier
/// (signal) references into `signals`, de-duplicated, in first-seen order.
void CollectReferences(const NodePtr& node, std::vector<std::string>* fields,
                       std::vector<std::string>* signals);

const char* BinaryOpName(BinaryOp op);
const char* UnaryOpName(UnaryOp op);

}  // namespace expr
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_AST_H_
