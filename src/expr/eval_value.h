// EvalValue: the value domain of the Vega expression language — a scalar or
// an array of scalars (e.g. an extent signal [min, max], a brush range).
// Also the storage type of dataflow signals.
#ifndef VEGAPLUS_EXPR_EVAL_VALUE_H_
#define VEGAPLUS_EXPR_EVAL_VALUE_H_

#include <string>
#include <vector>

#include "data/value.h"
#include "json/json_value.h"

namespace vegaplus {
namespace expr {

/// \brief A Vega expression value: a data::Value scalar or an array of them.
class EvalValue {
 public:
  EvalValue() = default;
  EvalValue(data::Value v) : scalar_(std::move(v)) {}  // NOLINT(runtime/explicit)
  explicit EvalValue(std::vector<data::Value> items)
      : is_array_(true), array_(std::move(items)) {}

  static EvalValue Null() { return EvalValue(data::Value::Null()); }
  static EvalValue Number(double d) { return EvalValue(data::Value::Double(d)); }
  static EvalValue Bool(bool b) { return EvalValue(data::Value::Bool(b)); }
  static EvalValue String(std::string s) {
    return EvalValue(data::Value::String(std::move(s)));
  }
  static EvalValue Array(std::vector<data::Value> items) {
    return EvalValue(std::move(items));
  }

  bool is_array() const { return is_array_; }
  bool is_null() const { return !is_array_ && scalar_.is_null(); }

  const data::Value& scalar() const { return scalar_; }
  const std::vector<data::Value>& array() const { return array_; }

  /// Element access; Null out of range or on scalars.
  data::Value At(size_t i) const {
    if (!is_array_ || i >= array_.size()) return data::Value::Null();
    return array_[i];
  }

  bool Truthy() const { return is_array_ ? !array_.empty() : scalar_.Truthy(); }

  double AsDouble() const { return is_array_ ? 0.0 : scalar_.AsDouble(); }

  bool operator==(const EvalValue& other) const {
    if (is_array_ != other.is_array_) return false;
    if (is_array_) return array_ == other.array_;
    return scalar_ == other.scalar_;
  }
  bool operator!=(const EvalValue& other) const { return !(*this == other); }

  std::string ToString() const;

  /// Conversion to/from JSON (signal init values in specs, debugging).
  json::Value ToJson() const;
  static EvalValue FromJson(const json::Value& v);

 private:
  data::Value scalar_;
  bool is_array_ = false;
  std::vector<data::Value> array_;
};

}  // namespace expr
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_EVAL_VALUE_H_
