// Pratt parser for the Vega expression language.
//
// Grammar (JavaScript-expression subset):
//   ternary:  or ('?' expr ':' expr)?
//   or:       and ('||' and)*
//   and:      eq ('&&' eq)*
//   eq:       rel (('=='|'!='|'==='|'!==') rel)*
//   rel:      add (('<'|'<='|'>'|'>=') add)*
//   add:      mul (('+'|'-') mul)*
//   mul:      unary (('*'|'/'|'%') unary)*
//   unary:    ('-'|'!'|'+') unary | postfix
//   postfix:  primary ('.' ident | '[' expr ']' | '(' args ')')*
//   primary:  number | string | true | false | null | ident | '(' expr ')'
//             | '[' elements ']'
#ifndef VEGAPLUS_EXPR_PARSER_H_
#define VEGAPLUS_EXPR_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "expr/ast.h"

namespace vegaplus {
namespace expr {

/// Parse a complete Vega expression. Trailing tokens are an error.
Result<NodePtr> ParseExpression(std::string_view text);

}  // namespace expr
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_PARSER_H_
