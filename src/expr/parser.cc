#include "expr/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace vegaplus {
namespace expr {

namespace {

enum class TokKind { kNumber, kString, kIdent, kPunct, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  double number = 0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      size_t start = pos_;
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && pos_ + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' ||
                ((text_[pos_] == '+' || text_[pos_] == '-') &&
                 (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
          ++pos_;
        }
        Token t{TokKind::kNumber, std::string(text_.substr(start, pos_ - start)), 0, start};
        if (!ParseDouble(t.text, &t.number)) {
          return Status::ParseError("expr: bad number '" + t.text + "'");
        }
        out->push_back(std::move(t));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '$')) {
          ++pos_;
        }
        out->push_back({TokKind::kIdent, std::string(text_.substr(start, pos_ - start)), 0, start});
      } else if (c == '\'' || c == '"') {
        char quote = c;
        ++pos_;
        std::string s;
        while (pos_ < text_.size() && text_[pos_] != quote) {
          if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
            ++pos_;
            switch (text_[pos_]) {
              case 'n': s.push_back('\n'); break;
              case 't': s.push_back('\t'); break;
              default: s.push_back(text_[pos_]);
            }
          } else {
            s.push_back(text_[pos_]);
          }
          ++pos_;
        }
        if (pos_ >= text_.size()) return Status::ParseError("expr: unterminated string");
        ++pos_;  // closing quote
        out->push_back({TokKind::kString, std::move(s), 0, start});
      } else {
        // Multi-char punctuation first.
        static const char* kThree[] = {"===", "!=="};
        static const char* kTwo[] = {"==", "!=", "<=", ">=", "&&", "||"};
        std::string_view rest = text_.substr(pos_);
        std::string match;
        for (const char* p : kThree) {
          if (StartsWith(rest, p)) {
            match = p;
            break;
          }
        }
        if (match.empty()) {
          for (const char* p : kTwo) {
            if (StartsWith(rest, p)) {
              match = p;
              break;
            }
          }
        }
        if (match.empty()) {
          static const std::string kSingles = "+-*/%<>!?:.,()[]";
          if (kSingles.find(c) == std::string::npos) {
            return Status::ParseError(StrFormat("expr: unexpected character '%c'", c));
          }
          match = std::string(1, c);
        }
        pos_ += match.size();
        out->push_back({TokKind::kPunct, std::move(match), 0, start});
      }
    }
    out->push_back({TokKind::kEnd, "", 0, pos_});
    return Status::OK();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<NodePtr> Parse() {
    NodePtr node;
    VP_RETURN_IF_ERROR(ParseTernary(&node));
    if (!AtEnd()) {
      return Status::ParseError("expr: trailing tokens after expression at '" +
                                Cur().text + "'");
    }
    return node;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool AtEnd() const { return Cur().kind == TokKind::kEnd; }

  bool MatchPunct(std::string_view p) {
    if (Cur().kind == TokKind::kPunct && Cur().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectPunct(std::string_view p) {
    if (!MatchPunct(p)) {
      return Status::ParseError(StrFormat("expr: expected '%.*s' but found '%s'",
                                          static_cast<int>(p.size()), p.data(),
                                          Cur().text.c_str()));
    }
    return Status::OK();
  }

  Status ParseTernary(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseOr(out));
    if (MatchPunct("?")) {
      NodePtr then_branch, else_branch;
      VP_RETURN_IF_ERROR(ParseTernary(&then_branch));
      VP_RETURN_IF_ERROR(ExpectPunct(":"));
      VP_RETURN_IF_ERROR(ParseTernary(&else_branch));
      *out = Node::Ternary(*out, then_branch, else_branch);
    }
    return Status::OK();
  }

  Status ParseOr(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseAnd(out));
    while (Cur().kind == TokKind::kPunct && Cur().text == "||") {
      ++pos_;
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseAnd(&rhs));
      *out = Node::Binary(BinaryOp::kOr, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseAnd(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseEquality(out));
    while (Cur().kind == TokKind::kPunct && Cur().text == "&&") {
      ++pos_;
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseEquality(&rhs));
      *out = Node::Binary(BinaryOp::kAnd, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseEquality(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseRelational(out));
    while (Cur().kind == TokKind::kPunct &&
           (Cur().text == "==" || Cur().text == "!=" || Cur().text == "===" ||
            Cur().text == "!==")) {
      BinaryOp op = (Cur().text[0] == '=') ? BinaryOp::kEq : BinaryOp::kNeq;
      ++pos_;
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseRelational(&rhs));
      *out = Node::Binary(op, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseRelational(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseAdditive(out));
    while (Cur().kind == TokKind::kPunct &&
           (Cur().text == "<" || Cur().text == "<=" || Cur().text == ">" ||
            Cur().text == ">=")) {
      BinaryOp op = Cur().text == "<"    ? BinaryOp::kLt
                    : Cur().text == "<=" ? BinaryOp::kLte
                    : Cur().text == ">"  ? BinaryOp::kGt
                                         : BinaryOp::kGte;
      ++pos_;
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseAdditive(&rhs));
      *out = Node::Binary(op, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseAdditive(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseMultiplicative(out));
    while (Cur().kind == TokKind::kPunct && (Cur().text == "+" || Cur().text == "-")) {
      BinaryOp op = Cur().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      ++pos_;
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseMultiplicative(&rhs));
      *out = Node::Binary(op, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseMultiplicative(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParseUnary(out));
    while (Cur().kind == TokKind::kPunct &&
           (Cur().text == "*" || Cur().text == "/" || Cur().text == "%")) {
      BinaryOp op = Cur().text == "*"   ? BinaryOp::kMul
                    : Cur().text == "/" ? BinaryOp::kDiv
                                        : BinaryOp::kMod;
      ++pos_;
      NodePtr rhs;
      VP_RETURN_IF_ERROR(ParseUnary(&rhs));
      *out = Node::Binary(op, *out, rhs);
    }
    return Status::OK();
  }

  Status ParseUnary(NodePtr* out) {
    if (Cur().kind == TokKind::kPunct) {
      if (Cur().text == "-" || Cur().text == "!" || Cur().text == "+") {
        UnaryOp op = Cur().text == "-"   ? UnaryOp::kNeg
                     : Cur().text == "!" ? UnaryOp::kNot
                                         : UnaryOp::kPlus;
        ++pos_;
        NodePtr operand;
        VP_RETURN_IF_ERROR(ParseUnary(&operand));
        *out = Node::Unary(op, operand);
        return Status::OK();
      }
    }
    return ParsePostfix(out);
  }

  Status ParsePostfix(NodePtr* out) {
    VP_RETURN_IF_ERROR(ParsePrimary(out));
    while (true) {
      if (MatchPunct(".")) {
        if (Cur().kind != TokKind::kIdent) {
          return Status::ParseError("expr: expected property name after '.'");
        }
        *out = Node::Member(*out, Cur().text);
        ++pos_;
      } else if (MatchPunct("[")) {
        NodePtr index;
        VP_RETURN_IF_ERROR(ParseTernary(&index));
        VP_RETURN_IF_ERROR(ExpectPunct("]"));
        if (index->kind == NodeKind::kLiteral && index->literal.is_string()) {
          *out = Node::Member(*out, index->literal.AsString());
        } else {
          *out = Node::Index(*out, index);
        }
      } else if (Cur().kind == TokKind::kPunct && Cur().text == "(" &&
                 (*out)->kind == NodeKind::kIdentifier) {
        ++pos_;
        std::vector<NodePtr> args;
        if (!MatchPunct(")")) {
          while (true) {
            NodePtr arg;
            VP_RETURN_IF_ERROR(ParseTernary(&arg));
            args.push_back(arg);
            if (MatchPunct(")")) break;
            VP_RETURN_IF_ERROR(ExpectPunct(","));
          }
        }
        *out = Node::Call((*out)->name, std::move(args));
      } else {
        return Status::OK();
      }
    }
  }

  Status ParsePrimary(NodePtr* out) {
    const Token& t = Cur();
    switch (t.kind) {
      case TokKind::kNumber:
        *out = Node::Literal(data::Value::Double(t.number));
        ++pos_;
        return Status::OK();
      case TokKind::kString:
        *out = Node::Literal(data::Value::String(t.text));
        ++pos_;
        return Status::OK();
      case TokKind::kIdent:
        if (t.text == "true") {
          *out = Node::Literal(data::Value::Bool(true));
        } else if (t.text == "false") {
          *out = Node::Literal(data::Value::Bool(false));
        } else if (t.text == "null") {
          *out = Node::Literal(data::Value::Null());
        } else {
          *out = Node::Identifier(t.text);
        }
        ++pos_;
        return Status::OK();
      case TokKind::kPunct:
        if (t.text == "(") {
          ++pos_;
          VP_RETURN_IF_ERROR(ParseTernary(out));
          return ExpectPunct(")");
        }
        if (t.text == "[") {
          ++pos_;
          std::vector<NodePtr> elements;
          if (!MatchPunct("]")) {
            while (true) {
              NodePtr e;
              VP_RETURN_IF_ERROR(ParseTernary(&e));
              elements.push_back(e);
              if (MatchPunct("]")) break;
              VP_RETURN_IF_ERROR(ExpectPunct(","));
            }
          }
          *out = Node::Array(std::move(elements));
          return Status::OK();
        }
        return Status::ParseError("expr: unexpected token '" + t.text + "'");
      case TokKind::kEnd:
        return Status::ParseError("expr: unexpected end of expression");
    }
    return Status::ParseError("expr: unreachable");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<NodePtr> ParseExpression(std::string_view text) {
  std::vector<Token> tokens;
  VP_RETURN_IF_ERROR(Lexer(text).Tokenize(&tokens));
  return Parser(std::move(tokens)).Parse();
}

}  // namespace expr
}  // namespace vegaplus
