#include "expr/kernels/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

// Vectorization pragmas. The SIMD bodies are written branchless (bytewise
// 0/1 masks, no early exits) so the pragma reliably vectorizes them; the
// scalar fallback bodies carry an explicit do-not-vectorize marker so the
// kill switch yields a genuine scalar baseline, not the same SIMD code by
// another name.
#if defined(__clang__)
#define VP_SIMD_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#define VP_SCALAR_LOOP _Pragma("clang loop vectorize(disable) interleave(disable)")
#define VP_SCALAR_FN
#elif defined(__GNUC__)
#define VP_SIMD_LOOP _Pragma("GCC ivdep")
#define VP_SCALAR_LOOP
#define VP_SCALAR_FN __attribute__((optimize("no-tree-vectorize")))
#else
#define VP_SIMD_LOOP
#define VP_SCALAR_LOOP
#define VP_SCALAR_FN
#endif

namespace vegaplus {
namespace kernels {
namespace {

bool InitSimdFromEnv() {
  const char* env = std::getenv("VEGAPLUS_SIMD_KERNELS");
  if (env == nullptr) return true;
  return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "false") == 0 ||
           std::strcmp(env, "off") == 0);
}

std::atomic<bool> g_simd_enabled{InitSimdFromEnv()};

std::atomic<uint64_t> g_bitmap_selections{0};
std::atomic<uint64_t> g_index_selections{0};
std::atomic<uint64_t> g_scalar_fallbacks{0};

/// One comparison as a 0/1 byte, with the engine's NaN rules: kEq must be
/// written !(v < c) && !(v > c) (a NaN cell passes ==) and kNeq as its
/// complement (a NaN cell fails !=) — (v >= c) & (v <= c) would NOT be
/// equivalent.
template <Cmp C>
inline uint8_t CmpBit(double v, double c) {
  if constexpr (C == Cmp::kLt) return static_cast<uint8_t>(v < c);
  if constexpr (C == Cmp::kLte) return static_cast<uint8_t>(v <= c);
  if constexpr (C == Cmp::kGt) return static_cast<uint8_t>(v > c);
  if constexpr (C == Cmp::kGte) return static_cast<uint8_t>(v >= c);
  if constexpr (C == Cmp::kEq)
    return static_cast<uint8_t>((!(v < c)) & (!(v > c)));
  return static_cast<uint8_t>((v < c) | (v > c));  // kNeq
}

/// Fold validity into a compare bit: null fails every compare except kNeq,
/// which includes null rows.
template <Cmp C, bool HasValid>
inline uint8_t MaskBit(uint8_t ok, const uint8_t* valid, size_t i) {
  if constexpr (HasValid) {
    if constexpr (C == Cmp::kNeq) {
      return static_cast<uint8_t>(ok | (valid[i] == 0));
    } else {
      return static_cast<uint8_t>(ok & (valid[i] != 0));
    }
  }
  (void)valid;
  (void)i;
  return ok;
}

template <typename T, Cmp C, bool HasValid>
void CompareLoopSimd(const T* vals, const uint8_t* valid, size_t n, double c,
                     uint8_t* out) {
  VP_SIMD_LOOP
  for (size_t i = 0; i < n; ++i) {
    const uint8_t ok = CmpBit<C>(static_cast<double>(vals[i]), c);
    out[i] = MaskBit<C, HasValid>(ok, valid, i);
  }
}

template <typename T, Cmp C, bool HasValid>
VP_SCALAR_FN void CompareLoopScalar(const T* vals, const uint8_t* valid,
                                    size_t n, double c, uint8_t* out) {
  VP_SCALAR_LOOP
  for (size_t i = 0; i < n; ++i) {
    const uint8_t ok = CmpBit<C>(static_cast<double>(vals[i]), c);
    out[i] = MaskBit<C, HasValid>(ok, valid, i);
  }
}

template <typename T, Cmp C>
void CompareDispatch(const T* vals, const uint8_t* valid, size_t n, double c,
                     uint8_t* out, bool simd) {
  if (simd) {
    if (valid != nullptr) {
      CompareLoopSimd<T, C, true>(vals, valid, n, c, out);
    } else {
      CompareLoopSimd<T, C, false>(vals, valid, n, c, out);
    }
  } else {
    if (valid != nullptr) {
      CompareLoopScalar<T, C, true>(vals, valid, n, c, out);
    } else {
      CompareLoopScalar<T, C, false>(vals, valid, n, c, out);
    }
  }
}

template <typename T>
void CompareToBitsImpl(const T* vals, const uint8_t* valid, size_t n, Cmp cmp,
                       double c, uint8_t* out) {
  const bool simd = SimdEnabled();
  if (!simd) AddScalarFallbacks(1);
  switch (cmp) {
    case Cmp::kLt:
      CompareDispatch<T, Cmp::kLt>(vals, valid, n, c, out, simd);
      break;
    case Cmp::kLte:
      CompareDispatch<T, Cmp::kLte>(vals, valid, n, c, out, simd);
      break;
    case Cmp::kGt:
      CompareDispatch<T, Cmp::kGt>(vals, valid, n, c, out, simd);
      break;
    case Cmp::kGte:
      CompareDispatch<T, Cmp::kGte>(vals, valid, n, c, out, simd);
      break;
    case Cmp::kEq:
      CompareDispatch<T, Cmp::kEq>(vals, valid, n, c, out, simd);
      break;
    case Cmp::kNeq:
      CompareDispatch<T, Cmp::kNeq>(vals, valid, n, c, out, simd);
      break;
  }
}

template <typename T, Cmp C, bool HasValid>
size_t RefineLoopBranchless(const T* vals, const uint8_t* valid, double c,
                            int32_t* s, size_t m) {
  size_t w = 0;
  for (size_t j = 0; j < m; ++j) {
    const int32_t r = s[j];
    const uint8_t ok = MaskBit<C, HasValid>(
        CmpBit<C>(static_cast<double>(vals[r]), c), valid, r);
    s[w] = r;
    w += ok;
  }
  return w;
}

template <typename T, Cmp C, bool HasValid>
VP_SCALAR_FN size_t RefineLoopBranchy(const T* vals, const uint8_t* valid,
                                      double c, int32_t* s, size_t m) {
  size_t w = 0;
  for (size_t j = 0; j < m; ++j) {
    const int32_t r = s[j];
    const uint8_t ok = MaskBit<C, HasValid>(
        CmpBit<C>(static_cast<double>(vals[r]), c), valid, r);
    if (ok) s[w++] = r;
  }
  return w;
}

template <typename T, Cmp C>
size_t RefineDispatch(const T* vals, const uint8_t* valid, double c,
                      int32_t* s, size_t m, bool simd) {
  if (simd) {
    return valid != nullptr
               ? RefineLoopBranchless<T, C, true>(vals, valid, c, s, m)
               : RefineLoopBranchless<T, C, false>(vals, valid, c, s, m);
  }
  return valid != nullptr ? RefineLoopBranchy<T, C, true>(vals, valid, c, s, m)
                          : RefineLoopBranchy<T, C, false>(vals, valid, c, s, m);
}

template <typename T>
void RefineIndicesImpl(const T* vals, const uint8_t* valid, Cmp cmp, double c,
                       std::vector<int32_t>* sel, size_t from) {
  const size_t m = sel->size() - from;
  if (m == 0) return;
  int32_t* s = sel->data() + from;
  const bool simd = SimdEnabled();
  if (!simd) AddScalarFallbacks(1);
  size_t w = 0;
  switch (cmp) {
    case Cmp::kLt:
      w = RefineDispatch<T, Cmp::kLt>(vals, valid, c, s, m, simd);
      break;
    case Cmp::kLte:
      w = RefineDispatch<T, Cmp::kLte>(vals, valid, c, s, m, simd);
      break;
    case Cmp::kGt:
      w = RefineDispatch<T, Cmp::kGt>(vals, valid, c, s, m, simd);
      break;
    case Cmp::kGte:
      w = RefineDispatch<T, Cmp::kGte>(vals, valid, c, s, m, simd);
      break;
    case Cmp::kEq:
      w = RefineDispatch<T, Cmp::kEq>(vals, valid, c, s, m, simd);
      break;
    case Cmp::kNeq:
      w = RefineDispatch<T, Cmp::kNeq>(vals, valid, c, s, m, simd);
      break;
  }
  sel->resize(from + w);
}

}  // namespace

bool SimdEnabled() { return g_simd_enabled.load(std::memory_order_relaxed); }

void SetSimdEnabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

void AddBitmapSelections(uint64_t n) {
  g_bitmap_selections.fetch_add(n, std::memory_order_relaxed);
}
uint64_t BitmapSelections() {
  return g_bitmap_selections.load(std::memory_order_relaxed);
}
void AddIndexSelections(uint64_t n) {
  g_index_selections.fetch_add(n, std::memory_order_relaxed);
}
uint64_t IndexSelections() {
  return g_index_selections.load(std::memory_order_relaxed);
}
void AddScalarFallbacks(uint64_t n) {
  g_scalar_fallbacks.fetch_add(n, std::memory_order_relaxed);
}
uint64_t ScalarFallbacks() {
  return g_scalar_fallbacks.load(std::memory_order_relaxed);
}

void CompareNumToBits(const double* vals, const uint8_t* valid, size_t n,
                      Cmp cmp, double c, uint8_t* out) {
  CompareToBitsImpl(vals, valid, n, cmp, c, out);
}

void CompareInt64ToBits(const int64_t* vals, const uint8_t* valid, size_t n,
                        Cmp cmp, double c, uint8_t* out) {
  CompareToBitsImpl(vals, valid, n, cmp, c, out);
}

void CompareCodeToBits(const int32_t* codes, size_t n, bool negate,
                       int32_t code, uint8_t* out) {
  if (SimdEnabled()) {
    if (negate) {
      VP_SIMD_LOOP
      for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<uint8_t>(codes[i] != code);
    } else {
      VP_SIMD_LOOP
      for (size_t i = 0; i < n; ++i)
        out[i] = static_cast<uint8_t>(codes[i] == code);
    }
    return;
  }
  AddScalarFallbacks(1);
  VP_SCALAR_LOOP
  for (size_t i = 0; i < n; ++i) {
    const bool eq = codes[i] == code;
    out[i] = static_cast<uint8_t>(eq != negate);
  }
}

void CompareStrToBits(const std::string* strs, const uint8_t* valid, size_t n,
                      bool negate, const std::string& c, uint8_t* out) {
  // String compares never vectorize; one shared body.
  for (size_t i = 0; i < n; ++i) {
    const bool eq = (valid == nullptr || valid[i] != 0) && strs[i] == c;
    out[i] = static_cast<uint8_t>(eq != negate);
  }
}

void AndBits(uint8_t* dst, const uint8_t* src, size_t n) {
  if (SimdEnabled()) {
    VP_SIMD_LOOP
    for (size_t i = 0; i < n; ++i)
      dst[i] = static_cast<uint8_t>((dst[i] != 0) & (src[i] != 0));
    return;
  }
  AddScalarFallbacks(1);
  VP_SCALAR_LOOP
  for (size_t i = 0; i < n; ++i)
    dst[i] = static_cast<uint8_t>(dst[i] != 0 && src[i] != 0);
}

void OrBits(uint8_t* dst, const uint8_t* src, size_t n) {
  if (SimdEnabled()) {
    VP_SIMD_LOOP
    for (size_t i = 0; i < n; ++i)
      dst[i] = static_cast<uint8_t>((dst[i] != 0) | (src[i] != 0));
    return;
  }
  AddScalarFallbacks(1);
  VP_SCALAR_LOOP
  for (size_t i = 0; i < n; ++i)
    dst[i] = static_cast<uint8_t>(dst[i] != 0 || src[i] != 0);
}

void NotBits(uint8_t* dst, size_t n) {
  if (SimdEnabled()) {
    VP_SIMD_LOOP
    for (size_t i = 0; i < n; ++i) dst[i] = static_cast<uint8_t>(dst[i] == 0);
    return;
  }
  AddScalarFallbacks(1);
  VP_SCALAR_LOOP
  for (size_t i = 0; i < n; ++i) dst[i] = static_cast<uint8_t>(dst[i] == 0);
}

size_t CountBits(const uint8_t* bits, size_t n) {
  size_t count = 0;
  if (SimdEnabled()) {
    VP_SIMD_LOOP
    for (size_t i = 0; i < n; ++i) count += (bits[i] != 0);
    return count;
  }
  AddScalarFallbacks(1);
  VP_SCALAR_LOOP
  for (size_t i = 0; i < n; ++i) count += (bits[i] != 0);
  return count;
}

size_t BitsToIndices(const uint8_t* bits, size_t n, int32_t base,
                     std::vector<int32_t>* out) {
  const size_t start = out->size();
  out->resize(start + n);
  int32_t* tmp = out->data() + start;
  size_t k = 0;
  if (SimdEnabled()) {
    // Branchless compaction: always store, advance by the bit. At 50%
    // selectivity this is the difference between ~1 mispredict per row and
    // none.
    for (size_t i = 0; i < n; ++i) {
      tmp[k] = static_cast<int32_t>(i) + base;
      k += (bits[i] != 0);
    }
  } else {
    AddScalarFallbacks(1);
    for (size_t i = 0; i < n; ++i) {
      if (bits[i] != 0) tmp[k++] = static_cast<int32_t>(i) + base;
    }
  }
  out->resize(start + k);
  return k;
}

void IndicesToBits(const int32_t* indices, size_t count, int32_t base,
                   size_t n, uint8_t* out) {
  std::memset(out, 0, n);
  for (size_t j = 0; j < count; ++j) out[indices[j] - base] = 1;
}

bool PreferBitmap(size_t matches, size_t rows) {
  // Stay in the bitmap domain at >= 1/8 density: combining is O(rows) either
  // way there, and the bitmap pass is branchless. Below that, an index
  // vector lets later conjuncts touch only survivors.
  return matches * 8 >= rows;
}

void RefineNumIndices(const double* vals, const uint8_t* valid, Cmp cmp,
                      double c, std::vector<int32_t>* sel, size_t from) {
  RefineIndicesImpl(vals, valid, cmp, c, sel, from);
}

void RefineInt64Indices(const int64_t* vals, const uint8_t* valid, Cmp cmp,
                        double c, std::vector<int32_t>* sel, size_t from) {
  RefineIndicesImpl(vals, valid, cmp, c, sel, from);
}

void RefineCodeIndices(const int32_t* codes, bool negate, int32_t code,
                       std::vector<int32_t>* sel, size_t from) {
  const size_t m = sel->size() - from;
  if (m == 0) return;
  int32_t* s = sel->data() + from;
  size_t w = 0;
  if (SimdEnabled()) {
    for (size_t j = 0; j < m; ++j) {
      const int32_t r = s[j];
      const bool eq = codes[r] == code;
      s[w] = r;
      w += (eq != negate);
    }
  } else {
    AddScalarFallbacks(1);
    for (size_t j = 0; j < m; ++j) {
      const int32_t r = s[j];
      const bool eq = codes[r] == code;
      if (eq != negate) s[w++] = r;
    }
  }
  sel->resize(from + w);
}

void RefineStrIndices(const std::string* strs, const uint8_t* valid,
                      bool negate, const std::string& c,
                      std::vector<int32_t>* sel, size_t from) {
  const size_t m = sel->size() - from;
  if (m == 0) return;
  int32_t* s = sel->data() + from;
  size_t w = 0;
  for (size_t j = 0; j < m; ++j) {
    const int32_t r = s[j];
    const bool eq = (valid == nullptr || valid[r] != 0) && strs[r] == c;
    if (eq != negate) s[w++] = r;
  }
  sel->resize(from + w);
}

void GatherDoubles(const double* src, const int32_t* rows, size_t n,
                   double* out) {
  if (SimdEnabled()) {
    VP_SIMD_LOOP
    for (size_t j = 0; j < n; ++j) out[j] = src[rows[j]];
    return;
  }
  AddScalarFallbacks(1);
  VP_SCALAR_LOOP
  for (size_t j = 0; j < n; ++j) out[j] = src[rows[j]];
}

void GatherInt64(const int64_t* src, const int32_t* rows, size_t n,
                 int64_t* out) {
  if (SimdEnabled()) {
    VP_SIMD_LOOP
    for (size_t j = 0; j < n; ++j) out[j] = src[rows[j]];
    return;
  }
  AddScalarFallbacks(1);
  VP_SCALAR_LOOP
  for (size_t j = 0; j < n; ++j) out[j] = src[rows[j]];
}

void GatherCodes(const int32_t* src, const int32_t* rows, size_t n,
                 int32_t* out) {
  if (SimdEnabled()) {
    VP_SIMD_LOOP
    for (size_t j = 0; j < n; ++j) out[j] = src[rows[j]];
    return;
  }
  AddScalarFallbacks(1);
  VP_SCALAR_LOOP
  for (size_t j = 0; j < n; ++j) out[j] = src[rows[j]];
}

size_t GatherValidity(const uint8_t* src, const int32_t* rows, size_t n,
                      uint8_t* out) {
  size_t nulls = 0;
  if (SimdEnabled()) {
    VP_SIMD_LOOP
    for (size_t j = 0; j < n; ++j) {
      const uint8_t v = src[rows[j]];
      out[j] = v;
      nulls += (v == 0);
    }
    return nulls;
  }
  AddScalarFallbacks(1);
  VP_SCALAR_LOOP
  for (size_t j = 0; j < n; ++j) {
    const uint8_t v = src[rows[j]];
    out[j] = v;
    nulls += (v == 0);
  }
  return nulls;
}

// The grouped and binned accumulators are scatter-bound (random writes per
// group/bin slot), so they have one body: the win is the single shared,
// null-hoisted implementation, not vector lanes. Position order is strictly
// ascending — float sums never reassociate, so results are bit-identical to
// the loops they replaced at any morsel thread count.

void GroupedCount(const NumSpan& v, const int32_t* rows,
                  const uint32_t* group_of, size_t begin, size_t end,
                  uint64_t* counts) {
  for (size_t pos = begin; pos < end; ++pos) {
    const size_t r = static_cast<size_t>(rows[pos]);
    if (!v.ValidAt(r)) continue;
    counts[group_of[pos]] += 1;
  }
}

void GroupedCountStar(const uint32_t* group_of, size_t begin, size_t end,
                      uint64_t* counts) {
  for (size_t pos = begin; pos < end; ++pos) counts[group_of[pos]] += 1;
}

void GroupedSum(const NumSpan& v, const int32_t* rows,
                const uint32_t* group_of, size_t begin, size_t end,
                double* sums, uint64_t* counts) {
  for (size_t pos = begin; pos < end; ++pos) {
    const size_t r = static_cast<size_t>(rows[pos]);
    if (!v.ValidAt(r)) continue;
    const uint32_t g = group_of[pos];
    sums[g] += v.ValueAt(r);
    counts[g] += 1;
  }
}

void GroupedSumSq(const NumSpan& v, const int32_t* rows,
                  const uint32_t* group_of, size_t begin, size_t end,
                  double* sums, double* sumsqs, uint64_t* counts) {
  for (size_t pos = begin; pos < end; ++pos) {
    const size_t r = static_cast<size_t>(rows[pos]);
    if (!v.ValidAt(r)) continue;
    const uint32_t g = group_of[pos];
    const double x = v.ValueAt(r);
    sums[g] += x;
    sumsqs[g] += x * x;
    counts[g] += 1;
  }
}

void GroupedMinMax(const NumSpan& v, const int32_t* rows,
                   const uint32_t* group_of, size_t begin, size_t end,
                   double* mins, double* maxs, uint8_t* seen) {
  for (size_t pos = begin; pos < end; ++pos) {
    const size_t r = static_cast<size_t>(rows[pos]);
    if (!v.ValidAt(r)) continue;
    const uint32_t g = group_of[pos];
    const double x = v.ValueAt(r);
    if (seen[g] == 0) {
      seen[g] = 1;
      mins[g] = x;
      maxs[g] = x;
    } else {
      // Strict compares: ties keep the earlier value and a NaN never
      // replaces an existing extremum.
      if (x < mins[g]) mins[g] = x;
      if (x > maxs[g]) maxs[g] = x;
    }
  }
}

void BinAggSlots::Resize(size_t slots) {
  count.assign(slots, 0);
  sum.assign(slots, 0.0);
  min.assign(slots, 0.0);
  max.assign(slots, 0.0);
}

void BinAggSlots::MergeFrom(const BinAggSlots& other) {
  for (size_t b = 0; b < count.size(); ++b) {
    if (other.count[b] == 0) continue;
    if (count[b] == 0) {
      min[b] = other.min[b];
      max[b] = other.max[b];
    } else {
      if (other.min[b] < min[b]) min[b] = other.min[b];
      if (other.max[b] > max[b]) max[b] = other.max[b];
    }
    sum[b] += other.sum[b];
    count[b] += other.count[b];
  }
}

bool ComputeBinIndices(const NumSpan& v, double start, double step,
                       size_t num_bins, size_t begin, size_t end,
                       int32_t* bin_of) {
  const int32_t null_slot = static_cast<int32_t>(num_bins);
  for (size_t i = begin; i < end; ++i) {
    if (!v.ValidAt(i)) {
      bin_of[i] = null_slot;
      continue;
    }
    const double value = v.ValueAt(i);
    if (!std::isfinite(value)) return false;
    const double k = std::floor((value - start) / step);
    if (!(k >= 0.0) || k >= static_cast<double>(num_bins)) return false;
    bin_of[i] = static_cast<int32_t>(k);
  }
  return true;
}

void AccumulateBinRows(const int32_t* bin_of, size_t begin, size_t end,
                       int64_t* rows, int64_t* first_row) {
  for (size_t i = begin; i < end; ++i) {
    const int32_t b = bin_of[i];
    ++rows[b];
    if (first_row[b] < 0) first_row[b] = static_cast<int64_t>(i);
  }
}

void AccumulateBinAggs(const NumSpan& v, const int32_t* bin_of, size_t begin,
                       size_t end, BinAggSlots* slots) {
  for (size_t i = begin; i < end; ++i) {
    if (!v.ValidAt(i)) continue;
    const double value = v.ValueAt(i);
    const int32_t b = bin_of[i];
    if (slots->count[b] == 0) {
      slots->min[b] = value;
      slots->max[b] = value;
    } else {
      if (value < slots->min[b]) slots->min[b] = value;
      if (value > slots->max[b]) slots->max[b] = value;
    }
    slots->sum[b] += value;
    ++slots->count[b];
  }
}

}  // namespace kernels
}  // namespace vegaplus
