// Explicit-SIMD kernel library for the hot scan/aggregate primitives that
// every execution layer shares: typed compare-to-bitmap, bitmap combine,
// bitmap <-> index-vector conversion (with the density heuristic that picks
// between them), index-domain predicate refinement, gathers, null-aware
// aggregate accumulation, and per-bin slot accumulation.
//
// The library sits below data/storage/expr/sql/tiles in the module DAG (it
// depends only on common), so the batch evaluator, the SQL executor's
// aggregate path, the tile builder, Column::Take, and the storage rerun
// filter all route their inner loops through one implementation instead of
// keeping near-copies.
//
// Dispatch contract: every kernel has a pragma-vectorized body and a scalar
// fallback selected by the SimdEnabled() kill switch (EngineConfig::
// simd_kernels; initial value from the VEGAPLUS_SIMD_KERNELS env var so CI
// can force the fallback). Both bodies compute the same exact per-element
// operation in the same order, so results are bit-identical either way:
// compares, bitmap logic, conversions, and gathers are order-insensitive
// exact ops, and float accumulation always runs in ascending index order
// (no SIMD reassociation of sums).
//
// Comparison semantics mirror the expression engine exactly (which mirrors
// Value::Compare): a null cell fails every compare except !=, kEq is
// !(x < c) && !(x > c) so a NaN cell passes ==, and kNeq is x < c || x > c
// so a NaN cell fails !=.
#ifndef VEGAPLUS_EXPR_KERNELS_KERNELS_H_
#define VEGAPLUS_EXPR_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vegaplus {
namespace kernels {

/// Kill switch (default on; initialized once from VEGAPLUS_SIMD_KERNELS,
/// "0" = off). When off every kernel runs its scalar fallback body — the
/// differential baseline for proving the SIMD paths bit-identical.
///
/// Free functions own the storage, like the other per-layer switches;
/// runtime::EngineConfig (simd_kernels) snapshots and applies it coherently.
bool SimdEnabled();
void SetSimdEnabled(bool enabled);

// ---- Dispatch observability (style of storage/stats.h) ----
//
// Process-global monotone counters, rebased by Middleware::stats() against a
// construction-time baseline. Selection counters record the density
// heuristic's choice per filter evaluation (one bump per batch/morsel, not
// per row); the fallback counter records kernel invocations that ran a
// scalar body because the kill switch is off.

void AddBitmapSelections(uint64_t n);
uint64_t BitmapSelections();
void AddIndexSelections(uint64_t n);
uint64_t IndexSelections();
void AddScalarFallbacks(uint64_t n);
uint64_t ScalarFallbacks();

/// Comparison operator of the compare kernels (column on the left).
enum class Cmp : uint8_t { kLt, kLte, kGt, kGte, kEq, kNeq };

// ---- Compare-to-bitmap ----
//
// out[i] = 1 iff row i passes `col <cmp> c`, with the engine's null/NaN
// semantics (see file comment). `valid` may be nullptr (all rows valid).

void CompareNumToBits(const double* vals, const uint8_t* valid, size_t n,
                      Cmp cmp, double c, uint8_t* out);
/// Integer columns widen per element to double before comparing — the same
/// widening as the expression engine's numeric registers.
void CompareInt64ToBits(const int64_t* vals, const uint8_t* valid, size_t n,
                        Cmp cmp, double c, uint8_t* out);
/// Dictionary ==/!= as one int32 compare per row. Null rows carry code -1
/// and an absent constant resolves to -2, so == excludes nulls and !=
/// includes them.
void CompareCodeToBits(const int32_t* codes, size_t n, bool negate,
                       int32_t code, uint8_t* out);
/// Flat-string ==/!=: one string compare per row (never SIMD, but routed
/// here so every filter leaf shares one implementation).
void CompareStrToBits(const std::string* strs, const uint8_t* valid, size_t n,
                      bool negate, const std::string& c, uint8_t* out);

// ---- Bitmap combine ----

void AndBits(uint8_t* dst, const uint8_t* src, size_t n);
void OrBits(uint8_t* dst, const uint8_t* src, size_t n);
void NotBits(uint8_t* dst, size_t n);
size_t CountBits(const uint8_t* bits, size_t n);

// ---- Bitmap <-> index-vector conversion ----

/// Append the set positions (+ base) to `out` in ascending order, exactly
/// the selection vector a branchy scan would build. Returns the number of
/// indices appended. The hot body is a branchless compaction
/// (`tmp[k] = i; k += bits[i]`), so 50%-selectivity filters pay no branch
/// mispredicts.
size_t BitsToIndices(const uint8_t* bits, size_t n, int32_t base,
                     std::vector<int32_t>* out);

/// Scatter `indices[0..count)` (- base) into a 0/1 bitmap of n rows; `out`
/// is fully overwritten.
void IndicesToBits(const int32_t* indices, size_t count, int32_t base,
                   size_t n, uint8_t* out);

/// Density heuristic: dense selections stay in the bitmap domain (branchless
/// AND/OR combine over every row), sparse ones convert to an index vector so
/// later conjuncts only touch surviving rows.
bool PreferBitmap(size_t matches, size_t rows);

// ---- Index-domain predicate refinement (sparse AND chains) ----
//
// Compact (*sel)[from..) in place, keeping rows that pass the predicate —
// the same null/NaN semantics as the compare kernels, gathered at the
// candidate rows only.

void RefineNumIndices(const double* vals, const uint8_t* valid, Cmp cmp,
                      double c, std::vector<int32_t>* sel, size_t from);
void RefineInt64Indices(const int64_t* vals, const uint8_t* valid, Cmp cmp,
                        double c, std::vector<int32_t>* sel, size_t from);
void RefineCodeIndices(const int32_t* codes, bool negate, int32_t code,
                       std::vector<int32_t>* sel, size_t from);
void RefineStrIndices(const std::string* strs, const uint8_t* valid,
                      bool negate, const std::string& c,
                      std::vector<int32_t>* sel, size_t from);

// ---- Gathers ----
//
// out[j] = src[rows[j]]. Used by Column::Take (including dict-code gathers)
// and the executor's filter-fused gather path.

void GatherDoubles(const double* src, const int32_t* rows, size_t n,
                   double* out);
void GatherInt64(const int64_t* src, const int32_t* rows, size_t n,
                 int64_t* out);
void GatherCodes(const int32_t* src, const int32_t* rows, size_t n,
                 int32_t* out);
/// Validity gather; returns the number of zeros (nulls) gathered.
size_t GatherValidity(const uint8_t* src, const int32_t* rows, size_t n,
                      uint8_t* out);

// ---- Null-aware numeric views ----

/// Strided, null-aware view of one numeric register/column, the common
/// argument shape of the accumulation kernels. Exactly one of vals/bits is
/// set: `vals` for doubles (with optional validity mask), `bits` for 0/1
/// bool registers (never null). stride 0 = broadcast constant.
struct NumSpan {
  const double* vals = nullptr;
  const uint8_t* bits = nullptr;
  const uint8_t* valid = nullptr;  // vals form only; nullptr = all valid
  size_t stride = 1;

  bool ValidAt(size_t i) const {
    return bits != nullptr || valid == nullptr || valid[i * stride] != 0;
  }
  double ValueAt(size_t i) const {
    return bits != nullptr ? (bits[i * stride] != 0 ? 1.0 : 0.0)
                           : vals[i * stride];
  }
};

// ---- Null-aware aggregate accumulation (grouped) ----
//
// One pass over positions [begin, end): r = rows[pos] is the value row,
// g = group_of[pos] the destination group. Scatter-bound, so the kernel
// value is the hoisted null/stride handling and the single shared
// implementation; float sums accumulate in position order (chunk boundaries
// are the caller's), which keeps results bit-identical at any thread count.

/// counts[g] += number of positions whose value row is valid.
void GroupedCount(const NumSpan& v, const int32_t* rows,
                  const uint32_t* group_of, size_t begin, size_t end,
                  uint64_t* counts);
/// COUNT(*): every position counts, no argument.
void GroupedCountStar(const uint32_t* group_of, size_t begin, size_t end,
                      uint64_t* counts);
/// sums[g] += value, counts[g] += 1 for valid rows.
void GroupedSum(const NumSpan& v, const int32_t* rows,
                const uint32_t* group_of, size_t begin, size_t end,
                double* sums, uint64_t* counts);
/// sums/sumsqs/counts for variance-family aggregates.
void GroupedSumSq(const NumSpan& v, const int32_t* rows,
                  const uint32_t* group_of, size_t begin, size_t end,
                  double* sums, double* sumsqs, uint64_t* counts);
/// Strict-compare min/max: the first valid value initializes, ties keep the
/// earlier value, and a NaN never replaces an existing extremum (but a NaN
/// that arrives first sticks) — exactly the executor's AggState updates.
/// seen[g] != 0 iff any valid value reached group g.
void GroupedMinMax(const NumSpan& v, const int32_t* rows,
                   const uint32_t* group_of, size_t begin, size_t end,
                   double* mins, double* maxs, uint8_t* seen);

// ---- Per-bin slot accumulation (tile builds) ----

/// Per-bin aggregate slots of one measure column.
struct BinAggSlots {
  std::vector<int64_t> count;  // valid (non-null) cells per bin
  std::vector<double> sum;
  std::vector<double> min;  // meaningful iff count > 0
  std::vector<double> max;

  void Resize(size_t slots);
  /// Fold `other` (a later chunk of the same bins) into this; callers merge
  /// in chunk order so float sums are deterministic.
  void MergeFrom(const BinAggSlots& other);
};

/// Map rows [begin, end) onto bin indices: k = floor((v - start) / step),
/// null rows to slot num_bins. Returns false when any value is non-finite
/// or lands outside [0, num_bins).
bool ComputeBinIndices(const NumSpan& v, double start, double step,
                       size_t num_bins, size_t begin, size_t end,
                       int32_t* bin_of);

/// Per-bin COUNT(*) and first-seen row id (-1 = empty) over [begin, end).
void AccumulateBinRows(const int32_t* bin_of, size_t begin, size_t end,
                       int64_t* rows, int64_t* first_row);

/// Accumulate one measure into per-bin slots for rows [begin, end), with
/// the same null handling and min/max update rules as GroupedMinMax.
void AccumulateBinAggs(const NumSpan& v, const int32_t* bin_of, size_t begin,
                       size_t end, BinAggSlots* slots);

}  // namespace kernels
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_KERNELS_KERNELS_H_
