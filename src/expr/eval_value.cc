#include "expr/eval_value.h"

namespace vegaplus {
namespace expr {

std::string EvalValue::ToString() const {
  if (!is_array_) return scalar_.ToString();
  std::string out = "[";
  for (size_t i = 0; i < array_.size(); ++i) {
    if (i > 0) out += ",";
    out += array_[i].ToString();
  }
  out += "]";
  return out;
}

json::Value EvalValue::ToJson() const {
  auto scalar_to_json = [](const data::Value& v) -> json::Value {
    switch (v.type()) {
      case data::DataType::kNull: return json::Value(nullptr);
      case data::DataType::kBool: return json::Value(v.AsBool());
      case data::DataType::kString: return json::Value(v.AsString());
      default: return json::Value(v.AsDouble());
    }
  };
  if (!is_array_) return scalar_to_json(scalar_);
  json::Value arr = json::Value::MakeArray();
  for (const auto& v : array_) arr.Append(scalar_to_json(v));
  return arr;
}

EvalValue EvalValue::FromJson(const json::Value& v) {
  auto scalar_from_json = [](const json::Value& j) -> data::Value {
    switch (j.type()) {
      case json::Type::kBool: return data::Value::Bool(j.AsBool());
      case json::Type::kNumber: return data::Value::Double(j.AsDouble());
      case json::Type::kString: return data::Value::String(j.AsString());
      default: return data::Value::Null();
    }
  };
  if (v.is_array()) {
    std::vector<data::Value> items;
    items.reserve(v.array().size());
    for (const auto& item : v.array()) items.push_back(scalar_from_json(item));
    return EvalValue::Array(std::move(items));
  }
  return EvalValue(scalar_from_json(v));
}

}  // namespace expr
}  // namespace vegaplus
