// Column-at-a-time execution of compiled expression programs (see
// compiler.h), plus the typed key helpers the SQL executor and transforms
// use for grouping and sorting without boxing per-row Values.
//
// The contract with the scalar interpreter: for every program Compile()
// accepts, running it over a batch produces exactly the values (and nulls)
// that expr::Evaluate produces row by row. Anything Compile() rejects is
// evaluated by the caller through the scalar interpreter — usually into a
// kBoxed Vec so grouping/sorting code handles both paths uniformly.
#ifndef VEGAPLUS_EXPR_BATCH_EVAL_H_
#define VEGAPLUS_EXPR_BATCH_EVAL_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "data/table.h"
#include "expr/compiler.h"
#include "expr/kernels/kernels.h"

namespace vegaplus {
namespace expr {

/// Global kill switch (default on). Turned off by benchmarks to measure the
/// scalar interpreter, and by tests to compare both paths.
///
/// Deprecated as a public configuration surface: new call sites should read
/// and write this through runtime::EngineConfig (engine_config.h), which
/// snapshots and applies every process-wide switch coherently. This pair
/// remains the storage owner.
bool VectorizedEnabled();
void SetVectorizedEnabled(bool enabled);

/// \brief Shared, copy-on-write buffer backing one register array.
///
/// Copying a CowVec bumps a refcount instead of copying elements, so passing
/// registers around — the column-load CSE cache, broadcast reuse, key
/// registers handed to grouping — is free. The first mutation through a
/// non-const accessor detaches (clones) iff the buffer is shared; freshly
/// built buffers are unique, so construction-time writes never copy.
/// Registers can also alias column storage directly (see ColumnVec): the
/// alias holds the column's storage refcount, and the column's own
/// copy-on-write keeps the alias stable across later appends.
template <typename T>
class CowVec {
 public:
  CowVec() = default;
  explicit CowVec(std::vector<T> v)
      : buf_(std::make_shared<std::vector<T>>(std::move(v))) {}
  /// Adopt an externally shared buffer (e.g. an aliasing view of column
  /// storage). Mutations detach, never write through.
  static CowVec Adopt(std::shared_ptr<std::vector<T>> buf) {
    CowVec v;
    v.buf_ = std::move(buf);
    return v;
  }

  CowVec& operator=(std::vector<T> v) {
    buf_ = std::make_shared<std::vector<T>>(std::move(v));
    return *this;
  }

  size_t size() const { return buf_ ? buf_->size() : 0; }
  bool empty() const { return size() == 0; }

  const T* data() const { return buf_ ? buf_->data() : nullptr; }
  T* data() {
    Detach();
    return buf_->data();
  }

  const T& operator[](size_t i) const { return (*buf_)[i]; }
  T& operator[](size_t i) {
    Detach();
    return (*buf_)[i];
  }
  const T& back() const { return buf_->back(); }

  void reserve(size_t n) {
    Detach();
    buf_->reserve(n);
  }
  void resize(size_t n) {
    Detach();
    buf_->resize(n);
  }
  void resize(size_t n, const T& v) {
    Detach();
    buf_->resize(n, v);
  }
  void assign(size_t n, const T& v) {
    Detach();
    buf_->assign(n, v);
  }
  template <typename It>
  void assign(It first, It last) {
    Detach();
    buf_->assign(first, last);
  }
  void push_back(T v) {
    Detach();
    buf_->push_back(std::move(v));
  }
  /// Append another register's contents (concatenation during morsel
  /// stitching).
  void append(const CowVec& other) {
    if (other.empty()) return;
    Detach();
    buf_->insert(buf_->end(), other.buf_->begin(), other.buf_->end());
  }
  void append(CowVec&& other) {
    if (other.empty()) return;
    // Steal only when no buffer exists at all — an empty buffer may carry
    // capacity a caller just reserved for the full concatenation.
    if (!buf_ && other.buf_.use_count() == 1) {
      buf_ = std::move(other.buf_);
      return;
    }
    Detach();
    if (other.buf_.use_count() == 1) {
      buf_->insert(buf_->end(), std::make_move_iterator(other.buf_->begin()),
                   std::make_move_iterator(other.buf_->end()));
    } else {
      buf_->insert(buf_->end(), other.buf_->begin(), other.buf_->end());
    }
  }
  void append(size_t n, const T& v) {
    Detach();
    buf_->insert(buf_->end(), n, v);
  }

  /// Move the elements out (adopting the buffer when uniquely owned).
  std::vector<T> take() && {
    if (!buf_) return {};
    if (buf_.use_count() == 1) return std::move(*buf_);
    return *buf_;
  }

 private:
  void Detach() {
    if (!buf_) {
      buf_ = std::make_shared<std::vector<T>>();
    } else if (buf_.use_count() > 1) {
      buf_ = std::make_shared<std::vector<T>>(*buf_);
    }
  }

  std::shared_ptr<std::vector<T>> buf_;
};

/// \brief One vector register: a column-shaped batch of values of one kind.
struct Vec {
  RegKind kind = RegKind::kNum;
  /// Broadcast constant: a single element stands for every row.
  bool is_const = false;

  // kNum: values + validity mask (empty mask == all valid).
  CowVec<double> num;
  CowVec<uint8_t> valid;
  // kBool: 0/1, never null.
  CowVec<uint8_t> bits;
  // kStr comes in two physical forms with identical observable behavior:
  //  - pointer views: `str[i]` points at the cell's string (nullptr == null).
  //    `str_store` owns strings computed by or copied into this register
  //    (constants included); `str_refs` keeps operand stores and operand
  //    dictionaries alive through blends. Views into column storage stay
  //    valid because the caller holds the table for the register's lifetime;
  //    a register never references Program memory after Run() returns.
  //  - code-backed (dictionary columns): `dict` is set and `codes[i]`
  //    indexes dict's entries (-1 == null); `str` stays empty. Grouping,
  //    equality, and (rank-assisted) sorting run on the int32 codes.
  CowVec<const std::string*> str;
  std::shared_ptr<std::vector<std::string>> str_store;
  /// Type-erased lifetime anchors: operand stores and dictionaries whose
  /// strings this register's pointer views reference.
  std::vector<std::shared_ptr<const void>> str_refs;
  data::DictPtr dict;
  CowVec<int32_t> codes;
  /// Sort ranks per dictionary code (see BuildDictRanks); empty until built.
  std::shared_ptr<const std::vector<int32_t>> dict_ranks;
  // kBoxed: scalar-interpreter fallback values.
  CowVec<data::Value> boxed;

  bool ValidAt(size_t i) const {
    size_t j = is_const ? 0 : i;
    switch (kind) {
      case RegKind::kNum: return valid.empty() || valid[j] != 0;
      case RegKind::kBool: return true;
      case RegKind::kStr: return dict ? codes[j] >= 0 : str[j] != nullptr;
      case RegKind::kBoxed: return !boxed[j].is_null();
    }
    return false;
  }
  double NumAt(size_t i) const { return num[is_const ? 0 : i]; }
  bool BitAt(size_t i) const { return bits[is_const ? 0 : i] != 0; }
  const std::string* StrAt(size_t i) const {
    const size_t j = is_const ? 0 : i;
    if (dict) {
      const int32_t c = codes[j];
      return c < 0 ? nullptr : &dict->values[static_cast<size_t>(c)];
    }
    return str[j];
  }
  /// Dictionary code of cell `i` (code-backed kStr only; -1 == null).
  int32_t CodeAt(size_t i) const { return codes[is_const ? 0 : i]; }

  /// Truthiness of cell `i`, matching EvalValue::Truthy.
  bool TruthyAt(size_t i) const;
  /// Boxed view of cell `i` (numeric cells box as Double; hash/compare
  /// equivalent to the scalar interpreter's typed Values).
  data::Value CellValue(size_t i) const;
  /// Append cell `i` to `out`, with Column::Append's coercions.
  void AppendCellTo(size_t i, data::Column* out) const;
  /// Value::Compare-compatible ordering between two cells of this register.
  int CompareCells(size_t a, size_t b) const;

  /// Precompute the dictionary permutation for a code-backed register so
  /// CompareCells orders by one int compare per probe instead of a string
  /// compare. O(dict size * log) once; a no-op for other registers. Sort
  /// paths call this before comparator loops.
  void BuildDictRanks();
};

/// Typed view of a column as a register (numeric types widen to double;
/// strings become views or shared dictionary codes). Full-range float64 and
/// dictionary columns are aliased, not copied. Used for grouping/sorting on
/// plain columns.
Vec ColumnVec(const data::Column& col);

/// Wrap scalar-interpreter results for the uniform key/sort paths.
Vec BoxedVec(std::vector<data::Value> values);

/// Append every cell of `v` (a register of `n` rows) to `out`, adopting the
/// buffers wholesale for fresh float64 targets and fresh string targets fed
/// by a code-backed register (dictionary passthrough). Shared by RunToColumn
/// and the morsel-parallel projection paths so both produce identical
/// columns.
void VecToColumn(Vec v, size_t n, data::Column* out);

/// \brief Executes compiled programs over a table batch.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(const data::Table& table) : table_(table) {}

  /// Execute and return the result register (one cell per table row).
  Vec Run(const Program& p) const;

  /// Append row indices with truthy results to `sel`, using the fused
  /// predicate fast path (a conjunction of column-vs-constant compares
  /// evaluated in one selection loop, with dictionary equality compiled to
  /// an int32 compare) when the program has one.
  void RunFilter(const Program& p, std::vector<int32_t>* sel) const;

  /// Append every row's result to `out` (which uses its own type's
  /// coercions, like the scalar path's Column::Append).
  void RunToColumn(const Program& p, data::Column* out) const;

  /// Box every row's result into `out`.
  void RunToValues(const Program& p, std::vector<data::Value>* out) const;

 private:
  const data::Table& table_;
};

/// Morsel-parallel equivalents of BatchEvaluator::Run / RunFilter: the table
/// is split into MorselRows()-sized zero-copy slices (Table::Slice), each
/// slice is executed by a per-worker BatchEvaluator on the shared morsel
/// pool (common/parallel.h), and the per-morsel registers / selection
/// vectors are stitched back together in morsel order. Every program op is
/// elementwise, so the stitched result is bit-identical to a single
/// full-batch run; single-morsel inputs and the kill-switch path go through
/// BatchEvaluator directly.
///
/// `cancel` (optional) is polled at morsel checkpoints (common/cancel.h):
/// once it fires, the remaining morsels are skipped and the return value /
/// `sel` contents are unspecified — callers must poll the token after the
/// call and discard the result if it fired.
Vec RunMorselParallel(const data::Table& table, const Program& p,
                      const common::CancelToken* cancel = nullptr);
void RunFilterMorselParallel(const data::Table& table, const Program& p,
                             std::vector<int32_t>* sel,
                             const common::CancelToken* cancel = nullptr);

/// \brief Hash-grouping over typed key registers.
struct GroupResult {
  /// Group id per position in the `rows` span passed to BuildGroups.
  std::vector<uint32_t> group_of;
  /// First row (table row id) seen for each group, in first-seen order.
  std::vector<int32_t> rep_rows;
  size_t num_groups() const { return rep_rows.size(); }
};

/// Group `rows` (table row ids) by the tuple of key registers. Equality and
/// first-seen group order match the scalar GroupKey path (Value::Compare
/// semantics per cell). With no keys, all rows form one group. Code-backed
/// string keys hash and compare their int32 codes — group ids and
/// representative order depend only on the first-seen scan, so the result is
/// identical to the flat-string path.
///
/// Large inputs group morsel-parallel: each worker hash-groups one chunk of
/// positions locally, and the per-chunk tables are merged in chunk order —
/// group ids, representative rows, and group_of come out identical to the
/// sequential first-seen scan for any thread count (and with the kill
/// switch off).
GroupResult BuildGroups(const std::vector<const Vec*>& keys,
                        const std::vector<int32_t>& rows);

// ---- Per-bin accumulation kernels (tile builds) ----
//
// The tile store precomputes, per zoom level, one slot per bin holding
// COUNT(*) plus per-measure count/sum/min/max. These kernels are its morsel
// inner loops: the caller runs one invocation per chunk (possibly in
// parallel, each chunk into its own slots) and merges chunk results in
// chunk order. Null handling and min/max update rules mirror the executor's
// AccumulateAgg exactly — null cells are skipped, min/max initialize on the
// first valid value and a NaN never replaces an existing extremum — so a
// tile answer reproduces the base GROUP BY cell for cell.

/// Map rows of a numeric register onto bin indices over `span`:
///   k = (int64)floor((v - start) / step)
/// using the same IEEE double ops as the rewriter's bin expression, so
/// `start + k * step` bit-matches the query's computed bin floor for every
/// row of the bin. Null rows map to slot `num_bins` (the null bin). Returns
/// false when any value is non-finite or lands outside [0, num_bins) — the
/// level cannot serve queries bit-identically and must be discarded.
/// Thin wrapper over kernels::ComputeBinIndices on a NumSpanOf view.
bool ComputeBinIndices(const Vec& values, double start, double step,
                       size_t num_bins, parallel::Range span, int32_t* bin_of);

/// Per-bin COUNT(*) and first-seen row id (-1 = empty) over `span`,
/// accumulated into `rows`/`first_row` (both sized num_bins + 1, the last
/// slot being the null bin). Chunk merging is the caller's: first_row
/// merges by minimum, rows by sum.
void AccumulateBinRows(const int32_t* bin_of, parallel::Range span,
                       std::vector<int64_t>* rows,
                       std::vector<int64_t>* first_row);

/// Per-bin aggregate slots of one measure column; the implementation lives
/// in the kernel library so the tile builder and benches share one copy.
using BinAggSlots = kernels::BinAggSlots;

/// Accumulate one measure register into per-bin slots for rows in `span`.
/// Numeric and bool registers use the typed fast path (bools as 1.0/0.0);
/// other register kinds are unsupported for tiles and asserted against by
/// the caller's column selection.
void AccumulateBinAggs(const Vec& values, const int32_t* bin_of,
                       parallel::Range span, BinAggSlots* slots);

/// Null-aware kernel view of a numeric or bool register (the accumulation
/// kernels' argument shape). Valid only while `values`'s buffers are alive;
/// callers must only pass kNum or kBool registers.
kernels::NumSpan NumSpanOf(const Vec& values);

}  // namespace expr
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_BATCH_EVAL_H_
