// Column-at-a-time execution of compiled expression programs (see
// compiler.h), plus the typed key helpers the SQL executor and transforms
// use for grouping and sorting without boxing per-row Values.
//
// The contract with the scalar interpreter: for every program Compile()
// accepts, running it over a batch produces exactly the values (and nulls)
// that expr::Evaluate produces row by row. Anything Compile() rejects is
// evaluated by the caller through the scalar interpreter — usually into a
// kBoxed Vec so grouping/sorting code handles both paths uniformly.
#ifndef VEGAPLUS_EXPR_BATCH_EVAL_H_
#define VEGAPLUS_EXPR_BATCH_EVAL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/table.h"
#include "expr/compiler.h"

namespace vegaplus {
namespace expr {

/// Global kill switch (default on). Turned off by benchmarks to measure the
/// scalar interpreter, and by tests to compare both paths.
bool VectorizedEnabled();
void SetVectorizedEnabled(bool enabled);

/// \brief One vector register: a column-shaped batch of values of one kind.
struct Vec {
  RegKind kind = RegKind::kNum;
  /// Broadcast constant: a single element stands for every row.
  bool is_const = false;

  // kNum: values + validity mask (empty mask == all valid).
  std::vector<double> num;
  std::vector<uint8_t> valid;
  // kBool: 0/1, never null.
  std::vector<uint8_t> bits;
  // kStr: views; nullptr == null. `str_store` owns strings computed by or
  // copied into this register (constants included); `str_refs` keeps operand
  // stores alive through blends. Views into column storage stay valid
  // because the caller holds the table for the register's lifetime; a
  // register never references Program memory after Run() returns.
  std::vector<const std::string*> str;
  std::shared_ptr<std::vector<std::string>> str_store;
  std::vector<std::shared_ptr<std::vector<std::string>>> str_refs;
  // kBoxed: scalar-interpreter fallback values.
  std::vector<data::Value> boxed;

  bool ValidAt(size_t i) const {
    size_t j = is_const ? 0 : i;
    switch (kind) {
      case RegKind::kNum: return valid.empty() || valid[j] != 0;
      case RegKind::kBool: return true;
      case RegKind::kStr: return str[j] != nullptr;
      case RegKind::kBoxed: return !boxed[j].is_null();
    }
    return false;
  }
  double NumAt(size_t i) const { return num[is_const ? 0 : i]; }
  bool BitAt(size_t i) const { return bits[is_const ? 0 : i] != 0; }
  const std::string* StrAt(size_t i) const { return str[is_const ? 0 : i]; }

  /// Truthiness of cell `i`, matching EvalValue::Truthy.
  bool TruthyAt(size_t i) const;
  /// Boxed view of cell `i` (numeric cells box as Double; hash/compare
  /// equivalent to the scalar interpreter's typed Values).
  data::Value CellValue(size_t i) const;
  /// Append cell `i` to `out`, with Column::Append's coercions.
  void AppendCellTo(size_t i, data::Column* out) const;
  /// Value::Compare-compatible ordering between two cells of this register.
  int CompareCells(size_t a, size_t b) const;
};

/// Typed view of a column as a register (numeric types widen to double;
/// strings become views). Used for grouping/sorting on plain columns.
Vec ColumnVec(const data::Column& col);

/// Wrap scalar-interpreter results for the uniform key/sort paths.
Vec BoxedVec(std::vector<data::Value> values);

/// Append every cell of `v` (a register of `n` rows) to `out`, adopting the
/// buffers wholesale for fresh float64 targets. Shared by RunToColumn and
/// the morsel-parallel projection paths so both produce identical columns.
void VecToColumn(Vec v, size_t n, data::Column* out);

/// \brief Executes compiled programs over a table batch.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(const data::Table& table) : table_(table) {}

  /// Execute and return the result register (one cell per table row).
  Vec Run(const Program& p) const;

  /// Append row indices with truthy results to `sel`, using the fused
  /// column-compare fast path when the program has one.
  void RunFilter(const Program& p, std::vector<int32_t>* sel) const;

  /// Append every row's result to `out` (which uses its own type's
  /// coercions, like the scalar path's Column::Append).
  void RunToColumn(const Program& p, data::Column* out) const;

  /// Box every row's result into `out`.
  void RunToValues(const Program& p, std::vector<data::Value>* out) const;

 private:
  const data::Table& table_;
};

/// Morsel-parallel equivalents of BatchEvaluator::Run / RunFilter: the table
/// is split into MorselRows()-sized zero-copy slices (Table::Slice), each
/// slice is executed by a per-worker BatchEvaluator on the shared morsel
/// pool (common/parallel.h), and the per-morsel registers / selection
/// vectors are stitched back together in morsel order. Every program op is
/// elementwise, so the stitched result is bit-identical to a single
/// full-batch run; single-morsel inputs and the kill-switch path go through
/// BatchEvaluator directly.
Vec RunMorselParallel(const data::Table& table, const Program& p);
void RunFilterMorselParallel(const data::Table& table, const Program& p,
                             std::vector<int32_t>* sel);

/// \brief Hash-grouping over typed key registers.
struct GroupResult {
  /// Group id per position in the `rows` span passed to BuildGroups.
  std::vector<uint32_t> group_of;
  /// First row (table row id) seen for each group, in first-seen order.
  std::vector<int32_t> rep_rows;
  size_t num_groups() const { return rep_rows.size(); }
};

/// Group `rows` (table row ids) by the tuple of key registers. Equality and
/// first-seen group order match the scalar GroupKey path (Value::Compare
/// semantics per cell). With no keys, all rows form one group.
///
/// Large inputs group morsel-parallel: each worker hash-groups one chunk of
/// positions locally, and the per-chunk tables are merged in chunk order —
/// group ids, representative rows, and group_of come out identical to the
/// sequential first-seen scan for any thread count (and with the kill
/// switch off).
GroupResult BuildGroups(const std::vector<const Vec*>& keys,
                        const std::vector<int32_t>& rows);

}  // namespace expr
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_BATCH_EVAL_H_
