#include "expr/functions.h"

#include <cmath>
#include <unordered_map>

#include "data/csv.h"

namespace vegaplus {
namespace expr {

namespace {

using Args = std::vector<EvalValue>;

data::Value NumOrNull(const EvalValue& v) {
  if (v.is_array() || v.scalar().is_null()) return data::Value::Null();
  return v.scalar();
}

EvalValue Num1(const Args& args, double (*fn)(double)) {
  data::Value v = NumOrNull(args[0]);
  if (v.is_null()) return EvalValue::Null();
  return EvalValue::Number(fn(v.AsDouble()));
}

// Extract the civil date fields from epoch millis (UTC).
struct Civil {
  int64_t year;
  unsigned month;  // 1-12
  unsigned day;    // 1-31
  int hour, minute, second;
  int64_t days;  // days since epoch
};

Civil ToCivil(int64_t millis) {
  int64_t seconds = millis / 1000;
  if (millis % 1000 < 0) seconds -= 1;
  int64_t days = seconds / 86400;
  int64_t sod = seconds % 86400;
  if (sod < 0) {
    sod += 86400;
    days -= 1;
  }
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  Civil c;
  c.year = y + (m <= 2);
  c.month = m;
  c.day = d;
  c.hour = static_cast<int>(sod / 3600);
  c.minute = static_cast<int>((sod % 3600) / 60);
  c.second = static_cast<int>(sod % 60);
  c.days = days;
  return c;
}

int64_t FromCivilDate(int64_t year, unsigned month, unsigned day) {
  int64_t ms;
  // Reuse the CSV date math via formatting would be silly; inline the
  // days-from-civil algorithm.
  int64_t y = year;
  unsigned m = month;
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  const int64_t days = era * 146097LL + static_cast<int64_t>(doe) - 719468LL;
  ms = days * 86400000LL;
  return ms;
}

const std::unordered_map<std::string, FunctionDef>& Registry() {
  static const auto* kRegistry = [] {
    auto* m = new std::unordered_map<std::string, FunctionDef>();
    auto add = [&](FunctionDef def) { (*m)[def.name] = std::move(def); };

    add({"abs", 1, 1, [](const Args& a) { return Num1(a, [](double x) { return std::fabs(x); }); }, "ABS", true});
    add({"ceil", 1, 1, [](const Args& a) { return Num1(a, [](double x) { return std::ceil(x); }); }, "CEIL", true});
    add({"floor", 1, 1, [](const Args& a) { return Num1(a, [](double x) { return std::floor(x); }); }, "FLOOR", true});
    add({"round", 1, 1, [](const Args& a) { return Num1(a, [](double x) { return std::round(x); }); }, "ROUND", true});
    add({"sqrt", 1, 1, [](const Args& a) { return Num1(a, [](double x) { return std::sqrt(x); }); }, "SQRT", true});
    add({"exp", 1, 1, [](const Args& a) { return Num1(a, [](double x) { return std::exp(x); }); }, "EXP", true});
    add({"log", 1, 1, [](const Args& a) { return Num1(a, [](double x) { return std::log(x); }); }, "LN", true});
    add({"pow", 2, 2,
         [](const Args& a) {
           data::Value x = NumOrNull(a[0]), y = NumOrNull(a[1]);
           if (x.is_null() || y.is_null()) return EvalValue::Null();
           return EvalValue::Number(std::pow(x.AsDouble(), y.AsDouble()));
         },
         "POW", true});
    add({"min", 1, -1,
         [](const Args& a) {
           double best = std::numeric_limits<double>::infinity();
           for (const auto& v : a) {
             data::Value s = NumOrNull(v);
             if (s.is_null()) return EvalValue::Null();
             best = std::min(best, s.AsDouble());
           }
           return EvalValue::Number(best);
         },
         "LEAST", true});
    add({"max", 1, -1,
         [](const Args& a) {
           double best = -std::numeric_limits<double>::infinity();
           for (const auto& v : a) {
             data::Value s = NumOrNull(v);
             if (s.is_null()) return EvalValue::Null();
             best = std::max(best, s.AsDouble());
           }
           return EvalValue::Number(best);
         },
         "GREATEST", true});
    add({"clamp", 3, 3,
         [](const Args& a) {
           data::Value x = NumOrNull(a[0]), lo = NumOrNull(a[1]), hi = NumOrNull(a[2]);
           if (x.is_null() || lo.is_null() || hi.is_null()) return EvalValue::Null();
           return EvalValue::Number(
               std::min(std::max(x.AsDouble(), lo.AsDouble()), hi.AsDouble()));
         },
         "", true});  // bespoke emitter (LEAST/GREATEST nesting)
    add({"length", 1, 1,
         [](const Args& a) {
           if (a[0].is_array()) return EvalValue::Number(static_cast<double>(a[0].array().size()));
           if (a[0].scalar().is_string()) {
             return EvalValue::Number(static_cast<double>(a[0].scalar().AsString().size()));
           }
           return EvalValue::Null();
         },
         "LENGTH", true});
    add({"lower", 1, 1,
         [](const Args& a) {
           if (a[0].is_array() || !a[0].scalar().is_string()) return EvalValue::Null();
           std::string s = a[0].scalar().AsString();
           for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
           return EvalValue::String(std::move(s));
         },
         "LOWER", true});
    add({"upper", 1, 1,
         [](const Args& a) {
           if (a[0].is_array() || !a[0].scalar().is_string()) return EvalValue::Null();
           std::string s = a[0].scalar().AsString();
           for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
           return EvalValue::String(std::move(s));
         },
         "UPPER", true});
    add({"isValid", 1, 1,
         [](const Args& a) {
           return EvalValue::Bool(a[0].is_array() || !a[0].scalar().is_null());
         },
         "", true});  // bespoke: (x IS NOT NULL)
    add({"toNumber", 1, 1,
         [](const Args& a) {
           data::Value v = a[0].is_array() ? data::Value::Null() : a[0].scalar();
           if (v.is_null()) return EvalValue::Null();
           if (v.is_string()) {
             double d;
             char* end = nullptr;
             d = std::strtod(v.AsString().c_str(), &end);
             if (end != v.AsString().c_str() + v.AsString().size()) return EvalValue::Null();
             return EvalValue::Number(d);
           }
           return EvalValue::Number(v.AsDouble());
         },
         "", false});
    add({"toString", 1, 1,
         [](const Args& a) { return EvalValue::String(a[0].ToString()); }, "", false});
    add({"if", 3, 3,
         [](const Args& a) { return a[0].Truthy() ? a[1] : a[2]; }, "", true});  // CASE WHEN
    add({"inrange", 2, 2,
         [](const Args& a) {
           data::Value x = NumOrNull(a[0]);
           if (x.is_null() || !a[1].is_array() || a[1].array().size() < 2) {
             return EvalValue::Bool(false);
           }
           double lo = a[1].array()[0].AsDouble();
           double hi = a[1].array()[1].AsDouble();
           if (lo > hi) std::swap(lo, hi);
           double v = x.AsDouble();
           return EvalValue::Bool(v >= lo && v <= hi);
         },
         "", true});  // bespoke: BETWEEN
    add({"span", 1, 1,
         [](const Args& a) {
           if (!a[0].is_array() || a[0].array().size() < 2) return EvalValue::Number(0);
           return EvalValue::Number(a[0].array().back().AsDouble() -
                                    a[0].array().front().AsDouble());
         },
         "", false});
    add({"indexof", 2, 2,
         [](const Args& a) {
           if (a[0].is_array()) {
             const auto& arr = a[0].array();
             const data::Value needle = a[1].is_array() ? data::Value::Null() : a[1].scalar();
             for (size_t i = 0; i < arr.size(); ++i) {
               if (arr[i] == needle) return EvalValue::Number(static_cast<double>(i));
             }
             return EvalValue::Number(-1);
           }
           if (a[0].scalar().is_string() && !a[1].is_array() && a[1].scalar().is_string()) {
             size_t pos = a[0].scalar().AsString().find(a[1].scalar().AsString());
             return EvalValue::Number(pos == std::string::npos ? -1 : static_cast<double>(pos));
           }
           return EvalValue::Number(-1);
         },
         "", false});

    auto add_date = [&](const std::string& name, int64_t (*fn)(int64_t),
                        const std::string& sql) {
      add({name, 1, 1,
           [fn](const Args& a) {
             data::Value v = NumOrNull(a[0]);
             if (v.is_null()) return EvalValue::Null();
             return EvalValue::Number(static_cast<double>(fn(v.AsInt())));
           },
           sql, true});
    };
    add_date("year", TsYear, "YEAR");
    add_date("month", TsMonth, "MONTH");
    add_date("date", TsDayOfMonth, "DAY");
    add_date("day", TsDayOfWeek, "DAYOFWEEK");
    add_date("hours", TsHour, "HOUR");
    add_date("minutes", TsMinute, "MINUTE");
    add_date("seconds", TsSecond, "SECOND");
    add({"time", 1, 1,
         [](const Args& a) {
           data::Value v = NumOrNull(a[0]);
           if (v.is_null()) return EvalValue::Null();
           return EvalValue::Number(v.AsDouble());
         },
         "", false});

    // Date bucketing used by the SQL dialect (DATE_TRUNC / DATE_UNIT_END) and
    // the timeunit transform. Not part of the Vega surface language, but
    // registering them here keeps client and server semantics identical.
    add({"date_trunc", 2, 2,
         [](const Args& a) {
           if (a[0].is_array() || !a[0].scalar().is_string()) return EvalValue::Null();
           data::Value v = NumOrNull(a[1]);
           if (v.is_null()) return EvalValue::Null();
           return EvalValue(data::Value::Timestamp(
               TsTruncate(v.AsInt(), a[0].scalar().AsString())));
         },
         "DATE_TRUNC", true});
    add({"date_unit_end", 2, 2,
         [](const Args& a) {
           if (a[0].is_array() || !a[0].scalar().is_string()) return EvalValue::Null();
           data::Value v = NumOrNull(a[1]);
           if (v.is_null()) return EvalValue::Null();
           const std::string& unit = a[0].scalar().AsString();
           int64_t start = TsTruncate(v.AsInt(), unit);
           return EvalValue(data::Value::Timestamp(start + TsUnitWidth(start, unit)));
         },
         "DATE_UNIT_END", true});

    // Known-but-untranslatable functions (exercise the fallback path).
    add({"format", 2, 2,
         [](const Args& a) { return EvalValue::String(a[0].ToString()); }, "", false});
    add({"timeFormat", 2, 2,
         [](const Args& a) {
           data::Value v = NumOrNull(a[0]);
           if (v.is_null()) return EvalValue::Null();
           return EvalValue::String(data::FormatTimestamp(v.AsInt()));
         },
         "", false});
    return m;
  }();
  return *kRegistry;
}

}  // namespace

const FunctionDef* FindFunction(const std::string& name) {
  const auto& reg = Registry();
  auto it = reg.find(name);
  return it == reg.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionNames() {
  std::vector<std::string> names;
  for (const auto& [name, def] : Registry()) names.push_back(name);
  return names;
}

int64_t TsYear(int64_t millis) { return ToCivil(millis).year; }
int64_t TsMonth(int64_t millis) { return ToCivil(millis).month; }
int64_t TsDayOfMonth(int64_t millis) { return ToCivil(millis).day; }
int64_t TsDayOfWeek(int64_t millis) {
  // 1970-01-01 was a Thursday (4).
  int64_t days = ToCivil(millis).days;
  int64_t dow = (days + 4) % 7;
  if (dow < 0) dow += 7;
  return dow;
}
int64_t TsHour(int64_t millis) { return ToCivil(millis).hour; }
int64_t TsMinute(int64_t millis) { return ToCivil(millis).minute; }
int64_t TsSecond(int64_t millis) { return ToCivil(millis).second; }

int64_t TsTruncate(int64_t millis, const std::string& unit) {
  Civil c = ToCivil(millis);
  if (unit == "year") return FromCivilDate(c.year, 1, 1);
  if (unit == "month") return FromCivilDate(c.year, c.month, 1);
  if (unit == "week") {
    int64_t dow = TsDayOfWeek(millis);
    return (c.days - dow) * 86400000LL;
  }
  if (unit == "date" || unit == "day") return c.days * 86400000LL;
  if (unit == "hours") return c.days * 86400000LL + c.hour * 3600000LL;
  if (unit == "minutes") {
    return c.days * 86400000LL + c.hour * 3600000LL + c.minute * 60000LL;
  }
  if (unit == "seconds") {
    return c.days * 86400000LL + c.hour * 3600000LL + c.minute * 60000LL + c.second * 1000LL;
  }
  return millis;
}

int64_t TsUnitWidth(int64_t truncated, const std::string& unit) {
  if (unit == "year") {
    Civil c = ToCivil(truncated);
    return FromCivilDate(c.year + 1, 1, 1) - truncated;
  }
  if (unit == "month") {
    Civil c = ToCivil(truncated);
    unsigned m = c.month + 1;
    int64_t y = c.year;
    if (m > 12) {
      m = 1;
      ++y;
    }
    return FromCivilDate(y, m, 1) - truncated;
  }
  if (unit == "week") return 7LL * 86400000LL;
  if (unit == "date" || unit == "day") return 86400000LL;
  if (unit == "hours") return 3600000LL;
  if (unit == "minutes") return 60000LL;
  if (unit == "seconds") return 1000LL;
  return 1;
}

}  // namespace expr
}  // namespace vegaplus
