// Vectorized expression compilation: lowers a NodePtr tree into a flat
// postfix program over typed vector registers so a whole column batch can be
// evaluated without materializing per-row Values (see batch_eval.h for the
// executor).
//
// Compilation is best-effort: expressions that depend on signals, arrays,
// unsupported functions, or mix string and numeric operands return nullopt
// and the caller falls back to the row-at-a-time scalar interpreter
// (expr::Evaluate). Everything a compiled program computes is bit-identical
// to the scalar interpreter over the same rows — the differential suite
// (tests/expr_vector_diff_test.cc) enforces this.
#ifndef VEGAPLUS_EXPR_COMPILER_H_
#define VEGAPLUS_EXPR_COMPILER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "data/schema.h"
#include "expr/ast.h"

namespace vegaplus {
namespace expr {

/// Kind of a vector register at execution time.
enum class RegKind : uint8_t {
  kNum,    // doubles + validity mask (ints/timestamps/bools widen, like Value::AsDouble)
  kBool,   // 0/1 bytes, never null (comparison / logical results)
  kStr,    // string views + implicit validity (nullptr == null)
  kBoxed,  // boxed Values; produced only by scalar fallbacks, never by programs
};

/// Postfix opcodes of the vector VM. Each instruction pops its operands from
/// the register stack and pushes one result register.
enum class VecOp : uint8_t {
  // Pushes.
  kLoadCol,        // imm = column index in the table schema
  kLoadNumConst,   // imm = index into num_consts
  kLoadNullNum,    // all-null numeric register
  kLoadBoolConst,  // imm = 0/1
  kLoadStrConst,   // imm = index into str_consts
  // Numeric arithmetic (null-propagating; div/mod by zero -> null).
  kAdd, kSub, kMul, kDiv, kMod,
  // Numeric comparisons -> bool (null compares false; ==/!= treat null==null
  // as true, matching Value::Compare).
  kLtNum, kLteNum, kGtNum, kGteNum, kEqNum, kNeqNum,
  // String comparisons -> bool.
  kLtStr, kLteStr, kGtStr, kGteStr, kEqStr, kNeqStr,
  // String concatenation (null-propagating).
  kConcat,
  // Logical. Bool/bool operands collapse to bitwise ops; num/num operands
  // blend values JS-style (a && b == truthy(a) ? b : a).
  kAndBool, kOrBool, kAndNum, kOrNum,
  kNot,            // any kind -> bool (negated truthiness)
  // Numeric unary (null-propagating). kPlusNum is the numeric identity and
  // also implements toNumber()/time() on numeric operands.
  kNegNum, kPlusNum,
  kBoolToNum,      // kind coercion: 0/1, always valid
  kSelect,         // [cond, then, else] -> blend; then/else share a kind
  kIsValid,        // any kind -> bool validity mask
  // Calls.
  kCallNum1,       // imm = Num1Fn
  kCallPow,
  kCallClamp,
  kCallMin,        // imm = arg count (variadic LEAST semantics)
  kCallMax,        // imm = arg count
  kCallDatePart,   // imm = DatePart
  kCallDateTrunc,  // imm = str_consts index of the unit
  kCallDateUnitEnd,  // imm = str_consts index of the unit
  kCallLenStr,
  kCallLower, kCallUpper,
};

/// One-argument numeric functions (imm of kCallNum1).
enum class Num1Fn : int32_t { kAbs, kCeil, kFloor, kRound, kSqrt, kExp, kLog };

/// Date part extractors (imm of kCallDatePart).
enum class DatePart : int32_t {
  kYear, kMonth, kDate, kDay, kHours, kMinutes, kSeconds,
};

struct Instr {
  VecOp op;
  int32_t imm = 0;
};

/// \brief A compiled expression: postfix code plus constant pools, and an
/// optional fused predicate fast path that lets the filter executor emit a
/// selection vector without materializing any register.
struct Program {
  struct NumConst {
    double value = 0;
    bool is_null = false;
  };

  std::vector<Instr> code;
  std::vector<NumConst> num_consts;
  std::vector<std::string> str_consts;

  RegKind result_kind = RegKind::kNum;
  /// Best-effort static result type (column passthrough keeps the column
  /// type; arithmetic is kFloat64; date_trunc is kTimestamp; ...).
  data::DataType result_type = data::DataType::kFloat64;

  /// One conjunct of the fused predicate fast path: `column <cmp> constant`
  /// (normalized so the column is on the left-hand side). Numeric conjuncts
  /// carry a non-null double constant; string conjuncts (==/!= only) carry a
  /// str_consts index — against a dictionary-encoded column the constant is
  /// looked up once per batch and the row loop compares int32 codes.
  struct FusedPred {
    int32_t col = -1;
    BinaryOp cmp = BinaryOp::kLt;
    bool is_str = false;
    double num_const = 0;
    int32_t str_const = -1;  // index into str_consts (is_str only)
  };

  /// Non-empty when the whole program is an AND-tree of FusedPreds: the
  /// filter executor evaluates all conjuncts in one selection loop instead
  /// of materializing per-conjunct bool registers and blending them.
  /// Deliberately AND-only — zone-map pruning (morsel skips and shard chunk
  /// pushdown) assumes conjunction semantics over this list.
  std::vector<FusedPred> fused_preds;

  /// Postfix combine ops for fused_tree_leaves: an op >= 0 pushes that
  /// leaf's selection bitmap, kTreeAnd/kTreeOr pop two and combine.
  static constexpr int32_t kTreeAnd = -1;
  static constexpr int32_t kTreeOr = -2;

  /// Non-empty when the whole program is an arbitrary AND/OR tree of
  /// FusedPred leaves — a superset of the fused_preds case (a pure AND
  /// chain populates both). The filter executor compiles the tree to one
  /// bitmap-combine pass over the compare kernels instead of falling back
  /// to the general register path.
  std::vector<FusedPred> fused_tree_leaves;
  std::vector<int32_t> fused_tree_ops;

  /// Common-subexpression elimination for column loads: (column, load count)
  /// for every column that appears in two or more kLoadCol instructions
  /// (compound predicates like `datum.a > x && datum.a < y` load `a`
  /// repeatedly). The evaluator materializes each such column register once
  /// per run and reuses it — copying for intermediate uses, moving on the
  /// final one — instead of re-running the typed widening loop per load.
  std::vector<std::pair<int32_t, int32_t>> reused_cols;
};

/// \brief Lowers expression trees to vector programs.
class Compiler {
 public:
  /// Compile `node` against `schema` (the batch's column layout). Returns
  /// nullopt when the expression is not vectorizable (signal references,
  /// arrays, unsupported functions, string/numeric type mixing); callers
  /// fall back to the scalar interpreter.
  static std::optional<Program> Compile(const NodePtr& node,
                                        const data::Schema& schema);
};

}  // namespace expr
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_COMPILER_H_
