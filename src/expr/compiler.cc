#include "expr/compiler.h"

#include <utility>

namespace vegaplus {
namespace expr {

namespace {

using data::DataType;

/// Compile-time description of the register a subtree produces.
struct RegInfo {
  RegKind kind;
  DataType type;
};

class CompilerImpl {
 public:
  CompilerImpl(const data::Schema& schema, Program* program)
      : schema_(schema), program_(program) {}

  std::optional<RegInfo> Emit(const NodePtr& node, std::vector<Instr>* out);

 private:
  std::optional<RegInfo> EmitBinary(const Node& node, std::vector<Instr>* out);
  std::optional<RegInfo> EmitCall(const Node& node, std::vector<Instr>* out);
  std::optional<RegInfo> EmitTernary(const NodePtr& cond, const NodePtr& then_branch,
                                     const NodePtr& else_branch,
                                     std::vector<Instr>* out);

  /// Emit a subtree that must end up numeric; inserts kBoolToNum when the
  /// subtree produces a bool register. Returns false when not possible.
  bool EmitNum(const NodePtr& node, std::vector<Instr>* out);

  int32_t AddNumConst(double v, bool is_null) {
    program_->num_consts.push_back({v, is_null});
    return static_cast<int32_t>(program_->num_consts.size() - 1);
  }
  int32_t AddStrConst(std::string s) {
    program_->str_consts.push_back(std::move(s));
    return static_cast<int32_t>(program_->str_consts.size() - 1);
  }

  const data::Schema& schema_;
  Program* program_;
};

bool CompilerImpl::EmitNum(const NodePtr& node, std::vector<Instr>* out) {
  std::vector<Instr> tmp;
  auto r = Emit(node, &tmp);
  if (!r) return false;
  if (r->kind == RegKind::kBool) {
    tmp.push_back({VecOp::kBoolToNum, 0});
  } else if (r->kind != RegKind::kNum) {
    return false;
  }
  out->insert(out->end(), tmp.begin(), tmp.end());
  return true;
}

std::optional<RegInfo> CompilerImpl::EmitBinary(const Node& node,
                                                std::vector<Instr>* out) {
  std::vector<Instr> lhs_code, rhs_code;
  auto lhs = Emit(node.a, &lhs_code);
  auto rhs = Emit(node.b, &rhs_code);
  if (!lhs || !rhs) return std::nullopt;

  const bool lhs_str = lhs->kind == RegKind::kStr;
  const bool rhs_str = rhs->kind == RegKind::kStr;
  const BinaryOp op = node.binary_op;

  // String operands vectorize only against string operands; a string mixed
  // with a numeric operand keeps the interpreter's ToString/AsDouble quirks
  // and is left to the scalar fallback.
  if (lhs_str != rhs_str) return std::nullopt;

  if (lhs_str) {
    out->insert(out->end(), lhs_code.begin(), lhs_code.end());
    out->insert(out->end(), rhs_code.begin(), rhs_code.end());
    switch (op) {
      case BinaryOp::kAdd:
        out->push_back({VecOp::kConcat, 0});
        return RegInfo{RegKind::kStr, DataType::kString};
      case BinaryOp::kLt: out->push_back({VecOp::kLtStr, 0}); break;
      case BinaryOp::kLte: out->push_back({VecOp::kLteStr, 0}); break;
      case BinaryOp::kGt: out->push_back({VecOp::kGtStr, 0}); break;
      case BinaryOp::kGte: out->push_back({VecOp::kGteStr, 0}); break;
      case BinaryOp::kEq: out->push_back({VecOp::kEqStr, 0}); break;
      case BinaryOp::kNeq: out->push_back({VecOp::kNeqStr, 0}); break;
      default:
        return std::nullopt;  // string arithmetic / logic: scalar fallback
    }
    return RegInfo{RegKind::kBool, DataType::kBool};
  }

  // &&/|| on two bool registers is pure bit logic; on value registers it is
  // a JS-style truthiness blend that preserves the operand values.
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    if (lhs->kind == RegKind::kBool && rhs->kind == RegKind::kBool) {
      out->insert(out->end(), lhs_code.begin(), lhs_code.end());
      out->insert(out->end(), rhs_code.begin(), rhs_code.end());
      out->push_back({op == BinaryOp::kAnd ? VecOp::kAndBool : VecOp::kOrBool, 0});
      return RegInfo{RegKind::kBool, DataType::kBool};
    }
    out->insert(out->end(), lhs_code.begin(), lhs_code.end());
    if (lhs->kind == RegKind::kBool) out->push_back({VecOp::kBoolToNum, 0});
    out->insert(out->end(), rhs_code.begin(), rhs_code.end());
    if (rhs->kind == RegKind::kBool) out->push_back({VecOp::kBoolToNum, 0});
    out->push_back({op == BinaryOp::kAnd ? VecOp::kAndNum : VecOp::kOrNum, 0});
    DataType t = lhs->type == rhs->type ? lhs->type : DataType::kFloat64;
    return RegInfo{RegKind::kNum, t};
  }

  out->insert(out->end(), lhs_code.begin(), lhs_code.end());
  if (lhs->kind == RegKind::kBool) out->push_back({VecOp::kBoolToNum, 0});
  out->insert(out->end(), rhs_code.begin(), rhs_code.end());
  if (rhs->kind == RegKind::kBool) out->push_back({VecOp::kBoolToNum, 0});
  switch (op) {
    case BinaryOp::kAdd: out->push_back({VecOp::kAdd, 0}); break;
    case BinaryOp::kSub: out->push_back({VecOp::kSub, 0}); break;
    case BinaryOp::kMul: out->push_back({VecOp::kMul, 0}); break;
    case BinaryOp::kDiv: out->push_back({VecOp::kDiv, 0}); break;
    case BinaryOp::kMod: out->push_back({VecOp::kMod, 0}); break;
    case BinaryOp::kLt: out->push_back({VecOp::kLtNum, 0}); break;
    case BinaryOp::kLte: out->push_back({VecOp::kLteNum, 0}); break;
    case BinaryOp::kGt: out->push_back({VecOp::kGtNum, 0}); break;
    case BinaryOp::kGte: out->push_back({VecOp::kGteNum, 0}); break;
    case BinaryOp::kEq: out->push_back({VecOp::kEqNum, 0}); break;
    case BinaryOp::kNeq: out->push_back({VecOp::kNeqNum, 0}); break;
    default:
      return std::nullopt;
  }
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return RegInfo{RegKind::kNum, DataType::kFloat64};
    default:
      return RegInfo{RegKind::kBool, DataType::kBool};
  }
}

std::optional<RegInfo> CompilerImpl::EmitTernary(const NodePtr& cond,
                                                 const NodePtr& then_branch,
                                                 const NodePtr& else_branch,
                                                 std::vector<Instr>* out) {
  std::vector<Instr> cond_code, then_code, else_code;
  auto c = Emit(cond, &cond_code);
  auto t = Emit(then_branch, &then_code);
  auto e = Emit(else_branch, &else_code);
  if (!c || !t || !e) return std::nullopt;

  RegKind branch_kind;
  DataType type;
  if (t->kind == e->kind) {
    branch_kind = t->kind;
    type = t->type == e->type
               ? t->type
               : (branch_kind == RegKind::kStr ? DataType::kString
                                               : DataType::kFloat64);
  } else if ((t->kind == RegKind::kBool && e->kind == RegKind::kNum) ||
             (t->kind == RegKind::kNum && e->kind == RegKind::kBool)) {
    branch_kind = RegKind::kNum;
    type = DataType::kFloat64;
  } else {
    return std::nullopt;  // string/number branch mixing: scalar fallback
  }

  out->insert(out->end(), cond_code.begin(), cond_code.end());
  out->insert(out->end(), then_code.begin(), then_code.end());
  if (branch_kind == RegKind::kNum && t->kind == RegKind::kBool) {
    out->push_back({VecOp::kBoolToNum, 0});
  }
  out->insert(out->end(), else_code.begin(), else_code.end());
  if (branch_kind == RegKind::kNum && e->kind == RegKind::kBool) {
    out->push_back({VecOp::kBoolToNum, 0});
  }
  out->push_back({VecOp::kSelect, 0});
  return RegInfo{branch_kind, type};
}

std::optional<RegInfo> CompilerImpl::EmitCall(const Node& node,
                                              std::vector<Instr>* out) {
  const std::string& fn = node.name;
  const auto& args = node.args;

  struct Num1Entry {
    const char* name;
    Num1Fn fn;
  };
  static constexpr Num1Entry kNum1[] = {
      {"abs", Num1Fn::kAbs},   {"ceil", Num1Fn::kCeil}, {"floor", Num1Fn::kFloor},
      {"round", Num1Fn::kRound}, {"sqrt", Num1Fn::kSqrt}, {"exp", Num1Fn::kExp},
      {"log", Num1Fn::kLog},
  };
  for (const auto& entry : kNum1) {
    if (fn == entry.name && args.size() == 1) {
      if (!EmitNum(args[0], out)) return std::nullopt;
      out->push_back({VecOp::kCallNum1, static_cast<int32_t>(entry.fn)});
      return RegInfo{RegKind::kNum, DataType::kFloat64};
    }
  }

  struct DateEntry {
    const char* name;
    DatePart part;
  };
  static constexpr DateEntry kDates[] = {
      {"year", DatePart::kYear},       {"month", DatePart::kMonth},
      {"date", DatePart::kDate},       {"day", DatePart::kDay},
      {"hours", DatePart::kHours},     {"minutes", DatePart::kMinutes},
      {"seconds", DatePart::kSeconds},
  };
  for (const auto& entry : kDates) {
    if (fn == entry.name && args.size() == 1) {
      if (!EmitNum(args[0], out)) return std::nullopt;
      out->push_back({VecOp::kCallDatePart, static_cast<int32_t>(entry.part)});
      // The scalar interpreter returns Number() for date parts, so the
      // inferred value type stays kFloat64 for output-column parity.
      return RegInfo{RegKind::kNum, DataType::kFloat64};
    }
  }

  if ((fn == "date_trunc" || fn == "date_unit_end") && args.size() == 2) {
    // The unit must be a literal string (it always is in translated SQL).
    if (!args[0] || args[0]->kind != NodeKind::kLiteral ||
        !args[0]->literal.is_string()) {
      return std::nullopt;
    }
    if (!EmitNum(args[1], out)) return std::nullopt;
    int32_t unit = AddStrConst(args[0]->literal.AsString());
    out->push_back({fn == "date_trunc" ? VecOp::kCallDateTrunc
                                       : VecOp::kCallDateUnitEnd,
                    unit});
    return RegInfo{RegKind::kNum, DataType::kTimestamp};
  }

  if (fn == "pow" && args.size() == 2) {
    if (!EmitNum(args[0], out) || !EmitNum(args[1], out)) return std::nullopt;
    out->push_back({VecOp::kCallPow, 0});
    return RegInfo{RegKind::kNum, DataType::kFloat64};
  }
  if (fn == "clamp" && args.size() == 3) {
    for (const NodePtr& a : args) {
      if (!EmitNum(a, out)) return std::nullopt;
    }
    out->push_back({VecOp::kCallClamp, 0});
    return RegInfo{RegKind::kNum, DataType::kFloat64};
  }
  if ((fn == "min" || fn == "max") && !args.empty()) {
    for (const NodePtr& a : args) {
      if (!EmitNum(a, out)) return std::nullopt;
    }
    out->push_back({fn == "min" ? VecOp::kCallMin : VecOp::kCallMax,
                    static_cast<int32_t>(args.size())});
    return RegInfo{RegKind::kNum, DataType::kFloat64};
  }
  if ((fn == "toNumber" || fn == "time") && args.size() == 1) {
    // Numeric identity on already-numeric operands; string parsing falls back.
    if (!EmitNum(args[0], out)) return std::nullopt;
    out->push_back({VecOp::kPlusNum, 0});
    return RegInfo{RegKind::kNum, DataType::kFloat64};
  }
  if (fn == "isValid" && args.size() == 1) {
    std::vector<Instr> tmp;
    if (!Emit(args[0], &tmp)) return std::nullopt;
    out->insert(out->end(), tmp.begin(), tmp.end());
    out->push_back({VecOp::kIsValid, 0});
    return RegInfo{RegKind::kBool, DataType::kBool};
  }
  if (fn == "if" && args.size() == 3) {
    return EmitTernary(args[0], args[1], args[2], out);
  }
  if ((fn == "length" || fn == "lower" || fn == "upper") && args.size() == 1) {
    std::vector<Instr> tmp;
    auto r = Emit(args[0], &tmp);
    if (!r || r->kind != RegKind::kStr) return std::nullopt;
    out->insert(out->end(), tmp.begin(), tmp.end());
    if (fn == "length") {
      out->push_back({VecOp::kCallLenStr, 0});
      return RegInfo{RegKind::kNum, DataType::kFloat64};
    }
    out->push_back({fn == "lower" ? VecOp::kCallLower : VecOp::kCallUpper, 0});
    return RegInfo{RegKind::kStr, DataType::kString};
  }
  return std::nullopt;
}

std::optional<RegInfo> CompilerImpl::Emit(const NodePtr& node,
                                          std::vector<Instr>* out) {
  if (!node) return std::nullopt;
  switch (node->kind) {
    case NodeKind::kLiteral: {
      const data::Value& v = node->literal;
      switch (v.type()) {
        case DataType::kNull:
          out->push_back({VecOp::kLoadNullNum, 0});
          return RegInfo{RegKind::kNum, DataType::kFloat64};
        case DataType::kBool:
          out->push_back({VecOp::kLoadBoolConst, v.AsBool() ? 1 : 0});
          return RegInfo{RegKind::kBool, DataType::kBool};
        case DataType::kInt64:
        case DataType::kFloat64:
        case DataType::kTimestamp:
          out->push_back({VecOp::kLoadNumConst, AddNumConst(v.AsDouble(), false)});
          return RegInfo{RegKind::kNum, v.type()};
        case DataType::kString:
          out->push_back({VecOp::kLoadStrConst, AddStrConst(v.AsString())});
          return RegInfo{RegKind::kStr, DataType::kString};
      }
      return std::nullopt;
    }
    case NodeKind::kIdentifier:
      // Signals are bound per-evaluation, not per-batch: scalar fallback.
      // A bare `datum` evaluates to null in the interpreter.
      if (node->name == "datum") {
        out->push_back({VecOp::kLoadNullNum, 0});
        return RegInfo{RegKind::kNum, DataType::kFloat64};
      }
      return std::nullopt;
    case NodeKind::kMember: {
      if (!node->a || node->a->kind != NodeKind::kIdentifier ||
          node->a->name != "datum") {
        return std::nullopt;  // array .length etc: scalar fallback
      }
      int idx = schema_.FieldIndex(node->name);
      if (idx < 0) {
        out->push_back({VecOp::kLoadNullNum, 0});
        return RegInfo{RegKind::kNum, DataType::kFloat64};
      }
      DataType t = schema_.field(static_cast<size_t>(idx)).type;
      if (t == DataType::kNull) {
        out->push_back({VecOp::kLoadNullNum, 0});
        return RegInfo{RegKind::kNum, DataType::kFloat64};
      }
      out->push_back({VecOp::kLoadCol, idx});
      if (t == DataType::kString) return RegInfo{RegKind::kStr, t};
      return RegInfo{RegKind::kNum, t};
    }
    case NodeKind::kUnary: {
      if (node->unary_op == UnaryOp::kNot) {
        std::vector<Instr> tmp;
        if (!Emit(node->a, &tmp)) return std::nullopt;
        out->insert(out->end(), tmp.begin(), tmp.end());
        out->push_back({VecOp::kNot, 0});
        return RegInfo{RegKind::kBool, DataType::kBool};
      }
      // Fold negated numeric literals into one constant, so `x > -20`
      // keeps the three-instruction shape the fused-predicate detector
      // (and the broadcast-constant machinery) recognizes.
      if (node->unary_op == UnaryOp::kNeg && node->a &&
          node->a->kind == NodeKind::kLiteral && node->a->literal.is_numeric()) {
        out->push_back(
            {VecOp::kLoadNumConst, AddNumConst(-node->a->literal.AsDouble(), false)});
        return RegInfo{RegKind::kNum, DataType::kFloat64};
      }
      if (!EmitNum(node->a, out)) return std::nullopt;
      out->push_back({node->unary_op == UnaryOp::kNeg ? VecOp::kNegNum
                                                      : VecOp::kPlusNum,
                      0});
      return RegInfo{RegKind::kNum, DataType::kFloat64};
    }
    case NodeKind::kBinary:
      return EmitBinary(*node, out);
    case NodeKind::kTernary:
      return EmitTernary(node->a, node->b, node->c, out);
    case NodeKind::kCall:
      return EmitCall(*node, out);
    case NodeKind::kIndex:
    case NodeKind::kArray:
      return std::nullopt;  // array values: scalar fallback
  }
  return std::nullopt;
}

/// Match a `column <cmp> constant` compare (in either operand order) at
/// code[i..i+2]. Numeric compares accept any of the six operators against a
/// non-null constant; string compares accept ==/!= against a literal.
bool MatchFusedCompare(const Program& p, size_t i, Program::FusedPred* out) {
  if (i + 2 >= p.code.size()) return false;
  const Instr& a = p.code[i];
  const Instr& b = p.code[i + 1];
  const Instr& cmp = p.code[i + 2];
  BinaryOp op;
  bool is_str = false;
  switch (cmp.op) {
    case VecOp::kLtNum: op = BinaryOp::kLt; break;
    case VecOp::kLteNum: op = BinaryOp::kLte; break;
    case VecOp::kGtNum: op = BinaryOp::kGt; break;
    case VecOp::kGteNum: op = BinaryOp::kGte; break;
    case VecOp::kEqNum: op = BinaryOp::kEq; break;
    case VecOp::kNeqNum: op = BinaryOp::kNeq; break;
    case VecOp::kEqStr: op = BinaryOp::kEq; is_str = true; break;
    case VecOp::kNeqStr: op = BinaryOp::kNeq; is_str = true; break;
    default: return false;
  }
  const VecOp const_op = is_str ? VecOp::kLoadStrConst : VecOp::kLoadNumConst;
  const Instr* col = nullptr;
  const Instr* cst = nullptr;
  if (a.op == VecOp::kLoadCol && b.op == const_op) {
    col = &a;
    cst = &b;
  } else if (a.op == const_op && b.op == VecOp::kLoadCol) {
    col = &b;
    cst = &a;
    // Mirror the comparison so the column sits on the left.
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLte: op = BinaryOp::kGte; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGte: op = BinaryOp::kLte; break;
      default: break;  // ==/!= are symmetric
    }
  } else {
    return false;
  }
  out->col = col->imm;
  out->cmp = op;
  out->is_str = is_str;
  if (is_str) {
    out->str_const = cst->imm;
  } else {
    const Program::NumConst& c = p.num_consts[static_cast<size_t>(cst->imm)];
    if (c.is_null) return false;  // null comparisons keep the general path
    out->num_const = c.value;
  }
  return true;
}

/// Detect programs that are an AND/OR tree of `column <cmp> constant`
/// compares — `a > x`, `a > x && b < y && s == 'k'`, `a > x || b == y`, any
/// association and mixing — and record the leaf list plus a postfix combine
/// program so RunFilter runs one bitmap pass over the compare kernels
/// instead of per-leaf bool registers plus blends. Pure AND chains
/// additionally populate fused_preds (the conjunct list the zone-map
/// pruning paths consume; OR nodes would break their semantics).
void DetectFusedPredicates(Program* p) {
  std::vector<Program::FusedPred> leaves;
  std::vector<int32_t> ops;
  size_t bools_on_stack = 0;
  bool has_or = false;
  size_t i = 0;
  while (i < p->code.size()) {
    Program::FusedPred pred;
    if (MatchFusedCompare(*p, i, &pred)) {
      ops.push_back(static_cast<int32_t>(leaves.size()));
      leaves.push_back(pred);
      ++bools_on_stack;
      i += 3;
      continue;
    }
    const VecOp op = p->code[i].op;
    if ((op == VecOp::kAndBool || op == VecOp::kOrBool) &&
        bools_on_stack >= 2) {
      has_or = has_or || op == VecOp::kOrBool;
      ops.push_back(op == VecOp::kAndBool ? Program::kTreeAnd
                                          : Program::kTreeOr);
      --bools_on_stack;
      ++i;
      continue;
    }
    return;  // anything else: not a fused predicate tree
  }
  if (bools_on_stack != 1 || leaves.empty()) return;
  if (!has_or) p->fused_preds = leaves;
  p->fused_tree_leaves = std::move(leaves);
  p->fused_tree_ops = std::move(ops);
}

/// Compile-time CSE analysis: record columns loaded more than once (and how
/// often) so the evaluator caches their registers per program run.
void DetectReusedColumns(Program* p) {
  std::vector<std::pair<int32_t, int32_t>> counts;
  for (const Instr& instr : p->code) {
    if (instr.op != VecOp::kLoadCol) continue;
    bool found = false;
    for (auto& [col, n] : counts) {
      if (col == instr.imm) {
        ++n;
        found = true;
        break;
      }
    }
    if (!found) counts.emplace_back(instr.imm, 1);
  }
  for (const auto& entry : counts) {
    if (entry.second >= 2) p->reused_cols.push_back(entry);
  }
}

}  // namespace

std::optional<Program> Compiler::Compile(const NodePtr& node,
                                         const data::Schema& schema) {
  Program program;
  CompilerImpl impl(schema, &program);
  auto result = impl.Emit(node, &program.code);
  if (!result) return std::nullopt;
  program.result_kind = result->kind;
  program.result_type = result->type;
  DetectFusedPredicates(&program);
  DetectReusedColumns(&program);
  return program;
}

}  // namespace expr
}  // namespace vegaplus
