#include "expr/ast.h"

#include <algorithm>

#include "common/str_util.h"

namespace vegaplus {
namespace expr {

namespace {
std::shared_ptr<Node> NewNode(NodeKind kind) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  return n;
}
}  // namespace

NodePtr Node::Literal(data::Value v) {
  auto n = NewNode(NodeKind::kLiteral);
  n->literal = std::move(v);
  return n;
}

NodePtr Node::Identifier(std::string name) {
  auto n = NewNode(NodeKind::kIdentifier);
  n->name = std::move(name);
  return n;
}

NodePtr Node::Member(NodePtr obj, std::string prop) {
  auto n = NewNode(NodeKind::kMember);
  n->a = std::move(obj);
  n->name = std::move(prop);
  return n;
}

NodePtr Node::Index(NodePtr obj, NodePtr index) {
  auto n = NewNode(NodeKind::kIndex);
  n->a = std::move(obj);
  n->b = std::move(index);
  return n;
}

NodePtr Node::Unary(UnaryOp op, NodePtr operand) {
  auto n = NewNode(NodeKind::kUnary);
  n->unary_op = op;
  n->a = std::move(operand);
  return n;
}

NodePtr Node::Binary(BinaryOp op, NodePtr lhs, NodePtr rhs) {
  auto n = NewNode(NodeKind::kBinary);
  n->binary_op = op;
  n->a = std::move(lhs);
  n->b = std::move(rhs);
  return n;
}

NodePtr Node::Ternary(NodePtr cond, NodePtr then_branch, NodePtr else_branch) {
  auto n = NewNode(NodeKind::kTernary);
  n->a = std::move(cond);
  n->b = std::move(then_branch);
  n->c = std::move(else_branch);
  return n;
}

NodePtr Node::Call(std::string fn, std::vector<NodePtr> args) {
  auto n = NewNode(NodeKind::kCall);
  n->name = std::move(fn);
  n->args = std::move(args);
  return n;
}

NodePtr Node::Array(std::vector<NodePtr> elements) {
  auto n = NewNode(NodeKind::kArray);
  n->args = std::move(elements);
  return n;
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNeq: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLte: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGte: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "!";
    case UnaryOp::kPlus: return "+";
  }
  return "?";
}

std::string ToString(const NodePtr& node) {
  if (!node) return "<null>";
  switch (node->kind) {
    case NodeKind::kLiteral:
      if (node->literal.is_string()) {
        return "'" + node->literal.AsString() + "'";
      }
      return node->literal.ToString();
    case NodeKind::kIdentifier:
      return node->name;
    case NodeKind::kMember:
      return ToString(node->a) + "." + node->name;
    case NodeKind::kIndex:
      return ToString(node->a) + "[" + ToString(node->b) + "]";
    case NodeKind::kUnary:
      return std::string(UnaryOpName(node->unary_op)) + "(" + ToString(node->a) + ")";
    case NodeKind::kBinary:
      return "(" + ToString(node->a) + " " + BinaryOpName(node->binary_op) + " " +
             ToString(node->b) + ")";
    case NodeKind::kTernary:
      return "(" + ToString(node->a) + " ? " + ToString(node->b) + " : " +
             ToString(node->c) + ")";
    case NodeKind::kCall: {
      std::string out = node->name + "(";
      for (size_t i = 0; i < node->args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToString(node->args[i]);
      }
      return out + ")";
    }
    case NodeKind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < node->args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToString(node->args[i]);
      }
      return out + "]";
    }
  }
  return "?";
}

namespace {

void AddUnique(std::vector<std::string>* v, const std::string& s) {
  if (std::find(v->begin(), v->end(), s) == v->end()) v->push_back(s);
}

}  // namespace

void CollectReferences(const NodePtr& node, std::vector<std::string>* fields,
                       std::vector<std::string>* signals) {
  if (!node) return;
  switch (node->kind) {
    case NodeKind::kIdentifier:
      if (node->name != "datum") AddUnique(signals, node->name);
      return;
    case NodeKind::kMember:
      if (node->a && node->a->kind == NodeKind::kIdentifier && node->a->name == "datum") {
        AddUnique(fields, node->name);
        return;
      }
      CollectReferences(node->a, fields, signals);
      return;
    default:
      break;
  }
  CollectReferences(node->a, fields, signals);
  CollectReferences(node->b, fields, signals);
  CollectReferences(node->c, fields, signals);
  for (const auto& arg : node->args) CollectReferences(arg, fields, signals);
}

}  // namespace expr
}  // namespace vegaplus
