// Expression evaluation against a (datum, signals) context.
//
// Split into Validate() (one-time, Status-returning: unknown functions,
// arity errors) and Evaluate() (per-row, never fails: JS-like semantics map
// runtime oddities to null/false). This keeps the per-row hot path free of
// error plumbing while still surfacing spec bugs eagerly.
#ifndef VEGAPLUS_EXPR_EVALUATOR_H_
#define VEGAPLUS_EXPR_EVALUATOR_H_

#include <map>
#include <string>

#include "common/result.h"
#include "data/table.h"
#include "expr/ast.h"
#include "expr/eval_value.h"

namespace vegaplus {
namespace expr {

/// \brief Signal lookup interface; dataflow::SignalRegistry implements it.
class SignalResolver {
 public:
  virtual ~SignalResolver() = default;
  /// Return true and fill `out` when `name` resolves.
  virtual bool Lookup(const std::string& name, EvalValue* out) const = 0;
};

/// Resolver over a fixed set (used in tests and template population).
class MapSignalResolver : public SignalResolver {
 public:
  void Set(const std::string& name, EvalValue v) { values_[name] = std::move(v); }
  bool Lookup(const std::string& name, EvalValue* out) const override {
    auto it = values_.find(name);
    if (it == values_.end()) return false;
    *out = it->second;
    return true;
  }

 private:
  std::map<std::string, EvalValue> values_;
};

/// \brief Evaluation context: the current datum row plus signal values.
struct EvalContext {
  const data::Table* table = nullptr;  // may be null (signal-only expressions)
  size_t row = 0;
  const SignalResolver* signals = nullptr;  // may be null
};

/// Static checks: every Call refers to a known function with valid arity.
Status Validate(const NodePtr& node);

/// Evaluate `node` under `ctx`. Unknown fields/signals and type mismatches
/// evaluate to null (JS "undefined"-like), never error.
EvalValue Evaluate(const NodePtr& node, const EvalContext& ctx);

}  // namespace expr
}  // namespace vegaplus

#endif  // VEGAPLUS_EXPR_EVALUATOR_H_
