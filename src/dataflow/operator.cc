#include "dataflow/operator.h"

namespace vegaplus {
namespace dataflow {

Result<EvalResult> TableSourceOp::Evaluate(const data::TablePtr& /*input*/,
                                           const expr::SignalResolver& /*signals*/) {
  if (!table_) return Status::InvalidArgument("source: no table bound");
  EvalResult result;
  result.table = table_;
  result.rows_processed = table_->num_rows();
  return result;
}

Result<EvalResult> RelayOp::Evaluate(const data::TablePtr& input,
                                     const expr::SignalResolver& /*signals*/) {
  if (!input) return Status::InvalidArgument("relay: missing input");
  EvalResult result;
  result.table = input;
  result.rows_processed = 0;  // relays are free (no copy in this runtime)
  return result;
}

}  // namespace dataflow
}  // namespace vegaplus
