#include "dataflow/signal_registry.h"

namespace vegaplus {
namespace dataflow {

void SignalRegistry::Set(const std::string& name, expr::EvalValue value, int64_t stamp) {
  Entry& e = values_[name];
  e.value = std::move(value);
  e.stamp = stamp;
}

int64_t SignalRegistry::StampOf(const std::string& name) const {
  auto it = values_.find(name);
  return it == values_.end() ? -1 : it->second.stamp;
}

bool SignalRegistry::Lookup(const std::string& name, expr::EvalValue* out) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  *out = it->second.value;
  return true;
}

expr::EvalValue SignalRegistry::Get(const std::string& name) const {
  expr::EvalValue v;
  Lookup(name, &v);
  return v;
}

std::vector<std::string> SignalRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, entry] : values_) names.push_back(name);
  return names;
}

}  // namespace dataflow
}  // namespace vegaplus
