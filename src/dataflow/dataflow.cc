#include "dataflow/dataflow.h"

#include <algorithm>

#include "common/logging.h"

namespace vegaplus {
namespace dataflow {

Operator* Dataflow::Add(std::unique_ptr<Operator> op, Operator* input) {
  op->id = static_cast<int>(operators_.size());
  op->input = input;
  ranks_dirty_ = true;
  operators_.push_back(std::move(op));
  return operators_.back().get();
}

void Dataflow::DeclareSignal(const std::string& name, expr::EvalValue initial) {
  signals_.Set(name, std::move(initial), 0);
}

Status Dataflow::AssignRanks() {
  // Dependencies: data input edge, plus an edge from the producer of every
  // signal the operator reads. Iterate to fixpoint (graphs are small; a DAG
  // converges in <= |V| sweeps).
  for (auto& op : operators_) op->rank = 0;
  bool changed = true;
  size_t sweeps = 0;
  while (changed) {
    if (++sweeps > operators_.size() + 2) {
      return Status::InvalidArgument("dataflow: dependency cycle detected");
    }
    changed = false;
    for (auto& op : operators_) {
      int rank = 0;
      if (op->input != nullptr) rank = std::max(rank, op->input->rank + 1);
      for (const std::string& sig : op->signal_deps()) {
        auto it = signal_producers_.find(sig);
        if (it != signal_producers_.end() && it->second != op.get()) {
          rank = std::max(rank, it->second->rank + 1);
        }
      }
      if (rank != op->rank) {
        op->rank = rank;
        changed = true;
      }
    }
  }
  ranks_dirty_ = false;
  return Status::OK();
}

Result<RunStats> Dataflow::Run() {
  std::vector<Operator*> all;
  all.reserve(operators_.size());
  for (auto& op : operators_) all.push_back(op.get());
  return Propagate(all);
}

Result<RunStats> Dataflow::Update(
    const std::vector<std::pair<std::string, expr::EvalValue>>& signal_updates) {
  ++clock_;
  for (const auto& [name, value] : signal_updates) {
    signals_.Set(name, value, clock_);
  }
  // Dirty set: operators reading an updated signal.
  std::vector<Operator*> dirty;
  for (auto& op : operators_) {
    for (const std::string& sig : op->signal_deps()) {
      int64_t s = signals_.StampOf(sig);
      if (s > op->stamp) {
        dirty.push_back(op.get());
        break;
      }
    }
  }
  return Propagate(dirty);
}

Result<RunStats> Dataflow::Propagate(const std::vector<Operator*>& initially_dirty) {
  if (ranks_dirty_) VP_RETURN_IF_ERROR(AssignRanks());
  if (clock_ == 0) ++clock_;  // initial Run() gets stamp 1

  // Order by (rank, id) for deterministic evaluation.
  std::vector<Operator*> order;
  order.reserve(operators_.size());
  for (auto& op : operators_) order.push_back(op.get());
  std::sort(order.begin(), order.end(), [](const Operator* a, const Operator* b) {
    return a->rank != b->rank ? a->rank < b->rank : a->id < b->id;
  });

  std::vector<bool> dirty(operators_.size(), false);
  for (Operator* op : initially_dirty) dirty[static_cast<size_t>(op->id)] = true;

  // Re-check input/signal stamps (a producer earlier in this pass may have
  // written a signal this operator reads).
  auto is_dirty = [&](const Operator* op) {
    if (dirty[static_cast<size_t>(op->id)]) return true;
    if (op->input != nullptr && op->input->stamp > op->stamp) return true;
    for (const std::string& sig : op->signal_deps()) {
      if (signals_.StampOf(sig) > op->stamp) return true;
    }
    return false;
  };

  // Evaluate rank by rank. Operators within one rank are independent by
  // construction, so their external work (VDT queries) is prefetched —
  // submitted asynchronously — before any of them is evaluated, and the wave
  // is charged the *maximum* external latency of its members instead of the
  // sum: k concurrent server round trips cost ~max, not k round trips.
  RunStats stats;
  size_t wave_start = 0;
  while (wave_start < order.size()) {
    size_t wave_end = wave_start;
    const int rank = order[wave_start]->rank;
    while (wave_end < order.size() && order[wave_end]->rank == rank) ++wave_end;

    for (size_t i = wave_start; i < wave_end; ++i) {
      if (is_dirty(order[i])) order[i]->Prefetch(signals_);
    }

    double wave_external = 0;
    for (size_t i = wave_start; i < wave_end; ++i) {
      Operator* op = order[i];
      if (!is_dirty(op)) continue;
      data::TablePtr input = op->input != nullptr ? op->input->output : nullptr;
      auto result = op->Evaluate(input, signals_);
      if (!result.ok()) {
        return Status(result.status().code(),
                      "dataflow: operator '" + op->type() + "' (id " +
                          std::to_string(op->id) + "): " + result.status().message());
      }
      op->output = result->table;
      op->stamp = clock_;
      for (auto& [name, value] : result->signal_writes) {
        signals_.Set(name, std::move(value), clock_);
        signal_producers_[name] = op;
      }
      ++stats.ops_evaluated;
      stats.rows_processed += result->rows_processed;
      wave_external = std::max(wave_external, result->external_millis);
    }
    stats.external_millis += wave_external;
    wave_start = wave_end;
  }
  return stats;
}

std::vector<const Operator*> Dataflow::CurrentOperators() const {
  std::vector<const Operator*> current;
  for (const auto& op : operators_) {
    if (op->stamp == clock_) current.push_back(op.get());
  }
  return current;
}

}  // namespace dataflow
}  // namespace vegaplus
