#include "dataflow/dataflow.h"

#include <algorithm>

#include "common/logging.h"

namespace vegaplus {
namespace dataflow {

Operator* Dataflow::Add(std::unique_ptr<Operator> op, Operator* input) {
  op->id = static_cast<int>(operators_.size());
  op->input = input;
  ranks_dirty_ = true;
  operators_.push_back(std::move(op));
  return operators_.back().get();
}

void Dataflow::DeclareSignal(const std::string& name, expr::EvalValue initial) {
  signals_.Set(name, std::move(initial), 0);
}

Status Dataflow::AssignRanks() {
  // Dependencies: data input edge, plus an edge from the producer of every
  // signal the operator reads. Iterate to fixpoint (graphs are small; a DAG
  // converges in <= |V| sweeps).
  for (auto& op : operators_) op->rank = 0;
  bool changed = true;
  size_t sweeps = 0;
  while (changed) {
    if (++sweeps > operators_.size() + 2) {
      return Status::InvalidArgument("dataflow: dependency cycle detected");
    }
    changed = false;
    for (auto& op : operators_) {
      int rank = 0;
      if (op->input != nullptr) rank = std::max(rank, op->input->rank + 1);
      for (const std::string& sig : op->signal_deps()) {
        auto it = signal_producers_.find(sig);
        if (it != signal_producers_.end() && it->second != op.get()) {
          rank = std::max(rank, it->second->rank + 1);
        }
      }
      if (rank != op->rank) {
        op->rank = rank;
        changed = true;
      }
    }
  }
  ranks_dirty_ = false;
  return Status::OK();
}

Result<RunStats> Dataflow::Run() {
  std::vector<Operator*> all;
  all.reserve(operators_.size());
  for (auto& op : operators_) all.push_back(op.get());
  return Propagate(all);
}

Result<RunStats> Dataflow::Update(
    const std::vector<std::pair<std::string, expr::EvalValue>>& signal_updates) {
  ++clock_;
  for (const auto& [name, value] : signal_updates) {
    signals_.Set(name, value, clock_);
  }
  // Dirty set: operators reading an updated signal.
  std::vector<Operator*> dirty;
  for (auto& op : operators_) {
    for (const std::string& sig : op->signal_deps()) {
      int64_t s = signals_.StampOf(sig);
      if (s > op->stamp) {
        dirty.push_back(op.get());
        break;
      }
    }
  }
  return Propagate(dirty);
}

Result<RunStats> Dataflow::Propagate(const std::vector<Operator*>& initially_dirty) {
  if (ranks_dirty_) VP_RETURN_IF_ERROR(AssignRanks());
  if (clock_ == 0) ++clock_;  // initial Run() gets stamp 1

  // Order by (rank, id) for deterministic evaluation.
  std::vector<Operator*> order;
  order.reserve(operators_.size());
  for (auto& op : operators_) order.push_back(op.get());
  std::sort(order.begin(), order.end(), [](const Operator* a, const Operator* b) {
    return a->rank != b->rank ? a->rank < b->rank : a->id < b->id;
  });

  std::vector<bool> dirty(operators_.size(), false);
  for (Operator* op : initially_dirty) dirty[static_cast<size_t>(op->id)] = true;

  RunStats stats;
  for (Operator* op : order) {
    // Re-check signal stamps (a producer earlier in this pass may have
    // written a signal this operator reads).
    bool is_dirty = dirty[static_cast<size_t>(op->id)];
    if (!is_dirty && op->input != nullptr && op->input->stamp > op->stamp) {
      is_dirty = true;
    }
    if (!is_dirty) {
      for (const std::string& sig : op->signal_deps()) {
        if (signals_.StampOf(sig) > op->stamp) {
          is_dirty = true;
          break;
        }
      }
    }
    if (!is_dirty) continue;

    data::TablePtr input = op->input != nullptr ? op->input->output : nullptr;
    auto result = op->Evaluate(input, signals_);
    if (!result.ok()) {
      return Status(result.status().code(),
                    "dataflow: operator '" + op->type() + "' (id " +
                        std::to_string(op->id) + "): " + result.status().message());
    }
    op->output = result->table;
    op->stamp = clock_;
    for (auto& [name, value] : result->signal_writes) {
      signals_.Set(name, std::move(value), clock_);
      signal_producers_[name] = op;
    }
    ++stats.ops_evaluated;
    stats.rows_processed += result->rows_processed;
    stats.external_millis += result->external_millis;
  }
  return stats;
}

std::vector<const Operator*> Dataflow::CurrentOperators() const {
  std::vector<const Operator*> current;
  for (const auto& op : operators_) {
    if (op->stamp == clock_) current.push_back(op.get());
  }
  return current;
}

}  // namespace dataflow
}  // namespace vegaplus
