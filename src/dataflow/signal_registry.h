// Signals: the named reactive variables of a Vega dataflow. Interactions
// write signals; operators declare signal dependencies and re-evaluate when
// one of their signals advances (§2 "Vega Parameters & Signals").
#ifndef VEGAPLUS_DATAFLOW_SIGNAL_REGISTRY_H_
#define VEGAPLUS_DATAFLOW_SIGNAL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "expr/evaluator.h"

namespace vegaplus {
namespace dataflow {

/// \brief Stamped signal store; doubles as the expression evaluator's
/// SignalResolver.
class SignalRegistry : public expr::SignalResolver {
 public:
  /// Define or overwrite a signal at logical time `stamp`.
  void Set(const std::string& name, expr::EvalValue value, int64_t stamp);

  bool Has(const std::string& name) const { return values_.count(name) > 0; }

  /// Stamp of the last write to `name` (-1 if undefined).
  int64_t StampOf(const std::string& name) const;

  /// expr::SignalResolver:
  bool Lookup(const std::string& name, expr::EvalValue* out) const override;

  /// Value of `name` (Null if undefined).
  expr::EvalValue Get(const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  struct Entry {
    expr::EvalValue value;
    int64_t stamp = -1;
  };
  std::map<std::string, Entry> values_;
};

}  // namespace dataflow
}  // namespace vegaplus

#endif  // VEGAPLUS_DATAFLOW_SIGNAL_REGISTRY_H_
