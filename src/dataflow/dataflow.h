// Dataflow: the reactive graph. Builds ranks from data edges plus
// signal-producer edges, runs operators in rank order, and re-evaluates only
// the operators downstream of updated signals (partial re-evaluation, §5.4).
#ifndef VEGAPLUS_DATAFLOW_DATAFLOW_H_
#define VEGAPLUS_DATAFLOW_DATAFLOW_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/operator.h"
#include "dataflow/signal_registry.h"

namespace vegaplus {
namespace dataflow {

/// \brief Work accounting of one Run()/Update() pass; the latency model
/// converts these counters into simulated client time.
struct RunStats {
  int ops_evaluated = 0;
  size_t rows_processed = 0;
  /// Simulated latency of external calls made during the run (VDT queries).
  double external_millis = 0;

  void Add(const RunStats& other) {
    ops_evaluated += other.ops_evaluated;
    rows_processed += other.rows_processed;
    external_millis += other.external_millis;
  }
};

/// \brief An executable reactive dataflow graph.
class Dataflow {
 public:
  /// Add an operator wired to `input` (nullptr for roots). The graph owns it.
  Operator* Add(std::unique_ptr<Operator> op, Operator* input);

  /// Declare a signal with its initial value (stamp 0).
  void DeclareSignal(const std::string& name, expr::EvalValue initial);

  SignalRegistry& signals() { return signals_; }
  const SignalRegistry& signals() const { return signals_; }

  const std::vector<std::unique_ptr<Operator>>& operators() const { return operators_; }

  /// Current logical clock (advances on every Run/Update).
  int64_t clock() const { return clock_; }

  /// Evaluate every operator (initial rendering). Returns run counters.
  Result<RunStats> Run();

  /// Apply signal updates, then re-evaluate only affected operators.
  Result<RunStats> Update(
      const std::vector<std::pair<std::string, expr::EvalValue>>& signal_updates);

  /// Operators whose stamp equals the current clock (i.e. evaluated by the
  /// most recent pass) — the per-interaction vector extraction of §5.4.
  std::vector<const Operator*> CurrentOperators() const;

 private:
  /// Assign ranks from data edges + signal-producer edges; called lazily
  /// before a run when the graph changed.
  Status AssignRanks();

  Result<RunStats> Propagate(const std::vector<Operator*>& initially_dirty);

  std::vector<std::unique_ptr<Operator>> operators_;
  /// signal name -> operator that writes it (from prior evaluations or
  /// declared by transforms that output signals).
  std::map<std::string, Operator*> signal_producers_;
  SignalRegistry signals_;
  int64_t clock_ = 0;
  bool ranks_dirty_ = true;

 public:
  /// Register `op` as the producer of signal `name` (extent ops, VDTs that
  /// emit signals). Needed for correct rank ordering; called by spec
  /// compilation.
  void RegisterSignalProducer(const std::string& name, Operator* op) {
    signal_producers_[name] = op;
    ranks_dirty_ = true;
  }
};

}  // namespace dataflow
}  // namespace vegaplus

#endif  // VEGAPLUS_DATAFLOW_DATAFLOW_H_
