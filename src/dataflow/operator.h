// Operator: one node of the reactive dataflow graph. Operators have at most
// one upstream data input (Vega data pipelines are chains that may fan out),
// read signals, and produce an output table and/or signal writes.
#ifndef VEGAPLUS_DATAFLOW_OPERATOR_H_
#define VEGAPLUS_DATAFLOW_OPERATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "expr/evaluator.h"

namespace vegaplus {
namespace dataflow {

/// \brief What one Evaluate() produced.
struct EvalResult {
  /// Output tuples (null for signal-only operators such as extent).
  data::TablePtr table;
  /// Signals this evaluation wrote (e.g. extent -> [min, max]).
  std::vector<std::pair<std::string, expr::EvalValue>> signal_writes;
  /// Rows touched (drives the simulated client-CPU latency).
  size_t rows_processed = 0;
  /// Simulated latency contributed by external calls (VDT query + network).
  double external_millis = 0;
};

/// \brief Base class of all dataflow operators (Vega transforms, data
/// sources, and VegaPlus's VDTs).
class Operator {
 public:
  Operator(std::string type, std::vector<std::string> signal_deps)
      : type_(std::move(type)), signal_deps_(std::move(signal_deps)) {}
  virtual ~Operator() = default;

  /// Operator type name for plan encoding ("filter", "bin", "aggregate",
  /// "vdt", "source", ...).
  const std::string& type() const { return type_; }

  /// Signals this operator reads.
  const std::vector<std::string>& signal_deps() const { return signal_deps_; }

  /// Re-compute from `input` (output of the upstream operator; null for
  /// sources) under the given signal environment.
  virtual Result<EvalResult> Evaluate(const data::TablePtr& input,
                                      const expr::SignalResolver& signals) = 0;

  /// Called by the dataflow before evaluating a wave of same-rank dirty
  /// operators, so operators with external work (VDTs) can *submit* it
  /// asynchronously; the following Evaluate() then awaits the result. All
  /// prefetches of one wave are issued before any Evaluate, which is what
  /// makes independent VDT round trips in one pulse overlap (cost ~max
  /// instead of sum). Must be side-effect-free on the dataflow itself;
  /// errors are deferred to Evaluate(). Default: no-op.
  virtual void Prefetch(const expr::SignalResolver& signals) { (void)signals; }

  // ---- Graph wiring / runtime state (managed by Dataflow) ----
  int id = -1;
  Operator* input = nullptr;        // upstream data dependency (may be null)
  int rank = 0;                     // topological rank
  int64_t stamp = -1;               // logical time of last evaluation
  data::TablePtr output;            // latest output tuples
  /// Output cardinality of the latest evaluation (0 before first run).
  size_t output_rows() const { return output ? output->num_rows() : 0; }
  /// Marks operators that must keep their output materialized on the client
  /// (referenced by scales/marks/other spec components); set by dependency
  /// checking, consumed by the plan enumerator.
  bool client_reserved = false;
  /// Name of the data entry this operator belongs to ("" for internal ops).
  std::string data_entry;

 protected:
  std::string type_;
  std::vector<std::string> signal_deps_;
};

/// \brief Root data source backed by an in-memory table (the client-side
/// case; VDT sources in the rewrite module fetch from the DBMS instead).
class TableSourceOp : public Operator {
 public:
  explicit TableSourceOp(data::TablePtr table)
      : Operator("source", {}), table_(std::move(table)) {}

  Result<EvalResult> Evaluate(const data::TablePtr& input,
                              const expr::SignalResolver& signals) override;

  void set_table(data::TablePtr table) { table_ = std::move(table); }

 private:
  data::TablePtr table_;
};

/// \brief Pass-through operator (internal relay; models Vega's implicit
/// copies between data entries).
class RelayOp : public Operator {
 public:
  RelayOp() : Operator("relay", {}) {}
  Result<EvalResult> Evaluate(const data::TablePtr& input,
                              const expr::SignalResolver& signals) override;
};

}  // namespace dataflow
}  // namespace vegaplus

#endif  // VEGAPLUS_DATAFLOW_OPERATOR_H_
