// ColumnFile: read side of the "VPS1" shard format (see table_shard.h).
//
// Open() maps the file read-only (mmap on POSIX, a heap read elsewhere) and
// validates the header, dictionary pages, and chunk directory up front —
// corrupted or truncated shards fail Open or DecodeChunk with a Status, never
// a crash. Chunk payloads stay untouched in the mapping until DecodeChunk
// pages one in: decode works directly on a string_view of the mapped bytes
// (zero copies before the typed column buffers are built), then chunk-local
// compacted dictionary codes are remapped onto the file's shared dictionary
// page so every chunk of a column shares one DictPtr.
#ifndef VEGAPLUS_STORAGE_COLUMN_FILE_H_
#define VEGAPLUS_STORAGE_COLUMN_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "storage/zone_map.h"

namespace vegaplus {
namespace storage {

class ColumnFile {
 public:
  struct ChunkInfo {
    uint64_t row_begin = 0;
    uint64_t rows = 0;
    uint64_t payload_off = 0;
    uint64_t payload_size = 0;
  };

  /// Map and validate a shard. The returned object is immutable and safe to
  /// share across threads.
  static Result<std::shared_ptr<ColumnFile>> Open(const std::string& path);

  ~ColumnFile();
  ColumnFile(const ColumnFile&) = delete;
  ColumnFile& operator=(const ColumnFile&) = delete;

  const std::string& path() const { return path_; }
  const std::string& kind() const { return kind_; }
  const std::string& meta() const { return meta_; }
  const data::Schema& schema() const { return schema_; }
  uint64_t total_rows() const { return total_rows_; }
  uint64_t chunk_rows() const { return chunk_rows_; }
  size_t num_chunks() const { return chunks_.size(); }
  const ChunkInfo& chunk(size_t i) const { return chunks_[i]; }
  /// Zone of column `col` over chunk `i`.
  const ColumnZone& zone(size_t i, size_t col) const {
    return zones_[i * schema_.num_fields() + col];
  }
  /// Shared dictionary page of column `col`; nullptr when the column was
  /// written flat (or is not a string column).
  const data::DictPtr& dict(size_t col) const { return dicts_[col]; }
  size_t file_bytes() const { return size_; }

  /// Decode chunk `i` into an owning table (columns share the file's
  /// dictionary pages). Pure: safe concurrently from any thread.
  Result<data::TablePtr> DecodeChunk(size_t i) const;

 private:
  ColumnFile() = default;

  Status ParseAndValidate();

  std::string path_;
  // Mapped (or heap-loaded) file image.
  const char* data_ = nullptr;
  size_t size_ = 0;
  void* map_base_ = nullptr;   // non-null when mmap'd
  std::string heap_buffer_;    // fallback owner when not mmap'd

  std::string kind_;
  std::string meta_;
  data::Schema schema_;
  uint64_t total_rows_ = 0;
  uint64_t chunk_rows_ = 0;
  std::vector<data::DictPtr> dicts_;
  std::vector<ChunkInfo> chunks_;
  std::vector<ColumnZone> zones_;  // num_chunks x num_cols, row-major
};

}  // namespace storage
}  // namespace vegaplus

#endif  // VEGAPLUS_STORAGE_COLUMN_FILE_H_
