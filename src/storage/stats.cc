#include "storage/stats.h"

#include <atomic>

namespace vegaplus {
namespace storage {

namespace {
std::atomic<bool> g_pruning_enabled{true};
std::atomic<size_t> g_residency_budget{size_t{256} << 20};
std::atomic<uint64_t> g_chunks_pruned{0};
std::atomic<uint64_t> g_morsels_pruned{0};
std::atomic<uint64_t> g_chunks_paged_in{0};
std::atomic<int64_t> g_resident_bytes{0};
}  // namespace

bool ZoneMapPruningEnabled() {
  return g_pruning_enabled.load(std::memory_order_relaxed);
}
void SetZoneMapPruningEnabled(bool enabled) {
  g_pruning_enabled.store(enabled, std::memory_order_relaxed);
}

size_t DefaultResidencyBudget() {
  return g_residency_budget.load(std::memory_order_relaxed);
}
void SetDefaultResidencyBudget(size_t bytes) {
  g_residency_budget.store(bytes, std::memory_order_relaxed);
}

void AddChunksPruned(uint64_t n) {
  g_chunks_pruned.fetch_add(n, std::memory_order_relaxed);
}
uint64_t ChunksPruned() {
  return g_chunks_pruned.load(std::memory_order_relaxed);
}

void AddMorselsPruned(uint64_t n) {
  g_morsels_pruned.fetch_add(n, std::memory_order_relaxed);
}
uint64_t MorselsPruned() {
  return g_morsels_pruned.load(std::memory_order_relaxed);
}

void AddChunksPagedIn(uint64_t n) {
  g_chunks_paged_in.fetch_add(n, std::memory_order_relaxed);
}
uint64_t ChunksPagedIn() {
  return g_chunks_paged_in.load(std::memory_order_relaxed);
}

void AddResidentBytes(int64_t delta) {
  g_resident_bytes.fetch_add(delta, std::memory_order_relaxed);
}
uint64_t ResidentBytes() {
  const int64_t v = g_resident_bytes.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<uint64_t>(v) : 0;
}

}  // namespace storage
}  // namespace vegaplus
