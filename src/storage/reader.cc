#include "storage/reader.h"

#include <utility>

#include "expr/kernels/kernels.h"
#include "storage/stats.h"

namespace vegaplus {
namespace storage {

namespace {
// Installed page-in fault hook. Held by shared_ptr so a concurrent
// SetPageInFaultHook never frees a hook another thread is mid-invoking.
std::mutex g_fault_hook_mu;
std::shared_ptr<const PageInFaultHook> g_fault_hook;

std::shared_ptr<const PageInFaultHook> CurrentFaultHook() {
  std::lock_guard<std::mutex> lock(g_fault_hook_mu);
  return g_fault_hook;
}
}  // namespace

void SetPageInFaultHook(PageInFaultHook hook) {
  std::lock_guard<std::mutex> lock(g_fault_hook_mu);
  if (hook) {
    g_fault_hook = std::make_shared<const PageInFaultHook>(std::move(hook));
  } else {
    g_fault_hook.reset();
  }
}

Reader::Reader(std::shared_ptr<const ColumnFile> file)
    : file_(std::move(file)), budget_(DefaultResidencyBudget()) {}

Result<std::shared_ptr<Reader>> Reader::Open(const std::string& path) {
  VP_ASSIGN_OR_RETURN(std::shared_ptr<ColumnFile> file, ColumnFile::Open(path));
  return std::shared_ptr<Reader>(new Reader(std::move(file)));
}

Reader::~Reader() {
  std::lock_guard<std::mutex> lock(mu_);
  if (resident_bytes_ > 0) {
    AddResidentBytes(-static_cast<int64_t>(resident_bytes_));
  }
}

void Reader::set_residency_budget(size_t bytes) {
  budget_.store(bytes, std::memory_order_relaxed);
  // Shrink eagerly so tests and benchmarks observe the new bound at once.
  std::lock_guard<std::mutex> lock(mu_);
  const size_t budget = bytes;
  while (budget > 0 && resident_bytes_ > budget && !lru_.empty()) {
    const size_t victim = lru_.back();
    lru_.pop_back();
    auto it = resident_.find(victim);
    resident_bytes_ -= it->second.bytes;
    AddResidentBytes(-static_cast<int64_t>(it->second.bytes));
    resident_.erase(it);
  }
}

size_t Reader::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

Result<data::TablePtr> Reader::Chunk(size_t i) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = resident_.find(i);
    if (it != resident_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.table;
    }
  }

  // Chaos seam: injected page-in faults/stalls fire on the cache-miss path
  // only, like real IO errors would.
  if (std::shared_ptr<const PageInFaultHook> hook = CurrentFaultHook()) {
    VP_RETURN_IF_ERROR((*hook)(file_->path(), i));
  }

  // Decode outside the lock; concurrent first touches may decode twice, the
  // first insertion wins and the loser's copy is dropped.
  VP_ASSIGN_OR_RETURN(data::TablePtr table, file_->DecodeChunk(i));
  AddChunksPagedIn(1);
  const size_t bytes = static_cast<size_t>(file_->chunk(i).payload_size);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = resident_.find(i);
  if (it != resident_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.table;
  }
  lru_.push_front(i);
  resident_.emplace(i, Resident{table, bytes, lru_.begin()});
  resident_bytes_ += bytes;
  AddResidentBytes(static_cast<int64_t>(bytes));
  const size_t budget = budget_.load(std::memory_order_relaxed);
  while (budget > 0 && resident_bytes_ > budget && lru_.size() > 1) {
    const size_t victim = lru_.back();
    lru_.pop_back();
    auto vit = resident_.find(victim);
    resident_bytes_ -= vit->second.bytes;
    AddResidentBytes(-static_cast<int64_t>(vit->second.bytes));
    resident_.erase(vit);
  }
  return table;
}

Result<data::TablePtr> Reader::ReadAll(const common::CancelToken* cancel,
                                       ScanStats* stats) const {
  std::vector<data::TablePtr> chunks;
  chunks.reserve(file_->num_chunks());
  for (size_t i = 0; i < file_->num_chunks(); ++i) {
    // Cancellation checkpoint: abort before paging in / decoding the next
    // chunk, so an expired deadline stops the scan at chunk granularity.
    if (common::Fired(cancel)) return cancel->status();
    VP_ASSIGN_OR_RETURN(data::TablePtr chunk, Chunk(i));
    if (stats != nullptr) {
      ++stats->chunks_scanned;
      stats->rows_scanned += chunk->num_rows();
    }
    chunks.push_back(std::move(chunk));
  }
  return Concat(chunks);
}

bool Reader::ChunkPruned(size_t i, const std::vector<Predicate>& preds,
                         const std::vector<int32_t>& dict_codes) const {
  for (size_t p = 0; p < preds.size(); ++p) {
    const Predicate& pred = preds[p];
    if (pred.col < 0 ||
        static_cast<size_t>(pred.col) >= file_->schema().num_fields()) {
      continue;  // unknown column: cannot prune on it
    }
    const ColumnZone& zone = file_->zone(i, static_cast<size_t>(pred.col));
    bool may_match = true;
    if (!pred.is_str) {
      may_match = zone.MayMatchNumeric(pred.cmp, pred.num_const);
    } else if (file_->dict(static_cast<size_t>(pred.col)) != nullptr) {
      may_match = zone.MayMatchDictCode(pred.cmp, dict_codes[p]);
    } else {
      may_match = zone.MayMatchString(pred.cmp, pred.str_const);
    }
    // The predicates are a conjunction: one impossible conjunct kills the
    // whole chunk.
    if (!may_match) return true;
  }
  return false;
}

Result<data::TablePtr> Reader::MaterializeMatching(
    const std::vector<Predicate>& preds, ScanStats* stats,
    const common::CancelToken* cancel) const {
  const bool prune = ZoneMapPruningEnabled() && !preds.empty();

  // Resolve string constants against the file dictionaries once. An absent
  // constant resolves to -2, mirroring the expression engine (null cells
  // carry -1, so == matches nothing and != matches everything).
  std::vector<int32_t> dict_codes(preds.size(), -2);
  if (prune) {
    for (size_t p = 0; p < preds.size(); ++p) {
      const Predicate& pred = preds[p];
      if (!pred.is_str || pred.col < 0 ||
          static_cast<size_t>(pred.col) >= file_->schema().num_fields()) {
        continue;
      }
      const data::DictPtr& dict = file_->dict(static_cast<size_t>(pred.col));
      if (dict == nullptr) continue;
      const int32_t code = dict->Find(pred.str_const);
      dict_codes[p] = code < 0 ? -2 : code;
    }
  }

  std::vector<data::TablePtr> survivors;
  survivors.reserve(file_->num_chunks());
  uint64_t pruned = 0;
  for (size_t i = 0; i < file_->num_chunks(); ++i) {
    if (prune && ChunkPruned(i, preds, dict_codes)) {
      ++pruned;
      continue;
    }
    // Cancellation checkpoint before each page-in; stats are incremental so
    // an aborted scan reports the chunks/rows it actually touched.
    if (common::Fired(cancel)) {
      if (pruned > 0) AddChunksPruned(pruned);
      if (stats != nullptr) stats->chunks_pruned += pruned;
      return cancel->status();
    }
    VP_ASSIGN_OR_RETURN(data::TablePtr chunk, Chunk(i));
    if (stats != nullptr) {
      ++stats->chunks_scanned;
      stats->rows_scanned += chunk->num_rows();
    }
    if (prune) chunk = FilterChunkRows(std::move(chunk), preds, dict_codes);
    survivors.push_back(std::move(chunk));
  }
  if (pruned > 0) AddChunksPruned(pruned);
  if (stats != nullptr) stats->chunks_pruned += pruned;
  return Concat(survivors);
}

/// Map a zone-map comparison onto a compare kernel op (same operator set).
static kernels::Cmp KernelCmpOf(CmpOp cmp) {
  switch (cmp) {
    case CmpOp::kEq: return kernels::Cmp::kEq;
    case CmpOp::kNeq: return kernels::Cmp::kNeq;
    case CmpOp::kLt: return kernels::Cmp::kLt;
    case CmpOp::kLte: return kernels::Cmp::kLte;
    case CmpOp::kGt: return kernels::Cmp::kGt;
    default: return kernels::Cmp::kGte;
  }
}

data::TablePtr Reader::FilterChunkRows(data::TablePtr chunk,
                                       const std::vector<Predicate>& preds,
                                       const std::vector<int32_t>& dict_codes) const {
  const size_t n = chunk->num_rows();
  if (n == 0) return chunk;

  // Exact row filter over the pushed-down conjunction: AND one compare
  // bitmap per evaluable predicate. Predicates a kernel cannot evaluate
  // exactly (string order compares, unknown columns) are skipped — sound
  // because the scan consumer re-runs the full WHERE over whatever this
  // returns, so over-approximating can only cost rows carried, never
  // correctness. Only active when zone-map pruning is on, preserving the
  // "pruning disabled => identical to ReadAll" contract.
  std::vector<uint8_t> bits(n, 1);
  std::vector<uint8_t> tmp(n);
  bool filtered = false;
  for (size_t p = 0; p < preds.size(); ++p) {
    const Predicate& pred = preds[p];
    if (pred.col < 0 ||
        static_cast<size_t>(pred.col) >= chunk->num_columns()) {
      continue;
    }
    const data::Column& col = chunk->column(static_cast<size_t>(pred.col));
    const uint8_t* valid =
        col.null_count() > 0 ? col.validity_data() : nullptr;
    const kernels::Cmp cmp = KernelCmpOf(pred.cmp);
    if (pred.is_str) {
      if (col.type() != data::DataType::kString ||
          (pred.cmp != CmpOp::kEq && pred.cmp != CmpOp::kNeq)) {
        continue;
      }
      const bool negate = pred.cmp == CmpOp::kNeq;
      if (col.dict_encoded()) {
        kernels::CompareCodeToBits(col.codes_data(), n, negate, dict_codes[p],
                                   tmp.data());
      } else {
        kernels::CompareStrToBits(col.strings_data(), valid, n, negate,
                                  pred.str_const, tmp.data());
      }
    } else {
      switch (col.type()) {
        case data::DataType::kFloat64:
          kernels::CompareNumToBits(col.doubles_data(), valid, n, cmp,
                                    pred.num_const, tmp.data());
          break;
        case data::DataType::kInt64:
        case data::DataType::kTimestamp:
        case data::DataType::kBool:
          kernels::CompareInt64ToBits(col.ints_data(), valid, n, cmp,
                                      pred.num_const, tmp.data());
          break;
        default:
          continue;
      }
    }
    kernels::AndBits(bits.data(), tmp.data(), n);
    filtered = true;
  }
  if (!filtered) return chunk;
  const size_t matches = kernels::CountBits(bits.data(), n);
  if (matches == n) return chunk;
  std::vector<int32_t> sel;
  kernels::BitsToIndices(bits.data(), n, 0, &sel);
  return chunk->Take(sel);
}

void Reader::EvictAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (resident_bytes_ > 0) {
    AddResidentBytes(-static_cast<int64_t>(resident_bytes_));
  }
  resident_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

Result<data::TablePtr> Reader::Concat(
    const std::vector<data::TablePtr>& chunks) const {
  const data::Schema& schema = file_->schema();
  if (chunks.empty()) return data::EmptyTable(schema);
  if (chunks.size() == 1) return chunks[0];

  size_t total = 0;
  for (const data::TablePtr& t : chunks) total += t->num_rows();

  std::vector<data::Column> columns;
  columns.reserve(schema.num_fields());
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    const data::DataType type = schema.field(c).type;
    switch (type) {
      case data::DataType::kFloat64: {
        std::vector<double> values;
        std::vector<uint8_t> validity;
        values.reserve(total);
        validity.reserve(total);
        for (const data::TablePtr& t : chunks) {
          const data::Column& col = t->column(c);
          const double* v = col.doubles_data();
          const uint8_t* ok = col.validity_data();
          values.insert(values.end(), v, v + col.length());
          validity.insert(validity.end(), ok, ok + col.length());
        }
        columns.push_back(
            data::Column::FromDoubles(std::move(values), std::move(validity)));
        break;
      }
      case data::DataType::kString: {
        // All chunks of a dictionary column share the file page (DecodeChunk
        // remaps), so concatenation is a plain code gather.
        bool shared_dict = true;
        data::DictPtr dict = chunks[0]->column(c).dict_encoded()
                                 ? chunks[0]->column(c).dict_shared()
                                 : nullptr;
        if (dict == nullptr) {
          shared_dict = false;
        } else {
          for (const data::TablePtr& t : chunks) {
            const data::Column& col = t->column(c);
            if (!col.dict_encoded() || col.dict_shared() != dict) {
              shared_dict = false;
              break;
            }
          }
        }
        if (shared_dict) {
          std::vector<int32_t> codes;
          codes.reserve(total);
          for (const data::TablePtr& t : chunks) {
            const data::Column& col = t->column(c);
            const int32_t* cd = col.codes_data();
            codes.insert(codes.end(), cd, cd + col.length());
          }
          columns.push_back(data::Column::FromDictionary(dict, std::move(codes)));
        } else {
          std::vector<std::string> values;
          std::vector<uint8_t> validity;
          values.reserve(total);
          validity.reserve(total);
          for (const data::TablePtr& t : chunks) {
            const data::Column& col = t->column(c);
            for (size_t r = 0; r < col.length(); ++r) {
              validity.push_back(col.IsNull(r) ? 0 : 1);
              values.push_back(col.IsNull(r) ? std::string() : col.StringAt(r));
            }
          }
          columns.push_back(data::Column::FromStrings(std::move(values),
                                                      std::move(validity)));
        }
        break;
      }
      case data::DataType::kBool: {
        data::Column col(type);
        col.Reserve(total);
        for (const data::TablePtr& t : chunks) {
          const data::Column& in = t->column(c);
          for (size_t r = 0; r < in.length(); ++r) {
            if (in.IsNull(r)) {
              col.AppendNull();
            } else {
              col.AppendBool(in.BoolAt(r));
            }
          }
        }
        columns.push_back(std::move(col));
        break;
      }
      case data::DataType::kInt64:
      case data::DataType::kTimestamp: {
        data::Column col(type);
        col.Reserve(total);
        for (const data::TablePtr& t : chunks) {
          const data::Column& in = t->column(c);
          for (size_t r = 0; r < in.length(); ++r) {
            if (in.IsNull(r)) {
              col.AppendNull();
            } else {
              col.AppendInt(in.IntAt(r));
            }
          }
        }
        columns.push_back(std::move(col));
        break;
      }
      case data::DataType::kNull: {
        data::Column col(data::DataType::kNull);
        col.Reserve(total);
        for (size_t r = 0; r < total; ++r) col.AppendNull();
        columns.push_back(std::move(col));
        break;
      }
    }
  }
  return data::TablePtr(
      std::make_shared<data::Table>(schema, std::move(columns)));
}

}  // namespace storage
}  // namespace vegaplus
