#include "storage/table_shard.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "data/ipc.h"
#include "storage/format.h"
#include "storage/zone_map.h"

namespace vegaplus {
namespace storage {

namespace {

using format::PutString;
using format::PutU32;
using format::PutU64;
using format::PutU8;

constexpr size_t kPayloadAlign = 8;

size_t AlignUp(size_t v) {
  return (v + kPayloadAlign - 1) & ~(kPayloadAlign - 1);
}

}  // namespace

Status TableShard::Write(const std::string& path, const data::Table& table,
                         const WriteOptions& opts) {
  const size_t chunk_rows =
      opts.chunk_rows > 0 ? opts.chunk_rows : parallel::MorselRows();
  const std::vector<parallel::Range> chunks =
      parallel::SplitRanges(table.num_rows(), chunk_rows);
  const size_t num_cols = table.num_columns();

  // Header: identity, schema, shape, dictionary pages.
  std::string head;
  head.append(kShardMagic, sizeof(kShardMagic));
  PutU32(&head, kShardVersion);
  PutString(&head, opts.kind);
  PutString(&head, opts.meta);
  PutU32(&head, static_cast<uint32_t>(num_cols));
  for (size_t c = 0; c < num_cols; ++c) {
    PutString(&head, table.schema().field(c).name);
    PutU8(&head, static_cast<uint8_t>(table.schema().field(c).type));
  }
  PutU64(&head, table.num_rows());
  PutU64(&head, chunk_rows);
  PutU64(&head, chunks.size());
  for (size_t c = 0; c < num_cols; ++c) {
    const data::Column& col = table.column(c);
    if (col.type() == data::DataType::kString && col.dict_encoded()) {
      PutU8(&head, 1);
      const auto& values = col.dict().values;
      PutU32(&head, static_cast<uint32_t>(values.size()));
      for (const std::string& v : values) PutString(&head, v);
    } else {
      PutU8(&head, 0);
    }
  }

  // Per chunk: encoded payload + zone blobs. Payload offsets depend on the
  // directory size, so serialize everything first, then lay out.
  std::vector<std::string> payloads;
  std::vector<std::string> zone_blobs;
  payloads.reserve(chunks.size());
  zone_blobs.reserve(chunks.size());
  for (const parallel::Range& r : chunks) {
    data::TablePtr slice = table.Slice(r.begin, r.size());
    payloads.push_back(data::SerializeEnvelope(opts.kind, "", *slice));
    std::string zones;
    for (size_t c = 0; c < num_cols; ++c) {
      ComputeZone(slice->column(c)).AppendTo(&zones);
    }
    zone_blobs.push_back(std::move(zones));
  }

  size_t dir_size = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    dir_size += 4 * 8 + zone_blobs[i].size();
  }

  std::string dir;
  dir.reserve(dir_size);
  size_t cursor = head.size() + 8 /* dir_size field */ + dir_size;
  std::vector<size_t> offsets(chunks.size());
  for (size_t i = 0; i < chunks.size(); ++i) {
    cursor = AlignUp(cursor);
    offsets[i] = cursor;
    PutU64(&dir, chunks[i].begin);
    PutU64(&dir, chunks[i].size());
    PutU64(&dir, cursor);
    PutU64(&dir, payloads[i].size());
    dir.append(zone_blobs[i]);
    cursor += payloads[i].size();
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("storage: cannot open " + tmp + " for writing");
    }
    out.write(head.data(), static_cast<std::streamsize>(head.size()));
    std::string dir_size_field;
    PutU64(&dir_size_field, dir_size);
    out.write(dir_size_field.data(), 8);
    out.write(dir.data(), static_cast<std::streamsize>(dir.size()));
    size_t written = head.size() + 8 + dir.size();
    static const char kZeros[kPayloadAlign] = {0};
    for (size_t i = 0; i < chunks.size(); ++i) {
      const size_t pad = offsets[i] - written;
      if (pad > 0) out.write(kZeros, static_cast<std::streamsize>(pad));
      out.write(payloads[i].data(),
                static_cast<std::streamsize>(payloads[i].size()));
      written = offsets[i] + payloads[i].size();
    }
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::IOError("storage: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("storage: cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace vegaplus
