// Little-endian put/get helpers shared by the shard writer, the column-file
// parser, and zone-map (de)serialization. Same wire conventions as the IPC
// codec (data/ipc.cc): u32/u64 memcpy'd little-endian, strings as u32 length
// + bytes. Internal to the storage module.
#ifndef VEGAPLUS_STORAGE_FORMAT_H_
#define VEGAPLUS_STORAGE_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace vegaplus {
namespace storage {
namespace format {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

inline void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

inline bool GetU8(std::string_view in, size_t* pos, uint8_t* v) {
  if (*pos + 1 > in.size()) return false;
  *v = static_cast<uint8_t>(in[*pos]);
  *pos += 1;
  return true;
}

inline bool GetU32(std::string_view in, size_t* pos, uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 4);
  *pos += 4;
  return true;
}

inline bool GetU64(std::string_view in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

inline bool GetI32(std::string_view in, size_t* pos, int32_t* v) {
  uint32_t u;
  if (!GetU32(in, pos, &u)) return false;
  *v = static_cast<int32_t>(u);
  return true;
}

inline bool GetF64(std::string_view in, size_t* pos, double* v) {
  uint64_t bits;
  if (!GetU64(in, pos, &bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

inline bool GetString(std::string_view in, size_t* pos, std::string* s) {
  uint32_t len;
  if (!GetU32(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

}  // namespace format
}  // namespace storage
}  // namespace vegaplus

#endif  // VEGAPLUS_STORAGE_FORMAT_H_
