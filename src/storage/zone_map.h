// Zone maps: per-chunk (or per-morsel) column summaries that let scans skip
// regions a fused predicate provably cannot match.
//
// Soundness contract — MayMatch* may return true spuriously but must NEVER
// return false for a region containing a matching row. "Matching" is defined
// by the EXACT semantics of the expression engine's fused predicate loops
// (expr/batch_eval.cc), which differ from naive comparison in three ways the
// rules below must honor:
//
//   * Numeric loops compare as double. Null rows fail every comparison
//     EXCEPT !=, which they pass unconditionally. Equality is compiled as
//     !(x < c) && !(x > c), so a NaN VALUE passes == against any constant
//     (and fails !=). A NaN CONSTANT is never pruned against (conservative).
//   * Dictionary-string ==/!= compares int32 codes with no validity check:
//     null cells carry code -1, a constant absent from the dictionary
//     resolves to code -2. So == against an absent constant matches nothing
//     and != against it matches every row including nulls.
//   * Flat-string loops are null-checked: nulls fail == and pass !=.
//
// Regions are append-only column storage (data::Column never overwrites
// cells while its Storage lives), so a zone computed once stays valid for
// the lifetime of that storage — the basis for GetMorselZones's cache.
#ifndef VEGAPLUS_STORAGE_ZONE_MAP_H_
#define VEGAPLUS_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/parallel.h"
#include "data/column.h"

namespace vegaplus {
namespace storage {

/// Comparison operators a zone map understands — the subset of
/// expr::BinaryOp that PreparePreds fuses. Values mirror expr::BinaryOp's
/// comparison block so the expr-side mapping is a switch, not arithmetic.
enum class CmpOp : uint8_t { kEq = 0, kNeq = 1, kLt = 2, kLte = 3, kGt = 4, kGte = 5 };

/// Max distinct dictionary codes a zone records before giving up membership
/// tracking (codes_complete = false => never prune on membership).
constexpr size_t kMaxZoneDictCodes = 512;

/// Flat-string min/max are truncated to this many bytes. A truncated min is
/// still a valid lower bound; a truncated max is NOT a valid upper bound, so
/// truncation sets max_unbounded instead.
constexpr size_t kMaxZoneStringBytes = 64;

/// \brief Summary of one column over one chunk/morsel.
struct ColumnZone {
  enum class Kind : uint8_t {
    kNone = 0,        ///< No summary (kNull columns, unknown) — never prunes.
    kNumeric = 1,     ///< kBool/kInt64/kFloat64/kTimestamp viewed as double.
    kDictCodes = 2,   ///< Dictionary-encoded strings: distinct code set.
    kFlatString = 3,  ///< Flat strings: (possibly truncated) min/max.
  };

  Kind kind = Kind::kNone;
  uint64_t null_count = 0;
  /// Distinct-value hint (capped, see ComputeZone); 0 = unknown. Advisory
  /// only — pruning never depends on it.
  uint32_t distinct_hint = 0;

  // kNumeric: min/max over valid, non-NaN cells (as double).
  bool has_finite = false;
  double min = 0.0;
  double max = 0.0;
  bool has_nan = false;  ///< Some valid cell is NaN (passes fused ==).

  // kDictCodes: sorted distinct codes of valid cells (code -1 excluded).
  // When the region exceeds kMaxZoneDictCodes distinct codes,
  // codes_complete is false, codes is empty, and membership never prunes.
  std::vector<int32_t> codes;
  bool codes_complete = false;

  // kFlatString: min/max over valid cells, truncated per
  // kMaxZoneStringBytes. has_values => at least one valid cell.
  bool has_values = false;
  std::string min_str;
  std::string max_str;
  bool max_unbounded = false;

  /// Could any row of the region pass a fused numeric `x <cmp> c`?
  bool MayMatchNumeric(CmpOp cmp, double c) const;

  /// Could any row pass a fused dictionary-code `code <cmp> c_code`?
  /// `c_code` is the constant resolved against the SAME dictionary the
  /// region's codes index (-2 = absent). Only kEq/kNeq prune.
  bool MayMatchDictCode(CmpOp cmp, int32_t c_code) const;

  /// Could any row pass a fused flat-string `s <cmp> c`? Only kEq/kNeq prune.
  bool MayMatchString(CmpOp cmp, const std::string& c) const;

  // On-disk (de)serialization for the shard chunk directory.
  void AppendTo(std::string* out) const;
  static bool Parse(std::string_view in, size_t* pos, ColumnZone* z);
};

/// Compute the zone of `col` (typically a chunk/morsel slice). The zone kind
/// follows the column's physical form so lookups against it use the same
/// value space as the fused loops do.
ColumnZone ComputeZone(const data::Column& col);

/// Per-morsel zones for an in-memory column, cached globally.
///
/// Keyed on (storage identity, slice offset, length, morsel decomposition);
/// sound because column storage is append-only. The storage pointer is held
/// weakly — entries whose storage died are ignored and swept, so a recycled
/// allocation at the same address can never serve stale zones. `ranges`
/// must be parallel::MorselRanges(col.length()) (or any decomposition that
/// is a pure function of length + its first-range size).
std::shared_ptr<const std::vector<ColumnZone>> GetMorselZones(
    const data::Column& col, const std::vector<parallel::Range>& ranges);

/// Test hook: drop every cached morsel zone.
void ClearMorselZoneCache();

}  // namespace storage
}  // namespace vegaplus

#endif  // VEGAPLUS_STORAGE_ZONE_MAP_H_
