// Process-wide storage configuration owners and counters.
//
// Configuration follows the repo convention: free functions own the storage
// for each switch, runtime::EngineConfig snapshots and applies them
// coherently. Counters are global atomics because chunk pruning happens deep
// inside the expression engine and the SQL scan path, far from any session
// object; runtime::Middleware::stats() rebases them against a baseline the
// same way it rebases circuit-breaker counters.
#ifndef VEGAPLUS_STORAGE_STATS_H_
#define VEGAPLUS_STORAGE_STATS_H_

#include <cstddef>
#include <cstdint>

namespace vegaplus {
namespace storage {

/// Zone-map pruning kill switch (default on). When off, every scan decodes
/// and evaluates every chunk/morsel — the differential baseline for proving
/// pruned execution bit-identical.
bool ZoneMapPruningEnabled();
void SetZoneMapPruningEnabled(bool enabled);

/// Default byte budget for a Reader's resident decoded chunks (LRU evicted
/// beyond it). 0 = unbounded. Readers snapshot this at Open(); it can also
/// be overridden per reader.
size_t DefaultResidencyBudget();
void SetDefaultResidencyBudget(size_t bytes);

// ---- Counters (monotone except the resident-bytes gauge) ----

/// On-disk chunks skipped by zone maps before decode.
void AddChunksPruned(uint64_t n);
uint64_t ChunksPruned();

/// In-memory morsels skipped by zone maps inside RunFilterMorselParallel.
void AddMorselsPruned(uint64_t n);
uint64_t MorselsPruned();

/// On-disk chunks decoded into memory (cache misses).
void AddChunksPagedIn(uint64_t n);
uint64_t ChunksPagedIn();

/// Gauge: bytes of decoded chunks currently resident across all readers.
void AddResidentBytes(int64_t delta);
uint64_t ResidentBytes();

}  // namespace storage
}  // namespace vegaplus

#endif  // VEGAPLUS_STORAGE_STATS_H_
