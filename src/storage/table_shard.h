// TableShard: writer for the on-disk chunked columnar shard format ("VPS1").
//
// A shard extends the binary IPC encoding into an out-of-core layout:
//
//   +--------------------------------------------------------------+
//   | magic "VPS1" | version u32                                   |
//   | kind string | meta string                                    |
//   | num_cols u32 | per column: name string, type u8              |
//   | total_rows u64 | chunk_rows u64 | num_chunks u64             |
//   | per column dictionary page: has_dict u8 [n u32, n x string]  |
//   +--------------------------------------------------------------+
//   | dir_size u64                                                 |
//   | per chunk: row_begin u64, rows u64,                          |
//   |            payload_off u64, payload_size u64,                |
//   |            per column ColumnZone blob                        |
//   +--------------------------------------------------------------+
//   | chunk payloads, each 8-aligned:                              |
//   |   data::SerializeEnvelope(kind, "", chunk_table)             |
//   +--------------------------------------------------------------+
//
// Chunks are row slices of `chunk_rows` (default: parallel::MorselRows(), so
// chunk boundaries line up with morsel boundaries). Dictionary pages store
// the column's FULL dictionary; each chunk payload carries the IPC codec's
// per-chunk compacted dictionary, and the reader remaps chunk codes back to
// the shared page so every materialized chunk shares one DictPtr and zone
// code membership is meaningful across the whole file.
//
// Writes go to `<path>.tmp` and rename into place, so readers never observe
// a torn shard.
#ifndef VEGAPLUS_STORAGE_TABLE_SHARD_H_
#define VEGAPLUS_STORAGE_TABLE_SHARD_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace vegaplus {
namespace storage {

/// Shard file magic + version (bump on incompatible layout changes).
inline constexpr char kShardMagic[4] = {'V', 'P', 'S', '1'};
inline constexpr uint32_t kShardVersion = 1;

struct WriteOptions {
  /// Payload kind tag stamped on the header and every chunk envelope
  /// ("TABL" for plain tables, "TILE" for spilled tile-store levels).
  std::string kind = "TABL";
  /// Opaque producer metadata (typically JSON), not interpreted here.
  std::string meta;
  /// Rows per chunk; 0 = parallel::MorselRows().
  size_t chunk_rows = 0;
};

class TableShard {
 public:
  /// Write `table` as a shard at `path` (replacing any existing file).
  static Status Write(const std::string& path, const data::Table& table,
                      const WriteOptions& opts = WriteOptions());
};

}  // namespace storage
}  // namespace vegaplus

#endif  // VEGAPLUS_STORAGE_TABLE_SHARD_H_
