// Reader: on-demand materialization over a ColumnFile with LRU chunk
// residency and zone-map predicate pushdown.
//
// Chunks page in on first touch (DecodeChunk) and stay resident in an LRU
// cache bounded by a byte budget (payload size approximates decoded size;
// the budget is a target, not a hard cap — the chunk being served is always
// kept). MaterializeMatching prunes chunks whose zones prove no row can pass
// the conjunction of fused predicates, then concatenates the survivors in
// chunk order — so downstream execution sees the same rows, in the same
// order, as a full scan filtered by the same predicates, which keeps pruned
// and unpruned execution bit-identical.
//
// Thread safety: all methods are safe concurrently. Decoding happens outside
// the cache lock; two threads racing on the same cold chunk may both decode,
// one insertion wins.
#ifndef VEGAPLUS_STORAGE_READER_H_
#define VEGAPLUS_STORAGE_READER_H_

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "data/table.h"
#include "storage/column_file.h"
#include "storage/zone_map.h"

namespace vegaplus {
namespace storage {

/// One fused conjunct, in shard column space. String constants are carried
/// as strings and resolved against the file's dictionary pages here, so the
/// same predicate list works across shards with different dictionaries.
struct Predicate {
  int32_t col = -1;  ///< Index into the shard schema.
  CmpOp cmp = CmpOp::kEq;
  bool is_str = false;
  double num_const = 0.0;   ///< !is_str
  std::string str_const;    ///< is_str
};

/// Per-call pruning accounting (process-global counters are also bumped).
/// Updated incrementally, chunk by chunk, so a scan aborted by a fired
/// CancelToken leaves an honest partial count behind (rows_scanned strictly
/// below the full-scan total is the observable proof of a mid-scan abort).
struct ScanStats {
  uint64_t chunks_scanned = 0;
  uint64_t chunks_pruned = 0;
  uint64_t rows_scanned = 0;  ///< Rows of chunks paged in (pre row-filter).
};

/// Chaos seam for the out-of-core path (storage cannot depend on runtime, so
/// runtime::FaultInjector bridges in through this free function — the same
/// storage-owner pattern as stats.h). The hook runs on every chunk page-in
/// (cache miss, before decode), keyed by shard path + chunk index; a non-OK
/// return surfaces as the page-in's status (the retry/degraded machinery
/// upstream sees an IO-shaped failure, never a crash). The hook itself is
/// responsible for any injected stall. Pass nullptr to clear.
using PageInFaultHook =
    std::function<Status(const std::string& path, size_t chunk_index)>;
void SetPageInFaultHook(PageInFaultHook hook);

class Reader {
 public:
  /// Open a shard for reading. The residency budget is snapshotted from
  /// DefaultResidencyBudget() and adjustable per reader afterwards.
  static Result<std::shared_ptr<Reader>> Open(const std::string& path);

  ~Reader();
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  const ColumnFile& file() const { return *file_; }
  const data::Schema& schema() const { return file_->schema(); }
  uint64_t total_rows() const { return file_->total_rows(); }
  size_t num_chunks() const { return file_->num_chunks(); }

  /// Byte budget for resident decoded chunks; 0 = unbounded.
  void set_residency_budget(size_t bytes);
  size_t residency_budget() const { return budget_.load(std::memory_order_relaxed); }
  /// Bytes of decoded chunks currently resident in this reader.
  size_t resident_bytes() const;

  /// Chunk `i`, decoding and caching it on first touch.
  Result<data::TablePtr> Chunk(size_t i) const;

  /// The whole shard as one table (chunk concatenation; built fresh per
  /// call so out-of-core behavior is honest — only chunks are cached).
  /// `cancel` is polled before each chunk page-in: a fired token aborts the
  /// scan with its status, leaving partial counts in `stats`.
  Result<data::TablePtr> ReadAll(const common::CancelToken* cancel = nullptr,
                                 ScanStats* stats = nullptr) const;

  /// The concatenation of chunks whose zones admit the conjunction of
  /// `preds`, with each surviving chunk row-filtered through the compare
  /// kernels (exact for numeric and string ==/!= conjuncts; anything a
  /// kernel cannot evaluate exactly is skipped). Honors the
  /// ZoneMapPruningEnabled() kill switch (disabled => identical to
  /// ReadAll). Sound, not exact: the result may still carry non-matching
  /// rows — callers run the real filter downstream.
  /// `cancel` is polled before each chunk page-in, as in ReadAll.
  Result<data::TablePtr> MaterializeMatching(
      const std::vector<Predicate>& preds, ScanStats* stats = nullptr,
      const common::CancelToken* cancel = nullptr) const;

  /// Drop every resident chunk (tests and benchmarks).
  void EvictAll() const;

 private:
  explicit Reader(std::shared_ptr<const ColumnFile> file);

  /// True when `preds` provably reject every row of chunk `i`.
  bool ChunkPruned(size_t i, const std::vector<Predicate>& preds,
                   const std::vector<int32_t>& dict_codes) const;

  /// Exact post-prune row filter of one surviving chunk: AND one compare-
  /// kernel bitmap per evaluable predicate and Take the matching rows
  /// (returns the chunk unchanged when every row matches or nothing is
  /// evaluable). Only called when pruning is active.
  data::TablePtr FilterChunkRows(data::TablePtr chunk,
                                 const std::vector<Predicate>& preds,
                                 const std::vector<int32_t>& dict_codes) const;

  Result<data::TablePtr> Concat(const std::vector<data::TablePtr>& chunks) const;

  std::shared_ptr<const ColumnFile> file_;
  std::atomic<size_t> budget_;

  mutable std::mutex mu_;
  struct Resident {
    data::TablePtr table;
    size_t bytes = 0;
    std::list<size_t>::iterator lru_it;
  };
  mutable std::list<size_t> lru_;  // front = most recently used
  mutable std::unordered_map<size_t, Resident> resident_;
  mutable size_t resident_bytes_ = 0;
};

}  // namespace storage
}  // namespace vegaplus

#endif  // VEGAPLUS_STORAGE_READER_H_
