// Reader: on-demand materialization over a ColumnFile with LRU chunk
// residency and zone-map predicate pushdown.
//
// Chunks page in on first touch (DecodeChunk) and stay resident in an LRU
// cache bounded by a byte budget (payload size approximates decoded size;
// the budget is a target, not a hard cap — the chunk being served is always
// kept). MaterializeMatching prunes chunks whose zones prove no row can pass
// the conjunction of fused predicates, then concatenates the survivors in
// chunk order — so downstream execution sees the same rows, in the same
// order, as a full scan filtered by the same predicates, which keeps pruned
// and unpruned execution bit-identical.
//
// Thread safety: all methods are safe concurrently. Decoding happens outside
// the cache lock; two threads racing on the same cold chunk may both decode,
// one insertion wins.
#ifndef VEGAPLUS_STORAGE_READER_H_
#define VEGAPLUS_STORAGE_READER_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "data/table.h"
#include "storage/column_file.h"
#include "storage/zone_map.h"

namespace vegaplus {
namespace storage {

/// One fused conjunct, in shard column space. String constants are carried
/// as strings and resolved against the file's dictionary pages here, so the
/// same predicate list works across shards with different dictionaries.
struct Predicate {
  int32_t col = -1;  ///< Index into the shard schema.
  CmpOp cmp = CmpOp::kEq;
  bool is_str = false;
  double num_const = 0.0;   ///< !is_str
  std::string str_const;    ///< is_str
};

/// Per-call pruning accounting (process-global counters are also bumped).
struct ScanStats {
  uint64_t chunks_scanned = 0;
  uint64_t chunks_pruned = 0;
};

class Reader {
 public:
  /// Open a shard for reading. The residency budget is snapshotted from
  /// DefaultResidencyBudget() and adjustable per reader afterwards.
  static Result<std::shared_ptr<Reader>> Open(const std::string& path);

  ~Reader();
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  const ColumnFile& file() const { return *file_; }
  const data::Schema& schema() const { return file_->schema(); }
  uint64_t total_rows() const { return file_->total_rows(); }
  size_t num_chunks() const { return file_->num_chunks(); }

  /// Byte budget for resident decoded chunks; 0 = unbounded.
  void set_residency_budget(size_t bytes);
  size_t residency_budget() const { return budget_.load(std::memory_order_relaxed); }
  /// Bytes of decoded chunks currently resident in this reader.
  size_t resident_bytes() const;

  /// Chunk `i`, decoding and caching it on first touch.
  Result<data::TablePtr> Chunk(size_t i) const;

  /// The whole shard as one table (chunk concatenation; built fresh per
  /// call so out-of-core behavior is honest — only chunks are cached).
  Result<data::TablePtr> ReadAll() const;

  /// The concatenation of chunks whose zones admit the conjunction of
  /// `preds`, with each surviving chunk row-filtered through the compare
  /// kernels (exact for numeric and string ==/!= conjuncts; anything a
  /// kernel cannot evaluate exactly is skipped). Honors the
  /// ZoneMapPruningEnabled() kill switch (disabled => identical to
  /// ReadAll). Sound, not exact: the result may still carry non-matching
  /// rows — callers run the real filter downstream.
  Result<data::TablePtr> MaterializeMatching(const std::vector<Predicate>& preds,
                                             ScanStats* stats = nullptr) const;

  /// Drop every resident chunk (tests and benchmarks).
  void EvictAll() const;

 private:
  explicit Reader(std::shared_ptr<const ColumnFile> file);

  /// True when `preds` provably reject every row of chunk `i`.
  bool ChunkPruned(size_t i, const std::vector<Predicate>& preds,
                   const std::vector<int32_t>& dict_codes) const;

  /// Exact post-prune row filter of one surviving chunk: AND one compare-
  /// kernel bitmap per evaluable predicate and Take the matching rows
  /// (returns the chunk unchanged when every row matches or nothing is
  /// evaluable). Only called when pruning is active.
  data::TablePtr FilterChunkRows(data::TablePtr chunk,
                                 const std::vector<Predicate>& preds,
                                 const std::vector<int32_t>& dict_codes) const;

  Result<data::TablePtr> Concat(const std::vector<data::TablePtr>& chunks) const;

  std::shared_ptr<const ColumnFile> file_;
  std::atomic<size_t> budget_;

  mutable std::mutex mu_;
  struct Resident {
    data::TablePtr table;
    size_t bytes = 0;
    std::list<size_t>::iterator lru_it;
  };
  mutable std::list<size_t> lru_;  // front = most recently used
  mutable std::unordered_map<size_t, Resident> resident_;
  mutable size_t resident_bytes_ = 0;
};

}  // namespace storage
}  // namespace vegaplus

#endif  // VEGAPLUS_STORAGE_READER_H_
