#include "storage/column_file.h"

#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>

#include "data/ipc.h"
#include "storage/format.h"
#include "storage/table_shard.h"

#if defined(__unix__) || defined(__APPLE__)
#define VEGAPLUS_STORAGE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace vegaplus {
namespace storage {

namespace {

using format::GetString;
using format::GetU32;
using format::GetU64;
using format::GetU8;

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IOError("storage: " + path + ": " + what);
}

// Upper bounds that make header parsing robust against garbage sizes: a
// directory entry is >= 45 bytes and a dictionary entry >= 4, so any real
// count is bounded by the file size anyway; these just fail fast.
constexpr uint64_t kMaxCols = 1u << 16;
constexpr uint64_t kMaxChunks = 1u << 28;
constexpr uint64_t kMaxDictEntries = 1u << 28;

}  // namespace

Result<std::shared_ptr<ColumnFile>> ColumnFile::Open(const std::string& path) {
  std::shared_ptr<ColumnFile> file(new ColumnFile());
  file->path_ = path;

#if VEGAPLUS_STORAGE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("storage: cannot open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("storage: cannot stat " + path);
  }
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ > 0) {
    void* base = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      return Status::IOError("storage: mmap failed for " + path);
    }
    file->map_base_ = base;
    file->data_ = static_cast<const char*>(base);
  }
  ::close(fd);
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("storage: cannot open " + path);
  }
  file->heap_buffer_.assign(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::IOError("storage: cannot read " + path);
  }
  file->data_ = file->heap_buffer_.data();
  file->size_ = file->heap_buffer_.size();
#endif

  VP_RETURN_IF_ERROR(file->ParseAndValidate());
  return file;
}

ColumnFile::~ColumnFile() {
#if VEGAPLUS_STORAGE_HAVE_MMAP
  if (map_base_ != nullptr) {
    ::munmap(map_base_, size_);
  }
#endif
}

Status ColumnFile::ParseAndValidate() {
  const std::string_view buf(data_, size_);
  if (buf.size() < sizeof(kShardMagic) + 4 ||
      std::memcmp(buf.data(), kShardMagic, sizeof(kShardMagic)) != 0) {
    return Corrupt(path_, "bad shard magic");
  }
  size_t pos = sizeof(kShardMagic);
  uint32_t version;
  if (!GetU32(buf, &pos, &version)) return Corrupt(path_, "truncated header");
  if (version != kShardVersion) {
    return Corrupt(path_, "unsupported shard version " + std::to_string(version));
  }
  if (!GetString(buf, &pos, &kind_) || !GetString(buf, &pos, &meta_)) {
    return Corrupt(path_, "truncated header");
  }
  uint32_t num_cols;
  if (!GetU32(buf, &pos, &num_cols)) return Corrupt(path_, "truncated header");
  if (num_cols > kMaxCols) return Corrupt(path_, "implausible column count");
  std::vector<data::Field> fields;
  fields.reserve(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    data::Field f;
    uint8_t type_byte;
    if (!GetString(buf, &pos, &f.name) || !GetU8(buf, &pos, &type_byte)) {
      return Corrupt(path_, "truncated schema");
    }
    if (type_byte > static_cast<uint8_t>(data::DataType::kTimestamp)) {
      return Corrupt(path_, "unknown column type");
    }
    f.type = static_cast<data::DataType>(type_byte);
    fields.push_back(std::move(f));
  }
  schema_ = data::Schema(std::move(fields));

  uint64_t num_chunks;
  if (!GetU64(buf, &pos, &total_rows_) || !GetU64(buf, &pos, &chunk_rows_) ||
      !GetU64(buf, &pos, &num_chunks)) {
    return Corrupt(path_, "truncated header");
  }
  if (chunk_rows_ == 0 && num_chunks > 0) {
    return Corrupt(path_, "zero chunk_rows with chunks present");
  }
  if (num_chunks > kMaxChunks) return Corrupt(path_, "implausible chunk count");

  dicts_.assign(num_cols, nullptr);
  for (uint32_t c = 0; c < num_cols; ++c) {
    uint8_t has_dict;
    if (!GetU8(buf, &pos, &has_dict)) return Corrupt(path_, "truncated dict page");
    if (!has_dict) continue;
    uint32_t entries;
    if (!GetU32(buf, &pos, &entries)) return Corrupt(path_, "truncated dict page");
    if (entries > kMaxDictEntries) {
      return Corrupt(path_, "implausible dictionary size");
    }
    auto dict = std::make_shared<data::StringDictionary>();
    dict->values.reserve(entries);
    for (uint32_t i = 0; i < entries; ++i) {
      std::string v;
      if (!GetString(buf, &pos, &v)) return Corrupt(path_, "truncated dict page");
      dict->Intern(std::move(v));
    }
    if (dict->values.size() != entries) {
      return Corrupt(path_, "duplicate entries in dictionary page");
    }
    dicts_[c] = std::move(dict);
  }

  uint64_t dir_size;
  if (!GetU64(buf, &pos, &dir_size)) return Corrupt(path_, "truncated directory");
  if (dir_size > buf.size() - pos) return Corrupt(path_, "directory overruns file");
  const size_t dir_end = pos + dir_size;

  chunks_.reserve(num_chunks);
  zones_.reserve(num_chunks * num_cols);
  uint64_t rows_seen = 0;
  for (uint64_t i = 0; i < num_chunks; ++i) {
    ChunkInfo ci;
    if (pos + 4 * 8 > dir_end ||
        !GetU64(buf, &pos, &ci.row_begin) || !GetU64(buf, &pos, &ci.rows) ||
        !GetU64(buf, &pos, &ci.payload_off) ||
        !GetU64(buf, &pos, &ci.payload_size)) {
      return Corrupt(path_, "truncated chunk directory");
    }
    if (ci.row_begin != rows_seen) {
      return Corrupt(path_, "non-contiguous chunk rows");
    }
    rows_seen += ci.rows;
    if (ci.payload_off > buf.size() ||
        ci.payload_size > buf.size() - ci.payload_off ||
        ci.payload_off < dir_end) {
      return Corrupt(path_, "chunk payload overruns file");
    }
    for (uint32_t c = 0; c < num_cols; ++c) {
      ColumnZone z;
      if (!ColumnZone::Parse(buf, &pos, &z) || pos > dir_end) {
        return Corrupt(path_, "corrupt zone map");
      }
      zones_.push_back(std::move(z));
    }
    chunks_.push_back(ci);
  }
  if (pos != dir_end) return Corrupt(path_, "directory size mismatch");
  if (rows_seen != total_rows_) {
    return Corrupt(path_, "chunk rows do not sum to total_rows");
  }
  return Status::OK();
}

Result<data::TablePtr> ColumnFile::DecodeChunk(size_t i) const {
  if (i >= chunks_.size()) {
    return Status::OutOfRange("storage: chunk index out of range");
  }
  const ChunkInfo& ci = chunks_[i];
  const std::string_view payload(data_ + ci.payload_off, ci.payload_size);
  auto env = data::DeserializeEnvelope(payload);
  if (!env.ok()) {
    return Corrupt(path_, "chunk " + std::to_string(i) +
                              " payload: " + env.status().message());
  }
  data::TablePtr chunk = env->table;
  if (chunk->num_rows() != ci.rows || !(chunk->schema() == schema_)) {
    return Corrupt(path_, "chunk " + std::to_string(i) +
                              " shape disagrees with directory");
  }

  // Remap chunk-local compacted dictionaries onto the shared file pages so
  // all chunks of a column compare codes in the same space.
  bool needs_rebuild = false;
  std::vector<data::Column> columns;
  columns.reserve(chunk->num_columns());
  for (size_t c = 0; c < chunk->num_columns(); ++c) {
    const data::Column& col = chunk->column(c);
    const data::DictPtr& file_dict = dicts_[c];
    if (file_dict == nullptr || col.type() != data::DataType::kString) {
      columns.push_back(col);
      continue;
    }
    std::vector<int32_t> codes(col.length());
    if (col.dict_encoded()) {
      // Translate via a per-entry map: chunk dictionaries are small
      // (compacted to referenced entries).
      const auto& chunk_values = col.dict().values;
      std::vector<int32_t> remap(chunk_values.size());
      for (size_t k = 0; k < chunk_values.size(); ++k) {
        remap[k] = file_dict->Find(chunk_values[k]);
        if (remap[k] < 0) {
          return Corrupt(path_, "chunk dictionary value missing from page");
        }
      }
      const int32_t* in_codes = col.codes_data();
      for (size_t r = 0; r < col.length(); ++r) {
        const int32_t code = in_codes[r];
        if (code < 0) {
          codes[r] = -1;
        } else if (static_cast<size_t>(code) < remap.size()) {
          codes[r] = remap[code];
        } else {
          return Corrupt(path_, "chunk code out of dictionary range");
        }
      }
    } else {
      // Flat chunk of a dictionary column (defensive; the writer always
      // serializes dictionary columns with the dict tag).
      for (size_t r = 0; r < col.length(); ++r) {
        if (col.IsNull(r)) {
          codes[r] = -1;
          continue;
        }
        codes[r] = file_dict->Find(col.StringAt(r));
        if (codes[r] < 0) {
          return Corrupt(path_, "chunk string missing from dictionary page");
        }
      }
    }
    columns.push_back(data::Column::FromDictionary(file_dict, std::move(codes)));
    needs_rebuild = true;
  }
  if (!needs_rebuild) return chunk;
  return data::TablePtr(
      std::make_shared<data::Table>(schema_, std::move(columns)));
}

}  // namespace storage
}  // namespace vegaplus
