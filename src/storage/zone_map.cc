#include "storage/zone_map.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "storage/format.h"

namespace vegaplus {
namespace storage {

namespace {

using format::GetF64;
using format::GetI32;
using format::GetString;
using format::GetU32;
using format::GetU64;
using format::GetU8;
using format::PutF64;
using format::PutI32;
using format::PutString;
using format::PutU32;
using format::PutU64;
using format::PutU8;

ColumnZone NumericZone(const data::Column& col) {
  ColumnZone z;
  z.kind = ColumnZone::Kind::kNumeric;
  z.null_count = col.null_count();
  const size_t n = col.length();
  const uint8_t* valid = col.validity_data();
  std::set<double> distinct;
  bool hint_complete = true;
  auto observe = [&](double v) {
    if (std::isnan(v)) {
      z.has_nan = true;
      return;
    }
    if (!z.has_finite) {
      z.has_finite = true;
      z.min = z.max = v;
    } else {
      if (v < z.min) z.min = v;
      if (v > z.max) z.max = v;
    }
    if (hint_complete) {
      distinct.insert(v);
      if (distinct.size() > kMaxZoneDictCodes) {
        hint_complete = false;
        distinct.clear();
      }
    }
  };
  if (col.type() == data::DataType::kFloat64) {
    const double* vals = col.doubles_data();
    for (size_t i = 0; i < n; ++i) {
      if (valid[i]) observe(vals[i]);
    }
  } else {  // kBool / kInt64 / kTimestamp: the fused loops compare as double.
    const int64_t* vals = col.ints_data();
    for (size_t i = 0; i < n; ++i) {
      if (valid[i]) observe(static_cast<double>(vals[i]));
    }
  }
  z.distinct_hint = hint_complete ? static_cast<uint32_t>(distinct.size()) : 0;
  return z;
}

ColumnZone DictZone(const data::Column& col) {
  ColumnZone z;
  z.kind = ColumnZone::Kind::kDictCodes;
  z.null_count = col.null_count();
  const size_t n = col.length();
  const int32_t* codes = col.codes_data();
  std::set<int32_t> distinct;
  z.codes_complete = true;
  for (size_t i = 0; i < n; ++i) {
    if (codes[i] < 0) continue;  // null
    distinct.insert(codes[i]);
    if (distinct.size() > kMaxZoneDictCodes) {
      z.codes_complete = false;
      distinct.clear();
      break;
    }
  }
  if (z.codes_complete) {
    z.codes.assign(distinct.begin(), distinct.end());
    z.distinct_hint = static_cast<uint32_t>(z.codes.size());
  }
  return z;
}

ColumnZone FlatStringZone(const data::Column& col) {
  ColumnZone z;
  z.kind = ColumnZone::Kind::kFlatString;
  z.null_count = col.null_count();
  const size_t n = col.length();
  const uint8_t* valid = col.validity_data();
  const std::string* vals = col.strings_data();
  std::set<std::string_view> distinct;
  bool hint_complete = true;
  for (size_t i = 0; i < n; ++i) {
    if (!valid[i]) continue;
    const std::string& s = vals[i];
    if (!z.has_values) {
      z.has_values = true;
      z.min_str = s;
      z.max_str = s;
    } else {
      if (s < z.min_str) z.min_str = s;
      if (s > z.max_str) z.max_str = s;
    }
    if (hint_complete) {
      distinct.insert(std::string_view(s));
      if (distinct.size() > kMaxZoneDictCodes) {
        hint_complete = false;
        distinct.clear();
      }
    }
  }
  z.distinct_hint = hint_complete ? static_cast<uint32_t>(distinct.size()) : 0;
  // A truncated min is still a valid lower bound. A truncated max is not a
  // valid upper bound, so record "unbounded above" instead.
  if (z.min_str.size() > kMaxZoneStringBytes) z.min_str.resize(kMaxZoneStringBytes);
  if (z.max_str.size() > kMaxZoneStringBytes) {
    z.max_str.clear();
    z.max_unbounded = true;
  }
  return z;
}

}  // namespace

ColumnZone ComputeZone(const data::Column& col) {
  switch (col.type()) {
    case data::DataType::kBool:
    case data::DataType::kInt64:
    case data::DataType::kFloat64:
    case data::DataType::kTimestamp:
      return NumericZone(col);
    case data::DataType::kString:
      return col.dict_encoded() ? DictZone(col) : FlatStringZone(col);
    case data::DataType::kNull:
      break;
  }
  ColumnZone z;
  z.kind = ColumnZone::Kind::kNone;
  z.null_count = col.null_count();
  return z;
}

bool ColumnZone::MayMatchNumeric(CmpOp cmp, double c) const {
  if (kind != Kind::kNumeric) return true;
  // A NaN constant: fused == is !(x<NaN) && !(x>NaN), which every valid row
  // passes. Never prune.
  if (std::isnan(c)) return true;
  switch (cmp) {
    case CmpOp::kLt:
      return has_finite && min < c;
    case CmpOp::kLte:
      return has_finite && min <= c;
    case CmpOp::kGt:
      return has_finite && max > c;
    case CmpOp::kGte:
      return has_finite && max >= c;
    case CmpOp::kEq:
      // NaN values pass fused == against any constant.
      return has_nan || (has_finite && min <= c && c <= max);
    case CmpOp::kNeq:
      // Nulls pass != unconditionally; NaN values fail it.
      return null_count > 0 || (has_finite && (min < c || max > c));
  }
  return true;
}

bool ColumnZone::MayMatchDictCode(CmpOp cmp, int32_t c_code) const {
  if (kind != Kind::kDictCodes) return true;
  if (!codes_complete) return true;
  switch (cmp) {
    case CmpOp::kEq:
      // Nulls (code -1) and absent constants (code -2) never collide with a
      // recorded code (all >= 0), so membership is exact.
      return std::binary_search(codes.begin(), codes.end(), c_code);
    case CmpOp::kNeq:
      // The fused loop pushes every row whose code differs — including
      // nulls. Prunable only when every row carries exactly c_code.
      if (null_count > 0) return true;
      if (codes.size() != 1) return !codes.empty();
      return codes[0] != c_code;
    default:
      return true;  // Ordered string comparisons are never fused.
  }
}

bool ColumnZone::MayMatchString(CmpOp cmp, const std::string& c) const {
  if (kind != Kind::kFlatString) return true;
  switch (cmp) {
    case CmpOp::kEq:
      // Nulls fail flat ==; only the valid-value range matters.
      return has_values && min_str <= c && (max_unbounded || c <= max_str);
    case CmpOp::kNeq:
      // Nulls pass flat !=. Prunable only when every valid cell equals c
      // exactly and there are no nulls.
      if (null_count > 0) return true;
      if (!has_values) return false;  // zero rows: nothing can match
      if (max_unbounded) return true;
      return min_str != max_str || min_str != c;
    default:
      return true;
  }
}

void ColumnZone::AppendTo(std::string* out) const {
  PutU8(out, static_cast<uint8_t>(kind));
  PutU64(out, null_count);
  PutU32(out, distinct_hint);
  switch (kind) {
    case Kind::kNumeric: {
      uint8_t flags = 0;
      if (has_finite) flags |= 1;
      if (has_nan) flags |= 2;
      PutU8(out, flags);
      PutF64(out, min);
      PutF64(out, max);
      break;
    }
    case Kind::kDictCodes: {
      PutU8(out, codes_complete ? 1 : 0);
      PutU32(out, static_cast<uint32_t>(codes.size()));
      for (int32_t code : codes) PutI32(out, code);
      break;
    }
    case Kind::kFlatString: {
      uint8_t flags = 0;
      if (has_values) flags |= 1;
      if (max_unbounded) flags |= 2;
      PutU8(out, flags);
      PutString(out, min_str);
      PutString(out, max_str);
      break;
    }
    case Kind::kNone:
      break;
  }
}

bool ColumnZone::Parse(std::string_view in, size_t* pos, ColumnZone* z) {
  uint8_t kind_byte;
  if (!GetU8(in, pos, &kind_byte)) return false;
  if (kind_byte > static_cast<uint8_t>(Kind::kFlatString)) return false;
  z->kind = static_cast<Kind>(kind_byte);
  if (!GetU64(in, pos, &z->null_count)) return false;
  if (!GetU32(in, pos, &z->distinct_hint)) return false;
  switch (z->kind) {
    case Kind::kNumeric: {
      uint8_t flags;
      if (!GetU8(in, pos, &flags)) return false;
      z->has_finite = (flags & 1) != 0;
      z->has_nan = (flags & 2) != 0;
      if (!GetF64(in, pos, &z->min)) return false;
      if (!GetF64(in, pos, &z->max)) return false;
      break;
    }
    case Kind::kDictCodes: {
      uint8_t complete;
      if (!GetU8(in, pos, &complete)) return false;
      z->codes_complete = complete != 0;
      uint32_t n;
      if (!GetU32(in, pos, &n)) return false;
      if (n > in.size() - *pos) return false;  // cheap bound before reserve
      z->codes.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!GetI32(in, pos, &z->codes[i])) return false;
      }
      // Membership uses binary_search; reject unsorted directories rather
      // than silently mis-pruning.
      if (!std::is_sorted(z->codes.begin(), z->codes.end())) return false;
      break;
    }
    case Kind::kFlatString: {
      uint8_t flags;
      if (!GetU8(in, pos, &flags)) return false;
      z->has_values = (flags & 1) != 0;
      z->max_unbounded = (flags & 2) != 0;
      if (!GetString(in, pos, &z->min_str)) return false;
      if (!GetString(in, pos, &z->max_str)) return false;
      break;
    }
    case Kind::kNone:
      break;
  }
  return true;
}

// ---- Morsel zone cache ----

namespace {

struct MorselZoneKey {
  const void* identity;
  size_t offset;
  size_t length;
  size_t num_ranges;
  size_t first_range;

  bool operator==(const MorselZoneKey& o) const {
    return identity == o.identity && offset == o.offset && length == o.length &&
           num_ranges == o.num_ranges && first_range == o.first_range;
  }
};

struct MorselZoneKeyHash {
  size_t operator()(const MorselZoneKey& k) const {
    size_t h = std::hash<const void*>()(k.identity);
    auto mix = [&h](size_t v) { h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2); };
    mix(k.offset);
    mix(k.length);
    mix(k.num_ranges);
    mix(k.first_range);
    return h;
  }
};

struct MorselZoneEntry {
  std::weak_ptr<const void> anchor;  // column storage liveness
  std::shared_ptr<const std::vector<ColumnZone>> zones;
};

constexpr size_t kMorselZoneCacheCap = 1024;

std::mutex g_zone_cache_mu;
std::unordered_map<MorselZoneKey, MorselZoneEntry, MorselZoneKeyHash>
    g_zone_cache;

}  // namespace

std::shared_ptr<const std::vector<ColumnZone>> GetMorselZones(
    const data::Column& col, const std::vector<parallel::Range>& ranges) {
  MorselZoneKey key{col.storage_identity(), col.storage_offset(), col.length(),
                    ranges.size(), ranges.empty() ? 0 : ranges[0].size()};
  {
    std::lock_guard<std::mutex> lock(g_zone_cache_mu);
    auto it = g_zone_cache.find(key);
    if (it != g_zone_cache.end()) {
      // Only trust the entry while the storage that produced it is alive;
      // a dead anchor means the address may have been recycled.
      if (!it->second.anchor.expired()) return it->second.zones;
      g_zone_cache.erase(it);
    }
  }

  auto zones = std::make_shared<std::vector<ColumnZone>>();
  zones->reserve(ranges.size());
  for (const parallel::Range& r : ranges) {
    zones->push_back(ComputeZone(col.Slice(r.begin, r.size())));
  }
  std::shared_ptr<const std::vector<ColumnZone>> result = zones;

  std::lock_guard<std::mutex> lock(g_zone_cache_mu);
  if (g_zone_cache.size() >= kMorselZoneCacheCap) {
    for (auto it = g_zone_cache.begin(); it != g_zone_cache.end();) {
      if (it->second.anchor.expired()) {
        it = g_zone_cache.erase(it);
      } else {
        ++it;
      }
    }
    if (g_zone_cache.size() >= kMorselZoneCacheCap) g_zone_cache.clear();
  }
  g_zone_cache.emplace(key, MorselZoneEntry{col.storage_anchor(), result});
  return result;
}

void ClearMorselZoneCache() {
  std::lock_guard<std::mutex> lock(g_zone_cache_mu);
  g_zone_cache.clear();
}

}  // namespace storage
}  // namespace vegaplus
